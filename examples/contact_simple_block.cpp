// Fault-zone contact on the paper's simple block model (Fig 23): sweeps the
// penalty number lambda and compares preconditioners, reproducing the
// robustness story of Table 2 / A.1 interactively.
//
//   ./example_contact_simple_block [edge_elements]

#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/geofem.hpp"
#include "mesh/simple_block.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace geofem;
  const int n = argc > 1 ? std::atoi(argv[1]) : 8;
  const mesh::HexMesh m = mesh::simple_block({n, n, (3 * n) / 4, n, n});
  std::cout << "simple block model: " << m.num_dof() << " DOF, " << m.contact_groups.size()
            << " contact groups\n\n";

  fem::BoundaryConditions bc;
  bc.fix_nodes(m.nodes_where([](double, double, double z) { return z == 0.0; }), -1);
  bc.fix_nodes(m.nodes_where([](double x, double, double) { return x == 0.0; }), 0);
  bc.fix_nodes(m.nodes_where([](double, double y, double) { return y == 0.0; }), 1);
  const double zmax = m.bounding_box().hi[2];
  bc.surface_load(m, [&](double, double, double z) { return std::abs(z - zmax) < 1e-9; }, 2,
                  -1.0);

  util::Table table({"precond", "lambda", "iters", "setup(s)", "solve(s)", "total(s)", "MB"});
  using K = core::PrecondKind;
  for (K kind : {K::kBIC0, K::kBIC1, K::kBIC2, K::kSBBIC0}) {
    for (double lambda : {1e2, 1e6}) {
      core::SolveConfig cfg;
      cfg.precond = kind;
      cfg.penalty = lambda;
      cfg.cg.max_iterations = 5000;
      const auto rep = core::solve(m, {{1.0, 0.3}}, bc, cfg);
      table.row({rep.precond_name, util::Table::sci(lambda, 0),
                 rep.cg.converged() ? std::to_string(rep.cg.iterations) : "no conv.",
                 util::Table::fmt(rep.setup_seconds, 2), util::Table::fmt(rep.cg.solve_seconds, 2),
                 util::Table::fmt(rep.setup_seconds + rep.cg.solve_seconds, 2),
                 util::Table::fmt((rep.matrix_bytes + rep.precond_bytes) / 1.0e6, 1)});
    }
  }
  table.print();
  std::cout << "\nSB-BIC(0) is flat in lambda at BIC(0)-level memory — the paper's headline.\n";
  return 0;
}
