// Ground-motion scenario (paper §1.1): stress accumulation on the plate
// boundaries of the Southwest-Japan-like model over an earthquake-cycle-style
// loading history. Each load step increases the tectonic push; the tied
// fault constraints are enforced by the augmented Lagrange method with
// SB-BIC(0) inner solves, and the fault traction (multiplier) build-up is
// reported per step.
//
//   ./example_ground_motion [steps] [nx]

#include <cmath>
#include <cstdlib>
#include <iostream>

#include "contact/penalty.hpp"
#include "mesh/southwest_japan.hpp"
#include "nonlin/alm.hpp"
#include "precond/sb_bic0.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace geofem;
  const int steps = argc > 1 ? std::atoi(argv[1]) : 4;
  mesh::SouthwestJapanParams params;
  if (argc > 2) {
    params.nx = std::atoi(argv[2]);
    params.ny = (params.nx * 5) / 6;
  } else {
    params.nx = 12;
    params.ny = 10;
    params.nz_slab = 4;
    params.nz_crust = 6;
  }
  const mesh::HexMesh m = mesh::southwest_japan_like(params);
  const auto sn = contact::build_supernodes(m.num_nodes(), m.contact_groups);
  std::cout << "ground motion on the Southwest-Japan-like model: " << m.num_dof() << " DOF, "
            << m.contact_groups.size() << " fault-node groups\n\n";

  const double zmin = m.bounding_box().lo[2];
  const double xmax = m.bounding_box().hi[0];

  util::Table table({"step", "push", "NR cycles", "lin iters", "max fault slip-resid",
                     "max settlement"});
  for (int step = 1; step <= steps; ++step) {
    // gravity + growing tectonic push on the x = Xmax face (subduction drive)
    fem::BoundaryConditions bc;
    bc.fix_nodes(m.nodes_where([&](double, double, double z) { return z < zmin + 1e-9; }), -1);
    bc.body_force(m, 2, -1.0);
    const double push = 0.25 * step;
    bc.surface_load(m, [&](double x, double, double) { return std::abs(x - xmax) < 1e-9; }, 0,
                    -push);

    nonlin::ALMOptions opt;
    opt.lambda = 1e6;
    opt.constraint_tol = 1e-7;
    opt.inner.max_iterations = 4000;
    const auto res = nonlin::solve_tied_contact_alm(
        m, {{1.0, 0.3}}, bc,
        [&](const sparse::BlockCSR& a) { return std::make_unique<precond::SBBIC0>(a, sn); },
        opt);

    double settle = 0.0;
    for (int i = 0; i < m.num_nodes(); ++i)
      settle = std::min(settle, res.solution[static_cast<std::size_t>(i) * 3 + 2]);
    table.row({std::to_string(step), util::Table::fmt(push, 2), std::to_string(res.cycles),
               std::to_string(res.total_inner_iterations()),
               util::Table::sci(res.gap_history.empty() ? 0.0 : res.gap_history.back(), 1),
               util::Table::fmt(settle, 4)});
    if (!res.converged()) {
      std::cout << "step " << step << " did not converge\n";
      return 1;
    }
  }
  table.print();
  std::cout << "\nStress accumulates linearly with the tectonic push while the fault stays\n"
               "tied; the ALM cycle count is load-independent (the constraint is linear).\n";
  return 0;
}
