// Quickstart: build the paper's simple block contact model, tie the fault
// surfaces with a penalty of 1e6, and solve with the selective blocking
// preconditioner (SB-BIC(0)) through the one-call core API.
//
//   ./example_quickstart [edge_elements]

#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/geofem.hpp"
#include "mesh/simple_block.hpp"
#include "obs/obs.hpp"

int main(int argc, char** argv) {
  using namespace geofem;
  const int n = argc > 1 ? std::atoi(argv[1]) : 6;

  // Three elastic blocks with duplicated (contact) nodes on the two internal
  // surfaces — Fig 23 of the paper, scaled down.
  mesh::SimpleBlockParams params{n, n, (3 * n) / 4, n, n};
  const mesh::HexMesh m = mesh::simple_block(params);
  std::cout << "mesh: " << m.num_elements() << " elements, " << m.num_nodes() << " nodes, "
            << m.num_dof() << " DOF, " << m.contact_groups.size() << " contact groups\n";

  // Boundary conditions of Fig 23: symmetry at x=0 / y=0, fixed bottom,
  // uniform load on top.
  fem::BoundaryConditions bc;
  bc.fix_nodes(m.nodes_where([](double, double, double z) { return z == 0.0; }), -1);
  bc.fix_nodes(m.nodes_where([](double x, double, double) { return x == 0.0; }), 0);
  bc.fix_nodes(m.nodes_where([](double, double y, double) { return y == 0.0; }), 1);
  const double zmax = m.bounding_box().hi[2];
  bc.surface_load(m, [&](double, double, double z) { return std::abs(z - zmax) < 1e-9; }, 2,
                  -1.0);

  core::SolveConfig cfg;
  cfg.precond = core::PrecondKind::kSBBIC0;
  cfg.penalty = 1e6;

  // Telemetry: any registry attached to the thread collects trace spans and
  // metrics from everything solve() does underneath.
  obs::Registry reg;
  obs::Attach attach(&reg);

  // Use a local plan cache so the second solve below demonstrates plan reuse
  // regardless of what else ran in this process.
  plan::PlanCache cache;
  cfg.plan_cache = &cache;

  const core::SolveReport rep = core::solve(m, {{1.0, 0.3}}, bc, cfg);

  std::cout << "preconditioner: " << rep.precond_name << "\n"
            << "iterations:     " << rep.cg.iterations << (rep.cg.converged() ? "" : " (NOT CONVERGED)")
            << "\n"
            << "set-up:         " << rep.setup_seconds << " s\n"
            << "solve:          " << rep.cg.solve_seconds << " s\n"
            << "memory:         " << (rep.matrix_bytes + rep.precond_bytes) / 1.0e6 << " MB\n";

  // Solving the same problem again reuses the cached plan: the structure
  // phase (supernodes, symbolic factorization) is skipped, only the numeric
  // refactorization runs.
  const core::SolveReport rep2 = core::solve(m, {{1.0, 0.3}}, bc, cfg);
  std::cout << "2nd solve set-up: " << rep2.setup_seconds << " s ("
            << (rep2.plan_reused ? "plan reused" : "cold") << ")\n";

  // peek at the solution: max settlement at the loaded surface
  double max_uz = 0.0;
  for (int i = 0; i < m.num_nodes(); ++i)
    max_uz = std::min(max_uz, rep.solution[static_cast<std::size_t>(i) * 3 + 2]);
  std::cout << "max settlement: " << max_uz << "\n";

  std::cout << "\nwhere the time went (trace spans):\n";
  obs::write_span_tree(reg.snapshot(), std::cout);
  const plan::CacheStats cs = cache.stats();
  std::cout << "plan cache: hits=" << cs.hits << " misses=" << cs.misses
            << " evictions=" << cs.evictions << " entries=" << cs.entries << "\n";
  return rep.cg.converged() && rep2.cg.converged() ? 0 : 1;
}
