// GeoFEM-style partitioning program (paper §2.1: "The partitioning program
// in GeoFEM works on a single PE, and divides the initial entire mesh into
// distributed local data"). Generates (or loads) a mesh, assembles the
// contact problem, partitions contact-aware, and writes one local-data file
// per domain plus the whole mesh; then reads everything back and solves to
// verify the files.
//
//   ./example_partition_tool [ndomains] [edge_elements] [output_prefix]

#include <cmath>
#include <cstdlib>
#include <iostream>

#include "contact/penalty.hpp"
#include "dist/dist_solver.hpp"
#include "fem/assembly.hpp"
#include "mesh/io.hpp"
#include "mesh/simple_block.hpp"
#include "part/io.hpp"
#include "part/local_system.hpp"
#include "precond/sb_bic0.hpp"

int main(int argc, char** argv) {
  using namespace geofem;
  const int ndom = argc > 1 ? std::atoi(argv[1]) : 4;
  const int n = argc > 2 ? std::atoi(argv[2]) : 6;
  const std::string prefix = argc > 3 ? argv[3] : "/tmp/geofem_block";

  const mesh::HexMesh m = mesh::simple_block({n, n, (3 * n) / 4, n, n});
  mesh::save_mesh(prefix + ".mesh", m);
  std::cout << "wrote " << prefix << ".mesh (" << m.num_nodes() << " nodes, "
            << m.contact_groups.size() << " contact groups)\n";

  fem::System sys = fem::assemble_elasticity(m, {{1.0, 0.3}});
  contact::add_penalty(sys.a, m.contact_groups, 1e6);
  fem::BoundaryConditions bc;
  bc.fix_nodes(m.nodes_where([](double, double, double z) { return z == 0.0; }), -1);
  const double zmax = m.bounding_box().hi[2];
  bc.surface_load(m, [&](double, double, double z) { return std::abs(z - zmax) < 1e-9; }, 2,
                  -1.0);
  fem::apply_boundary_conditions(sys, bc);

  const auto p = part::rcb_contact_aware(m, ndom);
  const auto systems = part::distribute(sys.a, sys.b, p);
  part::save_distributed(prefix, systems);
  std::cout << "wrote " << ndom << " local-data files " << prefix << ".<rank>.dist "
            << "(imbalance " << p.imbalance_percent() << "%, contact groups cut: "
            << part::split_contact_groups(m, p) << ")\n";

  // verification pass: reload from disk and solve
  const mesh::HexMesh m2 = mesh::load_mesh(prefix + ".mesh");
  const auto loaded = part::load_distributed(prefix, ndom);
  const auto res = dist::solve_distributed(
      loaded, [&m2](const part::LocalSystem& ls, const sparse::BlockCSR& aii, precond::Precision) {
        auto sn = contact::build_supernodes(aii.n, ls.local_contact_groups(m2.contact_groups));
        return std::make_unique<precond::SBBIC0>(aii, std::move(sn));
      });
  std::cout << "solve from files: " << res.iterations << " iterations, "
            << (res.converged() ? "converged" : "NOT CONVERGED") << "\n";
  return res.converged() ? 0 : 1;
}
