// Earthquake-style simulation on the synthetic Southwest-Japan-like model:
// curved subducting slab under two crust blocks, distorted hexahedra,
// gravity body force, penalty-tied fault surfaces — solved with SB-BIC(0) on
// the PDJDS/MC vector ordering, sweeping the color count (the paper's Fig 27
// trade-off: fewer colors = longer vector loops but more iterations).
//
//   ./example_southwest_japan [nx]

#include <cstdlib>
#include <iostream>

#include "core/geofem.hpp"
#include "mesh/southwest_japan.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace geofem;
  mesh::SouthwestJapanParams params;
  if (argc > 1) {
    params.nx = std::atoi(argv[1]);
    params.ny = (params.nx * 5) / 6;
  }
  const mesh::HexMesh m = mesh::southwest_japan_like(params);
  const auto q = mesh::mesh_quality(m);
  std::cout << "southwest-japan-like model: " << m.num_dof() << " DOF, "
            << m.contact_groups.size() << " contact groups\n"
            << "element quality: min Jacobian " << q.min_jacobian << ", max aspect "
            << q.max_aspect << " (deliberately distorted)\n\n";

  // gravity-style body force, fixed bottom (paper §5.1 for this model)
  fem::BoundaryConditions bc;
  const double zmin = m.bounding_box().lo[2];
  bc.fix_nodes(m.nodes_where([&](double, double, double z) { return z < zmin + 1e-9; }), -1);
  bc.body_force(m, 2, -1.0);

  util::Table table({"colors", "iters", "avg vector len", "imbalance %", "dummy %", "solve(s)"});
  for (int colors : {5, 10, 20, 50, 100}) {
    core::SolveConfig cfg;
    cfg.precond = core::PrecondKind::kSBBIC0;
    cfg.ordering = core::OrderingKind::kPDJDSMC;
    cfg.colors = colors;
    cfg.penalty = 1e6;
    cfg.cg.max_iterations = 10000;
    const auto rep = core::solve(m, {{1.0, 0.3}}, bc, cfg);
    table.row({std::to_string(rep.colors_used), std::to_string(rep.cg.iterations),
               util::Table::fmt(rep.avg_vector_length, 1),
               util::Table::fmt(rep.load_imbalance_percent, 2),
               util::Table::fmt(rep.dummy_percent, 2),
               util::Table::fmt(rep.cg.solve_seconds, 2)});
  }
  table.print();
  std::cout << "\nFewer colors -> longer innermost vector loops (better on vector PEs),\n"
               "more colors -> better convergence: the paper's Fig 27 trade-off.\n";
  return 0;
}
