// Hybrid vs flat-MPI programming model on the simulated SMP cluster: the
// same contact problem partitioned into N domains (hybrid: one domain per
// SMP node) or 8N domains (flat MPI: one per PE). Fewer domains mean less
// localization in the preconditioner (fewer iterations) but the flat model
// exposes more parallelism — the paper's §4.6/§5 comparison.
//
//   ./example_hybrid_vs_flat [edge_elements] [smp_nodes]

#include <cmath>
#include <cstdlib>
#include <iostream>

#include "contact/penalty.hpp"
#include "core/geofem.hpp"
#include "dist/dist_solver.hpp"
#include "fem/assembly.hpp"
#include "mesh/simple_block.hpp"
#include "part/local_system.hpp"
#include "perf/es_model.hpp"
#include "precond/sb_bic0.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace geofem;
  const int n = argc > 1 ? std::atoi(argv[1]) : 8;
  const int smp_nodes = argc > 2 ? std::atoi(argv[2]) : 2;

  const mesh::HexMesh m = mesh::simple_block({n, n, (3 * n) / 4, n, n});
  fem::System sys = fem::assemble_elasticity(m, {{1.0, 0.3}});
  contact::add_penalty(sys.a, m.contact_groups, 1e6);
  fem::BoundaryConditions bc;
  bc.fix_nodes(m.nodes_where([](double, double, double z) { return z == 0.0; }), -1);
  const double zmax = m.bounding_box().hi[2];
  bc.surface_load(m, [&](double, double, double z) { return std::abs(z - zmax) < 1e-9; }, 2,
                  -1.0);
  fem::apply_boundary_conditions(sys, bc);
  std::cout << "model: " << sys.a.ndof() << " DOF on " << smp_nodes
            << " simulated SMP nodes (8 PEs each)\n\n";

  auto factory = [&m](const part::LocalSystem& ls, const sparse::BlockCSR& aii, precond::Precision) {
    auto sn = contact::build_supernodes(aii.n, ls.local_contact_groups(m.contact_groups));
    return std::make_unique<precond::SBBIC0>(aii, std::move(sn));
  };

  const perf::EsModel es;
  util::Table table({"model", "ranks", "iters", "msgs/rank", "modeled comm(s)", "converged"});
  for (bool hybrid : {true, false}) {
    const int ranks = hybrid ? smp_nodes : smp_nodes * 8;
    const auto p = part::rcb_contact_aware(m, ranks);
    const auto systems = part::distribute(sys.a, sys.b, p);
    const auto res = dist::solve_distributed(systems, factory);
    double msgs = 0, comm = 0;
    for (const auto& t : res.traffic_per_rank) {
      msgs += static_cast<double>(t.messages_sent);
      comm = std::max(comm, es.comm_seconds(t, ranks));
    }
    table.row({hybrid ? "hybrid" : "flat MPI", std::to_string(ranks),
               std::to_string(res.iterations), util::Table::fmt(msgs / ranks, 1),
               util::Table::sci(comm, 2), res.converged() ? "yes" : "NO"});
  }
  table.print();
  std::cout << "\nHybrid (fewer, larger domains): fewer iterations; flat MPI: 8x the MPI\n"
               "processes and message count — the latency term grows with rank count.\n";
  return 0;
}
