file(REMOVE_RECURSE
  "CMakeFiles/example_southwest_japan.dir/southwest_japan.cpp.o"
  "CMakeFiles/example_southwest_japan.dir/southwest_japan.cpp.o.d"
  "example_southwest_japan"
  "example_southwest_japan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_southwest_japan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
