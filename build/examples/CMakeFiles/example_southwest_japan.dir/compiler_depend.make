# Empty compiler generated dependencies file for example_southwest_japan.
# This may be replaced when dependencies are built.
