file(REMOVE_RECURSE
  "CMakeFiles/example_hybrid_vs_flat.dir/hybrid_vs_flat.cpp.o"
  "CMakeFiles/example_hybrid_vs_flat.dir/hybrid_vs_flat.cpp.o.d"
  "example_hybrid_vs_flat"
  "example_hybrid_vs_flat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_hybrid_vs_flat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
