# Empty compiler generated dependencies file for example_hybrid_vs_flat.
# This may be replaced when dependencies are built.
