file(REMOVE_RECURSE
  "CMakeFiles/example_ground_motion.dir/ground_motion.cpp.o"
  "CMakeFiles/example_ground_motion.dir/ground_motion.cpp.o.d"
  "example_ground_motion"
  "example_ground_motion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ground_motion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
