# Empty dependencies file for example_ground_motion.
# This may be replaced when dependencies are built.
