# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for example_contact_simple_block.
