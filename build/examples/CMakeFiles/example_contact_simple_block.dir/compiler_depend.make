# Empty compiler generated dependencies file for example_contact_simple_block.
# This may be replaced when dependencies are built.
