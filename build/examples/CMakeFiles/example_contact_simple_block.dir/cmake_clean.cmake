file(REMOVE_RECURSE
  "CMakeFiles/example_contact_simple_block.dir/contact_simple_block.cpp.o"
  "CMakeFiles/example_contact_simple_block.dir/contact_simple_block.cpp.o.d"
  "example_contact_simple_block"
  "example_contact_simple_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_contact_simple_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
