# Empty compiler generated dependencies file for geofem_tests.
# This may be replaced when dependencies are built.
