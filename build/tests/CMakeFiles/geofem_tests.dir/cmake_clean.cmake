file(REMOVE_RECURSE
  "CMakeFiles/geofem_tests.dir/test_dist.cpp.o"
  "CMakeFiles/geofem_tests.dir/test_dist.cpp.o.d"
  "CMakeFiles/geofem_tests.dir/test_djds_precond.cpp.o"
  "CMakeFiles/geofem_tests.dir/test_djds_precond.cpp.o.d"
  "CMakeFiles/geofem_tests.dir/test_eig_nonlin_core.cpp.o"
  "CMakeFiles/geofem_tests.dir/test_eig_nonlin_core.cpp.o.d"
  "CMakeFiles/geofem_tests.dir/test_fem.cpp.o"
  "CMakeFiles/geofem_tests.dir/test_fem.cpp.o.d"
  "CMakeFiles/geofem_tests.dir/test_io.cpp.o"
  "CMakeFiles/geofem_tests.dir/test_io.cpp.o.d"
  "CMakeFiles/geofem_tests.dir/test_mesh.cpp.o"
  "CMakeFiles/geofem_tests.dir/test_mesh.cpp.o.d"
  "CMakeFiles/geofem_tests.dir/test_precond.cpp.o"
  "CMakeFiles/geofem_tests.dir/test_precond.cpp.o.d"
  "CMakeFiles/geofem_tests.dir/test_properties.cpp.o"
  "CMakeFiles/geofem_tests.dir/test_properties.cpp.o.d"
  "CMakeFiles/geofem_tests.dir/test_reorder.cpp.o"
  "CMakeFiles/geofem_tests.dir/test_reorder.cpp.o.d"
  "CMakeFiles/geofem_tests.dir/test_sparse.cpp.o"
  "CMakeFiles/geofem_tests.dir/test_sparse.cpp.o.d"
  "CMakeFiles/geofem_tests.dir/test_util_failures.cpp.o"
  "CMakeFiles/geofem_tests.dir/test_util_failures.cpp.o.d"
  "geofem_tests"
  "geofem_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geofem_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
