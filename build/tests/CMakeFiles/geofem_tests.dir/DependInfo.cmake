
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_dist.cpp" "tests/CMakeFiles/geofem_tests.dir/test_dist.cpp.o" "gcc" "tests/CMakeFiles/geofem_tests.dir/test_dist.cpp.o.d"
  "/root/repo/tests/test_djds_precond.cpp" "tests/CMakeFiles/geofem_tests.dir/test_djds_precond.cpp.o" "gcc" "tests/CMakeFiles/geofem_tests.dir/test_djds_precond.cpp.o.d"
  "/root/repo/tests/test_eig_nonlin_core.cpp" "tests/CMakeFiles/geofem_tests.dir/test_eig_nonlin_core.cpp.o" "gcc" "tests/CMakeFiles/geofem_tests.dir/test_eig_nonlin_core.cpp.o.d"
  "/root/repo/tests/test_fem.cpp" "tests/CMakeFiles/geofem_tests.dir/test_fem.cpp.o" "gcc" "tests/CMakeFiles/geofem_tests.dir/test_fem.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/geofem_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/geofem_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_mesh.cpp" "tests/CMakeFiles/geofem_tests.dir/test_mesh.cpp.o" "gcc" "tests/CMakeFiles/geofem_tests.dir/test_mesh.cpp.o.d"
  "/root/repo/tests/test_precond.cpp" "tests/CMakeFiles/geofem_tests.dir/test_precond.cpp.o" "gcc" "tests/CMakeFiles/geofem_tests.dir/test_precond.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/geofem_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/geofem_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_reorder.cpp" "tests/CMakeFiles/geofem_tests.dir/test_reorder.cpp.o" "gcc" "tests/CMakeFiles/geofem_tests.dir/test_reorder.cpp.o.d"
  "/root/repo/tests/test_sparse.cpp" "tests/CMakeFiles/geofem_tests.dir/test_sparse.cpp.o" "gcc" "tests/CMakeFiles/geofem_tests.dir/test_sparse.cpp.o.d"
  "/root/repo/tests/test_util_failures.cpp" "tests/CMakeFiles/geofem_tests.dir/test_util_failures.cpp.o" "gcc" "tests/CMakeFiles/geofem_tests.dir/test_util_failures.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/geofem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
