# Empty compiler generated dependencies file for geofem.
# This may be replaced when dependencies are built.
