
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/contact/penalty.cpp" "src/CMakeFiles/geofem.dir/contact/penalty.cpp.o" "gcc" "src/CMakeFiles/geofem.dir/contact/penalty.cpp.o.d"
  "/root/repo/src/core/geofem.cpp" "src/CMakeFiles/geofem.dir/core/geofem.cpp.o" "gcc" "src/CMakeFiles/geofem.dir/core/geofem.cpp.o.d"
  "/root/repo/src/dist/comm.cpp" "src/CMakeFiles/geofem.dir/dist/comm.cpp.o" "gcc" "src/CMakeFiles/geofem.dir/dist/comm.cpp.o.d"
  "/root/repo/src/dist/dist_solver.cpp" "src/CMakeFiles/geofem.dir/dist/dist_solver.cpp.o" "gcc" "src/CMakeFiles/geofem.dir/dist/dist_solver.cpp.o.d"
  "/root/repo/src/eig/lanczos.cpp" "src/CMakeFiles/geofem.dir/eig/lanczos.cpp.o" "gcc" "src/CMakeFiles/geofem.dir/eig/lanczos.cpp.o.d"
  "/root/repo/src/fem/assembly.cpp" "src/CMakeFiles/geofem.dir/fem/assembly.cpp.o" "gcc" "src/CMakeFiles/geofem.dir/fem/assembly.cpp.o.d"
  "/root/repo/src/fem/elasticity.cpp" "src/CMakeFiles/geofem.dir/fem/elasticity.cpp.o" "gcc" "src/CMakeFiles/geofem.dir/fem/elasticity.cpp.o.d"
  "/root/repo/src/mesh/hex_mesh.cpp" "src/CMakeFiles/geofem.dir/mesh/hex_mesh.cpp.o" "gcc" "src/CMakeFiles/geofem.dir/mesh/hex_mesh.cpp.o.d"
  "/root/repo/src/mesh/io.cpp" "src/CMakeFiles/geofem.dir/mesh/io.cpp.o" "gcc" "src/CMakeFiles/geofem.dir/mesh/io.cpp.o.d"
  "/root/repo/src/mesh/simple_block.cpp" "src/CMakeFiles/geofem.dir/mesh/simple_block.cpp.o" "gcc" "src/CMakeFiles/geofem.dir/mesh/simple_block.cpp.o.d"
  "/root/repo/src/mesh/southwest_japan.cpp" "src/CMakeFiles/geofem.dir/mesh/southwest_japan.cpp.o" "gcc" "src/CMakeFiles/geofem.dir/mesh/southwest_japan.cpp.o.d"
  "/root/repo/src/nonlin/alm.cpp" "src/CMakeFiles/geofem.dir/nonlin/alm.cpp.o" "gcc" "src/CMakeFiles/geofem.dir/nonlin/alm.cpp.o.d"
  "/root/repo/src/part/io.cpp" "src/CMakeFiles/geofem.dir/part/io.cpp.o" "gcc" "src/CMakeFiles/geofem.dir/part/io.cpp.o.d"
  "/root/repo/src/part/local_system.cpp" "src/CMakeFiles/geofem.dir/part/local_system.cpp.o" "gcc" "src/CMakeFiles/geofem.dir/part/local_system.cpp.o.d"
  "/root/repo/src/part/partition.cpp" "src/CMakeFiles/geofem.dir/part/partition.cpp.o" "gcc" "src/CMakeFiles/geofem.dir/part/partition.cpp.o.d"
  "/root/repo/src/perf/es_model.cpp" "src/CMakeFiles/geofem.dir/perf/es_model.cpp.o" "gcc" "src/CMakeFiles/geofem.dir/perf/es_model.cpp.o.d"
  "/root/repo/src/precond/bic.cpp" "src/CMakeFiles/geofem.dir/precond/bic.cpp.o" "gcc" "src/CMakeFiles/geofem.dir/precond/bic.cpp.o.d"
  "/root/repo/src/precond/diagonal.cpp" "src/CMakeFiles/geofem.dir/precond/diagonal.cpp.o" "gcc" "src/CMakeFiles/geofem.dir/precond/diagonal.cpp.o.d"
  "/root/repo/src/precond/djds_bic.cpp" "src/CMakeFiles/geofem.dir/precond/djds_bic.cpp.o" "gcc" "src/CMakeFiles/geofem.dir/precond/djds_bic.cpp.o.d"
  "/root/repo/src/precond/sb_bic0.cpp" "src/CMakeFiles/geofem.dir/precond/sb_bic0.cpp.o" "gcc" "src/CMakeFiles/geofem.dir/precond/sb_bic0.cpp.o.d"
  "/root/repo/src/precond/scalar_ic0.cpp" "src/CMakeFiles/geofem.dir/precond/scalar_ic0.cpp.o" "gcc" "src/CMakeFiles/geofem.dir/precond/scalar_ic0.cpp.o.d"
  "/root/repo/src/reorder/coloring.cpp" "src/CMakeFiles/geofem.dir/reorder/coloring.cpp.o" "gcc" "src/CMakeFiles/geofem.dir/reorder/coloring.cpp.o.d"
  "/root/repo/src/reorder/djds.cpp" "src/CMakeFiles/geofem.dir/reorder/djds.cpp.o" "gcc" "src/CMakeFiles/geofem.dir/reorder/djds.cpp.o.d"
  "/root/repo/src/solver/cg.cpp" "src/CMakeFiles/geofem.dir/solver/cg.cpp.o" "gcc" "src/CMakeFiles/geofem.dir/solver/cg.cpp.o.d"
  "/root/repo/src/sparse/block_csr.cpp" "src/CMakeFiles/geofem.dir/sparse/block_csr.cpp.o" "gcc" "src/CMakeFiles/geofem.dir/sparse/block_csr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
