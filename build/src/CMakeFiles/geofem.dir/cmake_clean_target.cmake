file(REMOVE_RECURSE
  "libgeofem.a"
)
