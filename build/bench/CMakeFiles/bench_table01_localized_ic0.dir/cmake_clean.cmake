file(REMOVE_RECURSE
  "CMakeFiles/bench_table01_localized_ic0.dir/bench_table01_localized_ic0.cpp.o"
  "CMakeFiles/bench_table01_localized_ic0.dir/bench_table01_localized_ic0.cpp.o.d"
  "bench_table01_localized_ic0"
  "bench_table01_localized_ic0.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table01_localized_ic0.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
