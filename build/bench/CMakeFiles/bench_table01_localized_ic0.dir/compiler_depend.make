# Empty compiler generated dependencies file for bench_table01_localized_ic0.
# This may be replaced when dependencies are built.
