file(REMOVE_RECURSE
  "CMakeFiles/bench_tableA2_A4_eigen.dir/bench_tableA2_A4_eigen.cpp.o"
  "CMakeFiles/bench_tableA2_A4_eigen.dir/bench_tableA2_A4_eigen.cpp.o.d"
  "bench_tableA2_A4_eigen"
  "bench_tableA2_A4_eigen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tableA2_A4_eigen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
