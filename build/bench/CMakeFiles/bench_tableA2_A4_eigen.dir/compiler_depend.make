# Empty compiler generated dependencies file for bench_tableA2_A4_eigen.
# This may be replaced when dependencies are built.
