# Empty dependencies file for bench_fig26_simple_colors.
# This may be replaced when dependencies are built.
