file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_storage_formats.dir/bench_fig15_storage_formats.cpp.o"
  "CMakeFiles/bench_fig15_storage_formats.dir/bench_fig15_storage_formats.cpp.o.d"
  "bench_fig15_storage_formats"
  "bench_fig15_storage_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_storage_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
