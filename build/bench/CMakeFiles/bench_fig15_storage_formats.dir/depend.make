# Empty dependencies file for bench_fig15_storage_formats.
# This may be replaced when dependencies are built.
