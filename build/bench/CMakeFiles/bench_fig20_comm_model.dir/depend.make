# Empty dependencies file for bench_fig20_comm_model.
# This may be replaced when dependencies are built.
