# Empty compiler generated dependencies file for bench_table02_precond_comparison.
# This may be replaced when dependencies are built.
