# Empty dependencies file for bench_fig27_swjapan_colors.
# This may be replaced when dependencies are built.
