# Empty dependencies file for bench_fig30_31_ten_nodes.
# This may be replaced when dependencies are built.
