file(REMOVE_RECURSE
  "CMakeFiles/bench_fig30_31_ten_nodes.dir/bench_fig30_31_ten_nodes.cpp.o"
  "CMakeFiles/bench_fig30_31_ten_nodes.dir/bench_fig30_31_ten_nodes.cpp.o.d"
  "bench_fig30_31_ten_nodes"
  "bench_fig30_31_ten_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig30_31_ten_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
