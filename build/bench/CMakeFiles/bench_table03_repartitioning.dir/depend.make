# Empty dependencies file for bench_table03_repartitioning.
# This may be replaced when dependencies are built.
