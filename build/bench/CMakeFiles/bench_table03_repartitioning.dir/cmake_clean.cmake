file(REMOVE_RECURSE
  "CMakeFiles/bench_table03_repartitioning.dir/bench_table03_repartitioning.cpp.o"
  "CMakeFiles/bench_table03_repartitioning.dir/bench_table03_repartitioning.cpp.o.d"
  "bench_table03_repartitioning"
  "bench_table03_repartitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table03_repartitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
