# Empty compiler generated dependencies file for bench_table04_fig09_scaling.
# This may be replaced when dependencies are built.
