file(REMOVE_RECURSE
  "CMakeFiles/bench_table04_fig09_scaling.dir/bench_table04_fig09_scaling.cpp.o"
  "CMakeFiles/bench_table04_fig09_scaling.dir/bench_table04_fig09_scaling.cpp.o.d"
  "bench_table04_fig09_scaling"
  "bench_table04_fig09_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table04_fig09_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
