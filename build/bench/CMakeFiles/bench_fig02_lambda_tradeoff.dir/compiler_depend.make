# Empty compiler generated dependencies file for bench_fig02_lambda_tradeoff.
# This may be replaced when dependencies are built.
