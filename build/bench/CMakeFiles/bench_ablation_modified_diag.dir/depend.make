# Empty dependencies file for bench_ablation_modified_diag.
# This may be replaced when dependencies are built.
