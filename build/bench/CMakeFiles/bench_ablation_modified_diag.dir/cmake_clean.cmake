file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_modified_diag.dir/bench_ablation_modified_diag.cpp.o"
  "CMakeFiles/bench_ablation_modified_diag.dir/bench_ablation_modified_diag.cpp.o.d"
  "bench_ablation_modified_diag"
  "bench_ablation_modified_diag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_modified_diag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
