# Empty dependencies file for bench_fig28_block_sort.
# This may be replaced when dependencies are built.
