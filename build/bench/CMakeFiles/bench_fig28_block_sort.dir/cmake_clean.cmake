file(REMOVE_RECURSE
  "CMakeFiles/bench_fig28_block_sort.dir/bench_fig28_block_sort.cpp.o"
  "CMakeFiles/bench_fig28_block_sort.dir/bench_fig28_block_sort.cpp.o.d"
  "bench_fig28_block_sort"
  "bench_fig28_block_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig28_block_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
