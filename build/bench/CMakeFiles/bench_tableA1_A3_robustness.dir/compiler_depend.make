# Empty compiler generated dependencies file for bench_tableA1_A3_robustness.
# This may be replaced when dependencies are built.
