file(REMOVE_RECURSE
  "CMakeFiles/bench_tableA1_A3_robustness.dir/bench_tableA1_A3_robustness.cpp.o"
  "CMakeFiles/bench_tableA1_A3_robustness.dir/bench_tableA1_A3_robustness.cpp.o.d"
  "bench_tableA1_A3_robustness"
  "bench_tableA1_A3_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tableA1_A3_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
