# Empty dependencies file for bench_fig05_work_ratio.
# This may be replaced when dependencies are built.
