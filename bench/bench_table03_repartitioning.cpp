// Table 3 of the paper: localized preconditioning on 8 domains with ORIGINAL
// partitioning (contact groups cut by domain boundaries) vs the IMPROVED
// contact-aware repartitioning (Fig 8). Paper: iterations blow up ~10x at
// lambda=1e6 with the original partitioning and recover with the improved
// one (e.g. BIC(1): 2701 -> 123).

#include <iostream>

#include "common.hpp"
#include "dist/dist_solver.hpp"
#include "part/local_system.hpp"
#include "precond/bic.hpp"
#include "precond/sb_bic0.hpp"

int main(int argc, char** argv) {
  using namespace geofem;
  const auto params = bench::table2_block();
  const mesh::HexMesh m = mesh::simple_block(params);
  const auto bc = bench::simple_block_bc(m);
  obs::Registry reg;
  obs::Attach attach(&reg);
  bench::describe_problem(reg, m.num_dof());
  std::cout << "== Table 3: original vs contact-aware partitioning, 8 domains, " << m.num_dof()
            << " DOF ==\n\n";

  struct Kind {
    const char* name;
    int fill;  // -1 = SB-BIC(0), 0 = BIC(0), k = BIC(k)
  };
  const Kind kinds[] = {{"BIC(0)", 0}, {"BIC(1)", 1}, {"BIC(2)", 2}, {"SB-BIC(0)", -1}};

  util::Table table({"precond", "lambda", "orig iters", "orig s", "improved iters", "improved s",
                     "groups cut"});
  for (const Kind& kind : kinds) {
    auto factory = [&](const part::LocalSystem& ls,
                       const sparse::BlockCSR& aii, precond::Precision) -> precond::PreconditionerPtr {
      if (kind.fill < 0) {
        auto sn = contact::build_supernodes(aii.n, ls.local_contact_groups(m.contact_groups));
        return std::make_unique<precond::SBBIC0>(aii, std::move(sn));
      }
      if (kind.fill == 0) return std::make_unique<precond::BIC0>(aii);
      return std::make_unique<precond::BlockILUk>(aii, kind.fill);
    };
    for (double lambda : {1e2, 1e6}) {
      const fem::System sys = bench::assemble(m, bc, lambda);
      const auto p_orig = part::by_node_blocks(m.num_nodes(), 8);
      const auto p_impr = part::rcb_contact_aware(m, 8);
      dist::DistOptions opt;
      opt.cg.max_iterations = 5000;
      const auto sys_orig = part::distribute(sys.a, sys.b, p_orig);
      const auto sys_impr = part::distribute(sys.a, sys.b, p_impr);
      const auto r_orig = dist::solve_distributed(sys_orig, factory, opt);
      const auto r_impr = dist::solve_distributed(sys_impr, factory, opt);
      table.row({kind.name, util::Table::sci(lambda, 0),
                 r_orig.converged() ? std::to_string(r_orig.iterations) : "no conv.",
                 util::Table::fmt(r_orig.setup_seconds_max + r_orig.solve_seconds, 1),
                 r_impr.converged() ? std::to_string(r_impr.iterations) : "no conv.",
                 util::Table::fmt(r_impr.setup_seconds_max + r_impr.solve_seconds, 1),
                 std::to_string(part::split_contact_groups(m, p_orig)) + " -> " +
                     std::to_string(part::split_contact_groups(m, p_impr))});
    }
  }
  table.print();
  bench::emit_json(reg, "table03_repartitioning", argc, argv, {&table});
  std::cout << "\n(Wall-clock seconds are oversubscribed-host times; the shape that matters is\n"
               "the iteration blow-up with cut contact groups and its recovery.)\n";
  return 0;
}
