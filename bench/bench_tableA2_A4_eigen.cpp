// Tables A.2 and A.4 of the paper: extremal eigenvalues E_min, E_max and the
// spectral condition number kappa of the preconditioned operator M^-1 A for
// a wide range of penalty values (Lanczos estimates here; the paper used a
// direct eigensolver on the same size).
//
// Paper shape: BIC(0) has E_min ~ C/lambda (kappa grows linearly with
// lambda); BIC(1), BIC(2) and SB-BIC(0) have lambda-independent spectra. On
// the distorted Southwest Japan model, BIC(1)/BIC(2) kappa grows from
// lambda=1e2 to 1e4 while SB-BIC(0) stays constant (Table A.4).

#include <iostream>

#include "common.hpp"
#include "eig/lanczos.hpp"

namespace {

geofem::util::Table report(const geofem::mesh::HexMesh& m,
                           const geofem::fem::BoundaryConditions& bc) {
  using namespace geofem;
  const auto sn = contact::build_supernodes(m.num_nodes(), m.contact_groups);
  util::Table table({"precond", "lambda", "E_min", "E_max", "kappa"});
  using K = core::PrecondKind;
  for (K kind : {K::kBIC0, K::kBIC1, K::kBIC2, K::kSBBIC0}) {
    for (double lambda : {1e2, 1e4, 1e6, 1e10}) {
      const fem::System sys = bench::assemble(m, bc, lambda);
      auto prec = core::make_preconditioner(kind, sys.a, sn);
      const auto est = eig::estimate_spectrum(sys.a, *prec, sys.b, 300);
      table.row({core::to_string(kind), util::Table::sci(lambda, 0),
                 util::Table::sci(est.emin, 3), util::Table::sci(est.emax, 3),
                 util::Table::sci(est.condition(), 3)});
    }
  }
  table.print();
  std::cout << "\n";
  return table;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace geofem;
  obs::Registry reg;
  obs::Attach attach(&reg);
  std::vector<util::Table> tables;
  {
    // Lanczos needs many matvecs; quarter-size models keep this bench quick
    // while preserving the lambda-dependence signature.
    const auto params = bench::paper_scale() ? mesh::SimpleBlockParams{20, 20, 15, 20, 20}
                                             : mesh::SimpleBlockParams{8, 8, 6, 8, 8};
    const mesh::HexMesh m = mesh::simple_block(params);
    bench::describe_problem(reg, m.num_dof());
    std::cout << "== Table A.2: spectrum of M^-1 A vs lambda, simple block model ("
              << m.num_dof() << " DOF) ==\n\n";
    tables.push_back(report(m, bench::simple_block_bc(m)));
  }
  {
    mesh::SouthwestJapanParams params;
    if (!bench::paper_scale()) {
      params.nx = 14;
      params.ny = 12;
      params.nz_slab = 4;
      params.nz_crust = 7;
    } else {
      params.nx = 40;
      params.ny = 34;
    }
    const mesh::HexMesh m = mesh::southwest_japan_like(params);
    std::cout << "== Table A.4: spectrum of M^-1 A vs lambda, Southwest-Japan-like model ("
              << m.num_dof() << " DOF) ==\n\n";
    tables.push_back(report(m, bench::swjapan_bc(m)));
  }
  bench::emit_json(reg, "tableA2_A4_eigen", argc, argv, {&tables[0], &tables[1]});
  return 0;
}
