// Cost of recovering through the fallback chain versus knowing the right
// preconditioner up front. At extreme contact penalties (Table 2's "did not
// converge" regime) localized BIC(0) stalls; the resilient pipeline detects
// the stagnation, rebuilds as SB-BIC(0) through the plan cache, and restarts
// CG warm. The interesting number is the overhead of that detour — iterations
// burnt in the doomed attempt plus the rebuild — relative to a direct
// SB-BIC(0) solve of the same system.
//
// Expected shape: the resilient BIC(0) solve ends kFellBack with the same
// final preconditioner (and comparable iteration count) as the direct
// SB-BIC(0) run; overhead is dominated by the stagnation window, so "burnt
// iters" is about the configured window. The binary exits nonzero if the
// chain fails to recover — CI runs it (tiny, under sanitizers) as the
// fallback smoke test; GEOFEM_BENCH_TINY=1 shrinks the mesh.

#include <cstdlib>
#include <iostream>
#include <string>

#include "common.hpp"
#include "core/resilience.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace geofem;
  const char* tiny_env = std::getenv("GEOFEM_BENCH_TINY");
  const bool tiny = tiny_env && *tiny_env && std::string(tiny_env) != "0";
  const auto params = tiny                   ? mesh::SimpleBlockParams{4, 4, 3, 4, 4}
                      : bench::paper_scale() ? mesh::SimpleBlockParams{12, 12, 9, 12, 12}
                                             : mesh::SimpleBlockParams{6, 6, 4, 6, 6};
  const mesh::HexMesh m = mesh::simple_block(params);
  const auto bc = bench::simple_block_bc(m);

  obs::Registry reg;
  obs::Attach attach(&reg);
  bench::describe_problem(reg, m.num_dof());
  std::cout << "== Fallback-chain overhead vs direct SB-BIC(0), " << m.num_dof()
            << " DOF ==\n\n";

  util::Table table({"lambda", "path", "status", "attempts", "burnt iters", "final iters",
                     "time [s]", "overhead"});
  bool ok = true;
  bool any_fellback = false;

  for (double lambda : {1e10, 1e12}) {
    const fem::System sys = bench::assemble(m, bc, lambda);
    const auto sn = contact::build_supernodes(sys.a.n, m.contact_groups);

    // Direct solve with the preconditioner built for this regime.
    core::SolveConfig direct;
    direct.precond = core::PrecondKind::kSBBIC0;
    direct.penalty = lambda;
    direct.cg.max_iterations = 4000;
    direct.use_plan_cache = false;
    util::Timer td;
    const auto rd = core::solve_system(sys, sn, direct);
    const double t_direct = td.seconds();

    // Resilient solve that starts on the wrong preconditioner and has to
    // discover that at run time.
    core::SolveConfig fb = direct;
    fb.precond = core::PrecondKind::kBIC0;
    fb.resilience.enabled = true;
    util::Timer tf;
    const auto rf = core::solve_system(sys, sn, fb);
    const double t_fallback = tf.seconds();

    if (!rd.converged()) {
      std::cerr << "FAIL: direct SB-BIC(0) did not converge at lambda=" << lambda << "\n";
      ok = false;
    }
    // Whether a given lambda stalls BIC(0) outright or merely slows it to a
    // crawl depends on mesh size; the invariant is that the resilient run
    // always ends usable, and the hardest lambda actually takes the detour.
    if (!rf.converged()) {
      std::cerr << "FAIL: resilient BIC(0) pipeline failed at lambda=" << lambda
                << " (status: " << to_string(rf.status) << ")\n";
      ok = false;
    }
    any_fellback |= rf.status == SolveStatus::kFellBack;

    const double overhead = t_direct > 0.0 ? t_fallback / t_direct : 0.0;
    table.row({util::Table::sci(lambda, 0), "direct SB-BIC(0)", to_string(rd.status), "1", "0",
               std::to_string(rd.cg.iterations), util::Table::sci(t_direct, 2), "1.0x"});
    table.row({util::Table::sci(lambda, 0), "BIC(0)+fallback", to_string(rf.status),
               std::to_string(rf.attempts.size()), std::to_string(rf.fallback_iterations),
               std::to_string(rf.cg.iterations), util::Table::sci(t_fallback, 2),
               util::Table::fmt(overhead, 1) + "x"});
    reg.gauge("fallback.overhead.lambda_" + util::Table::sci(lambda, 0))->set(overhead);
    reg.gauge("fallback.burnt_iters.lambda_" + util::Table::sci(lambda, 0))
        ->set(rf.fallback_iterations);
  }

  table.print();
  bench::emit_json(reg, "fallback", argc, argv, {&table});
  if (!any_fellback) {
    std::cerr << "FAIL: no lambda in the sweep exercised the fallback chain\n";
    ok = false;
  }
  if (!ok) {
    std::cerr << "\nfallback smoke FAILED\n";
    return 1;
  }
  std::cout << "\nfallback smoke passed (chain recovered through SB-BIC(0) at every lambda)\n";
  return 0;
}
