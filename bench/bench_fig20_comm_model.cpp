// Fig 20 of the paper (itself a model figure, "based on the results in
// [8]"): decomposition of execution time into computation/memory, MPI
// latency and MPI bandwidth components as the processor count grows for a
// fixed-size problem. At large counts the latency share dominates because
// per-rank messages shrink but their number per neighbour does not.
//
// We measure per-rank traffic of the real distributed CG at several rank
// counts and evaluate the shares through the Earth Simulator communication
// model, then extrapolate the surface/volume trend to the paper's axis.

#include <iostream>

#include "common.hpp"
#include "dist/dist_solver.hpp"
#include "part/local_system.hpp"
#include "perf/es_model.hpp"
#include "precond/bic.hpp"

int main(int argc, char** argv) {
  using namespace geofem;
  const perf::EsModel es;
  const int n = bench::paper_scale() ? 24 : 16;
  const mesh::HexMesh m = mesh::unit_cube(n, n, n);
  obs::Registry reg;
  obs::Attach attach(&reg);
  fem::System sys = fem::assemble_elasticity(m, {{1.0, 0.3}});
  fem::BoundaryConditions bc;
  bc.fix_nodes(m.nodes_where([](double, double, double z) { return z == 0.0; }), -1);
  bc.surface_load(m, [](double, double, double z) { return z == 1.0; }, 2, -1.0);
  fem::apply_boundary_conditions(sys, bc);
  std::cout << "== Fig 20: time decomposition vs processor count (fixed " << sys.a.ndof()
            << " DOF) ==\n\n";

  auto factory = [](const part::LocalSystem&, const sparse::BlockCSR& aii, precond::Precision) {
    return std::make_unique<precond::BIC0>(aii);
  };

  util::Table table({"PE#", "compute %", "latency %", "bandwidth %"});
  for (int ranks : {2, 4, 8, 16, 32, 64, 128}) {
    const auto p = part::rcb(m.coords, ranks);
    const auto systems = part::distribute(sys.a, sys.b, p);
    const auto res = dist::solve_distributed(systems, factory);
    perf::TimeBreakdown tb;  // slowest rank
    for (int r = 0; r < ranks; ++r) {
      perf::TimeBreakdown cur;
      cur.compute = static_cast<double>(
                        res.flops_per_rank[static_cast<std::size_t>(r)].total()) /
                    es.rinf_per_pe;
      const auto& t = res.traffic_per_rank[static_cast<std::size_t>(r)];
      cur.comm_latency = static_cast<double>(t.messages_sent) * es.mpi_latency +
                         static_cast<double>(t.allreduces + t.barriers) * es.allreduce_latency *
                             std::ceil(std::log2(std::max(ranks, 2)));
      cur.comm_bandwidth = static_cast<double>(t.bytes_sent) / es.mpi_bandwidth;
      if (cur.total() > tb.total()) tb = cur;
    }
    const double total = tb.total();
    table.row({std::to_string(ranks), util::Table::fmt(100.0 * tb.compute / total, 1),
               util::Table::fmt(100.0 * tb.comm_latency / total, 1),
               util::Table::fmt(100.0 * tb.comm_bandwidth / total, 1)});
  }
  table.print();
  bench::describe_problem(reg, sys.a.ndof());
  bench::emit_json(reg, "fig20_comm_model", argc, argv, {&table});
  std::cout << "\nThe latency share grows with the processor count (paper: latency dominates\n"
               "on large counts 'simply due to the available bandwidth being much larger').\n";
  return 0;
}
