// Fig 20 of the paper (itself a model figure, "based on the results in
// [8]"): decomposition of execution time into computation/memory, MPI
// latency and MPI bandwidth components as the processor count grows for a
// fixed-size problem. At large counts the latency share dominates because
// per-rank messages shrink but their number per neighbour does not.
//
// We measure per-rank traffic of the real distributed CG at several rank
// counts and evaluate the shares through the Earth Simulator communication
// model, then extrapolate the surface/volume trend to the paper's axis.
//
// The latency-dominated regime is exactly what the communication-hiding CG
// variants (DESIGN.md §5j) attack, so the second half of this bench:
//   1. runs the real distributed solver once per variant and reports the
//      *measured* global reductions per iteration (classic 3, Gropp 2,
//      pipelined 1 — read off TrafficStats.allreduces, not assumed), and
//   2. replays the per-iteration reduction cost through the ES model at
//      100+ modeled ranks, where L(P) = allreduce_latency * ceil(log2 P) and
//      each variant hides its reductions behind a different slice of the
//      per-iteration compute: classic exposes 3 L, Gropp exposes
//      2 max(0, L - t_c/2) (one reduction behind the preconditioner, one
//      behind the SpMV), pipelined exposes max(0, L - t_c) (one fused
//      reduction behind both).
// Both variant tables land in BENCH_fig20.json; the binary exits nonzero if
// either series is missing or a variant run failed to converge, so CI can use
// GEOFEM_BENCH_TINY=1 as the fig20 smoke test.

#include <cstdlib>
#include <iostream>

#include "common.hpp"
#include "dist/dist_solver.hpp"
#include "part/local_system.hpp"
#include "perf/es_model.hpp"
#include "precond/bic.hpp"

int main(int argc, char** argv) {
  using namespace geofem;
  const perf::EsModel es;
  const char* tiny_env = std::getenv("GEOFEM_BENCH_TINY");
  const bool tiny = tiny_env && *tiny_env && std::string(tiny_env) != "0";
  const int n = tiny ? 8 : (bench::paper_scale() ? 24 : 16);
  const mesh::HexMesh m = mesh::unit_cube(n, n, n);
  obs::Registry reg;
  obs::Attach attach(&reg);
  fem::System sys = fem::assemble_elasticity(m, {{1.0, 0.3}});
  fem::BoundaryConditions bc;
  bc.fix_nodes(m.nodes_where([](double, double, double z) { return z == 0.0; }), -1);
  bc.surface_load(m, [](double, double, double z) { return z == 1.0; }, 2, -1.0);
  fem::apply_boundary_conditions(sys, bc);
  std::cout << "== Fig 20: time decomposition vs processor count (fixed " << sys.a.ndof()
            << " DOF) ==\n\n";

  auto factory = [](const part::LocalSystem&, const sparse::BlockCSR& aii, precond::Precision) {
    return std::make_unique<precond::BIC0>(aii);
  };

  util::Table table({"PE#", "compute %", "latency %", "bandwidth %"});
  const std::vector<int> measured_ranks = tiny ? std::vector<int>{2, 4, 8}
                                               : std::vector<int>{2, 4, 8, 16, 32, 64, 128};
  double flops_per_iteration = 0.0;  // whole-team FLOPs of one CG iteration
  for (int ranks : measured_ranks) {
    const auto p = part::rcb(m.coords, ranks);
    const auto systems = part::distribute(sys.a, sys.b, p);
    const auto res = dist::solve_distributed(systems, factory);
    perf::TimeBreakdown tb;  // slowest rank
    double team_flops = 0.0;
    for (int r = 0; r < ranks; ++r) {
      perf::TimeBreakdown cur;
      cur.compute = static_cast<double>(
                        res.flops_per_rank[static_cast<std::size_t>(r)].total()) /
                    es.rinf_per_pe;
      team_flops += static_cast<double>(res.flops_per_rank[static_cast<std::size_t>(r)].total());
      const auto& t = res.traffic_per_rank[static_cast<std::size_t>(r)];
      cur.comm_latency = static_cast<double>(t.messages_sent) * es.mpi_latency +
                         static_cast<double>(t.allreduces + t.barriers) * es.allreduce_latency *
                             std::ceil(std::log2(std::max(ranks, 2)));
      cur.comm_bandwidth = static_cast<double>(t.bytes_sent) / es.mpi_bandwidth;
      if (cur.total() > tb.total()) tb = cur;
    }
    if (res.iterations > 0) team_flops /= static_cast<double>(res.iterations);
    flops_per_iteration = team_flops;  // keep the largest measured count
    const double total = tb.total();
    table.row({std::to_string(ranks), util::Table::fmt(100.0 * tb.compute / total, 1),
               util::Table::fmt(100.0 * tb.comm_latency / total, 1),
               util::Table::fmt(100.0 * tb.comm_bandwidth / total, 1)});
  }
  table.print();

  // -------------------------------------------------------------------------
  // Measured reductions per iteration of the communication-hiding variants:
  // one real distributed solve per variant on the same system, allreduce
  // counts read off the traffic statistics (set-up adds a handful, so the
  // per-iteration rate is reported to one decimal).
  // -------------------------------------------------------------------------
  std::cout << "\n== CG variants: measured global reductions per iteration ==\n\n";
  const int vranks = tiny ? 4 : 8;
  const auto vp = part::rcb(m.coords, vranks);
  const auto vsystems = part::distribute(sys.a, sys.b, vp);
  util::Table vtable({"variant", "iterations", "allreduce/iter", "status"});
  bool variants_ok = true;
  for (auto variant : {solver::CGVariant::kClassic, solver::CGVariant::kGropp,
                       solver::CGVariant::kPipelined}) {
    dist::DistOptions opt;
    opt.cg.variant = variant;
    const auto res = dist::solve_distributed(vsystems, factory, opt);
    const double per_iter =
        res.iterations > 0
            ? static_cast<double>(res.traffic_per_rank[0].allreduces) / res.iterations
            : 0.0;
    vtable.row({solver::to_string(variant), std::to_string(res.iterations),
                util::Table::fmt(per_iter, 1), std::string(to_string(res.status))});
    variants_ok = variants_ok && ok(res.status);
  }
  vtable.print();

  // -------------------------------------------------------------------------
  // Modeled visible reduction latency per iteration at the paper's axis
  // (100+ PEs, where Fig 20 shows latency dominating). t_c is the modeled
  // per-rank compute of one iteration at P ranks for this fixed problem.
  // -------------------------------------------------------------------------
  std::cout << "\n== modeled visible reduction latency per iteration (fixed problem) ==\n\n";
  util::Table ltable({"PE#", "L(P) us", "classic us", "gropp us", "pipelined us", "speedup"});
  int modeled_at_least_100 = 0;
  for (int ranks : {64, 100, 128, 192, 256}) {
    const double latency = es.allreduce_latency * std::ceil(std::log2(ranks));
    const double t_compute = flops_per_iteration / ranks / es.rinf_per_pe;
    const double classic = 3.0 * latency;
    const double gropp = 2.0 * std::max(0.0, latency - 0.5 * t_compute);
    const double pipelined = std::max(0.0, latency - t_compute);
    ltable.row({std::to_string(ranks), util::Table::fmt(1e6 * latency, 1),
                util::Table::fmt(1e6 * classic, 1), util::Table::fmt(1e6 * gropp, 2),
                util::Table::fmt(1e6 * pipelined, 2),
                util::Table::fmt(pipelined > 0.0 ? classic / pipelined : 0.0, 1)});
    if (ranks >= 100) ++modeled_at_least_100;
  }
  ltable.print();
  std::cout << "\nClassic CG pays 3 log2(P) allreduce latencies per iteration; Gropp hides\n"
               "one reduction behind the preconditioner and one behind the SpMV, pipelined\n"
               "hides its single fused reduction behind both. Once the fixed problem is\n"
               "spread over 100+ PEs the overlap window shrinks, but so does the exposed\n"
               "latency: the pipelined variant's visible cost stays bounded by one tree.\n";

  bench::describe_problem(reg, sys.a.ndof());
  bench::emit_json(reg, "fig20", argc, argv, {&table, &vtable, &ltable});

  // Smoke gate: the variant series must exist (three measured variant rows,
  // modeled rows at >= 100 PEs) and every variant run must have converged.
  if (vtable.rows().size() != 3 || !variants_ok) {
    std::cerr << "fig20 smoke FAILED: variant series incomplete or a variant solve failed\n";
    return 1;
  }
  if (modeled_at_least_100 < 1) {
    std::cerr << "fig20 smoke FAILED: no modeled latency rows at >= 100 ranks\n";
    return 1;
  }
  std::cout << "\nfig20 smoke passed\n";
  return 0;
}
