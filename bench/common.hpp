#pragma once

// Shared problem setup for the benchmark harness. Every bench binary
// reproduces one table or figure of the paper (see DESIGN.md's experiment
// index). Problem sizes default to laptop scale; set GEOFEM_BENCH_SCALE
// (small | paper) to switch. "paper" uses the paper's exact DOF counts where
// feasible on one machine.

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "contact/penalty.hpp"
#include "core/geofem.hpp"
#include "fem/assembly.hpp"
#include "mesh/simple_block.hpp"
#include "mesh/southwest_japan.hpp"
#include "obs/obs.hpp"
#include "simd/simd.hpp"
#include "util/table.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace bench {

inline bool paper_scale() {
  const char* s = std::getenv("GEOFEM_BENCH_SCALE");
  return s && std::string(s) == "paper";
}

/// The appendix / Table 2 simple block model: 83,664 DOF at paper scale
/// (exact), ~20k DOF at small scale.
inline geofem::mesh::SimpleBlockParams table2_block() {
  return paper_scale() ? geofem::mesh::SimpleBlockParams{20, 20, 15, 20, 20}
                       : geofem::mesh::SimpleBlockParams{12, 12, 9, 12, 12};
}

/// The appendix Southwest-Japan-like model: ~79k DOF at paper scale
/// (paper: 81,585), ~20k at small scale.
inline geofem::mesh::SouthwestJapanParams tableA3_swjapan() {
  geofem::mesh::SouthwestJapanParams p;
  if (paper_scale()) {
    p.nx = 40;
    p.ny = 34;
  } else {
    p.nx = 24;
    p.ny = 20;
  }
  return p;
}

/// Fig 23 boundary conditions for the simple block model (symmetry at
/// x=0/y=0, fixed bottom, uniform load on top).
inline geofem::fem::BoundaryConditions simple_block_bc(const geofem::mesh::HexMesh& m) {
  geofem::fem::BoundaryConditions bc;
  bc.fix_nodes(m.nodes_where([](double, double, double z) { return z == 0.0; }), -1);
  bc.fix_nodes(m.nodes_where([](double x, double, double) { return x == 0.0; }), 0);
  bc.fix_nodes(m.nodes_where([](double, double y, double) { return y == 0.0; }), 1);
  const double zmax = m.bounding_box().hi[2];
  bc.surface_load(
      m, [zmax](double, double, double z) { return std::abs(z - zmax) < 1e-9; }, 2, -1.0);
  return bc;
}

/// Southwest-Japan boundary conditions (fixed flat bottom, gravity body
/// force; paper §5.1).
inline geofem::fem::BoundaryConditions swjapan_bc(const geofem::mesh::HexMesh& m) {
  geofem::fem::BoundaryConditions bc;
  const double zmin = m.bounding_box().lo[2];
  bc.fix_nodes(m.nodes_where([zmin](double, double, double z) { return z < zmin + 1e-9; }), -1);
  bc.body_force(m, 2, -1.0);
  return bc;
}

/// Assemble a penalized, boundary-conditioned system on any mesh.
inline geofem::fem::System assemble(const geofem::mesh::HexMesh& m,
                                    const geofem::fem::BoundaryConditions& bc, double lambda) {
  geofem::fem::System sys = geofem::fem::assemble_elasticity(m, {{1.0, 0.3}});
  geofem::contact::add_penalty(sys.a, m.contact_groups, lambda);
  geofem::fem::apply_boundary_conditions(sys, bc);
  return sys;
}

inline std::string fmt_int(std::int64_t v) { return std::to_string(v); }

// ---------------------------------------------------------------------------
// Machine-readable telemetry (DESIGN.md "Telemetry"). Every bench binary
// creates one obs::Registry, attaches it (so library spans/metrics land
// there), stamps problem metadata via describe_problem(), and calls
// emit_json() after printing its table. Output is off unless requested:
//   GEOFEM_BENCH_JSON=1  -> write BENCH_<name>.json in the working directory
//   --json <path>        -> write to <path> (takes precedence)
// GEOFEM_BENCH_TRACE=1 additionally writes BENCH_<name>.trace.json, a Chrome
// trace_event file loadable in chrome://tracing or ui.perfetto.dev.
// ---------------------------------------------------------------------------

/// Problem metadata every report carries (the paper's experiment context).
inline void describe_problem(geofem::obs::Registry& reg, std::int64_t dof, double lambda = 0.0) {
  reg.set_meta("dof", static_cast<double>(dof));
  if (lambda > 0.0) reg.set_meta("lambda", lambda);
  reg.set_meta("scale", paper_scale() ? "paper" : "small");
  // Which kernel path produced the numbers (scalar | omp-simd | avx2); every
  // bench JSON carries it so results from different builds never get mixed up.
  reg.set_meta("simd.isa", geofem::simd::active_isa());
#ifdef _OPENMP
  reg.set_meta("threads", static_cast<double>(omp_get_max_threads()));
#else
  reg.set_meta("threads", static_cast<double>(std::thread::hardware_concurrency()));
#endif
}

inline std::string json_output_path(const std::string& bench_name, int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--json") return argv[i + 1];
  const char* e = std::getenv("GEOFEM_BENCH_JSON");
  if (e && *e && std::string(e) != "0") return "BENCH_" + bench_name + ".json";
  return "";
}

/// Tables are embedded verbatim (cells as strings, keyed by header) so every
/// paper table/figure the bench prints is also machine-readable.
inline void emit_json(const geofem::obs::Registry& reg, const std::string& bench_name, int argc,
                      char** argv, const std::vector<const geofem::util::Table*>& tables = {}) {
  namespace obs = geofem::obs;
  const obs::Snapshot snap = reg.snapshot();

  const std::string path = json_output_path(bench_name, argc, argv);
  if (!path.empty()) {
    obs::json::Value doc = obs::metrics_json(snap);
    doc["bench"] = bench_name;
    obs::json::Value& tabs = (doc["tables"] = obs::json::Value::array());
    for (const auto* t : tables) {
      obs::json::Value tab = obs::json::Value::array();
      for (const auto& row : t->rows()) {
        obs::json::Value r = obs::json::Value::object();
        for (std::size_t c = 0; c < t->headers().size() && c < row.size(); ++c)
          r[t->headers()[c]] = row[c];
        tab.push(std::move(r));
      }
      tabs.push(std::move(tab));
    }
    try {
      obs::write_file(doc, path);
      std::cout << "\n[bench] wrote " << path << "\n";
    } catch (const std::exception& e) {
      // a bad --json path must not abort after the tables already printed
      std::cerr << "[bench] " << e.what() << "\n";
    }
  }

  const char* tr = std::getenv("GEOFEM_BENCH_TRACE");
  if (tr && *tr && std::string(tr) != "0") {
    const std::string tpath = "BENCH_" + bench_name + ".trace.json";
    try {
      obs::write_file(obs::chrome_trace_json(snap), tpath);
      std::cout << "[bench] wrote " << tpath << " (open in chrome://tracing or ui.perfetto.dev)\n";
    } catch (const std::exception& e) {
      std::cerr << "[bench] " << e.what() << "\n";
    }
  }
}

}  // namespace bench
