#pragma once

// Shared problem setup for the benchmark harness. Every bench binary
// reproduces one table or figure of the paper (see DESIGN.md's experiment
// index). Problem sizes default to laptop scale; set GEOFEM_BENCH_SCALE
// (small | paper) to switch. "paper" uses the paper's exact DOF counts where
// feasible on one machine.

#include <cmath>
#include <cstdlib>
#include <string>

#include "contact/penalty.hpp"
#include "core/geofem.hpp"
#include "fem/assembly.hpp"
#include "mesh/simple_block.hpp"
#include "mesh/southwest_japan.hpp"
#include "util/table.hpp"

namespace bench {

inline bool paper_scale() {
  const char* s = std::getenv("GEOFEM_BENCH_SCALE");
  return s && std::string(s) == "paper";
}

/// The appendix / Table 2 simple block model: 83,664 DOF at paper scale
/// (exact), ~20k DOF at small scale.
inline geofem::mesh::SimpleBlockParams table2_block() {
  return paper_scale() ? geofem::mesh::SimpleBlockParams{20, 20, 15, 20, 20}
                       : geofem::mesh::SimpleBlockParams{12, 12, 9, 12, 12};
}

/// The appendix Southwest-Japan-like model: ~79k DOF at paper scale
/// (paper: 81,585), ~20k at small scale.
inline geofem::mesh::SouthwestJapanParams tableA3_swjapan() {
  geofem::mesh::SouthwestJapanParams p;
  if (paper_scale()) {
    p.nx = 40;
    p.ny = 34;
  } else {
    p.nx = 24;
    p.ny = 20;
  }
  return p;
}

/// Fig 23 boundary conditions for the simple block model (symmetry at
/// x=0/y=0, fixed bottom, uniform load on top).
inline geofem::fem::BoundaryConditions simple_block_bc(const geofem::mesh::HexMesh& m) {
  geofem::fem::BoundaryConditions bc;
  bc.fix_nodes(m.nodes_where([](double, double, double z) { return z == 0.0; }), -1);
  bc.fix_nodes(m.nodes_where([](double x, double, double) { return x == 0.0; }), 0);
  bc.fix_nodes(m.nodes_where([](double, double y, double) { return y == 0.0; }), 1);
  const double zmax = m.bounding_box().hi[2];
  bc.surface_load(
      m, [zmax](double, double, double z) { return std::abs(z - zmax) < 1e-9; }, 2, -1.0);
  return bc;
}

/// Southwest-Japan boundary conditions (fixed flat bottom, gravity body
/// force; paper §5.1).
inline geofem::fem::BoundaryConditions swjapan_bc(const geofem::mesh::HexMesh& m) {
  geofem::fem::BoundaryConditions bc;
  const double zmin = m.bounding_box().lo[2];
  bc.fix_nodes(m.nodes_where([zmin](double, double, double z) { return z < zmin + 1e-9; }), -1);
  bc.body_force(m, 2, -1.0);
  return bc;
}

/// Assemble a penalized, boundary-conditioned system on any mesh.
inline geofem::fem::System assemble(const geofem::mesh::HexMesh& m,
                                    const geofem::fem::BoundaryConditions& bc, double lambda) {
  geofem::fem::System sys = geofem::fem::assemble_elasticity(m, {{1.0, 0.3}});
  geofem::contact::add_penalty(sys.a, m.contact_groups, lambda);
  geofem::fem::apply_boundary_conditions(sys, bc);
  return sys;
}

inline std::string fmt_int(std::int64_t v) { return std::to_string(v); }

}  // namespace bench
