#pragma once

// Shared machinery for the paper's color-sweep figures (26, 27, 30, 31):
// SB-BIC(0) CG with PDJDS/MC reordering, iterations / time / GFLOPS as a
// function of the MC color count and of the average innermost vector length,
// for both programming models:
//   * hybrid  : one simulated-MPI rank per SMP node, PDJDS chunks over the
//               node's 8 PEs (OpenMP), loop directives + vectorization
//   * flat MPI: 8 ranks per SMP node, PDJDS per rank with npe = 1
// Time and GFLOPS are replayed through the Earth Simulator model from the
// measured iteration counts, FLOPs, structural loop profiles, and traffic.

#include <iostream>

#include "common.hpp"
#include "dist/dist_solver.hpp"
#include "part/local_system.hpp"
#include "perf/es_model.hpp"
#include "precond/djds_bic.hpp"

namespace bench {

struct SweepRow {
  int colors;
  int iterations;
  double avg_vector_length;
  double modeled_seconds;
  double modeled_gflops;
};

/// One programming model x one color count on `smp_nodes` simulated SMP
/// nodes. Uses the real distributed solve (or serial PDJDS path when
/// hybrid && smp_nodes == 1).
inline SweepRow run_color_point(const geofem::mesh::HexMesh& m, const geofem::fem::System& sys,
                                int smp_nodes, bool hybrid, int colors) {
  using namespace geofem;
  const perf::EsModel es;
  const int ranks = hybrid ? smp_nodes : smp_nodes * 8;
  const int npe = hybrid ? 8 : 1;

  part::Partition p;
  if (ranks == 1) {
    p.num_domains = 1;
    p.domain_of.assign(static_cast<std::size_t>(m.num_nodes()), 0);
  } else {
    p = part::rcb_contact_aware(m, ranks);
  }
  const auto systems = part::distribute(sys.a, sys.b, p);

  // localized PDJDS/MC SB-BIC(0) preconditioner per rank
  auto factory = [&](const part::LocalSystem& ls, const sparse::BlockCSR& aii,
                     precond::Precision) -> precond::PreconditionerPtr {
    auto sn = contact::build_supernodes(aii.n, ls.local_contact_groups(m.contact_groups));
    return std::make_unique<precond::OwnedDJDSBIC>(aii, std::move(sn), colors, npe);
  };
  dist::DistOptions opt;
  opt.cg.max_iterations = 10000;
  const auto res = dist::solve_distributed(systems, factory, opt);

  // Model: per-rank compute from the structural loop profile of one sweep of
  // its local DJDS structures (matvec + substitution dominate; the blas1 part
  // is modeled as one long loop over the rank's DOFs).
  double elapsed = 0.0;
  double total_flops = 0.0;
  double avg_len = 0.0;
  for (int r = 0; r < ranks; ++r) {
    const auto& ls = systems[static_cast<std::size_t>(r)];
    const sparse::BlockCSR aii = ls.internal_matrix();
    auto sn = contact::build_supernodes(aii.n, ls.local_contact_groups(m.contact_groups));
    const precond::OwnedDJDSBIC prec(aii, std::move(sn), colors, npe);
    const auto& dj = prec.djds();
    avg_len += dj.average_vector_length() / ranks;

    // one matvec sweep + one substitution sweep per iteration
    util::LoopStats sweep;
    {
      std::vector<double> xx(aii.ndof(), 1.0), yy(aii.ndof());
      dj.spmv(xx, yy, nullptr, &sweep);
    }
    sweep.merge(prec.inner().structural_loops());
    util::LoopStats blas1;
    blas1.record(static_cast<std::int64_t>(ls.num_internal), 10);  // dots/axpys per iter

    perf::TimeBreakdown tb;
    tb.compute = (es.vector_seconds(sweep, 18.0) + es.vector_seconds(blas1, 2.0)) /
                 npe * res.iterations;
    const auto& t = res.traffic_per_rank[static_cast<std::size_t>(r)];
    tb.comm_latency = static_cast<double>(t.messages_sent) * es.mpi_latency +
                      static_cast<double>(t.allreduces + t.barriers) * es.allreduce_latency *
                          (ranks > 1 ? std::ceil(std::log2(ranks)) : 0.0);
    tb.comm_bandwidth = static_cast<double>(t.bytes_sent) / es.mpi_bandwidth;
    if (hybrid) tb.omp = es.omp_seconds(2LL * prec.djds().num_colors() * res.iterations);
    elapsed = std::max(elapsed, tb.total());
    total_flops += static_cast<double>(res.flops_per_rank[static_cast<std::size_t>(r)].total());
  }
  return {colors, res.iterations, avg_len, elapsed, perf::gflops(total_flops, elapsed)};
}

/// Prints one table per programming model and returns them (hybrid first) so
/// callers can feed bench::emit_json.
inline std::vector<geofem::util::Table> color_sweep_report(const geofem::mesh::HexMesh& m,
                                                           const geofem::fem::System& sys,
                                                           int smp_nodes,
                                                           const std::vector<int>& color_counts) {
  using geofem::util::Table;
  const double peak = smp_nodes * 8 * 8.0;  // GFLOPS
  std::vector<Table> tables;
  for (bool hybrid : {true, false}) {
    std::cout << (hybrid ? "hybrid (1 rank/SMP node, 8 PE chunks):"
                         : "flat MPI (8 ranks/SMP node):")
              << "\n";
    Table table({"colors", "iters", "avg vec len", "modeled sec", "modeled GFLOPS", "% peak"});
    for (int colors : color_counts) {
      const SweepRow row = run_color_point(m, sys, smp_nodes, hybrid, colors);
      table.row({std::to_string(row.colors), std::to_string(row.iterations),
                 Table::fmt(row.avg_vector_length, 1), Table::fmt(row.modeled_seconds, 3),
                 Table::fmt(row.modeled_gflops, 1),
                 Table::fmt(100.0 * row.modeled_gflops / peak, 1)});
    }
    table.print();
    std::cout << "\n";
    tables.push_back(std::move(table));
  }
  return tables;
}

}  // namespace bench
