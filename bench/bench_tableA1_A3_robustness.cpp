// Tables A.1 and A.3 of the paper: iterations / time for convergence vs the
// penalty parameter for BIC(0)/BIC(1)/BIC(2)/SB-BIC(0), on the simple block
// model (83,664 DOF) and the Southwest Japan model (81,585 DOF).
//
// Paper shape (A.1, simple block): BIC(0) fails for lambda >= 1e4; the other
// three are flat in lambda; SB-BIC(0) needs more iterations than BIC(1)/(2)
// but the least total time.
// Paper shape (A.3, Southwest Japan): same, except BIC(1)/BIC(2) iterations
// *grow* from lambda=1e2 to 1e4 (distorted meshes) while SB-BIC(0) stays
// flat.

#include <iostream>

#include "common.hpp"
#include "util/timer.hpp"

namespace {

geofem::util::Table report(const char* title, const geofem::mesh::HexMesh& m,
                           const geofem::fem::BoundaryConditions& bc) {
  using namespace geofem;
  const auto sn = contact::build_supernodes(m.num_nodes(), m.contact_groups);
  std::cout << title << " (" << m.num_dof() << " DOF):\n";
  util::Table table({"precond", "lambda", "iters", "total(s)"});
  using K = core::PrecondKind;
  for (K kind : {K::kBIC0, K::kBIC1, K::kBIC2, K::kSBBIC0}) {
    for (double lambda : {1e2, 1e4, 1e6}) {
      const fem::System sys = bench::assemble(m, bc, lambda);
      util::Timer timer;
      auto prec = core::make_preconditioner(kind, sys.a, sn);
      std::vector<double> x(sys.a.ndof(), 0.0);
      solver::CGOptions opt;
      opt.max_iterations = 2000;
      const auto res = solver::pcg(sys.a, *prec, sys.b, x, opt);
      table.row({prec->name(), util::Table::sci(lambda, 0),
                 res.converged() ? std::to_string(res.iterations) : "> 2000",
                 util::Table::fmt(timer.seconds(), 1)});
    }
  }
  table.print();
  std::cout << "\n";
  return table;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace geofem;
  obs::Registry reg;
  obs::Attach attach(&reg);
  std::vector<util::Table> tables;
  {
    const mesh::HexMesh m = mesh::simple_block(bench::table2_block());
    bench::describe_problem(reg, m.num_dof());
    std::cout << "== Table A.1: robustness vs lambda, simple block model ==\n\n";
    tables.push_back(report("simple block", m, bench::simple_block_bc(m)));
  }
  {
    const mesh::HexMesh m = mesh::southwest_japan_like(bench::tableA3_swjapan());
    std::cout << "== Table A.3: robustness vs lambda, Southwest-Japan-like model ==\n\n";
    tables.push_back(report("Southwest-Japan-like", m, bench::swjapan_bc(m)));
  }
  bench::emit_json(reg, "tableA1_A3_robustness", argc, argv, {&tables[0], &tables[1]});
  return 0;
}
