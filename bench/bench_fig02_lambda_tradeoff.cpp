// Fig 2 of the paper: the penalty-number trade-off in nonlinear fault-zone
// contact by the augmented Lagrange method — a larger lambda gives faster
// nonlinear (Newton-Raphson / multiplier) convergence but more iterations
// for the linear solver at each cycle.
//
// Expected shape: "cycles" decreases monotonically with lambda while
// "iters/cycle" of the non-selective preconditioner grows; SB-BIC(0) keeps
// iters/cycle flat, removing the right-hand side of the trade-off.

#include <iostream>

#include "common.hpp"
#include "nonlin/alm.hpp"
#include "precond/bic.hpp"
#include "precond/sb_bic0.hpp"

int main(int argc, char** argv) {
  using namespace geofem;
  const auto params = bench::paper_scale() ? mesh::SimpleBlockParams{10, 10, 8, 10, 10}
                                           : mesh::SimpleBlockParams{6, 6, 4, 6, 6};
  const mesh::HexMesh m = mesh::simple_block(params);
  const auto bc = bench::simple_block_bc(m);
  const auto sn = contact::build_supernodes(m.num_nodes(), m.contact_groups);
  obs::Registry reg;
  obs::Attach attach(&reg);
  bench::describe_problem(reg, m.num_dof());
  std::cout << "== Fig 2: lambda vs NR cycles vs linear iterations (ALM), " << m.num_dof()
            << " DOF ==\n\n";

  std::vector<util::Table> tables;
  for (bool selective : {false, true}) {
    util::Table table({"lambda", "NR cycles", "total lin iters", "iters/cycle", "final gap"});
    std::cout << (selective ? "SB-BIC(0) inner solver:" : "BIC(0) inner solver:") << "\n";
    for (double lambda : {1e2, 1e3, 1e4, 1e5, 1e6, 1e7}) {
      nonlin::ALMOptions opt;
      opt.lambda = lambda;
      opt.constraint_tol = 1e-7;
      opt.inner.max_iterations = 4000;
      const auto res = nonlin::solve_tied_contact_alm(
          m, {{1.0, 0.3}}, bc,
          [&](const sparse::BlockCSR& a) -> precond::PreconditionerPtr {
            if (selective) return std::make_unique<precond::SBBIC0>(a, sn);
            return std::make_unique<precond::BIC0>(a);
          },
          opt);
      table.row({util::Table::sci(lambda, 0), std::to_string(res.cycles),
                 std::to_string(res.total_inner_iterations()),
                 util::Table::fmt(static_cast<double>(res.total_inner_iterations()) /
                                      std::max(res.cycles, 1), 1),
                 util::Table::sci(res.gap_history.empty() ? 0.0 : res.gap_history.back(), 1)});
    }
    table.print();
    std::cout << "\n";
    tables.push_back(std::move(table));
  }
  bench::emit_json(reg, "fig02_lambda_tradeoff", argc, argv, {&tables[0], &tables[1]});
  return 0;
}
