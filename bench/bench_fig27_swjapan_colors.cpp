// Fig 27 of the paper: same color-count sweep as Fig 26 but on the
// complicated Southwest Japan model (2,992,266 DOF in the paper; synthetic,
// scaled here). Paper shape: iterations are much less sensitive to the color
// count than on the simple model (ill-conditioned distorted-mesh matrices),
// while the GFLOPS trend with vector length is the same.

#include <iostream>

#include "color_sweep.hpp"

int main(int argc, char** argv) {
  using namespace geofem;
  mesh::SouthwestJapanParams params;
  if (bench::paper_scale()) {
    params.nx = 40;
    params.ny = 34;
    params.nz_crust = 12;
  }
  const mesh::HexMesh m = mesh::southwest_japan_like(params);
  const auto bc = bench::swjapan_bc(m);
  const fem::System sys = bench::assemble(m, bc, 1e6);
  obs::Registry reg;
  obs::Attach attach(&reg);
  bench::describe_problem(reg, sys.a.ndof(), 1e6);
  const auto q = mesh::mesh_quality(m);
  std::cout << "== Fig 27: color-count sweep, Southwest-Japan-like model, " << sys.a.ndof()
            << " DOF, 1 SMP node, lambda=1e6 ==\n(min corner Jacobian " << q.min_jacobian
            << ", max aspect " << q.max_aspect << ")\n\n";
  const auto tables = bench::color_sweep_report(m, sys, 1, {10, 20, 50, 100});
  bench::emit_json(reg, "fig27_swjapan_colors", argc, argv, {&tables[0], &tables[1]});
  return 0;
}
