// Fig 28 of the paper: effect of reordering the selective blocks by size
// (Fig 22) on single-SMP-node performance. Without the size sort the dense
// LU substitution over the selective blocks runs with per-row size branches
// and ragged batches; the paper measures ~60% of the sorted performance.
//
// Here the size sort changes (a) the dummy-padding volume and (b) the
// same-size batch lengths of the block-solve loops — both measured — and the
// GFLOPS column replays them through the ES vector model.

#include <iostream>

#include "common.hpp"
#include "perf/es_model.hpp"
#include "precond/djds_bic.hpp"

namespace {

geofem::util::Table report(const char* title, const geofem::mesh::HexMesh& m,
                           const geofem::fem::System& sys) {
  using namespace geofem;
  const perf::EsModel es;
  std::cout << title << ":\n";
  util::Table table({"block sort", "dummy %", "avg batch len", "modeled GFLOPS", "relative"});
  double sorted_gflops = 0.0;
  for (bool sorted : {true, false}) {
    auto sn = contact::build_supernodes(sys.a.n, m.contact_groups);
    const precond::OwnedDJDSBIC prec(sys.a, std::move(sn), 20, 8, sorted);
    const auto& jag = prec.inner().jagged_loops();
    const double jag_flops = 18.0 * static_cast<double>(jag.total_length());
    const double solve_flops = prec.inner().block_solve_flops();
    // Sorted: equal-size dense solves vectorize across each batch (batch
    // length = vector length). Unsorted: per-row size branches force scalar
    // execution of the block solves — the paper's Fig 22 rationale.
    double sec = es.vector_seconds(jag, 18.0) / 8.0;
    if (sorted) {
      const auto& batches = prec.inner().batch_loops();
      const double fpe = solve_flops / std::max<double>(batches.total_length(), 1.0);
      sec += es.vector_seconds(batches, fpe) / 8.0;
    } else {
      sec += es.scalar_seconds(solve_flops) / 8.0;
    }
    const double gf = perf::gflops(jag_flops + solve_flops, sec);
    if (sorted) sorted_gflops = gf;
    table.row({sorted ? "with (Fig 22)" : "without",
               util::Table::fmt(prec.djds().dummy_percent(), 2),
               util::Table::fmt(prec.inner().batch_loops().average(), 1),
               util::Table::fmt(gf, 1),
               util::Table::fmt(100.0 * gf / sorted_gflops, 1) + "%"});
  }
  table.print();
  std::cout << "\n";
  return table;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace geofem;
  obs::Registry reg;
  obs::Attach attach(&reg);
  std::vector<util::Table> tables;
  {
    const auto params = bench::table2_block();
    const mesh::HexMesh m = mesh::simple_block(params);
    const fem::System sys = bench::assemble(m, bench::simple_block_bc(m), 1e6);
    bench::describe_problem(reg, sys.a.ndof(), 1e6);
    std::cout << "== Fig 28: selective-block size reordering, " << sys.a.ndof() << " DOF ==\n\n";
    tables.push_back(report("simple block model", m, sys));
  }
  {
    const mesh::HexMesh m = mesh::southwest_japan_like(bench::tableA3_swjapan());
    const fem::System sys = bench::assemble(m, bench::swjapan_bc(m), 1e6);
    tables.push_back(report("Southwest-Japan-like model", m, sys));
  }
  bench::emit_json(reg, "fig28_block_sort", argc, argv, {&tables[0], &tables[1]});
  return 0;
}
