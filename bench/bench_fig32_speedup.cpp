// Fig 32 of the paper: parallel speed-up of SB-BIC(0) CG (PDJDS/MC) on the
// simple block model (10,187,151 DOF in the paper; scaled here) from 1 to 10
// SMP nodes, for 13 and 30 colors, hybrid vs flat MPI.
//
// Paper shape: both models speed up at >74% of ideal; fewer colors give the
// better parallel speed-up; flat MPI slightly ahead of hybrid.

#include <iostream>

#include "color_sweep.hpp"

int main(int argc, char** argv) {
  using namespace geofem;
  obs::Registry reg;
  obs::Attach attach(&reg);
  // The paper runs 10.2M DOF (127k DOF per PE); at laptop scale the per-PE
  // loop lengths are far below the vector machine's n_half, so the modeled
  // parallel efficiency saturates much earlier than the paper's 74-86% —
  // EXPERIMENTS.md discusses the scale effect.
  const auto params = bench::paper_scale() ? mesh::SimpleBlockParams{30, 30, 24, 30, 30}
                                           : mesh::SimpleBlockParams{16, 16, 14, 16, 16};
  const mesh::HexMesh m = mesh::simple_block(params);
  const auto bc = bench::simple_block_bc(m);
  const fem::System sys = bench::assemble(m, bc, 1e6);
  bench::describe_problem(reg, sys.a.ndof(), 1e6);
  std::cout << "== Fig 32: speed-up 1..10 SMP nodes, simple block model, " << sys.a.ndof()
            << " DOF, lambda=1e6 ==\n\n";

  std::vector<util::Table> tables;
  for (int colors : {13, 30}) {
    std::cout << colors << " colors:\n";
    util::Table table({"SMP nodes", "model", "PE#", "iters", "modeled sec", "speed-up",
                       "% of ideal"});
    for (bool hybrid : {true, false}) {
      double t1 = 0.0;
      for (int nodes : {1, 2, 4, 8, 10}) {
        const auto row = bench::run_color_point(m, sys, nodes, hybrid, colors);
        if (nodes == 1) t1 = row.modeled_seconds;
        const double speedup = 8.0 * t1 / row.modeled_seconds;  // vs 8 PEs
        table.row({std::to_string(nodes), hybrid ? "hybrid" : "flat MPI",
                   std::to_string(nodes * 8), std::to_string(row.iterations),
                   util::Table::fmt(row.modeled_seconds, 3), util::Table::fmt(speedup, 1),
                   util::Table::fmt(100.0 * speedup / (8.0 * nodes), 1)});
      }
    }
    table.print();
    std::cout << "\n";
    tables.push_back(std::move(table));
  }
  bench::emit_json(reg, "fig32_speedup", argc, argv, {&tables[0], &tables[1]});
  return 0;
}
