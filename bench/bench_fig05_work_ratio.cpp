// Fig 5 of the paper: parallel work ratio (computation / elapsed, including
// communication) for weak scaling of the simple 3D elastic problem on the
// Hitachi SR2201 — above 95% once the per-PE problem is large enough.
//
// We run the real distributed CG per PE count with a fixed per-rank problem
// size, measure traffic and FLOPs, and evaluate the ratio through the SR2201
// machine model for the paper's three per-PE sizes.

#include <iostream>

#include "common.hpp"
#include "dist/dist_solver.hpp"
#include "part/local_system.hpp"
#include "perf/es_model.hpp"
#include "precond/bic.hpp"

int main(int argc, char** argv) {
  using namespace geofem;
  obs::Registry reg;
  obs::Attach attach(&reg);
  bench::describe_problem(reg, 0);
  const perf::EsModel sr = perf::EsModel::sr2201();
  auto factory = [](const part::LocalSystem&, const sparse::BlockCSR& aii, precond::Precision) {
    return std::make_unique<precond::BIC0>(aii);
  };
  std::cout << "== Fig 5: parallel work ratio, weak scaling, homogeneous cube ==\n"
               "(paper: 12,288 / 98,304 / 192,000 DOF per PE; >95% when large)\n\n";

  // per-PE cube edge (elements); paper sizes are 16/32/40 per PE
  const std::vector<int> edges = bench::paper_scale() ? std::vector<int>{8, 12, 16}
                                                      : std::vector<int>{5, 8, 10};
  const std::vector<int> ranks_list = bench::paper_scale()
                                          ? std::vector<int>{2, 4, 8, 16, 32}
                                          : std::vector<int>{2, 4, 8, 16};

  util::Table table({"DOF/PE", "PE#", "iters", "work ratio %"});
  for (int e : edges) {
    for (int ranks : ranks_list) {
      // weak scaling: stack rank cubes along x
      const mesh::HexMesh m = mesh::unit_cube(e * ranks, e, e, ranks, 1.0, 1.0);
      fem::System sys = fem::assemble_elasticity(m, {{1.0, 0.3}});
      fem::BoundaryConditions bc;
      bc.fix_nodes(m.nodes_where([](double, double, double z) { return z == 0.0; }), -1);
      bc.surface_load(m, [](double, double, double z) { return z == 1.0; }, 2, -1.0);
      fem::apply_boundary_conditions(sys, bc);

      const auto p = part::rcb(m.coords, ranks);
      const auto systems = part::distribute(sys.a, sys.b, p);
      const auto res = dist::solve_distributed(systems, factory);

      double worst_ratio = 100.0;
      for (int r = 0; r < ranks; ++r) {
        perf::TimeBreakdown tb;
        tb.compute = sr.scalar_seconds(
            static_cast<double>(res.flops_per_rank[static_cast<std::size_t>(r)].total()));
        const auto& t = res.traffic_per_rank[static_cast<std::size_t>(r)];
        tb.comm_latency = static_cast<double>(t.messages_sent) * sr.mpi_latency +
                          static_cast<double>(t.allreduces + t.barriers) * sr.allreduce_latency *
                              std::ceil(std::log2(std::max(ranks, 2)));
        tb.comm_bandwidth = static_cast<double>(t.bytes_sent) / sr.mpi_bandwidth;
        worst_ratio = std::min(worst_ratio, tb.work_ratio_percent());
      }
      table.row({std::to_string(3 * (e + 1) * (e + 1) * (e + 1)), std::to_string(ranks),
                 std::to_string(res.iterations), util::Table::fmt(worst_ratio, 1)});
    }
  }
  table.print();
  bench::emit_json(reg, "fig05_work_ratio", argc, argv, {&table});
  std::cout << "\nLarger per-PE problems push the work ratio toward 100%, smaller ones and\n"
               "higher PE counts pull it down — the Fig 5 trend.\n";
  return 0;
}
