// Fig 26 of the paper: single SMP node of the Earth Simulator, SB-BIC(0) CG
// with PDJDS/MC reordering on the simple block model (2,471,439 DOF in the
// paper; scaled here): iterations, elapsed time and GFLOPS vs the MC color
// count, plus GFLOPS vs average vector length.
//
// Paper shape: more colors -> fewer iterations but shorter vector loops and
// lower GFLOPS; best time at a small color count. Hybrid is more sensitive
// to the color count than flat MPI (OpenMP sync per color); flat MPI has the
// higher GFLOPS, hybrid the fewer iterations.

#include <iostream>

#include "color_sweep.hpp"

int main(int argc, char** argv) {
  using namespace geofem;
  const auto params = bench::paper_scale() ? mesh::SimpleBlockParams{24, 24, 14, 24, 24}
                                           : mesh::SimpleBlockParams{12, 12, 8, 12, 12};
  const mesh::HexMesh m = mesh::simple_block(params);
  const auto bc = bench::simple_block_bc(m);
  const fem::System sys = bench::assemble(m, bc, 1e6);
  obs::Registry reg;
  obs::Attach attach(&reg);
  bench::describe_problem(reg, sys.a.ndof(), 1e6);
  std::cout << "== Fig 26: color-count sweep, simple block model, " << sys.a.ndof()
            << " DOF, 1 SMP node, lambda=1e6 ==\n\n";
  const auto tables = bench::color_sweep_report(m, sys, 1, {5, 10, 20, 50, 100});
  bench::emit_json(reg, "fig26_simple_colors", argc, argv, {&tables[0], &tables[1]});
  return 0;
}
