// Thread-scaling of the hybrid CG kernels (DESIGN.md §5e). One serial
// SB-BIC(0) PDJDS solve per OpenMP team size; the residual histories must be
// BIT-IDENTICAL across team sizes (the par layer's determinism contract —
// the binary exits nonzero on any mismatch, which is what the CI smoke step
// checks). Measured wall-clock speed-up is reported next to the Earth
// Simulator hybrid model's prediction (vector compute divided across the
// node's PEs plus a fork/join cost per parallel region); on hosts with a
// single core the measured column is flat while the model shows what an SMP
// node would do. GEOFEM_BENCH_TINY=1 shrinks the mesh and the team sweep.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "par/par.hpp"
#include "perf/es_model.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace geofem;
  const char* tiny_env = std::getenv("GEOFEM_BENCH_TINY");
  const bool tiny = tiny_env && *tiny_env && std::string(tiny_env) != "0";
  const auto params = tiny                   ? mesh::SimpleBlockParams{4, 4, 3, 4, 4}
                      : bench::paper_scale() ? mesh::SimpleBlockParams{12, 12, 9, 12, 12}
                                             : mesh::SimpleBlockParams{6, 6, 4, 6, 6};
  const std::vector<int> teams = tiny ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4};
  const mesh::HexMesh m = mesh::simple_block(params);
  const auto bc = bench::simple_block_bc(m);
  const double lambda = 1e6;
  const fem::System sys = bench::assemble(m, bc, lambda);
  const auto sn = contact::build_supernodes(sys.a.n, m.contact_groups);

  obs::Registry reg;
  obs::Attach attach(&reg);
  bench::describe_problem(reg, m.num_dof(), lambda);
  reg.set_meta("hardware_threads", static_cast<double>(par::hardware_threads()));
  std::cout << "== Hybrid thread scaling, SB-BIC(0) PDJDS, " << m.num_dof() << " DOF ("
            << par::hardware_threads() << " hardware threads) ==\n\n";

  const perf::EsModel es;
  // Parallel regions per CG iteration in the ES hybrid model: three SpMV
  // phases, two substitution sweeps, and ~5 BLAS-1 kernels.
  constexpr double kRegionsPerIteration = 10.0;

  util::Table table(
      {"threads", "iters", "time [s]", "speedup", "model speedup", "bit-identical"});
  bool ok = true;
  core::SolveReport base;
  double t1 = 0.0, model_t1 = 0.0;

  for (int t : teams) {
    core::SolveConfig cfg;
    cfg.precond = core::PrecondKind::kSBBIC0;
    cfg.ordering = core::OrderingKind::kPDJDSMC;
    cfg.penalty = lambda;
    cfg.threads = t;
    cfg.cg.max_iterations = 4000;
    cfg.cg.record_residuals = true;
    cfg.use_plan_cache = false;
    util::Timer timer;
    const auto rep = core::solve_system(sys, sn, cfg);
    const double wall = timer.seconds();
    if (!rep.converged()) {
      std::cerr << "FAIL: threads=" << t << " did not converge\n";
      ok = false;
    }

    bool identical = true;
    if (t == teams.front()) {
      base = rep;
      t1 = wall;
    } else {
      identical = rep.cg.residual_history.size() == base.cg.residual_history.size() &&
                  rep.cg.iterations == base.cg.iterations;
      if (identical)
        for (std::size_t k = 0; k < base.cg.residual_history.size(); ++k)
          identical = identical && rep.cg.residual_history[k] == base.cg.residual_history[k];
      if (identical)
        for (std::size_t i = 0; i < base.solution.size(); ++i)
          identical = identical && rep.solution[i] == base.solution[i];
      if (!identical) {
        std::cerr << "FAIL: threads=" << t
                  << " is not bit-identical to threads=" << teams.front() << "\n";
        ok = false;
      }
    }

    // ES hybrid model: vector compute spread over t PEs of the node, plus a
    // fork/join per parallel region per iteration.
    const double t_vec = es.vector_seconds(rep.cg.loops, 18.0);
    const double model_t =
        t_vec / t + es.omp_seconds(static_cast<std::int64_t>(
                        kRegionsPerIteration * static_cast<double>(rep.cg.iterations)));
    if (t == teams.front()) model_t1 = model_t;

    const double speedup = wall > 0.0 ? t1 / wall : 0.0;
    const double model_speedup = model_t > 0.0 ? model_t1 / model_t : 0.0;
    table.row({std::to_string(t), std::to_string(rep.cg.iterations),
               util::Table::sci(wall, 2), util::Table::fmt(speedup, 2) + "x",
               util::Table::fmt(model_speedup, 2) + "x", identical ? "yes" : "NO"});
    reg.gauge("hybrid.speedup.threads_" + std::to_string(t))->set(speedup);
    reg.gauge("hybrid.model_speedup.threads_" + std::to_string(t))->set(model_speedup);
  }

  table.print();
  bench::emit_json(reg, "hybrid_threads", argc, argv, {&table});
  if (!ok) {
    std::cerr << "\nhybrid smoke FAILED\n";
    return 1;
  }
  std::cout << "\nhybrid smoke passed (residual histories bit-identical across team sizes)\n";
  return 0;
}
