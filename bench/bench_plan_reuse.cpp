// Plan-cache amortization across nonlinear cycles: an ALM lambda sweep where
// every outer cycle refactors its preconditioner (the general Newton-Raphson
// workload, ALMOptions::refresh_precond_each_cycle). The cold builder redoes
// the full structure phase — supernode detection, symbolic factorization and
// (on the PDJDS layout) coloring plus the jagged-diagonal build — on every
// cycle, exactly what core::solve does with use_plan_cache = false. The
// plan-cached builder pays it on cycle 0 only and runs the schedule-driven
// numeric phase afterwards.
//
// BIC(1)/BIC(2) run on the natural ordering, where the level-of-fill symbolic
// phase dominates set-up. SB-BIC(0) runs on its production layout from the
// paper — PDJDS/CM-RCM on the Earth Simulator — where the cached structure
// phase is the supernode-aware coloring and DJDS reordering. (On the natural
// ordering SB-BIC(0)'s symbolic phase is a surface term — only contact rows —
// so there is little to amortize; the vectorized layout is where reuse pays.)
//
// Expected shape: "warm/cycle" is several times cheaper than "cold/cycle";
// iteration counts are identical (both sides run the same numeric phase on
// the same structure). The binary exits nonzero if the cache never hits or
// any iteration count differs — CI runs it (tiny, under sanitizers) as the
// plan-reuse smoke test: GEOFEM_BENCH_TINY=1 shrinks the mesh so the asan
// build stays fast.

#include <cstdlib>
#include <iostream>
#include <algorithm>

#include "common.hpp"
#include "nonlin/alm.hpp"
#include "plan/cache.hpp"
#include "plan/plan.hpp"

namespace {

/// Best-of-N over the warm cycles (skipping cycle 0, which pays the plan
/// build). Best-of filters scheduler noise out of sub-millisecond timings.
double best_tail(const std::vector<double>& v) {
  if (v.size() < 2) return v.empty() ? 0.0 : v[0];
  return *std::min_element(v.begin() + 1, v.end());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace geofem;
  const char* tiny_env = std::getenv("GEOFEM_BENCH_TINY");
  const bool tiny = tiny_env && *tiny_env && std::string(tiny_env) != "0";
  const auto params = tiny                   ? mesh::SimpleBlockParams{3, 3, 2, 3, 3}
                      : bench::paper_scale() ? mesh::SimpleBlockParams{10, 10, 8, 10, 10}
                                             : mesh::SimpleBlockParams{6, 6, 4, 6, 6};
  const mesh::HexMesh m = mesh::simple_block(params);
  const auto bc = bench::simple_block_bc(m);

  obs::Registry reg;
  obs::Attach attach(&reg);
  bench::describe_problem(reg, m.num_dof());
  std::cout << "== Plan reuse across ALM cycles (refactor every cycle), " << m.num_dof()
            << " DOF ==\n\n";

  util::Table table({"precond", "ordering", "lambda", "cycles", "cold/cycle [s]",
                     "warm/cycle [s]", "setup speedup", "total lin iters", "iters match"});
  bool ok = true;

  struct Config {
    plan::PrecondKind precond;
    plan::OrderingKind ordering;
  };
  const std::vector<Config> configs = {
      {plan::PrecondKind::kBIC1, plan::OrderingKind::kNatural},
      {plan::PrecondKind::kBIC2, plan::OrderingKind::kNatural},
      {plan::PrecondKind::kSBBIC0, plan::OrderingKind::kPDJDSCMRCM},
  };
  for (const Config& c : configs) {
    for (double lambda : {1e4, 1e6}) {
      plan::PlanConfig pcfg;
      pcfg.precond = c.precond;
      pcfg.ordering = c.ordering;

      nonlin::ALMOptions opt;
      opt.lambda = lambda;
      opt.constraint_tol = 0.0;  // never converge early: fixed refactor count to time
      opt.max_cycles = tiny ? 4 : 6;
      opt.inner.max_iterations = 4000;
      opt.refresh_precond_each_cycle = true;

      // Cold baseline: a fresh plan (full structure phase) on every cycle.
      const auto cold = nonlin::solve_tied_contact_alm(
          m, {{1.0, 0.3}}, bc,
          [&](const sparse::BlockCSR& a) -> precond::PreconditionerPtr {
            const auto sn = contact::build_supernodes(a.n, m.contact_groups);
            return std::make_unique<plan::PlannedPreconditioner>(
                std::make_shared<plan::SolvePlan>(a, sn, pcfg), a);
          },
          opt);

      // Plan-cached: cycle 0 builds the plan (miss), cycles 1+ hit it.
      plan::PlanCache cache;
      const auto warm = nonlin::solve_tied_contact_alm(
          m, {{1.0, 0.3}}, bc, plan::cached_builder(cache, pcfg, m.contact_groups), opt);

      const bool iters_match = cold.inner_iterations == warm.inner_iterations;
      const auto cs = cache.stats();
      const std::string label = plan::to_string(c.precond);
      const std::string ord =
          c.ordering == plan::OrderingKind::kNatural ? "natural" : "PDJDS/CM-RCM";
      if (!iters_match) {
        std::cerr << "FAIL: iteration counts differ for " << label << " lambda=" << lambda
                  << "\n";
        ok = false;
      }
      if (cs.hits == 0) {
        std::cerr << "FAIL: plan cache never hit for " << label << " lambda=" << lambda << "\n";
        ok = false;
      }

      const double cold_cycle =
          cold.setup_seconds_per_cycle.empty()
              ? 0.0
              : *std::min_element(cold.setup_seconds_per_cycle.begin(),
                                  cold.setup_seconds_per_cycle.end());
      const double warm_cycle = best_tail(warm.setup_seconds_per_cycle);
      const double speedup = warm_cycle > 0.0 ? cold_cycle / warm_cycle : 0.0;
      table.row({label, ord, util::Table::sci(lambda, 0), std::to_string(warm.cycles),
                 util::Table::sci(cold_cycle, 2), util::Table::sci(warm_cycle, 2),
                 util::Table::fmt(speedup, 1) + "x",
                 std::to_string(warm.total_inner_iterations()), iters_match ? "yes" : "NO"});
      reg.gauge("plan_reuse." + label + ".speedup")->set(speedup);
    }
  }

  table.print();
  bench::emit_json(reg, "plan_reuse", argc, argv, {&table});
  if (!ok) {
    std::cerr << "\nplan reuse smoke FAILED\n";
    return 1;
  }
  std::cout << "\nplan reuse smoke passed (cache hit on every post-cycle-0 refactor, "
               "iteration counts identical)\n";
  return 0;
}
