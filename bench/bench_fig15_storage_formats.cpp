// Fig 15 of the paper: effect of the coefficient-matrix storage format and
// reordering on single-SMP-node performance of the 3D linear elastic problem:
//   * PDJDS/CM-RCM    — long innermost loops, performance grows with size
//                       (0.5 -> 22.7 GFLOPS on the Earth Simulator)
//   * PDCRS/CM-RCM    — same permutation but CRS storage: loops stay at the
//                       row-length (~27-80), flat ~1.5 GFLOPS
//   * CRS no reorder  — neither vectorizable nor SMP-parallel in the IC
//                       substitution: ~0.3 GFLOPS
//
// The innermost-loop-length histograms are measured from the real execution
// of each format on each problem size; the GFLOPS column replays them through
// the Earth Simulator vector model (8 PEs). The host wall-clock columns are
// reported for reference, twice per format: once under the build's active
// SIMD tier and once under simd::IsaScope(kScalar) — the modern re-run of the
// paper's vectorized-vs-scalar comparison on the same storage formats.

#include <iostream>

#include "common.hpp"
#include "perf/es_model.hpp"
#include "reorder/coloring.hpp"
#include "reorder/djds.hpp"
#include "simd/simd.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace geofem;
  obs::Registry reg;
  obs::Attach attach(&reg);
  bench::describe_problem(reg, 0);
  const perf::EsModel es;
  std::cout << "== Fig 15: storage format / reordering vs modeled ES GFLOPS (1 SMP node) ==\n\n";

  const std::string host_col = std::string("host GFLOPS (") + simd::active_isa() + ")";
  util::Table table({"DOF", "format", "avg loop len", "modeled GFLOPS", "% of peak",
                     host_col, "host GFLOPS (scalar)", "host speedup"});
  const int sizes_small[] = {8, 12, 16, 24};
  const int sizes_paper[] = {8, 16, 24, 32, 48};
  const auto& sizes = bench::paper_scale() ? std::vector<int>(std::begin(sizes_paper), std::end(sizes_paper))
                                           : std::vector<int>(std::begin(sizes_small), std::end(sizes_small));

  for (int n : sizes) {
    const mesh::HexMesh m = mesh::unit_cube(n, n, n);
    fem::System sys = fem::assemble_elasticity(m, {{1.0, 0.3}});
    fem::BoundaryConditions bc;
    bc.fix_nodes(m.nodes_where([](double, double, double z) { return z == 0.0; }), -1);
    bc.surface_load(m, [](double, double, double z) { return z == 1.0; }, 2, -1.0);
    fem::apply_boundary_conditions(sys, bc);
    const std::size_t ndof = sys.a.ndof();

    std::vector<double> x(ndof, 1.0), y(ndof);
    const int sweeps = 10;

    // --- PDJDS/MC ---
    {
      const auto g = sparse::graph_of(sys.a);
      const auto col = reorder::cm_rcm(g, 20);
      reorder::DJDSMatrix dj(sys.a, col, nullptr, {});
      util::FlopCounter fc;
      util::LoopStats ls;
      util::Timer t;
      for (int s = 0; s < sweeps; ++s) dj.spmv(x, y, &fc, &ls);
      const double host = perf::gflops(static_cast<double>(fc.spmv), t.seconds());
      double host_scalar;
      {
        simd::IsaScope scalar(simd::Isa::kScalar);
        util::Timer ts;
        for (int s = 0; s < sweeps; ++s) dj.spmv(x, y);
        host_scalar = perf::gflops(static_cast<double>(fc.spmv), ts.seconds());
      }
      // 8 PEs share the chunks; per-PE work = total/8 in the balanced limit
      const double sec = es.vector_seconds(ls, 18.0) / es.pes_per_node;
      const double gf = perf::gflops(static_cast<double>(fc.spmv), sec);
      table.row({std::to_string(ndof), "PDJDS/CM-RCM", util::Table::fmt(ls.average(), 1),
                 util::Table::fmt(gf, 2),
                 util::Table::fmt(100.0 * gf / (es.peak_per_pe * es.pes_per_node / 1e9), 1),
                 util::Table::fmt(host, 2), util::Table::fmt(host_scalar, 2),
                 util::Table::fmt(host / host_scalar, 2) + "x"});
    }
    // --- PDCRS/MC: same permutation, row-wise CRS loops ---
    {
      util::FlopCounter fc;
      util::LoopStats ls;
      util::Timer t;
      for (int s = 0; s < sweeps; ++s) sys.a.spmv(x, y, &fc, &ls);
      const double host = perf::gflops(static_cast<double>(fc.spmv), t.seconds());
      double host_scalar;
      {
        simd::IsaScope scalar(simd::Isa::kScalar);
        util::Timer ts;
        for (int s = 0; s < sweeps; ++s) sys.a.spmv(x, y);
        host_scalar = perf::gflops(static_cast<double>(fc.spmv), ts.seconds());
      }
      const double sec = es.vector_seconds(ls, 18.0) / es.pes_per_node;
      const double gf = perf::gflops(static_cast<double>(fc.spmv), sec);
      table.row({std::to_string(ndof), "PDCRS/CM-RCM", util::Table::fmt(ls.average(), 1),
                 util::Table::fmt(gf, 2),
                 util::Table::fmt(100.0 * gf / (es.peak_per_pe * es.pes_per_node / 1e9), 1),
                 util::Table::fmt(host, 2), util::Table::fmt(host_scalar, 2),
                 util::Table::fmt(host / host_scalar, 2) + "x"});
    }
    // --- CRS without reordering: scalar, single PE (the IC substitution has
    // --- global dependencies and cannot use the other 7 PEs) ---
    {
      util::FlopCounter fc;
      sys.a.spmv(x, y, &fc, nullptr);
      const double sec = es.scalar_seconds(static_cast<double>(fc.spmv));
      const double gf = perf::gflops(static_cast<double>(fc.spmv), sec);
      table.row({std::to_string(ndof), "CRS no reorder", "-", util::Table::fmt(gf, 2),
                 util::Table::fmt(100.0 * gf / (es.peak_per_pe * es.pes_per_node / 1e9), 2),
                 "-", "-", "-"});
    }
  }
  table.print();
  bench::emit_json(reg, "fig15_storage_formats", argc, argv, {&table});
  return 0;
}
