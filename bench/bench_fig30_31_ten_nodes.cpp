// Figs 30-31 of the paper: the color-count sweep of Figs 26-27 repeated on
// 10 SMP nodes of the Earth Simulator (29.7M / 23.3M DOF in the paper;
// scaled here). Hybrid runs as 10 ranks (8 PE chunks each), flat MPI as 80
// ranks. Paper shape unchanged from the single-node figures; absolute GFLOPS
// ~10x the single-node numbers; hybrid iterations < flat MPI iterations.

#include <iostream>

#include "color_sweep.hpp"

int main(int argc, char** argv) {
  using namespace geofem;
  obs::Registry reg;
  obs::Attach attach(&reg);
  std::vector<util::Table> tables;
  {
    const auto params = bench::paper_scale() ? mesh::SimpleBlockParams{20, 20, 12, 20, 20}
                                             : mesh::SimpleBlockParams{12, 12, 8, 12, 12};
    const mesh::HexMesh m = mesh::simple_block(params);
    const auto bc = bench::simple_block_bc(m);
    const fem::System sys = bench::assemble(m, bc, 1e6);
    bench::describe_problem(reg, sys.a.ndof(), 1e6);
    std::cout << "== Fig 30: simple block model, " << sys.a.ndof()
              << " DOF, 10 SMP nodes, lambda=1e6 ==\n\n";
    for (auto& t : bench::color_sweep_report(m, sys, 10, {10, 30, 100}))
      tables.push_back(std::move(t));
  }
  {
    mesh::SouthwestJapanParams params;
    if (bench::paper_scale()) {
      params.nx = 36;
      params.ny = 30;
    }
    const mesh::HexMesh m = mesh::southwest_japan_like(params);
    const auto bc = bench::swjapan_bc(m);
    const fem::System sys = bench::assemble(m, bc, 1e6);
    std::cout << "== Fig 31: Southwest-Japan-like model, " << sys.a.ndof()
              << " DOF, 10 SMP nodes, lambda=1e6 ==\n\n";
    for (auto& t : bench::color_sweep_report(m, sys, 10, {10, 30, 100}))
      tables.push_back(std::move(t));
  }
  std::vector<const util::Table*> ptrs;
  for (const auto& t : tables) ptrs.push_back(&t);
  bench::emit_json(reg, "fig30_31_ten_nodes", argc, argv, ptrs);
  return 0;
}
