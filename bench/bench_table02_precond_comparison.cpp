// Table 2 of the paper: iterations / set-up / solve time / per-iteration
// time / memory for preconditioned CG on the 3D elastic fault-zone contact
// problem (simple block model; 83,664 DOF at GEOFEM_BENCH_SCALE=paper).
//
// Paper reference (Xeon 2.8 GHz, eps=1e-8):
//   Diagonal   1e2: 1531 it          1e6: no conv.
//   IC(0)      1e2:  401 it          1e6: no conv.
//   BIC(0)     1e2:  388 it / 59 MB  1e6: 2590 it
//   BIC(1)     1e2:   77 it / 176 MB 1e6:   78 it
//   BIC(2)     1e2:   59 it / 319 MB 1e6:   59 it
//   SB-BIC(0)  1e2:  114 it /  67 MB 1e6:  114 it  <- best total time
//
// Expected shape here: same ranking — SB-BIC(0) flat in lambda, memory at
// BIC(0) level, best set-up+solve among the robust methods; diagonal and
// scalar IC(0) fail (hit the iteration cap) at lambda=1e6.

#include <iostream>

#include "common.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace geofem;
  const auto params = bench::table2_block();
  const mesh::HexMesh m = mesh::simple_block(params);
  const auto bc = bench::simple_block_bc(m);
  const auto sn = contact::build_supernodes(m.num_nodes(), m.contact_groups);
  std::cout << "== Table 2: preconditioner comparison, simple block model, " << m.num_dof()
            << " DOF ==\n\n";

  obs::Registry reg;
  obs::Attach attach(&reg);
  bench::describe_problem(reg, m.num_dof());

  util::Table table(
      {"precond", "lambda", "iters", "setup(s)", "solve(s)", "total(s)", "s/iter", "mem MB"});
  using K = core::PrecondKind;
  for (K kind : {K::kDiagonal, K::kScalarIC0, K::kBIC0, K::kBIC1, K::kBIC2, K::kSBBIC0}) {
    for (double lambda : {1e2, 1e6}) {
      const fem::System sys = bench::assemble(m, bc, lambda);
      util::Timer setup_timer;
      auto prec = core::make_preconditioner(kind, sys.a, sn);
      const double setup = setup_timer.seconds();
      std::vector<double> x(sys.a.ndof(), 0.0);
      solver::CGOptions opt;
      opt.max_iterations = 3000;
      const auto res = solver::pcg(sys.a, *prec, sys.b, x, opt);
      const double mem = (sys.a.memory_bytes() + prec->memory_bytes()) / 1.0e6;

      // per-configuration metrics: "<precond>/lambda=1e+02" namespace
      const std::string key = prec->name() + "/lambda=" + util::Table::sci(lambda, 0);
      reg.counter(key + "/iterations")->add(static_cast<std::uint64_t>(res.iterations));
      reg.counter(key + "/flops_total")->add(res.flops.total());
      reg.gauge(key + "/converged")->set(res.converged() ? 1.0 : 0.0);
      reg.gauge(key + "/setup_seconds")->set(setup);
      reg.gauge(key + "/solve_seconds")->set(res.solve_seconds);
      reg.gauge(key + "/avg_vector_length")->set(res.loops.average());
      reg.gauge(key + "/memory_mb")->set(mem);

      table.row({prec->name(), util::Table::sci(lambda, 0),
                 res.converged() ? std::to_string(res.iterations) : "no conv.",
                 util::Table::fmt(setup, 2), util::Table::fmt(res.solve_seconds, 2),
                 util::Table::fmt(setup + res.solve_seconds, 2),
                 util::Table::fmt(res.iterations ? res.solve_seconds / res.iterations : 0.0, 4),
                 util::Table::fmt(mem, 1)});
    }
  }
  table.print();
  bench::emit_json(reg, "table02_precond_comparison", argc, argv, {&table});
  return 0;
}
