// Table 1 of the paper: homogeneous solid-mechanics cube solved by CG with
// *localized* block IC(0) preconditioning on 1..64 PEs (Hitachi SR2201).
// Iterations grow only mildly with the domain count (paper: 204 -> 274,
// +34% from 1 to 64 PEs); speed-up stays near linear.
//
// Here the PEs are simulated-MPI ranks; wall-clock speed-up on a 1-core host
// is meaningless, so the speed-up column is replayed through the Earth
// Simulator machine model from measured FLOPs and traffic.

#include <iostream>

#include "common.hpp"
#include "dist/dist_solver.hpp"
#include "part/local_system.hpp"
#include "perf/es_model.hpp"
#include "precond/bic.hpp"

int main(int argc, char** argv) {
  using namespace geofem;
  const int n = bench::paper_scale() ? 32 : 20;  // paper: 44^3 nodes
  const mesh::HexMesh m = mesh::unit_cube(n, n, n);
  fem::System sys = fem::assemble_elasticity(m, {{1.0, 0.3}});
  fem::BoundaryConditions bc;
  bc.fix_nodes(m.nodes_where([](double, double, double z) { return z == 0.0; }), -1);
  bc.surface_load(m, [](double, double, double z) { return z == 1.0; }, 2, -1.0);
  fem::apply_boundary_conditions(sys, bc);
  obs::Registry reg;
  obs::Attach attach(&reg);
  bench::describe_problem(reg, sys.a.ndof());
  std::cout << "== Table 1: localized BIC(0) CG on the homogeneous cube, " << sys.a.ndof()
            << " DOF ==\n(paper: 3x44^3 = 255,552 DOF; iterations +34% from 1 to 64 PEs)\n\n";

  const perf::EsModel es = perf::EsModel::sr2201();
  auto factory = [](const part::LocalSystem&, const sparse::BlockCSR& aii, precond::Precision) {
    return std::make_unique<precond::BIC0>(aii);
  };

  util::Table table({"PE#", "iters", "modeled sec", "speed-up", "msgs/rank/iter"});
  double t1 = 0.0;
  for (int ranks : {1, 2, 4, 8, 16, 32, 64}) {
    const auto p = part::rcb(m.coords, ranks);
    const auto systems = part::distribute(sys.a, sys.b, p);
    const auto res = dist::solve_distributed(systems, factory);
    if (!res.converged()) {
      std::cout << "ranks=" << ranks << " did not converge\n";
      continue;
    }
    // modeled per-rank time: compute (scalar CSR loops -> use vector model on
    // row-length loops) + comm; elapsed = max over ranks
    double elapsed = 0.0;
    for (int r = 0; r < ranks; ++r) {
      const auto& f = res.flops_per_rank[static_cast<std::size_t>(r)];
      const double compute = es.scalar_seconds(static_cast<double>(f.total()));
      const double comm = es.comm_seconds(res.traffic_per_rank[static_cast<std::size_t>(r)], ranks);
      elapsed = std::max(elapsed, compute + comm);
    }
    if (ranks == 1) t1 = elapsed;
    const double msgs =
        static_cast<double>(res.traffic_per_rank[0].messages_sent) / std::max(res.iterations, 1);
    table.row({std::to_string(ranks), std::to_string(res.iterations),
               util::Table::fmt(elapsed, 3), util::Table::fmt(t1 / elapsed, 2),
               util::Table::fmt(msgs, 1)});
  }
  table.print();
  bench::emit_json(reg, "table01_localized_ic0", argc, argv, {&table});
  return 0;
}
