// Ablation (DESIGN.md §6): the BIC(0)/SB-BIC(0) diagonal modification
// D~_i = A_ii - sum A_ik D~_k^-1 A_ik^T vs the plain block-SSOR diagonal
// D~_i = A_ii. The modification is GeoFEM's formulation; on non-M hex
// elasticity matrices it can over-subtract (E_max of M^-1 A rises above 1)
// yet usually still pays off in iterations for BIC(0); the unmodified form
// guarantees E_max <= 1.

#include <iostream>

#include "common.hpp"
#include "eig/lanczos.hpp"
#include "precond/bic.hpp"
#include "precond/sb_bic0.hpp"

int main(int argc, char** argv) {
  using namespace geofem;
  const auto params = bench::paper_scale() ? mesh::SimpleBlockParams{20, 20, 15, 20, 20}
                                           : mesh::SimpleBlockParams{10, 10, 8, 10, 10};
  const mesh::HexMesh m = mesh::simple_block(params);
  const auto bc = bench::simple_block_bc(m);
  const auto sn = contact::build_supernodes(m.num_nodes(), m.contact_groups);
  obs::Registry reg;
  obs::Attach attach(&reg);
  bench::describe_problem(reg, m.num_dof());
  std::cout << "== Ablation: modified vs plain (SSOR) diagonals in BIC(0)/SB-BIC(0), "
            << m.num_dof() << " DOF ==\n\n";

  util::Table table({"precond", "diag", "lambda", "iters", "E_max", "kappa"});
  for (double lambda : {1e2, 1e6}) {
    const fem::System sys = bench::assemble(m, bc, lambda);
    for (bool selective : {false, true}) {
      for (bool modified : {true, false}) {
        precond::PreconditionerPtr prec;
        if (selective) {
          prec = std::make_unique<precond::SBBIC0>(sys.a, sn, modified);
        } else {
          prec = std::make_unique<precond::BIC0>(sys.a, precond::Precision::kDouble, modified);
        }
        std::vector<double> x(sys.a.ndof(), 0.0);
        solver::CGOptions opt;
        opt.max_iterations = 3000;
        const auto res = solver::pcg(sys.a, *prec, sys.b, x, opt);
        const auto est = eig::estimate_spectrum(sys.a, *prec, sys.b, 150);
        table.row({prec->name(), modified ? "modified" : "plain", util::Table::sci(lambda, 0),
                   res.converged() ? std::to_string(res.iterations) : "no conv.",
                   util::Table::fmt(est.emax, 3), util::Table::sci(est.condition(), 2)});
      }
    }
  }
  table.print();
  bench::emit_json(reg, "ablation_modified_diag", argc, argv, {&table});
  std::cout << "\nPlain diagonals bound E_max by 1; the modified recurrence buys iterations\n"
               "for BIC(0) and is what GeoFEM ships. SB-BIC(0) is robust either way.\n";
  return 0;
}
