// Figs 16-19 of the paper: weak scaling of the 3x3 block ICCG(0) solver on
// the Earth Simulator for simple geometries, hybrid vs flat MPI.
//
// Paper shape: both models scale; flat MPI is slightly ahead on few nodes,
// hybrid catches up / wins at scale and with small per-node problems
// (latency: flat has 8x the MPI processes); hybrid needs slightly fewer
// iterations (less localization: 1 domain per node instead of 8).
//
// Hybrid runs as N ranks (one per SMP node, 8 modeled PEs inside via
// PDJDS/MC chunks); flat MPI as 8N ranks. Time is replayed through the ES
// machine model from measured FLOPs, loop lengths and traffic.
//
// Each configuration also runs with the two-level coarse correction
// (DistOptions::coarse, one aggregate per domain, deflated) beside the
// one-level baseline: the localized preconditioner's iteration growth with
// the domain count is what the coarse space flattens, and both series land
// in BENCH_*.json as per-domain-count gauges. CI runs the tiny shape
// (GEOFEM_BENCH_TINY=1) as the two-level smoke test.

#include <cstdlib>
#include <iostream>
#include <string>

#include "common.hpp"
#include "dist/dist_solver.hpp"
#include "part/local_system.hpp"
#include "perf/es_model.hpp"
#include "precond/bic.hpp"
#include "reorder/coloring.hpp"
#include "reorder/djds.hpp"

int main(int argc, char** argv) {
  using namespace geofem;
  obs::Registry reg;
  obs::Attach attach(&reg);
  bench::describe_problem(reg, 0);
  const perf::EsModel es;
  const char* tiny_env = std::getenv("GEOFEM_BENCH_TINY");
  const bool tiny = tiny_env && *tiny_env && std::string(tiny_env) != "0";
  const int e = tiny ? 4 : (bench::paper_scale() ? 14 : 10);  // per-SMP-node cube edge
  std::cout << "== Figs 16-19: weak scaling, hybrid vs flat MPI, ICCG(0), "
            << 3 * (e + 1) * (e + 1) * (e + 1) << " DOF per SMP node ==\n\n";

  auto factory = [](const part::LocalSystem&, const sparse::BlockCSR& aii, precond::Precision) {
    return std::make_unique<precond::BIC0>(aii);
  };

  util::Table table({"SMP nodes", "model", "ranks", "iters", "iters 2-level", "modeled GFLOPS",
                     "% peak", "work ratio %"});
  // Iteration series per model: the paper's growth curve (one-level) against
  // the flattened two-level one. Growth is measured from the smallest
  // MULTI-domain count — a single domain has no localization error, so its
  // coarse space (3 rigid translations) has nothing to correct and would
  // understate the flattening.
  struct Series {
    int first1 = 0, last1 = 0, first2 = 0, last2 = 0;
    void record(int ranks, int iters1, int iters2) {
      if (ranks < 2) return;
      if (first1 == 0) {
        first1 = iters1;
        first2 = iters2;
      }
      last1 = iters1;
      last2 = iters2;
    }
    [[nodiscard]] double growth1() const {
      return first1 > 0 ? 100.0 * (last1 - first1) / first1 : 0.0;
    }
    [[nodiscard]] double growth2() const {
      return first2 > 0 ? 100.0 * (last2 - first2) / first2 : 0.0;
    }
  };
  Series flat_series, hybrid_series;
  bool smoke_ok = true;
  for (int nodes : {1, 2, 4, 8}) {
    if (tiny && nodes > 4) break;
    const mesh::HexMesh m = mesh::unit_cube(e * nodes, e, e, nodes, 1.0, 1.0);
    fem::System sys = fem::assemble_elasticity(m, {{1.0, 0.3}});
    fem::BoundaryConditions bc;
    bc.fix_nodes(m.nodes_where([](double, double, double z) { return z == 0.0; }), -1);
    bc.surface_load(m, [](double, double, double z) { return z == 1.0; }, 2, -1.0);
    fem::apply_boundary_conditions(sys, bc);

    for (bool hybrid : {false, true}) {
      if (tiny && !hybrid) continue;  // smoke shape: keep the rank count small
      const int ranks = hybrid ? nodes : nodes * 8;
      const auto p = part::rcb(m.coords, ranks);
      const auto systems = part::distribute(sys.a, sys.b, p);
      const auto res = dist::solve_distributed(systems, factory);

      dist::DistOptions copt;
      copt.coarse.enabled = true;  // per-domain aggregates, deflated (defaults)
      const auto res2 = dist::solve_distributed(systems, factory, copt);
      smoke_ok = smoke_ok && res2.converged() &&
                 res2.coarse_status == coarse::SetupStatus::kActive &&
                 res2.iterations <= res.iterations;

      const std::string series = hybrid ? "hybrid" : "flat";
      const std::string dom = std::to_string(ranks);
      reg.gauge("weak." + series + "." + dom + ".iters.one_level")->set(res.iterations);
      reg.gauge("weak." + series + "." + dom + ".iters.two_level")->set(res2.iterations);
      reg.gauge("weak." + series + "." + dom + ".coarse_dim")->set(res2.coarse_dim);
      (hybrid ? hybrid_series : flat_series).record(ranks, res.iterations, res2.iterations);

      // Per-rank modeled time. Vector compute: the substitution/matvec loop
      // lengths of each rank's local matrix under its own MC/DJDS ordering.
      double elapsed = 0.0, flops_total = 0.0;
      perf::TimeBreakdown worst;
      for (int r = 0; r < ranks; ++r) {
        const auto& ls = systems[static_cast<std::size_t>(r)];
        const sparse::BlockCSR aii = ls.internal_matrix();
        const auto g = sparse::graph_of(aii);
        const auto col = reorder::cm_rcm(g, 20);
        reorder::DJDSOptions opt;
        opt.npe = hybrid ? 8 : 1;
        const reorder::DJDSMatrix dj(aii, col, nullptr, opt);
        util::LoopStats sweep;
        {  // structural: one matvec sweep loop profile
          std::vector<double> xx(aii.ndof(), 1.0), yy(aii.ndof());
          dj.spmv(xx, yy, nullptr, &sweep);
        }
        const auto& f = res.flops_per_rank[static_cast<std::size_t>(r)];
        flops_total += static_cast<double>(f.total());
        perf::TimeBreakdown tb;
        // all solve FLOPs executed at the loop profile of the local matrix,
        // spread over the PEs of the rank (hybrid: 8, flat: 1)
        const double sweep_flops = 18.0 * static_cast<double>(sweep.total_length());
        const double sweep_sec = es.vector_seconds(sweep, 18.0) / (hybrid ? 8.0 : 1.0);
        tb.compute = static_cast<double>(f.total()) * sweep_sec / std::max(sweep_flops, 1.0);
        const auto& t = res.traffic_per_rank[static_cast<std::size_t>(r)];
        tb.comm_latency = static_cast<double>(t.messages_sent) * es.mpi_latency +
                          static_cast<double>(t.allreduces + t.barriers) * es.allreduce_latency *
                              std::ceil(std::log2(std::max(ranks, 2)));
        tb.comm_bandwidth = static_cast<double>(t.bytes_sent) / es.mpi_bandwidth;
        if (hybrid)
          tb.omp = es.omp_seconds(2LL * dj.num_colors() * res.iterations);
        if (tb.total() > worst.total()) worst = tb;
      }
      elapsed = worst.total();
      const double gf = perf::gflops(flops_total, elapsed);
      const double peak = static_cast<double>(nodes) * 8.0 * es.peak_per_pe / 1e9;
      table.row({std::to_string(nodes), hybrid ? "hybrid" : "flat MPI", std::to_string(ranks),
                 std::to_string(res.iterations), std::to_string(res2.iterations),
                 util::Table::fmt(gf, 1), util::Table::fmt(100.0 * gf / peak, 1),
                 util::Table::fmt(worst.work_ratio_percent(), 1)});
    }
  }
  table.print();
  std::cout << "\niteration growth, smallest multi-domain -> largest domain count:\n";
  for (const auto* s : {&flat_series, &hybrid_series}) {
    const std::string name = s == &flat_series ? "flat" : "hybrid";
    if (s->first1 == 0) continue;
    reg.gauge("weak." + name + ".growth_percent.one_level")->set(s->growth1());
    reg.gauge("weak." + name + ".growth_percent.two_level")->set(s->growth2());
    std::cout << "  " << name << ": one-level " << util::Table::fmt(s->growth1(), 1)
              << "%, two-level " << util::Table::fmt(s->growth2(), 1) << "%\n";
  }
  bench::emit_json(reg, "fig16_19_weak_scaling", argc, argv, {&table});
  std::cout << "\nHybrid: fewer iterations and fewer MPI processes (better at scale);\n"
               "flat MPI: no OpenMP sync overhead (slightly better GFLOPS on few nodes).\n";
  if (tiny) {
    if (!smoke_ok) {
      std::cout << "\ncoarse smoke FAILED\n";
      return 1;
    }
    std::cout << "\ncoarse smoke passed (two-level active, converged, never more iterations "
                 "than one-level)\n";
  }
  return 0;
}
