// Solver-service capacity benchmark (DESIGN.md §5g). Drives svc::SolverService
// with deterministic svc::Workload mixes and reports per-class p50/p95/p99
// latency, throughput, queue depth and plan-cache hit rate, then measures the
// warm-vs-cold throughput gap (the value of the shared plan cache: identical
// requests with and without plan reuse on the same worker pool).
//
// The request-coalescing sections (DESIGN.md §5k) measure the batched
// multi-RHS dispatch: a coalescable same-key request stream served with
// max_batch = k vs the same stream served one request at a time, plus a
// coalescable workload mix whose svc.batch_size histogram reports achieved
// occupancy. `--max-batch N` overrides the batch width (default 4); when the
// flag is given explicitly the binary additionally exits nonzero unless at
// least one batch of >= 2 requests actually formed.
//
// The binary exits nonzero if any request is lost (submitted != completed +
// rejected), if a warm solve is not bit-identical to the cold solve of the
// same request, or if a solo request through a coalescing-enabled service is
// not bit-identical to the same request with coalescing off — CI runs it
// (tiny, under sanitizers) as the service smoke test: GEOFEM_BENCH_TINY=1
// shrinks the mesh and the workloads.

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "svc/service.hpp"
#include "svc/workload.hpp"
#include "util/timer.hpp"

namespace {

struct MixResult {
  std::string name;
  geofem::svc::ReplayStats stats;
  double hit_rate = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace geofem;
  const char* tiny_env = std::getenv("GEOFEM_BENCH_TINY");
  const bool tiny = tiny_env && *tiny_env && std::string(tiny_env) != "0";
  int max_batch = 4;
  bool max_batch_flag = false;
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--max-batch") {
      max_batch = std::atoi(argv[i + 1]);
      max_batch_flag = true;
    }
  const auto params = tiny                   ? mesh::SimpleBlockParams{3, 3, 2, 3, 3}
                      : bench::paper_scale() ? mesh::SimpleBlockParams{10, 10, 8, 10, 10}
                                             : mesh::SimpleBlockParams{6, 6, 4, 6, 6};
  const mesh::HexMesh m = mesh::simple_block(params);
  const fem::BoundaryConditions bc = bench::simple_block_bc(m);

  obs::Registry reg;
  obs::Attach attach(&reg);
  bench::describe_problem(reg, m.num_dof(), 1e6);

  svc::ServiceOptions base;
  base.workers = 4;
  base.queue_capacity = 4096;  // mixes measure latency, not admission control
  base.solve.threads = 1;      // workers are the parallelism; don't oversubscribe
  // BIC(2) at a loose interactive tolerance trades the heaviest symbolic
  // set-up (level-fill pattern computation) for the fewest CG iterations —
  // the shape where a per-request rebuild hurts most and the shared plan
  // cache pays best. SB-BIC(0)/PDJDS
  // request paths are covered by bench_plan_reuse and the svc test suite.
  base.solve.precond = core::PrecondKind::kBIC2;
  base.solve.cg.tolerance = 1e-3;
  base.keep_solutions = false;
  reg.set_meta("svc.workers", static_cast<double>(base.workers));

  std::cout << "== Solver service capacity: " << m.num_dof() << " DOF, " << base.workers
            << " workers ==\n\n";
  bool all_ok = true;

  // -------------------------------------------------------------------------
  // Workload mixes: saturation replay (submit as fast as generated), per-class
  // latency distributions from the service registry's histograms.
  // -------------------------------------------------------------------------
  const double horizon = tiny ? 0.25 : 2.0;
  svc::TrafficClass interactive;
  interactive.priority = svc::Priority::kInteractive;
  interactive.arrival = svc::ArrivalProcess::kPoisson;
  interactive.lambdas = {1e4, 1e6, 1e8};
  svc::TrafficClass batch;
  batch.priority = svc::Priority::kBatch;
  batch.load_scales = {0.5, 1.0, 2.0};

  std::vector<std::pair<std::string, svc::WorkloadOptions>> mixes;
  {
    // Mix 1: interactive-heavy Poisson traffic with a batch undercurrent (the
    // "analysts at their desks" shape).
    svc::WorkloadOptions wl;
    wl.horizon = horizon;
    wl.seed = 42;
    svc::TrafficClass i = interactive, b = batch;
    i.rate = 80.0;
    b.rate = 20.0;
    b.arrival = svc::ArrivalProcess::kPoisson;
    wl.classes = {i, b};
    mixes.emplace_back("interactive_heavy", wl);
  }
  {
    // Mix 2: bursty batch (parameter sweeps landing as bursts) against an
    // interactive trickle — the tail-latency stressor.
    svc::WorkloadOptions wl;
    wl.horizon = horizon;
    wl.seed = 43;
    svc::TrafficClass i = interactive, b = batch;
    i.rate = 20.0;
    b.rate = 80.0;
    b.arrival = svc::ArrivalProcess::kBurst;
    b.mean_burst = 8;
    wl.classes = {i, b};
    mixes.emplace_back("bursty_batch", wl);
  }
  {
    // Mix 3: coalescable batch — bursty batch traffic on a SINGLE lambda, so
    // every request shares one coalescing key (model, lambda, contact state)
    // and the batched dispatch can form multi-RHS solves. Served with
    // max_batch enabled; the svc.batch_size histogram reports the achieved
    // occupancy under a realistic arrival process (vs the saturated stream of
    // the throughput section below).
    svc::WorkloadOptions wl;
    wl.horizon = horizon;
    wl.seed = 44;
    svc::TrafficClass i = interactive, b = batch;
    i.rate = 10.0;
    i.lambdas = {1e6};
    b.rate = 90.0;
    b.arrival = svc::ArrivalProcess::kBurst;
    b.mean_burst = 8;
    b.lambdas = {1e6};
    wl.classes = {i, b};
    mixes.emplace_back("coalescable_batch", wl);
  }

  util::Table table({"mix", "class", "n", "p50 ms", "p95 ms", "p99 ms", "req/s", "hit rate"});
  std::vector<MixResult> results;
  double max_batch_seen = 1.0;  // largest coalesced dispatch observed anywhere
  for (const auto& [name, wl] : mixes) {
    svc::ServiceOptions mix_opt = base;
    if (name == "coalescable_batch" && max_batch > 1) mix_opt.max_batch = max_batch;
    svc::SolverService svc(mix_opt);
    svc.register_model(m, {{1.0, 0.3}}, bc);
    const std::vector<svc::Event> events = svc::generate(wl);
    MixResult res;
    res.name = name;
    res.stats = svc::replay(svc, events, /*time_scale=*/0.0);
    svc.publish_stats();
    all_ok = all_ok && res.stats.lossless() && res.stats.failed == 0;
    // monotonic admission totals across all mixes — the bench report's
    // counters section (satellite of the coalescing work: this used to be
    // empty because everything service-side was folded into gauges)
    const svc::SolverService::Counts mix_counts = svc.counts();
    reg.counter("svc.submitted")->add(mix_counts.submitted);
    reg.counter("svc.completed")->add(mix_counts.completed);
    reg.counter("svc.rejected")->add(mix_counts.rejected);
    reg.counter("svc.failed")->add(mix_counts.failed);

    const obs::Snapshot snap = svc.registry().snapshot();
    if (mix_opt.max_batch > 1) {
      // achieved multi-RHS occupancy under this arrival process, plus the
      // service-side coalescing counters, folded into the bench report
      if (const obs::HistogramData* bs = snap.histogram("svc.batch_size")) {
        reg.gauge("svc." + name + ".batch_size.mean")->set(bs->mean());
        reg.gauge("svc." + name + ".batch_size.max")->set(bs->max);
        reg.gauge("svc." + name + ".batch_size.count")->set(static_cast<double>(bs->count));
        max_batch_seen = std::max(max_batch_seen, bs->max);
      }
      if (const std::uint64_t* c = snap.counter("svc.coalesce.hit"))
        reg.counter("svc.coalesce.hit")->add(*c);
      if (const std::uint64_t* c = snap.counter("svc.coalesce.window_timeout"))
        reg.counter("svc.coalesce.window_timeout")->add(*c);
    }
    const double* hits = snap.gauge("plan.cache.hits");
    const double* misses = snap.gauge("plan.cache.misses");
    const double lookups = (hits ? *hits : 0.0) + (misses ? *misses : 0.0);
    res.hit_rate = lookups > 0.0 ? (hits ? *hits : 0.0) / lookups : 0.0;
    results.push_back(res);

    for (const char* cls : {"interactive", "batch"}) {
      const obs::HistogramData* lat = snap.histogram(std::string("svc.latency.") + cls);
      if (!lat || lat->count == 0) continue;
      table.row({name, cls, bench::fmt_int(static_cast<std::int64_t>(lat->count)),
                 util::Table::fmt(lat->quantile(0.50) * 1e3, 2),
                 util::Table::fmt(lat->quantile(0.95) * 1e3, 2),
                 util::Table::fmt(lat->quantile(0.99) * 1e3, 2),
                 util::Table::fmt(res.stats.throughput(), 1),
                 util::Table::fmt(res.hit_rate, 3)});
      // fold the per-mix distribution into the bench report
      const std::string p = "svc." + name + ".latency." + cls;
      reg.gauge(p + ".p50")->set(lat->quantile(0.50));
      reg.gauge(p + ".p95")->set(lat->quantile(0.95));
      reg.gauge(p + ".p99")->set(lat->quantile(0.99));
      reg.gauge(p + ".count")->set(static_cast<double>(lat->count));
    }
    reg.gauge("svc." + name + ".throughput")->set(res.stats.throughput());
    reg.gauge("svc." + name + ".hit_rate")->set(res.hit_rate);
    reg.gauge("svc." + name + ".rejected")->set(static_cast<double>(res.stats.rejected));
    reg.gauge("svc." + name + ".submitted")->set(static_cast<double>(res.stats.submitted));
  }
  table.print();

  // -------------------------------------------------------------------------
  // Warm vs cold: identical requests through identical worker pools, with the
  // plan cache on vs off. The gap is the symbolic set-up the cache amortizes.
  // -------------------------------------------------------------------------
  const int n_requests = tiny ? 8 : 64;
  const int n_repeats = tiny ? 1 : 7;
  std::vector<double> wall[2];  // per-repeat wall seconds, [warm, cold]
  for (int rep = 0; rep < n_repeats; ++rep) {
    // Alternate which side runs first: frequency/thermal drift within the
    // process would otherwise systematically land on the second side.
    for (int leg = 0; leg < 2; ++leg) {
      const int cold = leg ^ (rep & 1);
      svc::ServiceOptions opt = base;
      opt.solve.use_plan_cache = cold == 0;
      svc::SolverService svc(opt);
      const svc::ModelId model = svc.register_model(m, {{1.0, 0.3}}, bc);
      svc::SolveRequest req;
      req.model = model;
      req.lambda = 1e6;
      // untimed spin-up: fills the cache on the warm side (steady-state
      // capacity is the service's operating point) and settles the CPU
      for (int i = 0; i < base.workers; ++i) svc.submit(req);
      svc.drain();
      std::vector<std::future<svc::SolveResponse>> futures;
      util::Timer timer;
      for (int i = 0; i < n_requests; ++i) futures.push_back(svc.submit(req));
      std::uint64_t completed = 0;
      for (auto& f : futures) completed += ok(f.get().status) ? 1u : 0u;
      wall[cold].push_back(timer.seconds());
      all_ok = all_ok && completed == static_cast<std::uint64_t>(n_requests);
    }
  }
  // Each repeat pairs a warm and a cold leg back-to-back, so the per-repeat
  // ratio cancels the common-mode frequency/steal drift of a shared host;
  // the median over repeats then discards the odd scheduler hiccup.
  const auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
  };
  std::vector<double> rep_ratio;
  for (int rep = 0; rep < n_repeats; ++rep)
    rep_ratio.push_back(wall[1][static_cast<std::size_t>(rep)] /
                        wall[0][static_cast<std::size_t>(rep)]);
  const double thr[2] = {n_requests / median(wall[0]), n_requests / median(wall[1])};
  const double ratio = median(rep_ratio);
  reg.gauge("svc.warm.throughput")->set(thr[0]);
  reg.gauge("svc.cold.throughput")->set(thr[1]);
  reg.gauge("svc.warm_cold_ratio")->set(ratio);
  std::cout << "\nwarm cache: " << util::Table::fmt(thr[0], 1) << " req/s   cold: "
            << util::Table::fmt(thr[1], 1) << " req/s   ratio: " << util::Table::fmt(ratio, 2)
            << "x (" << n_requests << " identical requests, " << base.workers << " workers)\n";

  // -------------------------------------------------------------------------
  // Coalesced vs solo: a saturated same-key stream served with max_batch = k
  // against the identical stream served one request at a time. The gap is the
  // multi-RHS amortization — one assembly + factor application + SpMM-driven
  // CG iteration shared by every coalesced column. Same alternating-leg /
  // per-repeat-ratio / median structure as warm-vs-cold above.
  // -------------------------------------------------------------------------
  if (max_batch > 1) {
    std::vector<double> bwall[2];  // per-repeat wall seconds, [coalesced, solo]
    double occupancy = 0.0;
    for (int rep = 0; rep < n_repeats; ++rep) {
      for (int leg = 0; leg < 2; ++leg) {
        const int solo = leg ^ (rep & 1);
        svc::ServiceOptions opt = base;
        opt.max_batch = solo ? 1 : max_batch;
        opt.batch_window = 0.0;  // opportunistic only: never trade latency for width
        svc::SolverService svc(opt);
        const svc::ModelId model = svc.register_model(m, {{1.0, 0.3}}, bc);
        svc::SolveRequest req;
        req.model = model;
        req.priority = svc::Priority::kBatch;
        req.lambda = 1e6;
        for (int i = 0; i < base.workers; ++i) svc.submit(req);
        svc.drain();
        std::vector<std::future<svc::SolveResponse>> futures;
        util::Timer timer;
        for (int i = 0; i < n_requests; ++i) futures.push_back(svc.submit(req));
        std::uint64_t completed = 0;
        for (auto& f : futures) completed += ok(f.get().status) ? 1u : 0u;
        bwall[solo].push_back(timer.seconds());
        all_ok = all_ok && completed == static_cast<std::uint64_t>(n_requests);
        if (solo == 0) {
          const obs::Snapshot snap = svc.registry().snapshot();
          if (const obs::HistogramData* bs = snap.histogram("svc.batch_size")) {
            max_batch_seen = std::max(max_batch_seen, bs->max);
            occupancy = std::max(occupancy, bs->mean());
          }
        }
      }
    }
    std::vector<double> batch_rep_ratio;
    for (int rep = 0; rep < n_repeats; ++rep)
      batch_rep_ratio.push_back(bwall[1][static_cast<std::size_t>(rep)] /
                                bwall[0][static_cast<std::size_t>(rep)]);
    const double bthr[2] = {n_requests / median(bwall[0]), n_requests / median(bwall[1])};
    const double batch_speedup = median(batch_rep_ratio);
    reg.gauge("svc.coalesced.throughput")->set(bthr[0]);
    reg.gauge("svc.solo.throughput")->set(bthr[1]);
    reg.gauge("svc.batch_speedup")->set(batch_speedup);
    reg.gauge("svc.batch_size.max")->set(max_batch_seen);
    reg.gauge("svc.batch_size.mean")->set(occupancy);
    std::cout << "coalesced (max_batch=" << max_batch << "): " << util::Table::fmt(bthr[0], 1)
              << " req/s   solo: " << util::Table::fmt(bthr[1], 1)
              << " req/s   speedup: " << util::Table::fmt(batch_speedup, 2)
              << "x   occupancy: " << util::Table::fmt(occupancy, 2) << "/" << max_batch
              << " (max batch " << util::Table::fmt(max_batch_seen, 0) << ")\n";
  }

  // -------------------------------------------------------------------------
  // Warm == cold bit-identity: the cached symbolic set-up must change nothing
  // about the numbers. One request served cold, then warm, on one worker.
  // -------------------------------------------------------------------------
  bool identical = true;
  {
    svc::ServiceOptions opt = base;
    opt.workers = 1;
    opt.keep_solutions = true;
    svc::SolverService svc(opt);
    const svc::ModelId model = svc.register_model(m, {{1.0, 0.3}}, bc);
    svc::SolveRequest req;
    req.model = model;
    req.lambda = 1e6;
    const svc::SolveResponse cold = svc.submit(req).get();
    const svc::SolveResponse warm = svc.submit(req).get();
    identical = ok(cold.status) && ok(warm.status) && warm.report.plan_reused &&
                cold.report.solution.size() == warm.report.solution.size();
    for (std::size_t i = 0; identical && i < cold.report.solution.size(); ++i)
      identical = cold.report.solution[i] == warm.report.solution[i];
  }
  reg.gauge("svc.warm_cold_identical")->set(identical ? 1.0 : 0.0);

  // -------------------------------------------------------------------------
  // Solo-through-coalescing bit-identity: with max_batch = k but only one
  // request in flight, the batched dispatch degenerates to a batch of one,
  // which delegates to the scalar path — so enabling coalescing must not
  // change a single bit of a lone request's solution.
  // -------------------------------------------------------------------------
  bool solo_identical = true;
  if (max_batch > 1) {
    svc::ServiceOptions opt = base;
    opt.workers = 1;
    opt.keep_solutions = true;
    svc::SolverService plain(opt);
    opt.max_batch = max_batch;
    svc::SolverService coalescing(opt);
    svc::SolveRequest req;
    req.priority = svc::Priority::kBatch;
    req.lambda = 1e6;
    req.model = plain.register_model(m, {{1.0, 0.3}}, bc);
    const svc::SolveResponse a = plain.submit(req).get();
    req.model = coalescing.register_model(m, {{1.0, 0.3}}, bc);
    const svc::SolveResponse b = coalescing.submit(req).get();
    solo_identical = ok(a.status) && ok(b.status) &&
                     a.report.solution.size() == b.report.solution.size();
    for (std::size_t i = 0; solo_identical && i < a.report.solution.size(); ++i)
      solo_identical = a.report.solution[i] == b.report.solution[i];
  }
  reg.gauge("svc.solo_batch_identical")->set(solo_identical ? 1.0 : 0.0);

  bench::emit_json(reg, "service", argc, argv, {&table});
  const bool batch_formed = !max_batch_flag || max_batch_seen >= 2.0;
  if (!all_ok || !identical || !solo_identical || !batch_formed) {
    std::cerr << "\nservice smoke FAILED ("
              << (!identical       ? "warm solve != cold solve"
                  : !solo_identical ? "solo solve != solve with coalescing enabled"
                  : !batch_formed   ? "no coalesced batch of >= 2 formed"
                                    : "requests lost or failed")
              << ")\n";
    return 1;
  }
  std::cout << "\nservice smoke passed (no request lost, warm solve bit-identical to cold, "
               "solo solve bit-identical under coalescing)\n";
  return 0;
}
