// Table 4 + Fig 9 of the paper: parallel performance of preconditioned CG on
// the large simple block model with MPC/contact conditions (lambda=1e6) on
// 16..256 PEs of the Hitachi SR2201. Domains are contact-aware partitioned.
//
// Paper shape: iterations grow only mildly with PE count (SB-BIC(0): +14%
// from 16 to 256); SB-BIC(0) gives the best time although BIC(1)/BIC(2) need
// fewer iterations; BIC(1)/BIC(2) exceed per-node memory at small PE counts;
// speed-up reaches ~235/256 for SB-BIC(0).
//
// The PE counts are simulated-MPI ranks; time/speed-up are replayed through
// the SR2201 machine model from measured FLOPs and traffic. Default problem
// is a scaled-down block (the paper's 2.47M DOF with GEOFEM_BENCH_SCALE=paper
// would take hours on one host core).

#include <algorithm>
#include <iostream>

#include "common.hpp"
#include "dist/dist_solver.hpp"
#include "part/local_system.hpp"
#include "perf/es_model.hpp"
#include "precond/bic.hpp"
#include "precond/sb_bic0.hpp"

int main(int argc, char** argv) {
  using namespace geofem;
  const auto params = bench::paper_scale() ? mesh::SimpleBlockParams{35, 35, 20, 35, 35}
                                           : mesh::SimpleBlockParams{16, 16, 10, 16, 16};
  const mesh::HexMesh m = mesh::simple_block(params);
  const auto bc = bench::simple_block_bc(m);
  const fem::System sys = bench::assemble(m, bc, 1e6);
  obs::Registry reg;
  obs::Attach attach(&reg);
  bench::describe_problem(reg, sys.a.ndof(), 1e6);
  std::cout << "== Table 4 / Fig 9: scaling of preconditioned CG, contact-aware partitions, "
            << sys.a.ndof() << " DOF, lambda=1e6 ==\n\n";

  const perf::EsModel sr = perf::EsModel::sr2201();
  struct Kind {
    const char* name;
    int fill;
  };
  const Kind kinds[] = {{"BIC(0)", 0}, {"BIC(1)", 1}, {"BIC(2)", 2}, {"SB-BIC(0)", -1}};
  // 128/256 simulated ranks oversubscribe a small host heavily; reserve them
  // for GEOFEM_BENCH_SCALE=paper runs.
  const std::vector<int> pe_counts = bench::paper_scale()
                                         ? std::vector<int>{16, 32, 64, 128, 256}
                                         : std::vector<int>{16, 32, 64};

  std::vector<util::Table> tables;
  for (const Kind& kind : kinds) {
    auto factory = [&](const part::LocalSystem& ls,
                       const sparse::BlockCSR& aii, precond::Precision) -> precond::PreconditionerPtr {
      if (kind.fill < 0) {
        auto sn = contact::build_supernodes(aii.n, ls.local_contact_groups(m.contact_groups));
        return std::make_unique<precond::SBBIC0>(aii, std::move(sn));
      }
      if (kind.fill == 0) return std::make_unique<precond::BIC0>(aii);
      return std::make_unique<precond::BlockILUk>(aii, kind.fill);
    };
    util::Table table(
        {"PE#", "iters", "iters 2-level", "modeled sec", "speed-up(x16)", "precond MB total"});
    double t16 = 0.0;
    for (int ranks : pe_counts) {
      const auto p = part::rcb_contact_aware(m, ranks);
      const auto systems = part::distribute(sys.a, sys.b, p);
      dist::DistOptions opt;
      opt.cg.max_iterations = 5000;
      const auto res = dist::solve_distributed(systems, factory, opt);

      // Two-level series beside the one-level baseline: per-domain aggregates
      // + deflation, the iteration-flattening counterpoint to the paper's
      // growth rows. Both series land in BENCH_*.json as per-PE-count gauges.
      dist::DistOptions copt = opt;
      copt.coarse.enabled = true;
      const auto res2 = dist::solve_distributed(systems, factory, copt);
      {
        const std::string key = std::string("table04.") + kind.name + "." + std::to_string(ranks);
        reg.gauge(key + ".iters.one_level")->set(res.iterations);
        reg.gauge(key + ".iters.two_level")->set(res2.iterations);
        reg.gauge(key + ".coarse_dim")->set(res2.coarse_dim);
      }
      double elapsed = 0.0;
      double mem = 0.0;
      for (int r = 0; r < ranks; ++r) {
        const double compute = sr.scalar_seconds(
            static_cast<double>(res.flops_per_rank[static_cast<std::size_t>(r)].total()));
        const double comm =
            sr.comm_seconds(res.traffic_per_rank[static_cast<std::size_t>(r)], ranks);
        elapsed = std::max(elapsed, compute + comm);
        mem += static_cast<double>(res.precond_bytes_per_rank[static_cast<std::size_t>(r)]);
      }
      if (ranks == 16) t16 = elapsed;
      table.row({std::to_string(ranks),
                 res.converged() ? std::to_string(res.iterations) : "no conv.",
                 res2.converged() ? std::to_string(res2.iterations) : "no conv.",
                 util::Table::fmt(elapsed, 3),
                 util::Table::fmt(16.0 * t16 / std::max(elapsed, 1e-30), 1),
                 util::Table::fmt(mem / 1e6, 1)});
    }
    std::cout << kind.name << ":\n";
    table.print();
    std::cout << "\n";
    tables.push_back(std::move(table));
  }
  std::vector<const util::Table*> ptrs;
  for (const auto& t : tables) ptrs.push_back(&t);
  bench::emit_json(reg, "table04_fig09_scaling", argc, argv, ptrs);
  return 0;
}
