// Fig 29 of the paper: load imbalance among the 8 PEs of an SMP node and the
// ratio of dummy off-diagonal components introduced by selective blocking,
// as functions of the MC color count, for both models. Paper: both effects
// are small (<~1% simple block, a few % SW Japan) and negligible for
// performance.

#include <iostream>

#include "common.hpp"
#include "precond/djds_bic.hpp"

namespace {

geofem::util::Table report(const char* title, const geofem::mesh::HexMesh& m,
                           const geofem::fem::System& sys) {
  using namespace geofem;
  std::cout << title << ":\n";
  util::Table table({"colors", "load imbalance %", "dummy components %", "avg vec len"});
  for (int colors : {5, 10, 20, 50, 100}) {
    auto sn = contact::build_supernodes(sys.a.n, m.contact_groups);
    const precond::OwnedDJDSBIC prec(sys.a, std::move(sn), colors, 8);
    const auto& dj = prec.djds();
    table.row({std::to_string(dj.num_colors()), util::Table::fmt(dj.load_imbalance_percent(), 3),
               util::Table::fmt(dj.dummy_percent(), 3),
               util::Table::fmt(dj.average_vector_length(), 1)});
  }
  table.print();
  std::cout << "\n";
  return table;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace geofem;
  obs::Registry reg;
  obs::Attach attach(&reg);
  std::vector<util::Table> tables;
  {
    const auto params = bench::table2_block();
    const mesh::HexMesh m = mesh::simple_block(params);
    const fem::System sys = bench::assemble(m, bench::simple_block_bc(m), 1e6);
    bench::describe_problem(reg, sys.a.ndof(), 1e6);
    std::cout << "== Fig 29: load imbalance & dummy components vs colors, " << sys.a.ndof()
              << " DOF ==\n\n";
    tables.push_back(report("simple block model", m, sys));
  }
  {
    const mesh::HexMesh m = mesh::southwest_japan_like(bench::tableA3_swjapan());
    const fem::System sys = bench::assemble(m, bench::swjapan_bc(m), 1e6);
    tables.push_back(report("Southwest-Japan-like model", m, sys));
  }
  bench::emit_json(reg, "fig29_imbalance", argc, argv, {&tables[0], &tables[1]});
  return 0;
}
