// Microbenchmarks of the hot kernels on the host CPU: block SpMV in CSR vs
// PDJDS order, one apply() of each preconditioner, and the BLAS-1 dot.
// These are host-hardware numbers (no machine model) — useful for tracking
// regressions of this implementation rather than for paper comparison.
//
// Two harnesses share this binary:
//   * A scalar-vs-SIMD comparison table (runs first): every kernel is timed
//     twice in the same process — once under simd::IsaScope(kScalar), once on
//     the build's active tier — and reported as GFLOP/s, effective GB/s and
//     speedup. The table lands in BENCH_kernels.json (GEOFEM_BENCH_JSON=1)
//     tagged with the active ISA, which is how the DESIGN.md 5f acceptance
//     numbers are recorded.
//   * The google-benchmark suite (unchanged) for fine-grained regression
//     tracking of individual kernels and telemetry overhead.
//
// GEOFEM_BENCH_TINY=1 runs a smoke version: few repetitions, no google
// benchmarks, and — when GEOFEM_REQUIRE_ISA is set (e.g. "avx2") — a hard
// failure if the active kernel tier is not the required one. CI's SIMD job
// uses this to catch a build that silently fell back to scalar kernels.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common.hpp"
#include "contact/penalty.hpp"
#include "fem/assembly.hpp"
#include "mesh/simple_block.hpp"
#include "obs/obs.hpp"
#include "precond/bic.hpp"
#include "precond/djds_bic.hpp"
#include "precond/sb_bic0.hpp"
#include "reorder/coloring.hpp"
#include "reorder/djds.hpp"
#include "simd/simd.hpp"
#include "sparse/vector_ops.hpp"
#include "util/timer.hpp"

namespace {

bool tiny() {
  const char* e = std::getenv("GEOFEM_BENCH_TINY");
  return e && *e && std::string(e) != "0";
}

struct Fixture {
  geofem::mesh::HexMesh mesh;
  geofem::fem::System sys;
  geofem::contact::Supernodes sn;

  Fixture() {
    const int n = tiny() ? 5 : 11;
    mesh = geofem::mesh::simple_block({n, n, n * 3 / 4, n, n});
    sys = geofem::fem::assemble_elasticity(mesh, {{1.0, 0.3}});
    geofem::contact::add_penalty(sys.a, mesh.contact_groups, 1e6);
    geofem::fem::BoundaryConditions bc;
    bc.fix_nodes(mesh.nodes_where([](double, double, double z) { return z == 0.0; }), -1);
    const double zmax = mesh.bounding_box().hi[2];
    bc.surface_load(
        mesh, [zmax](double, double, double z) { return z > zmax - 0.1; }, 2, -1.0);
    geofem::fem::apply_boundary_conditions(sys, bc);
    sn = geofem::contact::build_supernodes(mesh.num_nodes(), mesh.contact_groups);
  }
};

const Fixture& fixture() {
  static Fixture f;
  return f;
}

geofem::reorder::DJDSMatrix make_djds(const Fixture& f) {
  const auto g = geofem::sparse::graph_of(f.sys.a);
  const auto q = geofem::reorder::quotient_graph(g, f.sn.node_to_super, f.sn.count());
  const auto col = geofem::reorder::lift_coloring(geofem::reorder::multicolor(q, 20),
                                                  f.sn.node_to_super, f.sys.a.n);
  return geofem::reorder::DJDSMatrix(f.sys.a, col, &f.sn, {});
}

// ---------------------------------------------------------------------------
// Scalar-vs-SIMD comparison
// ---------------------------------------------------------------------------

/// Median-of-reps wall time of `fn()` (seconds per call). One warm-up call
/// populates caches and any lazy state before timing starts.
template <class Fn>
double time_kernel(Fn&& fn, int reps) {
  fn();
  std::vector<double> t(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    geofem::util::Timer timer;
    fn();
    t[static_cast<std::size_t>(r)] = timer.seconds();
  }
  std::sort(t.begin(), t.end());
  return t[t.size() / 2];
}

struct KernelRow {
  std::string name;
  std::string prec;  ///< stored precision of the kernel's operand ("fp64"/"fp32")
  double flops;      ///< algorithmic FLOPs per call
  double bytes;      ///< streamed bytes per call (effective-bandwidth model)
  double sec_scalar = 0.0;
  double sec_active = 0.0;
};

/// Effective-bandwidth model shared by both storage formats so the GB/s
/// column compares like with like: matrix values (72 B/block) + one 4-byte
/// column index per block + one read of x and one write of y. Cached re-reads
/// of x are deliberately not counted — "effective" bandwidth is what the
/// paper-style byte-per-FLOP arguments use.
double spmv_bytes(std::size_t nnz_blocks, std::size_t ndof) {
  return static_cast<double>(nnz_blocks) * (72.0 + 4.0) + 16.0 * static_cast<double>(ndof);
}

/// Substitution sweeps stream the factor once per apply plus r/z traffic.
double apply_bytes(std::size_t precond_bytes, std::size_t ndof) {
  return static_cast<double>(precond_bytes) + 16.0 * static_cast<double>(ndof);
}

void run_comparison(geofem::obs::Registry& reg, int argc, char** argv) {
  namespace simd = geofem::simd;
  using geofem::util::FlopCounter;
  const auto& f = fixture();
  const std::size_t ndof = f.sys.a.ndof();
  const int reps = tiny() ? 5 : 41;

  std::cout << "== hot kernels: scalar vs " << simd::active_isa()
            << " (same binary, IsaScope) ==\n"
            << "   DOF " << ndof << ", median of " << reps << " calls\n\n";

  using geofem::precond::Precision;
  const auto dj = make_djds(f);
  const geofem::precond::BIC0 bic0(f.sys.a);
  const geofem::precond::BlockILUk bic1(f.sys.a, 1);
  const geofem::precond::SBBIC0 sbbic0(f.sys.a, f.sn);
  const geofem::precond::DJDSBIC djdsbic(f.sys.a, dj);
  // fp32-stored twins of the apply kernels (fp64 factorization, narrowed
  // storage): half the factor bandwidth, 8-lane AVX2 sweeps.
  const geofem::precond::BIC0 bic0_32(f.sys.a, Precision::kSingle);
  const geofem::precond::SBBIC0 sbbic0_32(f.sys.a, f.sn, /*modified=*/false,
                                          Precision::kSingle);
  const geofem::precond::DJDSBIC djdsbic32(f.sys.a, dj, Precision::kSingle);

  std::vector<double> x(ndof, 1.0), y(ndof);
  simd::aligned_vector<double> r(ndof, 1.0), z(ndof);

  std::vector<KernelRow> rows;
  auto add = [&](std::string name, const char* prec, double flops, double bytes, auto&& call) {
    KernelRow row{std::move(name), prec, flops, bytes};
    {
      simd::IsaScope scalar(simd::Isa::kScalar);
      row.sec_scalar = time_kernel(call, reps);
    }
    row.sec_active = time_kernel(call, reps);
    rows.push_back(std::move(row));
  };

  {
    FlopCounter fc;
    f.sys.a.spmv(x, y, &fc, nullptr);
    add("SpMV CSR", "fp64", static_cast<double>(fc.spmv),
        spmv_bytes(f.sys.a.nnz_blocks(), ndof), [&] { f.sys.a.spmv(x, y); });
  }
  {
    FlopCounter fc;
    dj.spmv(x, y, &fc, nullptr);
    add("SpMV DJDS", "fp64", static_cast<double>(fc.spmv),
        spmv_bytes(f.sys.a.nnz_blocks(), ndof), [&] { dj.spmv(x, y); });
  }
  {
    FlopCounter fc;
    bic0.apply(r, z, &fc, nullptr);
    add("BIC(0) apply", "fp64", static_cast<double>(fc.precond),
        apply_bytes(bic0.memory_bytes(), ndof), [&] { bic0.apply(r, z, nullptr, nullptr); });
  }
  {
    FlopCounter fc;
    bic0_32.apply(r, z, &fc, nullptr);
    add("BIC(0) apply", "fp32", static_cast<double>(fc.precond),
        apply_bytes(bic0_32.memory_bytes(), ndof),
        [&] { bic0_32.apply(r, z, nullptr, nullptr); });
  }
  {
    FlopCounter fc;
    bic1.apply(r, z, &fc, nullptr);
    add("BIC(1) apply", "fp64", static_cast<double>(fc.precond),
        apply_bytes(bic1.memory_bytes(), ndof), [&] { bic1.apply(r, z, nullptr, nullptr); });
  }
  {
    FlopCounter fc;
    sbbic0.apply(r, z, &fc, nullptr);
    add("SB-BIC(0) apply", "fp64", static_cast<double>(fc.precond),
        apply_bytes(sbbic0.memory_bytes(), ndof),
        [&] { sbbic0.apply(r, z, nullptr, nullptr); });
  }
  {
    FlopCounter fc;
    sbbic0_32.apply(r, z, &fc, nullptr);
    add("SB-BIC(0) apply", "fp32", static_cast<double>(fc.precond),
        apply_bytes(sbbic0_32.memory_bytes(), ndof),
        [&] { sbbic0_32.apply(r, z, nullptr, nullptr); });
  }
  {
    FlopCounter fc;
    djdsbic.apply(r, z, &fc, nullptr);
    add("SB-BIC(0) PDJDS apply", "fp64", static_cast<double>(fc.precond),
        apply_bytes(djdsbic.memory_bytes(), ndof),
        [&] { djdsbic.apply(r, z, nullptr, nullptr); });
  }
  {
    FlopCounter fc;
    djdsbic32.apply(r, z, &fc, nullptr);
    add("SB-BIC(0) PDJDS apply", "fp32", static_cast<double>(fc.precond),
        apply_bytes(djdsbic32.memory_bytes(), ndof),
        [&] { djdsbic32.apply(r, z, nullptr, nullptr); });
  }
  // BLAS-1 dot: 2n FLOPs, 16 B/element. Regression note — dot used to heap-
  // allocate its partial-sum buffer on every call; with the reusable
  // thread-local scratch (sparse/vector_ops.hpp) the timing below is pure
  // reduction. If this row's ns/call ever jumps for small vectors, suspect a
  // reintroduced per-call allocation before suspecting the arithmetic.
  {
    volatile double sink = 0.0;
    add("dot", "fp64", 2.0 * static_cast<double>(ndof), 16.0 * static_cast<double>(ndof),
        [&] { sink = sink + geofem::sparse::dot(r, z); });
  }

  geofem::util::Table table({"kernel", "precision", "scalar GFLOP/s",
                             std::string(simd::active_isa()) + " GFLOP/s", "speedup",
                             "eff GB/s"});
  for (const auto& row : rows) {
    const double gf_s = row.flops / row.sec_scalar / 1e9;
    const double gf_a = row.flops / row.sec_active / 1e9;
    const double gbs = row.bytes / row.sec_active / 1e9;
    const double speedup = row.sec_scalar / row.sec_active;
    table.row({row.name, row.prec, geofem::util::Table::fmt(gf_s, 2),
               geofem::util::Table::fmt(gf_a, 2), geofem::util::Table::fmt(speedup, 2) + "x",
               geofem::util::Table::fmt(gbs, 2)});
    std::string slug = row.name;
    for (char& c : slug) c = (c == ' ' || c == '(' || c == ')') ? '_' : c;
    if (row.prec != "fp64") slug += "." + row.prec;  // fp64 keeps historical keys
    reg.gauge("kernels.speedup." + slug)->set(speedup);
    reg.gauge("kernels.gflops." + slug)->set(gf_a);
    reg.gauge("kernels.gbs." + slug)->set(gbs);
    // fp32-vs-fp64 apply ratio of the same kernel (same algorithmic FLOPs,
    // half the streamed factor bytes): the DESIGN.md §5i acceptance number.
    if (row.prec == "fp32") {
      for (const auto& base : rows)
        if (base.name == row.name && base.prec == "fp64")
          reg.gauge("kernels.fp32_speedup." + slug)->set(base.sec_active / row.sec_active);
    }
  }
  table.print();

  // -------------------------------------------------------------------------
  // Multi-RHS SpMM amortization (DESIGN.md §5k): one SpMM over k interleaved
  // RHS columns vs k back-to-back SpMVs on the active tier. Both move the
  // same matrix; SpMM streams it once for all k columns, so the per-RHS
  // effective bandwidth rises by the amortization ratio sec_seq / sec_spmm.
  // k = 1 is the delegation sanity row (ratio ~1). The per-RHS GB/s column
  // uses the single-RHS byte model above for both sides, so the ratio of the
  // two columns IS the amortization.
  // -------------------------------------------------------------------------
  const auto dj2 = make_djds(f);
  geofem::util::Table mtable(
      {"kernel", "k", "seq SpMV GB/s per RHS", "SpMM GB/s per RHS", "amortization"});
  const double rhs_bytes = spmv_bytes(f.sys.a.nnz_blocks(), ndof);
  std::cout << "\n== multi-RHS SpMM vs k sequential SpMVs (" << simd::active_isa() << ") ==\n\n";
  for (const bool djds : {false, true}) {
    for (const int k : {1, 2, 4, 8}) {
      std::vector<double> xm(ndof * static_cast<std::size_t>(k), 1.0), ym(xm.size());
      const double sec_seq = time_kernel(
          [&] {
            for (int c = 0; c < k; ++c) {
              if (djds)
                dj2.spmv(x, y);
              else
                f.sys.a.spmv(x, y);
            }
          },
          reps);
      const double sec_spmm = time_kernel(
          [&] {
            if (djds)
              dj2.spmm(xm, ym, k);
            else
              f.sys.a.spmm(xm, ym, k);
          },
          reps);
      const double amort = sec_seq / sec_spmm;
      const double gbs_seq = rhs_bytes / (sec_seq / k) / 1e9;
      const double gbs_spmm = rhs_bytes / (sec_spmm / k) / 1e9;
      const char* name = djds ? "SpMM DJDS" : "SpMM CSR";
      mtable.row({name, std::to_string(k), geofem::util::Table::fmt(gbs_seq, 2),
                  geofem::util::Table::fmt(gbs_spmm, 2),
                  geofem::util::Table::fmt(amort, 2) + "x"});
      const std::string slug =
          std::string("kernels.spmm.") + (djds ? "djds" : "csr") + ".k" + std::to_string(k);
      reg.gauge(slug + ".amortization")->set(amort);
      reg.gauge(slug + ".gbs_per_rhs")->set(gbs_spmm);
      reg.gauge(slug + ".seq_gbs_per_rhs")->set(gbs_seq);
    }
  }
  mtable.print();
  bench::emit_json(reg, "kernels", argc, argv, {&table, &mtable});
}

// ---------------------------------------------------------------------------
// google-benchmark suite (regression tracking of individual kernels)
// ---------------------------------------------------------------------------

void BM_SpmvCSR(benchmark::State& state) {
  const auto& f = fixture();
  std::vector<double> x(f.sys.a.ndof(), 1.0), y(x.size());
  for (auto _ : state) {
    f.sys.a.spmv(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * f.sys.a.nnz_blocks());
}
BENCHMARK(BM_SpmvCSR);

void BM_SpmvDJDS(benchmark::State& state) {
  const auto& f = fixture();
  const auto dj = make_djds(f);
  std::vector<double> x(f.sys.a.ndof(), 1.0), y(x.size());
  for (auto _ : state) {
    dj.spmv(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * f.sys.a.nnz_blocks());
}
BENCHMARK(BM_SpmvDJDS);

void BM_ApplyBIC0(benchmark::State& state) {
  const auto& f = fixture();
  const geofem::precond::BIC0 prec(f.sys.a);
  std::vector<double> r(f.sys.a.ndof(), 1.0), z(r.size());
  for (auto _ : state) {
    prec.apply(r, z, nullptr, nullptr);
    benchmark::DoNotOptimize(z.data());
  }
}
BENCHMARK(BM_ApplyBIC0);

void BM_ApplySBBIC0(benchmark::State& state) {
  const auto& f = fixture();
  const geofem::precond::SBBIC0 prec(f.sys.a, f.sn);
  std::vector<double> r(f.sys.a.ndof(), 1.0), z(r.size());
  for (auto _ : state) {
    prec.apply(r, z, nullptr, nullptr);
    benchmark::DoNotOptimize(z.data());
  }
}
BENCHMARK(BM_ApplySBBIC0);

void BM_ApplyBIC1(benchmark::State& state) {
  const auto& f = fixture();
  const geofem::precond::BlockILUk prec(f.sys.a, 1);
  std::vector<double> r(f.sys.a.ndof(), 1.0), z(r.size());
  for (auto _ : state) {
    prec.apply(r, z, nullptr, nullptr);
    benchmark::DoNotOptimize(z.data());
  }
}
BENCHMARK(BM_ApplyBIC1);

void BM_FactorSBBIC0(benchmark::State& state) {
  const auto& f = fixture();
  for (auto _ : state) {
    const auto lus = geofem::precond::sb_factor_diagonals(f.sys.a, f.sn);
    benchmark::DoNotOptimize(lus.size());
  }
}
BENCHMARK(BM_FactorSBBIC0);

void BM_Dot(benchmark::State& state) {
  const auto& f = fixture();
  geofem::simd::aligned_vector<double> a(f.sys.a.ndof(), 1.0), b(a.size(), 0.5);
  for (auto _ : state) {
    double d = geofem::sparse::dot(a, b);
    benchmark::DoNotOptimize(d);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(a.size()));
}
BENCHMARK(BM_Dot);

// -- telemetry overhead ------------------------------------------------------
// The hot kernels above run with no registry attached; these quantify what
// that costs. With no registry, a ScopedSpan is one thread-local load and a
// null check; BM_SpmvDJDS vs BM_SpmvDJDSTelemetryOff must be indistinguishable.

void BM_SpanDisabled(benchmark::State& state) {
  geofem::obs::Attach detach(nullptr);
  for (auto _ : state) {
    geofem::obs::ScopedSpan span("bench.disabled");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  geofem::obs::Registry reg;
  geofem::obs::Attach attach(&reg);
  for (auto _ : state) {
    geofem::obs::ScopedSpan span("bench.enabled");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_SpanEnabled);

void BM_CounterHandleAdd(benchmark::State& state) {
  geofem::obs::Registry reg;
  geofem::obs::Counter* c = reg.counter("bench.counter");
  for (auto _ : state) {
    c->add(1);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_CounterHandleAdd);

void BM_SpmvDJDSTelemetryOff(benchmark::State& state) {
  geofem::obs::Attach detach(nullptr);
  const auto& f = fixture();
  const auto dj = make_djds(f);
  std::vector<double> x(f.sys.a.ndof(), 1.0), y(x.size());
  for (auto _ : state) {
    geofem::obs::ScopedSpan span("bench.spmv");
    dj.spmv(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * f.sys.a.nnz_blocks());
}
BENCHMARK(BM_SpmvDJDSTelemetryOff);

}  // namespace

int main(int argc, char** argv) {
  geofem::obs::Registry reg;
  geofem::obs::Attach attach(&reg);
  bench::describe_problem(reg, static_cast<std::int64_t>(fixture().sys.a.ndof()), 1e6);

  // CI's SIMD job sets GEOFEM_REQUIRE_ISA=avx2: fail loudly if the binary
  // silently fell back to a lower kernel tier (wrong flags, wrong host).
  if (const char* req = std::getenv("GEOFEM_REQUIRE_ISA")) {
    if (std::string(req) != geofem::simd::active_isa()) {
      std::cerr << "[bench] FAIL: active ISA is " << geofem::simd::active_isa()
                << ", required " << req << "\n";
      return 1;
    }
  }

  run_comparison(reg, argc, argv);

  if (tiny()) {
    // Gate: both precision series must have produced numbers — a build that
    // silently drops the fp32 kernels (or the fp64 baseline) fails here.
    const auto snap = reg.snapshot();
    for (const char* g : {"kernels.gflops.SB-BIC_0__PDJDS_apply",
                          "kernels.gflops.SB-BIC_0__PDJDS_apply.fp32",
                          "kernels.fp32_speedup.SB-BIC_0__PDJDS_apply.fp32",
                          "kernels.spmm.csr.k8.amortization",
                          "kernels.spmm.djds.k8.amortization"}) {
      const double* v = snap.gauge(g);
      if (!v || !(*v > 0.0)) {
        std::cerr << "[bench] FAIL: missing precision series gauge " << g << "\n";
        return 1;
      }
    }
    std::cout << "\nsimd kernels smoke passed (isa=" << geofem::simd::active_isa()
              << ", fp64+fp32)\n";
    return 0;
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
