// Google-benchmark microbenchmarks of the hot kernels on the host CPU:
// block SpMV in CSR vs PDJDS order, and one apply() of each preconditioner.
// These are host-hardware numbers (no machine model) — useful for tracking
// regressions of this implementation rather than for paper comparison.

#include <benchmark/benchmark.h>

#include "contact/penalty.hpp"
#include "fem/assembly.hpp"
#include "mesh/simple_block.hpp"
#include "obs/obs.hpp"
#include "precond/bic.hpp"
#include "precond/djds_bic.hpp"
#include "precond/sb_bic0.hpp"
#include "reorder/coloring.hpp"
#include "reorder/djds.hpp"

namespace {

struct Fixture {
  geofem::mesh::HexMesh mesh;
  geofem::fem::System sys;
  geofem::contact::Supernodes sn;

  Fixture() {
    mesh = geofem::mesh::simple_block({8, 8, 6, 8, 8});
    sys = geofem::fem::assemble_elasticity(mesh, {{1.0, 0.3}});
    geofem::contact::add_penalty(sys.a, mesh.contact_groups, 1e6);
    geofem::fem::BoundaryConditions bc;
    bc.fix_nodes(mesh.nodes_where([](double, double, double z) { return z == 0.0; }), -1);
    bc.surface_load(mesh, [](double, double, double z) { return z > 13.9; }, 2, -1.0);
    geofem::fem::apply_boundary_conditions(sys, bc);
    sn = geofem::contact::build_supernodes(mesh.num_nodes(), mesh.contact_groups);
  }
};

const Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_SpmvCSR(benchmark::State& state) {
  const auto& f = fixture();
  std::vector<double> x(f.sys.a.ndof(), 1.0), y(x.size());
  for (auto _ : state) {
    f.sys.a.spmv(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * f.sys.a.nnz_blocks());
}
BENCHMARK(BM_SpmvCSR);

void BM_SpmvDJDS(benchmark::State& state) {
  const auto& f = fixture();
  const auto g = geofem::sparse::graph_of(f.sys.a);
  const auto q = geofem::reorder::quotient_graph(g, f.sn.node_to_super, f.sn.count());
  const auto col =
      geofem::reorder::lift_coloring(geofem::reorder::multicolor(q, 20), f.sn.node_to_super,
                                     f.sys.a.n);
  const geofem::reorder::DJDSMatrix dj(f.sys.a, col, &f.sn, {});
  std::vector<double> x(f.sys.a.ndof(), 1.0), y(x.size());
  for (auto _ : state) {
    dj.spmv(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * f.sys.a.nnz_blocks());
}
BENCHMARK(BM_SpmvDJDS);

void BM_ApplyBIC0(benchmark::State& state) {
  const auto& f = fixture();
  const geofem::precond::BIC0 prec(f.sys.a);
  std::vector<double> r(f.sys.a.ndof(), 1.0), z(r.size());
  for (auto _ : state) {
    prec.apply(r, z, nullptr, nullptr);
    benchmark::DoNotOptimize(z.data());
  }
}
BENCHMARK(BM_ApplyBIC0);

void BM_ApplySBBIC0(benchmark::State& state) {
  const auto& f = fixture();
  const geofem::precond::SBBIC0 prec(f.sys.a, f.sn);
  std::vector<double> r(f.sys.a.ndof(), 1.0), z(r.size());
  for (auto _ : state) {
    prec.apply(r, z, nullptr, nullptr);
    benchmark::DoNotOptimize(z.data());
  }
}
BENCHMARK(BM_ApplySBBIC0);

void BM_ApplyBIC1(benchmark::State& state) {
  const auto& f = fixture();
  const geofem::precond::BlockILUk prec(f.sys.a, 1);
  std::vector<double> r(f.sys.a.ndof(), 1.0), z(r.size());
  for (auto _ : state) {
    prec.apply(r, z, nullptr, nullptr);
    benchmark::DoNotOptimize(z.data());
  }
}
BENCHMARK(BM_ApplyBIC1);

void BM_FactorSBBIC0(benchmark::State& state) {
  const auto& f = fixture();
  for (auto _ : state) {
    const auto lus = geofem::precond::sb_factor_diagonals(f.sys.a, f.sn);
    benchmark::DoNotOptimize(lus.size());
  }
}
BENCHMARK(BM_FactorSBBIC0);

// -- telemetry overhead ------------------------------------------------------
// The hot kernels above run with no registry attached; these quantify what
// that costs. With no registry, a ScopedSpan is one thread-local load and a
// null check; BM_SpmvDJDS vs BM_SpmvDJDSTelemetryOff must be indistinguishable.

void BM_SpanDisabled(benchmark::State& state) {
  geofem::obs::Attach detach(nullptr);
  for (auto _ : state) {
    geofem::obs::ScopedSpan span("bench.disabled");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  geofem::obs::Registry reg;
  geofem::obs::Attach attach(&reg);
  for (auto _ : state) {
    geofem::obs::ScopedSpan span("bench.enabled");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_SpanEnabled);

void BM_CounterHandleAdd(benchmark::State& state) {
  geofem::obs::Registry reg;
  geofem::obs::Counter* c = reg.counter("bench.counter");
  for (auto _ : state) {
    c->add(1);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_CounterHandleAdd);

void BM_SpmvDJDSTelemetryOff(benchmark::State& state) {
  geofem::obs::Attach detach(nullptr);
  const auto& f = fixture();
  const auto g = geofem::sparse::graph_of(f.sys.a);
  const auto q = geofem::reorder::quotient_graph(g, f.sn.node_to_super, f.sn.count());
  const auto col =
      geofem::reorder::lift_coloring(geofem::reorder::multicolor(q, 20), f.sn.node_to_super,
                                     f.sys.a.n);
  const geofem::reorder::DJDSMatrix dj(f.sys.a, col, &f.sn, {});
  std::vector<double> x(f.sys.a.ndof(), 1.0), y(x.size());
  for (auto _ : state) {
    geofem::obs::ScopedSpan span("bench.spmv");
    dj.spmv(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * f.sys.a.nnz_blocks());
}
BENCHMARK(BM_SpmvDJDSTelemetryOff);

}  // namespace

BENCHMARK_MAIN();
