#pragma once

#include <functional>
#include <span>
#include <vector>

#include "solver/cg.hpp"

namespace geofem::solver {

/// Y = A X multi-vector hook for the batched solve path (DESIGN.md §5k):
/// X and Y hold k interleaved RHS columns (value(dof i, column c) = X[i*k+c]).
/// Implementations forward to BlockCSR::spmm / DJDSMatrix::spmm.
using MatVecMulti = std::function<void(std::span<const double>, std::span<double>, int,
                                       util::FlopCounter*, util::LoopStats*)>;

struct BatchedCGOptions {
  /// Shared solver controls. `cg.tolerance` is the default for every column
  /// (see `tolerances`); `cg.max_iterations` bounds the shared outer loop.
  /// Restrictions for k > 1: only CGVariant::kClassic is supported (checked)
  /// and `stagnation_window` is ignored — frozen-column masking has no analog
  /// of the single-RHS stagnation ring. Batch-of-1 delegates to solver::pcg
  /// and honors every option bit-identically.
  CGOptions cg;
  /// Optional per-column tolerance overrides; empty (all columns use
  /// cg.tolerance) or exactly k entries.
  std::vector<double> tolerances;
  /// Compact the working batch (repack live columns, shrink the interleaved
  /// stride) once active columns <= compact_threshold * current width. <= 0
  /// disables compaction. Compaction never changes which columns converge,
  /// but it MAY perturb a live column's trajectory in the last bits (a column
  /// can move between an AVX2 lane group and the scalar tail); results stay
  /// deterministic because freeze points — and therefore compaction points —
  /// are themselves deterministic.
  double compact_threshold = 0.5;
};

struct BatchedCGResult {
  /// Per-column outcome in the caller's column order. `status`, `iterations`,
  /// `relative_residual` and (if requested) `residual_history` are per
  /// column; `flops` / `loops` / `solve_seconds` of each column are left
  /// empty — shared work is reported once in the fields below.
  std::vector<CGResult> columns;
  int iterations = 0;        ///< shared outer iterations executed
  int compactions = 0;       ///< number of batch repacks
  double solve_seconds = 0.0;
  util::FlopCounter flops;
  util::LoopStats loops;

  [[nodiscard]] bool all_converged() const {
    for (const auto& c : columns)
      if (!c.converged()) return false;
    return true;
  }
};

/// Batched preconditioned CG: solves A x_c = b_c for k right-hand sides with
/// ONE SpMM and ONE multi-column preconditioner application per iteration,
/// per-column alpha/beta/rho recurrences, and per-column convergence masking
/// (a converged or broken-down column freezes: its solution is emitted at
/// freeze time and the masked updates never touch it again). `b` and `x`
/// hold k interleaved columns (dof-major, value(i, c) = b[i*k+c]); `x` holds
/// initial guesses on entry and solutions on return.
///
/// Contract: k == 1 delegates wholesale to solver::pcg through `amul`
/// (bit-identical solution AND residual history to a plain single-RHS
/// solve); k > 1 matches the per-column single solves to solver tolerance
/// but not bitwise (interleaved kernels fix a different lane shape).
BatchedCGResult pcg_batched(const MatVec& amul, const MatVecMulti& amul_multi,
                            const precond::Preconditioner& m, std::span<const double> b,
                            std::span<double> x, int k, const BatchedCGOptions& opt = {});

/// Convenience overload for a serial BlockCSR system (spmv + spmm hooks).
BatchedCGResult pcg_batched(const sparse::BlockCSR& a, const precond::Preconditioner& m,
                            std::span<const double> b, std::span<double> x, int k,
                            const BatchedCGOptions& opt = {});

}  // namespace geofem::solver
