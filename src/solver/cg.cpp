#include "solver/cg.hpp"

#include <cmath>

#include "obs/span.hpp"
#include "simd/simd.hpp"
#include "sparse/vector_ops.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace geofem::solver {

std::string to_string(CGVariant v) {
  switch (v) {
    case CGVariant::kClassic: return "classic";
    case CGVariant::kGropp: return "gropp";
    case CGVariant::kPipelined: return "pipelined";
  }
  return "?";
}

namespace {

/// One CG attempt continuing from the current `x`, drawing on the shared
/// budget opt.max_iterations - res.iterations and appending to
/// res.residual_history. Each attempt recomputes its own true residual
/// r = b - A x at entry, so a warm restart (the kClassic retry after a
/// variant breakdown) starts from an honest residual rather than the drifted
/// recurrence of the failed attempt. Sets res.status / res.relative_residual.
using Attempt = void (*)(const MatVec&, const precond::Preconditioner&, std::span<const double>,
                         std::span<double>, const CGOptions&, CGResult&, obs::Registry*);

/// Textbook PCG — the body is the pre-variant solver verbatim (same spans,
/// same operation order, same breakdown checks), so kClassic residual
/// histories stay bit-identical to the pre-change baselines.
void attempt_classic(const MatVec& amul, const precond::Preconditioner& m,
                     std::span<const double> b, std::span<double> x, const CGOptions& opt,
                     CGResult& res, obs::Registry* reg) {
  const std::size_t n = b.size();
  simd::aligned_vector<double> r(n), z(n), p(n), q(n);
  auto* fc = &res.flops;
  auto* ls = &res.loops;

  // r = b - A x
  {
    obs::ScopedSpan s(reg, "pcg.spmv");
    amul(x, r, fc, ls);
  }
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  fc->blas1 += n;

  const double bnorm = sparse::norm2(b, fc);
  GEOFEM_CHECK(bnorm > 0.0, "pcg: zero right-hand side");
  double rnorm = sparse::norm2(r, fc);
  if (opt.record_residuals) res.residual_history.push_back(rnorm / bnorm);

  // Stagnation ring buffer: slot it % W holds the relative residual from W
  // iterations ago by the time iteration `it` reads it.
  const int window = opt.stagnation_window;
  std::vector<double> stag_ring(window > 0 ? static_cast<std::size_t>(window) : 0);

  res.status = SolveStatus::kMaxIterations;
  double rho_prev = 0.0;
  for (int it = 0; res.iterations < opt.max_iterations && rnorm / bnorm > opt.tolerance; ++it) {
    double rho = 0.0;
    {
      obs::ScopedSpan s(reg, "pcg.precond");
      m.apply(r, z, fc, ls);
    }
    {
      obs::ScopedSpan s(reg, "pcg.blas1");
      rho = sparse::dot(r, z, fc);
      // Breakdown: with an SPD preconditioner and r != 0, rho = r.z must be
      // strictly positive; anything else (including NaN) would previously
      // poison p and run to max_iterations on garbage.
      if (!(rho > 0.0)) {
        res.status = SolveStatus::kBreakdown;
        break;
      }
      if (it == 0) {
        sparse::copy(z, p);
      } else {
        sparse::xpby(z, rho / rho_prev, p, fc);
      }
    }
    rho_prev = rho;

    {
      obs::ScopedSpan s(reg, "pcg.spmv");
      amul(p, q, fc, ls);
    }
    {
      obs::ScopedSpan s(reg, "pcg.blas1");
      const double pq = sparse::dot(p, q, fc);
      // Indefinite direction: p.Ap <= 0 means A is not SPD along p and the
      // step length alpha is meaningless.
      if (!(pq > 0.0)) {
        res.status = SolveStatus::kBreakdown;
        break;
      }
      const double alpha = rho / pq;
      sparse::axpy(alpha, p, x, fc);
      sparse::axpy(-alpha, q, r, fc);
      rnorm = sparse::norm2(r, fc);
    }
    ++res.iterations;
    if (opt.record_residuals) res.residual_history.push_back(rnorm / bnorm);
    if (!std::isfinite(rnorm)) {
      res.status = SolveStatus::kBreakdown;
      break;
    }
    if (window > 0) {
      const double rel = rnorm / bnorm;
      const auto slot = static_cast<std::size_t>(it % window);
      if (it >= window && rel > 0.99 * stag_ring[slot]) {
        res.status = SolveStatus::kStagnated;
        break;
      }
      stag_ring[slot] = rel;
    }
  }

  res.relative_residual = rnorm / bnorm;
  if (res.relative_residual <= opt.tolerance) res.status = SolveStatus::kConverged;
}

/// Gropp's two-overlap CG: two reductions per iteration, (p,s) hidden behind
/// q = M⁻¹s and the fused {(r,u), ||r||²} hidden behind w = Au. Serially the
/// reductions are free; the operation order still mirrors the distributed
/// loop so the two count iterations identically, and the would-be overlap
/// windows are traced as pcg.overlap spans.
void attempt_gropp(const MatVec& amul, const precond::Preconditioner& m,
                   std::span<const double> b, std::span<double> x, const CGOptions& opt,
                   CGResult& res, obs::Registry* reg) {
  const std::size_t n = b.size();
  simd::aligned_vector<double> r(n), u(n), p(n), s(n), q(n), w(n);
  auto* fc = &res.flops;
  auto* ls = &res.loops;

  {
    obs::ScopedSpan sp(reg, "pcg.spmv");
    amul(x, r, fc, ls);
  }
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  fc->blas1 += n;

  const double bnorm = sparse::norm2(b, fc);
  GEOFEM_CHECK(bnorm > 0.0, "pcg: zero right-hand side");
  double rnorm = sparse::norm2(r, fc);
  if (opt.record_residuals) res.residual_history.push_back(rnorm / bnorm);

  {
    obs::ScopedSpan sp(reg, "pcg.precond");
    m.apply(r, u, fc, ls);
  }
  sparse::copy(u, p);
  {
    obs::ScopedSpan sp(reg, "pcg.spmv");
    amul(p, s, fc, ls);
  }
  double gamma = sparse::dot(r, u, fc);

  const int window = opt.stagnation_window;
  std::vector<double> stag_ring(window > 0 ? static_cast<std::size_t>(window) : 0);

  res.status = SolveStatus::kMaxIterations;
  for (int it = 0; res.iterations < opt.max_iterations && rnorm / bnorm > opt.tolerance; ++it) {
    if (!(gamma > 0.0)) {
      res.status = SolveStatus::kBreakdown;
      break;
    }
    // First reduction, δ = (p, s) — distributed, its allreduce is in flight
    // while the preconditioner below runs.
    const double delta = sparse::dot(p, s, fc);
    {
      obs::ScopedSpan ov(reg, "pcg.overlap");
      obs::ScopedSpan sp(reg, "pcg.precond");
      m.apply(s, q, fc, ls);  // q = M⁻¹ s
    }
    if (!(delta > 0.0)) {
      res.status = SolveStatus::kBreakdown;
      break;
    }
    const double alpha = gamma / delta;
    sparse::axpy(alpha, p, x, fc);
    sparse::axpy(-alpha, s, r, fc);
    sparse::axpy(-alpha, q, u, fc);
    // Second reduction, fused {γ' = (r,u), ||r||²} — in flight while the
    // SpMV below runs.
    const double gamma_new = sparse::dot(r, u, fc);
    const double rr = sparse::dot(r, r, fc);
    {
      obs::ScopedSpan ov(reg, "pcg.overlap");
      obs::ScopedSpan sp(reg, "pcg.spmv");
      amul(u, w, fc, ls);  // w = A u
    }
    const double beta = gamma_new / gamma;
    sparse::xpby(u, beta, p, fc);  // p = u + β p
    sparse::xpby(w, beta, s, fc);  // s = w + β s
    gamma = gamma_new;
    rnorm = std::sqrt(rr);
    ++res.iterations;
    if (opt.record_residuals) res.residual_history.push_back(rnorm / bnorm);
    if (!std::isfinite(rnorm)) {
      res.status = SolveStatus::kBreakdown;
      break;
    }
    if (window > 0) {
      const double rel = rnorm / bnorm;
      const auto slot = static_cast<std::size_t>(it % window);
      if (it >= window && rel > 0.99 * stag_ring[slot]) {
        res.status = SolveStatus::kStagnated;
        break;
      }
      stag_ring[slot] = rel;
    }
  }

  res.relative_residual = rnorm / bnorm;
  if (res.relative_residual <= opt.tolerance) res.status = SolveStatus::kConverged;
}

/// Ghysels–Vanroose pipelined CG: ONE fused reduction per iteration
/// {γ = (r,u), δ = (w,u), ||r||²}, hidden behind both m = M⁻¹w and n = Am.
/// Four extra recurrence vectors (z, q, s, p) trade memory for the removed
/// synchronization; the recurrence residual can drift from the true one
/// (attainable accuracy), which is why breakdown/stagnation here falls back
/// to kClassic rather than straight to a different preconditioner.
void attempt_pipelined(const MatVec& amul, const precond::Preconditioner& m,
                       std::span<const double> b, std::span<double> x, const CGOptions& opt,
                       CGResult& res, obs::Registry* reg) {
  const std::size_t n = b.size();
  simd::aligned_vector<double> r(n), u(n), w(n), mv(n), nv(n), z(n), q(n), s(n), p(n);
  auto* fc = &res.flops;
  auto* ls = &res.loops;

  {
    obs::ScopedSpan sp(reg, "pcg.spmv");
    amul(x, r, fc, ls);
  }
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  fc->blas1 += n;

  const double bnorm = sparse::norm2(b, fc);
  GEOFEM_CHECK(bnorm > 0.0, "pcg: zero right-hand side");
  double rnorm = sparse::norm2(r, fc);
  if (opt.record_residuals) res.residual_history.push_back(rnorm / bnorm);

  {
    obs::ScopedSpan sp(reg, "pcg.precond");
    m.apply(r, u, fc, ls);
  }
  {
    obs::ScopedSpan sp(reg, "pcg.spmv");
    amul(u, w, fc, ls);
  }

  const int window = opt.stagnation_window;
  std::vector<double> stag_ring(window > 0 ? static_cast<std::size_t>(window) : 0);

  res.status = SolveStatus::kMaxIterations;
  double gamma_prev = 0.0, alpha_prev = 0.0;
  for (int it = 0;; ++it) {
    // The single fused reduction of the iteration. Distributed, its
    // allreduce is posted here and the overlap window below (M⁻¹w and Am)
    // runs before the wait.
    const double gamma = sparse::dot(r, u, fc);
    const double delta = sparse::dot(w, u, fc);
    const double rr = sparse::dot(r, r, fc);
    rnorm = std::sqrt(rr);
    const double rel = rnorm / bnorm;
    // ||r_it||² arrives with iteration it's reduction: the history entry and
    // the stagnation probe for the previous iteration's update land here.
    if (it > 0) {
      if (opt.record_residuals) res.residual_history.push_back(rel);
      if (!std::isfinite(rnorm)) {
        res.status = SolveStatus::kBreakdown;
        break;
      }
      if (window > 0) {
        const auto slot = static_cast<std::size_t>((it - 1) % window);
        if (it - 1 >= window && rel > 0.99 * stag_ring[slot]) {
          res.status = SolveStatus::kStagnated;
          break;
        }
        stag_ring[slot] = rel;
      }
    }
    if (rel <= opt.tolerance) {
      res.status = SolveStatus::kConverged;
      break;
    }
    if (res.iterations >= opt.max_iterations) break;
    {
      obs::ScopedSpan ov(reg, "pcg.overlap");
      {
        obs::ScopedSpan sp(reg, "pcg.precond");
        m.apply(w, mv, fc, ls);  // m = M⁻¹ w
      }
      {
        obs::ScopedSpan sp(reg, "pcg.spmv");
        amul(mv, nv, fc, ls);  // n = A m
      }
    }
    if (!(gamma > 0.0)) {
      res.status = SolveStatus::kBreakdown;
      break;
    }
    double alpha = 0.0, beta = 0.0;
    if (it == 0) {
      if (!(delta > 0.0)) {
        res.status = SolveStatus::kBreakdown;
        break;
      }
      alpha = gamma / delta;
    } else {
      beta = gamma / gamma_prev;
      // α = γ / (δ − β γ / α_prev): the pipelined recurrence's rearranged
      // p.Ap. A non-positive (or non-finite) denominator is the variant's
      // rounding-induced breakdown mode.
      const double denom = delta - beta * gamma / alpha_prev;
      if (!(denom > 0.0) || !std::isfinite(denom)) {
        res.status = SolveStatus::kBreakdown;
        break;
      }
      alpha = gamma / denom;
    }
    if (it == 0) {
      sparse::copy(nv, z);
      sparse::copy(mv, q);
      sparse::copy(w, s);
      sparse::copy(u, p);
    } else {
      sparse::xpby(nv, beta, z, fc);  // z = n + β z
      sparse::xpby(mv, beta, q, fc);  // q = m + β q
      sparse::xpby(w, beta, s, fc);   // s = w + β s
      sparse::xpby(u, beta, p, fc);   // p = u + β p
    }
    sparse::axpy(alpha, p, x, fc);
    sparse::axpy(-alpha, s, r, fc);
    sparse::axpy(-alpha, q, u, fc);
    sparse::axpy(-alpha, z, w, fc);
    gamma_prev = gamma;
    alpha_prev = alpha;
    ++res.iterations;

    // Periodic residual replacement: rebuild every recurrence vector from its
    // definition. Purely local work (no reductions), so the single-reduction
    // overlap structure is untouched; without it the recurrence residual
    // plateaus well above classic's attainable accuracy on ill-conditioned
    // systems and tight tolerances force the kClassic fallback.
    const int replace = opt.pipeline_replace_interval;
    if (replace > 0 && (it + 1) % replace == 0) {
      {
        obs::ScopedSpan sp(reg, "pcg.spmv");
        amul(x, mv, fc, ls);
      }
      for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - mv[i];
      fc->blas1 += n;
      {
        obs::ScopedSpan sp(reg, "pcg.precond");
        m.apply(r, u, fc, ls);
      }
      {
        obs::ScopedSpan sp(reg, "pcg.spmv");
        amul(u, w, fc, ls);
        amul(p, s, fc, ls);
      }
      {
        obs::ScopedSpan sp(reg, "pcg.precond");
        m.apply(s, q, fc, ls);
      }
      {
        obs::ScopedSpan sp(reg, "pcg.spmv");
        amul(q, z, fc, ls);
      }
    }
  }

  res.relative_residual = rnorm / bnorm;
  if (res.relative_residual <= opt.tolerance) res.status = SolveStatus::kConverged;
}

Attempt attempt_of(CGVariant v) {
  switch (v) {
    case CGVariant::kClassic: return &attempt_classic;
    case CGVariant::kGropp: return &attempt_gropp;
    case CGVariant::kPipelined: return &attempt_pipelined;
  }
  GEOFEM_CHECK(false, "unknown CG variant");
}

}  // namespace

CGResult pcg(const MatVec& amul, const precond::Preconditioner& m, std::span<const double> b,
             std::span<double> x, const CGOptions& opt) {
  GEOFEM_CHECK(b.size() == x.size(), "pcg size mismatch");
  CGResult res;
  util::Timer timer;

  // Telemetry is opt-in: reg is null unless the caller attached a registry to
  // this thread (obs::Attach), in which case each phase of every iteration
  // becomes a trace span and the final counts land as registry metrics.
  obs::Registry* reg = obs::current();
  obs::ScopedSpan solve_span(reg, "pcg.solve");

  attempt_of(opt.variant)(amul, m, b, x, opt, res, reg);

  // Reordered-arithmetic variants are numerically delicate: a breakdown or
  // stall falls back to the bitwise-reference kClassic on the SAME
  // preconditioner (warm restart from the partial iterate, shared budget)
  // before any preconditioner-level fallback gets to run.
  if (opt.variant != CGVariant::kClassic &&
      (res.status == SolveStatus::kBreakdown || res.status == SolveStatus::kStagnated)) {
    res.variant_fallbacks = 1;
    if (reg) reg->counter("pcg.fallback.variant")->add(1);
    CGOptions retry = opt;
    retry.variant = CGVariant::kClassic;
    attempt_classic(amul, m, b, x, retry, res, reg);
    if (res.status == SolveStatus::kConverged) res.status = SolveStatus::kFellBack;
  }

  res.solve_seconds = timer.seconds();

  if (reg) {
    std::string slug = to_string(res.status);
    for (char& ch : slug)
      if (ch == ' ') ch = '_';
    reg->counter("pcg.status." + slug)->add(1);
    reg->counter("pcg.iterations")->add(static_cast<std::uint64_t>(res.iterations));
    reg->counter("pcg.solves")->add(1);
    reg->gauge("pcg.relative_residual")->set(res.relative_residual);
    reg->gauge("pcg.solve_seconds")->set(res.solve_seconds);
    reg->gauge("solver.variant")->set(static_cast<double>(opt.variant));
    reg->absorb("pcg", res.flops);
    reg->absorb("pcg", res.loops);
  }
  return res;
}

CGResult pcg(const sparse::BlockCSR& a, const precond::Preconditioner& m,
             std::span<const double> b, std::span<double> x, const CGOptions& opt) {
  return pcg(
      [&a](std::span<const double> in, std::span<double> out, util::FlopCounter* fc,
           util::LoopStats* ls) { a.spmv(in, out, fc, ls); },
      m, b, x, opt);
}

}  // namespace geofem::solver
