#include "solver/cg.hpp"

#include <cmath>

#include "obs/span.hpp"
#include "simd/simd.hpp"
#include "sparse/vector_ops.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace geofem::solver {

CGResult pcg(const MatVec& amul, const precond::Preconditioner& m, std::span<const double> b,
             std::span<double> x, const CGOptions& opt) {
  GEOFEM_CHECK(b.size() == x.size(), "pcg size mismatch");
  const std::size_t n = b.size();
  CGResult res;
  util::Timer timer;

  // Telemetry is opt-in: reg is null unless the caller attached a registry to
  // this thread (obs::Attach), in which case each phase of every iteration
  // becomes a trace span and the final counts land as registry metrics.
  obs::Registry* reg = obs::current();
  obs::ScopedSpan solve_span(reg, "pcg.solve");

  simd::aligned_vector<double> r(n), z(n), p(n), q(n);
  auto* fc = &res.flops;
  auto* ls = &res.loops;

  // r = b - A x
  {
    obs::ScopedSpan s(reg, "pcg.spmv");
    amul(x, r, fc, ls);
  }
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  fc->blas1 += n;

  const double bnorm = sparse::norm2(b, fc);
  GEOFEM_CHECK(bnorm > 0.0, "pcg: zero right-hand side");
  double rnorm = sparse::norm2(r, fc);
  if (opt.record_residuals) res.residual_history.push_back(rnorm / bnorm);

  // Stagnation ring buffer: slot it % W holds the relative residual from W
  // iterations ago by the time iteration `it` reads it.
  const int window = opt.stagnation_window;
  std::vector<double> stag_ring(window > 0 ? static_cast<std::size_t>(window) : 0);

  double rho_prev = 0.0;
  for (int it = 0; it < opt.max_iterations && rnorm / bnorm > opt.tolerance; ++it) {
    double rho = 0.0;
    {
      obs::ScopedSpan s(reg, "pcg.precond");
      m.apply(r, z, fc, ls);
    }
    {
      obs::ScopedSpan s(reg, "pcg.blas1");
      rho = sparse::dot(r, z, fc);
      // Breakdown: with an SPD preconditioner and r != 0, rho = r.z must be
      // strictly positive; anything else (including NaN) would previously
      // poison p and run to max_iterations on garbage.
      if (!(rho > 0.0)) {
        res.status = SolveStatus::kBreakdown;
        break;
      }
      if (it == 0) {
        sparse::copy(z, p);
      } else {
        sparse::xpby(z, rho / rho_prev, p, fc);
      }
    }
    rho_prev = rho;

    {
      obs::ScopedSpan s(reg, "pcg.spmv");
      amul(p, q, fc, ls);
    }
    {
      obs::ScopedSpan s(reg, "pcg.blas1");
      const double pq = sparse::dot(p, q, fc);
      // Indefinite direction: p.Ap <= 0 means A is not SPD along p and the
      // step length alpha is meaningless.
      if (!(pq > 0.0)) {
        res.status = SolveStatus::kBreakdown;
        break;
      }
      const double alpha = rho / pq;
      sparse::axpy(alpha, p, x, fc);
      sparse::axpy(-alpha, q, r, fc);
      rnorm = sparse::norm2(r, fc);
    }
    ++res.iterations;
    if (opt.record_residuals) res.residual_history.push_back(rnorm / bnorm);
    if (!std::isfinite(rnorm)) {
      res.status = SolveStatus::kBreakdown;
      break;
    }
    if (window > 0) {
      const double rel = rnorm / bnorm;
      const auto slot = static_cast<std::size_t>(it % window);
      if (it >= window && rel > 0.99 * stag_ring[slot]) {
        res.status = SolveStatus::kStagnated;
        break;
      }
      stag_ring[slot] = rel;
    }
  }

  res.relative_residual = rnorm / bnorm;
  if (res.relative_residual <= opt.tolerance) res.status = SolveStatus::kConverged;
  res.solve_seconds = timer.seconds();

  if (reg) {
    std::string slug = to_string(res.status);
    for (char& ch : slug)
      if (ch == ' ') ch = '_';
    reg->counter("pcg.status." + slug)->add(1);
    reg->counter("pcg.iterations")->add(static_cast<std::uint64_t>(res.iterations));
    reg->counter("pcg.solves")->add(1);
    reg->gauge("pcg.relative_residual")->set(res.relative_residual);
    reg->gauge("pcg.solve_seconds")->set(res.solve_seconds);
    reg->absorb("pcg", res.flops);
    reg->absorb("pcg", res.loops);
  }
  return res;
}

CGResult pcg(const sparse::BlockCSR& a, const precond::Preconditioner& m,
             std::span<const double> b, std::span<double> x, const CGOptions& opt) {
  return pcg(
      [&a](std::span<const double> in, std::span<double> out, util::FlopCounter* fc,
           util::LoopStats* ls) { a.spmv(in, out, fc, ls); },
      m, b, x, opt);
}

}  // namespace geofem::solver
