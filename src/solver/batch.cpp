#include "solver/batch.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "obs/span.hpp"
#include "simd/simd.hpp"
#include "sparse/multivec.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace geofem::solver {

namespace {

/// Working state of the live batch. Column arrays are indexed by the CURRENT
/// (compacted) position; col_map translates back to the caller's order.
struct BatchState {
  int kw = 0;  ///< current width
  simd::aligned_vector<double> r, z, p, q, xw, bw;
  std::vector<double> bnorm, rnorm, rho_prev, tol;
  std::vector<int> col_map;
  std::vector<unsigned char> active;
};

}  // namespace

BatchedCGResult pcg_batched(const MatVec& amul, const MatVecMulti& amul_multi,
                            const precond::Preconditioner& m, std::span<const double> b,
                            std::span<double> x, int k, const BatchedCGOptions& opt) {
  GEOFEM_CHECK(k >= 1 && k <= simd::kMaxMultiRhs, "pcg_batched: bad column count");
  GEOFEM_CHECK(b.size() == x.size() && b.size() % static_cast<std::size_t>(k) == 0,
               "pcg_batched: size mismatch");
  GEOFEM_CHECK(opt.tolerances.empty() || opt.tolerances.size() == static_cast<std::size_t>(k),
               "pcg_batched: tolerances must be empty or one per column");

  BatchedCGResult res;
  res.columns.resize(static_cast<std::size_t>(k));

  // Batch-of-1 is the classic solver, verbatim: bit-identical solution and
  // residual history to a plain single-RHS pcg() call.
  if (k == 1) {
    CGOptions o = opt.cg;
    if (!opt.tolerances.empty()) o.tolerance = opt.tolerances[0];
    CGResult one = pcg(amul, m, b, x, o);
    res.iterations = one.iterations;
    res.solve_seconds = one.solve_seconds;
    res.flops = one.flops;
    res.loops = one.loops;
    res.columns[0].status = one.status;
    res.columns[0].iterations = one.iterations;
    res.columns[0].relative_residual = one.relative_residual;
    res.columns[0].residual_history = std::move(one.residual_history);
    res.columns[0].variant_fallbacks = one.variant_fallbacks;
    return res;
  }

  GEOFEM_CHECK(opt.cg.variant == CGVariant::kClassic,
               "pcg_batched: k > 1 supports CGVariant::kClassic only");

  const std::size_t n = b.size() / static_cast<std::size_t>(k);
  util::Timer timer;
  obs::Registry* reg = obs::current();
  obs::ScopedSpan solve_span(reg, "pcg.batched.solve");
  auto* fc = &res.flops;
  auto* ls = &res.loops;

  BatchState st;
  st.kw = k;
  st.r.resize(b.size());
  st.z.resize(b.size());
  st.p.resize(b.size());
  st.q.resize(b.size());
  st.xw.assign(x.begin(), x.end());
  st.bw.assign(b.begin(), b.end());
  st.bnorm.resize(static_cast<std::size_t>(k));
  st.rnorm.resize(static_cast<std::size_t>(k));
  st.rho_prev.assign(static_cast<std::size_t>(k), 0.0);
  st.tol.resize(static_cast<std::size_t>(k));
  st.col_map.resize(static_cast<std::size_t>(k));
  st.active.assign(static_cast<std::size_t>(k), 1);
  for (int c = 0; c < k; ++c) {
    st.col_map[static_cast<std::size_t>(c)] = c;
    st.tol[static_cast<std::size_t>(c)] =
        opt.tolerances.empty() ? opt.cg.tolerance : opt.tolerances[static_cast<std::size_t>(c)];
  }

  // r = b - A x (one SpMM for all columns).
  {
    obs::ScopedSpan s(reg, "pcg.spmm");
    amul_multi(std::span<const double>(st.xw.data(), st.xw.size()),
               std::span<double>(st.r.data(), st.r.size()), st.kw, fc, ls);
  }
  for (std::size_t i = 0; i < st.r.size(); ++i) st.r[i] = st.bw[i] - st.r[i];
  fc->blas1 += st.r.size();

  sparse::norm2_multi(st.bw.data(), n, st.kw, st.bnorm.data(), fc);
  for (int c = 0; c < k; ++c)
    GEOFEM_CHECK(st.bnorm[static_cast<std::size_t>(c)] > 0.0, "pcg: zero right-hand side");
  sparse::norm2_multi(st.r.data(), n, st.kw, st.rnorm.data(), fc);
  if (opt.cg.record_residuals)
    for (int c = 0; c < st.kw; ++c)
      res.columns[static_cast<std::size_t>(st.col_map[static_cast<std::size_t>(c)])]
          .residual_history.push_back(st.rnorm[static_cast<std::size_t>(c)] /
                                      st.bnorm[static_cast<std::size_t>(c)]);

  // Freeze column `c` (current position) with `status`: emit its solution
  // into the caller's x at its original position and record its outcome. The
  // masked updates below never touch a frozen column again.
  int n_active = st.kw;
  std::vector<double> colbuf(n);
  auto freeze = [&](int c, SolveStatus status, int iters) {
    const auto cc = static_cast<std::size_t>(c);
    const int orig = st.col_map[cc];
    st.active[cc] = 0;
    --n_active;
    sparse::gather_column(st.xw.data(), n, st.kw, c, colbuf.data());
    sparse::scatter_column(colbuf.data(), n, k, orig, x.data());
    auto& col = res.columns[static_cast<std::size_t>(orig)];
    col.status = status;
    col.iterations = iters;
    col.relative_residual = st.rnorm[cc] / st.bnorm[cc];
  };

  std::vector<double> rho(static_cast<std::size_t>(k)), pq(static_cast<std::size_t>(k)),
      alpha(static_cast<std::size_t>(k)), neg_alpha(static_cast<std::size_t>(k)),
      beta(static_cast<std::size_t>(k));
  std::vector<int> iters(static_cast<std::size_t>(k), 0);
  std::vector<int> keep(static_cast<std::size_t>(k));

  // Columns already at tolerance before the first iteration.
  for (int c = st.kw - 1; c >= 0; --c)
    if (st.rnorm[static_cast<std::size_t>(c)] / st.bnorm[static_cast<std::size_t>(c)] <=
        st.tol[static_cast<std::size_t>(c)])
      freeze(c, SolveStatus::kConverged, 0);

  for (int it = 0; n_active > 0 && res.iterations < opt.cg.max_iterations; ++it) {
    {
      obs::ScopedSpan s(reg, "pcg.precond");
      m.apply_multi(std::span<const double>(st.r.data(), n * static_cast<std::size_t>(st.kw)),
                    std::span<double>(st.z.data(), n * static_cast<std::size_t>(st.kw)), st.kw,
                    fc, ls);
    }
    sparse::dot_multi(st.r.data(), st.z.data(), n, st.kw, rho.data(), fc);
    for (int c = st.kw - 1; c >= 0; --c) {
      const auto cc = static_cast<std::size_t>(c);
      if (!st.active[cc]) continue;
      // Same breakdown test as the single-RHS solver: with an SPD
      // preconditioner and r != 0, rho must be strictly positive.
      if (!(rho[cc] > 0.0)) freeze(c, SolveStatus::kBreakdown, iters[cc]);
    }
    if (n_active == 0) break;

    if (it == 0) {
      std::memcpy(st.p.data(), st.z.data(), n * static_cast<std::size_t>(st.kw) * sizeof(double));
    } else {
      for (int c = 0; c < st.kw; ++c) {
        const auto cc = static_cast<std::size_t>(c);
        beta[cc] = st.active[cc] ? rho[cc] / st.rho_prev[cc] : 0.0;
      }
      sparse::xpby_multi(beta.data(), st.active.data(), st.z.data(), st.p.data(), n, st.kw, fc);
    }
    for (int c = 0; c < st.kw; ++c)
      if (st.active[static_cast<std::size_t>(c)])
        st.rho_prev[static_cast<std::size_t>(c)] = rho[static_cast<std::size_t>(c)];

    {
      obs::ScopedSpan s(reg, "pcg.spmm");
      amul_multi(std::span<const double>(st.p.data(), n * static_cast<std::size_t>(st.kw)),
                 std::span<double>(st.q.data(), n * static_cast<std::size_t>(st.kw)), st.kw, fc,
                 ls);
    }
    sparse::dot_multi(st.p.data(), st.q.data(), n, st.kw, pq.data(), fc);
    for (int c = st.kw - 1; c >= 0; --c) {
      const auto cc = static_cast<std::size_t>(c);
      if (!st.active[cc]) continue;
      // Indefinite direction: p.Ap <= 0 means alpha is meaningless.
      if (!(pq[cc] > 0.0)) freeze(c, SolveStatus::kBreakdown, iters[cc]);
    }
    if (n_active == 0) break;

    for (int c = 0; c < st.kw; ++c) {
      const auto cc = static_cast<std::size_t>(c);
      alpha[cc] = st.active[cc] ? rho[cc] / pq[cc] : 0.0;
      neg_alpha[cc] = -alpha[cc];
    }
    sparse::axpy_multi(alpha.data(), st.active.data(), st.p.data(), st.xw.data(), n, st.kw, fc);
    sparse::axpy_multi(neg_alpha.data(), st.active.data(), st.q.data(), st.r.data(), n, st.kw,
                       fc);
    sparse::norm2_multi(st.r.data(), n, st.kw, st.rnorm.data(), fc);
    ++res.iterations;

    for (int c = st.kw - 1; c >= 0; --c) {
      const auto cc = static_cast<std::size_t>(c);
      if (!st.active[cc]) continue;
      ++iters[cc];
      const double rel = st.rnorm[cc] / st.bnorm[cc];
      if (opt.cg.record_residuals)
        res.columns[static_cast<std::size_t>(st.col_map[cc])].residual_history.push_back(rel);
      if (!std::isfinite(st.rnorm[cc])) {
        freeze(c, SolveStatus::kBreakdown, iters[cc]);
      } else if (rel <= st.tol[cc]) {
        freeze(c, SolveStatus::kConverged, iters[cc]);
      }
    }

    // Compact: repack live columns into a narrower interleaved stride so the
    // shared kernels stop streaming frozen lanes.
    if (n_active > 0 && n_active < st.kw && opt.compact_threshold > 0.0 &&
        static_cast<double>(n_active) <= opt.compact_threshold * static_cast<double>(st.kw)) {
      int kn = 0;
      for (int c = 0; c < st.kw; ++c)
        if (st.active[static_cast<std::size_t>(c)]) keep[static_cast<std::size_t>(kn++)] = c;
      sparse::compact_columns(st.r.data(), n, st.kw, keep.data(), kn);
      sparse::compact_columns(st.p.data(), n, st.kw, keep.data(), kn);
      sparse::compact_columns(st.xw.data(), n, st.kw, keep.data(), kn);
      sparse::compact_columns(st.bw.data(), n, st.kw, keep.data(), kn);
      for (int c = 0; c < kn; ++c) {
        const auto cc = static_cast<std::size_t>(c);
        const auto oc = static_cast<std::size_t>(keep[cc]);
        st.col_map[cc] = st.col_map[oc];
        st.bnorm[cc] = st.bnorm[oc];
        st.rnorm[cc] = st.rnorm[oc];
        st.rho_prev[cc] = st.rho_prev[oc];
        st.tol[cc] = st.tol[oc];
        iters[cc] = iters[oc];
      }
      st.kw = kn;
      std::fill(st.active.begin(), st.active.begin() + kn, static_cast<unsigned char>(1));
      ++res.compactions;
      if (reg) reg->counter("pcg.batched.compactions")->add(1);
    }
  }

  // Budget exhausted: the survivors report kMaxIterations, like the
  // single-RHS solver.
  for (int c = st.kw - 1; c >= 0; --c)
    if (st.active[static_cast<std::size_t>(c)])
      freeze(c, SolveStatus::kMaxIterations, iters[static_cast<std::size_t>(c)]);

  res.solve_seconds = timer.seconds();

  if (reg) {
    reg->counter("pcg.batched.solves")->add(1);
    reg->counter("pcg.batched.columns")->add(static_cast<std::uint64_t>(k));
    reg->gauge("pcg.batched.width")->set(static_cast<double>(k));
    reg->gauge("pcg.batched.solve_seconds")->set(res.solve_seconds);
    for (const auto& col : res.columns) {
      std::string slug = to_string(col.status);
      for (char& ch : slug)
        if (ch == ' ') ch = '_';
      reg->counter("pcg.status." + slug)->add(1);
      reg->counter("pcg.iterations")->add(static_cast<std::uint64_t>(col.iterations));
      reg->counter("pcg.solves")->add(1);
    }
    reg->absorb("pcg", res.flops);
    reg->absorb("pcg", res.loops);
  }
  return res;
}

BatchedCGResult pcg_batched(const sparse::BlockCSR& a, const precond::Preconditioner& m,
                            std::span<const double> b, std::span<double> x, int k,
                            const BatchedCGOptions& opt) {
  return pcg_batched(
      [&a](std::span<const double> in, std::span<double> out, util::FlopCounter* fc,
           util::LoopStats* ls) { a.spmv(in, out, fc, ls); },
      [&a](std::span<const double> in, std::span<double> out, int kk, util::FlopCounter* fc,
           util::LoopStats* ls) { a.spmm(in, out, kk, fc, ls); },
      m, b, x, k, opt);
}

}  // namespace geofem::solver
