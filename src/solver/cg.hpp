#pragma once

#include <functional>
#include <span>

#include "core/status.hpp"
#include "precond/preconditioner.hpp"
#include "sparse/block_csr.hpp"
#include "util/flops.hpp"
#include "util/loop_stats.hpp"

namespace geofem::solver {

struct CGOptions {
  double tolerance = 1e-8;  ///< on ||r||_2 / ||b||_2, the paper's epsilon
  int max_iterations = 20000;
  bool record_residuals = false;
  /// Stagnation detector: declare kStagnated when the relative residual at
  /// iteration `it` is > 0.99x its value `stagnation_window` iterations ago.
  /// 0 disables the check (default), leaving iteration counts untouched.
  int stagnation_window = 0;
};

struct CGResult {
  SolveStatus status = SolveStatus::kMaxIterations;
  int iterations = 0;
  double relative_residual = 0.0;
  double solve_seconds = 0.0;
  util::FlopCounter flops;
  util::LoopStats loops;
  std::vector<double> residual_history;  ///< if record_residuals

  [[nodiscard]] bool converged() const { return ok(status); }
};

/// y = A x hook; implementations forward to BlockCSR::spmv, DJDSMatrix::spmv
/// (with permuted vectors), or a distributed halo-exchange matvec.
using MatVec = std::function<void(std::span<const double>, std::span<double>,
                                  util::FlopCounter*, util::LoopStats*)>;

/// Preconditioned conjugate gradients. `x` holds the initial guess on entry
/// and the solution on return.
CGResult pcg(const MatVec& amul, const precond::Preconditioner& m, std::span<const double> b,
             std::span<double> x, const CGOptions& opt = {});

/// Convenience overload for a serial BlockCSR system.
CGResult pcg(const sparse::BlockCSR& a, const precond::Preconditioner& m,
             std::span<const double> b, std::span<double> x, const CGOptions& opt = {});

}  // namespace geofem::solver
