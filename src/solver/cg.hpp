#pragma once

#include <functional>
#include <span>
#include <string>

#include "core/status.hpp"
#include "precond/preconditioner.hpp"
#include "sparse/block_csr.hpp"
#include "util/flops.hpp"
#include "util/loop_stats.hpp"

namespace geofem::solver {

/// Arithmetic variant of preconditioned CG (DESIGN.md §5j). All three solve
/// the same system with the same preconditioner; they differ in how many
/// global dot-product reductions each iteration needs and what computation
/// those reductions can hide behind:
///   kClassic   — textbook PCG: 3 blocking reductions/iteration (rho, p.Ap,
///                ||r||), none overlapped. Bit-identical to the pre-variant
///                solver; the reference for equivalence tests.
///   kGropp     — Gropp's two-overlap CG: 2 reductions/iteration, one hidden
///                behind the preconditioner application, one behind the SpMV.
///   kPipelined — Ghysels–Vanroose pipelined CG: 1 fused reduction/iteration
///                (rho, w.u, ||r||² in one payload) hidden behind *both* the
///                preconditioner application and the SpMV, at the cost of 4
///                extra recurrence vectors and slightly reduced attainable
///                accuracy.
/// Reordered arithmetic means Gropp/pipelined residual histories are NOT
/// bit-identical to classic (iteration parity is tested instead), but each
/// variant is itself deterministic across thread counts and overlap settings.
enum class CGVariant { kClassic = 0, kGropp = 1, kPipelined = 2 };

[[nodiscard]] std::string to_string(CGVariant v);

struct CGOptions {
  double tolerance = 1e-8;  ///< on ||r||_2 / ||b||_2, the paper's epsilon
  int max_iterations = 20000;
  bool record_residuals = false;
  /// Stagnation detector: declare kStagnated when the relative residual at
  /// iteration `it` is > 0.99x its value `stagnation_window` iterations ago.
  /// 0 disables the check (default), leaving iteration counts untouched.
  int stagnation_window = 0;
  /// Communication-hiding variant. kClassic (default) keeps today's exact
  /// arithmetic; a non-classic variant that hits breakdown or stagnation
  /// falls back to kClassic on the same preconditioner (warm restart, shared
  /// iteration budget) before any preconditioner-level fallback is consulted,
  /// and reports SolveStatus::kFellBack when the classic retry converges.
  CGVariant variant = CGVariant::kClassic;
  /// kPipelined only: every this-many iterations, recompute the recurrence
  /// vectors from their definitions (r = b - Ax, u = M^-1 r, w = Au, s = Ap,
  /// q = M^-1 s, z = Aq — Ghysels–Vanroose residual replacement). The extra
  /// recurrences drift from their true values and plateau the recurrence
  /// residual ~2 digits above classic's attainable accuracy; replacement
  /// resets the drift for ~20% extra SpMV work at the default (4 SpMV +
  /// 2 preconditioner applies per replacement vs 1+1 per iteration). No
  /// global reductions are involved, so the overlap structure is unchanged.
  /// 0 disables (plateaus then falls back to kClassic at tight tolerances).
  int pipeline_replace_interval = 20;
};

struct CGResult {
  SolveStatus status = SolveStatus::kMaxIterations;
  int iterations = 0;
  double relative_residual = 0.0;
  double solve_seconds = 0.0;
  util::FlopCounter flops;
  util::LoopStats loops;
  std::vector<double> residual_history;  ///< if record_residuals
  /// 1 when a Gropp/pipelined attempt broke down or stagnated and the
  /// automatic kClassic retry ran (whether or not it then converged).
  int variant_fallbacks = 0;

  [[nodiscard]] bool converged() const { return ok(status); }
};

/// y = A x hook; implementations forward to BlockCSR::spmv, DJDSMatrix::spmv
/// (with permuted vectors), or a distributed halo-exchange matvec.
using MatVec = std::function<void(std::span<const double>, std::span<double>,
                                  util::FlopCounter*, util::LoopStats*)>;

/// Preconditioned conjugate gradients. `x` holds the initial guess on entry
/// and the solution on return.
CGResult pcg(const MatVec& amul, const precond::Preconditioner& m, std::span<const double> b,
             std::span<double> x, const CGOptions& opt = {});

/// Convenience overload for a serial BlockCSR system.
CGResult pcg(const sparse::BlockCSR& a, const precond::Preconditioner& m,
             std::span<const double> b, std::span<double> x, const CGOptions& opt = {});

}  // namespace geofem::solver
