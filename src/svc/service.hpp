#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/geofem.hpp"
#include "obs/registry.hpp"
#include "plan/cache.hpp"

/// geofem::svc — solver-as-a-service (DESIGN.md §5g).
///
/// The paper's workload is "one mesh family, many solves": every ALM cycle,
/// every λ step and every contact-state update re-solves a system whose
/// *graph* never changes. SolverService is the long-lived in-process server
/// that monetizes that shape: models (mesh + materials + boundary conditions)
/// are registered once, requests carry only the per-solve deltas (λ, load
/// scale, active contact groups), and the expensive symbolic set-up is shared
/// across all sessions through a sharded plan::PlanCache. Admission is
/// bounded (backpressure via SolveStatus::kRejected, never an unbounded
/// queue) and two priority classes — interactive and batch — are scheduled
/// starvation-free.
namespace geofem::svc {

/// Priority class of a request. Interactive requests are dispatched first,
/// but batch cannot starve: after ServiceOptions::interactive_burst
/// consecutive interactive dispatches while batch work waits, one batch
/// request is served (weighted round-robin with a fixed weight).
enum class Priority { kInteractive = 0, kBatch = 1 };
inline constexpr int kNumPriorities = 2;

[[nodiscard]] std::string to_string(Priority p);

/// Handle of a registered model (mesh family). Dense, starting at 0.
using ModelId = int;

/// One solve request: a model handle plus the per-solve deltas. Everything
/// structure-relevant (mesh, supernode map, preconditioner, ordering) comes
/// from the model and the service's base SolveConfig, so requests on one
/// model share one plan fingerprint and hit the plan cache warm.
struct SolveRequest {
  ModelId model = 0;
  Priority priority = Priority::kBatch;
  double lambda = 1e6;      ///< contact penalty for the active groups
  double load_scale = 1.0;  ///< multiplies every boundary load / body force
  /// Contact-state delta: active_groups[g] == 0 drops group g's penalty
  /// blocks to zero *values* (the sparsity pattern — and hence the plan
  /// fingerprint — is unchanged, so toggling contact state stays warm).
  /// Empty means every group is active.
  std::vector<std::uint8_t> active_groups;
  /// Optional per-request tolerance override; <= 0 uses the service default.
  double tolerance = 0.0;
  /// Optional stored-precision override for this request's preconditioner
  /// factors; unset uses the service's base SolveConfig::precision. fp32
  /// requests carry the usual automatic fp64 re-set-up on stagnation or
  /// narrowing breakdown (SolveReport::precision_fallbacks). Precision keys
  /// the plan fingerprint, so mixed-precision request streams on one model
  /// hold two plans in the shared cache, both warm.
  std::optional<precond::Precision> precision;
  /// Optional CG-variant override (classic / Gropp / pipelined); unset uses
  /// the service's base SolveConfig::cg.variant. Variants are a pure
  /// arithmetic choice — they do not key the plan fingerprint, so mixing
  /// variants on one model stays warm in the plan cache.
  std::optional<solver::CGVariant> variant;
};

/// Outcome of one request. For accepted requests `report` is the full
/// core::SolveReport (solution, iterations, plan reuse, timings); a rejected
/// request never reaches a worker and only carries status/queue bookkeeping.
struct SolveResponse {
  std::uint64_t id = 0;
  Priority priority = Priority::kBatch;
  SolveStatus status = SolveStatus::kRejected;
  double queue_seconds = 0.0;  ///< admission -> dequeue by a worker
  double total_seconds = 0.0;  ///< admission -> completion (or rejection)
  core::SolveReport report;

  [[nodiscard]] bool accepted() const { return status != SolveStatus::kRejected; }
};

struct ServiceOptions {
  int workers = 4;  ///< worker threads (each runs whole solves)
  /// Bounded admission queue per priority class; a submit() into a full
  /// queue resolves immediately with SolveStatus::kRejected (backpressure).
  std::size_t queue_capacity = 64;
  /// Starvation guard: consecutive interactive dispatches allowed while a
  /// batch request waits before one batch request is forced through.
  int interactive_burst = 4;
  std::size_t cache_capacity = 32;  ///< shared plan cache: resident plans
  std::size_t cache_shards = 8;     ///< ... split over this many shards
  /// Base solver configuration for every request (preconditioner, ordering,
  /// threads per solve, CG budget). The per-request deltas never change the
  /// plan fingerprint. plan_cache/registry fields are overwritten by the
  /// service; use_plan_cache=false benchmarks the cold path.
  core::SolveConfig solve;
  /// Drop each response's solution vector after the solve (latency benches
  /// at scale; keep true for bit-identity checks).
  bool keep_solutions = true;
  /// Request coalescing (DESIGN.md §5k). A dispatching worker whose leader
  /// request is batch-eligible scans both queues for requests with the same
  /// coalescing key — (model, lambda, active_groups), i.e. the same matrix
  /// values and plan fingerprint — and solves up to max_batch of them as ONE
  /// batched multi-RHS solve (core::solve_system_batched: one system copy,
  /// one set-up, one SpMM + one preconditioner walk per CG iteration for all
  /// columns). Coalesced requests may differ in load_scale and tolerance.
  /// Eligibility further requires the request to resolve to fp64 + classic
  /// CG with resilience disabled (the batched core path is a direct solve);
  /// ineligible requests always take the single-RHS path. Coalescing pulls
  /// matching followers out of FIFO order (they ride the leader's dispatch).
  /// 1 disables coalescing. A dispatch of size 1 — including every dispatch
  /// when max_batch == 1 — runs the single-RHS path unchanged, so a lone
  /// request's response is bit-identical with coalescing on or off.
  int max_batch = 1;
  /// With coalescing on and fewer than max_batch matching requests queued: a
  /// worker whose leader is Priority::kBatch may wait up to this many
  /// seconds for more matching arrivals before dispatching. Interactive
  /// leaders never wait (latency first). 0 = dispatch what is there now.
  double batch_window = 0.0;
};

/// Long-lived in-process solver service. Thread-safe: submit() may be called
/// from any thread, including concurrently with drain(). The destructor
/// drains accepted work, then joins the workers.
///
/// Telemetry lands in the service-owned registry() (workers enter solves
/// through the re-entrant core::SolveConfig::registry session entry):
///   histograms svc.latency.{interactive,batch}   admission -> completion (s)
///              svc.queue_wait.{interactive,batch} admission -> dequeue (s)
///              svc.solve_seconds                  worker solve time (s)
///              svc.batch_size                     columns per dispatch (when
///                                                 max_batch > 1; 1 = solo)
///   counters   svc.submitted/accepted/rejected/completed/failed.<class>
///              svc.coalesce.hit            requests that rode another's dispatch
///              svc.coalesce.window_timeout batch windows that expired unfilled
///   gauges     svc.queue_depth.<class> (current), svc.queue_depth_max.<class>
/// plan-cache hit/miss/eviction/occupancy gauges are refreshed by
/// publish_stats().
class SolverService {
 public:
  explicit SolverService(ServiceOptions opt = ServiceOptions{});
  ~SolverService();
  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Register a mesh family: assembles the elastic stiffness once (the
  /// request path only copies it and applies the deltas). Not concurrent
  /// with submit() of requests naming the returned id (normal use: register
  /// everything up front).
  ModelId register_model(const mesh::HexMesh& m, std::vector<fem::Material> materials,
                         fem::BoundaryConditions bc);

  /// Admission control: bounded, non-blocking. The returned future resolves
  /// when a worker completes the solve — or immediately, with
  /// SolveStatus::kRejected, when the request's class queue is full.
  std::future<SolveResponse> submit(SolveRequest req);

  /// Block until every accepted request has completed.
  void drain();

  [[nodiscard]] int workers() const { return static_cast<int>(threads_.size()); }
  [[nodiscard]] plan::PlanCache& plan_cache() { return cache_; }
  [[nodiscard]] obs::Registry& registry() { return registry_; }
  [[nodiscard]] const ServiceOptions& options() const { return opt_; }

  /// Monotonic admission totals (never reset; survive drain()).
  struct Counts {
    std::uint64_t submitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;  ///< completed with !ok(status); subset of completed
  };
  [[nodiscard]] Counts counts() const;

  /// Refresh the plan-cache gauges (plan.cache.*) in registry().
  void publish_stats();

 private:
  struct Model {
    fem::System base;  ///< elasticity only — no penalty, no BCs
    fem::BoundaryConditions bc;
    std::vector<std::vector<int>> groups;
    contact::Supernodes sn;
  };
  struct Ticket {
    SolveRequest req;
    std::uint64_t id = 0;
    std::chrono::steady_clock::time_point admitted;
    std::promise<SolveResponse> promise;
  };

  /// Per-worker request-path scratch; reused so the per-request system copy
  /// is a memcpy into an existing allocation, not fresh multi-MB malloc/free.
  struct Scratch {
    fem::System sys;
    fem::BoundaryConditions bc;
  };

  void worker_main(int wid);
  /// Scheduling policy + coalescing window; false = stopping. `out` receives
  /// the leader (chosen by the existing priority policy) plus up to
  /// max_batch - 1 same-key followers.
  bool next_batch(std::vector<Ticket>& out);
  void process(Ticket t, plan::PlanCache* cache, Scratch& scratch);
  /// Size-1 batches forward to process(); larger ones run the batched
  /// multi-RHS solve and fan per-column results out to the tickets' promises.
  void process_batch(std::vector<Ticket> batch, plan::PlanCache* cache, Scratch& scratch);
  [[nodiscard]] bool batch_eligible(const SolveRequest& req) const;

  ServiceOptions opt_;
  obs::Registry registry_;
  plan::PlanCache cache_;
  /// The PDJDS plans mutate plan-owned DJDS values in numeric(), so
  /// vectorized orderings cannot share plans across in-flight solves: each
  /// worker then uses its own cache (still warm within the worker).
  std::vector<std::unique_ptr<plan::PlanCache>> worker_caches_;

  std::deque<Model> models_;  ///< deque: stable addresses while growing
  mutable std::mutex models_mtx_;

  mutable std::mutex mtx_;
  std::condition_variable cv_work_;
  std::condition_variable cv_drain_;
  std::deque<Ticket> queues_[kNumPriorities];
  int interactive_streak_ = 0;  ///< consecutive interactive dispatches
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  Counts counts_;
  std::size_t depth_max_[kNumPriorities] = {0, 0};

  std::atomic<std::uint64_t> next_id_{1};
  std::vector<std::thread> threads_;
};

}  // namespace geofem::svc
