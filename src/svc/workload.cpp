#include "svc/workload.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/rng.hpp"

namespace geofem::svc {

std::string to_string(ArrivalProcess a) {
  return a == ArrivalProcess::kPoisson ? "poisson" : "burst";
}

namespace {

SolveRequest draw_request(const TrafficClass& tc, util::Rng& rng) {
  SolveRequest req;
  req.model = tc.model;
  req.priority = tc.priority;
  req.lambda = tc.lambdas.empty()
                   ? 1e6
                   : tc.lambdas[static_cast<std::size_t>(
                         rng.next_below(static_cast<std::uint64_t>(tc.lambdas.size())))];
  req.load_scale = tc.load_scales.empty()
                       ? 1.0
                       : tc.load_scales[static_cast<std::size_t>(rng.next_below(
                             static_cast<std::uint64_t>(tc.load_scales.size())))];
  req.tolerance = tc.tolerance;
  if (tc.drop_groups > 0 && tc.group_count > 0) {
    req.active_groups.assign(static_cast<std::size_t>(tc.group_count), 1);
    for (int d = 0; d < tc.drop_groups; ++d)
      req.active_groups[static_cast<std::size_t>(
          rng.next_below(static_cast<std::uint64_t>(tc.group_count)))] = 0;
  }
  return req;
}

/// Geometric burst size with mean `mean` (support >= 1).
int draw_burst_size(int mean, util::Rng& rng) {
  if (mean <= 1) return 1;
  const double p = 1.0 / static_cast<double>(mean);
  int size = 1;
  while (rng.next_double() > p && size < 64 * mean) ++size;
  return size;
}

}  // namespace

std::vector<Event> generate(const WorkloadOptions& opt) {
  std::vector<Event> events;
  const util::Rng root(opt.seed);
  for (std::size_t c = 0; c < opt.classes.size(); ++c) {
    const TrafficClass& tc = opt.classes[c];
    if (tc.rate <= 0.0) continue;
    // Stream c of the root generator: 2^128 draws per class, so classes stay
    // independent no matter how many requests each one generates.
    util::Rng rng = root.stream(c + 1);
    double t = 0.0;
    if (tc.arrival == ArrivalProcess::kPoisson) {
      for (t += rng.next_exponential(tc.rate); t < opt.horizon;
           t += rng.next_exponential(tc.rate)) {
        events.push_back({t, draw_request(tc, rng)});
      }
    } else {
      // kBurst: the burst *starts* arrive as a Poisson process thinned so the
      // mean request rate stays `rate`; requests inside a burst land at the
      // same virtual instant (what a shared upstream timeout does to a
      // service) — queue depth and p99 feel it, mean throughput does not.
      const double burst_rate = tc.rate / static_cast<double>(std::max(1, tc.mean_burst));
      for (t += rng.next_exponential(burst_rate); t < opt.horizon;
           t += rng.next_exponential(burst_rate)) {
        const int size = draw_burst_size(tc.mean_burst, rng);
        for (int i = 0; i < size; ++i) events.push_back({t, draw_request(tc, rng)});
      }
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) { return a.time < b.time; });
  return events;
}

ReplayStats replay(SolverService& svc, const std::vector<Event>& events, double time_scale) {
  ReplayStats stats;
  std::vector<std::future<SolveResponse>> futures;
  futures.reserve(events.size());
  const auto start = std::chrono::steady_clock::now();
  for (const Event& ev : events) {
    if (time_scale > 0.0) {
      const auto due = start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                                   std::chrono::duration<double>(ev.time * time_scale));
      std::this_thread::sleep_until(due);
    }
    futures.push_back(svc.submit(ev.request));
    ++stats.submitted;
  }
  for (auto& f : futures) {
    SolveResponse resp;
    try {
      resp = f.get();
    } catch (...) {
      // a throwing solve is a completed-but-failed request, not a lost one
      ++stats.accepted;
      ++stats.completed;
      ++stats.failed;
      continue;
    }
    if (resp.status == SolveStatus::kRejected) {
      ++stats.rejected;
      continue;
    }
    ++stats.accepted;
    ++stats.completed;
    if (!ok(resp.status)) ++stats.failed;
  }
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return stats;
}

}  // namespace geofem::svc
