#include "svc/service.hpp"

#include <chrono>
#include <utility>

#include "contact/penalty.hpp"
#include "util/timer.hpp"

namespace geofem::svc {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0,
                     std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

const char* class_name(Priority p) {
  return p == Priority::kInteractive ? "interactive" : "batch";
}

}  // namespace

std::string to_string(Priority p) { return class_name(p); }

SolverService::SolverService(ServiceOptions opt)
    : opt_(std::move(opt)),
      cache_(opt_.cache_capacity, opt_.cache_shards) {
  if (opt_.workers < 1) opt_.workers = 1;
  if (opt_.queue_capacity == 0) opt_.queue_capacity = 1;
  if (opt_.interactive_burst < 1) opt_.interactive_burst = 1;
  // The PDJDS plans revalue plan-owned DJDS storage in numeric(), so
  // vectorized plans must not be shared across in-flight solves: fall back
  // to one private cache per worker (still warm within each worker).
  if (opt_.solve.ordering != core::OrderingKind::kNatural) {
    worker_caches_.reserve(static_cast<std::size_t>(opt_.workers));
    for (int w = 0; w < opt_.workers; ++w)
      worker_caches_.push_back(
          std::make_unique<plan::PlanCache>(opt_.cache_capacity, std::size_t{1}));
  }
  registry_.gauge("svc.workers")->set(static_cast<double>(opt_.workers));
  registry_.gauge("svc.queue_capacity")->set(static_cast<double>(opt_.queue_capacity));
  threads_.reserve(static_cast<std::size_t>(opt_.workers));
  for (int w = 0; w < opt_.workers; ++w) threads_.emplace_back([this, w] { worker_main(w); });
}

SolverService::~SolverService() {
  {
    std::lock_guard lock(mtx_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_) t.join();
}

ModelId SolverService::register_model(const mesh::HexMesh& m,
                                      std::vector<fem::Material> materials,
                                      fem::BoundaryConditions bc) {
  Model model;
  model.base = fem::assemble_elasticity(m, materials);
  model.bc = std::move(bc);
  model.groups = m.contact_groups;
  model.sn = contact::build_supernodes(model.base.a.n, model.groups);
  std::lock_guard lock(models_mtx_);
  models_.push_back(std::move(model));
  registry_.gauge("svc.models")->set(static_cast<double>(models_.size()));
  return static_cast<ModelId>(models_.size() - 1);
}

std::future<SolveResponse> SolverService::submit(SolveRequest req) {
  {
    std::lock_guard lock(models_mtx_);
    if (req.model < 0 || static_cast<std::size_t>(req.model) >= models_.size())
      throw Error(StatusCode::kInvalidArgument, "svc::submit: unknown model id");
    if (!req.active_groups.empty() &&
        req.active_groups.size() != models_[static_cast<std::size_t>(req.model)].groups.size())
      throw Error(StatusCode::kInvalidArgument,
                  "svc::submit: active_groups size != model contact group count");
  }
  const Priority pri = req.priority;
  const auto cls = static_cast<std::size_t>(pri);
  Ticket t;
  t.req = std::move(req);
  t.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  t.admitted = std::chrono::steady_clock::now();
  std::future<SolveResponse> fut = t.promise.get_future();

  registry_.counter(std::string("svc.submitted.") + class_name(pri))->add(1);
  std::unique_lock lock(mtx_);
  ++counts_.submitted;
  if (stopping_ || queues_[cls].size() >= opt_.queue_capacity) {
    // Backpressure: resolve immediately, never queue unboundedly. The caller
    // sees kRejected and decides whether to retry, shed, or slow down.
    ++counts_.rejected;
    lock.unlock();
    registry_.counter(std::string("svc.rejected.") + class_name(pri))->add(1);
    SolveResponse resp;
    resp.id = t.id;
    resp.priority = pri;
    resp.status = SolveStatus::kRejected;
    resp.total_seconds = seconds_since(t.admitted, std::chrono::steady_clock::now());
    t.promise.set_value(std::move(resp));
    return fut;
  }
  queues_[cls].push_back(std::move(t));
  const std::size_t depth = queues_[cls].size();
  if (depth > depth_max_[cls]) depth_max_[cls] = depth;
  const std::size_t depth_max = depth_max_[cls];
  lock.unlock();
  registry_.counter(std::string("svc.accepted.") + class_name(pri))->add(1);
  registry_.gauge(std::string("svc.queue_depth.") + class_name(pri))
      ->set(static_cast<double>(depth));
  registry_.gauge(std::string("svc.queue_depth_max.") + class_name(pri))
      ->set(static_cast<double>(depth_max));
  cv_work_.notify_one();
  return fut;
}

bool SolverService::batch_eligible(const SolveRequest& req) const {
  if (opt_.max_batch <= 1) return false;
  // The batched core path is a direct fp64 classic-CG solve; anything that
  // needs the resilience / precision / variant machinery solves solo.
  const precond::Precision prec = req.precision ? *req.precision : opt_.solve.precision;
  const solver::CGVariant var = req.variant ? *req.variant : opt_.solve.cg.variant;
  return prec == precond::Precision::kDouble && var == solver::CGVariant::kClassic &&
         !opt_.solve.resilience.enabled;
}

namespace {

/// Coalescing key: requests solving the SAME matrix (model, penalty, contact
/// state) may share one batched solve; load_scale and tolerance are
/// per-column deltas.
bool same_batch_key(const SolveRequest& a, const SolveRequest& b) {
  return a.model == b.model && a.lambda == b.lambda && a.active_groups == b.active_groups;
}

}  // namespace

bool SolverService::next_batch(std::vector<Ticket>& out) {
  out.clear();
  std::unique_lock lock(mtx_);
  cv_work_.wait(lock, [this] {
    return stopping_ || !queues_[0].empty() || !queues_[1].empty();
  });
  const bool has_i = !queues_[0].empty();
  const bool has_b = !queues_[1].empty();
  if (!has_i && !has_b) return false;  // stopping and drained
  // Starvation-free priority: interactive first, but after
  // `interactive_burst` consecutive interactive dispatches with batch work
  // waiting, one batch request is forced through (bounded bypass count, so
  // batch latency is bounded by burst * interactive service time).
  std::size_t cls;
  if (has_i && (!has_b || interactive_streak_ < opt_.interactive_burst)) {
    cls = 0;
    interactive_streak_ = has_b ? interactive_streak_ + 1 : 0;
  } else {
    cls = 1;
    interactive_streak_ = 0;
  }
  out.push_back(std::move(queues_[cls].front()));
  queues_[cls].pop_front();
  ++in_flight_;  // leader counted immediately: drain() must not fire mid-batch

  bool window_timeout = false;
  if (batch_eligible(out.front().req)) {
    const auto max_batch = static_cast<std::size_t>(opt_.max_batch);
    // Pull every queued same-key eligible request (both classes, admission
    // order within each) up to max_batch.
    auto harvest = [&] {
      for (auto& q : queues_) {
        for (auto it = q.begin(); it != q.end() && out.size() < max_batch;) {
          if (batch_eligible(it->req) && same_batch_key(out.front().req, it->req)) {
            out.push_back(std::move(*it));
            it = q.erase(it);
            ++in_flight_;
          } else {
            ++it;
          }
        }
      }
    };
    harvest();
    // Batch-class leaders may hold the dispatch open briefly to let more
    // matching requests arrive; interactive leaders never wait.
    if (out.size() < max_batch && out.front().req.priority == Priority::kBatch &&
        opt_.batch_window > 0.0) {
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                                std::chrono::duration<double>(opt_.batch_window));
      while (out.size() < max_batch && !stopping_) {
        if (cv_work_.wait_until(lock, deadline) == std::cv_status::timeout) {
          harvest();
          window_timeout = out.size() < max_batch;
          break;
        }
        harvest();
      }
    }
  }

  const std::size_t depth_i = queues_[0].size();
  const std::size_t depth_b = queues_[1].size();
  lock.unlock();
  registry_.gauge("svc.queue_depth.interactive")->set(static_cast<double>(depth_i));
  registry_.gauge("svc.queue_depth.batch")->set(static_cast<double>(depth_b));
  if (opt_.max_batch > 1) {
    registry_.histogram("svc.batch_size")->record(static_cast<double>(out.size()));
    if (out.size() > 1)
      registry_.counter("svc.coalesce.hit")->add(static_cast<std::uint64_t>(out.size() - 1));
    if (window_timeout) registry_.counter("svc.coalesce.window_timeout")->add(1);
  }
  return true;
}

void SolverService::worker_main(int wid) {
  // Attach the service registry for the thread's lifetime so svc-level spans
  // and the plan cache's hit/miss counters land in it. solve_system nests its
  // own Attach of the same registry via SolveConfig::registry.
  obs::Attach attach(&registry_);
  plan::PlanCache* cache =
      worker_caches_.empty() ? &cache_ : worker_caches_[static_cast<std::size_t>(wid)].get();
  // Per-worker scratch for the request-path copies (matrix values, RHS,
  // boundary conditions): vector copy-assignment reuses the allocation, so
  // the steady state pays a memcpy per request instead of a multi-MB
  // malloc/free churn.
  Scratch scratch;
  std::vector<Ticket> batch;
  while (next_batch(batch)) process_batch(std::move(batch), cache, scratch);
}

void SolverService::process(Ticket t, plan::PlanCache* cache, Scratch& scratch) {
  const auto dequeued = std::chrono::steady_clock::now();
  const double queue_wait = seconds_since(t.admitted, dequeued);
  const char* cls = class_name(t.req.priority);
  registry_.histogram(std::string("svc.queue_wait.") + cls)->record(queue_wait);

  SolveResponse resp;
  resp.id = t.id;
  resp.priority = t.req.priority;
  resp.queue_seconds = queue_wait;

  bool delivered = false;
  try {
    const std::size_t span = registry_.span_begin("svc.request");
    // models_ is a deque (stable addresses) and only grows, so holding the
    // lock just for the lookup is enough.
    const Model* model_ptr;
    {
      std::lock_guard lock(models_mtx_);
      model_ptr = &models_[static_cast<std::size_t>(t.req.model)];
    }
    const Model& model = *model_ptr;

    // Per-request deltas on a copy of the registered base system. The copy
    // (matrix values + RHS) is the numeric cost every request pays; the
    // symbolic set-up is what the shared plan cache amortizes away.
    fem::System& sys = scratch.sys;
    sys.a = model.base.a;
    sys.b = model.base.b;
    if (t.req.active_groups.empty()) {
      contact::add_penalty(sys.a, model.groups, t.req.lambda);
    } else {
      std::vector<std::vector<int>> active;
      active.reserve(model.groups.size());
      for (std::size_t g = 0; g < model.groups.size(); ++g)
        if (t.req.active_groups[g]) active.push_back(model.groups[g]);
      contact::add_penalty(sys.a, active, t.req.lambda);
    }
    fem::BoundaryConditions& bc = scratch.bc;
    bc = model.bc;
    if (t.req.load_scale != 1.0)
      for (auto& l : bc.loads) l.value *= t.req.load_scale;
    fem::apply_boundary_conditions(sys, bc);

    core::SolveConfig cfg = opt_.solve;
    cfg.penalty = t.req.lambda;
    cfg.plan_cache = cache;
    cfg.registry = &registry_;  // re-entrant session entry
    if (t.req.tolerance > 0.0) cfg.cg.tolerance = t.req.tolerance;
    if (t.req.precision) cfg.precision = *t.req.precision;
    if (t.req.variant) cfg.cg.variant = *t.req.variant;

    util::Timer solve_timer;
    resp.report = core::solve_system(sys, model.sn, cfg);
    const double solve_seconds = solve_timer.seconds();
    resp.status = resp.report.status;
    if (!opt_.keep_solutions) {
      resp.report.solution.clear();
      resp.report.solution.shrink_to_fit();
    }
    registry_.span_end(span);
    registry_.histogram("svc.solve_seconds")->record(solve_seconds);
    if (resp.report.plan_reused)
      registry_.counter(std::string("svc.plan_reused.") + cls)->add(1);

    resp.total_seconds = seconds_since(t.admitted, std::chrono::steady_clock::now());
    registry_.histogram(std::string("svc.latency.") + cls)->record(resp.total_seconds);
    const bool failed = !ok(resp.status);
    registry_.counter(std::string("svc.completed.") + cls)->add(1);
    if (failed) registry_.counter(std::string("svc.failed.") + cls)->add(1);
    {
      // count BEFORE resolving the future: a caller who has seen every
      // future resolve must never read stale counts()
      std::lock_guard lock(mtx_);
      ++counts_.completed;
      if (failed) ++counts_.failed;
    }
    delivered = true;
    t.promise.set_value(std::move(resp));
  } catch (...) {
    // A throwing solve (factorization failure without resilience, stale
    // plan, bad request state) must not kill the worker: the exception is
    // delivered through the future and the request is accounted as failed.
    registry_.counter(std::string("svc.failed.") + cls)->add(1);
    if (!delivered) {
      {
        std::lock_guard lock(mtx_);
        ++counts_.completed;
        ++counts_.failed;
      }
      t.promise.set_exception(std::current_exception());
    }
  }
  {
    std::lock_guard lock(mtx_);
    --in_flight_;
    if (in_flight_ == 0 && queues_[0].empty() && queues_[1].empty()) cv_drain_.notify_all();
  }
}

void SolverService::process_batch(std::vector<Ticket> batch, plan::PlanCache* cache,
                                  Scratch& scratch) {
  if (batch.size() == 1) {
    // Dispatch of one: the single-RHS path, verbatim — a lone request's
    // response is bit-identical with coalescing on or off.
    process(std::move(batch.front()), cache, scratch);
    return;
  }
  const std::size_t k = batch.size();
  const auto dequeued = std::chrono::steady_clock::now();
  for (const auto& t : batch)
    registry_.histogram(std::string("svc.queue_wait.") + class_name(t.req.priority))
        ->record(seconds_since(t.admitted, dequeued));

  std::vector<bool> delivered(k, false);
  try {
    const std::size_t span = registry_.span_begin("svc.request.batched");
    const Model* model_ptr;
    {
      std::lock_guard lock(models_mtx_);
      model_ptr = &models_[static_cast<std::size_t>(batch.front().req.model)];
    }
    const Model& model = *model_ptr;
    const SolveRequest& lead = batch.front().req;

    // One system copy + penalty for the whole batch (the coalescing key
    // guarantees every ticket wants these exact matrix values), then one
    // elimination sweep producing all k right-hand sides.
    fem::System& sys = scratch.sys;
    sys.a = model.base.a;
    sys.b = model.base.b;
    if (lead.active_groups.empty()) {
      contact::add_penalty(sys.a, model.groups, lead.lambda);
    } else {
      std::vector<std::vector<int>> active;
      active.reserve(model.groups.size());
      for (std::size_t g = 0; g < model.groups.size(); ++g)
        if (lead.active_groups[g]) active.push_back(model.groups[g]);
      contact::add_penalty(sys.a, active, lead.lambda);
    }
    std::vector<double> scales(k), tols(k);
    core::SolveConfig cfg = opt_.solve;
    cfg.penalty = lead.lambda;
    cfg.plan_cache = cache;
    cfg.registry = &registry_;  // re-entrant session entry
    for (std::size_t i = 0; i < k; ++i) {
      scales[i] = batch[i].req.load_scale;
      tols[i] = batch[i].req.tolerance > 0.0 ? batch[i].req.tolerance : cfg.cg.tolerance;
    }
    const auto cols = fem::apply_boundary_conditions_multi(sys, model.bc, scales);

    util::Timer solve_timer;
    std::vector<core::SolveReport> reports =
        core::solve_system_batched(sys, model.sn, cfg, cols, tols);
    const double solve_seconds = solve_timer.seconds();
    registry_.span_end(span);
    registry_.histogram("svc.solve_seconds")->record(solve_seconds);
    // One plan consult served the whole batch: count the reuse once (the
    // single-RHS path counts one per request because it pays one per request).
    if (reports.front().plan_reused)
      registry_.counter(std::string("svc.plan_reused.") + class_name(lead.priority))->add(1);

    for (std::size_t i = 0; i < k; ++i) {
      Ticket& t = batch[i];
      const char* cls = class_name(t.req.priority);
      SolveResponse resp;
      resp.id = t.id;
      resp.priority = t.req.priority;
      resp.queue_seconds = seconds_since(t.admitted, dequeued);
      resp.report = std::move(reports[i]);
      resp.status = resp.report.status;
      if (!opt_.keep_solutions) {
        resp.report.solution.clear();
        resp.report.solution.shrink_to_fit();
      }
      resp.total_seconds = seconds_since(t.admitted, std::chrono::steady_clock::now());
      registry_.histogram(std::string("svc.latency.") + cls)->record(resp.total_seconds);
      const bool failed = !ok(resp.status);
      registry_.counter(std::string("svc.completed.") + cls)->add(1);
      if (failed) registry_.counter(std::string("svc.failed.") + cls)->add(1);
      {
        // count BEFORE resolving the future (same contract as process())
        std::lock_guard lock(mtx_);
        ++counts_.completed;
        if (failed) ++counts_.failed;
      }
      delivered[i] = true;
      t.promise.set_value(std::move(resp));
    }
  } catch (...) {
    // A throwing batched solve fails every still-unresolved ticket; the
    // exception fans out through each future.
    for (std::size_t i = 0; i < k; ++i) {
      if (delivered[i]) continue;
      registry_.counter(std::string("svc.failed.") + class_name(batch[i].req.priority))->add(1);
      {
        std::lock_guard lock(mtx_);
        ++counts_.completed;
        ++counts_.failed;
      }
      batch[i].promise.set_exception(std::current_exception());
    }
  }
  {
    std::lock_guard lock(mtx_);
    in_flight_ -= k;
    if (in_flight_ == 0 && queues_[0].empty() && queues_[1].empty()) cv_drain_.notify_all();
  }
}

void SolverService::drain() {
  std::unique_lock lock(mtx_);
  cv_drain_.wait(lock,
                 [this] { return in_flight_ == 0 && queues_[0].empty() && queues_[1].empty(); });
}

SolverService::Counts SolverService::counts() const {
  std::lock_guard lock(mtx_);
  return counts_;
}

void SolverService::publish_stats() {
  if (worker_caches_.empty()) {
    cache_.publish(registry_);
    return;
  }
  // Vectorized orderings: per-worker caches. Publish each worker's view and
  // fold the totals into the shared plan.cache.* gauges.
  plan::CacheStats total;
  for (std::size_t w = 0; w < worker_caches_.size(); ++w) {
    worker_caches_[w]->publish(registry_, "plan.cache.worker." + std::to_string(w));
    total += worker_caches_[w]->stats();
  }
  registry_.gauge("plan.cache.hits")->set(static_cast<double>(total.hits));
  registry_.gauge("plan.cache.misses")->set(static_cast<double>(total.misses));
  registry_.gauge("plan.cache.evictions")->set(static_cast<double>(total.evictions));
  registry_.gauge("plan.cache.entries")->set(static_cast<double>(total.entries));
}

}  // namespace geofem::svc
