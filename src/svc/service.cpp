#include "svc/service.hpp"

#include <chrono>
#include <utility>

#include "contact/penalty.hpp"
#include "util/timer.hpp"

namespace geofem::svc {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0,
                     std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

const char* class_name(Priority p) {
  return p == Priority::kInteractive ? "interactive" : "batch";
}

}  // namespace

std::string to_string(Priority p) { return class_name(p); }

SolverService::SolverService(ServiceOptions opt)
    : opt_(std::move(opt)),
      cache_(opt_.cache_capacity, opt_.cache_shards) {
  if (opt_.workers < 1) opt_.workers = 1;
  if (opt_.queue_capacity == 0) opt_.queue_capacity = 1;
  if (opt_.interactive_burst < 1) opt_.interactive_burst = 1;
  // The PDJDS plans revalue plan-owned DJDS storage in numeric(), so
  // vectorized plans must not be shared across in-flight solves: fall back
  // to one private cache per worker (still warm within each worker).
  if (opt_.solve.ordering != core::OrderingKind::kNatural) {
    worker_caches_.reserve(static_cast<std::size_t>(opt_.workers));
    for (int w = 0; w < opt_.workers; ++w)
      worker_caches_.push_back(
          std::make_unique<plan::PlanCache>(opt_.cache_capacity, std::size_t{1}));
  }
  registry_.gauge("svc.workers")->set(static_cast<double>(opt_.workers));
  registry_.gauge("svc.queue_capacity")->set(static_cast<double>(opt_.queue_capacity));
  threads_.reserve(static_cast<std::size_t>(opt_.workers));
  for (int w = 0; w < opt_.workers; ++w) threads_.emplace_back([this, w] { worker_main(w); });
}

SolverService::~SolverService() {
  {
    std::lock_guard lock(mtx_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_) t.join();
}

ModelId SolverService::register_model(const mesh::HexMesh& m,
                                      std::vector<fem::Material> materials,
                                      fem::BoundaryConditions bc) {
  Model model;
  model.base = fem::assemble_elasticity(m, materials);
  model.bc = std::move(bc);
  model.groups = m.contact_groups;
  model.sn = contact::build_supernodes(model.base.a.n, model.groups);
  std::lock_guard lock(models_mtx_);
  models_.push_back(std::move(model));
  registry_.gauge("svc.models")->set(static_cast<double>(models_.size()));
  return static_cast<ModelId>(models_.size() - 1);
}

std::future<SolveResponse> SolverService::submit(SolveRequest req) {
  {
    std::lock_guard lock(models_mtx_);
    if (req.model < 0 || static_cast<std::size_t>(req.model) >= models_.size())
      throw Error(StatusCode::kInvalidArgument, "svc::submit: unknown model id");
    if (!req.active_groups.empty() &&
        req.active_groups.size() != models_[static_cast<std::size_t>(req.model)].groups.size())
      throw Error(StatusCode::kInvalidArgument,
                  "svc::submit: active_groups size != model contact group count");
  }
  const Priority pri = req.priority;
  const auto cls = static_cast<std::size_t>(pri);
  Ticket t;
  t.req = std::move(req);
  t.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  t.admitted = std::chrono::steady_clock::now();
  std::future<SolveResponse> fut = t.promise.get_future();

  registry_.counter(std::string("svc.submitted.") + class_name(pri))->add(1);
  std::unique_lock lock(mtx_);
  ++counts_.submitted;
  if (stopping_ || queues_[cls].size() >= opt_.queue_capacity) {
    // Backpressure: resolve immediately, never queue unboundedly. The caller
    // sees kRejected and decides whether to retry, shed, or slow down.
    ++counts_.rejected;
    lock.unlock();
    registry_.counter(std::string("svc.rejected.") + class_name(pri))->add(1);
    SolveResponse resp;
    resp.id = t.id;
    resp.priority = pri;
    resp.status = SolveStatus::kRejected;
    resp.total_seconds = seconds_since(t.admitted, std::chrono::steady_clock::now());
    t.promise.set_value(std::move(resp));
    return fut;
  }
  queues_[cls].push_back(std::move(t));
  const std::size_t depth = queues_[cls].size();
  if (depth > depth_max_[cls]) depth_max_[cls] = depth;
  const std::size_t depth_max = depth_max_[cls];
  lock.unlock();
  registry_.counter(std::string("svc.accepted.") + class_name(pri))->add(1);
  registry_.gauge(std::string("svc.queue_depth.") + class_name(pri))
      ->set(static_cast<double>(depth));
  registry_.gauge(std::string("svc.queue_depth_max.") + class_name(pri))
      ->set(static_cast<double>(depth_max));
  cv_work_.notify_one();
  return fut;
}

bool SolverService::next_ticket(Ticket& out) {
  std::unique_lock lock(mtx_);
  cv_work_.wait(lock, [this] {
    return stopping_ || !queues_[0].empty() || !queues_[1].empty();
  });
  const bool has_i = !queues_[0].empty();
  const bool has_b = !queues_[1].empty();
  if (!has_i && !has_b) return false;  // stopping and drained
  // Starvation-free priority: interactive first, but after
  // `interactive_burst` consecutive interactive dispatches with batch work
  // waiting, one batch request is forced through (bounded bypass count, so
  // batch latency is bounded by burst * interactive service time).
  std::size_t cls;
  if (has_i && (!has_b || interactive_streak_ < opt_.interactive_burst)) {
    cls = 0;
    interactive_streak_ = has_b ? interactive_streak_ + 1 : 0;
  } else {
    cls = 1;
    interactive_streak_ = 0;
  }
  out = std::move(queues_[cls].front());
  queues_[cls].pop_front();
  ++in_flight_;
  const std::size_t depth = queues_[cls].size();
  lock.unlock();
  registry_.gauge(std::string("svc.queue_depth.") + class_name(static_cast<Priority>(cls)))
      ->set(static_cast<double>(depth));
  return true;
}

void SolverService::worker_main(int wid) {
  // Attach the service registry for the thread's lifetime so svc-level spans
  // and the plan cache's hit/miss counters land in it. solve_system nests its
  // own Attach of the same registry via SolveConfig::registry.
  obs::Attach attach(&registry_);
  plan::PlanCache* cache =
      worker_caches_.empty() ? &cache_ : worker_caches_[static_cast<std::size_t>(wid)].get();
  // Per-worker scratch for the request-path copies (matrix values, RHS,
  // boundary conditions): vector copy-assignment reuses the allocation, so
  // the steady state pays a memcpy per request instead of a multi-MB
  // malloc/free churn.
  Scratch scratch;
  Ticket t;
  while (next_ticket(t)) process(std::move(t), cache, scratch);
}

void SolverService::process(Ticket t, plan::PlanCache* cache, Scratch& scratch) {
  const auto dequeued = std::chrono::steady_clock::now();
  const double queue_wait = seconds_since(t.admitted, dequeued);
  const char* cls = class_name(t.req.priority);
  registry_.histogram(std::string("svc.queue_wait.") + cls)->record(queue_wait);

  SolveResponse resp;
  resp.id = t.id;
  resp.priority = t.req.priority;
  resp.queue_seconds = queue_wait;

  bool delivered = false;
  try {
    const std::size_t span = registry_.span_begin("svc.request");
    // models_ is a deque (stable addresses) and only grows, so holding the
    // lock just for the lookup is enough.
    const Model* model_ptr;
    {
      std::lock_guard lock(models_mtx_);
      model_ptr = &models_[static_cast<std::size_t>(t.req.model)];
    }
    const Model& model = *model_ptr;

    // Per-request deltas on a copy of the registered base system. The copy
    // (matrix values + RHS) is the numeric cost every request pays; the
    // symbolic set-up is what the shared plan cache amortizes away.
    fem::System& sys = scratch.sys;
    sys.a = model.base.a;
    sys.b = model.base.b;
    if (t.req.active_groups.empty()) {
      contact::add_penalty(sys.a, model.groups, t.req.lambda);
    } else {
      std::vector<std::vector<int>> active;
      active.reserve(model.groups.size());
      for (std::size_t g = 0; g < model.groups.size(); ++g)
        if (t.req.active_groups[g]) active.push_back(model.groups[g]);
      contact::add_penalty(sys.a, active, t.req.lambda);
    }
    fem::BoundaryConditions& bc = scratch.bc;
    bc = model.bc;
    if (t.req.load_scale != 1.0)
      for (auto& l : bc.loads) l.value *= t.req.load_scale;
    fem::apply_boundary_conditions(sys, bc);

    core::SolveConfig cfg = opt_.solve;
    cfg.penalty = t.req.lambda;
    cfg.plan_cache = cache;
    cfg.registry = &registry_;  // re-entrant session entry
    if (t.req.tolerance > 0.0) cfg.cg.tolerance = t.req.tolerance;
    if (t.req.precision) cfg.precision = *t.req.precision;
    if (t.req.variant) cfg.cg.variant = *t.req.variant;

    util::Timer solve_timer;
    resp.report = core::solve_system(sys, model.sn, cfg);
    const double solve_seconds = solve_timer.seconds();
    resp.status = resp.report.status;
    if (!opt_.keep_solutions) {
      resp.report.solution.clear();
      resp.report.solution.shrink_to_fit();
    }
    registry_.span_end(span);
    registry_.histogram("svc.solve_seconds")->record(solve_seconds);
    if (resp.report.plan_reused)
      registry_.counter(std::string("svc.plan_reused.") + cls)->add(1);

    resp.total_seconds = seconds_since(t.admitted, std::chrono::steady_clock::now());
    registry_.histogram(std::string("svc.latency.") + cls)->record(resp.total_seconds);
    const bool failed = !ok(resp.status);
    registry_.counter(std::string("svc.completed.") + cls)->add(1);
    if (failed) registry_.counter(std::string("svc.failed.") + cls)->add(1);
    {
      // count BEFORE resolving the future: a caller who has seen every
      // future resolve must never read stale counts()
      std::lock_guard lock(mtx_);
      ++counts_.completed;
      if (failed) ++counts_.failed;
    }
    delivered = true;
    t.promise.set_value(std::move(resp));
  } catch (...) {
    // A throwing solve (factorization failure without resilience, stale
    // plan, bad request state) must not kill the worker: the exception is
    // delivered through the future and the request is accounted as failed.
    registry_.counter(std::string("svc.failed.") + cls)->add(1);
    if (!delivered) {
      {
        std::lock_guard lock(mtx_);
        ++counts_.completed;
        ++counts_.failed;
      }
      t.promise.set_exception(std::current_exception());
    }
  }
  {
    std::lock_guard lock(mtx_);
    --in_flight_;
    if (in_flight_ == 0 && queues_[0].empty() && queues_[1].empty()) cv_drain_.notify_all();
  }
}

void SolverService::drain() {
  std::unique_lock lock(mtx_);
  cv_drain_.wait(lock,
                 [this] { return in_flight_ == 0 && queues_[0].empty() && queues_[1].empty(); });
}

SolverService::Counts SolverService::counts() const {
  std::lock_guard lock(mtx_);
  return counts_;
}

void SolverService::publish_stats() {
  if (worker_caches_.empty()) {
    cache_.publish(registry_);
    return;
  }
  // Vectorized orderings: per-worker caches. Publish each worker's view and
  // fold the totals into the shared plan.cache.* gauges.
  plan::CacheStats total;
  for (std::size_t w = 0; w < worker_caches_.size(); ++w) {
    worker_caches_[w]->publish(registry_, "plan.cache.worker." + std::to_string(w));
    total += worker_caches_[w]->stats();
  }
  registry_.gauge("plan.cache.hits")->set(static_cast<double>(total.hits));
  registry_.gauge("plan.cache.misses")->set(static_cast<double>(total.misses));
  registry_.gauge("plan.cache.evictions")->set(static_cast<double>(total.evictions));
  registry_.gauge("plan.cache.entries")->set(static_cast<double>(total.entries));
}

}  // namespace geofem::svc
