#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "svc/service.hpp"

/// svc::Workload — deterministic discrete-event workload generation and
/// replay for SolverService (DESIGN.md §5g). Generation is pure simulation:
/// the same WorkloadOptions always produce the same event list, because each
/// traffic class draws from its own util::Rng stream (xoshiro256** jump
/// streams — no shared-state RNG, no thread races). Replay then drives a live
/// service with those arrivals and reports closed-form accounting.
namespace geofem::svc {

enum class ArrivalProcess {
  kPoisson,  ///< exponential inter-arrival times at `rate`
  kBurst,    ///< bursts of geometric size, exponential inter-burst gaps
             ///< (same mean rate, much heavier queue-depth tail)
};

[[nodiscard]] std::string to_string(ArrivalProcess a);

/// One traffic class of the mix: an arrival process plus the population the
/// per-request deltas are drawn from (uniformly, from this class's stream).
struct TrafficClass {
  Priority priority = Priority::kBatch;
  ArrivalProcess arrival = ArrivalProcess::kPoisson;
  double rate = 10.0;     ///< mean arrivals per virtual second
  int mean_burst = 8;     ///< kBurst: mean requests per burst
  ModelId model = 0;
  std::vector<double> lambdas = {1e6};      ///< candidate contact penalties
  std::vector<double> load_scales = {1.0};  ///< candidate load multipliers
  double tolerance = 0.0;                   ///< per-request override (<=0: default)
  /// When nonzero, each request deactivates this many randomly chosen contact
  /// groups (contact-state churn; needs the group count at generate() time).
  int drop_groups = 0;
  int group_count = 0;  ///< model's contact group count (for drop_groups)
};

struct WorkloadOptions {
  double horizon = 1.0;  ///< virtual seconds of arrivals per class
  std::uint64_t seed = 42;
  std::vector<TrafficClass> classes;
};

/// One scheduled arrival.
struct Event {
  double time = 0.0;  ///< virtual arrival time, seconds from replay start
  SolveRequest request;
};

/// Deterministic DES generation: per-class independent streams, merged and
/// sorted by arrival time (ties broken by class order, then sequence).
[[nodiscard]] std::vector<Event> generate(const WorkloadOptions& opt);

/// Replay accounting. Latency distributions live in the service registry
/// (svc.latency.* / svc.queue_wait.* histograms); this carries the closed
/// per-replay totals.
struct ReplayStats {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;  ///< futures resolved with a solve outcome
  std::uint64_t failed = 0;     ///< completed with !ok(status)
  double wall_seconds = 0.0;
  /// Completed requests per wall second (the capacity-model number).
  [[nodiscard]] double throughput() const {
    return wall_seconds > 0.0 ? static_cast<double>(completed) / wall_seconds : 0.0;
  }
  /// No request may vanish: every submit either completed or was rejected.
  [[nodiscard]] bool lossless() const { return submitted == completed + rejected; }
};

/// Drive `svc` with `events`. `time_scale` maps virtual to wall seconds
/// (2.0 = twice as slow as generated; 0 = submit as fast as possible, the
/// saturation/backpressure regime). Blocks until every accepted request has
/// resolved. Responses are discarded after accounting; use submit() directly
/// when the solutions themselves are needed.
ReplayStats replay(SolverService& svc, const std::vector<Event>& events, double time_scale = 0.0);

}  // namespace geofem::svc
