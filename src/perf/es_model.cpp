#include "perf/es_model.hpp"

#include <cmath>

namespace geofem::perf {

double EsModel::vector_seconds(const util::LoopStats& loops, double flops_per_entry) const {
  double t = 0.0;
  for (const auto& e : loops.entries()) {
    t += static_cast<double>(e.times) * (static_cast<double>(e.length) + n_half) *
         flops_per_entry / rinf_per_pe;
  }
  return t;
}

double EsModel::comm_seconds(const dist::TrafficStats& traffic, int ranks) const {
  const double p2p = static_cast<double>(traffic.messages_sent) * mpi_latency +
                     static_cast<double>(traffic.bytes_sent) / mpi_bandwidth;
  const double tree_depth = ranks > 1 ? std::ceil(std::log2(static_cast<double>(ranks))) : 0.0;
  const double red = static_cast<double>(traffic.allreduces + traffic.barriers) * tree_depth *
                     allreduce_latency;
  return p2p + red;
}

}  // namespace geofem::perf
