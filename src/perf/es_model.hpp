#pragma once

#include "dist/comm.hpp"
#include "util/flops.hpp"
#include "util/loop_stats.hpp"

namespace geofem::perf {

/// Analytic Earth Simulator machine model. The host running this repository
/// has no vector processors and no interconnect, so the paper's GFLOPS /
/// speed-up / work-ratio panels are *replayed* through this model, driven by
/// exactly measured quantities of the real algorithm execution: FLOP counts,
/// innermost-loop-length histograms, and message counts/bytes. Only the
/// machine's response (pipeline fill, latency, bandwidth, OpenMP fork/join)
/// is synthetic. DESIGN.md documents this substitution.
///
/// Parameters follow the published ES characteristics: 8 GFLOPS peak per PE,
/// 8 PEs per SMP node; memory-bound sparse kernels sustain about a third of
/// peak once vector pipelines are full (the paper's best runs reach ~35% of
/// peak); MPI latency/bandwidth in the range reported by Kerbyson et al.
/// (paper ref [22]).
struct EsModel {
  double peak_per_pe = 8.0e9;      ///< FLOPS, peak
  double rinf_per_pe = 3.0e9;      ///< sustained asymptotic rate of vector loops
  double n_half = 170.0;           ///< loop length at half of rinf (pipeline fill)
  double scalar_rate = 0.25e9;     ///< rate of non-vectorized code
  int pes_per_node = 8;

  double mpi_latency = 8.6e-6;     ///< seconds per message
  double mpi_bandwidth = 11.8e9;   ///< bytes/second
  double allreduce_latency = 16.0e-6;  ///< per allreduce per doubling step
  double omp_sync = 3.0e-6;        ///< per OpenMP fork/join (hybrid only)

  /// Seconds one PE needs to execute vector loops with the given length
  /// histogram, at `flops_per_entry` FLOPs per loop element:
  /// each loop of length n costs (n + n_half) * fpe / rinf.
  [[nodiscard]] double vector_seconds(const util::LoopStats& loops,
                                      double flops_per_entry) const;

  /// Seconds for `flops` executed without vectorization.
  [[nodiscard]] double scalar_seconds(double flops) const {
    return flops / scalar_rate;
  }

  /// Seconds one rank spends in point-to-point communication plus reductions.
  /// `ranks` sizes the log2 allreduce tree.
  [[nodiscard]] double comm_seconds(const dist::TrafficStats& traffic, int ranks) const;

  /// Hybrid-model OpenMP overhead: `regions` fork/joins.
  [[nodiscard]] double omp_seconds(std::int64_t regions) const {
    return static_cast<double>(regions) * omp_sync;
  }

  /// Hitachi SR2201 flavour for the pre-ES experiments (Tables 1, 4, Figs 5,
  /// 9): scalar 300 MFLOPS PEs sustaining ~25% on sparse kernels, slower
  /// MPP-style network, one PE per "node".
  static EsModel sr2201() {
    EsModel m;
    m.peak_per_pe = 0.3e9;
    m.rinf_per_pe = 0.075e9;
    m.n_half = 0.0;  // scalar pipeline: no vector startup
    m.scalar_rate = 0.075e9;
    m.mpi_latency = 30.0e-6;
    m.mpi_bandwidth = 0.3e9;
    m.allreduce_latency = 30.0e-6;
    m.omp_sync = 0.0;
    m.pes_per_node = 1;
    return m;
  }
};

/// One rank's modeled execution, decomposed as in Fig 20.
struct TimeBreakdown {
  double compute = 0.0;
  double comm_latency = 0.0;
  double comm_bandwidth = 0.0;
  double omp = 0.0;

  [[nodiscard]] double total() const { return compute + comm_latency + comm_bandwidth + omp; }
  /// Paper's "parallel work ratio": computation / elapsed.
  [[nodiscard]] double work_ratio_percent() const {
    const double t = total();
    return t > 0.0 ? 100.0 * compute / t : 100.0;
  }
};

/// GFLOPS of `flops` executed in `seconds`.
inline double gflops(double flops, double seconds) {
  return seconds > 0.0 ? flops / seconds / 1e9 : 0.0;
}

}  // namespace geofem::perf
