#pragma once

#include "mesh/hex_mesh.hpp"

namespace geofem::mesh {

/// Synthetic stand-in for the paper's Southwest Japan model (Fig 25), which
/// we do not have (it is a proprietary RIST mesh of crust + subduction plate).
///
/// What the paper uses the model for is its *character*, not its exact
/// geometry: a complicated curved geometry, irregular and partly very
/// distorted hexahedra, and contact groups along an irregular (curved) fault
/// interface between bodies. This generator reproduces exactly those
/// properties:
///
///  * three bodies: a subducting slab below a curved dipping interface, and
///    two crust blocks separated by a transverse vertical fault (so contact
///    groups of size 2 on surfaces and size 3 along the triple line, like the
///    multi-plate junction in the real model);
///  * a smooth non-affine coordinate map (dipping, laterally curved slab)
///    producing non-uniform element shapes;
///  * deterministic pseudo-random node jitter ("distortion") that leaves
///    coincident contact nodes coincident, with amplitude controlled by
///    `distortion` (fraction of local element size).
struct SouthwestJapanParams {
  int nx = 24;              ///< elements along strike-normal (subduction) direction
  int ny = 20;              ///< elements along strike
  int nz_slab = 6;          ///< element layers in the slab
  int nz_crust = 10;        ///< element layers in the crust
  double dip = 0.35;        ///< interface dip (fraction of depth per unit x)
  double curvature = 0.25;  ///< lateral curvature amplitude of the interface
  double distortion = 0.10; ///< jitter amplitude, fraction of element size
  unsigned seed = 12345;
};

HexMesh southwest_japan_like(const SouthwestJapanParams& p);

}  // namespace geofem::mesh
