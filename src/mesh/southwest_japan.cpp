#include "mesh/southwest_japan.hpp"

#include <cmath>
#include <cstdint>

#include "util/check.hpp"

namespace geofem::mesh {

namespace {

/// Deterministic hash of a logical lattice coordinate -> jitter in [-1, 1).
/// Keyed purely by (i, j, k) so that duplicated (coincident) nodes on a
/// contact surface receive identical jitter and stay coincident.
double jitter(unsigned seed, int i, int j, int k, int axis) {
  std::uint64_t h = seed;
  for (std::uint64_t v : {std::uint64_t(i), std::uint64_t(j), std::uint64_t(k),
                          std::uint64_t(axis)}) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
  }
  return 2.0 * (static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0)) - 1.0;
}

struct Zone {
  int nx, ny, nz;
  int offset;
  [[nodiscard]] int node(int i, int j, int k) const {
    return offset + (k * (ny + 1) + j) * (nx + 1) + i;
  }
};

}  // namespace

HexMesh southwest_japan_like(const SouthwestJapanParams& p) {
  GEOFEM_CHECK(p.nx >= 2 && p.ny >= 2 && p.nz_slab >= 1 && p.nz_crust >= 1,
               "southwest_japan_like: mesh too small");
  GEOFEM_CHECK(p.distortion >= 0.0 && p.distortion < 0.5,
               "distortion must be in [0, 0.5) to keep Jacobians positive-ish");

  HexMesh m;
  const int jc = p.ny / 2;  // transverse fault position (crust split)
  const int nz_total = p.nz_slab + p.nz_crust;

  // The physical map. Logical coordinates (i, j, k) with k measured from the
  // bottom of the slab. The slab/crust interface sits at logical k = nz_slab
  // and maps to a dipping, laterally curved surface.
  auto physical = [&](int i, int j, double kf) {
    const double u = static_cast<double>(i) / p.nx;
    const double v = static_cast<double>(j) / p.ny;
    const double w = kf / nz_total;
    const double x = static_cast<double>(i);
    const double y = static_cast<double>(j) + p.curvature * p.ny * 0.2 * std::sin(M_PI * u);
    // Dipping, laterally curved layers. The shift grows linearly with depth
    // fraction w so the base of the computational domain stays exactly flat
    // (the Dirichlet surface), the slab/crust interface is curved and
    // dipping, and the free surface carries topography. Linear growth keeps
    // |d(shift)/dk| < 1 and the Jacobians positive for the default
    // parameters.
    const double dip_shift =
        w * (-p.dip * static_cast<double>(p.nx) * u +
             p.curvature * static_cast<double>(nz_total) * 0.3 * std::sin(M_PI * u) *
                 std::cos(M_PI * (v - 0.5)));
    const double z = static_cast<double>(kf) + dip_shift;
    return std::array<double, 3>{x, y, z};
  };

  auto jittered = [&](int i, int j, int k) {
    auto c = physical(i, j, static_cast<double>(k));
    // No jitter on the outer boundary so BC surfaces remain planar in logical
    // space; interior nodes (including contact-surface nodes, which are
    // interior in z) are perturbed.
    const bool boundary = (i == 0 || i == p.nx || j == 0 || j == p.ny || k == 0 || k == nz_total);
    if (!boundary && p.distortion > 0.0) {
      for (int a = 0; a < 3; ++a) c[a] += p.distortion * jitter(p.seed, i, j, k, a);
    }
    return c;
  };

  auto append_zone = [&](int i0, int i1, int j0, int j1, int k0, int k1, int zone_id) {
    Zone z{i1 - i0, j1 - j0, k1 - k0, m.num_nodes()};
    for (int k = k0; k <= k1; ++k)
      for (int j = j0; j <= j1; ++j)
        for (int i = i0; i <= i1; ++i) m.coords.push_back(jittered(i, j, k));
    for (int k = 0; k < z.nz; ++k)
      for (int j = 0; j < z.ny; ++j)
        for (int i = 0; i < z.nx; ++i) {
          m.hexes.push_back({z.node(i, j, k), z.node(i + 1, j, k), z.node(i + 1, j + 1, k),
                             z.node(i, j + 1, k), z.node(i, j, k + 1), z.node(i + 1, j, k + 1),
                             z.node(i + 1, j + 1, k + 1), z.node(i, j + 1, k + 1)});
          m.zone.push_back(zone_id);
        }
    return z;
  };

  // Zone 0: subduction slab (full footprint, below the interface).
  const Zone slab = append_zone(0, p.nx, 0, p.ny, 0, p.nz_slab, 0);
  // Zones 1/2: crust split along the transverse fault at j = jc.
  const Zone crust_a = append_zone(0, p.nx, 0, jc, p.nz_slab, nz_total, 1);
  const Zone crust_b = append_zone(0, p.nx, jc, p.ny, p.nz_slab, nz_total, 2);

  // Contact groups on the curved slab/crust interface (logical k = nz_slab):
  // slab top node + crust bottom node(s); groups of 3 along the j = jc line.
  for (int j = 0; j <= p.ny; ++j) {
    for (int i = 0; i <= p.nx; ++i) {
      std::vector<int> g{slab.node(i, j, p.nz_slab)};
      if (j <= jc) g.push_back(crust_a.node(i, j, 0));
      if (j >= jc) g.push_back(crust_b.node(i, j - jc, 0));
      m.contact_groups.push_back(std::move(g));
    }
  }
  // Transverse vertical fault between the two crust blocks (k strictly above
  // the interface).
  for (int k = 1; k <= p.nz_crust; ++k)
    for (int i = 0; i <= p.nx; ++i)
      m.contact_groups.push_back({crust_a.node(i, jc, k), crust_b.node(i, 0, k)});

  return m;
}

}  // namespace geofem::mesh
