#pragma once

#include <array>
#include <functional>
#include <string>
#include <vector>

namespace geofem::mesh {

/// Unstructured mesh of 8-node (tri-linear) hexahedral elements with 3 DOF
/// per node, plus the contact-group information GeoFEM attaches to meshes with
/// fault surfaces: each contact group is a set of geometrically coincident
/// nodes belonging to different bodies, to be tied by penalty constraints.
struct HexMesh {
  std::vector<std::array<double, 3>> coords;      ///< node coordinates
  std::vector<std::array<int, 8>> hexes;          ///< element connectivity
  std::vector<int> zone;                          ///< material zone id per element
  std::vector<std::vector<int>> contact_groups;   ///< coincident node sets (size >= 2)

  [[nodiscard]] int num_nodes() const { return static_cast<int>(coords.size()); }
  [[nodiscard]] int num_elements() const { return static_cast<int>(hexes.size()); }
  [[nodiscard]] std::size_t num_dof() const { return coords.size() * 3; }

  /// Nodes satisfying a coordinate predicate (used to apply boundary
  /// conditions on surfaces, e.g. x == 0 within tolerance).
  [[nodiscard]] std::vector<int> nodes_where(
      const std::function<bool(double, double, double)>& pred) const;

  /// Bounding box [min, max] of all node coordinates.
  struct Box {
    std::array<double, 3> lo, hi;
  };
  [[nodiscard]] Box bounding_box() const;

  /// Number of nodes that belong to some contact group.
  [[nodiscard]] int num_contact_nodes() const;

  /// Sanity checks: connectivity in range, contact groups coincident &
  /// disjoint. Throws std::logic_error on violation.
  void validate() const;
};

/// Element-quality statistics used to characterise the synthetic
/// Southwest-Japan-like mesh ("some of the meshes are very distorted").
struct MeshQuality {
  double min_jacobian = 0.0;   ///< min determinant of the isoparametric map
  double max_jacobian = 0.0;
  double mean_jacobian = 0.0;
  double max_aspect = 0.0;     ///< max edge-length ratio per element
  int negative_jacobians = 0;  ///< elements with non-positive Jacobian corners
};

MeshQuality mesh_quality(const HexMesh& m);

/// Homogeneous Nx x Ny x Nz element cube on [0,Lx]x[0,Ly]x[0,Lz]
/// (Fig 14's "simple 3D elastic solid mechanics" geometry, no contact).
HexMesh unit_cube(int nx, int ny, int nz, double lx = 1.0, double ly = 1.0, double lz = 1.0);

}  // namespace geofem::mesh
