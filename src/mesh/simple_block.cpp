#include "mesh/simple_block.hpp"

#include "util/check.hpp"

namespace geofem::mesh {

namespace {

/// A structured lattice of (nx+1)(ny+1)(nz+1) nodes appended to the mesh with
/// a node-id offset, producing nx*ny*nz unit hexahedra with origin shift.
struct Lattice {
  int nx, ny, nz;
  int offset;  // first node id

  [[nodiscard]] int node(int i, int j, int k) const {
    return offset + (k * (ny + 1) + j) * (nx + 1) + i;
  }
};

Lattice append_zone(HexMesh& m, int nx, int ny, int nz, double ox, double oy, double oz,
                    int zone_id) {
  Lattice lat{nx, ny, nz, m.num_nodes()};
  for (int k = 0; k <= nz; ++k)
    for (int j = 0; j <= ny; ++j)
      for (int i = 0; i <= nx; ++i)
        m.coords.push_back({ox + i, oy + j, oz + k});
  for (int k = 0; k < nz; ++k)
    for (int j = 0; j < ny; ++j)
      for (int i = 0; i < nx; ++i) {
        m.hexes.push_back({lat.node(i, j, k), lat.node(i + 1, j, k), lat.node(i + 1, j + 1, k),
                           lat.node(i, j + 1, k), lat.node(i, j, k + 1), lat.node(i + 1, j, k + 1),
                           lat.node(i + 1, j + 1, k + 1), lat.node(i, j + 1, k + 1)});
        m.zone.push_back(zone_id);
      }
  return lat;
}

}  // namespace

HexMesh simple_block(const SimpleBlockParams& p) {
  GEOFEM_CHECK(p.nx1 >= 1 && p.nx2 >= 1 && p.ny >= 1 && p.nz1 >= 1 && p.nz2 >= 1,
               "simple_block needs >= 1 element per direction");
  HexMesh m;
  const Lattice bottom = append_zone(m, p.nx1 + p.nx2, p.ny, p.nz1, 0, 0, 0, 0);
  const Lattice top_left = append_zone(m, p.nx1, p.ny, p.nz2, 0, 0, p.nz1, 1);
  const Lattice top_right = append_zone(m, p.nx2, p.ny, p.nz2, p.nx1, 0, p.nz1, 2);

  // Horizontal contact surface z = NZ1: bottom-slab top face vs the bottom
  // faces of the two top blocks. Along x = NX1 all three zones meet -> groups
  // of size 3; elsewhere groups of size 2.
  for (int j = 0; j <= p.ny; ++j) {
    for (int i = 0; i <= p.nx1 + p.nx2; ++i) {
      std::vector<int> g{bottom.node(i, j, p.nz1)};
      if (i <= p.nx1) g.push_back(top_left.node(i, j, 0));
      if (i >= p.nx1) g.push_back(top_right.node(i - p.nx1, j, 0));
      m.contact_groups.push_back(std::move(g));
    }
  }

  // Vertical contact surface x = NX1 for z strictly above the horizontal
  // interface (z = NZ1 nodes were grouped above): top-left vs top-right.
  for (int k = 1; k <= p.nz2; ++k)
    for (int j = 0; j <= p.ny; ++j)
      m.contact_groups.push_back({top_left.node(p.nx1, j, k), top_right.node(0, j, k)});

  return m;
}

}  // namespace geofem::mesh
