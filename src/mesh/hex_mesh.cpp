#include "mesh/hex_mesh.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace geofem::mesh {

std::vector<int> HexMesh::nodes_where(
    const std::function<bool(double, double, double)>& pred) const {
  std::vector<int> out;
  for (int i = 0; i < num_nodes(); ++i) {
    const auto& c = coords[i];
    if (pred(c[0], c[1], c[2])) out.push_back(i);
  }
  return out;
}

HexMesh::Box HexMesh::bounding_box() const {
  Box b{{std::numeric_limits<double>::max(), std::numeric_limits<double>::max(),
         std::numeric_limits<double>::max()},
        {std::numeric_limits<double>::lowest(), std::numeric_limits<double>::lowest(),
         std::numeric_limits<double>::lowest()}};
  for (const auto& c : coords) {
    for (int d = 0; d < 3; ++d) {
      b.lo[d] = std::min(b.lo[d], c[d]);
      b.hi[d] = std::max(b.hi[d], c[d]);
    }
  }
  return b;
}

int HexMesh::num_contact_nodes() const {
  int count = 0;
  for (const auto& g : contact_groups) count += static_cast<int>(g.size());
  return count;
}

void HexMesh::validate() const {
  const int nn = num_nodes();
  for (const auto& h : hexes)
    for (int v : h) GEOFEM_CHECK(v >= 0 && v < nn, "hex vertex out of range");
  GEOFEM_CHECK(zone.empty() || zone.size() == hexes.size(), "zone size mismatch");

  std::vector<char> seen(static_cast<std::size_t>(nn), 0);
  for (const auto& g : contact_groups) {
    GEOFEM_CHECK(g.size() >= 2, "contact group needs >= 2 nodes");
    const auto& c0 = coords[static_cast<std::size_t>(g[0])];
    for (int v : g) {
      GEOFEM_CHECK(v >= 0 && v < nn, "contact node out of range");
      GEOFEM_CHECK(!seen[static_cast<std::size_t>(v)], "node in two contact groups");
      seen[static_cast<std::size_t>(v)] = 1;
      const auto& c = coords[static_cast<std::size_t>(v)];
      const double d = std::hypot(c[0] - c0[0], c[1] - c0[1], c[2] - c0[2]);
      GEOFEM_CHECK(d < 1e-9, "contact group nodes not coincident");
    }
  }
}

namespace {

/// Corner Jacobian determinants of a hexahedron: determinant of the edge
/// triple at each of the 8 vertices (positive for well-oriented elements).
void corner_jacobians(const HexMesh& m, const std::array<int, 8>& h, double out[8]) {
  // vertex -> its three edge-neighbours in the standard numbering
  static const int nb[8][3] = {{1, 3, 4}, {2, 0, 5}, {3, 1, 6}, {0, 2, 7},
                               {7, 5, 0}, {4, 6, 1}, {5, 7, 2}, {6, 4, 3}};
  for (int v = 0; v < 8; ++v) {
    const auto& p = m.coords[static_cast<std::size_t>(h[static_cast<std::size_t>(v)])];
    double e[3][3];
    for (int k = 0; k < 3; ++k) {
      const auto& q = m.coords[static_cast<std::size_t>(h[static_cast<std::size_t>(nb[v][k])])];
      for (int d = 0; d < 3; ++d) e[k][d] = q[d] - p[d];
    }
    out[v] = e[0][0] * (e[1][1] * e[2][2] - e[1][2] * e[2][1]) -
             e[0][1] * (e[1][0] * e[2][2] - e[1][2] * e[2][0]) +
             e[0][2] * (e[1][0] * e[2][1] - e[1][1] * e[2][0]);
  }
}

}  // namespace

MeshQuality mesh_quality(const HexMesh& m) {
  MeshQuality q;
  q.min_jacobian = std::numeric_limits<double>::max();
  q.max_jacobian = std::numeric_limits<double>::lowest();
  double sum = 0.0;
  std::int64_t count = 0;
  static const int edges[12][2] = {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {4, 5}, {5, 6},
                                   {6, 7}, {7, 4}, {0, 4}, {1, 5}, {2, 6}, {3, 7}};
  for (const auto& h : m.hexes) {
    double j[8];
    corner_jacobians(m, h, j);
    bool neg = false;
    for (double v : j) {
      q.min_jacobian = std::min(q.min_jacobian, v);
      q.max_jacobian = std::max(q.max_jacobian, v);
      sum += v;
      ++count;
      if (v <= 0.0) neg = true;
    }
    if (neg) ++q.negative_jacobians;

    double emin = std::numeric_limits<double>::max(), emax = 0.0;
    for (const auto& e : edges) {
      const auto& a = m.coords[static_cast<std::size_t>(h[static_cast<std::size_t>(e[0])])];
      const auto& b = m.coords[static_cast<std::size_t>(h[static_cast<std::size_t>(e[1])])];
      const double len = std::hypot(a[0] - b[0], a[1] - b[1], a[2] - b[2]);
      emin = std::min(emin, len);
      emax = std::max(emax, len);
    }
    if (emin > 0.0) q.max_aspect = std::max(q.max_aspect, emax / emin);
  }
  q.mean_jacobian = count > 0 ? sum / static_cast<double>(count) : 0.0;
  return q;
}

HexMesh unit_cube(int nx, int ny, int nz, double lx, double ly, double lz) {
  GEOFEM_CHECK(nx >= 1 && ny >= 1 && nz >= 1, "cube needs >= 1 element per axis");
  HexMesh m;
  const int px = nx + 1, py = ny + 1, pz = nz + 1;
  m.coords.reserve(static_cast<std::size_t>(px) * py * pz);
  for (int k = 0; k < pz; ++k)
    for (int j = 0; j < py; ++j)
      for (int i = 0; i < px; ++i)
        m.coords.push_back({lx * i / nx, ly * j / ny, lz * k / nz});

  auto id = [&](int i, int j, int k) { return (k * py + j) * px + i; };
  m.hexes.reserve(static_cast<std::size_t>(nx) * ny * nz);
  for (int k = 0; k < nz; ++k)
    for (int j = 0; j < ny; ++j)
      for (int i = 0; i < nx; ++i)
        m.hexes.push_back({id(i, j, k), id(i + 1, j, k), id(i + 1, j + 1, k), id(i, j + 1, k),
                           id(i, j, k + 1), id(i + 1, j, k + 1), id(i + 1, j + 1, k + 1),
                           id(i, j + 1, k + 1)});
  m.zone.assign(m.hexes.size(), 0);
  return m;
}

}  // namespace geofem::mesh
