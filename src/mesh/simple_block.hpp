#pragma once

#include "mesh/hex_mesh.hpp"

namespace geofem::mesh {

/// Parameters of the paper's "simple block model" (Fig 23): three zones of
/// unit cubic hexahedra — a bottom slab spanning the whole x range, and two
/// top blocks meeting at x = NX1 — with duplicated (coincident) nodes on the
/// two internal surfaces. Those coincident node sets are the contact groups.
///
/// All counts are element counts per direction, matching the paper's naming:
///   bottom slab : (NX1+NX2) x NY x NZ1 elements
///   top-left    :  NX1      x NY x NZ2 elements
///   top-right   :  NX2      x NY x NZ2 elements
///
/// The paper's configurations are reproduced exactly at full scale:
///   appendix model  : 20/20/15/20/20 -> 24,000 elements, 27,888 nodes (83,664 DOF)
///   single-node test: 70/70/40/70/70 -> 784,000 elements, 823,813 nodes
///   speed-up test   : 70/70/168/70/70 -> 3,292,800 elements
///   large-scale test: 300/300/40/200/200 -> 9,600,000 elements
struct SimpleBlockParams {
  int nx1 = 20;
  int nx2 = 20;
  int ny = 15;
  int nz1 = 20;
  int nz2 = 20;
};

/// Build the simple block model. Contact groups have size 2 on the interior of
/// the two contact surfaces and size 3 along the line where all three zones
/// meet, matching "the number of nodes in each contact group can be
/// different" (Fig 23(b)).
HexMesh simple_block(const SimpleBlockParams& p);

}  // namespace geofem::mesh
