#include "mesh/io.hpp"

#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>

#include "core/status.hpp"

namespace geofem::mesh {

namespace {

/// Parse / file failures are typed geofem::Error(kIoError) so callers can
/// dispatch on code() instead of matching message strings.
void io_check(bool ok, const std::string& what) {
  if (!ok) throw Error(StatusCode::kIoError, what);
}

}  // namespace

void write_mesh(std::ostream& os, const HexMesh& m) {
  os << "geofem-mesh 1\n";
  os << "nodes " << m.num_nodes() << "\n";
  os << std::setprecision(17);
  for (const auto& c : m.coords) os << c[0] << ' ' << c[1] << ' ' << c[2] << '\n';
  os << "hexes " << m.num_elements() << "\n";
  for (int e = 0; e < m.num_elements(); ++e) {
    os << (m.zone.empty() ? 0 : m.zone[static_cast<std::size_t>(e)]);
    for (int v : m.hexes[static_cast<std::size_t>(e)]) os << ' ' << v;
    os << '\n';
  }
  os << "contact_groups " << m.contact_groups.size() << "\n";
  for (const auto& g : m.contact_groups) {
    os << g.size();
    for (int v : g) os << ' ' << v;
    os << '\n';
  }
  io_check(os.good(), "mesh write failed");
}

HexMesh read_mesh(std::istream& is) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  io_check(magic == "geofem-mesh" && version == 1, "not a geofem-mesh v1 stream");

  HexMesh m;
  std::string key;
  int n = 0;
  is >> key >> n;
  io_check(key == "nodes" && n >= 0, "bad nodes header");
  m.coords.resize(static_cast<std::size_t>(n));
  for (auto& c : m.coords) is >> c[0] >> c[1] >> c[2];

  int e = 0;
  is >> key >> e;
  io_check(key == "hexes" && e >= 0, "bad hexes header");
  m.hexes.resize(static_cast<std::size_t>(e));
  m.zone.resize(static_cast<std::size_t>(e));
  for (int i = 0; i < e; ++i) {
    is >> m.zone[static_cast<std::size_t>(i)];
    for (int v = 0; v < 8; ++v) is >> m.hexes[static_cast<std::size_t>(i)][static_cast<std::size_t>(v)];
  }

  int g = 0;
  is >> key >> g;
  io_check(key == "contact_groups" && g >= 0, "bad contact_groups header");
  m.contact_groups.resize(static_cast<std::size_t>(g));
  for (auto& grp : m.contact_groups) {
    std::size_t k = 0;
    is >> k;
    io_check(k >= 2, "contact group needs >= 2 nodes");
    grp.resize(k);
    for (auto& v : grp) is >> v;
  }
  io_check(!is.fail(), "mesh read failed");
  m.validate();
  return m;
}

void save_mesh(const std::string& path, const HexMesh& m) {
  std::ofstream os(path);
  io_check(os.is_open(), "cannot open mesh file for writing: " + path);
  write_mesh(os, m);
}

HexMesh load_mesh(const std::string& path) {
  std::ifstream is(path);
  io_check(is.is_open(), "cannot open mesh file: " + path);
  return read_mesh(is);
}

}  // namespace geofem::mesh
