#pragma once

#include <iosfwd>
#include <string>

#include "mesh/hex_mesh.hpp"

namespace geofem::mesh {

/// Plain-text mesh format of this library (GeoFEM distributes meshes as
/// files; §2.1: "The partitioning program in GeoFEM works on a single PE and
/// divides the initial entire mesh into distributed local data"). Layout:
///
///   geofem-mesh 1
///   nodes <N>
///   <x y z> * N
///   hexes <E>
///   <zone v0 .. v7> * E
///   contact_groups <G>
///   <k v0 .. v{k-1}> * G
///
/// All indices 0-based. Deterministic round-trip (coordinates as %.17g).
void write_mesh(std::ostream& os, const HexMesh& m);
HexMesh read_mesh(std::istream& is);

void save_mesh(const std::string& path, const HexMesh& m);
HexMesh load_mesh(const std::string& path);

}  // namespace geofem::mesh
