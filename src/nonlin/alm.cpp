#include "nonlin/alm.hpp"

#include <cmath>

#include "contact/penalty.hpp"
#include "obs/span.hpp"
#include "sparse/vector_ops.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace geofem::nonlin {

ALMResult solve_tied_contact_alm(const mesh::HexMesh& m,
                                 const std::vector<fem::Material>& materials,
                                 const fem::BoundaryConditions& bc,
                                 const PrecondBuilder& builder, const ALMOptions& opt) {
  GEOFEM_CHECK(opt.lambda > 0.0, "ALM needs a positive penalty");

  obs::Registry* reg = obs::current();
  obs::ScopedSpan alm_span(reg, "alm.solve");

  // Penalized, boundary-conditioned operator (fixed across cycles: tied
  // contact keeps the active set constant; what changes is the multiplier).
  fem::System sys = [&] {
    obs::ScopedSpan s(reg, "alm.assemble");
    fem::System out = fem::assemble_elasticity(m, materials);
    contact::add_penalty(out.a, m.contact_groups, opt.lambda);
    fem::apply_boundary_conditions(out, bc);
    return out;
  }();
  const std::size_t n = sys.a.ndof();

  // free/fixed mask (multiplier forces only act on free DOFs)
  std::vector<char> fixed(n, 0);
  for (const auto& f : bc.fixes)
    fixed[static_cast<std::size_t>(f.node) * 3 + static_cast<std::size_t>(f.comp)] = 1;

  // constraint pairs: all (i, j), i < j, within each contact group (matches
  // the complete-graph Laplacian of add_penalty)
  std::vector<std::pair<int, int>> pairs;
  for (const auto& g : m.contact_groups)
    for (std::size_t a = 0; a < g.size(); ++a)
      for (std::size_t b2 = a + 1; b2 < g.size(); ++b2) pairs.emplace_back(g[a], g[b2]);

  ALMResult res;
  precond::PreconditionerPtr prec;
  // Returns false when the factorization hits an unusable pivot; the outer
  // loop reports kFactorizationFailed instead of letting the throw escape —
  // the partial solution and gap history stay available to the caller.
  auto build_precond = [&] {
    obs::ScopedSpan s(reg, "alm.refactor");
    util::Timer t;
    try {
      prec = builder(sys.a);
    } catch (const Error& e) {
      if (e.code() != StatusCode::kFactorizationFailed) throw;
      res.status = SolveStatus::kFactorizationFailed;
      return false;
    }
    res.setup_seconds_per_cycle.push_back(t.seconds());
    // Surfaces the composed name (e.g. "SB-BIC(0)+coarse(deflated,6)") so a
    // workload trace shows whether the cycles ran one- or two-level.
    if (reg) reg->set_meta("alm.precond", prec->name());
    return true;
  };
  const bool setup_ok = opt.refresh_precond_each_cycle || build_precond();

  res.solution.assign(n, 0.0);
  std::vector<double> mu(pairs.size() * 3, 0.0), rhs(n);

  for (int cycle = 0; setup_ok && cycle < opt.max_cycles; ++cycle) {
    obs::ScopedSpan cycle_span(reg, "alm.cycle");
    if (opt.refresh_precond_each_cycle && !build_precond()) break;
    // rhs = b - B' mu  (masked on fixed DOFs)
    sparse::copy(sys.b, rhs);
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      const auto [i, j] = pairs[p];
      for (int c = 0; c < 3; ++c) {
        const std::size_t di = static_cast<std::size_t>(i) * 3 + static_cast<std::size_t>(c);
        const std::size_t dj = static_cast<std::size_t>(j) * 3 + static_cast<std::size_t>(c);
        const double v = mu[p * 3 + static_cast<std::size_t>(c)];
        if (!fixed[di]) rhs[di] -= v;
        if (!fixed[dj]) rhs[dj] += v;
      }
    }

    auto cg = solver::pcg(sys.a, *prec, rhs, res.solution, opt.inner);
    res.inner_iterations.push_back(cg.iterations);
    ++res.cycles;
    // Hard inner failure: the iterate is garbage (breakdown) or provably
    // stuck (stagnation); further multiplier updates can't recover. An inner
    // kMaxIterations is tolerated — the partial iterate still moves the gap.
    if (!cg.converged() && cg.status != SolveStatus::kMaxIterations) {
      res.status = cg.status;
      break;
    }

    // constraint violation and multiplier update: g_p = u_i - u_j
    double gap2 = 0.0;
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      const auto [i, j] = pairs[p];
      for (int c = 0; c < 3; ++c) {
        const double g = res.solution[static_cast<std::size_t>(i) * 3 + static_cast<std::size_t>(c)] -
                         res.solution[static_cast<std::size_t>(j) * 3 + static_cast<std::size_t>(c)];
        gap2 += g * g;
        mu[p * 3 + static_cast<std::size_t>(c)] += opt.lambda * g;
      }
    }
    const double unorm = sparse::norm2(res.solution);
    const double rel_gap = std::sqrt(gap2) / (unorm > 0.0 ? unorm : 1.0);
    res.gap_history.push_back(rel_gap);
    if (rel_gap < opt.constraint_tol) {
      res.status = SolveStatus::kConverged;
      break;
    }
  }

  if (reg) {
    reg->counter("alm.cycles")->add(static_cast<std::uint64_t>(res.cycles));
    reg->counter("alm.inner_iterations")
        ->add(static_cast<std::uint64_t>(res.total_inner_iterations()));
    reg->gauge("alm.final_gap")->set(res.gap_history.empty() ? 0.0 : res.gap_history.back());
  }
  return res;
}

}  // namespace geofem::nonlin
