#pragma once

#include <functional>

#include "core/status.hpp"
#include "fem/assembly.hpp"
#include "mesh/hex_mesh.hpp"
#include "precond/preconditioner.hpp"
#include "solver/cg.hpp"

namespace geofem::nonlin {

/// Augmented Lagrange (ALM) driver for fault-zone contact (paper §1.1,
/// Fig 2): the tied-contact constraint B u = 0 (zero relative displacement
/// across every contact pair) is enforced by the augmented functional
///   L(u, mu) = 1/2 u'K u - f'u + mu'(B u) + lambda/2 |B u|^2,
/// solved by the outer multiplier iteration (the paper's "Newton-Raphson
/// cycles" for the boundary nonlinearity):
///   (K + lambda B'B) u = f - B' mu,   mu <- mu + lambda B u.
///
/// A large penalty lambda contracts the constraint violation faster (fewer
/// outer cycles) but makes each inner linear system ill-conditioned (more
/// Krylov iterations) — exactly the Fig 2 trade-off.
struct ALMOptions {
  double lambda = 1e4;
  double constraint_tol = 1e-6;   ///< on |B u| / |u| (relative gap)
  int max_cycles = 60;
  solver::CGOptions inner;
  /// Rebuild the preconditioner at the start of every cycle instead of once
  /// up front. With tied contact the matrix is fixed, so this changes nothing
  /// numerically — it models the general Newton-Raphson workload where each
  /// cycle refactors, and is what the plan cache amortizes: a plan-cached
  /// builder pays symbolic set-up on cycle 0 only (see bench_plan_reuse).
  bool refresh_precond_each_cycle = false;
};

struct ALMResult {
  /// kConverged once the relative gap passes constraint_tol; kMaxIterations
  /// when the cycle budget runs out. A hard inner-solve failure (breakdown,
  /// stagnation, failed factorization) aborts the outer loop and surfaces
  /// here; an inner solve that merely hits its iteration cap does not — the
  /// next multiplier update often still makes progress.
  SolveStatus status = SolveStatus::kMaxIterations;
  int cycles = 0;
  std::vector<int> inner_iterations;  ///< Krylov iterations per cycle
  std::vector<double> gap_history;    ///< relative constraint violation per cycle
  std::vector<double> solution;
  /// Preconditioner build time per cycle. One entry (cycle 0) unless
  /// ALMOptions::refresh_precond_each_cycle, then one per cycle.
  std::vector<double> setup_seconds_per_cycle;

  [[nodiscard]] bool converged() const { return ok(status); }

  [[nodiscard]] int total_inner_iterations() const {
    int t = 0;
    for (int i : inner_iterations) t += i;
    return t;
  }
};

/// Builds the preconditioner for the (fixed) penalized matrix once.
using PrecondBuilder =
    std::function<precond::PreconditionerPtr(const sparse::BlockCSR& penalized)>;

/// Assembles the elastic system over `m`, adds the penalty, applies the
/// boundary conditions, and runs the ALM outer iteration. Multiplier forces
/// on Dirichlet-fixed DOFs are masked out (the constraint there is carried by
/// the boundary condition itself).
ALMResult solve_tied_contact_alm(const mesh::HexMesh& m,
                                 const std::vector<fem::Material>& materials,
                                 const fem::BoundaryConditions& bc,
                                 const PrecondBuilder& builder, const ALMOptions& opt);

}  // namespace geofem::nonlin
