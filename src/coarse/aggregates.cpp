#include "coarse/aggregates.hpp"

#include "plan/fingerprint.hpp"
#include "util/check.hpp"

namespace geofem::coarse {

std::uint64_t AggregateMap::fingerprint() const {
  plan::Fnv1a h;
  h.pod(count);
  h.ints(node_to_agg);
  return h.digest();
}

AggregateMap single_aggregate(int num_nodes) {
  GEOFEM_CHECK(num_nodes >= 1, "single_aggregate: empty mesh");
  AggregateMap m;
  m.count = 1;
  m.node_to_agg.assign(static_cast<std::size_t>(num_nodes), 0);
  return m;
}

AggregateMap refine_by_groups(AggregateMap base,
                              const std::vector<std::vector<int>>& groups) {
  for (const auto& g : groups) {
    if (g.size() < 2) continue;  // a cut / singleton group refines nothing
    const int agg = base.count++;
    for (int node : g) {
      GEOFEM_CHECK(node >= 0 && node < static_cast<int>(base.node_to_agg.size()),
                   "refine_by_groups: group node outside the aggregate map");
      base.node_to_agg[static_cast<std::size_t>(node)] = agg;
    }
  }
  return base;
}

AggregateMap from_global(const AggregateMap& global, const std::vector<int>& global_of_local) {
  AggregateMap m;
  m.count = global.count;
  m.node_to_agg.reserve(global_of_local.size());
  for (int g : global_of_local) {
    GEOFEM_CHECK(g >= 0 && g < static_cast<int>(global.node_to_agg.size()),
                 "from_global: local node maps outside the global aggregate map");
    m.node_to_agg.push_back(global.node_to_agg[static_cast<std::size_t>(g)]);
  }
  return m;
}

}  // namespace geofem::coarse
