#include "coarse/coarse.hpp"

#include <algorithm>

#include "core/status.hpp"
#include "par/par.hpp"
#include "util/check.hpp"

namespace geofem::coarse {

std::string to_string(SetupStatus s) {
  switch (s) {
    case SetupStatus::kOff: return "off";
    case SetupStatus::kActive: return "active";
    case SetupStatus::kDegraded: return "degraded";
  }
  return "?";
}

std::string to_string(Mode m) {
  switch (m) {
    case Mode::kAdditive: return "additive";
    case Mode::kDeflated: return "deflated";
  }
  return "?";
}

std::string to_string(Aggregates a) {
  switch (a) {
    case Aggregates::kPerDomain: return "per-domain";
    case Aggregates::kPerContactGroup: return "per-contact-group";
  }
  return "?";
}

CoarseSymbolic::CoarseSymbolic(const AggregateMap& map, int restrict_nodes)
    : count_(map.count), restrict_nodes_(restrict_nodes), node_to_agg_(map.node_to_agg) {
  GEOFEM_CHECK(count_ >= 1, "CoarseSymbolic: empty aggregate map");
  GEOFEM_CHECK(restrict_nodes_ >= 1 &&
                   restrict_nodes_ <= static_cast<int>(node_to_agg_.size()),
               "CoarseSymbolic: restrict_nodes outside the aggregate map");
  for (int g : node_to_agg_)
    GEOFEM_CHECK(g >= 0 && g < count_, "CoarseSymbolic: aggregate id out of range");
  members_.resize(static_cast<std::size_t>(count_));
  for (int i = 0; i < restrict_nodes_; ++i)
    members_[static_cast<std::size_t>(node_to_agg_[static_cast<std::size_t>(i)])].push_back(i);
}

std::size_t CoarseSymbolic::memory_bytes() const {
  std::size_t bytes = node_to_agg_.size() * sizeof(int);
  for (const auto& m : members_) bytes += m.size() * sizeof(int);
  return bytes;
}

std::vector<double> accumulate(const sparse::BlockCSR& a, const CoarseSymbolic& sym) {
  GEOFEM_CHECK(a.n >= sym.restrict_nodes() &&
                   a.n <= static_cast<int>(sym.node_to_agg().size()),
               "coarse::accumulate: matrix does not match the aggregate map");
  const int nc = sym.dim();
  const auto& agg = sym.node_to_agg();
  std::vector<double> dense(static_cast<std::size_t>(nc) * static_cast<std::size_t>(nc), 0.0);
  // One serial pass over the restricted rows: deterministic for every thread
  // count, and cheap relative to a single fine matvec (same nnz, no spmv).
  for (int i = 0; i < sym.restrict_nodes(); ++i) {
    const int gi = agg[static_cast<std::size_t>(i)];
    for (int e = a.rowptr[static_cast<std::size_t>(i)];
         e < a.rowptr[static_cast<std::size_t>(i) + 1]; ++e) {
      const int j = a.colind[static_cast<std::size_t>(e)];
      const int gj = agg[static_cast<std::size_t>(j)];
      const double* b = a.block(e);
      double* dst = dense.data() + (static_cast<std::size_t>(gi) * 3) * nc +
                    static_cast<std::size_t>(gj) * 3;
      for (int ci = 0; ci < 3; ++ci)
        for (int cj = 0; cj < 3; ++cj)
          dst[static_cast<std::size_t>(ci) * nc + cj] += b[ci * 3 + cj];
    }
  }
  return dense;
}

CoarseOperator::CoarseOperator(std::shared_ptr<const CoarseSymbolic> sym,
                               const std::vector<double>& dense)
    : sym_(std::move(sym)) {
  GEOFEM_CHECK(sym_ != nullptr, "CoarseOperator: null symbolic");
  const int nc = sym_->dim();
  GEOFEM_CHECK(static_cast<int>(dense.size()) == nc * nc,
               "CoarseOperator: dense operator size mismatch");
  if (!lu_.factor(dense.data(), nc))
    throw Error(StatusCode::kFactorizationFailed,
                "coarse Galerkin operator is singular (" + std::to_string(nc) + " DOF)");
}

void CoarseOperator::restrict_residual(std::span<const double> r, std::span<double> y,
                                       util::FlopCounter* fc) const {
  const int nc = sym_->dim();
  GEOFEM_CHECK(static_cast<int>(y.size()) == nc, "restrict_residual: bad coarse size");
  GEOFEM_CHECK(r.size() >= static_cast<std::size_t>(sym_->restrict_nodes()) * 3,
               "restrict_residual: residual shorter than the restricted nodes");
  const auto& members = sym_->members();
  const int team = par::threads();
  // One task per coarse DOF (aggregate, component). Within a task the member
  // sum uses the fixed kReduceChunk grid + pairwise combine, so the bits do
  // not depend on how tasks are spread over the team.
#pragma omp parallel for schedule(static) num_threads(team) if (team > 1)
  for (std::ptrdiff_t t = 0; t < static_cast<std::ptrdiff_t>(nc); ++t) {
    const auto& mem = members[static_cast<std::size_t>(t / 3)];
    const int c = static_cast<int>(t % 3);
    const std::size_t nm = mem.size();
    const std::size_t nchunks = par::reduce_chunks(nm);
    std::vector<double> partials(nchunks, 0.0);
    for (std::size_t ch = 0; ch < nchunks; ++ch) {
      const std::size_t b = ch * par::kReduceChunk;
      const std::size_t e = std::min(b + par::kReduceChunk, nm);
      double acc = 0.0;
      for (std::size_t k = b; k < e; ++k)
        acc += r[static_cast<std::size_t>(mem[k]) * 3 + static_cast<std::size_t>(c)];
      partials[ch] = acc;
    }
    y[static_cast<std::size_t>(t)] = nchunks ? par::combine(partials.data(), nchunks) : 0.0;
  }
  if (fc) fc->blas1 += static_cast<std::uint64_t>(sym_->restrict_nodes()) * 3;
}

void CoarseOperator::solve(std::span<double> y, util::FlopCounter* fc) const {
  GEOFEM_CHECK(static_cast<int>(y.size()) == sym_->dim(), "coarse solve: bad size");
  lu_.solve(y.data());
  if (fc) fc->precond += lu_.solve_flops();
}

void CoarseOperator::prolongate_add(std::span<const double> y, std::span<double> z,
                                    util::FlopCounter* fc) const {
  GEOFEM_CHECK(static_cast<int>(y.size()) == sym_->dim(), "prolongate_add: bad coarse size");
  GEOFEM_CHECK(z.size() >= static_cast<std::size_t>(sym_->restrict_nodes()) * 3,
               "prolongate_add: output shorter than the restricted nodes");
  const auto& agg = sym_->node_to_agg();
  const int n = sym_->restrict_nodes();
  const int team = par::threads();
#pragma omp parallel for schedule(static) num_threads(team) if (team > 1)
  for (int i = 0; i < n; ++i) {
    const std::size_t g = static_cast<std::size_t>(agg[static_cast<std::size_t>(i)]) * 3;
    for (int c = 0; c < 3; ++c)
      z[static_cast<std::size_t>(i) * 3 + static_cast<std::size_t>(c)] +=
          y[g + static_cast<std::size_t>(c)];
  }
  if (fc) fc->blas1 += static_cast<std::uint64_t>(n) * 3;
}

std::size_t CoarseOperator::memory_bytes() const {
  return sym_->memory_bytes() + lu_.memory_bytes();
}

}  // namespace geofem::coarse
