#pragma once

#include <cstdint>
#include <vector>

/// geofem::coarse — the two-level coarse-space subsystem (DESIGN.md §5h).
///
/// The paper's localized preconditioning drops every coupling that crosses a
/// domain boundary, so iteration counts grow with the number of domains
/// (Table 4 / Figs 16-19 measure exactly this). This subsystem supplies the
/// standard fix: a piecewise-constant coarse space — one aggregate per domain
/// (or per contact group), three translational DOFs per aggregate — whose
/// Galerkin operator A_c = R A P is assembled across all domains, factored
/// redundantly on every rank, and applied as an additive or deflation-style
/// second level around any existing one-level preconditioner.
namespace geofem::coarse {

/// Partition of fine nodes into aggregates: the piecewise-constant coarse
/// space assigns every node to exactly one aggregate, and each aggregate
/// carries one coarse DOF per displacement component (3 per aggregate).
///
/// In distributed runs the map covers *all local nodes* of a rank (internal
/// and external), so the Galerkin assembly can attribute halo couplings to
/// the neighbour's aggregate; restriction/prolongation only ever touch the
/// internal nodes (each global node is internal on exactly one rank, so the
/// summed restriction equals the global R^T r exactly).
struct AggregateMap {
  std::vector<int> node_to_agg;  ///< size = nodes covered; values in [0, count)
  int count = 0;                 ///< number of aggregates

  /// Structural identity of the map (FNV-1a over count + node_to_agg), the
  /// plan-fingerprint component that keys coarse-enabled plans.
  [[nodiscard]] std::uint64_t fingerprint() const;
};

/// Everything in one aggregate — the serial (one-domain) default, where the
/// coarse space is the three rigid translations of the whole mesh.
[[nodiscard]] AggregateMap single_aggregate(int num_nodes);

/// Refine `base` by giving every group with >= 2 members its own new
/// aggregate (kPerContactGroup: contact groups concentrate the large-penalty
/// couplings, so isolating them in the coarse space targets the paper's
/// ill-conditioning directly). Groups touching nodes outside the map are
/// rejected; singleton groups are left in their base aggregate.
[[nodiscard]] AggregateMap refine_by_groups(AggregateMap base,
                                            const std::vector<std::vector<int>>& groups);

/// Restrict a global aggregate map to one rank's local numbering:
/// node_to_agg[l] = global.node_to_agg[global_of_local[l]]. The count stays
/// global — every rank sees the same coarse space.
[[nodiscard]] AggregateMap from_global(const AggregateMap& global,
                                       const std::vector<int>& global_of_local);

}  // namespace geofem::coarse
