#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "coarse/aggregates.hpp"
#include "sparse/block_csr.hpp"
#include "sparse/dense.hpp"
#include "util/flops.hpp"

namespace geofem::coarse {

/// How fine nodes are aggregated into coarse DOFs.
enum class Aggregates {
  kPerDomain,        ///< one aggregate per domain (serial: one for the mesh)
  kPerContactGroup,  ///< per-domain base refined by one aggregate per contact
                     ///< group — isolates the large-penalty couplings
};

/// How the coarse correction combines with the one-level preconditioner M.
enum class Mode {
  kAdditive,  ///< z = M^-1 r + Q r                      (Q = P A_c^-1 R)
  kDeflated,  ///< z = Q r + (I - QA) M^-1 (I - AQ) r     (BNN / deflation)
};

/// Knobs exposed through core::SolveConfig and dist::DistOptions.
struct Options {
  bool enabled = false;
  Aggregates aggregates = Aggregates::kPerDomain;
  /// Deflation is the default: the additive form only shifts the low end of
  /// the spectrum, while the deflated form removes it — which is what makes
  /// iteration counts near-flat in the #domains (see EXPERIMENTS.md).
  Mode mode = Mode::kDeflated;
};

/// Outcome of coarse set-up, reported alongside the solve status. Degrading
/// (a singular Galerkin operator) is typed, never thrown past set-up: the
/// solve continues one-level, and in distributed runs the decision is
/// allreduced so every rank degrades together.
enum class SetupStatus {
  kOff,       ///< coarse correction not requested
  kActive,    ///< second level assembled, factored and applied
  kDegraded,  ///< assembly/factorization failed; solve ran one-level
};

[[nodiscard]] std::string to_string(SetupStatus s);
[[nodiscard]] std::string to_string(Mode m);
[[nodiscard]] std::string to_string(Aggregates a);

/// Structure-only half of the coarse level, cached inside a SolvePlan: the
/// aggregate map plus the per-aggregate member lists that drive R/P.
///
/// `restrict_nodes` is how many leading nodes participate in restriction and
/// prolongation — all of them in serial, the internal nodes in a distributed
/// local system (external halo nodes still appear in node_to_agg so the
/// Galerkin assembly can attribute their couplings, but each global node is
/// restricted on exactly one rank).
class CoarseSymbolic {
 public:
  CoarseSymbolic(const AggregateMap& map, int restrict_nodes);

  [[nodiscard]] int aggregates() const { return count_; }
  /// Coarse problem size: 3 translational DOFs per aggregate.
  [[nodiscard]] int dim() const { return count_ * 3; }
  [[nodiscard]] int restrict_nodes() const { return restrict_nodes_; }
  [[nodiscard]] const std::vector<int>& node_to_agg() const { return node_to_agg_; }
  /// Per aggregate: its member nodes < restrict_nodes(), ascending.
  [[nodiscard]] const std::vector<std::vector<int>>& members() const { return members_; }
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  int count_ = 0;
  int restrict_nodes_ = 0;
  std::vector<int> node_to_agg_;
  std::vector<std::vector<int>> members_;
};

/// This rank's contribution to the Galerkin coarse operator: the dense
/// dim x dim matrix sum_{i < restrict_nodes, j} P(i)^T A_ij P(j) over the
/// stored blocks of `a`. Serial by design (cost is one pass over the matrix),
/// so it is bit-identical for every thread count; in distributed runs the
/// per-rank contributions are summed in rank order (Comm::allreduce_sum on
/// the flattened matrix), which makes the replicated A_c bit-identical too.
[[nodiscard]] std::vector<double> accumulate(const sparse::BlockCSR& a,
                                             const CoarseSymbolic& sym);

/// The factored coarse level: A_c = R A P held as a DenseLU, solved
/// redundantly wherever it lives (every rank owns an identical copy).
/// Construction throws geofem::Error(kFactorizationFailed) if A_c is
/// singular — callers degrade to one-level with SetupStatus::kDegraded.
class CoarseOperator {
 public:
  CoarseOperator(std::shared_ptr<const CoarseSymbolic> sym, const std::vector<double>& dense);

  [[nodiscard]] int dim() const { return sym_->dim(); }
  [[nodiscard]] const CoarseSymbolic& symbolic() const { return *sym_; }

  /// y = R r (size dim()). Per coarse DOF the member sum runs over a fixed
  /// kReduceChunk grid combined with par::combine — the same arithmetic for
  /// every team size, which is what keeps two-level residual histories
  /// bit-identical across thread counts.
  void restrict_residual(std::span<const double> r, std::span<double> y,
                         util::FlopCounter* fc = nullptr) const;

  /// y := A_c^-1 y in place (redundant dense solve).
  void solve(std::span<double> y, util::FlopCounter* fc = nullptr) const;

  /// z += P y. Disjoint element writes; any schedule gives the same bits.
  void prolongate_add(std::span<const double> y, std::span<double> z,
                      util::FlopCounter* fc = nullptr) const;

  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  std::shared_ptr<const CoarseSymbolic> sym_;
  sparse::DenseLU lu_;
};

}  // namespace geofem::coarse
