#pragma once

#include "simd/simd.hpp"

#if GEOFEM_SIMD_HAS_AVX2
#include <immintrin.h>
#endif

/// Hand-tiled 3x3 block micro-kernels (block * vec, block^T * vec) shared by
/// BlockCSR::spmv and the BIC(k)/SB-BIC(0) substitution sweeps. The pattern
/// everywhere is one accumulator per block row (Acc3) streamed over the
/// row's blocks and reduced once at the end:
///
///   ScalarAcc3T — the historical arithmetic, verbatim: each block contributes
///     a[0]*x[0] + a[1]*x[1] + a[2]*x[2] (etc.) to a scalar accumulator, so
///     the off/omp builds stay bit-identical to the pre-SIMD kernels.
///   AvxAcc3T    — three 256-bit FMA accumulators (one per block row) with a
///     fixed-tree horizontal sum at reduce(). Rounds differently from the
///     scalar path (FMA + lane tree), covered by the <= 1e-13 cross-build
///     equivalence contract; deterministic within a build because the lane
///     tree and block order are fixed.
///
/// Both are templated on the *stored* scalar of the matrix blocks (double, or
/// float for fp32-stored preconditioner factors — DESIGN.md §5i). The vector
/// operand and the accumulation always stay double: fp32 storage halves the
/// factor bandwidth, it does not change the iteration arithmetic's type.
/// ScalarAcc3 / AvxAcc3 alias the double instantiations, so pre-existing
/// callers spell nothing new.
///
/// Callers select the accumulator with a template parameter and branch once
/// per kernel call on simd::active() — never per block.
namespace geofem::simd {

template <class T>
struct ScalarAcc3T {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0;

  void init_zero() { a0 = a1 = a2 = 0.0; }
  void init(const double* r) {
    a0 = r[0];
    a1 = r[1];
    a2 = r[2];
  }
  /// acc += A * x (A row-major T[9])
  void madd(const T* a, const double* x) {
    a0 += a[0] * x[0] + a[1] * x[1] + a[2] * x[2];
    a1 += a[3] * x[0] + a[4] * x[1] + a[5] * x[2];
    a2 += a[6] * x[0] + a[7] * x[1] + a[8] * x[2];
  }
  /// acc -= A * x
  void msub(const T* a, const double* x) {
    a0 -= a[0] * x[0] + a[1] * x[1] + a[2] * x[2];
    a1 -= a[3] * x[0] + a[4] * x[1] + a[5] * x[2];
    a2 -= a[6] * x[0] + a[7] * x[1] + a[8] * x[2];
  }
  /// acc += A^T * x
  void madd_t(const T* a, const double* x) {
    a0 += a[0] * x[0] + a[3] * x[1] + a[6] * x[2];
    a1 += a[1] * x[0] + a[4] * x[1] + a[7] * x[2];
    a2 += a[2] * x[0] + a[5] * x[1] + a[8] * x[2];
  }
  void reduce(double* out) const {
    out[0] = a0;
    out[1] = a1;
    out[2] = a2;
  }
};

using ScalarAcc3 = ScalarAcc3T<double>;

#if GEOFEM_SIMD_HAS_AVX2

namespace detail {
inline __m256i mask3() { return _mm256_set_epi64x(0, -1, -1, -1); }
inline __m128i mask3_ps() { return _mm_set_epi32(0, -1, -1, -1); }
/// Fixed-order horizontal sum: (v0 + v2) + (v1 + v3).
inline double hsum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d s = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(s) + _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
}

/// Widening loads of one block row into a double register: 4 scalars for
/// rows 0/1 (stays inside the 9-scalar block), exactly 3 for row 2 so
/// nothing past the array is touched.
inline __m256d load_row4(const double* a) { return _mm256_loadu_pd(a); }
inline __m256d load_row3(const double* a) { return _mm256_maskload_pd(a, mask3()); }
inline __m256d load_row4(const float* a) { return _mm256_cvtps_pd(_mm_loadu_ps(a)); }
inline __m256d load_row3(const float* a) {
  return _mm256_cvtps_pd(_mm_maskload_ps(a, mask3_ps()));
}
}  // namespace detail

template <class T>
struct AvxAcc3T {
  __m256d v0, v1, v2;
  double s0, s1, s2;

  void init_zero() {
    v0 = v1 = v2 = _mm256_setzero_pd();
    s0 = s1 = s2 = 0.0;
  }
  void init(const double* r) {
    init_zero();
    s0 = r[0];
    s1 = r[1];
    s2 = r[2];
  }
  // Block rows 0/1 load 4 scalars but stay inside the 9-scalar block; the
  // masked loads (row 2, x) read exactly 3, so nothing past either array is
  // touched. Lane 3 of x is 0.0, so lane 3 of each accumulator stays +0.0
  // and contributes nothing to the horizontal sum. Float blocks are widened
  // at load (cvtps_pd) — the FMA itself is always double.
  void madd(const T* a, const double* x) {
    const __m256d xv = _mm256_maskload_pd(x, detail::mask3());
    v0 = _mm256_fmadd_pd(detail::load_row4(a), xv, v0);
    v1 = _mm256_fmadd_pd(detail::load_row4(a + 3), xv, v1);
    v2 = _mm256_fmadd_pd(detail::load_row3(a + 6), xv, v2);
  }
  void msub(const T* a, const double* x) {
    const __m256d xv = _mm256_maskload_pd(x, detail::mask3());
    v0 = _mm256_fnmadd_pd(detail::load_row4(a), xv, v0);
    v1 = _mm256_fnmadd_pd(detail::load_row4(a + 3), xv, v1);
    v2 = _mm256_fnmadd_pd(detail::load_row3(a + 6), xv, v2);
  }
  /// acc += A^T * x: lanes are the *columns* of one block row, so the
  /// transpose needs no shuffles — broadcast each x component and FMA the
  /// three rows (no horizontal sum until reduce()).
  void madd_t(const T* a, const double* x) {
    v0 = _mm256_fmadd_pd(detail::load_row4(a), _mm256_set1_pd(x[0]), v0);
    v1 = _mm256_fmadd_pd(detail::load_row4(a + 3), _mm256_set1_pd(x[1]), v1);
    v2 = _mm256_fmadd_pd(detail::load_row3(a + 6), _mm256_set1_pd(x[2]), v2);
  }
  void reduce(double* out) const {
    out[0] = s0 + detail::hsum(v0);
    out[1] = s1 + detail::hsum(v1);
    out[2] = s2 + detail::hsum(v2);
  }
  /// reduce() for a madd_t stream: the accumulators hold column partials, so
  /// the three vectors are summed lane-wise instead of horizontally.
  void reduce_t(double* out) const {
    const __m256d t = _mm256_add_pd(_mm256_add_pd(v0, v1), v2);
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, t);
    out[0] = s0 + lanes[0];
    out[1] = s1 + lanes[1];
    out[2] = s2 + lanes[2];
  }
};

using AvxAcc3 = AvxAcc3T<double>;

/// Fixed-tree dot product of two contiguous ranges (dense supernode rows in
/// DJDSMatrix::spmv phase 2). Deterministic: 4 independent lane chains, one
/// fixed-order horizontal sum, scalar tail in order.
inline double dot_avx2(const double* a, const double* b, int n) {
  __m256d acc = _mm256_setzero_pd();
  int i = 0;
  for (; i + 4 <= n; i += 4)
    acc = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i), acc);
  double s = detail::hsum(acc);
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

#endif  // GEOFEM_SIMD_HAS_AVX2

}  // namespace geofem::simd
