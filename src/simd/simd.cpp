#include "simd/simd.hpp"

namespace geofem::simd {

namespace {
thread_local Isa g_active = compiled_isa();
}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kOmpSimd:
      return "omp-simd";
    case Isa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

Isa active() { return g_active; }

const char* active_isa() { return isa_name(g_active); }

IsaScope::IsaScope(Isa isa) : prev_(g_active) {
  g_active = static_cast<int>(isa) < static_cast<int>(compiled_isa()) ? isa : compiled_isa();
}

IsaScope::~IsaScope() { g_active = prev_; }

}  // namespace geofem::simd
