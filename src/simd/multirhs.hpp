#pragma once

#include "simd/simd.hpp"

#if GEOFEM_SIMD_HAS_AVX2
#include <immintrin.h>
#endif

/// 3x(k) multi-RHS micro-kernels (DESIGN.md §5k). The batched solve path
/// stores k right-hand sides as an interleaved row-major multivector —
/// value(dof i, column c) lives at X[i*k + c] — so the k columns of one DOF
/// are contiguous. That turns every 3x3-block kernel of block3.hpp into a
/// 3x(k) kernel whose innermost loop runs over RHS columns:
///
///   scalar tier — per column the same 3-term single-expression association
///     as ScalarAcc3 (`acc += a0*x0 + a1*x1 + a2*x2`), so a one-column batch
///     reproduces the historical arithmetic per column exactly. The column
///     loop carries GEOFEM_PRAGMA_SIMD: columns are independent, so the omp
///     tier vectorizes across them without reordering any column's sum.
///   avx2 tier — the lane dimension is the RHS column axis: broadcast one
///     matrix scalar (`_mm256_set1_pd`, the AvxAcc3::madd_t shape) and FMA it
///     against 4-column groups of the operand rows, scalar tail in order.
///     Rounds differently from the scalar tier (FMA contraction), covered by
///     the usual <= 1e-13 cross-build equivalence contract; deterministic
///     within a build because group boundaries depend only on k.
///
/// Like block3.hpp the kernels are templated on the *stored* scalar of the
/// matrix blocks (double, or float for fp32-stored factors); the multivector
/// operand and the accumulation always stay double. Callers pick the tier
/// once per kernel call (never per block) via the UseAvx template flag.
namespace geofem::simd {

/// Hard cap on RHS columns per batch. Keeps the per-row 3*k accumulator of
/// every multi-RHS kernel on the stack and bounds service batch memory; the
/// throughput win saturates well below this (bandwidth amortization is ~flat
/// past k ~ 16).
inline constexpr int kMaxMultiRhs = 32;

namespace mrhs_detail {

/// One block row of acc (+/-)= A * X: acc[c] op= a0*x0[c] + a1*x1[c] + a2*x2[c].
/// `Sign` is +1 (madd) or -1 (msub); the sum itself keeps the ScalarAcc3
/// association, only the final accumulate flips.
template <class T, int Sign>
inline void row_scalar(const T* a, const double* x, double* acc, int k) {
  const double a0 = static_cast<double>(a[0]);
  const double a1 = static_cast<double>(a[1]);
  const double a2 = static_cast<double>(a[2]);
  const double* x0 = x;
  const double* x1 = x + k;
  const double* x2 = x + 2 * k;
  GEOFEM_PRAGMA_SIMD
  for (int c = 0; c < k; ++c) {
    if constexpr (Sign > 0)
      acc[c] += a0 * x0[c] + a1 * x1[c] + a2 * x2[c];
    else
      acc[c] -= a0 * x0[c] + a1 * x1[c] + a2 * x2[c];
  }
}

#if GEOFEM_SIMD_HAS_AVX2
template <class T, int Sign>
inline void row_avx2(const T* a, const double* x, double* acc, int k) {
  const __m256d a0 = _mm256_set1_pd(static_cast<double>(a[0]));
  const __m256d a1 = _mm256_set1_pd(static_cast<double>(a[1]));
  const __m256d a2 = _mm256_set1_pd(static_cast<double>(a[2]));
  const double* x0 = x;
  const double* x1 = x + k;
  const double* x2 = x + 2 * k;
  int c = 0;
  for (; c + 4 <= k; c += 4) {
    __m256d v = _mm256_loadu_pd(acc + c);
    if constexpr (Sign > 0) {
      v = _mm256_fmadd_pd(a0, _mm256_loadu_pd(x0 + c), v);
      v = _mm256_fmadd_pd(a1, _mm256_loadu_pd(x1 + c), v);
      v = _mm256_fmadd_pd(a2, _mm256_loadu_pd(x2 + c), v);
    } else {
      v = _mm256_fnmadd_pd(a0, _mm256_loadu_pd(x0 + c), v);
      v = _mm256_fnmadd_pd(a1, _mm256_loadu_pd(x1 + c), v);
      v = _mm256_fnmadd_pd(a2, _mm256_loadu_pd(x2 + c), v);
    }
    _mm256_storeu_pd(acc + c, v);
  }
  // Scalar tail (columns k - k%4 .. k-1), in column order.
  const double s0 = static_cast<double>(a[0]);
  const double s1 = static_cast<double>(a[1]);
  const double s2 = static_cast<double>(a[2]);
  for (; c < k; ++c) {
    if constexpr (Sign > 0)
      acc[c] += s0 * x0[c] + s1 * x1[c] + s2 * x2[c];
    else
      acc[c] -= s0 * x0[c] + s1 * x1[c] + s2 * x2[c];
  }
}
#endif  // GEOFEM_SIMD_HAS_AVX2

}  // namespace mrhs_detail

/// One row of 3 matrix scalars against a 3-row x k multivector operand:
/// acc[c] += a[0]*x0[c] + a[1]*x1[c] + a[2]*x2[c]. Shared by the 3x3 block
/// kernels below and the DJDS dense-supernode SpMM phase (where `a` is one
/// row slice of the dense block).
template <class T, bool UseAvx>
inline void row3k_madd(const T* a, const double* x, double* acc, int k) {
#if GEOFEM_SIMD_HAS_AVX2
  if constexpr (UseAvx) {
    mrhs_detail::row_avx2<T, +1>(a, x, acc, k);
    return;
  }
#endif
  mrhs_detail::row_scalar<T, +1>(a, x, acc, k);
}

template <class T, bool UseAvx>
inline void row3k_msub(const T* a, const double* x, double* acc, int k) {
#if GEOFEM_SIMD_HAS_AVX2
  if constexpr (UseAvx) {
    mrhs_detail::row_avx2<T, -1>(a, x, acc, k);
    return;
  }
#endif
  mrhs_detail::row_scalar<T, -1>(a, x, acc, k);
}

#if GEOFEM_SIMD_HAS_AVX2
/// Register-resident 3 x (4*KV) multi-RHS accumulator (k = 4*KV columns,
/// KV <= 2 so acc + operand vectors fit the 16 ymm registers). Applies the
/// exact per-lane FMA sequence of row_avx2 — a0, a1, a2 in order — so the
/// result is bit-identical to the generic kernels; the only change is that
/// the accumulator stays in registers across an entire block stream instead
/// of round-tripping the stack on every 3x3 block, and the three operand
/// row-vectors are loaded once per block instead of once per block row.
template <class T, int KV>
struct AvxAccK {
  static_assert(KV >= 1 && KV <= 2, "register budget: k = 4 or 8 only");
  __m256d v[3][KV];

  inline void init_zero() {
    for (int r = 0; r < 3; ++r)
      for (int g = 0; g < KV; ++g) v[r][g] = _mm256_setzero_pd();
  }
  /// Start from an existing y row (the DJDS jagged phase accumulates into y
  /// already holding the diagonal + dense-supernode contributions).
  inline void init_load(const double* y) {
    for (int r = 0; r < 3; ++r)
      for (int g = 0; g < KV; ++g) v[r][g] = _mm256_loadu_pd(y + (r * KV + g) * 4);
  }
  inline void madd(const T* a, const double* x) {
    __m256d xv[3][KV];
    for (int r = 0; r < 3; ++r)
      for (int g = 0; g < KV; ++g) xv[r][g] = _mm256_loadu_pd(x + (r * KV + g) * 4);
    for (int r = 0; r < 3; ++r) {
      const __m256d a0 = _mm256_set1_pd(static_cast<double>(a[3 * r]));
      const __m256d a1 = _mm256_set1_pd(static_cast<double>(a[3 * r + 1]));
      const __m256d a2 = _mm256_set1_pd(static_cast<double>(a[3 * r + 2]));
      for (int g = 0; g < KV; ++g) {
        v[r][g] = _mm256_fmadd_pd(a0, xv[0][g], v[r][g]);
        v[r][g] = _mm256_fmadd_pd(a1, xv[1][g], v[r][g]);
        v[r][g] = _mm256_fmadd_pd(a2, xv[2][g], v[r][g]);
      }
    }
  }
  inline void reduce(double* y) const {
    for (int r = 0; r < 3; ++r)
      for (int g = 0; g < KV; ++g) _mm256_storeu_pd(y + (r * KV + g) * 4, v[r][g]);
  }
};
#endif  // GEOFEM_SIMD_HAS_AVX2

/// acc[br*k + c] += (A * X)[br][c] for a row-major 3x3 block A and a 3-row
/// interleaved operand X (rows of stride k). The multi-RHS ScalarAcc3::madd.
template <class T, bool UseAvx>
inline void b3k_madd(const T* a, const double* x, double* acc, int k) {
  row3k_madd<T, UseAvx>(a, x, acc, k);
  row3k_madd<T, UseAvx>(a + 3, x, acc + k, k);
  row3k_madd<T, UseAvx>(a + 6, x, acc + 2 * k, k);
}

/// acc -= A * X (the substitution-sweep update).
template <class T, bool UseAvx>
inline void b3k_msub(const T* a, const double* x, double* acc, int k) {
  row3k_msub<T, UseAvx>(a, x, acc, k);
  row3k_msub<T, UseAvx>(a + 3, x, acc + k, k);
  row3k_msub<T, UseAvx>(a + 6, x, acc + 2 * k, k);
}

/// z = A * X (assign): the multi-RHS b3_apply, used for (block-)diagonal
/// scaling and the inverse-diagonal application of the BIC sweeps.
template <class T, bool UseAvx>
inline void b3k_apply(const T* a, const double* x, double* z, int k) {
  for (int c = 0; c < 3 * k; ++c) z[c] = 0.0;
  b3k_madd<T, UseAvx>(a, x, z, k);
}

}  // namespace geofem::simd
