#pragma once

#include <cstddef>
#include <new>
#include <vector>

/// geofem::simd — the SIMD kernel layer (DESIGN.md 5f).
///
/// The paper's reordering pipeline (MC/CM-RCM -> DJDS -> PDJDS) exists to
/// hand the Earth Simulator's vector pipes long, stride-regular innermost
/// loops. On modern x86 the direct analog is SIMD lanes: this layer supplies
/// the lane-aware building blocks — a 64-byte-aligned allocator for all hot
/// value/vector storage, 3x3 block micro-kernels, and vectorized jagged-
/// diagonal sweeps — behind a compile-time dispatch selected by the CMake
/// option GEOFEM_SIMD (off | omp | avx2):
///
///   off  (level 0)  plain scalar loops, the historical kernels
///   omp  (level 1)  `#pragma omp simd` on the long innermost loops (default)
///   avx2 (level 2)  hand-tiled AVX2/FMA micro-kernels (-mavx2 -mfma)
///
/// Determinism contract (tested by the `hybrid` ctest label):
///   * Within one build configuration, results are bit-identical across
///     thread counts and halo overlap on/off — lane order is fixed per
///     kernel, and vectorization never reorders accumulation across rows.
///   * Across build configurations (scalar vs omp vs avx2), kernel outputs
///     agree to <= 1e-13 relative — FMA contraction and fixed-tree horizontal
///     sums round differently, so equivalence is tolerance-checked, not
///     bitwise.
namespace geofem::simd {

#ifndef GEOFEM_SIMD_LEVEL
#define GEOFEM_SIMD_LEVEL 1
#endif

/// True when the hand-tiled AVX2/FMA kernels are compiled in (requires both
/// GEOFEM_SIMD=avx2 and a compiler invocation that enables the ISA).
#if GEOFEM_SIMD_LEVEL >= 2 && defined(__AVX2__) && defined(__FMA__)
#define GEOFEM_SIMD_HAS_AVX2 1
#else
#define GEOFEM_SIMD_HAS_AVX2 0
#endif

/// `GEOFEM_PRAGMA_SIMD` marks a loop as safe to vectorize (no loop-carried
/// dependency). Expands to `#pragma omp simd` at level >= 1, nothing at
/// level 0 so the off build keeps the exact historical loop shapes.
#define GEOFEM_SIMD_PRAGMA_(x) _Pragma(#x)
#if GEOFEM_SIMD_LEVEL >= 1 && defined(_OPENMP)
#define GEOFEM_PRAGMA_SIMD GEOFEM_SIMD_PRAGMA_(omp simd)
#define GEOFEM_PRAGMA_SIMD_REDUCTION(expr) GEOFEM_SIMD_PRAGMA_(omp simd reduction(expr))
#else
#define GEOFEM_PRAGMA_SIMD
#define GEOFEM_PRAGMA_SIMD_REDUCTION(expr)
#endif

/// Scalar reference kernels carry these so the in-binary "scalar" baseline
/// (bench_kernels, equivalence tests) is genuinely scalar even at -O3:
/// GEOFEM_NOVEC_FN on the function (GCC), GEOFEM_PRAGMA_NOVEC on the loop
/// (clang).
#if defined(__clang__)
#define GEOFEM_NOVEC_FN __attribute__((noinline))
#define GEOFEM_PRAGMA_NOVEC _Pragma("clang loop vectorize(disable) interleave(disable)")
#elif defined(__GNUC__)
#define GEOFEM_NOVEC_FN \
  __attribute__((noinline, optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#define GEOFEM_PRAGMA_NOVEC
#else
#define GEOFEM_NOVEC_FN
#define GEOFEM_PRAGMA_NOVEC
#endif

/// Kernel implementation tiers, ordered: a build can always run every tier at
/// or below its compile-time ceiling (used by benchmarks/tests to time the
/// scalar baseline inside a SIMD build).
enum class Isa : int {
  kScalar = 0,   ///< plain scalar loops (reference kernels)
  kOmpSimd = 1,  ///< `#pragma omp simd` portable vectorization
  kAvx2 = 2,     ///< hand-tiled AVX2/FMA intrinsics
};

/// The build's ceiling — what GEOFEM_SIMD selected at configure time.
constexpr Isa compiled_isa() {
#if GEOFEM_SIMD_HAS_AVX2
  return Isa::kAvx2;
#elif GEOFEM_SIMD_LEVEL >= 1
  return Isa::kOmpSimd;
#else
  return Isa::kScalar;
#endif
}

/// SIMD lanes (doubles per vector op) a tier targets on this build.
constexpr int lane_width(Isa isa) {
  if (isa == Isa::kScalar) return 1;
#if defined(__AVX2__)
  return 4;  // 256-bit registers
#else
  return isa == Isa::kAvx2 ? 4 : 2;  // baseline x86-64: 128-bit SSE2
#endif
}

const char* isa_name(Isa isa);

/// Tier the kernels dispatch on for the calling thread: the compile-time
/// ceiling unless an IsaScope lowered it. Kernels read this once per call
/// (outside their parallel regions), so a scope set on the calling thread
/// governs the whole operation.
Isa active();

/// Name of active() — "scalar", "omp-simd" or "avx2". This is what the obs
/// gauges and every bench JSON record, so every number is tagged with the
/// kernel path that produced it.
const char* active_isa();
inline int lane_width() { return lane_width(active()); }

/// RAII downgrade of the dispatch tier on the calling thread (requests above
/// the compiled ceiling are clamped). Benchmarks use it to time the scalar
/// baseline in the same binary; tests use it for SIMD-vs-scalar equivalence.
class IsaScope {
 public:
  explicit IsaScope(Isa isa);
  ~IsaScope();
  IsaScope(const IsaScope&) = delete;
  IsaScope& operator=(const IsaScope&) = delete;

 private:
  Isa prev_;
};

/// Minimal allocator giving 64-byte alignment — one cache line, and enough
/// for any vector ISA up to AVX-512. All hot value arrays (BlockCSR::val,
/// DJDS values/diagonals, solver vectors) use it so vector loads never split
/// cache lines and aligned intrinsics are always legal on array bases.
template <class T>
struct AlignedAllocator {
  using value_type = T;
  static constexpr std::size_t kAlign = 64;

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t{kAlign}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kAlign});
  }
  template <class U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

template <class T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace geofem::simd
