#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "simd/jagged.hpp"
#include "simd/simd.hpp"
#include "sparse/dense.hpp"

/// Lane-batched 3x3 LU solves — the Fig 22 trick. The PDJDS substitution
/// sweeps end each chunk with one small dense solve per ordering unit; for
/// singleton units these are 3x3 solves on CONSECUTIVE rows, and the paper's
/// size-sorted batching exists precisely so a batch of equal-size solves can
/// vectorize across the batch instead of running one tiny solve at a time.
///
/// PackedLU3T is the lane mirror, parameterized on the stored scalar like
/// PackedJaggedT (4 double lanes, 8 float lanes): groups of consecutive
/// singleton units, their LU coefficients lane-transposed, and the
/// partial-pivot row swaps pre-lowered to per-lane blend masks (for a 3x3
/// pivoted solve the swap sequence is fully described by piv0 == 1,
/// piv0 == 2 and piv1 == 2). The double batched solve replays the exact
/// per-element pivoted-LU arithmetic of sparse::DenseLU::solve in every
/// lane, so it sits inside the cross-tier tolerance contract (<= 1e-13
/// relative, DESIGN.md 5f) like every other AVX2 kernel; the float form
/// replays the same sequence in fp32 and sits in the fp32 tolerance band.
namespace geofem::simd {

/// Groups of up to kLanes lane-parallel 3x3 pivoted-LU solves on consecutive
/// rows, stored at precision T.
template <class T>
struct PackedLU3T {
  static_assert(std::is_same_v<T, double> || std::is_same_v<T, float>);
  static constexpr int kLanes = std::is_same_v<T, float> ? 8 : 4;
  /// 12*kLanes scalars per group: 12 lane-vectors (coefficient m of lane l at
  /// [12*kLanes*g + kLanes*m + l]) in the order l10 l20 l21 u00 u01 u02 u11
  /// u12 u22 followed by the three pivot blend masks (all-ones / all-zeros
  /// bits — NaN-patterned when reinterpreted, so never arithmetic operands).
  static constexpr int kGroupCoefs = 12 * kLanes;
  aligned_vector<T> coef;
  std::vector<int> start;  ///< first (block-)row of each group
  std::vector<int> cnt;    ///< real units in each group (1..kLanes)

  [[nodiscard]] bool empty() const { return start.empty(); }
  [[nodiscard]] std::size_t memory_bytes() const {
    return coef.size() * sizeof(T) + (start.size() + cnt.size()) * sizeof(int);
  }
};

using PackedLU3 = PackedLU3T<double>;

namespace detail {
template <class T>
inline T all_ones_bits() {
  if constexpr (std::is_same_v<T, float>)
    return std::bit_cast<float>(~std::uint32_t{0});
  else
    return std::bit_cast<double>(~std::uint64_t{0});
}
}  // namespace detail

/// Append one group of `n` (1..kLanes) consecutive singleton units starting
/// at block-row `row`. `lus[l]` must be 3x3 factors, narrowed to T as they
/// are packed (fp32 callers pre-check the factors fit float —
/// precond::narrow_or_throw — so overflow is a factorization failure, not an
/// inf lane). Unused lanes get the identity factor (divisions by 1, masks
/// off) so they compute harmlessly.
template <class T>
inline void pack_lu3_group(PackedLU3T<T>& p, const sparse::DenseLU* const lus[], int n,
                           int row) {
  constexpr int kL = PackedLU3T<T>::kLanes;
  const T on = detail::all_ones_bits<T>();
  p.start.push_back(row);
  p.cnt.push_back(n);
  const std::size_t base = p.coef.size();
  p.coef.resize(base + PackedLU3T<T>::kGroupCoefs, T(0));
  T* c = p.coef.data() + base;
  for (int l = 0; l < kL; ++l) {
    if (l >= n) {
      c[kL * 3 + l] = c[kL * 6 + l] = c[kL * 8 + l] = T(1);  // identity U diagonal
      continue;
    }
    const double* f = lus[l]->factor();
    const auto& piv = lus[l]->pivots();
    c[kL * 0 + l] = static_cast<T>(f[3]);  // l10
    c[kL * 1 + l] = static_cast<T>(f[6]);  // l20
    c[kL * 2 + l] = static_cast<T>(f[7]);  // l21
    c[kL * 3 + l] = static_cast<T>(f[0]);  // u00
    c[kL * 4 + l] = static_cast<T>(f[1]);  // u01
    c[kL * 5 + l] = static_cast<T>(f[2]);  // u02
    c[kL * 6 + l] = static_cast<T>(f[4]);  // u11
    c[kL * 7 + l] = static_cast<T>(f[5]);  // u12
    c[kL * 8 + l] = static_cast<T>(f[8]);  // u22
    if (piv[0] == 1) c[kL * 9 + l] = on;
    if (piv[0] == 2) c[kL * 10 + l] = on;
    if (piv[1] == 2) c[kL * 11 + l] = on;
  }
}

#if GEOFEM_SIMD_HAS_AVX2

namespace detail {

/// Inverse of transpose_3x4: three contiguous vectors (12 doubles, 4 rows of
/// 3 components) into per-component lane vectors.
inline void untranspose_3x4(__m256d in0, __m256d in1, __m256d in2, __m256d& x0, __m256d& x1,
                            __m256d& x2) {
  const __m256d pa0 = _mm256_permute4x64_pd(in0, _MM_SHUFFLE(0, 0, 3, 0));
  const __m256d pb0 = _mm256_permute4x64_pd(in1, _MM_SHUFFLE(0, 2, 0, 0));
  const __m256d pc0 = _mm256_permute4x64_pd(in2, _MM_SHUFFLE(1, 0, 0, 0));
  x0 = _mm256_blend_pd(_mm256_blend_pd(pa0, pb0, 0x4), pc0, 0x8);
  const __m256d pa1 = _mm256_permute4x64_pd(in0, _MM_SHUFFLE(0, 0, 0, 1));
  const __m256d pb1 = _mm256_permute4x64_pd(in1, _MM_SHUFFLE(0, 3, 0, 0));
  const __m256d pc1 = _mm256_permute4x64_pd(in2, _MM_SHUFFLE(2, 0, 0, 0));
  x1 = _mm256_blend_pd(_mm256_blend_pd(pa1, pb1, 0x6), pc1, 0x8);
  const __m256d pa2 = _mm256_permute4x64_pd(in0, _MM_SHUFFLE(0, 0, 0, 2));
  const __m256d pb2 = _mm256_permute4x64_pd(in1, _MM_SHUFFLE(0, 0, 1, 0));
  const __m256d pc2 = _mm256_permute4x64_pd(in2, _MM_SHUFFLE(3, 0, 0, 0));
  x2 = _mm256_blend_pd(_mm256_blend_pd(pa2, pb2, 0x2), pc2, 0xC);
}

/// Inverse of transpose_3x8: 24 contiguous floats (8 rows of 3 components)
/// into per-component lane vectors.
inline void untranspose_3x8(__m256 in0, __m256 in1, __m256 in2, __m256& x0, __m256& x1,
                            __m256& x2) {
  // x0 lanes: in0[0] in0[3] in0[6] in1[1] in1[4] in1[7] in2[2] in2[5]
  const __m256i a0 = _mm256_setr_epi32(0, 3, 6, 0, 0, 0, 0, 0);
  const __m256i b0 = _mm256_setr_epi32(0, 0, 0, 1, 4, 7, 0, 0);
  const __m256i c0 = _mm256_setr_epi32(0, 0, 0, 0, 0, 0, 2, 5);
  x0 = _mm256_blend_ps(_mm256_blend_ps(_mm256_permutevar8x32_ps(in0, a0),
                                       _mm256_permutevar8x32_ps(in1, b0), 0x38),
                       _mm256_permutevar8x32_ps(in2, c0), 0xC0);
  // x1 lanes: in0[1] in0[4] in0[7] in1[2] in1[5] in2[0] in2[3] in2[6]
  const __m256i a1 = _mm256_setr_epi32(1, 4, 7, 0, 0, 0, 0, 0);
  const __m256i b1 = _mm256_setr_epi32(0, 0, 0, 2, 5, 0, 0, 0);
  const __m256i c1 = _mm256_setr_epi32(0, 0, 0, 0, 0, 0, 3, 6);
  x1 = _mm256_blend_ps(_mm256_blend_ps(_mm256_permutevar8x32_ps(in0, a1),
                                       _mm256_permutevar8x32_ps(in1, b1), 0x18),
                       _mm256_permutevar8x32_ps(in2, c1), 0xE0);
  // x2 lanes: in0[2] in0[5] in1[0] in1[3] in1[6] in2[1] in2[4] in2[7]
  const __m256i a2 = _mm256_setr_epi32(2, 5, 0, 0, 0, 0, 0, 0);
  const __m256i b2 = _mm256_setr_epi32(0, 0, 0, 3, 6, 0, 0, 0);
  const __m256i c2 = _mm256_setr_epi32(0, 0, 0, 0, 0, 1, 4, 7);
  x2 = _mm256_blend_ps(_mm256_blend_ps(_mm256_permutevar8x32_ps(in0, a2),
                                       _mm256_permutevar8x32_ps(in1, b2), 0x1C),
                       _mm256_permutevar8x32_ps(in2, c2), 0xE0);
}

/// The pivoted 3x3 solve, all four lanes at once. Mirrors DenseLU::solve:
/// swap / eliminate column 0, swap / eliminate column 1, back-substitute.
inline void lu3_solve_lanes(const double* c, __m256d& x0, __m256d& x1, __m256d& x2) {
  const __m256d mA = _mm256_load_pd(c + 4 * 9);   // piv0 == 1
  const __m256d mB = _mm256_load_pd(c + 4 * 10);  // piv0 == 2
  const __m256d mC = _mm256_load_pd(c + 4 * 11);  // piv1 == 2
  __m256d t = _mm256_blendv_pd(_mm256_blendv_pd(x0, x1, mA), x2, mB);
  x1 = _mm256_blendv_pd(x1, x0, mA);
  x2 = _mm256_blendv_pd(x2, x0, mB);
  x0 = t;
  x1 = _mm256_fnmadd_pd(_mm256_load_pd(c + 4 * 0), x0, x1);  // l10
  x2 = _mm256_fnmadd_pd(_mm256_load_pd(c + 4 * 1), x0, x2);  // l20
  t = _mm256_blendv_pd(x1, x2, mC);
  x2 = _mm256_blendv_pd(x2, x1, mC);
  x1 = t;
  x2 = _mm256_fnmadd_pd(_mm256_load_pd(c + 4 * 2), x1, x2);  // l21
  x2 = _mm256_div_pd(x2, _mm256_load_pd(c + 4 * 8));         // /u22
  x0 = _mm256_fnmadd_pd(_mm256_load_pd(c + 4 * 5), x2, x0);  // -u02*x2
  x1 = _mm256_fnmadd_pd(_mm256_load_pd(c + 4 * 7), x2, x1);  // -u12*x2
  x1 = _mm256_div_pd(x1, _mm256_load_pd(c + 4 * 6));         // /u11
  x0 = _mm256_fnmadd_pd(_mm256_load_pd(c + 4 * 4), x1, x0);  // -u01*x1
  x0 = _mm256_div_pd(x0, _mm256_load_pd(c + 4 * 3));         // /u00
}

/// fp32 form: identical swap/eliminate/back-substitute sequence, eight lanes.
inline void lu3_solve_lanes(const float* c, __m256& x0, __m256& x1, __m256& x2) {
  const __m256 mA = _mm256_load_ps(c + 8 * 9);   // piv0 == 1
  const __m256 mB = _mm256_load_ps(c + 8 * 10);  // piv0 == 2
  const __m256 mC = _mm256_load_ps(c + 8 * 11);  // piv1 == 2
  __m256 t = _mm256_blendv_ps(_mm256_blendv_ps(x0, x1, mA), x2, mB);
  x1 = _mm256_blendv_ps(x1, x0, mA);
  x2 = _mm256_blendv_ps(x2, x0, mB);
  x0 = t;
  x1 = _mm256_fnmadd_ps(_mm256_load_ps(c + 8 * 0), x0, x1);  // l10
  x2 = _mm256_fnmadd_ps(_mm256_load_ps(c + 8 * 1), x0, x2);  // l20
  t = _mm256_blendv_ps(x1, x2, mC);
  x2 = _mm256_blendv_ps(x2, x1, mC);
  x1 = t;
  x2 = _mm256_fnmadd_ps(_mm256_load_ps(c + 8 * 2), x1, x2);  // l21
  x2 = _mm256_div_ps(x2, _mm256_load_ps(c + 8 * 8));         // /u22
  x0 = _mm256_fnmadd_ps(_mm256_load_ps(c + 8 * 5), x2, x0);  // -u02*x2
  x1 = _mm256_fnmadd_ps(_mm256_load_ps(c + 8 * 7), x2, x1);  // -u12*x2
  x1 = _mm256_div_ps(x1, _mm256_load_ps(c + 8 * 6));         // /u11
  x0 = _mm256_fnmadd_ps(_mm256_load_ps(c + 8 * 4), x1, x0);  // -u01*x1
  x0 = _mm256_div_ps(x0, _mm256_load_ps(c + 8 * 3));         // /u00
}

}  // namespace detail

/// In-place batched solve: y[3*start[g] ..] := A^-1 y for every packed unit
/// (the forward-substitution tail of a DJDSBIC chunk).
inline void solve_lu3_avx2(const PackedLU3& p, double* y) {
  const int ng = static_cast<int>(p.start.size());
  for (int g = 0; g < ng; ++g) {
    double* yd = y + 3 * static_cast<std::size_t>(p.start[static_cast<std::size_t>(g)]);
    const double* c = p.coef.data() + 48 * static_cast<std::size_t>(g);
    const int n = p.cnt[static_cast<std::size_t>(g)];
    __m256d in0, in1, in2;
    if (n == PackedLU3::kLanes) {
      in0 = _mm256_loadu_pd(yd);
      in1 = _mm256_loadu_pd(yd + 4);
      in2 = _mm256_loadu_pd(yd + 8);
    } else {
      const int nv = 3 * n;
      in0 = _mm256_maskload_pd(yd, detail::tail_mask(std::min(nv, 4)));
      in1 = _mm256_maskload_pd(yd + 4, detail::tail_mask(std::clamp(nv - 4, 0, 4)));
      in2 = _mm256_maskload_pd(yd + 8, detail::tail_mask(std::clamp(nv - 8, 0, 4)));
    }
    __m256d x0, x1, x2;
    detail::untranspose_3x4(in0, in1, in2, x0, x1, x2);
    detail::lu3_solve_lanes(c, x0, x1, x2);
    __m256d o0, o1, o2;
    detail::transpose_3x4(x0, x1, x2, o0, o1, o2);
    if (n == PackedLU3::kLanes) {
      _mm256_storeu_pd(yd, o0);
      _mm256_storeu_pd(yd + 4, o1);
      _mm256_storeu_pd(yd + 8, o2);
    } else {
      const int nv = 3 * n;
      detail::apply_vec_masked<Mode::kAssign>(yd, o0, std::min(nv, 4));
      detail::apply_vec_masked<Mode::kAssign>(yd + 4, o1, std::clamp(nv - 4, 0, 4));
      detail::apply_vec_masked<Mode::kAssign>(yd + 8, o2, std::clamp(nv - 8, 0, 4));
    }
  }
}

/// fp32 in-place batched solve over an fp32 staging vector (8 units a group).
inline void solve_lu3_avx2(const PackedLU3T<float>& p, float* y) {
  constexpr int kL = PackedLU3T<float>::kLanes;
  const int ng = static_cast<int>(p.start.size());
  for (int g = 0; g < ng; ++g) {
    float* yd = y + 3 * static_cast<std::size_t>(p.start[static_cast<std::size_t>(g)]);
    const float* c = p.coef.data() + 96 * static_cast<std::size_t>(g);
    const int n = p.cnt[static_cast<std::size_t>(g)];
    __m256 in0, in1, in2;
    if (n == kL) {
      in0 = _mm256_loadu_ps(yd);
      in1 = _mm256_loadu_ps(yd + 8);
      in2 = _mm256_loadu_ps(yd + 16);
    } else {
      const int nv = 3 * n;
      in0 = _mm256_maskload_ps(yd, detail::tail_mask32(std::min(nv, 8)));
      in1 = _mm256_maskload_ps(yd + 8, detail::tail_mask32(std::clamp(nv - 8, 0, 8)));
      in2 = _mm256_maskload_ps(yd + 16, detail::tail_mask32(std::clamp(nv - 16, 0, 8)));
    }
    __m256 x0, x1, x2;
    detail::untranspose_3x8(in0, in1, in2, x0, x1, x2);
    detail::lu3_solve_lanes(c, x0, x1, x2);
    __m256 o0, o1, o2;
    detail::transpose_3x8(x0, x1, x2, o0, o1, o2);
    if (n == kL) {
      _mm256_storeu_ps(yd, o0);
      _mm256_storeu_ps(yd + 8, o1);
      _mm256_storeu_ps(yd + 16, o2);
    } else {
      const int nv = 3 * n;
      detail::apply_vec_masked<Mode::kAssign>(yd, o0, std::min(nv, 8));
      detail::apply_vec_masked<Mode::kAssign>(yd + 8, o1, std::clamp(nv - 8, 0, 8));
      detail::apply_vec_masked<Mode::kAssign>(yd + 16, o2, std::clamp(nv - 16, 0, 8));
    }
  }
}

/// Batched solve-and-subtract: z[rows] -= A^-1 w[rows] for every packed unit
/// (the backward-substitution tail; `w` is the per-chunk staging vector and
/// is not written back).
inline void solve_lu3_sub_avx2(const PackedLU3& p, const double* w, double* z) {
  const int ng = static_cast<int>(p.start.size());
  for (int g = 0; g < ng; ++g) {
    const std::size_t off = 3 * static_cast<std::size_t>(p.start[static_cast<std::size_t>(g)]);
    const double* wd = w + off;
    double* zd = z + off;
    const double* c = p.coef.data() + 48 * static_cast<std::size_t>(g);
    const int n = p.cnt[static_cast<std::size_t>(g)];
    __m256d in0, in1, in2;
    if (n == PackedLU3::kLanes) {
      in0 = _mm256_loadu_pd(wd);
      in1 = _mm256_loadu_pd(wd + 4);
      in2 = _mm256_loadu_pd(wd + 8);
    } else {
      const int nv = 3 * n;
      in0 = _mm256_maskload_pd(wd, detail::tail_mask(std::min(nv, 4)));
      in1 = _mm256_maskload_pd(wd + 4, detail::tail_mask(std::clamp(nv - 4, 0, 4)));
      in2 = _mm256_maskload_pd(wd + 8, detail::tail_mask(std::clamp(nv - 8, 0, 4)));
    }
    __m256d x0, x1, x2;
    detail::untranspose_3x4(in0, in1, in2, x0, x1, x2);
    detail::lu3_solve_lanes(c, x0, x1, x2);
    __m256d o0, o1, o2;
    detail::transpose_3x4(x0, x1, x2, o0, o1, o2);
    if (n == PackedLU3::kLanes) {
      detail::apply_vec<Mode::kSub>(zd, o0);
      detail::apply_vec<Mode::kSub>(zd + 4, o1);
      detail::apply_vec<Mode::kSub>(zd + 8, o2);
    } else {
      const int nv = 3 * n;
      detail::apply_vec_masked<Mode::kSub>(zd, o0, std::min(nv, 4));
      detail::apply_vec_masked<Mode::kSub>(zd + 4, o1, std::clamp(nv - 4, 0, 4));
      detail::apply_vec_masked<Mode::kSub>(zd + 8, o2, std::clamp(nv - 8, 0, 4));
    }
  }
}

/// fp32 batched solve-and-subtract over fp32 staging vectors.
inline void solve_lu3_sub_avx2(const PackedLU3T<float>& p, const float* w, float* z) {
  constexpr int kL = PackedLU3T<float>::kLanes;
  const int ng = static_cast<int>(p.start.size());
  for (int g = 0; g < ng; ++g) {
    const std::size_t off = 3 * static_cast<std::size_t>(p.start[static_cast<std::size_t>(g)]);
    const float* wd = w + off;
    float* zd = z + off;
    const float* c = p.coef.data() + 96 * static_cast<std::size_t>(g);
    const int n = p.cnt[static_cast<std::size_t>(g)];
    __m256 in0, in1, in2;
    if (n == kL) {
      in0 = _mm256_loadu_ps(wd);
      in1 = _mm256_loadu_ps(wd + 8);
      in2 = _mm256_loadu_ps(wd + 16);
    } else {
      const int nv = 3 * n;
      in0 = _mm256_maskload_ps(wd, detail::tail_mask32(std::min(nv, 8)));
      in1 = _mm256_maskload_ps(wd + 8, detail::tail_mask32(std::clamp(nv - 8, 0, 8)));
      in2 = _mm256_maskload_ps(wd + 16, detail::tail_mask32(std::clamp(nv - 16, 0, 8)));
    }
    __m256 x0, x1, x2;
    detail::untranspose_3x8(in0, in1, in2, x0, x1, x2);
    detail::lu3_solve_lanes(c, x0, x1, x2);
    __m256 o0, o1, o2;
    detail::transpose_3x8(x0, x1, x2, o0, o1, o2);
    if (n == kL) {
      detail::apply_vec<Mode::kSub>(zd, o0);
      detail::apply_vec<Mode::kSub>(zd + 8, o1);
      detail::apply_vec<Mode::kSub>(zd + 16, o2);
    } else {
      const int nv = 3 * n;
      detail::apply_vec_masked<Mode::kSub>(zd, o0, std::min(nv, 8));
      detail::apply_vec_masked<Mode::kSub>(zd + 8, o1, std::clamp(nv - 8, 0, 8));
      detail::apply_vec_masked<Mode::kSub>(zd + 16, o2, std::clamp(nv - 16, 0, 8));
    }
  }
}

#endif  // GEOFEM_SIMD_HAS_AVX2

}  // namespace geofem::simd
