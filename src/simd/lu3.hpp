#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "simd/jagged.hpp"
#include "simd/simd.hpp"
#include "sparse/dense.hpp"

/// Lane-batched 3x3 LU solves — the Fig 22 trick. The PDJDS substitution
/// sweeps end each chunk with one small dense solve per ordering unit; for
/// singleton units these are 3x3 solves on CONSECUTIVE rows, and the paper's
/// size-sorted batching exists precisely so a batch of equal-size solves can
/// vectorize across the batch instead of running one tiny solve at a time.
///
/// PackedLU3 is the lane mirror: groups of 4 consecutive singleton units,
/// their LU coefficients lane-transposed, and the partial-pivot row swaps
/// pre-lowered to per-lane blend masks (for a 3x3 pivoted solve the swap
/// sequence is fully described by piv0 == 1, piv0 == 2 and piv1 == 2). The
/// batched solve replays the exact per-element pivoted-LU arithmetic of
/// sparse::DenseLU::solve in every lane, so it sits inside the cross-tier
/// tolerance contract (<= 1e-13 relative, DESIGN.md 5f) like every other
/// AVX2 kernel.
namespace geofem::simd {

/// Groups of up to 4 lane-parallel 3x3 pivoted-LU solves on consecutive rows.
struct PackedLU3 {
  static constexpr int kLanes = 4;
  /// 48 doubles per group: 12 lane-vectors (coefficient m of lane l at
  /// [48g + 4m + l]) in the order l10 l20 l21 u00 u01 u02 u11 u12 u22
  /// followed by the three pivot blend masks (all-ones / all-zeros bits).
  aligned_vector<double> coef;
  std::vector<int> start;  ///< first (block-)row of each group
  std::vector<int> cnt;    ///< real units in each group (1..4)

  [[nodiscard]] bool empty() const { return start.empty(); }
  [[nodiscard]] std::size_t memory_bytes() const {
    return coef.size() * sizeof(double) + (start.size() + cnt.size()) * sizeof(int);
  }
};

/// Append one group of `n` (1..4) consecutive singleton units starting at
/// block-row `row`. `lus[l]` must be 3x3 factors. Unused lanes get the
/// identity factor (divisions by 1, masks off) so they compute harmlessly.
inline void pack_lu3_group(PackedLU3& p, const sparse::DenseLU* const lus[], int n, int row) {
  const double on = std::bit_cast<double>(~std::uint64_t{0});
  p.start.push_back(row);
  p.cnt.push_back(n);
  const std::size_t base = p.coef.size();
  p.coef.resize(base + 48, 0.0);
  double* c = p.coef.data() + base;
  for (int l = 0; l < PackedLU3::kLanes; ++l) {
    if (l >= n) {
      c[4 * 3 + l] = c[4 * 6 + l] = c[4 * 8 + l] = 1.0;  // identity U diagonal
      continue;
    }
    const double* f = lus[l]->factor();
    const auto& piv = lus[l]->pivots();
    c[4 * 0 + l] = f[3];  // l10
    c[4 * 1 + l] = f[6];  // l20
    c[4 * 2 + l] = f[7];  // l21
    c[4 * 3 + l] = f[0];  // u00
    c[4 * 4 + l] = f[1];  // u01
    c[4 * 5 + l] = f[2];  // u02
    c[4 * 6 + l] = f[4];  // u11
    c[4 * 7 + l] = f[5];  // u12
    c[4 * 8 + l] = f[8];  // u22
    if (piv[0] == 1) c[4 * 9 + l] = on;
    if (piv[0] == 2) c[4 * 10 + l] = on;
    if (piv[1] == 2) c[4 * 11 + l] = on;
  }
}

#if GEOFEM_SIMD_HAS_AVX2

namespace detail {

/// Inverse of transpose_3x4: three contiguous vectors (12 doubles, 4 rows of
/// 3 components) into per-component lane vectors.
inline void untranspose_3x4(__m256d in0, __m256d in1, __m256d in2, __m256d& x0, __m256d& x1,
                            __m256d& x2) {
  const __m256d pa0 = _mm256_permute4x64_pd(in0, _MM_SHUFFLE(0, 0, 3, 0));
  const __m256d pb0 = _mm256_permute4x64_pd(in1, _MM_SHUFFLE(0, 2, 0, 0));
  const __m256d pc0 = _mm256_permute4x64_pd(in2, _MM_SHUFFLE(1, 0, 0, 0));
  x0 = _mm256_blend_pd(_mm256_blend_pd(pa0, pb0, 0x4), pc0, 0x8);
  const __m256d pa1 = _mm256_permute4x64_pd(in0, _MM_SHUFFLE(0, 0, 0, 1));
  const __m256d pb1 = _mm256_permute4x64_pd(in1, _MM_SHUFFLE(0, 3, 0, 0));
  const __m256d pc1 = _mm256_permute4x64_pd(in2, _MM_SHUFFLE(2, 0, 0, 0));
  x1 = _mm256_blend_pd(_mm256_blend_pd(pa1, pb1, 0x6), pc1, 0x8);
  const __m256d pa2 = _mm256_permute4x64_pd(in0, _MM_SHUFFLE(0, 0, 0, 2));
  const __m256d pb2 = _mm256_permute4x64_pd(in1, _MM_SHUFFLE(0, 0, 1, 0));
  const __m256d pc2 = _mm256_permute4x64_pd(in2, _MM_SHUFFLE(3, 0, 0, 0));
  x2 = _mm256_blend_pd(_mm256_blend_pd(pa2, pb2, 0x2), pc2, 0xC);
}

/// The pivoted 3x3 solve, all four lanes at once. Mirrors DenseLU::solve:
/// swap / eliminate column 0, swap / eliminate column 1, back-substitute.
inline void lu3_solve_lanes(const double* c, __m256d& x0, __m256d& x1, __m256d& x2) {
  const __m256d mA = _mm256_load_pd(c + 4 * 9);   // piv0 == 1
  const __m256d mB = _mm256_load_pd(c + 4 * 10);  // piv0 == 2
  const __m256d mC = _mm256_load_pd(c + 4 * 11);  // piv1 == 2
  __m256d t = _mm256_blendv_pd(_mm256_blendv_pd(x0, x1, mA), x2, mB);
  x1 = _mm256_blendv_pd(x1, x0, mA);
  x2 = _mm256_blendv_pd(x2, x0, mB);
  x0 = t;
  x1 = _mm256_fnmadd_pd(_mm256_load_pd(c + 4 * 0), x0, x1);  // l10
  x2 = _mm256_fnmadd_pd(_mm256_load_pd(c + 4 * 1), x0, x2);  // l20
  t = _mm256_blendv_pd(x1, x2, mC);
  x2 = _mm256_blendv_pd(x2, x1, mC);
  x1 = t;
  x2 = _mm256_fnmadd_pd(_mm256_load_pd(c + 4 * 2), x1, x2);  // l21
  x2 = _mm256_div_pd(x2, _mm256_load_pd(c + 4 * 8));         // /u22
  x0 = _mm256_fnmadd_pd(_mm256_load_pd(c + 4 * 5), x2, x0);  // -u02*x2
  x1 = _mm256_fnmadd_pd(_mm256_load_pd(c + 4 * 7), x2, x1);  // -u12*x2
  x1 = _mm256_div_pd(x1, _mm256_load_pd(c + 4 * 6));         // /u11
  x0 = _mm256_fnmadd_pd(_mm256_load_pd(c + 4 * 4), x1, x0);  // -u01*x1
  x0 = _mm256_div_pd(x0, _mm256_load_pd(c + 4 * 3));         // /u00
}

}  // namespace detail

/// In-place batched solve: y[3*start[g] ..] := A^-1 y for every packed unit
/// (the forward-substitution tail of a DJDSBIC chunk).
inline void solve_lu3_avx2(const PackedLU3& p, double* y) {
  const int ng = static_cast<int>(p.start.size());
  for (int g = 0; g < ng; ++g) {
    double* yd = y + 3 * static_cast<std::size_t>(p.start[static_cast<std::size_t>(g)]);
    const double* c = p.coef.data() + 48 * static_cast<std::size_t>(g);
    const int n = p.cnt[static_cast<std::size_t>(g)];
    __m256d in0, in1, in2;
    if (n == PackedLU3::kLanes) {
      in0 = _mm256_loadu_pd(yd);
      in1 = _mm256_loadu_pd(yd + 4);
      in2 = _mm256_loadu_pd(yd + 8);
    } else {
      const int nv = 3 * n;
      in0 = _mm256_maskload_pd(yd, detail::tail_mask(std::min(nv, 4)));
      in1 = _mm256_maskload_pd(yd + 4, detail::tail_mask(std::clamp(nv - 4, 0, 4)));
      in2 = _mm256_maskload_pd(yd + 8, detail::tail_mask(std::clamp(nv - 8, 0, 4)));
    }
    __m256d x0, x1, x2;
    detail::untranspose_3x4(in0, in1, in2, x0, x1, x2);
    detail::lu3_solve_lanes(c, x0, x1, x2);
    __m256d o0, o1, o2;
    detail::transpose_3x4(x0, x1, x2, o0, o1, o2);
    if (n == PackedLU3::kLanes) {
      _mm256_storeu_pd(yd, o0);
      _mm256_storeu_pd(yd + 4, o1);
      _mm256_storeu_pd(yd + 8, o2);
    } else {
      const int nv = 3 * n;
      detail::apply_vec_masked<Mode::kAssign>(yd, o0, std::min(nv, 4));
      detail::apply_vec_masked<Mode::kAssign>(yd + 4, o1, std::clamp(nv - 4, 0, 4));
      detail::apply_vec_masked<Mode::kAssign>(yd + 8, o2, std::clamp(nv - 8, 0, 4));
    }
  }
}

/// Batched solve-and-subtract: z[rows] -= A^-1 w[rows] for every packed unit
/// (the backward-substitution tail; `w` is the per-chunk staging vector and
/// is not written back).
inline void solve_lu3_sub_avx2(const PackedLU3& p, const double* w, double* z) {
  const int ng = static_cast<int>(p.start.size());
  for (int g = 0; g < ng; ++g) {
    const std::size_t off = 3 * static_cast<std::size_t>(p.start[static_cast<std::size_t>(g)]);
    const double* wd = w + off;
    double* zd = z + off;
    const double* c = p.coef.data() + 48 * static_cast<std::size_t>(g);
    const int n = p.cnt[static_cast<std::size_t>(g)];
    __m256d in0, in1, in2;
    if (n == PackedLU3::kLanes) {
      in0 = _mm256_loadu_pd(wd);
      in1 = _mm256_loadu_pd(wd + 4);
      in2 = _mm256_loadu_pd(wd + 8);
    } else {
      const int nv = 3 * n;
      in0 = _mm256_maskload_pd(wd, detail::tail_mask(std::min(nv, 4)));
      in1 = _mm256_maskload_pd(wd + 4, detail::tail_mask(std::clamp(nv - 4, 0, 4)));
      in2 = _mm256_maskload_pd(wd + 8, detail::tail_mask(std::clamp(nv - 8, 0, 4)));
    }
    __m256d x0, x1, x2;
    detail::untranspose_3x4(in0, in1, in2, x0, x1, x2);
    detail::lu3_solve_lanes(c, x0, x1, x2);
    __m256d o0, o1, o2;
    detail::transpose_3x4(x0, x1, x2, o0, o1, o2);
    if (n == PackedLU3::kLanes) {
      detail::apply_vec<Mode::kSub>(zd, o0);
      detail::apply_vec<Mode::kSub>(zd + 4, o1);
      detail::apply_vec<Mode::kSub>(zd + 8, o2);
    } else {
      const int nv = 3 * n;
      detail::apply_vec_masked<Mode::kSub>(zd, o0, std::min(nv, 4));
      detail::apply_vec_masked<Mode::kSub>(zd + 4, o1, std::clamp(nv - 4, 0, 4));
      detail::apply_vec_masked<Mode::kSub>(zd + 8, o2, std::clamp(nv - 8, 0, 4));
    }
  }
}

#endif  // GEOFEM_SIMD_HAS_AVX2

}  // namespace geofem::simd
