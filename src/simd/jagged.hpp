#pragma once

#include <algorithm>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "simd/simd.hpp"

#if GEOFEM_SIMD_HAS_AVX2
#include <immintrin.h>
#endif

/// Vectorized jagged-diagonal sweeps — the innermost loops the whole
/// MC/CM-RCM -> DJDS reordering pipeline exists to create. A jagged diagonal
/// visits one 3x3 block per output row, rows contiguous from the chunk base:
///
///   for t in [jd_ptr[d], jd_ptr[d+1]):
///     y[t - s] (op)= val[t] * x[item[t]]        (3x3 block * 3-vector)
///
/// The ES vector pipes consumed this directly; AVX2 wants the operands
/// lane-transposed. PackedJaggedT is that mirror, parameterized on the stored
/// scalar (DESIGN.md §5i): entries are grouped one SIMD register of rows at a
/// time — 4 lanes for double, 8 for float, so fp32 storage doubles both the
/// lane width and the blocks per cache line — the 9 block coefficients are
/// stored as 9 lane-vectors (9*kLanes scalars per group, 64-byte aligned) and
/// the column indices are pre-multiplied by 3 for direct gather addressing.
/// Ragged tails are padded to the lane width *here*, not in the Jagged
/// structure itself — zero-valued blocks gathering x[0..2] — so the paper's
/// dummy-percent accounting (Fig. 10) is unchanged by the SIMD layer.
///
/// The fp32 sweeps run entirely in float (values, staging vector, FMA): the
/// caller (precond::DJDSBIC) narrows the permuted residual into a float
/// staging buffer, substitutes, and widens the result back into the fp64 CG
/// vectors. Covered by the fp32 tolerance band of the tier-equivalence suite
/// rather than the 1e-13 fp64 contract.
namespace geofem::simd {

/// What the sweep does with each computed block product.
enum class Mode {
  kAssign,  ///< y  = A*x   (packed diagonal / block-Jacobi apply)
  kAdd,     ///< y += A*x   (SpMV accumulation, backward substitution)
  kSub,     ///< y -= A*x   (forward substitution)
};

/// Lane-transposed mirror of one Jagged structure (or one packed block list),
/// stored at precision T. Values-only repacks (refill) rebuild `val`; the
/// index side only changes when the structure does.
template <class T>
struct PackedJaggedT {
  static_assert(std::is_same_v<T, double> || std::is_same_v<T, float>);
  static constexpr int kLanes = std::is_same_v<T, float> ? 8 : 4;
  static constexpr int kGroupVals = 9 * kLanes;

  aligned_vector<T> val;  ///< kGroupVals per group: coeff m of lane l at [kGroupVals*g + kLanes*m + l]
  aligned_vector<int32_t> item3;  ///< kLanes per group: 3*item, 0 for padding lanes
  std::vector<int> grp_ptr;       ///< group range of each diagonal, size njd+1
  std::vector<int> len;           ///< real (unpadded) rows per diagonal

  bool built() const { return !grp_ptr.empty(); }
  void clear() {
    val.clear();
    item3.clear();
    grp_ptr.clear();
    len.clear();
  }
};

using PackedJagged = PackedJaggedT<double>;

/// Build (or value-refresh) the packed mirror of a jagged structure.
/// `val` holds 9 scalars per entry (already at the packed precision — fp32
/// callers narrow with precond::narrow_or_throw first, so overflow surfaces
/// as a factorization failure instead of silent inf lanes), entry indices are
/// local to this chunk (jd_ptr[0] == 0). Padding lanes get zero blocks and
/// item3 == 0, so the gather they issue reads x[0..2] (always mapped) and
/// contributes +-0.
template <class T>
inline void pack_jagged(const std::vector<int>& jd_ptr, const std::vector<int>& item,
                        const T* val, PackedJaggedT<T>& out) {
  constexpr int kL = PackedJaggedT<T>::kLanes;
  const int njd = static_cast<int>(jd_ptr.size()) - (jd_ptr.empty() ? 0 : 1);
  out.grp_ptr.assign(njd + 1, 0);
  out.len.assign(njd, 0);
  for (int d = 0; d < njd; ++d) {
    out.len[d] = jd_ptr[d + 1] - jd_ptr[d];
    out.grp_ptr[d + 1] = out.grp_ptr[d] + (out.len[d] + kL - 1) / kL;
  }
  const int ngroups = out.grp_ptr[njd];
  out.val.assign(static_cast<std::size_t>(ngroups) * PackedJaggedT<T>::kGroupVals, T(0));
  out.item3.assign(static_cast<std::size_t>(ngroups) * kL, 0);
  for (int d = 0; d < njd; ++d) {
    const int s = jd_ptr[d];
    for (int g = out.grp_ptr[d]; g < out.grp_ptr[d + 1]; ++g) {
      const int u0 = (g - out.grp_ptr[d]) * kL;
      const int cnt = std::min(kL, out.len[d] - u0);
      for (int l = 0; l < cnt; ++l) {
        const int t = s + u0 + l;
        out.item3[static_cast<std::size_t>(g) * kL + l] = 3 * item[t];
        for (int m = 0; m < 9; ++m)
          out.val[static_cast<std::size_t>(g) * PackedJaggedT<T>::kGroupVals + kL * m + l] =
              val[9 * t + m];
      }
    }
  }
}

/// Pack a contiguous list of n 3x3 blocks (a DJDS diagonal, BlockDiagonal's
/// inverse blocks) as a single jagged diagonal with item[i] = i, so
/// sweep<kAssign> computes y[i] = B_i * x[i] for every row.
template <class T>
inline void pack_blocks(const T* blocks, int n, PackedJaggedT<T>& out) {
  constexpr int kL = PackedJaggedT<T>::kLanes;
  out.grp_ptr = {0, (n + kL - 1) / kL};
  out.len = {n};
  const int ngroups = out.grp_ptr[1];
  out.val.assign(static_cast<std::size_t>(ngroups) * PackedJaggedT<T>::kGroupVals, T(0));
  out.item3.assign(static_cast<std::size_t>(ngroups) * kL, 0);
  for (int i = 0; i < n; ++i) {
    const int g = i / kL, l = i % kL;
    out.item3[static_cast<std::size_t>(g) * kL + l] = 3 * i;
    for (int m = 0; m < 9; ++m)
      out.val[static_cast<std::size_t>(g) * PackedJaggedT<T>::kGroupVals + kL * m + l] =
          blocks[9 * i + m];
  }
}

/// Scalar reference sweep over the *unpacked* jagged arrays — the historical
/// arithmetic, one block row at a time, at the stored precision (double, or
/// float for the fp32 tier of the off/omp builds). Kept de-vectorized
/// (noinline + no-tree-vectorize) so it is an honest baseline for the
/// equivalence tests and the scalar column of bench_kernels.
template <Mode M, class T>
GEOFEM_NOVEC_FN void sweep_scalar(const std::vector<int>& jd_ptr, const std::vector<int>& item,
                                  const T* val, const T* x, T* y) {
  const int njd = static_cast<int>(jd_ptr.size()) - (jd_ptr.empty() ? 0 : 1);
  for (int d = 0; d < njd; ++d) {
    const int s = jd_ptr[d], e = jd_ptr[d + 1];
    GEOFEM_PRAGMA_NOVEC
    for (int t = s; t < e; ++t) {
      const T* b = val + 9 * t;
      const T* xj = x + 3 * item[t];
      T* yi = y + 3 * (t - s);
      const T p0 = b[0] * xj[0] + b[1] * xj[1] + b[2] * xj[2];
      const T p1 = b[3] * xj[0] + b[4] * xj[1] + b[5] * xj[2];
      const T p2 = b[6] * xj[0] + b[7] * xj[1] + b[8] * xj[2];
      if constexpr (M == Mode::kAssign) {
        yi[0] = p0;
        yi[1] = p1;
        yi[2] = p2;
      } else if constexpr (M == Mode::kAdd) {
        yi[0] += p0;
        yi[1] += p1;
        yi[2] += p2;
      } else {
        yi[0] -= p0;
        yi[1] -= p1;
        yi[2] -= p2;
      }
    }
  }
}

#if GEOFEM_SIMD_HAS_AVX2

namespace detail {

/// Sliding-window masks: loadu at (lanes - valid) yields `valid` leading -1
/// lanes. 64-bit lanes for the double sweeps, 32-bit for float.
alignas(32) inline const int64_t kMaskBits[8] = {-1, -1, -1, -1, 0, 0, 0, 0};
alignas(32) inline const int32_t kMaskBits32[16] = {-1, -1, -1, -1, -1, -1, -1, -1,
                                                    0,  0,  0,  0,  0,  0,  0,  0};

inline __m256i tail_mask(int valid) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(kMaskBits + 4 - valid));
}

inline __m256i tail_mask32(int valid) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(kMaskBits32 + 8 - valid));
}

/// Transpose (r0, r1, r2) — component vectors for 4 rows — into the three
/// contiguous output vectors (row0c0 row0c1 row0c2 row1c0 | row1c1 ... ).
inline void transpose_3x4(__m256d r0, __m256d r1, __m256d r2, __m256d& o0, __m256d& o1,
                          __m256d& o2) {
  const __m256d pa0 = _mm256_permute4x64_pd(r0, _MM_SHUFFLE(1, 0, 0, 0));
  const __m256d pb0 = _mm256_permute4x64_pd(r1, _MM_SHUFFLE(0, 0, 0, 0));
  const __m256d pc0 = _mm256_permute4x64_pd(r2, _MM_SHUFFLE(0, 0, 0, 0));
  o0 = _mm256_blend_pd(_mm256_blend_pd(pa0, pb0, 0x2), pc0, 0x4);
  const __m256d pb1 = _mm256_permute4x64_pd(r1, _MM_SHUFFLE(2, 0, 0, 1));
  const __m256d pc1 = _mm256_permute4x64_pd(r2, _MM_SHUFFLE(0, 0, 1, 0));
  const __m256d pa1 = _mm256_permute4x64_pd(r0, _MM_SHUFFLE(0, 2, 0, 0));
  o1 = _mm256_blend_pd(_mm256_blend_pd(pb1, pc1, 0x2), pa1, 0x4);
  const __m256d pc2 = _mm256_permute4x64_pd(r2, _MM_SHUFFLE(3, 0, 0, 2));
  const __m256d pa2 = _mm256_permute4x64_pd(r0, _MM_SHUFFLE(0, 0, 3, 0));
  const __m256d pb2 = _mm256_permute4x64_pd(r1, _MM_SHUFFLE(0, 3, 0, 0));
  o2 = _mm256_blend_pd(_mm256_blend_pd(pc2, pa2, 0x2), pb2, 0x4);
}

/// Float analogue for 8 rows: (r0, r1, r2) hold component c of rows 0..7 in
/// their lanes; the outputs are the 24 interleaved scalars
/// (row0c0 row0c1 row0c2 row1c0 ... | ... | ... row7c1 row7c2).
/// permutevar8x32 places each source's contributions at their target lanes,
/// two blends stitch the three sources per output register.
inline void transpose_3x8(__m256 r0, __m256 r1, __m256 r2, __m256& o0, __m256& o1, __m256& o2) {
  // o0 lanes: r0[0] r1[0] r2[0] r0[1] r1[1] r2[1] r0[2] r1[2]
  const __m256i i00 = _mm256_setr_epi32(0, 0, 0, 1, 0, 0, 2, 0);
  const __m256i i01 = _mm256_setr_epi32(0, 0, 0, 0, 1, 0, 0, 2);
  const __m256i i02 = _mm256_setr_epi32(0, 0, 0, 0, 0, 1, 0, 0);
  o0 = _mm256_blend_ps(_mm256_blend_ps(_mm256_permutevar8x32_ps(r0, i00),
                                       _mm256_permutevar8x32_ps(r1, i01), 0x92),
                       _mm256_permutevar8x32_ps(r2, i02), 0x24);
  // o1 lanes: r2[2] r0[3] r1[3] r2[3] r0[4] r1[4] r2[4] r0[5]
  const __m256i i10 = _mm256_setr_epi32(2, 0, 0, 3, 0, 0, 4, 0);
  const __m256i i11 = _mm256_setr_epi32(0, 3, 0, 0, 4, 0, 0, 5);
  const __m256i i12 = _mm256_setr_epi32(0, 0, 3, 0, 0, 4, 0, 0);
  o1 = _mm256_blend_ps(_mm256_blend_ps(_mm256_permutevar8x32_ps(r2, i10),
                                       _mm256_permutevar8x32_ps(r0, i11), 0x92),
                       _mm256_permutevar8x32_ps(r1, i12), 0x24);
  // o2 lanes: r1[5] r2[5] r0[6] r1[6] r2[6] r0[7] r1[7] r2[7]
  const __m256i i20 = _mm256_setr_epi32(5, 0, 0, 6, 0, 0, 7, 0);
  const __m256i i21 = _mm256_setr_epi32(0, 5, 0, 0, 6, 0, 0, 7);
  const __m256i i22 = _mm256_setr_epi32(0, 0, 6, 0, 0, 7, 0, 0);
  o2 = _mm256_blend_ps(_mm256_blend_ps(_mm256_permutevar8x32_ps(r1, i20),
                                       _mm256_permutevar8x32_ps(r2, i21), 0x92),
                       _mm256_permutevar8x32_ps(r0, i22), 0x24);
}

template <Mode M>
inline void apply_vec(double* y, __m256d o) {
  if constexpr (M == Mode::kAssign)
    _mm256_storeu_pd(y, o);
  else if constexpr (M == Mode::kAdd)
    _mm256_storeu_pd(y, _mm256_add_pd(_mm256_loadu_pd(y), o));
  else
    _mm256_storeu_pd(y, _mm256_sub_pd(_mm256_loadu_pd(y), o));
}

template <Mode M>
inline void apply_vec(float* y, __m256 o) {
  if constexpr (M == Mode::kAssign)
    _mm256_storeu_ps(y, o);
  else if constexpr (M == Mode::kAdd)
    _mm256_storeu_ps(y, _mm256_add_ps(_mm256_loadu_ps(y), o));
  else
    _mm256_storeu_ps(y, _mm256_sub_ps(_mm256_loadu_ps(y), o));
}

template <Mode M>
inline void apply_vec_masked(double* y, __m256d o, int valid) {
  if (valid <= 0) return;
  const __m256i m = tail_mask(valid);
  if constexpr (M == Mode::kAssign) {
    _mm256_maskstore_pd(y, m, o);
  } else {
    const __m256d prev = _mm256_maskload_pd(y, m);
    _mm256_maskstore_pd(y, m,
                        M == Mode::kAdd ? _mm256_add_pd(prev, o) : _mm256_sub_pd(prev, o));
  }
}

template <Mode M>
inline void apply_vec_masked(float* y, __m256 o, int valid) {
  if (valid <= 0) return;
  const __m256i m = tail_mask32(valid);
  if constexpr (M == Mode::kAssign) {
    _mm256_maskstore_ps(y, m, o);
  } else {
    const __m256 prev = _mm256_maskload_ps(y, m);
    _mm256_maskstore_ps(y, m,
                        M == Mode::kAdd ? _mm256_add_ps(prev, o) : _mm256_sub_ps(prev, o));
  }
}

}  // namespace detail

/// AVX2 jagged sweep over a packed mirror. `y` is the chunk base (the caller
/// passes y + 3*chunk_begin); `x` is the full vector the gathers index into.
/// x and y may alias the same array as long as the gathered rows are outside
/// the chunk being written — guaranteed by the multicolor ordering (colors
/// are independent sets, see reorder/coloring.hpp).
///
/// Deterministic: groups are processed in order and each output row's 3x3
/// product uses a fixed FMA tree, independent of thread count (the caller
/// parallelizes across chunks, never inside one).
template <Mode M>
inline void sweep_avx2(const PackedJagged& p, const double* x, double* y) {
  const int njd = static_cast<int>(p.len.size());
  for (int d = 0; d < njd; ++d) {
    for (int g = p.grp_ptr[d]; g < p.grp_ptr[d + 1]; ++g) {
      const int u0 = (g - p.grp_ptr[d]) * PackedJagged::kLanes;
      const double* a = p.val.data() + static_cast<std::size_t>(g) * 36;
      const __m128i idx =
          _mm_load_si128(reinterpret_cast<const __m128i*>(p.item3.data() + 4 * g));
      // Masked gather with a zeroed source: same instruction as the plain
      // form (gathers are always internally masked) without the undefined
      // pass-through operand GCC warns about.
      const __m256d all = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
      const __m256d zero = _mm256_setzero_pd();
      const __m256d x0 = _mm256_mask_i32gather_pd(zero, x, idx, all, 8);
      const __m256d x1 = _mm256_mask_i32gather_pd(zero, x + 1, idx, all, 8);
      const __m256d x2 = _mm256_mask_i32gather_pd(zero, x + 2, idx, all, 8);
      __m256d r0 = _mm256_mul_pd(_mm256_load_pd(a), x0);
      r0 = _mm256_fmadd_pd(_mm256_load_pd(a + 4), x1, r0);
      r0 = _mm256_fmadd_pd(_mm256_load_pd(a + 8), x2, r0);
      __m256d r1 = _mm256_mul_pd(_mm256_load_pd(a + 12), x0);
      r1 = _mm256_fmadd_pd(_mm256_load_pd(a + 16), x1, r1);
      r1 = _mm256_fmadd_pd(_mm256_load_pd(a + 20), x2, r1);
      __m256d r2 = _mm256_mul_pd(_mm256_load_pd(a + 24), x0);
      r2 = _mm256_fmadd_pd(_mm256_load_pd(a + 28), x1, r2);
      r2 = _mm256_fmadd_pd(_mm256_load_pd(a + 32), x2, r2);
      __m256d o0, o1, o2;
      detail::transpose_3x4(r0, r1, r2, o0, o1, o2);
      double* yd = y + 3 * u0;
      const int rem = p.len[d] - u0;
      if (rem >= PackedJagged::kLanes) {
        detail::apply_vec<M>(yd, o0);
        detail::apply_vec<M>(yd + 4, o1);
        detail::apply_vec<M>(yd + 8, o2);
      } else {
        const int nv = 3 * rem;
        detail::apply_vec_masked<M>(yd, o0, std::min(nv, 4));
        detail::apply_vec_masked<M>(yd + 4, o1, std::clamp(nv - 4, 0, 4));
        detail::apply_vec_masked<M>(yd + 8, o2, std::clamp(nv - 8, 0, 4));
      }
    }
  }
}

/// fp32 sweep: 8 rows per group, single-precision gathers/FMA throughout.
/// Same determinism contract as the double form (fixed group order, fixed FMA
/// tree, caller parallelizes across chunks only); accuracy is the fp32
/// tolerance band, not the 1e-13 fp64 one.
template <Mode M>
inline void sweep_avx2(const PackedJaggedT<float>& p, const float* x, float* y) {
  constexpr int kL = PackedJaggedT<float>::kLanes;
  const int njd = static_cast<int>(p.len.size());
  for (int d = 0; d < njd; ++d) {
    for (int g = p.grp_ptr[d]; g < p.grp_ptr[d + 1]; ++g) {
      const int u0 = (g - p.grp_ptr[d]) * kL;
      const float* a = p.val.data() + static_cast<std::size_t>(g) * 72;
      const __m256i idx =
          _mm256_load_si256(reinterpret_cast<const __m256i*>(p.item3.data() + kL * g));
      const __m256 all = _mm256_castsi256_ps(_mm256_set1_epi32(-1));
      const __m256 zero = _mm256_setzero_ps();
      const __m256 x0 = _mm256_mask_i32gather_ps(zero, x, idx, all, 4);
      const __m256 x1 = _mm256_mask_i32gather_ps(zero, x + 1, idx, all, 4);
      const __m256 x2 = _mm256_mask_i32gather_ps(zero, x + 2, idx, all, 4);
      __m256 r0 = _mm256_mul_ps(_mm256_load_ps(a), x0);
      r0 = _mm256_fmadd_ps(_mm256_load_ps(a + 8), x1, r0);
      r0 = _mm256_fmadd_ps(_mm256_load_ps(a + 16), x2, r0);
      __m256 r1 = _mm256_mul_ps(_mm256_load_ps(a + 24), x0);
      r1 = _mm256_fmadd_ps(_mm256_load_ps(a + 32), x1, r1);
      r1 = _mm256_fmadd_ps(_mm256_load_ps(a + 40), x2, r1);
      __m256 r2 = _mm256_mul_ps(_mm256_load_ps(a + 48), x0);
      r2 = _mm256_fmadd_ps(_mm256_load_ps(a + 56), x1, r2);
      r2 = _mm256_fmadd_ps(_mm256_load_ps(a + 64), x2, r2);
      __m256 o0, o1, o2;
      detail::transpose_3x8(r0, r1, r2, o0, o1, o2);
      float* yd = y + 3 * u0;
      const int rem = p.len[d] - u0;
      if (rem >= kL) {
        detail::apply_vec<M>(yd, o0);
        detail::apply_vec<M>(yd + 8, o1);
        detail::apply_vec<M>(yd + 16, o2);
      } else {
        const int nv = 3 * rem;
        detail::apply_vec_masked<M>(yd, o0, std::min(nv, 8));
        detail::apply_vec_masked<M>(yd + 8, o1, std::clamp(nv - 8, 0, 8));
        detail::apply_vec_masked<M>(yd + 16, o2, std::clamp(nv - 16, 0, 8));
      }
    }
  }
}

#endif  // GEOFEM_SIMD_HAS_AVX2

}  // namespace geofem::simd
