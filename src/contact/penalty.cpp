#include "contact/penalty.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace geofem::contact {

void add_penalty(sparse::BlockCSR& a, const std::vector<std::vector<int>>& groups,
                 double lambda) {
  GEOFEM_CHECK(lambda >= 0.0, "penalty must be non-negative");
  for (const auto& g : groups) {
    const double diag = lambda * static_cast<double>(g.size() - 1);
    for (int i : g) {
      double* d = a.block(a.diag_entry(i));
      d[0] += diag;
      d[4] += diag;
      d[8] += diag;
      for (int j : g) {
        if (i == j) continue;
        const int e = a.find(i, j);
        GEOFEM_CHECK(e >= 0, "contact coupling missing from matrix pattern");
        double* blk = a.block(e);
        blk[0] -= lambda;
        blk[4] -= lambda;
        blk[8] -= lambda;
      }
    }
  }
}

int Supernodes::max_size() const {
  int mx = 0;
  for (const auto& m : members) mx = std::max(mx, static_cast<int>(m.size()));
  return mx;
}

Supernodes build_supernodes(int num_nodes, const std::vector<std::vector<int>>& groups) {
  Supernodes sn;
  sn.node_to_super.assign(static_cast<std::size_t>(num_nodes), -1);

  // Which group (if any) owns each node.
  std::vector<int> group_of(static_cast<std::size_t>(num_nodes), -1);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (int v : groups[g]) {
      GEOFEM_CHECK(v >= 0 && v < num_nodes, "contact node out of range");
      GEOFEM_CHECK(group_of[static_cast<std::size_t>(v)] == -1, "node in two contact groups");
      group_of[static_cast<std::size_t>(v)] = static_cast<int>(g);
    }
  }

  // Number supernodes in mesh-node order (a supernode appears at its first
  // member). Keeping groups interleaved with the interior nodes — instead of
  // eliminating the whole contact interface first — preserves the locality
  // the incomplete factorization relies on; a groups-first order measurably
  // degrades SB-BIC(0) convergence on irregular meshes.
  for (int v = 0; v < num_nodes; ++v) {
    if (sn.node_to_super[static_cast<std::size_t>(v)] != -1) continue;
    const int s = sn.count();
    if (group_of[static_cast<std::size_t>(v)] == -1) {
      sn.node_to_super[static_cast<std::size_t>(v)] = s;
      sn.members.push_back({v});
    } else {
      std::vector<int> sorted = groups[static_cast<std::size_t>(group_of[static_cast<std::size_t>(v)])];
      std::sort(sorted.begin(), sorted.end());
      for (int w : sorted) sn.node_to_super[static_cast<std::size_t>(w)] = s;
      sn.members.push_back(std::move(sorted));
    }
  }
  return sn;
}

}  // namespace geofem::contact
