#pragma once

#include <vector>

#include "sparse/block_csr.hpp"

namespace geofem::contact {

/// Add the penalty (MPC) constraint blocks for tied contact groups to an
/// assembled stiffness matrix, per Fig 24 of the paper: each group of m
/// coincident nodes is tied in all three directions with penalty number
/// lambda, i.e. the complete-graph Laplacian scaled by lambda:
///
///   A_ii += (m-1) * lambda * I3        for every node i in the group
///   A_ij += -lambda * I3               for every pair i != j in the group
///
/// (for m = 3 this is exactly the paper's "2*lambda*u0 = lambda*u1 +
/// lambda*u2" row pattern). The Laplacian is positive semi-definite, so the
/// matrix stays SPD; its condition number grows linearly with lambda, which
/// is the pathology selective blocking targets.
///
/// The matrix pattern must already contain all intra-group couplings
/// (assemble_elasticity guarantees this).
void add_penalty(sparse::BlockCSR& a, const std::vector<std::vector<int>>& groups,
                 double lambda);

/// Partition of the matrix rows into selective blocks (super nodes): every
/// contact group becomes one supernode; every remaining node is a singleton
/// supernode (paper, section 3.1).
struct Supernodes {
  std::vector<int> node_to_super;           ///< size n
  std::vector<std::vector<int>> members;    ///< per supernode, ascending node ids

  [[nodiscard]] int count() const { return static_cast<int>(members.size()); }
  [[nodiscard]] int size_of(int s) const { return static_cast<int>(members[static_cast<std::size_t>(s)].size()); }
  [[nodiscard]] int max_size() const;
};

Supernodes build_supernodes(int num_nodes, const std::vector<std::vector<int>>& groups);

}  // namespace geofem::contact
