#pragma once

#include "precond/preconditioner.hpp"
#include "solver/cg.hpp"
#include "sparse/block_csr.hpp"

namespace geofem::eig {

/// Extremal-eigenvalue estimate of the preconditioned operator M^-1 A
/// (Appendix A of the paper: robustness of a preconditioner shows up as
/// E_min, E_max of M^-1 A staying ~1 for any penalty value).
struct SpectrumEstimate {
  double emin = 0.0;
  double emax = 0.0;
  int lanczos_steps = 0;

  [[nodiscard]] double condition() const { return emin > 0.0 ? emax / emin : 1e300; }
};

/// Estimate via the Lanczos tridiagonal assembled from the PCG coefficients
/// (alpha_k, beta_k): the Ritz values of T_k approximate the extremal
/// eigenvalues of M^-1 A from the inside, so emin is an upper bound on E_min
/// and emax a lower bound on E_max — tight after enough steps, and exactly
/// the right tool to reproduce the paper's "kappa ~ lambda for BIC(0), flat
/// for the others" signature.
///
/// `b` seeds the Krylov space (pass the system right-hand side). Runs up to
/// `steps` CG iterations (no convergence cutoff; stagnation stops early).
SpectrumEstimate estimate_spectrum(const solver::MatVec& amul, const precond::Preconditioner& m,
                                   std::span<const double> b, int steps);

SpectrumEstimate estimate_spectrum(const sparse::BlockCSR& a, const precond::Preconditioner& m,
                                   std::span<const double> b, int steps);

/// All eigenvalues of a symmetric tridiagonal matrix (diagonal d, off-diagonal
/// e with e.size() == d.size()-1), by bisection with Sturm sequences.
/// Exposed for testing; ascending order.
std::vector<double> tridiag_eigenvalues(const std::vector<double>& d,
                                        const std::vector<double>& e);

}  // namespace geofem::eig
