#include "eig/lanczos.hpp"

#include <algorithm>
#include <cmath>

#include "sparse/vector_ops.hpp"
#include "util/check.hpp"

namespace geofem::eig {

namespace {

/// Sturm count: number of eigenvalues of the tridiagonal (d, e) below x.
int sturm_count(const std::vector<double>& d, const std::vector<double>& e, double x) {
  int count = 0;
  double q = 1.0;
  const std::size_t n = d.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double e2 = i == 0 ? 0.0 : e[i - 1] * e[i - 1];
    q = d[i] - x - (q != 0.0 ? e2 / q : e2 / 1e-300);
    if (q < 0.0) ++count;
  }
  return count;
}

}  // namespace

std::vector<double> tridiag_eigenvalues(const std::vector<double>& d,
                                        const std::vector<double>& e) {
  GEOFEM_CHECK(e.size() + 1 == d.size() || (d.size() == 1 && e.empty()),
               "tridiag size mismatch");
  const int n = static_cast<int>(d.size());
  // Gershgorin bounds
  double lo = d[0], hi = d[0];
  for (int i = 0; i < n; ++i) {
    const double r = (i > 0 ? std::fabs(e[static_cast<std::size_t>(i) - 1]) : 0.0) +
                     (i + 1 < n ? std::fabs(e[static_cast<std::size_t>(i)]) : 0.0);
    lo = std::min(lo, d[static_cast<std::size_t>(i)] - r);
    hi = std::max(hi, d[static_cast<std::size_t>(i)] + r);
  }
  const double span = std::max(hi - lo, 1e-300);

  std::vector<double> eig(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    // bisection for the (k+1)-th smallest eigenvalue
    double a = lo, b = hi;
    for (int it = 0; it < 200 && b - a > 1e-14 * span + 1e-300; ++it) {
      const double mid = 0.5 * (a + b);
      if (sturm_count(d, e, mid) > k) {
        b = mid;
      } else {
        a = mid;
      }
    }
    eig[static_cast<std::size_t>(k)] = 0.5 * (a + b);
  }
  return eig;
}

SpectrumEstimate estimate_spectrum(const solver::MatVec& amul, const precond::Preconditioner& m,
                                   std::span<const double> b, int steps) {
  const std::size_t n = b.size();
  GEOFEM_CHECK(steps >= 1, "need >= 1 Lanczos step");

  std::vector<double> x(n, 0.0), r(b.begin(), b.end()), z(n), p(n), q(n);
  std::vector<double> alphas, betas;

  double rho_prev = 0.0, alpha_prev = 1.0;
  for (int it = 0; it < steps; ++it) {
    m.apply(r, z, nullptr, nullptr);
    const double rho = sparse::dot(r, z);
    if (!(rho > 0.0) || !std::isfinite(rho)) break;  // breakdown / indefinite M
    double beta = 0.0;
    if (it == 0) {
      sparse::copy(z, p);
    } else {
      beta = rho / rho_prev;
      sparse::xpby(z, beta, p);
      betas.push_back(beta);
    }
    amul(p, q, nullptr, nullptr);
    const double pq = sparse::dot(p, q);
    if (!(pq > 0.0) || !std::isfinite(pq)) break;
    const double alpha = rho / pq;
    alphas.push_back(alpha);
    sparse::axpy(alpha, p, x);
    sparse::axpy(-alpha, q, r);
    rho_prev = rho;
    alpha_prev = alpha;
    (void)alpha_prev;
    const double rnorm = sparse::norm2(r);
    if (rnorm < 1e-300) break;  // exact solve reached
  }

  SpectrumEstimate est;
  const int k = static_cast<int>(alphas.size());
  est.lanczos_steps = k;
  if (k == 0) return est;

  // Lanczos tridiagonal from the CG coefficients:
  // T_jj = 1/alpha_j + beta_{j-1}/alpha_{j-1},  T_{j,j+1} = sqrt(beta_j)/alpha_j
  std::vector<double> d(static_cast<std::size_t>(k)), e;
  for (int j = 0; j < k; ++j) {
    d[static_cast<std::size_t>(j)] = 1.0 / alphas[static_cast<std::size_t>(j)];
    if (j > 0)
      d[static_cast<std::size_t>(j)] += betas[static_cast<std::size_t>(j) - 1] /
                                        alphas[static_cast<std::size_t>(j) - 1];
    if (j + 1 < k)
      e.push_back(std::sqrt(std::max(betas[static_cast<std::size_t>(j)], 0.0)) /
                  alphas[static_cast<std::size_t>(j)]);
  }
  const auto eigs = tridiag_eigenvalues(d, e);
  est.emin = eigs.front();
  est.emax = eigs.back();
  return est;
}

SpectrumEstimate estimate_spectrum(const sparse::BlockCSR& a, const precond::Preconditioner& m,
                                   std::span<const double> b, int steps) {
  return estimate_spectrum(
      [&a](std::span<const double> in, std::span<double> out, util::FlopCounter* fc,
           util::LoopStats* ls) { a.spmv(in, out, fc, ls); },
      m, b, steps);
}

}  // namespace geofem::eig
