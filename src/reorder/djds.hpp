#pragma once

#include <vector>

#include "contact/penalty.hpp"
#include "reorder/coloring.hpp"
#include "simd/jagged.hpp"
#include "sparse/block_csr.hpp"
#include "util/flops.hpp"
#include "util/loop_stats.hpp"

namespace geofem::reorder {

/// Options of the PDJDS/MC construction (paper §4.3-4.7).
struct DJDSOptions {
  int npe = 8;  ///< PEs per SMP node; rows are cyclically distributed over them
  /// Fig 22: reorder selective blocks by size within each (color, PE) chunk so
  /// the dense-LU substitution loops need no per-row size branch and dummy
  /// padding stays small. Disabling this is the Fig 28 ablation.
  bool sort_supernodes_by_size = true;
};

/// One jagged-diagonal set covering the rows of a (color, PE) chunk: entries
/// of jagged diagonal j live at [jd_ptr[j], jd_ptr[j+1]) and belong to the
/// first (jd_ptr[j+1]-jd_ptr[j]) rows of the chunk. `item` holds block-column
/// indices in the *new* ordering; dummy (padding) entries carry a zero block
/// and point at the row itself, so executing them is harmless.
struct Jagged {
  std::vector<int> jd_ptr;
  std::vector<int> item;
  std::vector<int> src;     ///< source entry in the original BlockCSR, -1 for dummies
  simd::aligned_vector<double> val;  ///< sparse::kBB doubles per entry
  int dummies = 0;
  /// Lane-transposed mirror for the AVX2 sweeps; only populated in AVX2
  /// builds. The jagged structure itself (and hence every paper statistic —
  /// dummy %, vector length) is identical across SIMD configurations.
  simd::PackedJagged packed;

  [[nodiscard]] int num_jd() const { return static_cast<int>(jd_ptr.size()) - 1; }
  [[nodiscard]] int entries() const { return static_cast<int>(item.size()); }
};

/// Descending-order jagged diagonal storage with multicolor + cyclic-PE
/// distribution (PDJDS/MC), optionally constrained so that selective blocks
/// (supernodes) stay contiguous. Holds a full permuted copy of the matrix:
/// diagonal blocks plus strictly-lower and strictly-upper jagged parts per
/// (color, PE) chunk.
class DJDSMatrix {
 public:
  /// Build from a symmetric BlockCSR and a coloring of its rows. If
  /// `supernodes` is non-null, members of each supernode must share a color
  /// (use quotient_graph + lift_coloring) and are kept consecutive.
  DJDSMatrix(const sparse::BlockCSR& a, const Coloring& coloring,
             const contact::Supernodes* supernodes, const DJDSOptions& opt);

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] int npe() const { return opt_.npe; }
  [[nodiscard]] int num_colors() const { return ncolors_; }

  /// perm[old] = new, iperm[new] = old.
  [[nodiscard]] const std::vector<int>& perm() const { return perm_; }
  [[nodiscard]] const std::vector<int>& iperm() const { return iperm_; }

  /// First new-row index of each (color, pe) chunk; size ncolors*npe + 1.
  [[nodiscard]] const std::vector<int>& chunk_begin() const { return chunk_begin_; }
  [[nodiscard]] int chunk_index(int color, int pe) const { return color * opt_.npe + pe; }

  [[nodiscard]] const Jagged& lower(int chunk) const { return lower_[static_cast<std::size_t>(chunk)]; }
  [[nodiscard]] const Jagged& upper(int chunk) const { return upper_[static_cast<std::size_t>(chunk)]; }

  /// Diagonal block of new row i (kBB doubles).
  [[nodiscard]] const double* diag(int i) const {
    return diag_.data() + static_cast<std::size_t>(i) * sparse::kBB;
  }

  /// Supernode ranges in the new ordering, ascending by start row; each is
  /// [start, start+size) and never crosses a chunk boundary. All couplings
  /// *inside* a range (the selective block) are excluded from the jagged
  /// lower/upper parts — they live in the dense block returned by
  /// super_dense() — so the jagged parts stay color-independent and the
  /// substitution can solve each block with one dense LU (paper §3.1, §4.7).
  struct SuperRange {
    int start;
    int size;  ///< FEM nodes in the block (3*size scalar rows)
  };
  [[nodiscard]] const std::vector<SuperRange>& super_ranges() const { return super_ranges_; }

  /// Dense (3*size)^2 row-major matrix of supernode range `r` (index into
  /// super_ranges()), gathered from the assembled matrix.
  [[nodiscard]] const std::vector<double>& super_dense(int r) const {
    return super_dense_[static_cast<std::size_t>(r)];
  }

  /// Index into super_ranges() of the range containing new row i, or -1.
  [[nodiscard]] int range_of_row(int i) const { return range_of_row_[static_cast<std::size_t>(i)]; }

  /// Re-gather all numeric values (diagonals, dense supernode blocks, jagged
  /// entries) from `a`, which must have the graph this layout was built from.
  /// The permutation, chunk layout, and jagged structure are untouched — this
  /// is the numeric half of the PDJDS set-up, used for plan reuse.
  void refill(const sparse::BlockCSR& a);

  /// y = A x in the new ordering (x, y indexed by new ids). Records the
  /// length of every executed innermost vector loop in `loops` and counts
  /// FLOPs (dummy padding entries are executed and therefore counted).
  void spmv(std::span<const double> x, std::span<double> y, util::FlopCounter* flops = nullptr,
            util::LoopStats* loops = nullptr) const;

  /// Y = A X for k interleaved RHS columns in the new ordering (DESIGN.md
  /// §5k): the same three phases as spmv — diagonal assign, dense supernode
  /// couplings, jagged lower/upper — with the innermost dimension over RHS
  /// columns, so diagonals, dense blocks and jagged values are each streamed
  /// once for all k columns. Bit-identical across team sizes; k = 1 matches
  /// spmv's scalar tier exactly.
  void spmm(std::span<const double> x, std::span<double> y, int k,
            util::FlopCounter* flops = nullptr, util::LoopStats* loops = nullptr) const;

  // --- reordering statistics (Figs 26(d), 29) ---
  /// Average innermost vector-loop length of one matvec sweep.
  [[nodiscard]] double average_vector_length() const;
  /// 100 * (max-min)/avg of rows per PE (aggregated over colors), Fig 29.
  [[nodiscard]] double load_imbalance_percent() const;
  /// Dummy entries as a fraction (%) of all stored off-diagonal entries.
  [[nodiscard]] double dummy_percent() const;
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  /// (Re)build the packed SIMD mirrors after structure or values change.
  /// No-op outside AVX2 builds.
  void pack_simd();

  int n_ = 0;
  int ncolors_ = 0;
  DJDSOptions opt_;
  std::vector<int> perm_, iperm_;
  std::vector<int> chunk_begin_;
  std::vector<Jagged> lower_, upper_;
  simd::aligned_vector<double> diag_;
  simd::PackedJagged packed_diag_;  ///< diag_ packed for the kAssign sweep (AVX2)
  std::vector<SuperRange> super_ranges_;
  std::vector<std::vector<double>> super_dense_;
  std::vector<int> range_of_row_;
};

}  // namespace geofem::reorder
