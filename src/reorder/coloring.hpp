#pragma once

#include <vector>

#include "sparse/block_csr.hpp"

namespace geofem::reorder {

/// A partition of graph vertices into independent sets ("colors"): no two
/// adjacent vertices share a color, so all rows of one color can be processed
/// concurrently / in one vector loop during ILU/IC substitution (paper §4.2).
struct Coloring {
  int num_colors = 0;
  std::vector<int> color_of;  ///< per vertex

  [[nodiscard]] std::vector<std::vector<int>> members() const;

  /// True iff no edge of `g` connects two vertices of the same color.
  [[nodiscard]] bool valid_for(const sparse::Graph& g) const;
};

/// Cuthill-McKee ordering (BFS level sets, lowest-degree-first within level).
/// Returns new-position -> old-vertex, plus the level-set boundaries.
struct LevelOrder {
  std::vector<int> order;   ///< position -> vertex
  std::vector<int> levels;  ///< level-set start offsets (size L+1)
};
LevelOrder cuthill_mckee(const sparse::Graph& g);

/// Reverse Cuthill-McKee permutation: perm[old] = new position.
std::vector<int> rcm_permutation(const sparse::Graph& g);

/// Classical multicolor (MC) reordering with a *target* color count, the
/// method adopted by the paper for complicated geometries (§4.2): a cyclic
/// greedy sweep that balances color populations so every color keeps a
/// sufficiently long vector loop. May use more than `target_colors` when the
/// graph forces it.
Coloring multicolor(const sparse::Graph& g, int target_colors);

/// CM-RCM(C): cyclic multicoloring of the reverse Cuthill-McKee level sets
/// (Fig 11(c)). Level sets of general unstructured graphs are not strictly
/// independent (27-point hex stencils couple within a BFS level), so a greedy
/// repair pass reassigns conflicting vertices; the result is always a valid
/// coloring with approximately C colors.
Coloring cm_rcm(const sparse::Graph& g, int target_colors);

/// Quotient graph over supernodes: vertices = supernodes, edges between
/// supernodes whose member nodes are adjacent in `g`. Used to color
/// selective blocks as units (paper §4.7: "individual selective blocks are
/// computed independently; dependency among selective blocks should be
/// considered at reordering").
sparse::Graph quotient_graph(const sparse::Graph& g, const std::vector<int>& vertex_to_super,
                             int num_supers);

/// Lift a supernode coloring to node granularity.
Coloring lift_coloring(const Coloring& super_coloring, const std::vector<int>& vertex_to_super,
                       int num_vertices);

}  // namespace geofem::reorder
