#include "reorder/djds.hpp"

#include <algorithm>
#include <numeric>

#include "par/par.hpp"
#include "simd/multirhs.hpp"
#include "util/check.hpp"

namespace geofem::reorder {

namespace {

/// One ordering unit: a supernode (contact group) or a single node.
struct Unit {
  int id;         ///< supernode id, or node id when no supernodes
  int size;       ///< member count
  int length;     ///< total off-diagonal blocks over member rows (load proxy)
};

}  // namespace

DJDSMatrix::DJDSMatrix(const sparse::BlockCSR& a, const Coloring& coloring,
                       const contact::Supernodes* supernodes, const DJDSOptions& opt)
    : n_(a.n), ncolors_(coloring.num_colors), opt_(opt) {
  GEOFEM_CHECK(opt.npe >= 1, "npe must be >= 1");
  GEOFEM_CHECK(static_cast<int>(coloring.color_of.size()) == a.n, "coloring size mismatch");

  // ---- 1. Units and their colors -----------------------------------------
  std::vector<Unit> units;
  auto row_len = [&](int i) { return a.rowptr[i + 1] - a.rowptr[i] - 1; };
  if (supernodes) {
    GEOFEM_CHECK(static_cast<int>(supernodes->node_to_super.size()) == a.n,
                 "supernode map size mismatch");
    units.reserve(supernodes->members.size());
    for (int s = 0; s < supernodes->count(); ++s) {
      const auto& mem = supernodes->members[static_cast<std::size_t>(s)];
      int len = 0;
      const int c0 = coloring.color_of[static_cast<std::size_t>(mem[0])];
      for (int v : mem) {
        len += row_len(v);
        GEOFEM_CHECK(coloring.color_of[static_cast<std::size_t>(v)] == c0,
                     "supernode members must share a color");
      }
      units.push_back({s, static_cast<int>(mem.size()), len});
    }
  } else {
    units.reserve(static_cast<std::size_t>(a.n));
    for (int v = 0; v < a.n; ++v) units.push_back({v, 1, row_len(v)});
  }

  auto unit_color = [&](const Unit& u) {
    const int node = supernodes ? supernodes->members[static_cast<std::size_t>(u.id)][0] : u.id;
    return coloring.color_of[static_cast<std::size_t>(node)];
  };

  // ---- 2. Cyclic distribution over PEs within each color ------------------
  // Paper §4.4: sort units of a color by descending length, deal them to PEs
  // round-robin (load balance), then order each PE's hand. §4.7/Fig 22: with
  // supernodes, sort each hand by block size (descending) so that dense-LU
  // substitution can run without per-row size branches.
  std::vector<std::vector<std::vector<Unit>>> hands(
      static_cast<std::size_t>(ncolors_),
      std::vector<std::vector<Unit>>(static_cast<std::size_t>(opt_.npe)));
  {
    std::vector<std::vector<Unit>> by_color(static_cast<std::size_t>(ncolors_));
    for (const Unit& u : units) by_color[static_cast<std::size_t>(unit_color(u))].push_back(u);
    for (int c = 0; c < ncolors_; ++c) {
      auto& list = by_color[static_cast<std::size_t>(c)];
      std::stable_sort(list.begin(), list.end(),
                       [](const Unit& x, const Unit& y) { return x.length > y.length; });
      for (std::size_t t = 0; t < list.size(); ++t)
        hands[static_cast<std::size_t>(c)][t % static_cast<std::size_t>(opt_.npe)].push_back(
            list[t]);
      if (opt_.sort_supernodes_by_size && supernodes) {
        for (auto& hand : hands[static_cast<std::size_t>(c)])
          std::stable_sort(hand.begin(), hand.end(), [](const Unit& x, const Unit& y) {
            return x.size != y.size ? x.size > y.size : x.length > y.length;
          });
      }
    }
  }

  // ---- 3. Permutation and chunk layout ------------------------------------
  perm_.assign(static_cast<std::size_t>(n_), -1);
  iperm_.assign(static_cast<std::size_t>(n_), -1);
  chunk_begin_.assign(static_cast<std::size_t>(ncolors_) * opt_.npe + 1, 0);
  {
    int pos = 0;
    for (int c = 0; c < ncolors_; ++c) {
      for (int p = 0; p < opt_.npe; ++p) {
        chunk_begin_[static_cast<std::size_t>(chunk_index(c, p))] = pos;
        for (const Unit& u : hands[static_cast<std::size_t>(c)][static_cast<std::size_t>(p)]) {
          if (u.size > 1) super_ranges_.push_back({pos, u.size});
          if (supernodes) {
            for (int v : supernodes->members[static_cast<std::size_t>(u.id)]) {
              perm_[static_cast<std::size_t>(v)] = pos;
              iperm_[static_cast<std::size_t>(pos)] = v;
              ++pos;
            }
          } else {
            perm_[static_cast<std::size_t>(u.id)] = pos;
            iperm_[static_cast<std::size_t>(pos)] = u.id;
            ++pos;
          }
        }
      }
    }
    chunk_begin_.back() = pos;
    GEOFEM_CHECK(pos == n_, "ordering did not cover all rows");
  }

  // ---- 4. Diagonal blocks in new order ------------------------------------
  diag_.resize(static_cast<std::size_t>(n_) * sparse::kBB);
  for (int i = 0; i < n_; ++i) {
    const int old = iperm_[static_cast<std::size_t>(i)];
    const double* src = a.block(a.diag_entry(old));
    std::copy(src, src + sparse::kBB, diag_.data() + static_cast<std::size_t>(i) * sparse::kBB);
  }

  std::sort(super_ranges_.begin(), super_ranges_.end(),
            [](const SuperRange& x, const SuperRange& y) { return x.start < y.start; });

  // ---- 5. Supernode dense blocks & row->range map --------------------------
  range_of_row_.assign(static_cast<std::size_t>(n_), -1);
  for (std::size_t r = 0; r < super_ranges_.size(); ++r)
    for (int t = 0; t < super_ranges_[r].size; ++t)
      range_of_row_[static_cast<std::size_t>(super_ranges_[r].start + t)] = static_cast<int>(r);
  super_dense_.resize(super_ranges_.size());
  for (std::size_t r = 0; r < super_ranges_.size(); ++r) {
    const auto& sr = super_ranges_[r];
    const int dim = sparse::kB * sr.size;
    auto& dense = super_dense_[r];
    dense.assign(static_cast<std::size_t>(dim) * dim, 0.0);
    for (int t = 0; t < sr.size; ++t) {
      const int old = iperm_[static_cast<std::size_t>(sr.start + t)];
      for (int e = a.rowptr[old]; e < a.rowptr[old + 1]; ++e) {
        const int jn = perm_[static_cast<std::size_t>(a.colind[e])];
        if (jn < sr.start || jn >= sr.start + sr.size) continue;
        const int tj = jn - sr.start;
        const double* blk = a.block(e);
        for (int br = 0; br < sparse::kB; ++br)
          for (int bc = 0; bc < sparse::kB; ++bc)
            dense[static_cast<std::size_t>(sparse::kB * t + br) * dim +
                  static_cast<std::size_t>(sparse::kB * tj + bc)] = blk[sparse::kB * br + bc];
      }
    }
  }

  // ---- 6. Jagged diagonal parts per chunk ----------------------------------
  const int nchunks = ncolors_ * opt_.npe;
  lower_.resize(static_cast<std::size_t>(nchunks));
  upper_.resize(static_cast<std::size_t>(nchunks));

  for (int ch = 0; ch < nchunks; ++ch) {
    const int begin = chunk_begin_[static_cast<std::size_t>(ch)];
    const int count = chunk_begin_[static_cast<std::size_t>(ch) + 1] - begin;
    // Collect entries per row, split into lower/upper by *new* index; skip
    // intra-supernode couplings (handled by the dense blocks above).
    std::vector<std::vector<std::pair<int, int>>> lo(static_cast<std::size_t>(count)),
        up(static_cast<std::size_t>(count));
    for (int t = 0; t < count; ++t) {
      const int in = begin + t;
      const int old = iperm_[static_cast<std::size_t>(in)];
      for (int e = a.rowptr[old]; e < a.rowptr[old + 1]; ++e) {
        const int jn = perm_[static_cast<std::size_t>(a.colind[e])];
        if (jn == in) continue;
        if (range_of_row_[static_cast<std::size_t>(in)] != -1 &&
            range_of_row_[static_cast<std::size_t>(jn)] ==
                range_of_row_[static_cast<std::size_t>(in)])
          continue;
        (jn < in ? lo : up)[static_cast<std::size_t>(t)].emplace_back(jn, e);
      }
    }
    auto build = [&](std::vector<std::vector<std::pair<int, int>>>& rows, Jagged& out) {
      // Padded (suffix-max) lengths keep the jagged diagonals monotone when
      // supernode contiguity prevents a perfect descending sort (Fig 21).
      std::vector<int> plen(static_cast<std::size_t>(count), 0);
      for (int t = count - 1; t >= 0; --t) {
        const int len = static_cast<int>(rows[static_cast<std::size_t>(t)].size());
        plen[static_cast<std::size_t>(t)] =
            std::max(len, t + 1 < count ? plen[static_cast<std::size_t>(t) + 1] : 0);
      }
      const int njd = count > 0 ? plen[0] : 0;
      out.jd_ptr.assign(static_cast<std::size_t>(njd) + 1, 0);
      for (auto& r : rows)
        std::sort(r.begin(), r.end(),
                  [](const auto& x, const auto& y) { return x.first < y.first; });
      for (int j = 0; j < njd; ++j) {
        int covered = 0;
        while (covered < count && plen[static_cast<std::size_t>(covered)] > j) ++covered;
        out.jd_ptr[static_cast<std::size_t>(j) + 1] = out.jd_ptr[static_cast<std::size_t>(j)] + covered;
        for (int t = 0; t < covered; ++t) {
          const auto& r = rows[static_cast<std::size_t>(t)];
          if (j < static_cast<int>(r.size())) {
            out.item.push_back(r[static_cast<std::size_t>(j)].first);
            out.src.push_back(r[static_cast<std::size_t>(j)].second);
            const double* src = a.block(r[static_cast<std::size_t>(j)].second);
            out.val.insert(out.val.end(), src, src + sparse::kBB);
          } else {
            out.item.push_back(begin + t);  // dummy: zero block on own row
            out.src.push_back(-1);
            out.val.insert(out.val.end(), sparse::kBB, 0.0);
            ++out.dummies;
          }
        }
      }
    };
    build(lo, lower_[static_cast<std::size_t>(ch)]);
    build(up, upper_[static_cast<std::size_t>(ch)]);
  }

  pack_simd();
}

void DJDSMatrix::pack_simd() {
#if GEOFEM_SIMD_HAS_AVX2
  for (auto* parts : {&lower_, &upper_})
    for (Jagged& p : *parts) simd::pack_jagged(p.jd_ptr, p.item, p.val.data(), p.packed);
  simd::pack_blocks(diag_.data(), n_, packed_diag_);
#endif
}

void DJDSMatrix::refill(const sparse::BlockCSR& a) {
  GEOFEM_CHECK(a.n == n_, "DJDSMatrix::refill: matrix size mismatch");
  // Diagonal blocks.
  for (int i = 0; i < n_; ++i) {
    const int old = iperm_[static_cast<std::size_t>(i)];
    const double* src = a.block(a.diag_entry(old));
    std::copy(src, src + sparse::kBB, diag_.data() + static_cast<std::size_t>(i) * sparse::kBB);
  }
  // Dense supernode blocks (same gather as the constructor).
  for (std::size_t r = 0; r < super_ranges_.size(); ++r) {
    const auto& sr = super_ranges_[r];
    const int dim = sparse::kB * sr.size;
    auto& dense = super_dense_[r];
    std::fill(dense.begin(), dense.end(), 0.0);
    for (int t = 0; t < sr.size; ++t) {
      const int old = iperm_[static_cast<std::size_t>(sr.start + t)];
      for (int e = a.rowptr[old]; e < a.rowptr[old + 1]; ++e) {
        const int jn = perm_[static_cast<std::size_t>(a.colind[e])];
        if (jn < sr.start || jn >= sr.start + sr.size) continue;
        const int tj = jn - sr.start;
        const double* blk = a.block(e);
        for (int br = 0; br < sparse::kB; ++br)
          for (int bc = 0; bc < sparse::kB; ++bc)
            dense[static_cast<std::size_t>(sparse::kB * t + br) * dim +
                  static_cast<std::size_t>(sparse::kB * tj + bc)] = blk[sparse::kB * br + bc];
      }
    }
  }
  // Jagged entries; dummies carry a zero block and never change.
  for (auto* parts : {&lower_, &upper_}) {
    for (Jagged& p : *parts) {
      for (std::size_t t = 0; t < p.src.size(); ++t) {
        if (p.src[t] < 0) continue;
        const double* src = a.block(p.src[t]);
        std::copy(src, src + sparse::kBB, p.val.data() + t * sparse::kBB);
      }
    }
  }

  pack_simd();
}

void DJDSMatrix::spmv(std::span<const double> x, std::span<double> y, util::FlopCounter* flops,
                      util::LoopStats* loops) const {
  GEOFEM_CHECK(static_cast<int>(x.size()) == n_ * sparse::kB &&
                   static_cast<int>(y.size()) == n_ * sparse::kB,
               "djds spmv size mismatch");
  // Three phases with a barrier between each; inside a phase every y row is
  // written by exactly one iteration (its own index / its unique supernode
  // range / its unique chunk), so each row sees the serial accumulation order
  // — diagonal assign, dense couplings, lower then upper jagged — and the
  // result is bit-identical for any team size.
  const int nt = par::threads();
  // Kernel tier is read once, outside the parallel regions, so one scope on
  // the calling thread governs the whole operation.
  const bool avx2 = simd::active() == simd::Isa::kAvx2;
  (void)avx2;

  // Phase 1: diagonal contribution (assignment). The packed sweep runs the
  // whole vector as one pass — a streaming O(n) kernel where lane width,
  // not the team, is the lever.
#if GEOFEM_SIMD_HAS_AVX2
  if (avx2) {
    simd::sweep_avx2<simd::Mode::kAssign>(packed_diag_, x.data(), y.data());
  } else
#endif
  {
#pragma omp parallel for schedule(static) num_threads(nt) if (nt > 1)
    for (int i = 0; i < n_; ++i)
      sparse::b3_apply(diag(i), x.data() + static_cast<std::size_t>(i) * sparse::kB,
                       y.data() + static_cast<std::size_t>(i) * sparse::kB);
  }

  // Phase 2: intra-supernode couplings (dense blocks, member diagonals
  // excluded since they were applied above). Ranges cover disjoint rows.
#pragma omp parallel for schedule(static) num_threads(nt) if (nt > 1)
  for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(super_ranges_.size()); ++r) {
    const auto& sr = super_ranges_[static_cast<std::size_t>(r)];
    const auto& dense = super_dense_[static_cast<std::size_t>(r)];
    const int dim = sparse::kB * sr.size;
    for (int ti = 0; ti < sr.size; ++ti) {
      double* yi = y.data() + static_cast<std::size_t>(sr.start + ti) * sparse::kB;
      for (int tj = 0; tj < sr.size; ++tj) {
        if (ti == tj) continue;
        const double* xj = x.data() + static_cast<std::size_t>(sr.start + tj) * sparse::kB;
        for (int br = 0; br < sparse::kB; ++br) {
          const double* drow = dense.data() +
                               static_cast<std::size_t>(sparse::kB * ti + br) * dim +
                               static_cast<std::size_t>(sparse::kB * tj);
          yi[br] += drow[0] * xj[0] + drow[1] * xj[1] + drow[2] * xj[2];
        }
      }
    }
  }

  // Phase 3: jagged parts; each chunk owns a contiguous, disjoint row range
  // and runs its lower then upper diagonals serially.
  const int nchunks = ncolors_ * opt_.npe;
#pragma omp parallel for schedule(static) num_threads(nt) if (nt > 1)
  for (int ch = 0; ch < nchunks; ++ch) {
    const int begin = chunk_begin_[static_cast<std::size_t>(ch)];
    for (const Jagged* part : {&lower_[static_cast<std::size_t>(ch)],
                               &upper_[static_cast<std::size_t>(ch)]}) {
#if GEOFEM_SIMD_HAS_AVX2
      if (avx2) {
        simd::sweep_avx2<simd::Mode::kAdd>(
            part->packed, x.data(), y.data() + static_cast<std::size_t>(begin) * sparse::kB);
        continue;
      }
#endif
      for (int j = 0; j < part->num_jd(); ++j) {
        const int s = part->jd_ptr[static_cast<std::size_t>(j)];
        const int e = part->jd_ptr[static_cast<std::size_t>(j) + 1];
        // This is the long innermost loop DJDS exists for: one entry of each
        // covered row, rows contiguous from the chunk start. Rows within a
        // diagonal are independent (distinct y blocks), so the lanes may
        // process them together.
        GEOFEM_PRAGMA_SIMD
        for (int t = s; t < e; ++t) {
          sparse::b3_gemv(part->val.data() + static_cast<std::size_t>(t) * sparse::kBB,
                          x.data() + static_cast<std::size_t>(part->item[static_cast<std::size_t>(t)]) * sparse::kB,
                          y.data() + static_cast<std::size_t>(begin + (t - s)) * sparse::kB);
        }
      }
    }
  }

  // Stats are pattern-derived: record them serially afterwards, in the order
  // the serial sweep would have produced.
  if (loops) {
    loops->record(n_);
    for (int ch = 0; ch < nchunks; ++ch) {
      for (const Jagged* part : {&lower_[static_cast<std::size_t>(ch)],
                                 &upper_[static_cast<std::size_t>(ch)]}) {
        for (int j = 0; j < part->num_jd(); ++j) {
          const int len = part->jd_ptr[static_cast<std::size_t>(j) + 1] -
                          part->jd_ptr[static_cast<std::size_t>(j)];
          if (len > 0) loops->record(len);
        }
      }
    }
  }
  if (flops) {
    std::uint64_t entries = static_cast<std::uint64_t>(n_);
    for (const auto& sr : super_ranges_)
      entries += static_cast<std::uint64_t>(sr.size) * static_cast<std::uint64_t>(sr.size - 1);
    for (int ch = 0; ch < nchunks; ++ch)
      entries += static_cast<std::uint64_t>(lower_[static_cast<std::size_t>(ch)].entries()) +
                 static_cast<std::uint64_t>(upper_[static_cast<std::size_t>(ch)].entries());
    flops->spmv += 2ULL * sparse::kBB * entries;
  }
}

namespace {

/// Multi-RHS twin of the spmv phases: same row/range/chunk partition, same
/// barrier structure, innermost loops over RHS columns (simd::b3k_* kernels
/// pick the tier via UseAvx — the packed lane-transposed sweeps do not apply
/// here because the lane axis is the column dimension). Phases 1+2 (diagonal
/// assign, dense supernode couplings) are shared with the k = 4*KV fast path
/// below, which replaces only the jagged phase.
template <bool UseAvx>
void djds_spmm_diag_dense(const DJDSMatrix& m, const double* x, double* y, int k, int nt) {
  const std::size_t rk = static_cast<std::size_t>(sparse::kB) * static_cast<std::size_t>(k);
  const int n = m.n();
  // Phase 1: diagonal contribution (assignment).
#pragma omp parallel for schedule(static) num_threads(nt) if (nt > 1)
  for (int i = 0; i < n; ++i)
    simd::b3k_apply<double, UseAvx>(m.diag(i), x + static_cast<std::size_t>(i) * rk,
                                    y + static_cast<std::size_t>(i) * rk, k);

  // Phase 2: intra-supernode dense couplings (member diagonals excluded).
  const auto& ranges = m.super_ranges();
#pragma omp parallel for schedule(static) num_threads(nt) if (nt > 1)
  for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(ranges.size()); ++r) {
    const auto& sr = ranges[static_cast<std::size_t>(r)];
    const auto& dense = m.super_dense(static_cast<int>(r));
    const int dim = sparse::kB * sr.size;
    for (int ti = 0; ti < sr.size; ++ti) {
      double* yi = y + static_cast<std::size_t>(sr.start + ti) * rk;
      for (int tj = 0; tj < sr.size; ++tj) {
        if (ti == tj) continue;
        const double* xj = x + static_cast<std::size_t>(sr.start + tj) * rk;
        for (int br = 0; br < sparse::kB; ++br) {
          const double* drow = dense.data() +
                               static_cast<std::size_t>(sparse::kB * ti + br) * dim +
                               static_cast<std::size_t>(sparse::kB * tj);
          simd::row3k_madd<double, UseAvx>(drow, xj, yi + static_cast<std::size_t>(br) * k, k);
        }
      }
    }
  }

}

/// Phase 3, generic: jagged parts streamed diagonal-major; chunks own
/// contiguous, disjoint row ranges.
template <bool UseAvx>
void djds_spmm_jagged(const DJDSMatrix& m, const double* x, double* y, int k, int nt) {
  const std::size_t rk = static_cast<std::size_t>(sparse::kB) * static_cast<std::size_t>(k);
  const int nchunks = m.num_colors() * m.npe();
#pragma omp parallel for schedule(static) num_threads(nt) if (nt > 1)
  for (int ch = 0; ch < nchunks; ++ch) {
    const int begin = m.chunk_begin()[static_cast<std::size_t>(ch)];
    for (const Jagged* part : {&m.lower(ch), &m.upper(ch)}) {
      for (int j = 0; j < part->num_jd(); ++j) {
        const int s = part->jd_ptr[static_cast<std::size_t>(j)];
        const int e = part->jd_ptr[static_cast<std::size_t>(j) + 1];
        for (int t = s; t < e; ++t) {
          simd::b3k_madd<double, UseAvx>(
              part->val.data() + static_cast<std::size_t>(t) * sparse::kBB,
              x + static_cast<std::size_t>(part->item[static_cast<std::size_t>(t)]) * rk,
              y + static_cast<std::size_t>(begin + (t - s)) * rk, k);
        }
      }
    }
  }
}

#if GEOFEM_SIMD_HAS_AVX2
/// Phase 3, k = 4*KV fast path: row-major sweep with the whole 3*k row of Y
/// held in ymm registers (simd::AvxAccK) while every jagged diagonal that
/// reaches the row contributes, instead of re-loading and re-storing Y for
/// each diagonal. For one row the contributions still arrive in the exact
/// order of the generic sweep — lower diagonals in index order, then upper —
/// and AvxAccK applies the same per-lane FMA sequence as b3k_madd, so the
/// result is bit-identical to djds_spmm_jagged<true>.
template <int KV>
void djds_spmm_jagged_avxk(const DJDSMatrix& m, const double* x, double* y, int nt) {
  constexpr std::size_t rk = static_cast<std::size_t>(sparse::kB) * 4 * KV;
  const int nchunks = m.num_colors() * m.npe();
#pragma omp parallel for schedule(static) num_threads(nt) if (nt > 1)
  for (int ch = 0; ch < nchunks; ++ch) {
    const int begin = m.chunk_begin()[static_cast<std::size_t>(ch)];
    const Jagged& lo = m.lower(ch);
    const Jagged& up = m.upper(ch);
    int rows = 0;  // rows with at least one jagged entry (longest diagonal)
    for (const Jagged* part : {&lo, &up})
      for (int j = 0; j < part->num_jd(); ++j)
        rows = std::max(rows, part->jd_ptr[static_cast<std::size_t>(j) + 1] -
                                  part->jd_ptr[static_cast<std::size_t>(j)]);
    for (int ro = 0; ro < rows; ++ro) {
      double* yi = y + static_cast<std::size_t>(begin + ro) * rk;
      simd::AvxAccK<double, KV> acc;
      acc.init_load(yi);
      for (const Jagged* part : {&lo, &up}) {
        for (int j = 0; j < part->num_jd(); ++j) {
          const int s = part->jd_ptr[static_cast<std::size_t>(j)];
          const int len = part->jd_ptr[static_cast<std::size_t>(j) + 1] - s;
          if (ro >= len) continue;  // this diagonal is shorter than the row
          const std::size_t t = static_cast<std::size_t>(s + ro);
          acc.madd(part->val.data() + t * sparse::kBB,
                   x + static_cast<std::size_t>(part->item[t]) * rk);
        }
      }
      acc.reduce(yi);
    }
  }
}
#endif  // GEOFEM_SIMD_HAS_AVX2

template <bool UseAvx>
void djds_spmm_impl(const DJDSMatrix& m, const double* x, double* y, int k, int nt) {
  djds_spmm_diag_dense<UseAvx>(m, x, y, k, nt);
  djds_spmm_jagged<UseAvx>(m, x, y, k, nt);
}

}  // namespace

void DJDSMatrix::spmm(std::span<const double> x, std::span<double> y, int k,
                      util::FlopCounter* flops, util::LoopStats* loops) const {
  GEOFEM_CHECK(k >= 1 && k <= simd::kMaxMultiRhs, "djds spmm: bad column count");
  const std::size_t need =
      static_cast<std::size_t>(n_) * sparse::kB * static_cast<std::size_t>(k);
  GEOFEM_CHECK(x.size() == need && y.size() == need, "djds spmm size mismatch");
  const int nt = par::threads();
#if GEOFEM_SIMD_HAS_AVX2
  if (simd::active() == simd::Isa::kAvx2) {
    djds_spmm_diag_dense<true>(*this, x.data(), y.data(), k, nt);
    // Register-resident jagged sweep for the common batch widths (dispatch
    // depends only on k, so results stay deterministic within a build).
    if (k == 4)
      djds_spmm_jagged_avxk<1>(*this, x.data(), y.data(), nt);
    else if (k == 8)
      djds_spmm_jagged_avxk<2>(*this, x.data(), y.data(), nt);
    else
      djds_spmm_jagged<true>(*this, x.data(), y.data(), k, nt);
  } else
#endif
  {
    djds_spmm_impl<false>(*this, x.data(), y.data(), k, nt);
  }
  const int nchunks = ncolors_ * opt_.npe;
  if (loops) {
    loops->record(n_);
    for (int ch = 0; ch < nchunks; ++ch) {
      for (const Jagged* part : {&lower_[static_cast<std::size_t>(ch)],
                                 &upper_[static_cast<std::size_t>(ch)]}) {
        for (int j = 0; j < part->num_jd(); ++j) {
          const int len = part->jd_ptr[static_cast<std::size_t>(j) + 1] -
                          part->jd_ptr[static_cast<std::size_t>(j)];
          if (len > 0) loops->record(len);
        }
      }
    }
  }
  if (flops) {
    std::uint64_t entries = static_cast<std::uint64_t>(n_);
    for (const auto& sr : super_ranges_)
      entries += static_cast<std::uint64_t>(sr.size) * static_cast<std::uint64_t>(sr.size - 1);
    for (int ch = 0; ch < nchunks; ++ch)
      entries += static_cast<std::uint64_t>(lower_[static_cast<std::size_t>(ch)].entries()) +
                 static_cast<std::uint64_t>(upper_[static_cast<std::size_t>(ch)].entries());
    flops->spmv += 2ULL * sparse::kBB * entries * static_cast<std::uint64_t>(k);
  }
}

double DJDSMatrix::average_vector_length() const {
  std::int64_t total = 0, loops = 0;
  for (const auto& parts : {std::cref(lower_), std::cref(upper_)}) {
    for (const Jagged& p : parts.get()) {
      for (int j = 0; j < p.num_jd(); ++j) {
        const int len = p.jd_ptr[static_cast<std::size_t>(j) + 1] - p.jd_ptr[static_cast<std::size_t>(j)];
        if (len > 0) {
          total += len;
          ++loops;
        }
      }
    }
  }
  return loops == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(loops);
}

double DJDSMatrix::load_imbalance_percent() const {
  std::vector<std::int64_t> rows_per_pe(static_cast<std::size_t>(opt_.npe), 0);
  for (int c = 0; c < ncolors_; ++c)
    for (int p = 0; p < opt_.npe; ++p) {
      const int ch = chunk_index(c, p);
      rows_per_pe[static_cast<std::size_t>(p)] +=
          chunk_begin_[static_cast<std::size_t>(ch) + 1] - chunk_begin_[static_cast<std::size_t>(ch)];
    }
  const auto [mn, mx] = std::minmax_element(rows_per_pe.begin(), rows_per_pe.end());
  const double avg = static_cast<double>(n_) / opt_.npe;
  return avg == 0.0 ? 0.0 : 100.0 * static_cast<double>(*mx - *mn) / avg;
}

double DJDSMatrix::dummy_percent() const {
  std::int64_t dummies = 0, entries = 0;
  for (const auto& parts : {std::cref(lower_), std::cref(upper_)}) {
    for (const Jagged& p : parts.get()) {
      dummies += p.dummies;
      entries += p.entries();
    }
  }
  return entries == 0 ? 0.0 : 100.0 * static_cast<double>(dummies) / static_cast<double>(entries);
}

std::size_t DJDSMatrix::memory_bytes() const {
  std::size_t bytes = diag_.size() * sizeof(double) +
                      (perm_.size() + iperm_.size() + chunk_begin_.size()) * sizeof(int);
  for (const auto& d : super_dense_) bytes += d.size() * sizeof(double);
  for (const auto& parts : {std::cref(lower_), std::cref(upper_)}) {
    for (const Jagged& p : parts.get())
      bytes += (p.val.size() + p.packed.val.size()) * sizeof(double) +
               (p.item.size() + p.src.size() + p.jd_ptr.size()) * sizeof(int) +
               p.packed.item3.size() * sizeof(std::int32_t);
  }
  return bytes + packed_diag_.val.size() * sizeof(double) +
         packed_diag_.item3.size() * sizeof(std::int32_t);
}

}  // namespace geofem::reorder
