#include "reorder/coloring.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace geofem::reorder {

std::vector<std::vector<int>> Coloring::members() const {
  std::vector<std::vector<int>> m(static_cast<std::size_t>(num_colors));
  for (int v = 0; v < static_cast<int>(color_of.size()); ++v)
    m[static_cast<std::size_t>(color_of[static_cast<std::size_t>(v)])].push_back(v);
  return m;
}

bool Coloring::valid_for(const sparse::Graph& g) const {
  if (static_cast<int>(color_of.size()) != g.n) return false;
  for (int v = 0; v < g.n; ++v) {
    const int c = color_of[static_cast<std::size_t>(v)];
    if (c < 0 || c >= num_colors) return false;
    for (int e = g.xadj[v]; e < g.xadj[v + 1]; ++e)
      if (color_of[static_cast<std::size_t>(g.adjncy[static_cast<std::size_t>(e)])] == c &&
          g.adjncy[static_cast<std::size_t>(e)] != v)
        return false;
  }
  return true;
}

LevelOrder cuthill_mckee(const sparse::Graph& g) {
  LevelOrder lo;
  lo.order.reserve(static_cast<std::size_t>(g.n));
  lo.levels.push_back(0);
  std::vector<char> visited(static_cast<std::size_t>(g.n), 0);
  std::vector<int> degree(static_cast<std::size_t>(g.n));
  for (int v = 0; v < g.n; ++v) degree[static_cast<std::size_t>(v)] = g.xadj[v + 1] - g.xadj[v];

  for (int seed_scan = 0; seed_scan < g.n; ++seed_scan) {
    if (visited[static_cast<std::size_t>(seed_scan)]) continue;
    // Start each component at a minimum-degree vertex reachable from the scan
    // position (cheap pseudo-peripheral choice).
    int seed = seed_scan;
    for (int v = seed_scan; v < g.n; ++v)
      if (!visited[static_cast<std::size_t>(v)] &&
          degree[static_cast<std::size_t>(v)] < degree[static_cast<std::size_t>(seed)])
        seed = v;

    std::vector<int> frontier{seed};
    visited[static_cast<std::size_t>(seed)] = 1;
    while (!frontier.empty()) {
      std::sort(frontier.begin(), frontier.end(), [&](int a, int b) {
        return degree[static_cast<std::size_t>(a)] != degree[static_cast<std::size_t>(b)]
                   ? degree[static_cast<std::size_t>(a)] < degree[static_cast<std::size_t>(b)]
                   : a < b;
      });
      lo.order.insert(lo.order.end(), frontier.begin(), frontier.end());
      lo.levels.push_back(static_cast<int>(lo.order.size()));
      std::vector<int> next;
      for (int v : frontier) {
        for (int e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
          const int w = g.adjncy[static_cast<std::size_t>(e)];
          if (!visited[static_cast<std::size_t>(w)]) {
            visited[static_cast<std::size_t>(w)] = 1;
            next.push_back(w);
          }
        }
      }
      frontier = std::move(next);
    }
  }
  return lo;
}

std::vector<int> rcm_permutation(const sparse::Graph& g) {
  const LevelOrder lo = cuthill_mckee(g);
  std::vector<int> perm(static_cast<std::size_t>(g.n));
  for (int pos = 0; pos < g.n; ++pos)
    perm[static_cast<std::size_t>(lo.order[static_cast<std::size_t>(pos)])] = g.n - 1 - pos;
  return perm;
}

namespace {

/// Greedy repair-capable color assignment: try colors cyclically starting at
/// `start`, return the first not used by a neighbour.
int first_free_color(const sparse::Graph& g, const std::vector<int>& color_of, int v, int start,
                     int ncolors) {
  for (int t = 0; t < ncolors; ++t) {
    const int c = (start + t) % ncolors;
    bool clash = false;
    for (int e = g.xadj[v]; e < g.xadj[v + 1] && !clash; ++e)
      clash = color_of[static_cast<std::size_t>(g.adjncy[static_cast<std::size_t>(e)])] == c;
    if (!clash) return c;
  }
  return -1;
}

}  // namespace

Coloring multicolor(const sparse::Graph& g, int target_colors) {
  GEOFEM_CHECK(target_colors >= 1, "need >= 1 color");
  Coloring col;
  col.color_of.assign(static_cast<std::size_t>(g.n), -1);
  int ncolors = target_colors;
  int cursor = 0;
  for (int v = 0; v < g.n; ++v) {
    int c = first_free_color(g, col.color_of, v, cursor % ncolors, ncolors);
    if (c < 0) c = ncolors++;  // graph forces an extra color
    col.color_of[static_cast<std::size_t>(v)] = c;
    ++cursor;
  }
  col.num_colors = ncolors;
  return col;
}

Coloring cm_rcm(const sparse::Graph& g, int target_colors) {
  GEOFEM_CHECK(target_colors >= 1, "need >= 1 color");
  const LevelOrder lo = cuthill_mckee(g);
  Coloring col;
  col.color_of.assign(static_cast<std::size_t>(g.n), -1);
  int ncolors = target_colors;

  const int nlevels = static_cast<int>(lo.levels.size()) - 1;
  // RCM: reverse the level sequence, then color level L with L mod C.
  for (int lev = 0; lev < nlevels; ++lev) {
    const int rlev = nlevels - 1 - lev;
    const int want = lev % ncolors;
    for (int p = lo.levels[static_cast<std::size_t>(rlev)];
         p < lo.levels[static_cast<std::size_t>(rlev) + 1]; ++p) {
      const int v = lo.order[static_cast<std::size_t>(p)];
      // Repair pass folded in: if a same-level neighbour already holds `want`
      // (possible on 27-point stencils), take the next conflict-free color.
      int c = first_free_color(g, col.color_of, v, want, ncolors);
      if (c < 0) c = ncolors++;
      col.color_of[static_cast<std::size_t>(v)] = c;
    }
  }
  col.num_colors = ncolors;
  return col;
}

sparse::Graph quotient_graph(const sparse::Graph& g, const std::vector<int>& vertex_to_super,
                             int num_supers) {
  GEOFEM_CHECK(static_cast<int>(vertex_to_super.size()) == g.n, "map size mismatch");
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(num_supers));
  for (int v = 0; v < g.n; ++v) {
    const int sv = vertex_to_super[static_cast<std::size_t>(v)];
    for (int e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
      const int sw = vertex_to_super[static_cast<std::size_t>(g.adjncy[static_cast<std::size_t>(e)])];
      if (sv != sw) adj[static_cast<std::size_t>(sv)].push_back(sw);
    }
  }
  sparse::Graph q;
  q.n = num_supers;
  q.xadj.assign(static_cast<std::size_t>(num_supers) + 1, 0);
  for (int s = 0; s < num_supers; ++s) {
    auto& a = adj[static_cast<std::size_t>(s)];
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
    q.xadj[s + 1] = q.xadj[s] + static_cast<int>(a.size());
  }
  q.adjncy.reserve(static_cast<std::size_t>(q.xadj[num_supers]));
  for (auto& a : adj) q.adjncy.insert(q.adjncy.end(), a.begin(), a.end());
  return q;
}

Coloring lift_coloring(const Coloring& super_coloring, const std::vector<int>& vertex_to_super,
                       int num_vertices) {
  Coloring col;
  col.num_colors = super_coloring.num_colors;
  col.color_of.resize(static_cast<std::size_t>(num_vertices));
  for (int v = 0; v < num_vertices; ++v)
    col.color_of[static_cast<std::size_t>(v)] =
        super_coloring.color_of[static_cast<std::size_t>(vertex_to_super[static_cast<std::size_t>(v)])];
  return col;
}

}  // namespace geofem::reorder
