#pragma once

#include <cstddef>
#include <span>
#include <vector>

/// geofem::par — the hybrid-execution layer (DESIGN.md §5e).
///
/// The paper's three-level programming model is MPI across SMP nodes, OpenMP
/// across the PEs of a node, and vectorization inside each PE. This layer
/// supplies the middle level: a per-thread team-size setting (so each
/// simulated-MPI rank can run its own OpenMP team), a deterministic
/// fixed-shape reduction for the BLAS-1 kernels, and level schedules that let
/// the substitution sweeps run rows of one dependency level concurrently.
///
/// The contract every kernel built on this layer honours: results are
/// BIT-IDENTICAL for any team size. Reductions always use the same chunk
/// grid and the same pairwise combination tree regardless of how chunks are
/// assigned to threads; parallel sweeps only reorder *row* execution, never
/// the arithmetic inside a row or the order of accumulations into one row.
///
/// Interplay with the SIMD layer (geofem::simd, DESIGN.md 5f): lanes sit
/// *inside* the unit this layer schedules — vectorization changes how one
/// row/chunk is computed, threading changes which thread computes it. A
/// kernel's per-row arithmetic is fixed per build configuration (scalar, omp
/// or avx2), so the team-size bit-identity above holds within every SIMD
/// configuration; only *across* configurations do results differ (tolerance-
/// checked, <= 1e-13 relative).
namespace geofem::par {

/// Threads the host offers (omp_get_max_threads, 1 without OpenMP).
[[nodiscard]] int hardware_threads();

/// Resolve a requested team size: 0 (or negative) means "all hardware
/// threads"; anything else is taken as given (clamped to >= 1).
[[nodiscard]] int resolve_threads(int requested);

/// Team size for hybrid kernels on the calling thread. Defaults to all
/// hardware threads; overridden per thread by TeamScope (which is how
/// SolveConfig::threads / DistOptions::threads reach the kernels).
[[nodiscard]] int threads();

/// RAII override of the calling thread's team size. Nests; the previous
/// setting is restored on destruction. Thread-local by design: each
/// simulated-MPI rank thread carries its own team size.
class TeamScope {
 public:
  explicit TeamScope(int requested);
  ~TeamScope();
  TeamScope(const TeamScope&) = delete;
  TeamScope& operator=(const TeamScope&) = delete;

 private:
  int prev_;
};

// ---------------------------------------------------------------------------
// Deterministic reductions
// ---------------------------------------------------------------------------

/// Fixed chunk length of the deterministic reductions. The chunk grid depends
/// only on the vector length, never on the team size, so per-chunk partial
/// sums are identical no matter which thread computes them.
inline constexpr std::size_t kReduceChunk = 1024;

/// Number of reduction chunks covering a vector of length n.
[[nodiscard]] inline std::size_t reduce_chunks(std::size_t n) {
  return (n + kReduceChunk - 1) / kReduceChunk;
}

/// Combine per-chunk partials with a fixed-shape pairwise tree (split at
/// n/2, recurse). The shape depends only on `n`, which makes the result
/// independent of thread count — and better conditioned than a left-to-right
/// running sum as a bonus. Templated on the partial scalar so fp32-staged
/// kernels can reduce in their stored precision; T = double is the
/// historical (bit-exact) reduction.
template <class T>
[[nodiscard]] T combine(const T* partials, std::size_t n) {
  if (n == 0) return T(0);
  if (n == 1) return partials[0];
  if (n == 2) return partials[0] + partials[1];
  const std::size_t h = n / 2;
  return combine(partials, h) + combine(partials + h, n - h);
}

// ---------------------------------------------------------------------------
// Static range partition
// ---------------------------------------------------------------------------

/// Contiguous element range [begin, end).
struct Range {
  std::size_t begin = 0;
  std::size_t end = 0;
  [[nodiscard]] std::size_t size() const { return end - begin; }
};

/// Deterministic static partition of [0, n) into `parts` contiguous ranges;
/// the first n % parts ranges get one extra element. Used where a kernel
/// wants explicit ranges instead of an `omp for` (e.g. per-thread staging
/// buffers).
[[nodiscard]] Range static_range(std::size_t n, int parts, int part);

// ---------------------------------------------------------------------------
// Level schedules for triangular substitution
// ---------------------------------------------------------------------------

/// Rows grouped by dependency level: all rows of one level are mutually
/// independent in the triangular pattern, so they can run concurrently,
/// while levels execute in order. Within a level, rows are kept in their
/// original (ascending) order. Executing a sweep level by level produces
/// bit-identical results to the natural-order serial sweep: each row's
/// arithmetic is unchanged and all of its dependencies are complete when it
/// runs. On MC/CM-RCM-ordered matrices the levels coincide with the colors.
struct LevelSchedule {
  std::vector<int> rows;       ///< all rows, grouped by level
  std::vector<int> level_ptr;  ///< size num_levels() + 1

  [[nodiscard]] int num_levels() const { return static_cast<int>(level_ptr.size()) - 1; }
  [[nodiscard]] std::span<const int> level(int l) const {
    return std::span<const int>(rows).subspan(
        static_cast<std::size_t>(level_ptr[static_cast<std::size_t>(l)]),
        static_cast<std::size_t>(level_ptr[static_cast<std::size_t>(l) + 1] -
                                 level_ptr[static_cast<std::size_t>(l)]));
  }
  /// A schedule with one row per level is fully sequential — parallel
  /// execution would only add fork/join overhead.
  [[nodiscard]] bool sequential() const {
    return num_levels() >= static_cast<int>(rows.size());
  }
};

/// Build a schedule from per-row levels (level_of[i] in [0, max_level]).
/// Stable: rows of equal level keep ascending order.
[[nodiscard]] LevelSchedule schedule_from_levels(std::span<const int> level_of);

/// Execute `row(i)` for every row of the schedule, level by level, with rows
/// of one level spread over `team` threads. With team <= 1 (or a fully
/// sequential schedule) the rows run serially in schedule order — same
/// values either way, since rows within a level are independent.
template <class RowFn>
inline void for_levels(const LevelSchedule& s, int team, RowFn&& row) {
  if (team <= 1 || s.sequential()) {
    for (int r : s.rows) row(r);
    return;
  }
  for (int l = 0; l < s.num_levels(); ++l) {
    const auto lv = s.level(l);
    const std::ptrdiff_t m = static_cast<std::ptrdiff_t>(lv.size());
#pragma omp parallel for schedule(static) num_threads(team) if (m > 1)
    for (std::ptrdiff_t t = 0; t < m; ++t) row(lv[static_cast<std::size_t>(t)]);
  }
}

}  // namespace geofem::par
