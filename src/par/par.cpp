#include "par/par.hpp"

#include <algorithm>

#include "util/check.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace geofem::par {

int hardware_threads() {
#ifdef _OPENMP
  return std::max(1, omp_get_max_threads());
#else
  return 1;
#endif
}

int resolve_threads(int requested) {
  return requested <= 0 ? hardware_threads() : requested;
}

namespace {
// 0 = unset: threads() falls back to the hardware default, so library
// entry points that never open a TeamScope still behave like plain OpenMP.
thread_local int tl_team = 0;
}  // namespace

int threads() { return tl_team > 0 ? tl_team : hardware_threads(); }

TeamScope::TeamScope(int requested) : prev_(tl_team) { tl_team = resolve_threads(requested); }

TeamScope::~TeamScope() { tl_team = prev_; }

Range static_range(std::size_t n, int parts, int part) {
  GEOFEM_CHECK(parts >= 1 && part >= 0 && part < parts, "static_range: bad part index");
  const std::size_t p = static_cast<std::size_t>(parts);
  const std::size_t t = static_cast<std::size_t>(part);
  const std::size_t base = n / p;
  const std::size_t extra = n % p;
  const std::size_t begin = t * base + std::min(t, extra);
  return {begin, begin + base + (t < extra ? 1 : 0)};
}

LevelSchedule schedule_from_levels(std::span<const int> level_of) {
  LevelSchedule s;
  int nlev = 0;
  for (int l : level_of) {
    GEOFEM_CHECK(l >= 0, "schedule_from_levels: negative level");
    nlev = std::max(nlev, l + 1);
  }
  s.level_ptr.assign(static_cast<std::size_t>(nlev) + 1, 0);
  for (int l : level_of) ++s.level_ptr[static_cast<std::size_t>(l) + 1];
  for (int l = 0; l < nlev; ++l)
    s.level_ptr[static_cast<std::size_t>(l) + 1] += s.level_ptr[static_cast<std::size_t>(l)];
  s.rows.resize(level_of.size());
  std::vector<int> pos(s.level_ptr.begin(), s.level_ptr.end() - 1);
  for (std::size_t i = 0; i < level_of.size(); ++i)
    s.rows[static_cast<std::size_t>(pos[static_cast<std::size_t>(level_of[i])]++)] =
        static_cast<int>(i);
  return s;
}

}  // namespace geofem::par
