#include "fem/elasticity.hpp"

#include <cmath>

namespace geofem::fem {

namespace {

// Reference coordinates of the 8 vertices.
constexpr double kXi[8] = {-1, 1, 1, -1, -1, 1, 1, -1};
constexpr double kEta[8] = {-1, -1, 1, 1, -1, -1, 1, 1};
constexpr double kZeta[8] = {-1, -1, -1, -1, 1, 1, 1, 1};

/// dN/d(xi,eta,zeta) for all 8 shape functions at a quadrature point.
void shape_grad(double xi, double eta, double zeta, double dn[8][3]) {
  for (int a = 0; a < 8; ++a) {
    dn[a][0] = 0.125 * kXi[a] * (1 + kEta[a] * eta) * (1 + kZeta[a] * zeta);
    dn[a][1] = 0.125 * kEta[a] * (1 + kXi[a] * xi) * (1 + kZeta[a] * zeta);
    dn[a][2] = 0.125 * kZeta[a] * (1 + kXi[a] * xi) * (1 + kEta[a] * eta);
  }
}

/// Jacobian of the isoparametric map, its determinant and inverse.
double jacobian(const std::array<std::array<double, 3>, 8>& xyz, const double dn[8][3],
                double jinv[3][3]) {
  double j[3][3] = {};
  for (int a = 0; a < 8; ++a)
    for (int r = 0; r < 3; ++r)
      for (int c = 0; c < 3; ++c) j[r][c] += dn[a][r] * xyz[static_cast<std::size_t>(a)][c];
  const double det = j[0][0] * (j[1][1] * j[2][2] - j[1][2] * j[2][1]) -
                     j[0][1] * (j[1][0] * j[2][2] - j[1][2] * j[2][0]) +
                     j[0][2] * (j[1][0] * j[2][1] - j[1][1] * j[2][0]);
  const double id = 1.0 / det;
  jinv[0][0] = (j[1][1] * j[2][2] - j[1][2] * j[2][1]) * id;
  jinv[0][1] = (j[0][2] * j[2][1] - j[0][1] * j[2][2]) * id;
  jinv[0][2] = (j[0][1] * j[1][2] - j[0][2] * j[1][1]) * id;
  jinv[1][0] = (j[1][2] * j[2][0] - j[1][0] * j[2][2]) * id;
  jinv[1][1] = (j[0][0] * j[2][2] - j[0][2] * j[2][0]) * id;
  jinv[1][2] = (j[0][2] * j[1][0] - j[0][0] * j[1][2]) * id;
  jinv[2][0] = (j[1][0] * j[2][1] - j[1][1] * j[2][0]) * id;
  jinv[2][1] = (j[0][1] * j[2][0] - j[0][0] * j[2][1]) * id;
  jinv[2][2] = (j[0][0] * j[1][1] - j[0][1] * j[1][0]) * id;
  return det;
}

}  // namespace

std::array<double, 8> hex_shape(double xi, double eta, double zeta) {
  std::array<double, 8> n{};
  for (int a = 0; a < 8; ++a)
    n[static_cast<std::size_t>(a)] =
        0.125 * (1 + kXi[a] * xi) * (1 + kEta[a] * eta) * (1 + kZeta[a] * zeta);
  return n;
}

void hex_stiffness(const std::array<std::array<double, 3>, 8>& xyz, const Material& mat,
                   double ke[24 * 24]) {
  for (int i = 0; i < 24 * 24; ++i) ke[i] = 0.0;

  // Isotropic elasticity constants (Lame).
  const double e = mat.youngs, nu = mat.poisson;
  const double lambda = e * nu / ((1 + nu) * (1 - 2 * nu));
  const double mu = e / (2 * (1 + nu));

  const double g = 1.0 / std::sqrt(3.0);
  for (int qx = 0; qx < 2; ++qx)
    for (int qy = 0; qy < 2; ++qy)
      for (int qz = 0; qz < 2; ++qz) {
        const double xi = (qx ? g : -g), eta = (qy ? g : -g), zeta = (qz ? g : -g);
        double dn[8][3], jinv[3][3];
        shape_grad(xi, eta, zeta, dn);
        const double det = jacobian(xyz, dn, jinv);
        // Physical gradients grad N_a.
        double gn[8][3];
        for (int a = 0; a < 8; ++a)
          for (int d = 0; d < 3; ++d)
            gn[a][d] = jinv[d][0] * dn[a][0] + jinv[d][1] * dn[a][1] + jinv[d][2] * dn[a][2];

        // K_ab(r,c) = lambda * gn_a[r] * gn_b[c]
        //           + mu * (gn_a[c] * gn_b[r] + delta_rc * sum_d gn_a[d] gn_b[d])
        for (int a = 0; a < 8; ++a) {
          for (int b = 0; b < 8; ++b) {
            const double dotab =
                gn[a][0] * gn[b][0] + gn[a][1] * gn[b][1] + gn[a][2] * gn[b][2];
            for (int r = 0; r < 3; ++r)
              for (int c = 0; c < 3; ++c) {
                double v = lambda * gn[a][r] * gn[b][c] + mu * gn[a][c] * gn[b][r];
                if (r == c) v += mu * dotab;
                ke[(3 * a + r) * 24 + (3 * b + c)] += v * det;
              }
          }
        }
      }
}

double hex_volume(const std::array<std::array<double, 3>, 8>& xyz) {
  const double g = 1.0 / std::sqrt(3.0);
  double vol = 0.0;
  for (int qx = 0; qx < 2; ++qx)
    for (int qy = 0; qy < 2; ++qy)
      for (int qz = 0; qz < 2; ++qz) {
        const double xi = (qx ? g : -g), eta = (qy ? g : -g), zeta = (qz ? g : -g);
        double dn[8][3], jinv[3][3];
        shape_grad(xi, eta, zeta, dn);
        vol += jacobian(xyz, dn, jinv);
      }
  return vol;
}

}  // namespace geofem::fem
