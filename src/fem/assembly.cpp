#include "fem/assembly.hpp"

#include <cmath>

#include "util/check.hpp"

namespace geofem::fem {

void BoundaryConditions::fix_nodes(const std::vector<int>& nodes, int comp, double value) {
  for (int n : nodes) {
    if (comp < 0) {
      for (int c = 0; c < 3; ++c) fixes.push_back({n, c, value});
    } else {
      fixes.push_back({n, comp, value});
    }
  }
}

void BoundaryConditions::surface_load(
    const mesh::HexMesh& m, const std::function<bool(double, double, double)>& on_surface,
    int comp, double q) {
  // Local faces of the standard hexahedron.
  static const int faces[6][4] = {{0, 1, 2, 3}, {4, 5, 6, 7}, {0, 1, 5, 4},
                                  {2, 3, 7, 6}, {1, 2, 6, 5}, {3, 0, 4, 7}};
  auto on = [&](int node) {
    const auto& c = m.coords[static_cast<std::size_t>(node)];
    return on_surface(c[0], c[1], c[2]);
  };
  for (const auto& h : m.hexes) {
    for (const auto& f : faces) {
      const int n0 = h[static_cast<std::size_t>(f[0])], n1 = h[static_cast<std::size_t>(f[1])],
                n2 = h[static_cast<std::size_t>(f[2])], n3 = h[static_cast<std::size_t>(f[3])];
      if (!(on(n0) && on(n1) && on(n2) && on(n3))) continue;
      // Bilinear quad area via the two triangles (n0,n1,n2) and (n0,n2,n3).
      auto area3 = [&](int a, int b, int c) {
        const auto &pa = m.coords[static_cast<std::size_t>(a)],
                   &pb = m.coords[static_cast<std::size_t>(b)],
                   &pc = m.coords[static_cast<std::size_t>(c)];
        const double u[3] = {pb[0] - pa[0], pb[1] - pa[1], pb[2] - pa[2]};
        const double v[3] = {pc[0] - pa[0], pc[1] - pa[1], pc[2] - pa[2]};
        const double cx = u[1] * v[2] - u[2] * v[1];
        const double cy = u[2] * v[0] - u[0] * v[2];
        const double cz = u[0] * v[1] - u[1] * v[0];
        return 0.5 * std::sqrt(cx * cx + cy * cy + cz * cz);
      };
      const double area = area3(n0, n1, n2) + area3(n0, n2, n3);
      const double per_node = q * area / 4.0;
      for (int v : {n0, n1, n2, n3}) loads.push_back({v, comp, per_node});
    }
  }
}

void BoundaryConditions::body_force(const mesh::HexMesh& m, int comp, double f) {
  for (const auto& h : m.hexes) {
    std::array<std::array<double, 3>, 8> xyz;
    for (int v = 0; v < 8; ++v) xyz[static_cast<std::size_t>(v)] =
        m.coords[static_cast<std::size_t>(h[static_cast<std::size_t>(v)])];
    const double per_node = f * hex_volume(xyz) / 8.0;
    for (int v : h) loads.push_back({v, comp, per_node});
  }
}

System assemble_elasticity(const mesh::HexMesh& m, const std::vector<Material>& materials) {
  GEOFEM_CHECK(!materials.empty(), "need at least one material");
  const int nn = m.num_nodes();
  sparse::BlockCSRBuilder builder(nn);

  // Element couplings.
  for (const auto& h : m.hexes)
    for (int a : h)
      for (int b : h)
        if (a != b) builder.add_pattern(a, b);
  // Contact-group couplings (penalty blocks added later in place).
  for (const auto& g : m.contact_groups)
    for (int a : g)
      for (int b : g)
        if (a != b) builder.add_pattern(a, b);
  builder.finalize_pattern();

  double ke[24 * 24];
  for (std::size_t e = 0; e < m.hexes.size(); ++e) {
    const auto& h = m.hexes[e];
    std::array<std::array<double, 3>, 8> xyz;
    for (int v = 0; v < 8; ++v) xyz[static_cast<std::size_t>(v)] =
        m.coords[static_cast<std::size_t>(h[static_cast<std::size_t>(v)])];
    const int zid = m.zone.empty() ? 0 : m.zone[e];
    const Material& mat =
        materials[static_cast<std::size_t>(zid) < materials.size() ? static_cast<std::size_t>(zid)
                                                                   : 0];
    hex_stiffness(xyz, mat, ke);
    for (int a = 0; a < 8; ++a) {
      for (int b = 0; b < 8; ++b) {
        double blk[9];
        for (int r = 0; r < 3; ++r)
          for (int c = 0; c < 3; ++c) blk[3 * r + c] = ke[(3 * a + r) * 24 + (3 * b + c)];
        builder.add_block(h[static_cast<std::size_t>(a)], h[static_cast<std::size_t>(b)], blk);
      }
    }
  }

  System sys;
  sys.a = builder.take();
  sys.b.assign(sys.a.ndof(), 0.0);
  return sys;
}

void apply_boundary_conditions(System& sys, const BoundaryConditions& bc) {
  auto& a = sys.a;
  auto& b = sys.b;
  GEOFEM_CHECK(b.size() == a.ndof(), "system size mismatch");

  for (const auto& l : bc.loads) {
    GEOFEM_CHECK(l.node >= 0 && l.node < a.n && l.comp >= 0 && l.comp < 3, "bad load");
    b[static_cast<std::size_t>(l.node) * 3 + static_cast<std::size_t>(l.comp)] += l.value;
  }

  // Mark fixed DOFs.
  std::vector<char> fixed(a.ndof(), 0);
  std::vector<double> fixval(a.ndof(), 0.0);
  for (const auto& f : bc.fixes) {
    GEOFEM_CHECK(f.node >= 0 && f.node < a.n && f.comp >= 0 && f.comp < 3, "bad fix");
    const std::size_t d = static_cast<std::size_t>(f.node) * 3 + static_cast<std::size_t>(f.comp);
    fixed[d] = 1;
    fixval[d] = f.value;
  }

  // Symmetric elimination. For each stored block (i,j), scalar entry
  // (r,c) = DOF (3i+r, 3j+c):
  //  * both free: untouched
  //  * column fixed: b_row -= a * value, then zero
  //  * row fixed, col free: zero (the transpose pass handles the RHS)
  //  * both fixed: keep only the diagonal scalar
  for (int i = 0; i < a.n; ++i) {
    for (int e = a.rowptr[i]; e < a.rowptr[i + 1]; ++e) {
      const int j = a.colind[e];
      double* blk = a.block(e);
      for (int r = 0; r < 3; ++r) {
        const std::size_t row = static_cast<std::size_t>(i) * 3 + static_cast<std::size_t>(r);
        for (int c = 0; c < 3; ++c) {
          const std::size_t col = static_cast<std::size_t>(j) * 3 + static_cast<std::size_t>(c);
          double& v = blk[3 * r + c];
          if (row == col) continue;  // diagonal scalar handled below
          if (fixed[col] && !fixed[row]) b[row] -= v * fixval[col];
          if (fixed[row] || fixed[col]) v = 0.0;
        }
      }
    }
  }
  // Fixed diagonal scalars: keep original magnitude (conditioning-neutral),
  // set RHS so the solve returns exactly the prescribed value.
  for (int i = 0; i < a.n; ++i) {
    double* d = a.block(a.diag_entry(i));
    for (int r = 0; r < 3; ++r) {
      const std::size_t row = static_cast<std::size_t>(i) * 3 + static_cast<std::size_t>(r);
      if (!fixed[row]) continue;
      if (d[3 * r + r] == 0.0) d[3 * r + r] = 1.0;
      b[row] = d[3 * r + r] * fixval[row];
    }
  }
}

std::vector<std::vector<double>> apply_boundary_conditions_multi(
    System& sys, const BoundaryConditions& bc, const std::vector<double>& load_scales) {
  auto& a = sys.a;
  GEOFEM_CHECK(!load_scales.empty(), "apply_boundary_conditions_multi: no columns");
  GEOFEM_CHECK(sys.b.size() == a.ndof(), "system size mismatch");
  const std::size_t k = load_scales.size();

  std::vector<std::vector<double>> cols(k, sys.b);
  for (std::size_t c = 0; c < k; ++c) {
    // Same arithmetic as the single-RHS path with a pre-scaled load list:
    // the product l.value * scale is formed first, then added.
    for (const auto& l : bc.loads) {
      GEOFEM_CHECK(l.node >= 0 && l.node < a.n && l.comp >= 0 && l.comp < 3, "bad load");
      cols[c][static_cast<std::size_t>(l.node) * 3 + static_cast<std::size_t>(l.comp)] +=
          l.value * load_scales[c];
    }
  }

  std::vector<char> fixed(a.ndof(), 0);
  std::vector<double> fixval(a.ndof(), 0.0);
  for (const auto& f : bc.fixes) {
    GEOFEM_CHECK(f.node >= 0 && f.node < a.n && f.comp >= 0 && f.comp < 3, "bad fix");
    const std::size_t d = static_cast<std::size_t>(f.node) * 3 + static_cast<std::size_t>(f.comp);
    fixed[d] = 1;
    fixval[d] = f.value;
  }

  // One elimination sweep: every column's RHS update reads the matrix value
  // BEFORE it is zeroed, exactly as k independent single-RHS sweeps would.
  for (int i = 0; i < a.n; ++i) {
    for (int e = a.rowptr[i]; e < a.rowptr[i + 1]; ++e) {
      const int j = a.colind[e];
      double* blk = a.block(e);
      for (int r = 0; r < 3; ++r) {
        const std::size_t row = static_cast<std::size_t>(i) * 3 + static_cast<std::size_t>(r);
        for (int c = 0; c < 3; ++c) {
          const std::size_t col = static_cast<std::size_t>(j) * 3 + static_cast<std::size_t>(c);
          double& v = blk[3 * r + c];
          if (row == col) continue;
          if (fixed[col] && !fixed[row])
            for (std::size_t cc = 0; cc < k; ++cc) cols[cc][row] -= v * fixval[col];
          if (fixed[row] || fixed[col]) v = 0.0;
        }
      }
    }
  }
  for (int i = 0; i < a.n; ++i) {
    double* d = a.block(a.diag_entry(i));
    for (int r = 0; r < 3; ++r) {
      const std::size_t row = static_cast<std::size_t>(i) * 3 + static_cast<std::size_t>(r);
      if (!fixed[row]) continue;
      if (d[3 * r + r] == 0.0) d[3 * r + r] = 1.0;
      for (std::size_t cc = 0; cc < k; ++cc) cols[cc][row] = d[3 * r + r] * fixval[row];
    }
  }
  return cols;
}

}  // namespace geofem::fem
