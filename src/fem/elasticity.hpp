#pragma once

#include <array>

namespace geofem::fem {

/// Isotropic linear-elastic material. The paper uses non-dimensional
/// E = 1.0, nu = 0.3 for all zones.
struct Material {
  double youngs = 1.0;
  double poisson = 0.3;
};

/// Element stiffness of an 8-node tri-linear hexahedron (24x24, row-major),
/// integrated with 2x2x2 Gauss quadrature. `xyz` holds the vertex coordinates
/// in the standard counter-clockwise bottom/top numbering.
void hex_stiffness(const std::array<std::array<double, 3>, 8>& xyz, const Material& mat,
                   double ke[24 * 24]);

/// Shape-function values N_a(xi, eta, zeta) for the 8-node hexahedron.
std::array<double, 8> hex_shape(double xi, double eta, double zeta);

/// Volume of the hexahedron by the same quadrature (useful for body forces).
double hex_volume(const std::array<std::array<double, 3>, 8>& xyz);

}  // namespace geofem::fem
