#pragma once

#include <functional>
#include <vector>

#include "fem/elasticity.hpp"
#include "mesh/hex_mesh.hpp"
#include "sparse/block_csr.hpp"

namespace geofem::fem {

/// Boundary conditions in nodal form. Helpers below translate surface
/// predicates (the paper's "symmetry at x=0", "fixed at z=0", "uniform load at
/// z=Zmax") into these lists.
struct BoundaryConditions {
  struct Fix {
    int node;
    int comp;      ///< 0=x, 1=y, 2=z
    double value;  ///< prescribed displacement (0 in all paper cases)
  };
  struct Load {
    int node;
    int comp;
    double value;  ///< nodal force
  };
  std::vector<Fix> fixes;
  std::vector<Load> loads;

  /// Fix component `comp` (or all three if comp < 0) at the selected nodes.
  void fix_nodes(const std::vector<int>& nodes, int comp, double value = 0.0);

  /// Consistent nodal loads for a uniform traction `q` in direction `comp`
  /// applied on the element faces whose four vertices all satisfy `on_surface`
  /// (quarter of the bilinear face area per vertex).
  void surface_load(const mesh::HexMesh& m,
                    const std::function<bool(double, double, double)>& on_surface, int comp,
                    double q);

  /// Body force per unit volume in direction `comp` (lumped: volume/8 per
  /// element vertex), as used by the Southwest Japan model (-1.0 in z).
  void body_force(const mesh::HexMesh& m, int comp, double f);
};

/// Assembled linear system K u = f (before contact penalties / Dirichlet).
struct System {
  sparse::BlockCSR a;
  std::vector<double> b;
};

/// Assemble the elastic stiffness matrix over the mesh. `materials` is indexed
/// by element zone id (a single entry applies everywhere). The sparsity
/// pattern also includes all intra-contact-group couplings so penalty blocks
/// can be added in place afterwards.
System assemble_elasticity(const mesh::HexMesh& m, const std::vector<Material>& materials);

/// Apply loads to b and Dirichlet fixes to (a, b) by symmetric elimination:
/// row/column zeroed, diagonal entry kept at its original scale, RHS adjusted
/// so the fixed value is reproduced exactly. Preserves SPD.
void apply_boundary_conditions(System& sys, const BoundaryConditions& bc);

/// Batched variant for the multi-RHS solve path (DESIGN.md §5k): ONE
/// symmetric elimination sweep of the matrix serving k right-hand sides at
/// once. Column c starts from sys.b with every load scaled by
/// load_scales[c] (fixes are shared — Dirichlet data does not scale with the
/// load factor). The elimination updates every column from the SAME
/// pre-zeroing matrix values, so each returned column is bit-identical to
/// what apply_boundary_conditions would produce for that load scale alone.
/// On return sys.a is eliminated exactly as the single-RHS path leaves it;
/// sys.b is left untouched (the per-column RHS live in the return value).
std::vector<std::vector<double>> apply_boundary_conditions_multi(
    System& sys, const BoundaryConditions& bc, const std::vector<double>& load_scales);

}  // namespace geofem::fem
