#pragma once

#include <chrono>

namespace geofem::util {

/// Wall-clock stopwatch. start() resets; seconds() reads elapsed time.
class Timer {
 public:
  Timer() { start(); }

  void start() { t0_ = Clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - t0_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point t0_;
};

/// Accumulating timer: sums intervals between resume() and pause().
class AccumTimer {
 public:
  /// No-op while already running: a stray second resume() must not restart
  /// the stopwatch and drop the interval accumulated since the first one.
  void resume() {
    if (active_) return;
    running_.start();
    active_ = true;
  }

  void pause() {
    if (active_) total_ += running_.seconds();
    active_ = false;
  }

  [[nodiscard]] double seconds() const {
    return active_ ? total_ + running_.seconds() : total_;
  }

  void reset() { total_ = 0.0; active_ = false; }

 private:
  Timer running_;
  double total_ = 0.0;
  bool active_ = false;
};

}  // namespace geofem::util
