#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace geofem::util {

/// Minimal fixed-width text table used by the benchmark harnesses to print
/// rows in the same layout as the paper's tables.
class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& r : rows_)
      for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c)
        widths[c] = std::max(widths[c], r[c].size());

    auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < widths.size(); ++c) {
        os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
           << (c < cells.size() ? cells[c] : "");
      }
      os << '\n';
    };
    line(headers_);
    std::string sep;
    for (std::size_t c = 0; c < widths.size(); ++c) sep += std::string(widths[c], '-') + "  ";
    os << sep << '\n';
    for (const auto& r : rows_) line(r);
  }

  static std::string fmt(double v, int prec = 3) {
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(prec) << v;
    return ss.str();
  }

  static std::string sci(double v, int prec = 3) {
    std::ostringstream ss;
    ss << std::scientific << std::setprecision(prec) << v;
    return ss.str();
  }

  [[nodiscard]] const std::vector<std::string>& headers() const { return headers_; }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace geofem::util
