#pragma once

#include <cstdint>

namespace geofem::util {

/// Counts floating-point operations attributed to the major kernels of a
/// preconditioned Krylov solve. All counts are *algorithmic* (what the paper's
/// FLOP rates are computed from), accumulated explicitly by each kernel.
struct FlopCounter {
  std::uint64_t spmv = 0;       ///< matrix-vector products
  std::uint64_t precond = 0;    ///< forward/backward substitution
  std::uint64_t blas1 = 0;      ///< dots, axpys, scalings
  std::uint64_t factor = 0;     ///< factorization set-up

  [[nodiscard]] std::uint64_t solve_total() const { return spmv + precond + blas1; }
  [[nodiscard]] std::uint64_t total() const { return solve_total() + factor; }

  FlopCounter& operator+=(const FlopCounter& o) {
    spmv += o.spmv;
    precond += o.precond;
    blas1 += o.blas1;
    factor += o.factor;
    return *this;
  }

  void reset() { *this = FlopCounter{}; }
};

}  // namespace geofem::util
