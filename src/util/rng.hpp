#pragma once

#include <cmath>
#include <cstdint>

namespace geofem::util {

/// Deterministic xoshiro256** generator. We avoid std::mt19937 so that mesh
/// perturbations and synthetic workloads are reproducible across standard
/// library implementations.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 seeding
    std::uint64_t z = seed;
    for (auto& si : s_) {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      si = x ^ (x >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n) { return n == 0 ? 0 : next_u64() % n; }

  /// Exponential variate with rate `rate` (mean 1/rate) — Poisson-process
  /// inter-arrival times for the service workload generator.
  double next_exponential(double rate) {
    // 1 - next_double() is in (0, 1], so the log argument is never zero.
    double u = 1.0 - next_double();
    return -std::log(u) / rate;
  }

  /// Advance 2^128 steps of the underlying sequence (the canonical
  /// xoshiro256** jump polynomial). Starting from one seed, `k` jumps give
  /// stream `k`: 2^128 non-overlapping draws per stream, so concurrent
  /// service sessions never share state or overlap sequences.
  void jump() {
    static constexpr std::uint64_t kJump[4] = {0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                                               0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (std::uint64_t word : kJump)
      for (int b = 0; b < 64; ++b) {
        if (word & (1ULL << b)) {
          s0 ^= s_[0];
          s1 ^= s_[1];
          s2 ^= s_[2];
          s3 ^= s_[3];
        }
        next_u64();
      }
    s_[0] = s0;
    s_[1] = s1;
    s_[2] = s2;
    s_[3] = s3;
  }

  /// Deterministically derive an independent child generator and advance this
  /// one past the derivation draws. The child is re-seeded through splitmix64
  /// (not just copied+jumped), so parent and child decorrelate even when many
  /// splits happen in a tight loop.
  Rng split() {
    Rng child(next_u64() ^ 0x9e3779b97f4a7c15ULL);
    return child;
  }

  /// Stream `k` of this generator: a copy jumped k times. Each stream has
  /// 2^128 draws to itself — give one to each service session.
  Rng stream(std::uint64_t k) const {
    Rng r = *this;
    for (std::uint64_t i = 0; i < k; ++i) r.jump();
    return r;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t s_[4];
};

}  // namespace geofem::util
