#pragma once

#include <cstdint>

namespace geofem::util {

/// Deterministic xoshiro256** generator. We avoid std::mt19937 so that mesh
/// perturbations and synthetic workloads are reproducible across standard
/// library implementations.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 seeding
    std::uint64_t z = seed;
    for (auto& si : s_) {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      si = x ^ (x >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n) { return n == 0 ? 0 : next_u64() % n; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t s_[4];
};

}  // namespace geofem::util
