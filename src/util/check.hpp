#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace geofem::util {

[[noreturn]] inline void fail(const std::string& what, const char* file, int line) {
  std::ostringstream ss;
  ss << file << ':' << line << ": " << what;
  throw std::logic_error(ss.str());
}

}  // namespace geofem::util

/// Precondition / invariant check that stays on in release builds. These guard
/// user-facing API contracts (sizes, index ranges), not hot inner loops.
#define GEOFEM_CHECK(cond, msg)                                  \
  do {                                                           \
    if (!(cond)) ::geofem::util::fail((msg), __FILE__, __LINE__); \
  } while (0)
