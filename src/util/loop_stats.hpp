#pragma once

#include <cstdint>
#include <vector>

namespace geofem::util {

/// Histogram of innermost-loop trip counts executed by a vectorizable kernel.
///
/// On the Earth Simulator the sustained rate of a vector loop is a strong
/// function of its trip count ("average vector length" in the paper's Figs
/// 26(d)/27(d)/30(d)/31(d)). We record every innermost loop length actually
/// executed so the machine model can integrate rate(n) over the real
/// distribution instead of guessing.
class LoopStats {
 public:
  void record(std::int64_t length, std::int64_t times = 1) {
    if (length <= 0 || times <= 0) return;
    total_length_ += length * times;
    count_ += times;
    if (length > max_) max_ = length;
    if (length < min_ || count_ == times) min_ = length;
    lengths_.push_back({length, times});
  }

  [[nodiscard]] double average() const {
    return count_ == 0 ? 0.0 : static_cast<double>(total_length_) / static_cast<double>(count_);
  }

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] std::int64_t total_length() const { return total_length_; }
  [[nodiscard]] std::int64_t max_length() const { return max_; }
  [[nodiscard]] std::int64_t min_length() const { return count_ == 0 ? 0 : min_; }

  struct Entry {
    std::int64_t length;
    std::int64_t times;
  };
  [[nodiscard]] const std::vector<Entry>& entries() const { return lengths_; }

  void merge(const LoopStats& o) {
    for (const auto& e : o.lengths_) record(e.length, e.times);
  }

  void reset() { *this = LoopStats{}; }

 private:
  std::vector<Entry> lengths_;
  std::int64_t total_length_ = 0;
  std::int64_t count_ = 0;
  std::int64_t max_ = 0;
  std::int64_t min_ = 0;
};

}  // namespace geofem::util
