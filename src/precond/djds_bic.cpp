#include "precond/djds_bic.hpp"

#include <algorithm>

#include "obs/span.hpp"
#include "par/par.hpp"
#include "precond/sb_bic0.hpp"
#include "reorder/coloring.hpp"
#include "util/check.hpp"

namespace geofem::precond {

using sparse::kB;
using sparse::kBB;

namespace {

/// Fig 22 singleton batching at the pack's lane width: runs of consecutive
/// 3x3 units go into `pack`, everything else (multi-node supernodes) into
/// `rest`. Shared by the 4-lane fp64 and 8-lane fp32 mirrors.
template <class Pack, class Unit>
void batch_singleton_runs(const std::vector<Unit>& units, const std::vector<sparse::DenseLU>& lu,
                          Pack& pack, std::vector<Unit>& rest) {
  for (std::size_t t = 0; t < units.size();) {
    if (units[t].size != 1) {
      rest.push_back(units[t]);
      ++t;
      continue;
    }
    std::size_t end = t;
    while (end < units.size() && units[end].size == 1) ++end;
    for (std::size_t g = t; g < end; g += Pack::kLanes) {
      const int cnt = static_cast<int>(std::min<std::size_t>(Pack::kLanes, end - g));
      const sparse::DenseLU* lus[Pack::kLanes] = {};
      for (int l = 0; l < cnt; ++l)
        lus[l] = &lu[static_cast<std::size_t>(units[g + static_cast<std::size_t>(l)].id)];
      simd::pack_lu3_group(pack, lus, cnt, units[g].start);
    }
    t = end;
  }
}

}  // namespace

DJDSBIC::DJDSBIC(const sparse::BlockCSR& a, const reorder::DJDSMatrix& dj, Precision precision)
    : dj_(dj), precision_(precision) {
  GEOFEM_CHECK(a.n == dj.n(), "matrix/DJDS size mismatch");
  obs::ScopedSpan span("precond.factor.DJDS-BIC");

  // Units per chunk in new-row order (supernode ranges or singletons).
  const int nchunks = dj.num_colors() * dj.npe();
  chunk_units_.resize(static_cast<std::size_t>(nchunks));
  std::vector<std::vector<int>> unit_members;  // new-id member lists, ascending
  std::vector<int> row_unit(static_cast<std::size_t>(dj.n()), -1);
  for (int ch = 0; ch < nchunks; ++ch) {
    const int b = dj.chunk_begin()[static_cast<std::size_t>(ch)];
    const int e = dj.chunk_begin()[static_cast<std::size_t>(ch) + 1];
    for (int i = b; i < e;) {
      const int r = dj.range_of_row(i);
      const int size = r >= 0 ? dj.super_ranges()[static_cast<std::size_t>(r)].size : 1;
      if (size > 1) has_blocks_ = true;
      chunk_units_[static_cast<std::size_t>(ch)].push_back(
          {i, size, static_cast<int>(unit_members.size())});
      std::vector<int> mem(static_cast<std::size_t>(size));
      for (int t = 0; t < size; ++t) {
        mem[static_cast<std::size_t>(t)] = i + t;
        row_unit[static_cast<std::size_t>(i + t)] = static_cast<int>(unit_members.size());
      }
      unit_members.push_back(std::move(mem));
      i += size;
    }
  }

  // Factor D~ in the DJDS elimination order: permute the matrix and run the
  // shared selective-block factorization (units were created in ascending
  // new-row order, so unit id == elimination order).
  sparse::BlockCSR ap = sparse::permute(a, dj.perm());
  contact::Supernodes snp;
  snp.node_to_super = std::move(row_unit);
  snp.members = std::move(unit_members);
  lu_ = sb_factor_diagonals(ap, snp);

  // fp32 storage: narrow the unit LU factors and the jagged values once at
  // set-up (factorization itself ran in fp64 above). Overflow while
  // narrowing is this precision's "breakdown" — surfaced exactly like a
  // failed pivot so the precision-fallback layer re-sets-up at fp64.
  if (precision_ == Precision::kSingle) {
    lu32_.reserve(lu_.size());
    for (const auto& lu : lu_) {
      lu32_.emplace_back(lu);
      if (lu32_.back().overflowed())
        throw Error(StatusCode::kFactorizationFailed,
                    "fp32 narrowing overflow in selective-block factors");
    }
    f32_.resize(static_cast<std::size_t>(nchunks));
    for (int ch = 0; ch < nchunks; ++ch) {
      auto& f = f32_[static_cast<std::size_t>(ch)];
      const auto& lo = dj.lower(ch);
      const auto& up = dj.upper(ch);
      narrow_or_throw(lo.val, f.lower_val);
      narrow_or_throw(up.val, f.upper_val);
      simd::pack_jagged(lo.jd_ptr, lo.item, f.lower_val.data(), f.lower_packed);
      simd::pack_jagged(up.jd_ptr, up.item, f.upper_val.data(), f.upper_packed);
    }
  }

#if GEOFEM_SIMD_HAS_AVX2
  // Batch runs of consecutive singleton units one SIMD register wide (4 for
  // fp64, 8 for fp32 — units within a chunk occupy consecutive rows by
  // construction, so a run of singletons is a contiguous row range).
  // Multi-node supernodes keep their generic LU.
  chunk_rest_.resize(static_cast<std::size_t>(nchunks));
  if (precision_ == Precision::kSingle) {
    chunk_lu3f_.resize(static_cast<std::size_t>(nchunks));
    for (int ch = 0; ch < nchunks; ++ch)
      batch_singleton_runs(chunk_units_[static_cast<std::size_t>(ch)], lu_,
                           chunk_lu3f_[static_cast<std::size_t>(ch)],
                           chunk_rest_[static_cast<std::size_t>(ch)]);
  } else {
    chunk_lu3_.resize(static_cast<std::size_t>(nchunks));
    for (int ch = 0; ch < nchunks; ++ch)
      batch_singleton_runs(chunk_units_[static_cast<std::size_t>(ch)], lu_,
                           chunk_lu3_[static_cast<std::size_t>(ch)],
                           chunk_rest_[static_cast<std::size_t>(ch)]);
  }
#endif

  // Structural loop statistics + FLOPs of one apply() sweep: every jagged
  // diagonal loop (forward + backward) and the same-size selective-block
  // solve batches (Fig 22 vectorization across equal-size dense blocks).
  for (int ch = 0; ch < nchunks; ++ch) {
    for (const auto* part : {&dj.lower(ch), &dj.upper(ch)}) {
      for (int j = 0; j < part->num_jd(); ++j) {
        const int len = part->jd_ptr[static_cast<std::size_t>(j) + 1] -
                        part->jd_ptr[static_cast<std::size_t>(j)];
        if (len > 0) jagged_loops_.record(len);
        apply_flops_ += 2ULL * kBB * static_cast<std::uint64_t>(len);
      }
    }
    const auto& units = chunk_units_[static_cast<std::size_t>(ch)];
    for (std::size_t t = 0; t < units.size();) {
      std::size_t end = t;
      while (end < units.size() && units[end].size == units[t].size) ++end;
      batch_loops_.record(static_cast<std::int64_t>(end - t), 2);  // fwd + bwd
      t = end;
    }
  }
  for (const auto& lu : lu_) {
    apply_flops_ += 2 * lu.solve_flops();
    block_solve_flops_ += 2.0 * static_cast<double>(lu.solve_flops());
  }
  struct_loops_.merge(jagged_loops_);
  struct_loops_.merge(batch_loops_);
}

void DJDSBIC::apply(std::span<const double> r, std::span<double> z, util::FlopCounter* flops,
                    util::LoopStats* loops) const {
  const int n = dj_.n();
  GEOFEM_CHECK(static_cast<int>(r.size()) == n * kB && static_cast<int>(z.size()) == n * kB,
               "DJDSBIC apply size mismatch");
  if (precision_ == Precision::kSingle) {
    apply_f32(r, z);
    if (flops) flops->precond += apply_flops_;
    if (loops) loops->merge(struct_loops_);
    return;
  }
  const int npe = dj_.npe();
  const int team = par::threads();
  // Kernel tier read once, outside the parallel regions.
  const bool avx2 = simd::active() == simd::Isa::kAvx2;
  (void)avx2;

  // forward: per color (sequential), per PE chunk (parallel):
  //   z_chunk = r_chunk - L_chunk * z(earlier colors); unit solves in place.
  // The jagged gathers only read rows of earlier colors (colors are
  // independent sets), never the chunk being written, so the lower sweep can
  // run whole diagonals at a time.
  for (int c = 0; c < dj_.num_colors(); ++c) {
#pragma omp parallel for schedule(static) num_threads(team) if (team > 1)
    for (int p = 0; p < npe; ++p) {
      const int ch = dj_.chunk_index(c, p);
      const int b = dj_.chunk_begin()[static_cast<std::size_t>(ch)];
      const int e = dj_.chunk_begin()[static_cast<std::size_t>(ch) + 1];
      for (int i = b * kB; i < e * kB; ++i) z[static_cast<std::size_t>(i)] = r[static_cast<std::size_t>(i)];
      const auto& part = dj_.lower(ch);
#if GEOFEM_SIMD_HAS_AVX2
      if (avx2) {
        simd::sweep_avx2<simd::Mode::kSub>(part.packed, z.data(),
                                           z.data() + static_cast<std::size_t>(b) * kB);
      } else
#endif
      for (int j = 0; j < part.num_jd(); ++j) {
        const int s = part.jd_ptr[static_cast<std::size_t>(j)];
        const int t1 = part.jd_ptr[static_cast<std::size_t>(j) + 1];
        GEOFEM_PRAGMA_SIMD
        for (int t = s; t < t1; ++t) {
          sparse::b3_gemv_sub(
              part.val.data() + static_cast<std::size_t>(t) * kBB,
              z.data() + static_cast<std::size_t>(part.item[static_cast<std::size_t>(t)]) * kB,
              z.data() + static_cast<std::size_t>(b + (t - s)) * kB);
        }
      }
#if GEOFEM_SIMD_HAS_AVX2
      if (avx2) {
        simd::solve_lu3_avx2(chunk_lu3_[static_cast<std::size_t>(ch)], z.data());
        for (const Unit& u : chunk_rest_[static_cast<std::size_t>(ch)])
          lu_[static_cast<std::size_t>(u.id)].solve(z.data() +
                                                    static_cast<std::size_t>(u.start) * kB);
      } else
#endif
      for (const Unit& u : chunk_units_[static_cast<std::size_t>(ch)])
        lu_[static_cast<std::size_t>(u.id)].solve(z.data() + static_cast<std::size_t>(u.start) * kB);
    }
  }

  // backward: z_chunk -= D~^-1 (U_chunk * z(later colors))
  simd::aligned_vector<double> w(static_cast<std::size_t>(n) * kB);
  for (int c = dj_.num_colors() - 1; c >= 0; --c) {
#pragma omp parallel for schedule(static) num_threads(team) if (team > 1)
    for (int p = 0; p < npe; ++p) {
      const int ch = dj_.chunk_index(c, p);
      const int b = dj_.chunk_begin()[static_cast<std::size_t>(ch)];
      const int e = dj_.chunk_begin()[static_cast<std::size_t>(ch) + 1];
      for (int i = b * kB; i < e * kB; ++i) w[static_cast<std::size_t>(i)] = 0.0;
      const auto& part = dj_.upper(ch);
#if GEOFEM_SIMD_HAS_AVX2
      if (avx2) {
        simd::sweep_avx2<simd::Mode::kAdd>(part.packed, z.data(),
                                           w.data() + static_cast<std::size_t>(b) * kB);
      } else
#endif
      for (int j = 0; j < part.num_jd(); ++j) {
        const int s = part.jd_ptr[static_cast<std::size_t>(j)];
        const int t1 = part.jd_ptr[static_cast<std::size_t>(j) + 1];
        GEOFEM_PRAGMA_SIMD
        for (int t = s; t < t1; ++t) {
          sparse::b3_gemv(
              part.val.data() + static_cast<std::size_t>(t) * kBB,
              z.data() + static_cast<std::size_t>(part.item[static_cast<std::size_t>(t)]) * kB,
              w.data() + static_cast<std::size_t>(b + (t - s)) * kB);
        }
      }
#if GEOFEM_SIMD_HAS_AVX2
      if (avx2) {
        // Batched variant solves out of w and subtracts straight into z;
        // w keeps the raw U*z values (nothing reads them back).
        simd::solve_lu3_sub_avx2(chunk_lu3_[static_cast<std::size_t>(ch)], w.data(), z.data());
        for (const Unit& u : chunk_rest_[static_cast<std::size_t>(ch)]) {
          double* wu = w.data() + static_cast<std::size_t>(u.start) * kB;
          lu_[static_cast<std::size_t>(u.id)].solve(wu);
          double* zu = z.data() + static_cast<std::size_t>(u.start) * kB;
          for (int t = 0; t < u.size * kB; ++t) zu[t] -= wu[t];
        }
      } else
#endif
      for (const Unit& u : chunk_units_[static_cast<std::size_t>(ch)]) {
        double* wu = w.data() + static_cast<std::size_t>(u.start) * kB;
        lu_[static_cast<std::size_t>(u.id)].solve(wu);
        double* zu = z.data() + static_cast<std::size_t>(u.start) * kB;
        for (int t = 0; t < u.size * kB; ++t) zu[t] -= wu[t];
      }
    }
  }

  if (flops) flops->precond += apply_flops_;
  if (loops) loops->merge(struct_loops_);
}

/// fp32 substitution: the same two color sweeps as apply(), staged entirely
/// in fp32 (narrowed values, fp32 staging vectors, 8-lane AVX2 sweeps). The
/// fp64 r is narrowed chunk by chunk on the way in and the finished z is
/// widened once at the end — the only places the precisions meet.
void DJDSBIC::apply_f32(std::span<const double> r, std::span<double> z) const {
  const int n = dj_.n();
  const int npe = dj_.npe();
  const int team = par::threads();
  const bool avx2 = simd::active() == simd::Isa::kAvx2;
  (void)avx2;

  simd::aligned_vector<float> zf(static_cast<std::size_t>(n) * kB);
  for (int c = 0; c < dj_.num_colors(); ++c) {
#pragma omp parallel for schedule(static) num_threads(team) if (team > 1)
    for (int p = 0; p < npe; ++p) {
      const int ch = dj_.chunk_index(c, p);
      const int b = dj_.chunk_begin()[static_cast<std::size_t>(ch)];
      const int e = dj_.chunk_begin()[static_cast<std::size_t>(ch) + 1];
      for (int i = b * kB; i < e * kB; ++i)
        zf[static_cast<std::size_t>(i)] = static_cast<float>(r[static_cast<std::size_t>(i)]);
      const auto& fc = f32_[static_cast<std::size_t>(ch)];
      const auto& part = dj_.lower(ch);
#if GEOFEM_SIMD_HAS_AVX2
      if (avx2) {
        simd::sweep_avx2<simd::Mode::kSub>(fc.lower_packed, zf.data(),
                                           zf.data() + static_cast<std::size_t>(b) * kB);
      } else
#endif
      for (int j = 0; j < part.num_jd(); ++j) {
        const int s = part.jd_ptr[static_cast<std::size_t>(j)];
        const int t1 = part.jd_ptr[static_cast<std::size_t>(j) + 1];
        GEOFEM_PRAGMA_SIMD
        for (int t = s; t < t1; ++t) {
          sparse::b3_gemv_sub(
              fc.lower_val.data() + static_cast<std::size_t>(t) * kBB,
              zf.data() + static_cast<std::size_t>(part.item[static_cast<std::size_t>(t)]) * kB,
              zf.data() + static_cast<std::size_t>(b + (t - s)) * kB);
        }
      }
#if GEOFEM_SIMD_HAS_AVX2
      if (avx2) {
        simd::solve_lu3_avx2(chunk_lu3f_[static_cast<std::size_t>(ch)], zf.data());
        for (const Unit& u : chunk_rest_[static_cast<std::size_t>(ch)])
          lu32_[static_cast<std::size_t>(u.id)].solve(zf.data() +
                                                      static_cast<std::size_t>(u.start) * kB);
      } else
#endif
      for (const Unit& u : chunk_units_[static_cast<std::size_t>(ch)])
        lu32_[static_cast<std::size_t>(u.id)].solve(zf.data() +
                                                    static_cast<std::size_t>(u.start) * kB);
    }
  }

  simd::aligned_vector<float> wf(static_cast<std::size_t>(n) * kB);
  for (int c = dj_.num_colors() - 1; c >= 0; --c) {
#pragma omp parallel for schedule(static) num_threads(team) if (team > 1)
    for (int p = 0; p < npe; ++p) {
      const int ch = dj_.chunk_index(c, p);
      const int b = dj_.chunk_begin()[static_cast<std::size_t>(ch)];
      const int e = dj_.chunk_begin()[static_cast<std::size_t>(ch) + 1];
      for (int i = b * kB; i < e * kB; ++i) wf[static_cast<std::size_t>(i)] = 0.0f;
      const auto& fc = f32_[static_cast<std::size_t>(ch)];
      const auto& part = dj_.upper(ch);
#if GEOFEM_SIMD_HAS_AVX2
      if (avx2) {
        simd::sweep_avx2<simd::Mode::kAdd>(fc.upper_packed, zf.data(),
                                           wf.data() + static_cast<std::size_t>(b) * kB);
      } else
#endif
      for (int j = 0; j < part.num_jd(); ++j) {
        const int s = part.jd_ptr[static_cast<std::size_t>(j)];
        const int t1 = part.jd_ptr[static_cast<std::size_t>(j) + 1];
        GEOFEM_PRAGMA_SIMD
        for (int t = s; t < t1; ++t) {
          sparse::b3_gemv(
              fc.upper_val.data() + static_cast<std::size_t>(t) * kBB,
              zf.data() + static_cast<std::size_t>(part.item[static_cast<std::size_t>(t)]) * kB,
              wf.data() + static_cast<std::size_t>(b + (t - s)) * kB);
        }
      }
#if GEOFEM_SIMD_HAS_AVX2
      if (avx2) {
        simd::solve_lu3_sub_avx2(chunk_lu3f_[static_cast<std::size_t>(ch)], wf.data(),
                                 zf.data());
        for (const Unit& u : chunk_rest_[static_cast<std::size_t>(ch)]) {
          float* wu = wf.data() + static_cast<std::size_t>(u.start) * kB;
          lu32_[static_cast<std::size_t>(u.id)].solve(wu);
          float* zu = zf.data() + static_cast<std::size_t>(u.start) * kB;
          for (int t = 0; t < u.size * kB; ++t) zu[t] -= wu[t];
        }
      } else
#endif
      for (const Unit& u : chunk_units_[static_cast<std::size_t>(ch)]) {
        float* wu = wf.data() + static_cast<std::size_t>(u.start) * kB;
        lu32_[static_cast<std::size_t>(u.id)].solve(wu);
        float* zu = zf.data() + static_cast<std::size_t>(u.start) * kB;
        for (int t = 0; t < u.size * kB; ++t) zu[t] -= wu[t];
      }
    }
  }

  for (int i = 0; i < n * kB; ++i)
    z[static_cast<std::size_t>(i)] = static_cast<double>(zf[static_cast<std::size_t>(i)]);
}

std::size_t DJDSBIC::memory_bytes() const {
  std::size_t bytes = 0;
  for (const auto& cu : chunk_units_) bytes += cu.size() * sizeof(Unit);
  for (const auto& cu : chunk_rest_) bytes += cu.size() * sizeof(Unit);
  if (precision_ == Precision::kSingle) {
    // Report the fp32 structures the sweeps actually stream — the halved
    // footprint IS the optimization (the fp64 factors are retained only as
    // the narrowing source).
    for (const auto& lu : lu32_) bytes += lu.memory_bytes();
    for (const auto& f : f32_) {
      bytes += (f.lower_val.size() + f.upper_val.size()) * sizeof(float);
      bytes += (f.lower_packed.val.size() + f.upper_packed.val.size()) * sizeof(float);
      bytes += (f.lower_packed.item3.size() + f.upper_packed.item3.size()) * sizeof(int32_t);
    }
    for (const auto& p : chunk_lu3f_) bytes += p.memory_bytes();
    return bytes;
  }
  for (const auto& lu : lu_) bytes += lu.memory_bytes();
  for (const auto& p : chunk_lu3_) bytes += p.memory_bytes();
  return bytes;
}

// ---------------------------------------------------------------------------
// OwnedDJDSBIC
// ---------------------------------------------------------------------------

namespace {

/// MC coloring of `a`, at supernode granularity when any supernode has more
/// than one member.
reorder::Coloring color_for(const sparse::BlockCSR& a, const contact::Supernodes& sn,
                            int colors) {
  const sparse::Graph g = sparse::graph_of(a);
  bool has_blocks = false;
  for (const auto& m : sn.members) has_blocks |= m.size() > 1;
  if (!has_blocks) return reorder::multicolor(g, colors);
  const sparse::Graph q = reorder::quotient_graph(g, sn.node_to_super, sn.count());
  return reorder::lift_coloring(reorder::multicolor(q, colors), sn.node_to_super, a.n);
}

}  // namespace

OwnedDJDSBIC::OwnedDJDSBIC(const sparse::BlockCSR& a, contact::Supernodes sn, int colors,
                           int npe, bool sort_supernodes, Precision precision)
    : a_(a), sn_(std::move(sn)) {
  obs::ScopedSpan span("precond.setup.DJDS-reorder");
  const reorder::Coloring coloring = color_for(a_, sn_, colors);
  reorder::DJDSOptions opt;
  opt.npe = npe;
  opt.sort_supernodes_by_size = sort_supernodes;
  bool has_blocks = false;
  for (const auto& m : sn_.members) has_blocks |= m.size() > 1;
  dj_ = std::make_unique<reorder::DJDSMatrix>(a_, coloring, has_blocks ? &sn_ : nullptr, opt);
  inner_ = std::make_unique<DJDSBIC>(a_, *dj_, precision);
  pr_.resize(a_.ndof());
  pz_.resize(a_.ndof());
}

void OwnedDJDSBIC::apply(std::span<const double> r, std::span<double> z,
                         util::FlopCounter* flops, util::LoopStats* loops) const {
  GEOFEM_CHECK(r.size() == a_.ndof() && z.size() == a_.ndof(),
               "OwnedDJDSBIC apply size mismatch");
  const auto& perm = dj_->perm();
  for (int i = 0; i < a_.n; ++i)
    for (int c = 0; c < kB; ++c)
      pr_[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)]) * kB +
          static_cast<std::size_t>(c)] =
          r[static_cast<std::size_t>(i) * kB + static_cast<std::size_t>(c)];
  inner_->apply(pr_, pz_, flops, loops);
  for (int i = 0; i < a_.n; ++i)
    for (int c = 0; c < kB; ++c)
      z[static_cast<std::size_t>(i) * kB + static_cast<std::size_t>(c)] =
          pz_[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)]) * kB +
              static_cast<std::size_t>(c)];
}

std::size_t OwnedDJDSBIC::memory_bytes() const {
  return inner_->memory_bytes() + dj_->memory_bytes();
}

}  // namespace geofem::precond
