#pragma once

#include <cmath>
#include <span>
#include <string>

#include "core/status.hpp"
#include "simd/simd.hpp"

/// Structured preconditioner identity (DESIGN.md §5i).
///
/// Reports, telemetry and plan keys used to carry the preconditioner identity
/// as an ad-hoc display string composed in several places ("SB-BIC(0) PDJDS",
/// "BIC(0)+coarse(deflated,840)"). Desc replaces that with one struct — kind,
/// fill level, stored precision, ordering, coarse mode/dimension — and
/// renders the display name in exactly one place (Desc::display_name).
///
/// The PrecondKind enum itself lives here (not in plan/) because the identity
/// is a preconditioner concept; plan/fingerprint.hpp aliases it so every
/// existing spelling (plan::PrecondKind, core::PrecondKind) keeps compiling.
namespace geofem::precond {

/// Which preconditioner a plan prepares / a factorization implements.
enum class PrecondKind {
  kDiagonal,   ///< point diagonal scaling
  kScalarIC0,  ///< point-wise IC(0)
  kBIC0,       ///< 3x3-block IC(0)
  kBIC1,       ///< block ILU(1)
  kBIC2,       ///< block ILU(2)
  kSBBIC0,     ///< selective blocking (the paper's contribution)
  kBlockDiagonal,  ///< 3x3 block Jacobi — the resilience chain's last resort
};

[[nodiscard]] std::string to_string(PrecondKind k);

/// Stored scalar of the preconditioner factors (DJDS values, packed SIMD
/// mirrors, dense LU blocks). CG always iterates in fp64; kSingle halves the
/// factor bandwidth and doubles the AVX2 lane width, at the cost of an
/// inexact (but fixed) M — covered by the automatic fp64 fallback.
enum class Precision {
  kDouble,  ///< fp64 factors, the historical arithmetic (default)
  kSingle,  ///< fp32-stored factors, fp64 Krylov vectors
};

[[nodiscard]] inline const char* to_string(Precision p) {
  return p == Precision::kSingle ? "fp32" : "fp64";
}

/// Coarse second level carried by a preconditioner stack (precond::TwoLevel).
enum class CoarseKind {
  kNone,
  kAdditive,
  kDeflated,
};

/// Structured identity of one preconditioner instance. display_name() renders
/// the table/report string in one place; everything else (plan keys,
/// telemetry labels) reads the typed fields.
struct Desc {
  PrecondKind kind = PrecondKind::kSBBIC0;
  Precision precision = Precision::kDouble;
  bool pdjds = false;            ///< vectorized PDJDS/MC form
  CoarseKind coarse = CoarseKind::kNone;
  int coarse_dim = 0;            ///< coarse DOFs when coarse != kNone
  /// Non-empty for preconditioners outside the PrecondKind vocabulary
  /// (test doubles, fault-injection wrappers); display_name() returns it
  /// verbatim, ignoring every other field except the precision tag.
  std::string custom;

  [[nodiscard]] int fill_level() const {
    if (kind == PrecondKind::kBIC1) return 1;
    if (kind == PrecondKind::kBIC2) return 2;
    return 0;
  }

  /// The one place a preconditioner identity becomes a display string:
  ///   "SB-BIC(0)", "BIC(0) PDJDS", "SB-BIC(0) PDJDS [fp32]",
  ///   "BIC(0)+coarse(deflated,840)". fp64 renders exactly the historical
  ///   names so existing tables/tests are unchanged.
  [[nodiscard]] std::string display_name() const;
};

/// Narrow an fp64 factor array to fp32 storage, throwing
/// Error(kFactorizationFailed) if any value falls outside fp32 range — the
/// "fp32-induced breakdown" half of the precision fallback contract: callers
/// catch it exactly like a failed pivot and re-set-up the fp64 plan.
inline void narrow_or_throw(std::span<const double> src, simd::aligned_vector<float>& dst) {
  dst.resize(src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    const float v = static_cast<float>(src[i]);
    // Overflow: the double was finite but its fp32 image is not. NaNs in the
    // source would have failed the fp64 factorization already.
    if (!std::isfinite(v) && std::isfinite(src[i]))
      throw Error(StatusCode::kFactorizationFailed,
                  "fp32 narrowing overflow in preconditioner factors");
    dst[i] = v;
  }
}

}  // namespace geofem::precond
