#pragma once

#include "precond/preconditioner.hpp"
#include "simd/jagged.hpp"
#include "sparse/block_csr.hpp"

namespace geofem::precond {

/// Point diagonal scaling: z_d = r_d / a_dd. The weakest baseline of Table 2;
/// diverges for large penalty numbers.
class DiagonalScaling final : public Preconditioner {
 public:
  explicit DiagonalScaling(const sparse::BlockCSR& a,
                           Precision precision = Precision::kDouble);

  void apply(std::span<const double> r, std::span<double> z, util::FlopCounter* flops,
             util::LoopStats* loops) const override;

  /// Batched scaling: one pass over the inverse diagonal for all k columns.
  void apply_multi(std::span<const double> r, std::span<double> z, int k,
                   util::FlopCounter* flops, util::LoopStats* loops) const override;

  [[nodiscard]] std::size_t memory_bytes() const override {
    return inv_diag_.size() * sizeof(double) + inv32_.size() * sizeof(float);
  }
  [[nodiscard]] std::string name() const override { return desc().display_name(); }
  [[nodiscard]] Desc desc() const override {
    Desc d;
    d.kind = PrecondKind::kDiagonal;
    d.precision = precision_;
    return d;
  }

 private:
  Precision precision_ = Precision::kDouble;
  std::vector<double> inv_diag_;          ///< fp64 storage (kDouble only)
  simd::aligned_vector<float> inv32_;     ///< fp32 storage (kSingle only)
};

/// Block-Jacobi scaling: z_i = A_ii^-1 r_i per 3x3 diagonal block. The
/// last-resort rung of the resilience fallback chain: construction is
/// deliberately permissive — a singular block falls back to its scalar
/// diagonal and a zero scalar to the identity — so it never throws at fp64,
/// at the cost of being the weakest preconditioner here after the point
/// diagonal. (An fp32-stored build can still throw kFactorizationFailed on
/// narrowing overflow; the resilience chain always requests fp64.)
class BlockDiagonal final : public Preconditioner {
 public:
  explicit BlockDiagonal(const sparse::BlockCSR& a,
                         Precision precision = Precision::kDouble);

  void apply(std::span<const double> r, std::span<double> z, util::FlopCounter* flops,
             util::LoopStats* loops) const override;

  /// Batched scaling: one pass over the inverse blocks for all k columns
  /// (simd::b3k_apply; the fp32 path widens each block on load instead of
  /// staging the vectors in float — no shared mutable staging).
  void apply_multi(std::span<const double> r, std::span<double> z, int k,
                   util::FlopCounter* flops, util::LoopStats* loops) const override;

  [[nodiscard]] std::size_t memory_bytes() const override {
    return inv_d_.size() * sizeof(double) + inv32_.size() * sizeof(float) +
           packed32_.val.size() * sizeof(float) + packed32_.item3.size() * sizeof(std::int32_t);
  }
  [[nodiscard]] std::string name() const override { return desc().display_name(); }
  [[nodiscard]] Desc desc() const override {
    Desc d;
    d.kind = PrecondKind::kBlockDiagonal;
    d.precision = precision_;
    return d;
  }

 private:
  int n_ = 0;
  Precision precision_ = Precision::kDouble;
  simd::aligned_vector<double> inv_d_;  ///< n dense 3x3 inverse blocks (kDouble)
  simd::PackedJagged packed_;  ///< inv_d_ lane-transposed for the AVX2 sweep
  /// fp32 storage (kSingle only): narrowed inverse blocks, their 8-lane packed
  /// mirror, and the float staging vectors the sweep runs in.
  simd::aligned_vector<float> inv32_;
  simd::PackedJaggedT<float> packed32_;
  mutable simd::aligned_vector<float> rf_, zf_;
};

}  // namespace geofem::precond
