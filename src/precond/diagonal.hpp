#pragma once

#include "precond/preconditioner.hpp"
#include "sparse/block_csr.hpp"

namespace geofem::precond {

/// Point diagonal scaling: z_d = r_d / a_dd. The weakest baseline of Table 2;
/// diverges for large penalty numbers.
class DiagonalScaling final : public Preconditioner {
 public:
  explicit DiagonalScaling(const sparse::BlockCSR& a);

  void apply(std::span<const double> r, std::span<double> z, util::FlopCounter* flops,
             util::LoopStats* loops) const override;

  [[nodiscard]] std::size_t memory_bytes() const override {
    return inv_diag_.size() * sizeof(double);
  }
  [[nodiscard]] std::string name() const override { return "Diagonal"; }

 private:
  std::vector<double> inv_diag_;
};

}  // namespace geofem::precond
