#pragma once

#include "precond/preconditioner.hpp"
#include "simd/jagged.hpp"
#include "sparse/block_csr.hpp"

namespace geofem::precond {

/// Point diagonal scaling: z_d = r_d / a_dd. The weakest baseline of Table 2;
/// diverges for large penalty numbers.
class DiagonalScaling final : public Preconditioner {
 public:
  explicit DiagonalScaling(const sparse::BlockCSR& a);

  void apply(std::span<const double> r, std::span<double> z, util::FlopCounter* flops,
             util::LoopStats* loops) const override;

  [[nodiscard]] std::size_t memory_bytes() const override {
    return inv_diag_.size() * sizeof(double);
  }
  [[nodiscard]] std::string name() const override { return "Diagonal"; }

 private:
  std::vector<double> inv_diag_;
};

/// Block-Jacobi scaling: z_i = A_ii^-1 r_i per 3x3 diagonal block. The
/// last-resort rung of the resilience fallback chain: construction is
/// deliberately permissive — a singular block falls back to its scalar
/// diagonal and a zero scalar to the identity — so it never throws, at the
/// cost of being the weakest preconditioner here after the point diagonal.
class BlockDiagonal final : public Preconditioner {
 public:
  explicit BlockDiagonal(const sparse::BlockCSR& a);

  void apply(std::span<const double> r, std::span<double> z, util::FlopCounter* flops,
             util::LoopStats* loops) const override;

  [[nodiscard]] std::size_t memory_bytes() const override {
    return inv_d_.size() * sizeof(double);
  }
  [[nodiscard]] std::string name() const override { return "BlockDiagonal"; }

 private:
  simd::aligned_vector<double> inv_d_;  ///< n dense 3x3 inverse blocks
  simd::PackedJagged packed_;  ///< inv_d_ lane-transposed for the AVX2 sweep
};

}  // namespace geofem::precond
