#include "precond/two_level.hpp"

#include "util/check.hpp"

namespace geofem::precond {

TwoLevel::TwoLevel(PreconditionerPtr inner, std::shared_ptr<const coarse::CoarseOperator> op,
                   const sparse::BlockCSR& a, coarse::Mode mode)
    : inner_(std::move(inner)), op_(std::move(op)), a_(a), mode_(mode) {
  GEOFEM_CHECK(inner_ != nullptr, "TwoLevel: null inner preconditioner");
  GEOFEM_CHECK(op_ != nullptr, "TwoLevel: null coarse operator");
  GEOFEM_CHECK(op_->symbolic().restrict_nodes() == a.n,
               "TwoLevel: coarse space does not cover the matrix");
  yc_.resize(static_cast<std::size_t>(op_->dim()));
  if (mode_ == coarse::Mode::kDeflated) {
    q_.resize(a.ndof());
    t_.resize(a.ndof());
    mt_.resize(a.ndof());
  }
}

std::string TwoLevel::name() const { return desc().display_name(); }

Desc TwoLevel::desc() const {
  Desc d = inner_->desc();
  d.coarse =
      mode_ == coarse::Mode::kDeflated ? CoarseKind::kDeflated : CoarseKind::kAdditive;
  d.coarse_dim = op_->dim();
  return d;
}

void TwoLevel::apply(std::span<const double> r, std::span<double> z, util::FlopCounter* flops,
                     util::LoopStats* loops) const {
  if (mode_ == coarse::Mode::kAdditive) {
    // z = M^-1 r + P A_c^-1 R r
    inner_->apply(r, z, flops, loops);
    op_->restrict_residual(r, yc_, flops);
    op_->solve(yc_, flops);
    op_->prolongate_add(yc_, z, flops);
    return;
  }
  // Deflated (BNN): z = q + (I - QA) M^-1 (r - A q), q = Q r.
  op_->restrict_residual(r, yc_, flops);
  op_->solve(yc_, flops);
  std::fill(q_.begin(), q_.end(), 0.0);
  op_->prolongate_add(yc_, q_, flops);
  a_.spmv(q_, t_, flops, loops);  // t = A q
  for (std::size_t i = 0; i < t_.size(); ++i) t_[i] = r[i] - t_[i];
  inner_->apply(t_, mt_, flops, loops);  // mt = M^-1 (r - A q)
  a_.spmv(mt_, t_, flops, loops);        // t = A mt
  op_->restrict_residual(t_, yc_, flops);
  op_->solve(yc_, flops);
  for (std::size_t i = 0; i < mt_.size(); ++i) z[i] = q_[i] + mt_[i];
  // z -= P A_c^-1 R (A mt): reuse prolongate_add on the negated coarse vector
  for (double& v : yc_) v = -v;
  op_->prolongate_add(yc_, z, flops);
  if (flops) flops->blas1 += 3 * static_cast<std::uint64_t>(a_.ndof());
}

}  // namespace geofem::precond
