#include "precond/desc.hpp"

namespace geofem::precond {

std::string to_string(PrecondKind k) {
  switch (k) {
    case PrecondKind::kDiagonal: return "Diagonal";
    case PrecondKind::kScalarIC0: return "IC(0) scalar";
    case PrecondKind::kBIC0: return "BIC(0)";
    case PrecondKind::kBIC1: return "BIC(1)";
    case PrecondKind::kBIC2: return "BIC(2)";
    case PrecondKind::kSBBIC0: return "SB-BIC(0)";
    case PrecondKind::kBlockDiagonal: return "BlockDiagonal";
  }
  return "?";
}

std::string Desc::display_name() const {
  std::string s = custom.empty() ? to_string(kind) : custom;
  if (custom.empty() && pdjds) s += " PDJDS";
  if (coarse != CoarseKind::kNone) {
    s += "+coarse(";
    s += coarse == CoarseKind::kDeflated ? "deflated," : "additive,";
    s += std::to_string(coarse_dim);
    s += ")";
  }
  if (precision == Precision::kSingle) s += " [fp32]";
  return s;
}

}  // namespace geofem::precond
