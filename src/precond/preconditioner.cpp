#include "precond/preconditioner.hpp"

#include <vector>

#include "sparse/multivec.hpp"
#include "util/check.hpp"

namespace geofem::precond {

void Preconditioner::apply_multi(std::span<const double> r, std::span<double> z, int k,
                                 util::FlopCounter* flops, util::LoopStats* loops) const {
  GEOFEM_CHECK(k >= 1, "apply_multi: bad column count");
  GEOFEM_CHECK(r.size() == z.size() && r.size() % static_cast<std::size_t>(k) == 0,
               "apply_multi size mismatch");
  const std::size_t n = r.size() / static_cast<std::size_t>(k);
  if (k == 1) {
    apply(r, z, flops, loops);
    return;
  }
  // Column-loop fallback: k single-RHS applies through contiguous staging
  // buffers. Correct for every implementation; overrides exist to stream the
  // factors once instead of k times.
  static thread_local std::vector<double> rcol, zcol;
  if (rcol.size() < n) {
    rcol.resize(n);
    zcol.resize(n);
  }
  for (int c = 0; c < k; ++c) {
    sparse::gather_column(r.data(), n, k, c, rcol.data());
    apply(std::span<const double>(rcol.data(), n), std::span<double>(zcol.data(), n), flops,
          loops);
    sparse::scatter_column(zcol.data(), n, k, c, z.data());
  }
}

}  // namespace geofem::precond
