#pragma once

#include <memory>
#include <span>
#include <string>

#include "precond/desc.hpp"
#include "util/flops.hpp"
#include "util/loop_stats.hpp"

namespace geofem::precond {

/// Interface of all preconditioners M: apply() computes z = M^-1 r.
/// Implementations count FLOPs and record innermost-loop lengths so the
/// benchmark harness can report paper-style rates.
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;

  virtual void apply(std::span<const double> r, std::span<double> z,
                     util::FlopCounter* flops = nullptr,
                     util::LoopStats* loops = nullptr) const = 0;

  /// Z = M^-1 R for k interleaved RHS columns (value(dof i, col c) =
  /// R[i*k + c]; DESIGN.md §5k). The default de-interleaves each column and
  /// forwards to apply() — correct for any implementation, no bandwidth
  /// amortization. The substitution-sweep preconditioners (SB-BIC(0),
  /// BIC(k), block diagonal) override it with one schedule walk carrying k
  /// columns per node, so factors are streamed once per batched iteration.
  /// Column c of a k-column apply_multi equals a one-column apply_multi of
  /// that column bit-for-bit only for the default; overrides keep columns
  /// independent but round per the multi-RHS kernels — the batched solver
  /// never mixes per-column arithmetic, and the batch-of-1 solve path
  /// bypasses apply_multi entirely.
  virtual void apply_multi(std::span<const double> r, std::span<double> z, int k,
                           util::FlopCounter* flops = nullptr,
                           util::LoopStats* loops = nullptr) const;

  /// Bytes held by the preconditioner itself (factors, indices), excluding
  /// the system matrix.
  [[nodiscard]] virtual std::size_t memory_bytes() const = 0;

  /// Wall-clock set-up cost is measured by the caller; this reports the name
  /// used in tables ("BIC(1)", "SB-BIC(0)", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Structured identity (kind, stored precision, PDJDS, coarse level) —
  /// what reports/telemetry/plan keys carry instead of parsing name(). The
  /// library's preconditioners override this and derive name() from it
  /// (Desc::display_name renders in one place); external implementations
  /// (test doubles, fault wrappers) fall back to a custom-named Desc.
  [[nodiscard]] virtual Desc desc() const {
    Desc d;
    d.custom = name();
    return d;
  }
};

using PreconditionerPtr = std::unique_ptr<Preconditioner>;

}  // namespace geofem::precond
