#pragma once

#include <cstdint>
#include <memory>

#include "contact/penalty.hpp"
#include "par/par.hpp"
#include "precond/preconditioner.hpp"
#include "sparse/block_csr.hpp"
#include "sparse/dense.hpp"

namespace geofem::precond {

/// Structure-only half of the selective-blocking factorization: per-supernode
/// dense dimensions plus flattened scatter schedules mapping matrix entries
/// into the dense intra-block and coupling work arrays. Built once per
/// (graph, supernode map) and shared across numeric refactorizations.
struct SBSymbolic {
  int n = 0;             ///< block rows of the source matrix
  bool modified = false; ///< whether inter-supernode corrections are applied
  std::vector<int> dims; ///< per supernode: kB * member count

  /// Intra-supernode scatter: A entries with both endpoints in supernode s
  /// land at dwork[off + r*dim + c] for block element (r, c).
  std::vector<std::int64_t> intra_ptr;  ///< size ns + 1
  std::vector<int> intra_entry;         ///< A entry index
  std::vector<std::int64_t> intra_off;  ///< (kB*t)*dim + kB*tj

  /// Earlier-neighbour couplings (modified path only; empty otherwise),
  /// K ascending per supernode — the elimination order of the corrections.
  std::vector<int> coup_ptr;             ///< size ns + 1, into coup_k
  std::vector<int> coup_k;               ///< earlier supernode id K
  std::vector<std::int64_t> gather_ptr;  ///< size coup_k.size() + 1
  std::vector<int> gather_entry;         ///< A entry index of an A_SK block
  std::vector<std::int64_t> gather_off;  ///< (kB*t)*dimk + kB*tj

  [[nodiscard]] std::size_t memory_bytes() const;
};

/// Symbolic phase of the selective-blocking factorization.
[[nodiscard]] std::shared_ptr<const SBSymbolic> sb_symbolic(const sparse::BlockCSR& a,
                                                            const contact::Supernodes& sn,
                                                            bool modified = false);

/// Numeric phase: factor the selective-block diagonals on a precomputed
/// schedule. Produces bit-identical factors to sb_factor_diagonals.
[[nodiscard]] std::vector<sparse::DenseLU> sb_factor_numeric(const sparse::BlockCSR& a,
                                                             const SBSymbolic& sym);

/// Selective blocking preconditioner SB-BIC(0) (paper §3): strongly coupled
/// nodes of each contact group form one selective block (supernode); the
/// supernode diagonal blocks (3*NB x 3*NB) are factored by *full* dense LU —
/// a direct solve inside each contact group — while couplings between
/// supernodes keep the original values with no inter-block fill-in:
///
///   M = (D~ + L)  D~^-1  (D~ + L^T),
///   D~_S = A_SS - sum_{K < S, (S,K) in A} A_SK D~_K^-1 A_SK^T  (dense in S).
///
/// Memory stays at BIC(0) level (only intra-block fill), but the penalty
/// couplings, which live entirely inside supernodes, are eliminated exactly,
/// making convergence independent of the penalty number lambda.
/// Factor the selective-block diagonals D~_S (ascending supernode id =
/// elimination order) with BIC(0)-style corrections restricted to the
/// original inter-supernode pattern. Shared by the CSR-path SBBIC0 and the
/// PDJDS/MC vectorized preconditioner.
std::vector<sparse::DenseLU> sb_factor_diagonals(const sparse::BlockCSR& a,
                                                 const contact::Supernodes& sn,
                                                 bool modified = false);

class SBBIC0 final : public Preconditioner {
 public:
  /// `a` must outlive this preconditioner (the substitution reads its
  /// off-diagonal blocks in place); the supernode partition is owned.
  /// `precision` selects the STORED form the substitution streams — the
  /// factorization always runs in fp64; kSingle keeps narrowed dense LU
  /// factors and a narrowed mirror of the matrix values, widening on load
  /// and accumulating in fp64, and throws Error(kFactorizationFailed) on
  /// narrowing overflow.
  SBBIC0(const sparse::BlockCSR& a, contact::Supernodes sn, bool modified = false,
         Precision precision = Precision::kDouble);

  /// Numeric-only set-up on a previously computed (plan-cached) schedule.
  /// `sym` must have been built from `a`'s graph and `sn`.
  SBBIC0(const sparse::BlockCSR& a, contact::Supernodes sn,
         std::shared_ptr<const SBSymbolic> sym, Precision precision = Precision::kDouble);

  void apply(std::span<const double> r, std::span<double> z, util::FlopCounter* flops,
             util::LoopStats* loops) const override;

  /// Batched substitution (DESIGN.md §5k): ONE forward+backward schedule walk
  /// carrying k interleaved RHS columns per supernode, so the matrix values
  /// and dense factors are streamed once for all k columns. The dense solves
  /// run per column on a gathered contiguous copy (DenseLU is single-RHS).
  void apply_multi(std::span<const double> r, std::span<double> z, int k,
                   util::FlopCounter* flops, util::LoopStats* loops) const override;

  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] std::string name() const override { return desc().display_name(); }
  [[nodiscard]] Desc desc() const override {
    Desc d;
    d.kind = PrecondKind::kSBBIC0;
    d.precision = precision_;
    return d;
  }

  /// Largest selective block (FEM nodes).
  [[nodiscard]] int max_block_nodes() const { return max_block_; }

 private:
  void build_schedules();
  void narrow_storage();

  /// Level-scheduled substitution, 3x3 accumulator chosen once per apply
  /// (simd::ScalarAcc3 reproduces the historical arithmetic bit-for-bit).
  /// `aval` is the block value array streamed by the sweeps (a_.val or its
  /// fp32 mirror); `lus` the per-supernode solvers of the matching storage.
  template <class Acc, class T, class LuVec>
  void apply_impl(const T* aval, const LuVec& lus, const double* r, double* z, int team) const;

  /// Multi-RHS twin of apply_impl: same schedules, simd::b3k_* kernels with
  /// the lane axis over RHS columns (UseAvx selected once per apply).
  template <bool UseAvx, class T, class LuVec>
  void apply_multi_impl(const T* aval, const LuVec& lus, const double* r, double* z, int k,
                        int team) const;

  const sparse::BlockCSR& a_;
  contact::Supernodes sn_;
  Precision precision_ = Precision::kDouble;
  std::vector<sparse::DenseLU> lu_;  ///< per supernode (kDouble only)
  /// fp32 storage (kSingle only): narrowed per-supernode solvers plus the
  /// narrowed matrix value mirror the sweeps read in place.
  std::vector<sparse::DenseSolveT<float>> lu32_;
  simd::aligned_vector<float> aval32_;
  double lu_solve_flops_ = 0.0;  ///< sum of per-supernode solve FLOPs
  int max_block_ = 0;
  par::LevelSchedule fwd_, bwd_;      ///< supernode dependency levels
  std::vector<int> fwd_len_, bwd_len_;  ///< per supernode coupling counts
  std::uint64_t coupled_ = 0;           ///< total couplings per apply (flops)
};

}  // namespace geofem::precond
