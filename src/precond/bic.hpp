#pragma once

#include "precond/preconditioner.hpp"
#include "sparse/block_csr.hpp"

namespace geofem::precond {

/// GeoFEM-style Block IC(0): M = (D~ + L) D~^-1 (D~ + L^T) where L is the
/// *unmodified* strict block lower triangle of A and the 3x3 block diagonals
/// are modified by the no-fill incomplete factorization
///   D~_i = A_ii - sum_{k < i, (i,k) in A} A_ik D~_k^-1 A_ik^T.
/// Set-up touches each lower block once (the paper's near-zero BIC(0) set-up
/// time); robustness collapses for large penalty because the +-lambda
/// off-diagonal blocks stay in L while D~ of contact rows becomes tiny.
class BIC0 final : public Preconditioner {
 public:
  /// `modified`: apply the classic IC(0) diagonal-correction recurrence.
  /// The default (false) keeps the plain block-SSOR diagonals D~ = A_ii:
  /// on non-M hexahedral elasticity matrices the corrections can cascade
  /// into near-singular blocks (kappa(M^-1 A) explodes on distorted meshes),
  /// while the plain form guarantees an SPD M with spectrum in (0, 1] —
  /// see bench_ablation_modified_diag for the measured comparison.
  explicit BIC0(const sparse::BlockCSR& a, bool modified = false);

  void apply(std::span<const double> r, std::span<double> z, util::FlopCounter* flops,
             util::LoopStats* loops) const override;

  [[nodiscard]] std::size_t memory_bytes() const override {
    return inv_d_.size() * sizeof(double);
  }
  [[nodiscard]] std::string name() const override { return "BIC(0)"; }

 private:
  const sparse::BlockCSR& a_;
  std::vector<double> inv_d_;  ///< kBB per row: D~_i^-1
};

/// Block ILU(k) with level-of-fill symbolic factorization and full block LDU
/// numeric factorization — the paper's BIC(1)/BIC(2) (deep fill-in remedy).
/// Fill entry (i,j) is kept iff its level min_k(lev_ik + lev_kj + 1) <= k.
class BlockILUk final : public Preconditioner {
 public:
  BlockILUk(const sparse::BlockCSR& a, int fill_level);

  void apply(std::span<const double> r, std::span<double> z, util::FlopCounter* flops,
             util::LoopStats* loops) const override;

  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] std::string name() const override {
    return "BIC(" + std::to_string(fill_level_) + ")";
  }

  /// Stored blocks in L + U (fill-in growth diagnostic).
  [[nodiscard]] std::size_t factor_blocks() const { return lcol_.size() + ucol_.size(); }

 private:
  int n_ = 0;
  int fill_level_ = 0;
  // strict lower factor L (unit block diagonal implied)
  std::vector<int> lptr_, lcol_;
  std::vector<double> lval_;
  // strict upper factor U
  std::vector<int> uptr_, ucol_;
  std::vector<double> uval_;
  std::vector<double> inv_d_;  ///< kBB per row: U_ii^-1
};

}  // namespace geofem::precond
