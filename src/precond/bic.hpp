#pragma once

#include <memory>

#include "par/par.hpp"
#include "precond/preconditioner.hpp"
#include "simd/simd.hpp"
#include "sparse/block_csr.hpp"

namespace geofem::precond {

/// GeoFEM-style Block IC(0): M = (D~ + L) D~^-1 (D~ + L^T) where L is the
/// *unmodified* strict block lower triangle of A and the 3x3 block diagonals
/// are modified by the no-fill incomplete factorization
///   D~_i = A_ii - sum_{k < i, (i,k) in A} A_ik D~_k^-1 A_ik^T.
/// Set-up touches each lower block once (the paper's near-zero BIC(0) set-up
/// time); robustness collapses for large penalty because the +-lambda
/// off-diagonal blocks stay in L while D~ of contact rows becomes tiny.
class BIC0 final : public Preconditioner {
 public:
  /// `modified`: apply the classic IC(0) diagonal-correction recurrence.
  /// The default (false) keeps the plain block-SSOR diagonals D~ = A_ii:
  /// on non-M hexahedral elasticity matrices the corrections can cascade
  /// into near-singular blocks (kappa(M^-1 A) explodes on distorted meshes),
  /// while the plain form guarantees an SPD M with spectrum in (0, 1] —
  /// see bench_ablation_modified_diag for the measured comparison.
  /// `precision` selects the STORED form the substitution streams (the
  /// factorization itself always runs in fp64): kSingle keeps fp32 mirrors
  /// of D~^-1 and of the off-diagonal blocks of `a`, widening each block on
  /// load and accumulating in fp64; narrowing overflow throws
  /// Error(kFactorizationFailed).
  explicit BIC0(const sparse::BlockCSR& a, Precision precision = Precision::kDouble,
                bool modified = false);

  void apply(std::span<const double> r, std::span<double> z, util::FlopCounter* flops,
             util::LoopStats* loops) const override;

  /// Batched substitution (DESIGN.md §5k): one forward+backward schedule
  /// walk carrying k interleaved RHS columns per row, streaming the matrix
  /// values and D~^-1 once for all columns.
  void apply_multi(std::span<const double> r, std::span<double> z, int k,
                   util::FlopCounter* flops, util::LoopStats* loops) const override;

  [[nodiscard]] std::size_t memory_bytes() const override {
    return inv_d_.size() * sizeof(double) + (inv32_.size() + aval32_.size()) * sizeof(float);
  }
  [[nodiscard]] std::string name() const override { return desc().display_name(); }
  [[nodiscard]] Desc desc() const override {
    Desc d;
    d.kind = PrecondKind::kBIC0;
    d.precision = precision_;
    return d;
  }

 private:
  const sparse::BlockCSR& a_;
  Precision precision_ = Precision::kDouble;
  simd::aligned_vector<double> inv_d_;  ///< kBB per row: D~_i^-1 (kDouble only)
  /// fp32 storage (kSingle only): narrowed D~^-1 and a full narrowed mirror
  /// of the matrix values (the substitution reads a's off-diagonals in place).
  simd::aligned_vector<float> inv32_, aval32_;
  std::vector<int> lower_len_;  ///< strict-lower blocks per row (loop stats)
  par::LevelSchedule fwd_, bwd_;  ///< substitution dependency levels
};

/// Structure-only half of the block ILU(k) factorization: the level-of-fill
/// pattern plus a fully precomputed elimination schedule, so the numeric
/// phase runs with zero pattern searching. Built once per matrix graph and
/// shared (plan cache) across numeric refactorizations.
struct ILUkSymbolic {
  int n = 0;
  int fill_level = 0;
  // strict lower / strict upper patterns, columns ascending per row
  std::vector<int> lptr, lcol;
  std::vector<int> uptr, ucol;
  /// Per matrix entry (aligned with a.colind): slot of its column in the
  /// owning row's work table. Slot layout per row i: [0, nl) = L entries in
  /// lcol order, [nl, nl+nu) = U entries in ucol order, nl+nu = diagonal.
  std::vector<int> aslot;
  /// Per L entry e = (i,k): updates w_j -= L_ik * U_kj for every U entry of
  /// row k whose column j lies in row i's pattern. elim_src is the U entry
  /// index of U_kj; elim_dst the slot of j in row i's work table.
  std::vector<std::int64_t> elim_ptr;  ///< size lcol.size() + 1
  std::vector<int> elim_src, elim_dst;
  /// Substitution dependency levels of the L (forward) and U (backward)
  /// patterns, for the hybrid apply.
  par::LevelSchedule fwd, bwd;

  [[nodiscard]] std::size_t memory_bytes() const;
};

/// Symbolic phase of BlockILUk. Fill entry (i,j) is kept iff its level
/// min_k(lev_ik + lev_kj + 1) <= fill_level.
[[nodiscard]] std::shared_ptr<const ILUkSymbolic> iluk_symbolic(const sparse::BlockCSR& a,
                                                                int fill_level);

/// Block ILU(k) with level-of-fill symbolic factorization and full block LDU
/// numeric factorization — the paper's BIC(1)/BIC(2) (deep fill-in remedy).
class BlockILUk final : public Preconditioner {
 public:
  /// Cold set-up: symbolic + numeric. The numeric factorization always runs
  /// in fp64; `precision` = kSingle narrows the stored L/U/D~^-1 factors to
  /// fp32 (throwing Error(kFactorizationFailed) on overflow), with the
  /// substitution widening each block on load and accumulating in fp64.
  BlockILUk(const sparse::BlockCSR& a, int fill_level,
            Precision precision = Precision::kDouble);

  /// Numeric-only set-up on a previously computed (plan-cached) pattern.
  /// `a` must have the graph `sym` was built from; produces bit-identical
  /// factors to the cold constructor.
  BlockILUk(const sparse::BlockCSR& a, std::shared_ptr<const ILUkSymbolic> sym,
            Precision precision = Precision::kDouble);

  void apply(std::span<const double> r, std::span<double> z, util::FlopCounter* flops,
             util::LoopStats* loops) const override;

  /// Batched substitution (DESIGN.md §5k): one forward+backward walk of the
  /// fill pattern carrying k interleaved RHS columns per row, streaming the
  /// L/U/D~^-1 factors once for all columns.
  void apply_multi(std::span<const double> r, std::span<double> z, int k,
                   util::FlopCounter* flops, util::LoopStats* loops) const override;

  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] std::string name() const override { return desc().display_name(); }
  [[nodiscard]] Desc desc() const override {
    Desc d;
    if (sym_->fill_level == 1) {
      d.kind = PrecondKind::kBIC1;
    } else if (sym_->fill_level == 2) {
      d.kind = PrecondKind::kBIC2;
    } else {
      d.custom = "BIC(" + std::to_string(sym_->fill_level) + ")";
    }
    d.precision = precision_;
    return d;
  }

  /// Stored blocks in L + U (fill-in growth diagnostic).
  [[nodiscard]] std::size_t factor_blocks() const {
    return sym_->lcol.size() + sym_->ucol.size();
  }

 private:
  void numeric(const sparse::BlockCSR& a);

  std::shared_ptr<const ILUkSymbolic> sym_;
  Precision precision_ = Precision::kDouble;
  simd::aligned_vector<double> lval_;   ///< kBB per L pattern entry
  simd::aligned_vector<double> uval_;   ///< kBB per U pattern entry
  simd::aligned_vector<double> inv_d_;  ///< kBB per row: U_ii^-1
  /// fp32-stored factors (kSingle only; the fp64 arrays above stay empty)
  simd::aligned_vector<float> lval32_, uval32_, inv32_;
};

}  // namespace geofem::precond
