#pragma once

#include "contact/penalty.hpp"
#include "precond/preconditioner.hpp"
#include "reorder/djds.hpp"
#include "simd/lu3.hpp"
#include "sparse/block_csr.hpp"

namespace geofem::precond {

/// PDJDS/MC vectorized form of BIC(0) / SB-BIC(0) (paper Fig 13 + §4.7):
/// forward/backward substitution sweeps colors sequentially, distributes the
/// (color, PE) chunks over OpenMP threads, and runs the long jagged-diagonal
/// loops innermost. Selective-block diagonals are solved by dense LU, batched
/// by block size (Fig 22). Works entirely in the DJDS (new) ordering: the
/// r/z vectors passed to apply() must be permuted with DJDSMatrix::perm().
///
/// Whether this is "BIC(0)" or "SB-BIC(0)" is decided by the supernodes the
/// DJDSMatrix was built with: singleton supernodes give plain BIC(0).
class DJDSBIC final : public Preconditioner {
 public:
  /// `a` is the matrix in the ORIGINAL ordering (the same one `dj` was built
  /// from); factorization runs in the DJDS elimination order — always in
  /// fp64. `precision` selects the STORED form the sweeps stream: kSingle
  /// narrows the jagged values, the packed SIMD mirrors and the unit LU
  /// factors to fp32 (8-lane AVX2 sweeps, half the factor bandwidth) and
  /// throws Error(kFactorizationFailed) if any factor overflows fp32 range.
  DJDSBIC(const sparse::BlockCSR& a, const reorder::DJDSMatrix& dj,
          Precision precision = Precision::kDouble);

  void apply(std::span<const double> r, std::span<double> z, util::FlopCounter* flops,
             util::LoopStats* loops) const override;

  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] std::string name() const override { return desc().display_name(); }
  [[nodiscard]] Desc desc() const override {
    Desc d;
    d.kind = has_blocks_ ? PrecondKind::kSBBIC0 : PrecondKind::kBIC0;
    d.pdjds = true;
    d.precision = precision_;
    return d;
  }

  [[nodiscard]] Precision precision() const { return precision_; }

  /// Innermost vector-loop lengths of one apply() sweep (jagged loops plus
  /// same-size selective-block solve batches); structural, data-independent.
  [[nodiscard]] const util::LoopStats& structural_loops() const { return struct_loops_; }

  /// Jagged-diagonal loops only (one apply sweep).
  [[nodiscard]] const util::LoopStats& jagged_loops() const { return jagged_loops_; }
  /// Same-size selective-block solve batches only (one apply sweep). On the
  /// Earth Simulator these are the loops the Fig 22 size sort exists for:
  /// a batch of equal-size dense solves vectorizes across the batch; ragged
  /// batches fall back to scalar execution.
  [[nodiscard]] const util::LoopStats& batch_loops() const { return batch_loops_; }
  /// FLOPs of all selective-block dense solves in one apply sweep.
  [[nodiscard]] double block_solve_flops() const { return block_solve_flops_; }

 private:
  void apply_f32(std::span<const double> r, std::span<double> z) const;

  const reorder::DJDSMatrix& dj_;
  Precision precision_ = Precision::kDouble;
  std::vector<sparse::DenseLU> lu_;  ///< per ordering unit, in new-row order
  /// per chunk: ordering units as (new start row, node count, unit id = index
  /// into lu_ / elimination order)
  struct Unit {
    int start;
    int size;
    int id;
  };
  std::vector<std::vector<Unit>> chunk_units_;
  /// AVX2 path: runs of consecutive singleton (3x3) units batched 4 lanes
  /// wide — the Fig 22 same-size batch applied at SIMD width — plus the
  /// leftover units (multi-node supernodes) solved by generic dense LU.
  std::vector<simd::PackedLU3> chunk_lu3_;
  std::vector<std::vector<Unit>> chunk_rest_;
  /// fp32 storage (kSingle only): narrowed jagged values per chunk with
  /// their 8-lane packed mirrors, narrowed unit LU factors, and the 8-wide
  /// singleton solve batches. The substitution runs entirely in fp32 staging
  /// and widens back into the fp64 z at the end of apply().
  struct ChunkF32 {
    simd::aligned_vector<float> lower_val, upper_val;
    simd::PackedJaggedT<float> lower_packed, upper_packed;
  };
  std::vector<ChunkF32> f32_;
  std::vector<sparse::DenseSolveT<float>> lu32_;
  std::vector<simd::PackedLU3T<float>> chunk_lu3f_;
  bool has_blocks_ = false;
  util::LoopStats struct_loops_;
  util::LoopStats jagged_loops_;
  util::LoopStats batch_loops_;
  double block_solve_flops_ = 0.0;
  std::uint64_t apply_flops_ = 0;
};

/// Self-contained PDJDS/MC preconditioner that presents the ORIGINAL row
/// ordering at its interface (permuting r/z internally), so it can drop into
/// any solver — in particular as the per-domain localized preconditioner of
/// the distributed hybrid runs. Owns the matrix copy, the ordering, and the
/// factorization.
class OwnedDJDSBIC final : public Preconditioner {
 public:
  /// Builds MC coloring (quotient-graph based when `sn` has multi-node
  /// supernodes), the DJDS ordering, and the factorization from `a` (copied).
  OwnedDJDSBIC(const sparse::BlockCSR& a, contact::Supernodes sn, int colors, int npe,
               bool sort_supernodes = true, Precision precision = Precision::kDouble);

  void apply(std::span<const double> r, std::span<double> z, util::FlopCounter* flops,
             util::LoopStats* loops) const override;

  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] std::string name() const override { return inner_->name(); }
  [[nodiscard]] Desc desc() const override { return inner_->desc(); }

  [[nodiscard]] const reorder::DJDSMatrix& djds() const { return *dj_; }
  [[nodiscard]] const DJDSBIC& inner() const { return *inner_; }

 private:
  sparse::BlockCSR a_;
  contact::Supernodes sn_;
  std::unique_ptr<reorder::DJDSMatrix> dj_;
  std::unique_ptr<DJDSBIC> inner_;
  mutable simd::aligned_vector<double> pr_, pz_;
};

}  // namespace geofem::precond
