#pragma once

#include <memory>

#include "coarse/coarse.hpp"
#include "precond/preconditioner.hpp"
#include "sparse/block_csr.hpp"

namespace geofem::precond {

/// Two-level wrapper around any one-level preconditioner M (serial /
/// single-address-space path; the distributed solver composes the same
/// pieces inline so the coarse residual can be allreduced).
///
/// With Q = P A_c^-1 R the apply is
///   kAdditive:  z = M^-1 r + Q r
///   kDeflated:  z = Q r + (I - QA) M^-1 (I - AQ) r
/// Both are symmetric when A and M are, so CG stays valid. The deflated form
/// costs two extra fine matvecs and two coarse solves per apply, but removes
/// the low-energy modes the localized preconditioners cannot see — which is
/// what flattens iteration growth with the domain count.
class TwoLevel final : public Preconditioner {
 public:
  /// `a` must outlive the preconditioner (same contract as the one-level
  /// kinds); `inner` is the wrapped M, `op` the factored coarse level.
  TwoLevel(PreconditionerPtr inner, std::shared_ptr<const coarse::CoarseOperator> op,
           const sparse::BlockCSR& a, coarse::Mode mode);

  void apply(std::span<const double> r, std::span<double> z, util::FlopCounter* flops,
             util::LoopStats* loops) const override;

  [[nodiscard]] std::size_t memory_bytes() const override {
    return inner_->memory_bytes() + op_->memory_bytes();
  }
  [[nodiscard]] std::string name() const override;
  /// The wrapped preconditioner's identity with the coarse level stacked on
  /// (mode + coarse DOFs).
  [[nodiscard]] Desc desc() const override;

  [[nodiscard]] const Preconditioner& inner() const { return *inner_; }
  [[nodiscard]] const coarse::CoarseOperator& coarse_op() const { return *op_; }

 private:
  PreconditionerPtr inner_;
  std::shared_ptr<const coarse::CoarseOperator> op_;
  const sparse::BlockCSR& a_;
  coarse::Mode mode_;
  // scratch, sized in the constructor so apply() never allocates
  mutable std::vector<double> yc_;           ///< coarse residual / solution
  mutable std::vector<double> q_, t_, mt_;   ///< fine-size work (deflated)
};

}  // namespace geofem::precond
