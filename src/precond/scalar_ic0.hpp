#pragma once

#include "precond/preconditioner.hpp"
#include "sparse/block_csr.hpp"

namespace geofem::precond {

/// Point-wise (scalar) IC(0) of Table 2's "IC(0) (Scalar Type)" row:
/// M = (L + D) D^-1 (D + L^T) with L the strict scalar lower triangle of A
/// (unmodified) and the modified diagonal
///   d_i = a_ii - sum_{k < i, (i,k) in A} a_ik^2 / d_k.
/// Non-positive modified diagonals are reset to the original a_ii (classic
/// breakdown remedy) — the preconditioner stays usable but weak, which is
/// exactly the paper-observed behaviour on large-penalty matrices.
class ScalarIC0 final : public Preconditioner {
 public:
  explicit ScalarIC0(const sparse::BlockCSR& a);

  void apply(std::span<const double> r, std::span<double> z, util::FlopCounter* flops,
             util::LoopStats* loops) const override;

  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] std::string name() const override { return "IC(0) scalar"; }

  /// Number of diagonal entries that hit the breakdown reset.
  [[nodiscard]] int breakdowns() const { return breakdowns_; }

 private:
  int n_ = 0;  // scalar dimension
  // scalar CSR of the strict lower triangle
  std::vector<int> lptr_, lcol_;
  std::vector<double> lval_;
  // scalar CSR of the strict upper triangle
  std::vector<int> uptr_, ucol_;
  std::vector<double> uval_;
  std::vector<double> inv_d_;
  int breakdowns_ = 0;
};

}  // namespace geofem::precond
