#pragma once

#include <cstdint>
#include <memory>

#include "par/par.hpp"
#include "precond/preconditioner.hpp"
#include "sparse/block_csr.hpp"

namespace geofem::precond {

/// Structure-only half of the scalar IC(0): the scalar lower/upper CSR
/// expansion of the block matrix plus, per scalar entry, the flat index of
/// its source value in the block value array. The expansion drops exact-zero
/// off-diagonals, so the pattern is *value-dependent*: plan reuse assumes the
/// scalar zero pattern is stable across refactorizations (true for penalty
/// rescaling, where contact couplings scale but never vanish).
struct ScalarIC0Symbolic {
  int n = 0;  ///< scalar dimension (kB * block rows)
  std::vector<int> lptr, lcol;
  std::vector<int> uptr, ucol;
  // flat indices into BlockCSR::val (entry * kBB + r * kB + c)
  std::vector<std::int64_t> lsrc, usrc;
  std::vector<std::int64_t> dsrc;  ///< per scalar row: source of a_ii
  /// Substitution dependency levels over the scalar rows (hybrid apply).
  par::LevelSchedule fwd, bwd;

  [[nodiscard]] std::size_t memory_bytes() const;
};

/// Symbolic phase of ScalarIC0 (scalar expansion of the current zero pattern).
[[nodiscard]] std::shared_ptr<const ScalarIC0Symbolic> scalar_ic0_symbolic(
    const sparse::BlockCSR& a);

/// Point-wise (scalar) IC(0) of Table 2's "IC(0) (Scalar Type)" row:
/// M = (L + D) D^-1 (D + L^T) with L the strict scalar lower triangle of A
/// (unmodified) and the modified diagonal
///   d_i = a_ii - sum_{k < i, (i,k) in A} a_ik^2 / d_k.
/// Non-positive modified diagonals are reset to the original a_ii (classic
/// breakdown remedy) — the preconditioner stays usable but weak, which is
/// exactly the paper-observed behaviour on large-penalty matrices.
class ScalarIC0 final : public Preconditioner {
 public:
  explicit ScalarIC0(const sparse::BlockCSR& a, Precision precision = Precision::kDouble);

  /// Numeric-only set-up on a previously computed (plan-cached) scalar
  /// pattern. `a` must have the same scalar zero pattern `sym` was built
  /// from; produces bit-identical factors to the cold constructor.
  ScalarIC0(const sparse::BlockCSR& a, std::shared_ptr<const ScalarIC0Symbolic> sym,
            Precision precision = Precision::kDouble);

  void apply(std::span<const double> r, std::span<double> z, util::FlopCounter* flops,
             util::LoopStats* loops) const override;

  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] std::string name() const override { return desc().display_name(); }
  [[nodiscard]] Desc desc() const override {
    Desc d;
    d.kind = PrecondKind::kScalarIC0;
    d.precision = precision_;
    return d;
  }

  /// Number of diagonal entries that hit the breakdown reset.
  [[nodiscard]] int breakdowns() const { return breakdowns_; }

 private:
  void numeric(const sparse::BlockCSR& a);
  template <class T>
  void apply_impl(const T* lval, const T* uval, const T* inv_d, const double* r, double* z,
                  int team) const;

  std::shared_ptr<const ScalarIC0Symbolic> sym_;
  Precision precision_ = Precision::kDouble;
  std::vector<double> lval_, uval_;
  std::vector<double> inv_d_;
  /// fp32-stored factors (kSingle only; the substitution accumulates in fp64)
  simd::aligned_vector<float> lval32_, uval32_, inv32_;
  int breakdowns_ = 0;
};

}  // namespace geofem::precond
