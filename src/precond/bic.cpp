#include "precond/bic.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "core/status.hpp"
#include "obs/span.hpp"
#include "simd/block3.hpp"
#include "simd/multirhs.hpp"
#include "util/check.hpp"

namespace geofem::precond {

using sparse::kB;
using sparse::kBB;

namespace {

/// z_i = D_i * acc via the accumulator in use. For ScalarAcc3 this is exactly
/// the historical b3_apply (x + 0.0 is exact), for AvxAcc3 the FMA tree.
/// T = float widens the stored block on load; arithmetic stays fp64.
template <class Acc, class T>
inline void acc_apply_block(const T* d, const double* x, double* z) {
  Acc a;
  a.init_zero();
  a.madd(d, x);
  a.reduce(z);
}

/// Invert a 3x3 block; on singularity fall back to inverting its diagonal
/// part (breakdown remedy that keeps the preconditioner usable). A zero or
/// non-finite diagonal entry is beyond the remedy — the factorization cannot
/// produce a usable M and must say so instead of injecting a silent 1.0.
void invert_or_reset(const double* d, double* inv) {
  if (sparse::b3_inverse(d, inv)) return;
  for (int t = 0; t < kBB; ++t) inv[t] = 0.0;
  for (int c = 0; c < kB; ++c) {
    const double v = d[kB * c + c];
    if (v == 0.0 || !std::isfinite(v))
      throw Error(StatusCode::kFactorizationFailed, "BIC: unusable pivot block diagonal");
    inv[kB * c + c] = 1.0 / v;
  }
}

/// Level-scheduled BIC(0) substitution, accumulator chosen once per apply.
/// `aval` is the block value array the sweep streams — a.val for fp64, the
/// narrowed fp32 mirror for kSingle (same entry indexing).
template <class Acc, class T>
void bic0_apply_impl(const sparse::BlockCSR& a, const T* aval, const T* inv_d,
                     const par::LevelSchedule& fwd, const par::LevelSchedule& bwd,
                     const double* r, double* z, int team) {
  // forward: y_i = D~_i^-1 (r_i - sum_{k<i} A_ik y_k)
  par::for_levels(fwd, team, [&](int i) {
    Acc acc;
    acc.init(r + static_cast<std::size_t>(i) * kB);
    for (int e = a.rowptr[i]; e < a.rowptr[i + 1] && a.colind[e] < i; ++e)
      acc.msub(aval + static_cast<std::size_t>(e) * kBB,
               z + static_cast<std::size_t>(a.colind[e]) * kB);
    double tmp[kB];
    acc.reduce(tmp);
    acc_apply_block<Acc>(inv_d + static_cast<std::size_t>(i) * kBB, tmp,
                         z + static_cast<std::size_t>(i) * kB);
  });
  // backward: z_i -= D~_i^-1 sum_{j>i} A_ij z_j
  par::for_levels(bwd, team, [&](int i) {
    Acc acc;
    acc.init_zero();
    for (int e = a.rowptr[i + 1] - 1; e >= a.rowptr[i] && a.colind[e] > i; --e)
      acc.madd(aval + static_cast<std::size_t>(e) * kBB,
               z + static_cast<std::size_t>(a.colind[e]) * kB);
    double tmp[kB], corr[kB];
    acc.reduce(tmp);
    acc_apply_block<Acc>(inv_d + static_cast<std::size_t>(i) * kBB, tmp, corr);
    double* zi = z + static_cast<std::size_t>(i) * kB;
    zi[0] -= corr[0];
    zi[1] -= corr[1];
    zi[2] -= corr[2];
  });
}

/// Level-scheduled ILU(k) substitution over the fill pattern.
template <class Acc, class T>
void iluk_apply_impl(const ILUkSymbolic& s, const T* lval, const T* uval,
                     const T* inv_d, const double* r, double* z, int team) {
  // forward (unit L): y_i = r_i - sum L_ik y_k
  par::for_levels(s.fwd, team, [&](int i) {
    Acc acc;
    acc.init(r + static_cast<std::size_t>(i) * kB);
    for (int e = s.lptr[static_cast<std::size_t>(i)]; e < s.lptr[static_cast<std::size_t>(i) + 1];
         ++e)
      acc.msub(lval + static_cast<std::size_t>(e) * kBB,
               z + static_cast<std::size_t>(s.lcol[static_cast<std::size_t>(e)]) * kB);
    acc.reduce(z + static_cast<std::size_t>(i) * kB);
  });
  // backward: z_i = invD_i (y_i - sum U_ij z_j)
  par::for_levels(s.bwd, team, [&](int i) {
    double* zi = z + static_cast<std::size_t>(i) * kB;
    Acc acc;
    acc.init(zi);
    for (int e = s.uptr[static_cast<std::size_t>(i)]; e < s.uptr[static_cast<std::size_t>(i) + 1];
         ++e)
      acc.msub(uval + static_cast<std::size_t>(e) * kBB,
               z + static_cast<std::size_t>(s.ucol[static_cast<std::size_t>(e)]) * kB);
    double tmp[kB];
    acc.reduce(tmp);
    acc_apply_block<Acc>(inv_d + static_cast<std::size_t>(i) * kBB, tmp, zi);
  });
}

/// Multi-RHS twin of bic0_apply_impl: same schedules and update order, the
/// innermost dimension over RHS columns (simd::b3k_* kernels, UseAvx chosen
/// once per apply). The per-row 3*k work arrays live on the stack.
template <bool UseAvx, class T>
void bic0_apply_multi_impl(const sparse::BlockCSR& a, const T* aval, const T* inv_d,
                           const par::LevelSchedule& fwd, const par::LevelSchedule& bwd,
                           const double* r, double* z, int k, int team) {
  const std::size_t rk = static_cast<std::size_t>(kB) * static_cast<std::size_t>(k);
  par::for_levels(fwd, team, [&](int i) {
    double tmp[static_cast<std::size_t>(kB) * simd::kMaxMultiRhs];
    const double* ri = r + static_cast<std::size_t>(i) * rk;
    for (std::size_t c = 0; c < rk; ++c) tmp[c] = ri[c];
    for (int e = a.rowptr[i]; e < a.rowptr[i + 1] && a.colind[e] < i; ++e)
      simd::b3k_msub<T, UseAvx>(aval + static_cast<std::size_t>(e) * kBB,
                                z + static_cast<std::size_t>(a.colind[e]) * rk, tmp, k);
    simd::b3k_apply<T, UseAvx>(inv_d + static_cast<std::size_t>(i) * kBB, tmp,
                               z + static_cast<std::size_t>(i) * rk, k);
  });
  par::for_levels(bwd, team, [&](int i) {
    double tmp[static_cast<std::size_t>(kB) * simd::kMaxMultiRhs];
    double corr[static_cast<std::size_t>(kB) * simd::kMaxMultiRhs];
    for (std::size_t c = 0; c < rk; ++c) tmp[c] = 0.0;
    for (int e = a.rowptr[i + 1] - 1; e >= a.rowptr[i] && a.colind[e] > i; --e)
      simd::b3k_madd<T, UseAvx>(aval + static_cast<std::size_t>(e) * kBB,
                                z + static_cast<std::size_t>(a.colind[e]) * rk, tmp, k);
    simd::b3k_apply<T, UseAvx>(inv_d + static_cast<std::size_t>(i) * kBB, tmp, corr, k);
    double* zi = z + static_cast<std::size_t>(i) * rk;
    for (std::size_t c = 0; c < rk; ++c) zi[c] -= corr[c];
  });
}

/// Multi-RHS twin of iluk_apply_impl over the fill pattern.
template <bool UseAvx, class T>
void iluk_apply_multi_impl(const ILUkSymbolic& s, const T* lval, const T* uval, const T* inv_d,
                           const double* r, double* z, int k, int team) {
  const std::size_t rk = static_cast<std::size_t>(kB) * static_cast<std::size_t>(k);
  par::for_levels(s.fwd, team, [&](int i) {
    double tmp[static_cast<std::size_t>(kB) * simd::kMaxMultiRhs];
    const double* ri = r + static_cast<std::size_t>(i) * rk;
    for (std::size_t c = 0; c < rk; ++c) tmp[c] = ri[c];
    for (int e = s.lptr[static_cast<std::size_t>(i)];
         e < s.lptr[static_cast<std::size_t>(i) + 1]; ++e)
      simd::b3k_msub<T, UseAvx>(
          lval + static_cast<std::size_t>(e) * kBB,
          z + static_cast<std::size_t>(s.lcol[static_cast<std::size_t>(e)]) * rk, tmp, k);
    double* zi = z + static_cast<std::size_t>(i) * rk;
    for (std::size_t c = 0; c < rk; ++c) zi[c] = tmp[c];
  });
  par::for_levels(s.bwd, team, [&](int i) {
    double tmp[static_cast<std::size_t>(kB) * simd::kMaxMultiRhs];
    double* zi = z + static_cast<std::size_t>(i) * rk;
    for (std::size_t c = 0; c < rk; ++c) tmp[c] = zi[c];
    for (int e = s.uptr[static_cast<std::size_t>(i)];
         e < s.uptr[static_cast<std::size_t>(i) + 1]; ++e)
      simd::b3k_msub<T, UseAvx>(
          uval + static_cast<std::size_t>(e) * kBB,
          z + static_cast<std::size_t>(s.ucol[static_cast<std::size_t>(e)]) * rk, tmp, k);
    simd::b3k_apply<T, UseAvx>(inv_d + static_cast<std::size_t>(i) * kBB, tmp, zi, k);
  });
}

}  // namespace

// ---------------------------------------------------------------------------
// BIC(0)
// ---------------------------------------------------------------------------

BIC0::BIC0(const sparse::BlockCSR& a, Precision precision, bool modified)
    : a_(a), precision_(precision) {
  obs::ScopedSpan span("precond.factor.BIC(0)");
  inv_d_.resize(static_cast<std::size_t>(a.n) * kBB);
  std::vector<double> dmod(static_cast<std::size_t>(a.n) * kBB);
  for (int i = 0; i < a.n; ++i) {
    double* di = dmod.data() + static_cast<std::size_t>(i) * kBB;
    std::copy_n(a.block(a.diag_entry(i)), kBB, di);
    for (int e = modified ? a.rowptr[i] : a.rowptr[i + 1]; e < a.rowptr[i + 1]; ++e) {
      const int k = a.colind[e];
      if (k >= i) continue;
      // di -= A_ik * D~_k^-1 * A_ik^T   (A_ki = A_ik^T by symmetry)
      const double* aik = a.block(e);
      const double* invk = inv_d_.data() + static_cast<std::size_t>(k) * kBB;
      double t[kBB] = {};  // t = A_ik * invk
      sparse::b3_gemm(aik, invk, t);
      // di -= t * A_ik^T
      for (int r = 0; r < kB; ++r)
        for (int c = 0; c < kB; ++c) {
          double s = 0.0;
          for (int m = 0; m < kB; ++m) s += t[kB * r + m] * aik[kB * c + m];
          di[kB * r + c] -= s;
        }
    }
    // Over-subtraction remedy: if the corrections drove the block indefinite
    // (which makes M indefinite and breaks CG), fall back to the unmodified
    // diagonal A_ii for this row.
    if (modified && !sparse::is_spd(di, kB)) {
      std::copy_n(a.block(a.diag_entry(i)), kBB, di);
    }
    invert_or_reset(di, inv_d_.data() + static_cast<std::size_t>(i) * kBB);
  }

  // Substitution dependency levels for the hybrid apply: forward over the
  // strict lower pattern, backward over the strict upper.
  lower_len_.assign(static_cast<std::size_t>(a.n), 0);
  std::vector<int> lev(static_cast<std::size_t>(a.n), 0);
  for (int i = 0; i < a.n; ++i) {
    int l = 0, len = 0;
    for (int e = a.rowptr[i]; e < a.rowptr[i + 1] && a.colind[e] < i; ++e) {
      l = std::max(l, lev[static_cast<std::size_t>(a.colind[e])] + 1);
      ++len;
    }
    lev[static_cast<std::size_t>(i)] = l;
    lower_len_[static_cast<std::size_t>(i)] = len;
  }
  fwd_ = par::schedule_from_levels(lev);
  for (int i = a.n - 1; i >= 0; --i) {
    int l = 0;
    for (int e = a.rowptr[i + 1] - 1; e >= a.rowptr[i] && a.colind[e] > i; --e)
      l = std::max(l, lev[static_cast<std::size_t>(a.colind[e])] + 1);
    lev[static_cast<std::size_t>(i)] = l;
  }
  bwd_ = par::schedule_from_levels(lev);

  // kSingle: narrow the stored form — D~^-1 plus the matrix values the
  // substitution reads in place — and drop the fp64 diagonal array.
  if (precision_ == Precision::kSingle) {
    narrow_or_throw(inv_d_, inv32_);
    narrow_or_throw(std::span<const double>(a.val.data(), a.val.size()), aval32_);
    inv_d_.clear();
    inv_d_.shrink_to_fit();
  }
}

void BIC0::apply(std::span<const double> r, std::span<double> z, util::FlopCounter* flops,
                 util::LoopStats* loops) const {
  const auto& a = a_;
  GEOFEM_CHECK(r.size() == a.ndof() && z.size() == a.ndof(), "BIC0 apply size mismatch");
  const int team = par::threads();
  // Rows of one dependency level are independent; per-row arithmetic is the
  // serial sweep's (for the accumulator in use), so the result is
  // bit-identical for any team size.
  if (precision_ == Precision::kSingle) {
#if GEOFEM_SIMD_HAS_AVX2
    if (simd::active() == simd::Isa::kAvx2) {
      bic0_apply_impl<simd::AvxAcc3T<float>>(a, aval32_.data(), inv32_.data(), fwd_, bwd_,
                                             r.data(), z.data(), team);
    } else
#endif
    {
      bic0_apply_impl<simd::ScalarAcc3T<float>>(a, aval32_.data(), inv32_.data(), fwd_, bwd_,
                                                r.data(), z.data(), team);
    }
  } else {
#if GEOFEM_SIMD_HAS_AVX2
    if (simd::active() == simd::Isa::kAvx2) {
      bic0_apply_impl<simd::AvxAcc3>(a, a.val.data(), inv_d_.data(), fwd_, bwd_, r.data(),
                                     z.data(), team);
    } else
#endif
    {
      bic0_apply_impl<simd::ScalarAcc3>(a, a.val.data(), inv_d_.data(), fwd_, bwd_, r.data(),
                                        z.data(), team);
    }
  }
  // Loop lengths are pattern-derived; record serially in the serial order.
  if (loops) {
    for (int i = 0; i < a.n; ++i) loops->record(lower_len_[static_cast<std::size_t>(i)] + 1);
    for (int i = a.n - 1; i >= 0; --i)
      loops->record(a.rowptr[i + 1] - a.rowptr[i] - 1 - lower_len_[static_cast<std::size_t>(i)] +
                    1);
  }
  if (flops)
    flops->precond += 2ULL * kBB * static_cast<std::uint64_t>(a.nnz_blocks() + a.n);
}

void BIC0::apply_multi(std::span<const double> r, std::span<double> z, int k,
                       util::FlopCounter* flops, util::LoopStats* loops) const {
  const auto& a = a_;
  GEOFEM_CHECK(k >= 1 && k <= simd::kMaxMultiRhs, "BIC0 apply_multi: bad column count");
  GEOFEM_CHECK(r.size() == a.ndof() * static_cast<std::size_t>(k) && r.size() == z.size(),
               "BIC0 apply_multi size mismatch");
  const int team = par::threads();
  const bool avx2 = simd::active() == simd::Isa::kAvx2;
  (void)avx2;
  if (precision_ == Precision::kSingle) {
#if GEOFEM_SIMD_HAS_AVX2
    if (avx2) {
      bic0_apply_multi_impl<true>(a, aval32_.data(), inv32_.data(), fwd_, bwd_, r.data(),
                                  z.data(), k, team);
    } else
#endif
    {
      bic0_apply_multi_impl<false>(a, aval32_.data(), inv32_.data(), fwd_, bwd_, r.data(),
                                   z.data(), k, team);
    }
  } else {
#if GEOFEM_SIMD_HAS_AVX2
    if (avx2) {
      bic0_apply_multi_impl<true>(a, a.val.data(), inv_d_.data(), fwd_, bwd_, r.data(), z.data(),
                                  k, team);
    } else
#endif
    {
      bic0_apply_multi_impl<false>(a, a.val.data(), inv_d_.data(), fwd_, bwd_, r.data(),
                                   z.data(), k, team);
    }
  }
  if (loops) {
    for (int i = 0; i < a.n; ++i) loops->record(lower_len_[static_cast<std::size_t>(i)] + 1);
    for (int i = a.n - 1; i >= 0; --i)
      loops->record(a.rowptr[i + 1] - a.rowptr[i] - 1 - lower_len_[static_cast<std::size_t>(i)] +
                    1);
  }
  if (flops)
    flops->precond += 2ULL * kBB * static_cast<std::uint64_t>(a.nnz_blocks() + a.n) *
                      static_cast<std::uint64_t>(k);
}

// ---------------------------------------------------------------------------
// BlockILUk
// ---------------------------------------------------------------------------

std::size_t ILUkSymbolic::memory_bytes() const {
  return (lptr.size() + lcol.size() + uptr.size() + ucol.size() + aslot.size() +
          elim_src.size() + elim_dst.size() + fwd.rows.size() + fwd.level_ptr.size() +
          bwd.rows.size() + bwd.level_ptr.size()) *
             sizeof(int) +
         elim_ptr.size() * sizeof(std::int64_t);
}

std::shared_ptr<const ILUkSymbolic> iluk_symbolic(const sparse::BlockCSR& a, int fill_level) {
  GEOFEM_CHECK(fill_level >= 0, "fill level must be >= 0");
  obs::ScopedSpan span("precond.symbolic.BIC(k)");
  auto out = std::make_shared<ILUkSymbolic>();
  ILUkSymbolic& s = *out;
  const int n_ = a.n;
  s.n = n_;
  s.fill_level = fill_level;
  const int fill_level_ = fill_level;

  // ---- level-of-fill pattern, row by row ----------------------------------
  // ulev/ucol per finished row are needed by later rows.
  std::vector<std::vector<int>> urows_col(static_cast<std::size_t>(n_));
  std::vector<std::vector<int>> urows_lev(static_cast<std::size_t>(n_));
  std::vector<std::vector<int>> lrows_col(static_cast<std::size_t>(n_));

  std::vector<int> wlev(static_cast<std::size_t>(n_), -1);
  std::vector<int> touched;
  for (int i = 0; i < n_; ++i) {
    touched.clear();
    std::set<int> pending;  // unprocessed cols < i, ascending
    for (int e = a.rowptr[i]; e < a.rowptr[i + 1]; ++e) {
      const int j = a.colind[e];
      wlev[static_cast<std::size_t>(j)] = 0;
      touched.push_back(j);
      if (j < i) pending.insert(j);
    }
    while (!pending.empty()) {
      const int k = *pending.begin();
      pending.erase(pending.begin());
      const int lev_ik = wlev[static_cast<std::size_t>(k)];
      const auto& ucol = urows_col[static_cast<std::size_t>(k)];
      const auto& ulev = urows_lev[static_cast<std::size_t>(k)];
      for (std::size_t t = 0; t < ucol.size(); ++t) {
        const int j = ucol[t];
        if (j == i) continue;
        const int cand = lev_ik + ulev[t] + 1;
        if (cand > fill_level_) continue;
        int& cur = wlev[static_cast<std::size_t>(j)];
        if (cur == -1) {
          cur = cand;
          touched.push_back(j);
          if (j < i) pending.insert(j);
        } else if (cand < cur) {
          cur = cand;
        }
      }
    }
    std::sort(touched.begin(), touched.end());
    for (int j : touched) {
      if (j < i) {
        lrows_col[static_cast<std::size_t>(i)].push_back(j);
      } else if (j > i) {
        urows_col[static_cast<std::size_t>(i)].push_back(j);
        urows_lev[static_cast<std::size_t>(i)].push_back(wlev[static_cast<std::size_t>(j)]);
      }
      wlev[static_cast<std::size_t>(j)] = -1;
    }
  }

  // ---- flatten pattern into CSR arrays -------------------------------------
  s.lptr.assign(static_cast<std::size_t>(n_) + 1, 0);
  s.uptr.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (int i = 0; i < n_; ++i) {
    s.lptr[static_cast<std::size_t>(i) + 1] =
        s.lptr[static_cast<std::size_t>(i)] + static_cast<int>(lrows_col[static_cast<std::size_t>(i)].size());
    s.uptr[static_cast<std::size_t>(i) + 1] =
        s.uptr[static_cast<std::size_t>(i)] + static_cast<int>(urows_col[static_cast<std::size_t>(i)].size());
  }
  s.lcol.reserve(static_cast<std::size_t>(s.lptr.back()));
  s.ucol.reserve(static_cast<std::size_t>(s.uptr.back()));
  for (int i = 0; i < n_; ++i) {
    s.lcol.insert(s.lcol.end(), lrows_col[static_cast<std::size_t>(i)].begin(),
                  lrows_col[static_cast<std::size_t>(i)].end());
    s.ucol.insert(s.ucol.end(), urows_col[static_cast<std::size_t>(i)].begin(),
                  urows_col[static_cast<std::size_t>(i)].end());
    lrows_col[static_cast<std::size_t>(i)].clear();
    lrows_col[static_cast<std::size_t>(i)].shrink_to_fit();
  }

  // ---- elimination schedule -------------------------------------------------
  // Slot layout per row i: [0, nl) L entries, [nl, nl+nu) U entries, nl+nu
  // the diagonal. wslot[col] = slot of col in the current row, -1 otherwise;
  // the schedule records, per L entry (i,k), every in-pattern update target,
  // so the numeric phase never consults the pattern again.
  s.aslot.assign(static_cast<std::size_t>(a.nnz_blocks()), -1);
  s.elim_ptr.assign(s.lcol.size() + 1, 0);
  std::vector<int> wslot(static_cast<std::size_t>(n_), -1);
  for (int i = 0; i < n_; ++i) {
    const int lb = s.lptr[static_cast<std::size_t>(i)], le = s.lptr[static_cast<std::size_t>(i) + 1];
    const int ub = s.uptr[static_cast<std::size_t>(i)], ue = s.uptr[static_cast<std::size_t>(i) + 1];
    const int nl = le - lb;
    for (int t = 0; t < nl; ++t)
      wslot[static_cast<std::size_t>(s.lcol[static_cast<std::size_t>(lb + t)])] = t;
    for (int t = 0; t < ue - ub; ++t)
      wslot[static_cast<std::size_t>(s.ucol[static_cast<std::size_t>(ub + t)])] = nl + t;
    wslot[static_cast<std::size_t>(i)] = nl + (ue - ub);
    for (int e = a.rowptr[i]; e < a.rowptr[i + 1]; ++e)
      s.aslot[static_cast<std::size_t>(e)] = wslot[static_cast<std::size_t>(a.colind[e])];
    for (int e = lb; e < le; ++e) {
      const int k = s.lcol[static_cast<std::size_t>(e)];
      for (int f = s.uptr[static_cast<std::size_t>(k)]; f < s.uptr[static_cast<std::size_t>(k) + 1]; ++f) {
        const int j = s.ucol[static_cast<std::size_t>(f)];
        if (wslot[static_cast<std::size_t>(j)] == -1) continue;  // outside pattern: dropped
        s.elim_src.push_back(f);
        s.elim_dst.push_back(wslot[static_cast<std::size_t>(j)]);
      }
      s.elim_ptr[static_cast<std::size_t>(e) + 1] = static_cast<std::int64_t>(s.elim_src.size());
    }
    for (int t = lb; t < le; ++t) wslot[static_cast<std::size_t>(s.lcol[static_cast<std::size_t>(t)])] = -1;
    for (int t = ub; t < ue; ++t) wslot[static_cast<std::size_t>(s.ucol[static_cast<std::size_t>(t)])] = -1;
    wslot[static_cast<std::size_t>(i)] = -1;
  }

  // ---- substitution dependency levels (hybrid apply) ------------------------
  {
    std::vector<int> lev(static_cast<std::size_t>(n_), 0);
    for (int i = 0; i < n_; ++i) {
      int l = 0;
      for (int e = s.lptr[static_cast<std::size_t>(i)]; e < s.lptr[static_cast<std::size_t>(i) + 1]; ++e)
        l = std::max(l, lev[static_cast<std::size_t>(s.lcol[static_cast<std::size_t>(e)])] + 1);
      lev[static_cast<std::size_t>(i)] = l;
    }
    s.fwd = par::schedule_from_levels(lev);
    for (int i = n_ - 1; i >= 0; --i) {
      int l = 0;
      for (int e = s.uptr[static_cast<std::size_t>(i)]; e < s.uptr[static_cast<std::size_t>(i) + 1]; ++e)
        l = std::max(l, lev[static_cast<std::size_t>(s.ucol[static_cast<std::size_t>(e)])] + 1);
      lev[static_cast<std::size_t>(i)] = l;
    }
    s.bwd = par::schedule_from_levels(lev);
  }
  return out;
}

BlockILUk::BlockILUk(const sparse::BlockCSR& a, int fill_level, Precision precision)
    : sym_(iluk_symbolic(a, fill_level)), precision_(precision) {
  numeric(a);
}

BlockILUk::BlockILUk(const sparse::BlockCSR& a, std::shared_ptr<const ILUkSymbolic> sym,
                     Precision precision)
    : sym_(std::move(sym)), precision_(precision) {
  GEOFEM_CHECK(sym_ && sym_->n == a.n, "BlockILUk: symbolic/matrix size mismatch");
  numeric(a);
}

void BlockILUk::numeric(const sparse::BlockCSR& a) {
  obs::ScopedSpan span("precond.numeric.BIC(k)");
  const ILUkSymbolic& s = *sym_;
  const int n_ = s.n;
  lval_.assign(s.lcol.size() * kBB, 0.0);
  uval_.assign(s.ucol.size() * kBB, 0.0);
  inv_d_.assign(static_cast<std::size_t>(n_) * kBB, 0.0);

  // Block IKJ elimination on the fixed pattern, driven entirely by the
  // precomputed schedule. Arithmetic order matches the cold factorization
  // exactly (ascending pivot k, ascending U entry of k), so factors are
  // bit-identical whether the pattern was just built or plan-cached.
  std::size_t max_width = 0;
  for (int i = 0; i < n_; ++i) {
    const std::size_t w = static_cast<std::size_t>(s.lptr[static_cast<std::size_t>(i) + 1] -
                                                   s.lptr[static_cast<std::size_t>(i)] +
                                                   s.uptr[static_cast<std::size_t>(i) + 1] -
                                                   s.uptr[static_cast<std::size_t>(i)]) + 1;
    max_width = std::max(max_width, w);
  }
  std::vector<double> wval(max_width * kBB);
  for (int i = 0; i < n_; ++i) {
    const int lb = s.lptr[static_cast<std::size_t>(i)], le = s.lptr[static_cast<std::size_t>(i) + 1];
    const int ub = s.uptr[static_cast<std::size_t>(i)], ue = s.uptr[static_cast<std::size_t>(i) + 1];
    const int nl = le - lb, nu = ue - ub;
    std::fill_n(wval.begin(), static_cast<std::size_t>(nl + nu + 1) * kBB, 0.0);
    for (int e = a.rowptr[i]; e < a.rowptr[i + 1]; ++e) {
      const double* src = a.block(e);
      double* dst = wval.data() + static_cast<std::size_t>(s.aslot[static_cast<std::size_t>(e)]) * kBB;
      for (int t = 0; t < kBB; ++t) dst[t] += src[t];
    }
    // eliminate: ascending k < i within the L pattern
    for (int e = lb; e < le; ++e) {
      const int k = s.lcol[static_cast<std::size_t>(e)];
      double* lik = wval.data() + static_cast<std::size_t>(e - lb) * kBB;
      // L_ik = w_k * invD_k
      double tmp[kBB] = {};
      sparse::b3_gemm(lik, inv_d_.data() + static_cast<std::size_t>(k) * kBB, tmp);
      std::copy_n(tmp, kBB, lik);
      // w_j -= L_ik * U_kj for the scheduled in-pattern targets
      for (std::int64_t op = s.elim_ptr[static_cast<std::size_t>(e)];
           op < s.elim_ptr[static_cast<std::size_t>(e) + 1]; ++op) {
        sparse::b3_gemm_sub(
            lik, uval_.data() + static_cast<std::size_t>(s.elim_src[static_cast<std::size_t>(op)]) * kBB,
            wval.data() + static_cast<std::size_t>(s.elim_dst[static_cast<std::size_t>(op)]) * kBB);
      }
    }
    // scatter back
    std::copy_n(wval.data(), static_cast<std::size_t>(nl) * kBB,
                lval_.data() + static_cast<std::size_t>(lb) * kBB);
    std::copy_n(wval.data() + static_cast<std::size_t>(nl) * kBB, static_cast<std::size_t>(nu) * kBB,
                uval_.data() + static_cast<std::size_t>(ub) * kBB);
    invert_or_reset(wval.data() + static_cast<std::size_t>(nl + nu) * kBB,
                    inv_d_.data() + static_cast<std::size_t>(i) * kBB);
  }

  // kSingle: the factorization above always runs in fp64; narrow the stored
  // factors and drop the fp64 arrays.
  if (precision_ == Precision::kSingle) {
    narrow_or_throw(lval_, lval32_);
    narrow_or_throw(uval_, uval32_);
    narrow_or_throw(inv_d_, inv32_);
    lval_.clear();
    lval_.shrink_to_fit();
    uval_.clear();
    uval_.shrink_to_fit();
    inv_d_.clear();
    inv_d_.shrink_to_fit();
  }
}

void BlockILUk::apply(std::span<const double> r, std::span<double> z, util::FlopCounter* flops,
                      util::LoopStats* loops) const {
  const ILUkSymbolic& s = *sym_;
  const int n_ = s.n;
  GEOFEM_CHECK(static_cast<int>(r.size()) == n_ * kB && static_cast<int>(z.size()) == n_ * kB,
               "BlockILUk apply size mismatch");
  const int team = par::threads();
  // Level-parallel; per-row arithmetic unchanged (for the accumulator in
  // use), so bit-identical for any team size.
  if (precision_ == Precision::kSingle) {
#if GEOFEM_SIMD_HAS_AVX2
    if (simd::active() == simd::Isa::kAvx2) {
      iluk_apply_impl<simd::AvxAcc3T<float>>(s, lval32_.data(), uval32_.data(), inv32_.data(),
                                             r.data(), z.data(), team);
    } else
#endif
    {
      iluk_apply_impl<simd::ScalarAcc3T<float>>(s, lval32_.data(), uval32_.data(), inv32_.data(),
                                                r.data(), z.data(), team);
    }
  } else {
#if GEOFEM_SIMD_HAS_AVX2
    if (simd::active() == simd::Isa::kAvx2) {
      iluk_apply_impl<simd::AvxAcc3>(s, lval_.data(), uval_.data(), inv_d_.data(), r.data(),
                                     z.data(), team);
    } else
#endif
    {
      iluk_apply_impl<simd::ScalarAcc3>(s, lval_.data(), uval_.data(), inv_d_.data(), r.data(),
                                        z.data(), team);
    }
  }
  if (loops) {
    for (int i = 0; i < n_; ++i)
      loops->record(s.lptr[static_cast<std::size_t>(i) + 1] - s.lptr[static_cast<std::size_t>(i)] + 1);
    for (int i = n_ - 1; i >= 0; --i)
      loops->record(s.uptr[static_cast<std::size_t>(i) + 1] - s.uptr[static_cast<std::size_t>(i)] + 1);
  }
  if (flops)
    flops->precond +=
        2ULL * kBB * (s.lcol.size() + s.ucol.size() + static_cast<std::uint64_t>(n_));
}

void BlockILUk::apply_multi(std::span<const double> r, std::span<double> z, int k,
                            util::FlopCounter* flops, util::LoopStats* loops) const {
  const ILUkSymbolic& s = *sym_;
  const int n_ = s.n;
  GEOFEM_CHECK(k >= 1 && k <= simd::kMaxMultiRhs, "BlockILUk apply_multi: bad column count");
  GEOFEM_CHECK(r.size() == static_cast<std::size_t>(n_) * kB * static_cast<std::size_t>(k) &&
                   r.size() == z.size(),
               "BlockILUk apply_multi size mismatch");
  const int team = par::threads();
  const bool avx2 = simd::active() == simd::Isa::kAvx2;
  (void)avx2;
  if (precision_ == Precision::kSingle) {
#if GEOFEM_SIMD_HAS_AVX2
    if (avx2) {
      iluk_apply_multi_impl<true>(s, lval32_.data(), uval32_.data(), inv32_.data(), r.data(),
                                  z.data(), k, team);
    } else
#endif
    {
      iluk_apply_multi_impl<false>(s, lval32_.data(), uval32_.data(), inv32_.data(), r.data(),
                                   z.data(), k, team);
    }
  } else {
#if GEOFEM_SIMD_HAS_AVX2
    if (avx2) {
      iluk_apply_multi_impl<true>(s, lval_.data(), uval_.data(), inv_d_.data(), r.data(),
                                  z.data(), k, team);
    } else
#endif
    {
      iluk_apply_multi_impl<false>(s, lval_.data(), uval_.data(), inv_d_.data(), r.data(),
                                   z.data(), k, team);
    }
  }
  if (loops) {
    for (int i = 0; i < n_; ++i)
      loops->record(s.lptr[static_cast<std::size_t>(i) + 1] - s.lptr[static_cast<std::size_t>(i)] + 1);
    for (int i = n_ - 1; i >= 0; --i)
      loops->record(s.uptr[static_cast<std::size_t>(i) + 1] - s.uptr[static_cast<std::size_t>(i)] + 1);
  }
  if (flops)
    flops->precond += 2ULL * kBB * (s.lcol.size() + s.ucol.size() + static_cast<std::uint64_t>(n_)) *
                      static_cast<std::uint64_t>(k);
}

std::size_t BlockILUk::memory_bytes() const {
  return (lval_.size() + uval_.size() + inv_d_.size()) * sizeof(double) +
         (lval32_.size() + uval32_.size() + inv32_.size()) * sizeof(float) +
         sym_->memory_bytes();
}

}  // namespace geofem::precond
