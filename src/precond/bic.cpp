#include "precond/bic.hpp"

#include <algorithm>
#include <set>

#include "obs/span.hpp"
#include "util/check.hpp"

namespace geofem::precond {

using sparse::kB;
using sparse::kBB;

namespace {

/// Invert a 3x3 block; on singularity fall back to inverting its diagonal
/// part (breakdown remedy that keeps the preconditioner usable).
void invert_or_reset(const double* d, double* inv) {
  if (sparse::b3_inverse(d, inv)) return;
  for (int t = 0; t < kBB; ++t) inv[t] = 0.0;
  for (int c = 0; c < kB; ++c) inv[kB * c + c] = d[kB * c + c] != 0.0 ? 1.0 / d[kB * c + c] : 1.0;
}

}  // namespace

// ---------------------------------------------------------------------------
// BIC(0)
// ---------------------------------------------------------------------------

BIC0::BIC0(const sparse::BlockCSR& a, bool modified) : a_(a) {
  obs::ScopedSpan span("precond.factor.BIC(0)");
  inv_d_.resize(static_cast<std::size_t>(a.n) * kBB);
  std::vector<double> dmod(static_cast<std::size_t>(a.n) * kBB);
  for (int i = 0; i < a.n; ++i) {
    double* di = dmod.data() + static_cast<std::size_t>(i) * kBB;
    std::copy_n(a.block(a.diag_entry(i)), kBB, di);
    for (int e = modified ? a.rowptr[i] : a.rowptr[i + 1]; e < a.rowptr[i + 1]; ++e) {
      const int k = a.colind[e];
      if (k >= i) continue;
      // di -= A_ik * D~_k^-1 * A_ik^T   (A_ki = A_ik^T by symmetry)
      const double* aik = a.block(e);
      const double* invk = inv_d_.data() + static_cast<std::size_t>(k) * kBB;
      double t[kBB] = {};  // t = A_ik * invk
      sparse::b3_gemm(aik, invk, t);
      // di -= t * A_ik^T
      for (int r = 0; r < kB; ++r)
        for (int c = 0; c < kB; ++c) {
          double s = 0.0;
          for (int m = 0; m < kB; ++m) s += t[kB * r + m] * aik[kB * c + m];
          di[kB * r + c] -= s;
        }
    }
    // Over-subtraction remedy: if the corrections drove the block indefinite
    // (which makes M indefinite and breaks CG), fall back to the unmodified
    // diagonal A_ii for this row.
    if (modified && !sparse::is_spd(di, kB)) {
      std::copy_n(a.block(a.diag_entry(i)), kBB, di);
    }
    invert_or_reset(di, inv_d_.data() + static_cast<std::size_t>(i) * kBB);
  }
}

void BIC0::apply(std::span<const double> r, std::span<double> z, util::FlopCounter* flops,
                 util::LoopStats* loops) const {
  const auto& a = a_;
  GEOFEM_CHECK(r.size() == a.ndof() && z.size() == a.ndof(), "BIC0 apply size mismatch");
  // forward: y_i = D~_i^-1 (r_i - sum_{k<i} A_ik y_k)
  for (int i = 0; i < a.n; ++i) {
    double acc[kB];
    const double* ri = r.data() + static_cast<std::size_t>(i) * kB;
    acc[0] = ri[0];
    acc[1] = ri[1];
    acc[2] = ri[2];
    int len = 0;
    for (int e = a.rowptr[i]; e < a.rowptr[i + 1] && a.colind[e] < i; ++e) {
      sparse::b3_gemv_sub(a.block(e), z.data() + static_cast<std::size_t>(a.colind[e]) * kB, acc);
      ++len;
    }
    sparse::b3_apply(inv_d_.data() + static_cast<std::size_t>(i) * kBB, acc,
                     z.data() + static_cast<std::size_t>(i) * kB);
    if (loops) loops->record(len + 1);
  }
  // backward: z_i -= D~_i^-1 sum_{j>i} A_ij z_j
  for (int i = a.n - 1; i >= 0; --i) {
    double acc[kB] = {};
    int len = 0;
    for (int e = a.rowptr[i + 1] - 1; e >= a.rowptr[i] && a.colind[e] > i; --e) {
      sparse::b3_gemv(a.block(e), z.data() + static_cast<std::size_t>(a.colind[e]) * kB, acc);
      ++len;
    }
    double corr[kB];
    sparse::b3_apply(inv_d_.data() + static_cast<std::size_t>(i) * kBB, acc, corr);
    double* zi = z.data() + static_cast<std::size_t>(i) * kB;
    zi[0] -= corr[0];
    zi[1] -= corr[1];
    zi[2] -= corr[2];
    if (loops) loops->record(len + 1);
  }
  if (flops)
    flops->precond += 2ULL * kBB * static_cast<std::uint64_t>(a.nnz_blocks() + a.n);
}

// ---------------------------------------------------------------------------
// BlockILUk
// ---------------------------------------------------------------------------

BlockILUk::BlockILUk(const sparse::BlockCSR& a, int fill_level)
    : n_(a.n), fill_level_(fill_level) {
  GEOFEM_CHECK(fill_level >= 0, "fill level must be >= 0");
  obs::ScopedSpan span("precond.factor.BIC(k)");

  // ---- symbolic: level-of-fill pattern, row by row ------------------------
  // ulev/ucol per finished row are needed by later rows.
  std::vector<std::vector<int>> urows_col(static_cast<std::size_t>(n_));
  std::vector<std::vector<int>> urows_lev(static_cast<std::size_t>(n_));
  std::vector<std::vector<int>> lrows_col(static_cast<std::size_t>(n_));

  std::vector<int> wlev(static_cast<std::size_t>(n_), -1);
  std::vector<int> touched;
  for (int i = 0; i < n_; ++i) {
    touched.clear();
    std::set<int> pending;  // unprocessed cols < i, ascending
    for (int e = a.rowptr[i]; e < a.rowptr[i + 1]; ++e) {
      const int j = a.colind[e];
      wlev[static_cast<std::size_t>(j)] = 0;
      touched.push_back(j);
      if (j < i) pending.insert(j);
    }
    while (!pending.empty()) {
      const int k = *pending.begin();
      pending.erase(pending.begin());
      const int lev_ik = wlev[static_cast<std::size_t>(k)];
      const auto& ucol = urows_col[static_cast<std::size_t>(k)];
      const auto& ulev = urows_lev[static_cast<std::size_t>(k)];
      for (std::size_t t = 0; t < ucol.size(); ++t) {
        const int j = ucol[t];
        if (j == i) continue;
        const int cand = lev_ik + ulev[t] + 1;
        if (cand > fill_level_) continue;
        int& cur = wlev[static_cast<std::size_t>(j)];
        if (cur == -1) {
          cur = cand;
          touched.push_back(j);
          if (j < i) pending.insert(j);
        } else if (cand < cur) {
          cur = cand;
        }
      }
    }
    std::sort(touched.begin(), touched.end());
    for (int j : touched) {
      if (j < i) {
        lrows_col[static_cast<std::size_t>(i)].push_back(j);
      } else if (j > i) {
        urows_col[static_cast<std::size_t>(i)].push_back(j);
        urows_lev[static_cast<std::size_t>(i)].push_back(wlev[static_cast<std::size_t>(j)]);
      }
      wlev[static_cast<std::size_t>(j)] = -1;
    }
  }

  // ---- flatten pattern into CSR arrays -------------------------------------
  lptr_.assign(static_cast<std::size_t>(n_) + 1, 0);
  uptr_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (int i = 0; i < n_; ++i) {
    lptr_[static_cast<std::size_t>(i) + 1] =
        lptr_[static_cast<std::size_t>(i)] + static_cast<int>(lrows_col[static_cast<std::size_t>(i)].size());
    uptr_[static_cast<std::size_t>(i) + 1] =
        uptr_[static_cast<std::size_t>(i)] + static_cast<int>(urows_col[static_cast<std::size_t>(i)].size());
  }
  lcol_.reserve(static_cast<std::size_t>(lptr_.back()));
  ucol_.reserve(static_cast<std::size_t>(uptr_.back()));
  for (int i = 0; i < n_; ++i) {
    lcol_.insert(lcol_.end(), lrows_col[static_cast<std::size_t>(i)].begin(),
                 lrows_col[static_cast<std::size_t>(i)].end());
    ucol_.insert(ucol_.end(), urows_col[static_cast<std::size_t>(i)].begin(),
                 urows_col[static_cast<std::size_t>(i)].end());
    lrows_col[static_cast<std::size_t>(i)].clear();
    lrows_col[static_cast<std::size_t>(i)].shrink_to_fit();
  }
  lval_.assign(lcol_.size() * kBB, 0.0);
  uval_.assign(ucol_.size() * kBB, 0.0);
  inv_d_.assign(static_cast<std::size_t>(n_) * kBB, 0.0);

  // ---- numeric: block IKJ elimination on the fixed pattern -----------------
  // Workspace: wpos[col] = index into the current row's slot table.
  std::vector<int> wpos(static_cast<std::size_t>(n_), -1);
  std::vector<double> wval;   // kBB per touched col
  std::vector<int> wcols;
  for (int i = 0; i < n_; ++i) {
    wcols.clear();
    wval.clear();
    auto slot = [&](int j) -> double* {
      int& p = wpos[static_cast<std::size_t>(j)];
      if (p == -1) {
        p = static_cast<int>(wcols.size());
        wcols.push_back(j);
        wval.insert(wval.end(), kBB, 0.0);
      }
      return wval.data() + static_cast<std::size_t>(p) * kBB;
    };
    // load pattern slots (zero fill) and A values
    for (int e = lptr_[static_cast<std::size_t>(i)]; e < lptr_[static_cast<std::size_t>(i) + 1]; ++e)
      slot(lcol_[static_cast<std::size_t>(e)]);
    for (int e = uptr_[static_cast<std::size_t>(i)]; e < uptr_[static_cast<std::size_t>(i) + 1]; ++e)
      slot(ucol_[static_cast<std::size_t>(e)]);
    slot(i);
    for (int e = a.rowptr[i]; e < a.rowptr[i + 1]; ++e) {
      const double* src = a.block(e);
      double* dst = slot(a.colind[e]);
      for (int t = 0; t < kBB; ++t) dst[t] += src[t];
    }
    // eliminate: ascending k < i within the L pattern
    for (int e = lptr_[static_cast<std::size_t>(i)]; e < lptr_[static_cast<std::size_t>(i) + 1]; ++e) {
      const int k = lcol_[static_cast<std::size_t>(e)];
      double* lik = wval.data() + static_cast<std::size_t>(wpos[static_cast<std::size_t>(k)]) * kBB;
      // L_ik = w_k * invD_k
      double tmp[kBB] = {};
      sparse::b3_gemm(lik, inv_d_.data() + static_cast<std::size_t>(k) * kBB, tmp);
      std::copy_n(tmp, kBB, lik);
      // w_j -= L_ik * U_kj for all U entries of row k present in this row
      for (int f = uptr_[static_cast<std::size_t>(k)]; f < uptr_[static_cast<std::size_t>(k) + 1]; ++f) {
        const int j = ucol_[static_cast<std::size_t>(f)];
        if (wpos[static_cast<std::size_t>(j)] == -1) continue;  // outside pattern: dropped
        sparse::b3_gemm_sub(lik, uval_.data() + static_cast<std::size_t>(f) * kBB,
                            wval.data() + static_cast<std::size_t>(wpos[static_cast<std::size_t>(j)]) * kBB);
      }
    }
    // scatter back
    for (int e = lptr_[static_cast<std::size_t>(i)]; e < lptr_[static_cast<std::size_t>(i) + 1]; ++e)
      std::copy_n(wval.data() + static_cast<std::size_t>(wpos[static_cast<std::size_t>(lcol_[static_cast<std::size_t>(e)])]) * kBB,
                  kBB, lval_.data() + static_cast<std::size_t>(e) * kBB);
    for (int e = uptr_[static_cast<std::size_t>(i)]; e < uptr_[static_cast<std::size_t>(i) + 1]; ++e)
      std::copy_n(wval.data() + static_cast<std::size_t>(wpos[static_cast<std::size_t>(ucol_[static_cast<std::size_t>(e)])]) * kBB,
                  kBB, uval_.data() + static_cast<std::size_t>(e) * kBB);
    invert_or_reset(wval.data() + static_cast<std::size_t>(wpos[static_cast<std::size_t>(i)]) * kBB,
                    inv_d_.data() + static_cast<std::size_t>(i) * kBB);
    for (int j : wcols) wpos[static_cast<std::size_t>(j)] = -1;
  }
}

void BlockILUk::apply(std::span<const double> r, std::span<double> z, util::FlopCounter* flops,
                      util::LoopStats* loops) const {
  GEOFEM_CHECK(static_cast<int>(r.size()) == n_ * kB && static_cast<int>(z.size()) == n_ * kB,
               "BlockILUk apply size mismatch");
  // forward (unit L): y_i = r_i - sum L_ik y_k
  for (int i = 0; i < n_; ++i) {
    double acc[kB];
    const double* ri = r.data() + static_cast<std::size_t>(i) * kB;
    acc[0] = ri[0];
    acc[1] = ri[1];
    acc[2] = ri[2];
    for (int e = lptr_[static_cast<std::size_t>(i)]; e < lptr_[static_cast<std::size_t>(i) + 1]; ++e)
      sparse::b3_gemv_sub(lval_.data() + static_cast<std::size_t>(e) * kBB,
                          z.data() + static_cast<std::size_t>(lcol_[static_cast<std::size_t>(e)]) * kB, acc);
    double* zi = z.data() + static_cast<std::size_t>(i) * kB;
    zi[0] = acc[0];
    zi[1] = acc[1];
    zi[2] = acc[2];
    if (loops) loops->record(lptr_[static_cast<std::size_t>(i) + 1] - lptr_[static_cast<std::size_t>(i)] + 1);
  }
  // backward: z_i = invD_i (y_i - sum U_ij z_j)
  for (int i = n_ - 1; i >= 0; --i) {
    double acc[kB];
    double* zi = z.data() + static_cast<std::size_t>(i) * kB;
    acc[0] = zi[0];
    acc[1] = zi[1];
    acc[2] = zi[2];
    for (int e = uptr_[static_cast<std::size_t>(i)]; e < uptr_[static_cast<std::size_t>(i) + 1]; ++e)
      sparse::b3_gemv_sub(uval_.data() + static_cast<std::size_t>(e) * kBB,
                          z.data() + static_cast<std::size_t>(ucol_[static_cast<std::size_t>(e)]) * kB, acc);
    sparse::b3_apply(inv_d_.data() + static_cast<std::size_t>(i) * kBB, acc, zi);
    if (loops) loops->record(uptr_[static_cast<std::size_t>(i) + 1] - uptr_[static_cast<std::size_t>(i)] + 1);
  }
  if (flops)
    flops->precond +=
        2ULL * kBB * (lcol_.size() + ucol_.size() + static_cast<std::uint64_t>(n_));
}

std::size_t BlockILUk::memory_bytes() const {
  return (lval_.size() + uval_.size() + inv_d_.size()) * sizeof(double) +
         (lcol_.size() + ucol_.size() + lptr_.size() + uptr_.size()) * sizeof(int);
}

}  // namespace geofem::precond
