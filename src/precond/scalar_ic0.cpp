#include "precond/scalar_ic0.hpp"

#include <cmath>

#include "obs/span.hpp"
#include "util/check.hpp"

namespace geofem::precond {

ScalarIC0::ScalarIC0(const sparse::BlockCSR& a) {
  obs::ScopedSpan span("precond.factor.IC(0)");
  n_ = a.n * sparse::kB;
  // Expand the block matrix to scalar lower/upper CSR (dropping exact zeros,
  // which the block format stores but a scalar method would not).
  lptr_.assign(static_cast<std::size_t>(n_) + 1, 0);
  uptr_.assign(static_cast<std::size_t>(n_) + 1, 0);
  std::vector<double> diag(static_cast<std::size_t>(n_), 0.0);

  for (int pass = 0; pass < 2; ++pass) {
    std::vector<int> lpos(lptr_.begin(), lptr_.end() - 1);
    std::vector<int> upos(uptr_.begin(), uptr_.end() - 1);
    for (int bi = 0; bi < a.n; ++bi) {
      for (int e = a.rowptr[bi]; e < a.rowptr[bi + 1]; ++e) {
        const int bj = a.colind[e];
        const double* blk = a.block(e);
        for (int r = 0; r < sparse::kB; ++r) {
          const int row = sparse::kB * bi + r;
          for (int c = 0; c < sparse::kB; ++c) {
            const int col = sparse::kB * bj + c;
            const double v = blk[sparse::kB * r + c];
            if (row == col) {
              diag[static_cast<std::size_t>(row)] = v;
              continue;
            }
            if (v == 0.0) continue;
            if (col < row) {
              if (pass == 0) {
                ++lptr_[static_cast<std::size_t>(row) + 1];
              } else {
                lcol_[static_cast<std::size_t>(lpos[static_cast<std::size_t>(row)])] = col;
                lval_[static_cast<std::size_t>(lpos[static_cast<std::size_t>(row)])] = v;
                ++lpos[static_cast<std::size_t>(row)];
              }
            } else {
              if (pass == 0) {
                ++uptr_[static_cast<std::size_t>(row) + 1];
              } else {
                ucol_[static_cast<std::size_t>(upos[static_cast<std::size_t>(row)])] = col;
                uval_[static_cast<std::size_t>(upos[static_cast<std::size_t>(row)])] = v;
                ++upos[static_cast<std::size_t>(row)];
              }
            }
          }
        }
      }
    }
    if (pass == 0) {
      for (int i = 0; i < n_; ++i) {
        lptr_[static_cast<std::size_t>(i) + 1] += lptr_[static_cast<std::size_t>(i)];
        uptr_[static_cast<std::size_t>(i) + 1] += uptr_[static_cast<std::size_t>(i)];
      }
      lcol_.resize(static_cast<std::size_t>(lptr_[static_cast<std::size_t>(n_)]));
      lval_.resize(lcol_.size());
      ucol_.resize(static_cast<std::size_t>(uptr_[static_cast<std::size_t>(n_)]));
      uval_.resize(ucol_.size());
    }
  }

  // Modified diagonal d_i = a_ii - sum a_ik^2 / d_k over the lower pattern.
  inv_d_.assign(static_cast<std::size_t>(n_), 0.0);
  std::vector<double> d(static_cast<std::size_t>(n_), 0.0);
  for (int i = 0; i < n_; ++i) {
    double di = diag[static_cast<std::size_t>(i)];
    for (int e = lptr_[static_cast<std::size_t>(i)]; e < lptr_[static_cast<std::size_t>(i) + 1]; ++e) {
      const double v = lval_[static_cast<std::size_t>(e)];
      di -= v * v * inv_d_[static_cast<std::size_t>(lcol_[static_cast<std::size_t>(e)])];
    }
    if (!(di > 0.0) || !std::isfinite(di)) {
      di = diag[static_cast<std::size_t>(i)];
      ++breakdowns_;
    }
    GEOFEM_CHECK(di != 0.0, "IC(0): zero diagonal after reset");
    d[static_cast<std::size_t>(i)] = di;
    inv_d_[static_cast<std::size_t>(i)] = 1.0 / di;
  }
}

void ScalarIC0::apply(std::span<const double> r, std::span<double> z, util::FlopCounter* flops,
                      util::LoopStats* loops) const {
  GEOFEM_CHECK(static_cast<int>(r.size()) == n_ && static_cast<int>(z.size()) == n_,
               "IC(0) apply size mismatch");
  // forward: y_i = (r_i - sum L_ik y_k) / d_i
  for (int i = 0; i < n_; ++i) {
    double acc = r[static_cast<std::size_t>(i)];
    for (int e = lptr_[static_cast<std::size_t>(i)]; e < lptr_[static_cast<std::size_t>(i) + 1]; ++e)
      acc -= lval_[static_cast<std::size_t>(e)] * z[static_cast<std::size_t>(lcol_[static_cast<std::size_t>(e)])];
    z[static_cast<std::size_t>(i)] = acc * inv_d_[static_cast<std::size_t>(i)];
    if (loops) loops->record(lptr_[static_cast<std::size_t>(i) + 1] - lptr_[static_cast<std::size_t>(i)] + 1);
  }
  // backward: z_i = y_i - (sum U_ij z_j) / d_i
  for (int i = n_ - 1; i >= 0; --i) {
    double acc = 0.0;
    for (int e = uptr_[static_cast<std::size_t>(i)]; e < uptr_[static_cast<std::size_t>(i) + 1]; ++e)
      acc += uval_[static_cast<std::size_t>(e)] * z[static_cast<std::size_t>(ucol_[static_cast<std::size_t>(e)])];
    z[static_cast<std::size_t>(i)] -= acc * inv_d_[static_cast<std::size_t>(i)];
    if (loops) loops->record(uptr_[static_cast<std::size_t>(i) + 1] - uptr_[static_cast<std::size_t>(i)] + 1);
  }
  if (flops)
    flops->precond += 2ULL * (lval_.size() + uval_.size()) + 3ULL * static_cast<std::uint64_t>(n_);
}

std::size_t ScalarIC0::memory_bytes() const {
  return (lval_.size() + uval_.size() + inv_d_.size()) * sizeof(double) +
         (lcol_.size() + ucol_.size() + lptr_.size() + uptr_.size()) * sizeof(int);
}

}  // namespace geofem::precond
