#include "precond/scalar_ic0.hpp"

#include <cmath>

#include "core/status.hpp"
#include "obs/span.hpp"
#include "util/check.hpp"

namespace geofem::precond {

std::size_t ScalarIC0Symbolic::memory_bytes() const {
  return (lptr.size() + lcol.size() + uptr.size() + ucol.size() + fwd.rows.size() +
          fwd.level_ptr.size() + bwd.rows.size() + bwd.level_ptr.size()) *
             sizeof(int) +
         (lsrc.size() + usrc.size() + dsrc.size()) * sizeof(std::int64_t);
}

std::shared_ptr<const ScalarIC0Symbolic> scalar_ic0_symbolic(const sparse::BlockCSR& a) {
  obs::ScopedSpan span("precond.symbolic.IC(0)");
  auto out = std::make_shared<ScalarIC0Symbolic>();
  ScalarIC0Symbolic& s = *out;
  s.n = a.n * sparse::kB;
  const int n_ = s.n;
  // Expand the block matrix to scalar lower/upper CSR (dropping exact zeros,
  // which the block format stores but a scalar method would not).
  s.lptr.assign(static_cast<std::size_t>(n_) + 1, 0);
  s.uptr.assign(static_cast<std::size_t>(n_) + 1, 0);
  s.dsrc.assign(static_cast<std::size_t>(n_), 0);

  for (int pass = 0; pass < 2; ++pass) {
    std::vector<int> lpos(s.lptr.begin(), s.lptr.end() - 1);
    std::vector<int> upos(s.uptr.begin(), s.uptr.end() - 1);
    for (int bi = 0; bi < a.n; ++bi) {
      for (int e = a.rowptr[bi]; e < a.rowptr[bi + 1]; ++e) {
        const int bj = a.colind[e];
        const double* blk = a.block(e);
        for (int r = 0; r < sparse::kB; ++r) {
          const int row = sparse::kB * bi + r;
          for (int c = 0; c < sparse::kB; ++c) {
            const int col = sparse::kB * bj + c;
            const double v = blk[sparse::kB * r + c];
            const std::int64_t src =
                static_cast<std::int64_t>(e) * sparse::kBB + sparse::kB * r + c;
            if (row == col) {
              s.dsrc[static_cast<std::size_t>(row)] = src;
              continue;
            }
            if (v == 0.0) continue;
            if (col < row) {
              if (pass == 0) {
                ++s.lptr[static_cast<std::size_t>(row) + 1];
              } else {
                s.lcol[static_cast<std::size_t>(lpos[static_cast<std::size_t>(row)])] = col;
                s.lsrc[static_cast<std::size_t>(lpos[static_cast<std::size_t>(row)])] = src;
                ++lpos[static_cast<std::size_t>(row)];
              }
            } else {
              if (pass == 0) {
                ++s.uptr[static_cast<std::size_t>(row) + 1];
              } else {
                s.ucol[static_cast<std::size_t>(upos[static_cast<std::size_t>(row)])] = col;
                s.usrc[static_cast<std::size_t>(upos[static_cast<std::size_t>(row)])] = src;
                ++upos[static_cast<std::size_t>(row)];
              }
            }
          }
        }
      }
    }
    if (pass == 0) {
      for (int i = 0; i < n_; ++i) {
        s.lptr[static_cast<std::size_t>(i) + 1] += s.lptr[static_cast<std::size_t>(i)];
        s.uptr[static_cast<std::size_t>(i) + 1] += s.uptr[static_cast<std::size_t>(i)];
      }
      s.lcol.resize(static_cast<std::size_t>(s.lptr[static_cast<std::size_t>(n_)]));
      s.lsrc.resize(s.lcol.size());
      s.ucol.resize(static_cast<std::size_t>(s.uptr[static_cast<std::size_t>(n_)]));
      s.usrc.resize(s.ucol.size());
    }
  }

  // Substitution dependency levels over the scalar rows (hybrid apply).
  {
    std::vector<int> lev(static_cast<std::size_t>(n_), 0);
    for (int i = 0; i < n_; ++i) {
      int l = 0;
      for (int e = s.lptr[static_cast<std::size_t>(i)]; e < s.lptr[static_cast<std::size_t>(i) + 1]; ++e)
        l = std::max(l, lev[static_cast<std::size_t>(s.lcol[static_cast<std::size_t>(e)])] + 1);
      lev[static_cast<std::size_t>(i)] = l;
    }
    s.fwd = par::schedule_from_levels(lev);
    for (int i = n_ - 1; i >= 0; --i) {
      int l = 0;
      for (int e = s.uptr[static_cast<std::size_t>(i)]; e < s.uptr[static_cast<std::size_t>(i) + 1]; ++e)
        l = std::max(l, lev[static_cast<std::size_t>(s.ucol[static_cast<std::size_t>(e)])] + 1);
      lev[static_cast<std::size_t>(i)] = l;
    }
    s.bwd = par::schedule_from_levels(lev);
  }
  return out;
}

ScalarIC0::ScalarIC0(const sparse::BlockCSR& a, Precision precision)
    : sym_(scalar_ic0_symbolic(a)), precision_(precision) {
  numeric(a);
}

ScalarIC0::ScalarIC0(const sparse::BlockCSR& a, std::shared_ptr<const ScalarIC0Symbolic> sym,
                     Precision precision)
    : sym_(std::move(sym)), precision_(precision) {
  GEOFEM_CHECK(sym_ && sym_->n == a.n * sparse::kB, "ScalarIC0: symbolic/matrix size mismatch");
  numeric(a);
}

void ScalarIC0::numeric(const sparse::BlockCSR& a) {
  obs::ScopedSpan span("precond.numeric.IC(0)");
  const ScalarIC0Symbolic& s = *sym_;
  const int n_ = s.n;
  breakdowns_ = 0;

  // Gather scalar values on the fixed pattern.
  lval_.resize(s.lsrc.size());
  for (std::size_t e = 0; e < s.lsrc.size(); ++e)
    lval_[e] = a.val[static_cast<std::size_t>(s.lsrc[e])];
  uval_.resize(s.usrc.size());
  for (std::size_t e = 0; e < s.usrc.size(); ++e)
    uval_[e] = a.val[static_cast<std::size_t>(s.usrc[e])];

  // Modified diagonal d_i = a_ii - sum a_ik^2 / d_k over the lower pattern.
  inv_d_.assign(static_cast<std::size_t>(n_), 0.0);
  for (int i = 0; i < n_; ++i) {
    const double aii = a.val[static_cast<std::size_t>(s.dsrc[static_cast<std::size_t>(i)])];
    double di = aii;
    for (int e = s.lptr[static_cast<std::size_t>(i)]; e < s.lptr[static_cast<std::size_t>(i) + 1]; ++e) {
      const double v = lval_[static_cast<std::size_t>(e)];
      di -= v * v * inv_d_[static_cast<std::size_t>(s.lcol[static_cast<std::size_t>(e)])];
    }
    if (!(di > 0.0) || !std::isfinite(di)) {
      di = aii;
      ++breakdowns_;
    }
    if (di == 0.0 || !std::isfinite(di))
      throw Error(StatusCode::kFactorizationFailed, "IC(0): unusable diagonal after reset");
    inv_d_[static_cast<std::size_t>(i)] = 1.0 / di;
  }

  // kSingle: the factorization above always runs in fp64; only the stored
  // form the substitution streams is narrowed.
  if (precision_ == Precision::kSingle) {
    narrow_or_throw(lval_, lval32_);
    narrow_or_throw(uval_, uval32_);
    narrow_or_throw(inv_d_, inv32_);
    lval_.clear();
    lval_.shrink_to_fit();
    uval_.clear();
    uval_.shrink_to_fit();
    inv_d_.clear();
    inv_d_.shrink_to_fit();
  }
}

template <class T>
void ScalarIC0::apply_impl(const T* lval, const T* uval, const T* inv_d, const double* r,
                           double* z, int team) const {
  const ScalarIC0Symbolic& s = *sym_;
  // forward: y_i = (r_i - sum L_ik y_k) / d_i. Level-parallel; per-row
  // arithmetic unchanged, so bit-identical for any team size. The fp32 form
  // widens each stored value on load and accumulates in fp64.
  par::for_levels(s.fwd, team, [&](int i) {
    double acc = r[static_cast<std::size_t>(i)];
    for (int e = s.lptr[static_cast<std::size_t>(i)]; e < s.lptr[static_cast<std::size_t>(i) + 1]; ++e)
      acc -= static_cast<double>(lval[static_cast<std::size_t>(e)]) *
             z[static_cast<std::size_t>(s.lcol[static_cast<std::size_t>(e)])];
    z[static_cast<std::size_t>(i)] = acc * static_cast<double>(inv_d[static_cast<std::size_t>(i)]);
  });
  // backward: z_i = y_i - (sum U_ij z_j) / d_i
  par::for_levels(s.bwd, team, [&](int i) {
    double acc = 0.0;
    for (int e = s.uptr[static_cast<std::size_t>(i)]; e < s.uptr[static_cast<std::size_t>(i) + 1]; ++e)
      acc += static_cast<double>(uval[static_cast<std::size_t>(e)]) *
             z[static_cast<std::size_t>(s.ucol[static_cast<std::size_t>(e)])];
    z[static_cast<std::size_t>(i)] -= acc * static_cast<double>(inv_d[static_cast<std::size_t>(i)]);
  });
}

void ScalarIC0::apply(std::span<const double> r, std::span<double> z, util::FlopCounter* flops,
                      util::LoopStats* loops) const {
  const ScalarIC0Symbolic& s = *sym_;
  const int n_ = s.n;
  GEOFEM_CHECK(static_cast<int>(r.size()) == n_ && static_cast<int>(z.size()) == n_,
               "IC(0) apply size mismatch");
  const int team = par::threads();
  if (precision_ == Precision::kSingle) {
    apply_impl(lval32_.data(), uval32_.data(), inv32_.data(), r.data(), z.data(), team);
  } else {
    apply_impl(lval_.data(), uval_.data(), inv_d_.data(), r.data(), z.data(), team);
  }
  if (loops) {
    for (int i = 0; i < n_; ++i)
      loops->record(s.lptr[static_cast<std::size_t>(i) + 1] - s.lptr[static_cast<std::size_t>(i)] + 1);
    for (int i = n_ - 1; i >= 0; --i)
      loops->record(s.uptr[static_cast<std::size_t>(i) + 1] - s.uptr[static_cast<std::size_t>(i)] + 1);
  }
  if (flops)
    flops->precond +=
        2ULL * (s.lsrc.size() + s.usrc.size()) + 3ULL * static_cast<std::uint64_t>(n_);
}

std::size_t ScalarIC0::memory_bytes() const {
  return (lval_.size() + uval_.size() + inv_d_.size()) * sizeof(double) +
         (lval32_.size() + uval32_.size() + inv32_.size()) * sizeof(float) +
         sym_->memory_bytes();
}

}  // namespace geofem::precond
