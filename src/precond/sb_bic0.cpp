#include "precond/sb_bic0.hpp"

#include <algorithm>
#include <map>

#include "obs/span.hpp"
#include "util/check.hpp"

// GCC 12 emits a false-positive -Waggressive-loop-optimizations here: after
// inlining DenseLU into the factorization it reasons about the (impossible)
// case of a selective block with ~2^31 rows. Block dimensions are 3 * group
// size (single digits in practice, bounded by the node count regardless).
#pragma GCC diagnostic ignored "-Waggressive-loop-optimizations"

namespace geofem::precond {

using sparse::kB;
using sparse::kBB;

std::vector<sparse::DenseLU> sb_factor_diagonals(const sparse::BlockCSR& a,
                                                 const contact::Supernodes& sn, bool modified) {
  GEOFEM_CHECK(static_cast<int>(sn.node_to_super.size()) == a.n, "supernode map size mismatch");
  const int ns = sn.count();
  std::vector<sparse::DenseLU> lu_(static_cast<std::size_t>(ns));

  // position of each node inside its supernode
  std::vector<int> pos_in_super(static_cast<std::size_t>(a.n), 0);
  for (int s = 0; s < ns; ++s) {
    const auto& mem = sn.members[static_cast<std::size_t>(s)];
    for (std::size_t t = 0; t < mem.size(); ++t)
      pos_in_super[static_cast<std::size_t>(mem[static_cast<std::size_t>(t)])] = static_cast<int>(t);
  }

  // Factor supernodes in ascending id order with BIC(0)-style diagonal
  // corrections restricted to the original inter-supernode pattern.
  std::vector<double> dwork, awork, twork, col;
  for (int s = 0; s < ns; ++s) {
    const auto& mem = sn.members[static_cast<std::size_t>(s)];
    const int m = static_cast<int>(mem.size());
    const int dim = kB * m;
    dwork.assign(static_cast<std::size_t>(dim) * dim, 0.0);

    // Gather A_SS, and the coupling blocks A_SK per earlier neighbour K.
    std::map<int, std::vector<std::pair<int, int>>> earlier;  // K -> [(entry, row-pos)]
    for (int t = 0; t < m; ++t) {
      const int i = mem[static_cast<std::size_t>(t)];
      for (int e = a.rowptr[i]; e < a.rowptr[i + 1]; ++e) {
        const int j = a.colind[e];
        const int sj = sn.node_to_super[static_cast<std::size_t>(j)];
        if (!modified && sj != s) continue;
        if (sj == s) {
          const int tj = pos_in_super[static_cast<std::size_t>(j)];
          const double* blk = a.block(e);
          for (int r = 0; r < kB; ++r)
            for (int c = 0; c < kB; ++c)
              dwork[static_cast<std::size_t>(kB * t + r) * dim + static_cast<std::size_t>(kB * tj + c)] =
                  blk[kB * r + c];
        } else if (sj < s) {
          earlier[sj].emplace_back(e, t);
        }
      }
    }

    // D~_S -= A_SK * D~_K^-1 * A_SK^T for each earlier neighbour K.
    for (const auto& [k, entries] : earlier) {
      const auto& memk = sn.members[static_cast<std::size_t>(k)];
      const int mk = static_cast<int>(memk.size());
      const int dimk = kB * mk;
      // dense A_SK (dim x dimk)
      awork.assign(static_cast<std::size_t>(dim) * dimk, 0.0);
      for (const auto& [e, t] : entries) {
        const int j = a.colind[e];
        const int tj = pos_in_super[static_cast<std::size_t>(j)];
        const double* blk = a.block(e);
        for (int r = 0; r < kB; ++r)
          for (int c = 0; c < kB; ++c)
            awork[static_cast<std::size_t>(kB * t + r) * dimk + static_cast<std::size_t>(kB * tj + c)] =
                blk[kB * r + c];
      }
      // T = D~_K^-1 * A_SK^T, column by column of A_SK^T (i.e. row of A_SK)
      twork.assign(static_cast<std::size_t>(dimk) * dim, 0.0);
      col.resize(static_cast<std::size_t>(dimk));
      for (int r = 0; r < dim; ++r) {
        for (int c = 0; c < dimk; ++c)
          col[static_cast<std::size_t>(c)] = awork[static_cast<std::size_t>(r) * dimk + static_cast<std::size_t>(c)];
        lu_[static_cast<std::size_t>(k)].solve(col.data());
        for (int c = 0; c < dimk; ++c)
          twork[static_cast<std::size_t>(c) * dim + static_cast<std::size_t>(r)] = col[static_cast<std::size_t>(c)];
      }
      // D~_S -= A_SK * T
      for (int r = 0; r < dim; ++r)
        for (int c = 0; c < dim; ++c) {
          double acc = 0.0;
          for (int q = 0; q < dimk; ++q)
            acc += awork[static_cast<std::size_t>(r) * dimk + static_cast<std::size_t>(q)] *
                   twork[static_cast<std::size_t>(q) * dim + static_cast<std::size_t>(c)];
          dwork[static_cast<std::size_t>(r) * dim + static_cast<std::size_t>(c)] -= acc;
        }
    }

    // Over-subtraction / breakdown remedy: if the corrected block is no
    // longer SPD (which would make M indefinite and break CG) or fails to
    // factor, retry with the uncorrected diagonal block A_SS.
    if (!sparse::is_spd(dwork.data(), dim) ||
        !lu_[static_cast<std::size_t>(s)].factor(dwork.data(), dim)) {
      dwork.assign(static_cast<std::size_t>(dim) * dim, 0.0);
      for (int t = 0; t < m; ++t) {
        const int i = mem[static_cast<std::size_t>(t)];
        for (int e = a.rowptr[i]; e < a.rowptr[i + 1]; ++e) {
          const int j = a.colind[e];
          if (sn.node_to_super[static_cast<std::size_t>(j)] != s) continue;
          const int tj = pos_in_super[static_cast<std::size_t>(j)];
          const double* blk = a.block(e);
          for (int r = 0; r < kB; ++r)
            for (int c = 0; c < kB; ++c)
              dwork[static_cast<std::size_t>(kB * t + r) * dim + static_cast<std::size_t>(kB * tj + c)] =
                  blk[kB * r + c];
        }
      }
      GEOFEM_CHECK(lu_[static_cast<std::size_t>(s)].factor(dwork.data(), dim),
                   "SB-BIC(0): singular selective block");
    }
  }
  return lu_;
}

SBBIC0::SBBIC0(const sparse::BlockCSR& a, contact::Supernodes sn, bool modified)
    : a_(a), sn_(std::move(sn)) {
  obs::ScopedSpan span("precond.factor.SB-BIC(0)");
  for (const auto& mem : sn_.members)
    max_block_ = std::max(max_block_, static_cast<int>(mem.size()));
  lu_ = sb_factor_diagonals(a, sn_, modified);
}

void SBBIC0::apply(std::span<const double> r, std::span<double> z, util::FlopCounter* flops,
                   util::LoopStats* loops) const {
  const auto& a = a_;
  const auto& sn = sn_;
  GEOFEM_CHECK(r.size() == a.ndof() && z.size() == a.ndof(), "SB-BIC0 apply size mismatch");

  std::vector<double> acc;
  std::uint64_t coupled = 0;
  // forward: z_S = D~_S^-1 (r_S - sum_{K<S} A_SK z_K)
  for (int s = 0; s < sn.count(); ++s) {
    const auto& mem = sn.members[static_cast<std::size_t>(s)];
    const int dim = kB * static_cast<int>(mem.size());
    acc.assign(static_cast<std::size_t>(dim), 0.0);
    int len = 0;
    for (std::size_t t = 0; t < mem.size(); ++t) {
      const int i = mem[t];
      double* ai = acc.data() + t * kB;
      const double* ri = r.data() + static_cast<std::size_t>(i) * kB;
      ai[0] = ri[0];
      ai[1] = ri[1];
      ai[2] = ri[2];
      for (int e = a.rowptr[i]; e < a.rowptr[i + 1]; ++e) {
        const int j = a.colind[e];
        if (sn.node_to_super[static_cast<std::size_t>(j)] >= s) continue;
        sparse::b3_gemv_sub(a.block(e), z.data() + static_cast<std::size_t>(j) * kB, ai);
        ++len;
        ++coupled;
      }
    }
    lu_[static_cast<std::size_t>(s)].solve(acc.data());
    for (std::size_t t = 0; t < mem.size(); ++t) {
      double* zi = z.data() + static_cast<std::size_t>(mem[t]) * kB;
      zi[0] = acc[t * kB];
      zi[1] = acc[t * kB + 1];
      zi[2] = acc[t * kB + 2];
    }
    if (loops) loops->record(len + 1);
  }
  // backward: z_S -= D~_S^-1 sum_{K>S} A_SK z_K
  for (int s = sn.count() - 1; s >= 0; --s) {
    const auto& mem = sn.members[static_cast<std::size_t>(s)];
    const int dim = kB * static_cast<int>(mem.size());
    acc.assign(static_cast<std::size_t>(dim), 0.0);
    int len = 0;
    for (std::size_t t = 0; t < mem.size(); ++t) {
      const int i = mem[t];
      for (int e = a.rowptr[i]; e < a.rowptr[i + 1]; ++e) {
        const int j = a.colind[e];
        if (sn.node_to_super[static_cast<std::size_t>(j)] <= s) continue;
        sparse::b3_gemv(a.block(e), z.data() + static_cast<std::size_t>(j) * kB,
                        acc.data() + t * kB);
        ++len;
        ++coupled;
      }
    }
    lu_[static_cast<std::size_t>(s)].solve(acc.data());
    for (std::size_t t = 0; t < mem.size(); ++t) {
      double* zi = z.data() + static_cast<std::size_t>(mem[t]) * kB;
      zi[0] -= acc[t * kB];
      zi[1] -= acc[t * kB + 1];
      zi[2] -= acc[t * kB + 2];
    }
    if (loops) loops->record(len + 1);
  }
  if (flops) {
    flops->precond += 2ULL * kBB * coupled;
    for (const auto& lu : lu_) flops->precond += 2 * lu.solve_flops();
  }
}

std::size_t SBBIC0::memory_bytes() const {
  std::size_t bytes = 0;
  for (const auto& lu : lu_) bytes += lu.memory_bytes();
  return bytes;
}

}  // namespace geofem::precond
