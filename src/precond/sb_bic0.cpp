#include "precond/sb_bic0.hpp"

#include <algorithm>
#include <map>

#include "core/status.hpp"
#include "obs/span.hpp"
#include "simd/block3.hpp"
#include "simd/multirhs.hpp"
#include "util/check.hpp"

// GCC 12 emits a false-positive -Waggressive-loop-optimizations here: after
// inlining DenseLU into the factorization it reasons about the (impossible)
// case of a selective block with ~2^31 rows. Block dimensions are 3 * group
// size (single digits in practice, bounded by the node count regardless).
#pragma GCC diagnostic ignored "-Waggressive-loop-optimizations"

namespace geofem::precond {

using sparse::kB;
using sparse::kBB;

std::size_t SBSymbolic::memory_bytes() const {
  return (dims.size() + intra_entry.size() + coup_ptr.size() + coup_k.size() +
          gather_entry.size()) *
             sizeof(int) +
         (intra_ptr.size() + intra_off.size() + gather_ptr.size() + gather_off.size()) *
             sizeof(std::int64_t);
}

std::shared_ptr<const SBSymbolic> sb_symbolic(const sparse::BlockCSR& a,
                                              const contact::Supernodes& sn, bool modified) {
  GEOFEM_CHECK(static_cast<int>(sn.node_to_super.size()) == a.n, "supernode map size mismatch");
  obs::ScopedSpan span("precond.symbolic.SB-BIC(0)");
  const int ns = sn.count();
  auto out = std::make_shared<SBSymbolic>();
  SBSymbolic& sym = *out;
  sym.n = a.n;
  sym.modified = modified;
  sym.dims.resize(static_cast<std::size_t>(ns));
  for (int s = 0; s < ns; ++s)
    sym.dims[static_cast<std::size_t>(s)] = kB * static_cast<int>(sn.members[static_cast<std::size_t>(s)].size());

  // position of each node inside its supernode
  std::vector<int> pos_in_super(static_cast<std::size_t>(a.n), 0);
  for (int s = 0; s < ns; ++s) {
    const auto& mem = sn.members[static_cast<std::size_t>(s)];
    for (std::size_t t = 0; t < mem.size(); ++t)
      pos_in_super[static_cast<std::size_t>(mem[static_cast<std::size_t>(t)])] = static_cast<int>(t);
  }

  sym.intra_ptr.assign(static_cast<std::size_t>(ns) + 1, 0);
  sym.coup_ptr.assign(static_cast<std::size_t>(ns) + 1, 0);
  sym.gather_ptr.assign(1, 0);
  for (int s = 0; s < ns; ++s) {
    const auto& mem = sn.members[static_cast<std::size_t>(s)];
    const int m = static_cast<int>(mem.size());
    const int dim = sym.dims[static_cast<std::size_t>(s)];
    // Map matrix entries to their dense positions; group coupling entries per
    // earlier neighbour K (ascending — the elimination order of corrections).
    std::map<int, std::vector<std::pair<int, int>>> earlier;  // K -> [(entry, row-pos)]
    for (int t = 0; t < m; ++t) {
      const int i = mem[static_cast<std::size_t>(t)];
      for (int e = a.rowptr[i]; e < a.rowptr[i + 1]; ++e) {
        const int j = a.colind[e];
        const int sj = sn.node_to_super[static_cast<std::size_t>(j)];
        if (!modified && sj != s) continue;
        if (sj == s) {
          const int tj = pos_in_super[static_cast<std::size_t>(j)];
          sym.intra_entry.push_back(e);
          sym.intra_off.push_back(static_cast<std::int64_t>(kB * t) * dim + kB * tj);
        } else if (sj < s) {
          earlier[sj].emplace_back(e, t);
        }
      }
    }
    sym.intra_ptr[static_cast<std::size_t>(s) + 1] = static_cast<std::int64_t>(sym.intra_entry.size());
    for (const auto& [k, entries] : earlier) {
      const int dimk = sym.dims[static_cast<std::size_t>(k)];
      sym.coup_k.push_back(k);
      for (const auto& [e, t] : entries) {
        const int tj = pos_in_super[static_cast<std::size_t>(a.colind[e])];
        sym.gather_entry.push_back(e);
        sym.gather_off.push_back(static_cast<std::int64_t>(kB * t) * dimk + kB * tj);
      }
      sym.gather_ptr.push_back(static_cast<std::int64_t>(sym.gather_entry.size()));
    }
    sym.coup_ptr[static_cast<std::size_t>(s) + 1] = static_cast<int>(sym.coup_k.size());
  }
  return out;
}

std::vector<sparse::DenseLU> sb_factor_numeric(const sparse::BlockCSR& a, const SBSymbolic& sym) {
  GEOFEM_CHECK(sym.n == a.n, "SB-BIC(0): symbolic/matrix size mismatch");
  obs::ScopedSpan span("precond.numeric.SB-BIC(0)");
  const int ns = static_cast<int>(sym.dims.size());
  std::vector<sparse::DenseLU> lu_(static_cast<std::size_t>(ns));

  // Factor supernodes in ascending id order with BIC(0)-style diagonal
  // corrections restricted to the original inter-supernode pattern. The
  // scatter order and correction order follow the schedule, which preserves
  // the cold factorization's arithmetic exactly.
  std::vector<double> dwork, awork, twork, col;
  for (int s = 0; s < ns; ++s) {
    const int dim = sym.dims[static_cast<std::size_t>(s)];
    dwork.assign(static_cast<std::size_t>(dim) * dim, 0.0);

    // Gather A_SS.
    for (std::int64_t q = sym.intra_ptr[static_cast<std::size_t>(s)];
         q < sym.intra_ptr[static_cast<std::size_t>(s) + 1]; ++q) {
      const double* blk = a.block(sym.intra_entry[static_cast<std::size_t>(q)]);
      double* dst = dwork.data() + sym.intra_off[static_cast<std::size_t>(q)];
      for (int r = 0; r < kB; ++r)
        for (int c = 0; c < kB; ++c)
          dst[static_cast<std::size_t>(r) * dim + static_cast<std::size_t>(c)] = blk[kB * r + c];
    }

    // D~_S -= A_SK * D~_K^-1 * A_SK^T for each earlier neighbour K.
    for (int ci = sym.coup_ptr[static_cast<std::size_t>(s)];
         ci < sym.coup_ptr[static_cast<std::size_t>(s) + 1]; ++ci) {
      const int k = sym.coup_k[static_cast<std::size_t>(ci)];
      const int dimk = sym.dims[static_cast<std::size_t>(k)];
      // dense A_SK (dim x dimk)
      awork.assign(static_cast<std::size_t>(dim) * dimk, 0.0);
      for (std::int64_t q = sym.gather_ptr[static_cast<std::size_t>(ci)];
           q < sym.gather_ptr[static_cast<std::size_t>(ci) + 1]; ++q) {
        const double* blk = a.block(sym.gather_entry[static_cast<std::size_t>(q)]);
        double* dst = awork.data() + sym.gather_off[static_cast<std::size_t>(q)];
        for (int r = 0; r < kB; ++r)
          for (int c = 0; c < kB; ++c)
            dst[static_cast<std::size_t>(r) * dimk + static_cast<std::size_t>(c)] = blk[kB * r + c];
      }
      // T = D~_K^-1 * A_SK^T, column by column of A_SK^T (i.e. row of A_SK)
      twork.assign(static_cast<std::size_t>(dimk) * dim, 0.0);
      col.resize(static_cast<std::size_t>(dimk));
      for (int r = 0; r < dim; ++r) {
        for (int c = 0; c < dimk; ++c)
          col[static_cast<std::size_t>(c)] = awork[static_cast<std::size_t>(r) * dimk + static_cast<std::size_t>(c)];
        lu_[static_cast<std::size_t>(k)].solve(col.data());
        for (int c = 0; c < dimk; ++c)
          twork[static_cast<std::size_t>(c) * dim + static_cast<std::size_t>(r)] = col[static_cast<std::size_t>(c)];
      }
      // D~_S -= A_SK * T
      for (int r = 0; r < dim; ++r)
        for (int c = 0; c < dim; ++c) {
          double acc = 0.0;
          for (int q = 0; q < dimk; ++q)
            acc += awork[static_cast<std::size_t>(r) * dimk + static_cast<std::size_t>(q)] *
                   twork[static_cast<std::size_t>(q) * dim + static_cast<std::size_t>(c)];
          dwork[static_cast<std::size_t>(r) * dim + static_cast<std::size_t>(c)] -= acc;
        }
    }

    // Over-subtraction / breakdown remedy: if the corrected block is no
    // longer SPD (which would make M indefinite and break CG) or fails to
    // factor, retry with the uncorrected diagonal block A_SS.
    if (!sparse::is_spd(dwork.data(), dim) ||
        !lu_[static_cast<std::size_t>(s)].factor(dwork.data(), dim)) {
      dwork.assign(static_cast<std::size_t>(dim) * dim, 0.0);
      for (std::int64_t q = sym.intra_ptr[static_cast<std::size_t>(s)];
           q < sym.intra_ptr[static_cast<std::size_t>(s) + 1]; ++q) {
        const double* blk = a.block(sym.intra_entry[static_cast<std::size_t>(q)]);
        double* dst = dwork.data() + sym.intra_off[static_cast<std::size_t>(q)];
        for (int r = 0; r < kB; ++r)
          for (int c = 0; c < kB; ++c)
            dst[static_cast<std::size_t>(r) * dim + static_cast<std::size_t>(c)] = blk[kB * r + c];
      }
      if (!lu_[static_cast<std::size_t>(s)].factor(dwork.data(), dim))
        throw Error(StatusCode::kFactorizationFailed, "SB-BIC(0): singular selective block");
    }
  }
  return lu_;
}

std::vector<sparse::DenseLU> sb_factor_diagonals(const sparse::BlockCSR& a,
                                                 const contact::Supernodes& sn, bool modified) {
  return sb_factor_numeric(a, *sb_symbolic(a, sn, modified));
}

SBBIC0::SBBIC0(const sparse::BlockCSR& a, contact::Supernodes sn, bool modified,
               Precision precision)
    : a_(a), sn_(std::move(sn)), precision_(precision) {
  obs::ScopedSpan span("precond.factor.SB-BIC(0)");
  for (const auto& mem : sn_.members)
    max_block_ = std::max(max_block_, static_cast<int>(mem.size()));
  lu_ = sb_factor_diagonals(a, sn_, modified);
  build_schedules();
  narrow_storage();
}

SBBIC0::SBBIC0(const sparse::BlockCSR& a, contact::Supernodes sn,
               std::shared_ptr<const SBSymbolic> sym, Precision precision)
    : a_(a), sn_(std::move(sn)), precision_(precision) {
  GEOFEM_CHECK(sym && sym->n == a.n, "SBBIC0: symbolic/matrix size mismatch");
  obs::ScopedSpan span("precond.factor.SB-BIC(0)");
  for (const auto& mem : sn_.members)
    max_block_ = std::max(max_block_, static_cast<int>(mem.size()));
  lu_ = sb_factor_numeric(a, *sym);
  build_schedules();
  narrow_storage();
}

void SBBIC0::narrow_storage() {
  lu_solve_flops_ = 0.0;
  for (const auto& lu : lu_) lu_solve_flops_ += lu.solve_flops();
  if (precision_ != Precision::kSingle) return;
  // Narrow the per-supernode dense factors and the matrix value mirror the
  // sweeps stream; the fp64 factors are dropped — an fp32 build that cannot
  // represent them is a breakdown, not a silent fallback.
  lu32_.reserve(lu_.size());
  for (const auto& lu : lu_) {
    lu32_.emplace_back(lu);
    if (lu32_.back().overflowed())
      throw Error(StatusCode::kFactorizationFailed,
                  "fp32 narrowing overflow in selective-block factors");
  }
  narrow_or_throw(std::span<const double>(a_.val.data(), a_.val.size()), aval32_);
  lu_.clear();
  lu_.shrink_to_fit();
}

void SBBIC0::build_schedules() {
  // Supernode dependency levels for the hybrid apply, plus the structural
  // per-supernode coupling counts the apply reports as loop/FLOP stats.
  const int ns = sn_.count();
  fwd_len_.assign(static_cast<std::size_t>(ns), 0);
  bwd_len_.assign(static_cast<std::size_t>(ns), 0);
  std::vector<int> lev(static_cast<std::size_t>(ns), 0);
  for (int s = 0; s < ns; ++s) {
    int l = 0, len = 0;
    for (int i : sn_.members[static_cast<std::size_t>(s)]) {
      for (int e = a_.rowptr[i]; e < a_.rowptr[i + 1]; ++e) {
        const int sj = sn_.node_to_super[static_cast<std::size_t>(a_.colind[e])];
        if (sj >= s) continue;
        l = std::max(l, lev[static_cast<std::size_t>(sj)] + 1);
        ++len;
      }
    }
    lev[static_cast<std::size_t>(s)] = l;
    fwd_len_[static_cast<std::size_t>(s)] = len;
  }
  fwd_ = par::schedule_from_levels(lev);
  for (int s = ns - 1; s >= 0; --s) {
    int l = 0, len = 0;
    for (int i : sn_.members[static_cast<std::size_t>(s)]) {
      for (int e = a_.rowptr[i]; e < a_.rowptr[i + 1]; ++e) {
        const int sj = sn_.node_to_super[static_cast<std::size_t>(a_.colind[e])];
        if (sj <= s) continue;
        l = std::max(l, lev[static_cast<std::size_t>(sj)] + 1);
        ++len;
      }
    }
    lev[static_cast<std::size_t>(s)] = l;
    bwd_len_[static_cast<std::size_t>(s)] = len;
  }
  bwd_ = par::schedule_from_levels(lev);
  coupled_ = 0;
  for (int s = 0; s < ns; ++s)
    coupled_ += static_cast<std::uint64_t>(fwd_len_[static_cast<std::size_t>(s)]) +
                static_cast<std::uint64_t>(bwd_len_[static_cast<std::size_t>(s)]);
}

template <class Acc, class T, class LuVec>
void SBBIC0::apply_impl(const T* aval, const LuVec& lus, const double* r, double* z,
                        int team) const {
  const auto& a = a_;
  const auto& sn = sn_;
  // Each thread reuses one staging buffer; its content is fully rewritten per
  // supernode. DenseLU::solve is const and safe to call concurrently.
  static thread_local std::vector<double> acc;
  // forward: z_S = D~_S^-1 (r_S - sum_{K<S} A_SK z_K). Supernodes of one
  // dependency level are independent; per-supernode arithmetic is the serial
  // sweep's (for the accumulator in use), so the result is bit-identical for
  // any team size.
  par::for_levels(fwd_, team, [&](int s) {
    const auto& mem = sn.members[static_cast<std::size_t>(s)];
    const int dim = kB * static_cast<int>(mem.size());
    acc.assign(static_cast<std::size_t>(dim), 0.0);
    for (std::size_t t = 0; t < mem.size(); ++t) {
      const int i = mem[t];
      Acc ai;
      ai.init(r + static_cast<std::size_t>(i) * kB);
      for (int e = a.rowptr[i]; e < a.rowptr[i + 1]; ++e) {
        const int j = a.colind[e];
        if (sn.node_to_super[static_cast<std::size_t>(j)] >= s) continue;
        ai.msub(aval + static_cast<std::size_t>(e) * kBB, z + static_cast<std::size_t>(j) * kB);
      }
      ai.reduce(acc.data() + t * kB);
    }
    lus[static_cast<std::size_t>(s)].solve(acc.data());
    for (std::size_t t = 0; t < mem.size(); ++t) {
      double* zi = z + static_cast<std::size_t>(mem[t]) * kB;
      zi[0] = acc[t * kB];
      zi[1] = acc[t * kB + 1];
      zi[2] = acc[t * kB + 2];
    }
  });
  // backward: z_S -= D~_S^-1 sum_{K>S} A_SK z_K
  par::for_levels(bwd_, team, [&](int s) {
    const auto& mem = sn.members[static_cast<std::size_t>(s)];
    const int dim = kB * static_cast<int>(mem.size());
    acc.assign(static_cast<std::size_t>(dim), 0.0);
    for (std::size_t t = 0; t < mem.size(); ++t) {
      const int i = mem[t];
      Acc ai;
      ai.init_zero();
      for (int e = a.rowptr[i]; e < a.rowptr[i + 1]; ++e) {
        const int j = a.colind[e];
        if (sn.node_to_super[static_cast<std::size_t>(j)] <= s) continue;
        ai.madd(aval + static_cast<std::size_t>(e) * kBB, z + static_cast<std::size_t>(j) * kB);
      }
      ai.reduce(acc.data() + t * kB);
    }
    lus[static_cast<std::size_t>(s)].solve(acc.data());
    for (std::size_t t = 0; t < mem.size(); ++t) {
      double* zi = z + static_cast<std::size_t>(mem[t]) * kB;
      zi[0] -= acc[t * kB];
      zi[1] -= acc[t * kB + 1];
      zi[2] -= acc[t * kB + 2];
    }
  });
}

void SBBIC0::apply(std::span<const double> r, std::span<double> z, util::FlopCounter* flops,
                   util::LoopStats* loops) const {
  const auto& a = a_;
  const auto& sn = sn_;
  GEOFEM_CHECK(r.size() == a.ndof() && z.size() == a.ndof(), "SB-BIC0 apply size mismatch");

  const int team = par::threads();
  if (precision_ == Precision::kSingle) {
#if GEOFEM_SIMD_HAS_AVX2
    if (simd::active() == simd::Isa::kAvx2) {
      apply_impl<simd::AvxAcc3T<float>>(aval32_.data(), lu32_, r.data(), z.data(), team);
    } else
#endif
    {
      apply_impl<simd::ScalarAcc3T<float>>(aval32_.data(), lu32_, r.data(), z.data(), team);
    }
  } else {
#if GEOFEM_SIMD_HAS_AVX2
    if (simd::active() == simd::Isa::kAvx2) {
      apply_impl<simd::AvxAcc3>(a.val.data(), lu_, r.data(), z.data(), team);
    } else
#endif
    {
      apply_impl<simd::ScalarAcc3>(a.val.data(), lu_, r.data(), z.data(), team);
    }
  }
  // Stats are pattern-derived; record serially in the serial order.
  if (loops) {
    for (int s = 0; s < sn.count(); ++s)
      loops->record(fwd_len_[static_cast<std::size_t>(s)] + 1);
    for (int s = sn.count() - 1; s >= 0; --s)
      loops->record(bwd_len_[static_cast<std::size_t>(s)] + 1);
  }
  if (flops) {
    flops->precond += 2ULL * kBB * coupled_;
    flops->precond += static_cast<std::uint64_t>(2.0 * lu_solve_flops_);
  }
}

template <bool UseAvx, class T, class LuVec>
void SBBIC0::apply_multi_impl(const T* aval, const LuVec& lus, const double* r, double* z,
                              int k, int team) const {
  const auto& a = a_;
  const auto& sn = sn_;
  const std::size_t rk = static_cast<std::size_t>(kB) * static_cast<std::size_t>(k);
  // Per-thread staging: the supernode accumulator holds dim rows of k columns
  // interleaved ([dof-in-super][col]); `col` is the contiguous single-column
  // copy each dense solve runs on.
  static thread_local std::vector<double> accm, colm;
  par::for_levels(fwd_, team, [&](int s) {
    const auto& mem = sn.members[static_cast<std::size_t>(s)];
    const int dim = kB * static_cast<int>(mem.size());
    const std::size_t dk = static_cast<std::size_t>(dim) * static_cast<std::size_t>(k);
    if (accm.size() < dk) accm.resize(dk);
    if (colm.size() < static_cast<std::size_t>(dim)) colm.resize(static_cast<std::size_t>(dim));
    for (std::size_t t = 0; t < mem.size(); ++t) {
      const int i = mem[t];
      double* at = accm.data() + t * rk;
      const double* ri = r + static_cast<std::size_t>(i) * rk;
      for (std::size_t c = 0; c < rk; ++c) at[c] = ri[c];
      for (int e = a.rowptr[i]; e < a.rowptr[i + 1]; ++e) {
        const int j = a.colind[e];
        if (sn.node_to_super[static_cast<std::size_t>(j)] >= s) continue;
        simd::b3k_msub<T, UseAvx>(aval + static_cast<std::size_t>(e) * kBB,
                                  z + static_cast<std::size_t>(j) * rk, at, k);
      }
    }
    for (int c = 0; c < k; ++c) {
      for (int d = 0; d < dim; ++d)
        colm[static_cast<std::size_t>(d)] = accm[static_cast<std::size_t>(d) * k + c];
      lus[static_cast<std::size_t>(s)].solve(colm.data());
      for (int d = 0; d < dim; ++d)
        accm[static_cast<std::size_t>(d) * k + c] = colm[static_cast<std::size_t>(d)];
    }
    for (std::size_t t = 0; t < mem.size(); ++t) {
      double* zi = z + static_cast<std::size_t>(mem[t]) * rk;
      const double* at = accm.data() + t * rk;
      for (std::size_t c = 0; c < rk; ++c) zi[c] = at[c];
    }
  });
  par::for_levels(bwd_, team, [&](int s) {
    const auto& mem = sn.members[static_cast<std::size_t>(s)];
    const int dim = kB * static_cast<int>(mem.size());
    const std::size_t dk = static_cast<std::size_t>(dim) * static_cast<std::size_t>(k);
    if (accm.size() < dk) accm.resize(dk);
    if (colm.size() < static_cast<std::size_t>(dim)) colm.resize(static_cast<std::size_t>(dim));
    for (std::size_t c = 0; c < dk; ++c) accm[c] = 0.0;
    for (std::size_t t = 0; t < mem.size(); ++t) {
      const int i = mem[t];
      double* at = accm.data() + t * rk;
      for (int e = a.rowptr[i]; e < a.rowptr[i + 1]; ++e) {
        const int j = a.colind[e];
        if (sn.node_to_super[static_cast<std::size_t>(j)] <= s) continue;
        simd::b3k_madd<T, UseAvx>(aval + static_cast<std::size_t>(e) * kBB,
                                  z + static_cast<std::size_t>(j) * rk, at, k);
      }
    }
    for (int c = 0; c < k; ++c) {
      for (int d = 0; d < dim; ++d)
        colm[static_cast<std::size_t>(d)] = accm[static_cast<std::size_t>(d) * k + c];
      lus[static_cast<std::size_t>(s)].solve(colm.data());
      for (int d = 0; d < dim; ++d)
        accm[static_cast<std::size_t>(d) * k + c] = colm[static_cast<std::size_t>(d)];
    }
    for (std::size_t t = 0; t < mem.size(); ++t) {
      double* zi = z + static_cast<std::size_t>(mem[t]) * rk;
      const double* at = accm.data() + t * rk;
      for (std::size_t c = 0; c < rk; ++c) zi[c] -= at[c];
    }
  });
}

void SBBIC0::apply_multi(std::span<const double> r, std::span<double> z, int k,
                         util::FlopCounter* flops, util::LoopStats* loops) const {
  GEOFEM_CHECK(k >= 1 && k <= simd::kMaxMultiRhs, "SB-BIC0 apply_multi: bad column count");
  GEOFEM_CHECK(r.size() == a_.ndof() * static_cast<std::size_t>(k) && r.size() == z.size(),
               "SB-BIC0 apply_multi size mismatch");
  const int team = par::threads();
  const bool avx2 = simd::active() == simd::Isa::kAvx2;
  (void)avx2;
  if (precision_ == Precision::kSingle) {
#if GEOFEM_SIMD_HAS_AVX2
    if (avx2) {
      apply_multi_impl<true>(aval32_.data(), lu32_, r.data(), z.data(), k, team);
    } else
#endif
    {
      apply_multi_impl<false>(aval32_.data(), lu32_, r.data(), z.data(), k, team);
    }
  } else {
#if GEOFEM_SIMD_HAS_AVX2
    if (avx2) {
      apply_multi_impl<true>(a_.val.data(), lu_, r.data(), z.data(), k, team);
    } else
#endif
    {
      apply_multi_impl<false>(a_.val.data(), lu_, r.data(), z.data(), k, team);
    }
  }
  // One schedule walk: loop stats match the single apply; FLOPs scale by k.
  if (loops) {
    for (int s = 0; s < sn_.count(); ++s)
      loops->record(fwd_len_[static_cast<std::size_t>(s)] + 1);
    for (int s = sn_.count() - 1; s >= 0; --s)
      loops->record(bwd_len_[static_cast<std::size_t>(s)] + 1);
  }
  if (flops) {
    flops->precond += 2ULL * kBB * coupled_ * static_cast<std::uint64_t>(k);
    flops->precond +=
        static_cast<std::uint64_t>(2.0 * lu_solve_flops_) * static_cast<std::uint64_t>(k);
  }
}

std::size_t SBBIC0::memory_bytes() const {
  std::size_t bytes = aval32_.size() * sizeof(float);
  for (const auto& lu : lu_) bytes += lu.memory_bytes();
  for (const auto& lu : lu32_) bytes += lu.memory_bytes();
  return bytes;
}

}  // namespace geofem::precond
