#include "precond/diagonal.hpp"

#include "obs/span.hpp"
#include "util/check.hpp"

namespace geofem::precond {

DiagonalScaling::DiagonalScaling(const sparse::BlockCSR& a) {
  obs::ScopedSpan span("precond.factor.Diagonal");
  inv_diag_.resize(a.ndof());
  for (int i = 0; i < a.n; ++i) {
    const double* d = a.block(a.diag_entry(i));
    for (int c = 0; c < sparse::kB; ++c) {
      const double v = d[sparse::kB * c + c];
      GEOFEM_CHECK(v != 0.0, "zero diagonal in DiagonalScaling");
      inv_diag_[static_cast<std::size_t>(i) * sparse::kB + static_cast<std::size_t>(c)] = 1.0 / v;
    }
  }
}

void DiagonalScaling::apply(std::span<const double> r, std::span<double> z,
                            util::FlopCounter* flops, util::LoopStats* loops) const {
  GEOFEM_CHECK(r.size() == inv_diag_.size() && z.size() == inv_diag_.size(),
               "diagonal apply size mismatch");
  for (std::size_t d = 0; d < r.size(); ++d) z[d] = r[d] * inv_diag_[d];
  if (flops) flops->precond += r.size();
  if (loops) loops->record(static_cast<std::int64_t>(r.size()));
}

}  // namespace geofem::precond
