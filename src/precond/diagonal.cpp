#include "precond/diagonal.hpp"

#include "core/status.hpp"
#include "obs/span.hpp"
#include "par/par.hpp"
#include "simd/multirhs.hpp"
#include "sparse/dense.hpp"
#include "util/check.hpp"

namespace geofem::precond {

DiagonalScaling::DiagonalScaling(const sparse::BlockCSR& a, Precision precision)
    : precision_(precision) {
  obs::ScopedSpan span("precond.factor.Diagonal");
  inv_diag_.resize(a.ndof());
  for (int i = 0; i < a.n; ++i) {
    const double* d = a.block(a.diag_entry(i));
    for (int c = 0; c < sparse::kB; ++c) {
      const double v = d[sparse::kB * c + c];
      if (v == 0.0)
        throw Error(StatusCode::kFactorizationFailed, "zero diagonal in DiagonalScaling");
      inv_diag_[static_cast<std::size_t>(i) * sparse::kB + static_cast<std::size_t>(c)] = 1.0 / v;
    }
  }
  if (precision_ == Precision::kSingle) {
    narrow_or_throw(inv_diag_, inv32_);
    inv_diag_.clear();
    inv_diag_.shrink_to_fit();
  }
}

void DiagonalScaling::apply(std::span<const double> r, std::span<double> z,
                            util::FlopCounter* flops, util::LoopStats* loops) const {
  if (precision_ == Precision::kSingle) {
    GEOFEM_CHECK(r.size() == inv32_.size() && z.size() == inv32_.size(),
                 "diagonal apply size mismatch");
    for (std::size_t d = 0; d < r.size(); ++d) z[d] = r[d] * static_cast<double>(inv32_[d]);
  } else {
    GEOFEM_CHECK(r.size() == inv_diag_.size() && z.size() == inv_diag_.size(),
                 "diagonal apply size mismatch");
    for (std::size_t d = 0; d < r.size(); ++d) z[d] = r[d] * inv_diag_[d];
  }
  if (flops) flops->precond += r.size();
  if (loops) loops->record(static_cast<std::int64_t>(r.size()));
}

void DiagonalScaling::apply_multi(std::span<const double> r, std::span<double> z, int k,
                                  util::FlopCounter* flops, util::LoopStats* loops) const {
  GEOFEM_CHECK(k >= 1 && k <= simd::kMaxMultiRhs, "diagonal apply_multi: bad column count");
  const std::size_t n =
      precision_ == Precision::kSingle ? inv32_.size() : inv_diag_.size();
  GEOFEM_CHECK(r.size() == n * static_cast<std::size_t>(k) && r.size() == z.size(),
               "diagonal apply_multi size mismatch");
  for (std::size_t d = 0; d < n; ++d) {
    const double inv = precision_ == Precision::kSingle ? static_cast<double>(inv32_[d])
                                                        : inv_diag_[d];
    const double* rd = r.data() + d * static_cast<std::size_t>(k);
    double* zd = z.data() + d * static_cast<std::size_t>(k);
    GEOFEM_PRAGMA_SIMD
    for (int c = 0; c < k; ++c) zd[c] = rd[c] * inv;
  }
  if (flops) flops->precond += r.size();
  if (loops) loops->record(static_cast<std::int64_t>(n));
}

BlockDiagonal::BlockDiagonal(const sparse::BlockCSR& a, Precision precision)
    : n_(a.n), precision_(precision) {
  obs::ScopedSpan span("precond.factor.BlockDiagonal");
  inv_d_.assign(static_cast<std::size_t>(a.n) * sparse::kBB, 0.0);
  for (int i = 0; i < a.n; ++i) {
    const double* d = a.block(a.diag_entry(i));
    double* inv = inv_d_.data() + static_cast<std::size_t>(i) * sparse::kBB;
    if (sparse::b3_inverse(d, inv)) continue;
    for (int t = 0; t < sparse::kBB; ++t) inv[t] = 0.0;
    for (int c = 0; c < sparse::kB; ++c) {
      const double v = d[sparse::kB * c + c];
      inv[sparse::kB * c + c] = v != 0.0 ? 1.0 / v : 1.0;
    }
  }
  if (precision_ == Precision::kSingle) {
    narrow_or_throw(inv_d_, inv32_);
    rf_.resize(static_cast<std::size_t>(a.n) * sparse::kB);
    zf_.resize(rf_.size());
#if GEOFEM_SIMD_HAS_AVX2
    simd::pack_blocks(inv32_.data(), a.n, packed32_);
#endif
    inv_d_.clear();
    inv_d_.shrink_to_fit();
    return;
  }
#if GEOFEM_SIMD_HAS_AVX2
  simd::pack_blocks(inv_d_.data(), a.n, packed_);
#endif
}

void BlockDiagonal::apply(std::span<const double> r, std::span<double> z,
                          util::FlopCounter* flops, util::LoopStats* loops) const {
  const std::size_t n = static_cast<std::size_t>(n_);
  GEOFEM_CHECK(r.size() == n * sparse::kB && z.size() == n * sparse::kB,
               "block diagonal apply size mismatch");
  if (precision_ == Precision::kSingle) {
    // Stage in fp32: narrow r once, sweep in float, widen z once.
    for (std::size_t d = 0; d < r.size(); ++d) rf_[d] = static_cast<float>(r[d]);
#if GEOFEM_SIMD_HAS_AVX2
    if (simd::active() == simd::Isa::kAvx2) {
      simd::sweep_avx2<simd::Mode::kAssign>(packed32_, rf_.data(), zf_.data());
    } else
#endif
    {
      for (std::size_t i = 0; i < n; ++i)
        sparse::b3_apply(inv32_.data() + i * sparse::kBB, rf_.data() + i * sparse::kB,
                         zf_.data() + i * sparse::kB);
    }
    for (std::size_t d = 0; d < z.size(); ++d) z[d] = static_cast<double>(zf_[d]);
  } else {
#if GEOFEM_SIMD_HAS_AVX2
    if (simd::active() == simd::Isa::kAvx2) {
      simd::sweep_avx2<simd::Mode::kAssign>(packed_, r.data(), z.data());
    } else
#endif
    {
      for (std::size_t i = 0; i < n; ++i)
        sparse::b3_apply(inv_d_.data() + i * sparse::kBB, r.data() + i * sparse::kB,
                         z.data() + i * sparse::kB);
    }
  }
  if (flops) flops->precond += 2ULL * sparse::kBB * n;
  if (loops) loops->record(static_cast<std::int64_t>(n));
}

void BlockDiagonal::apply_multi(std::span<const double> r, std::span<double> z, int k,
                                util::FlopCounter* flops, util::LoopStats* loops) const {
  const std::size_t n = static_cast<std::size_t>(n_);
  const std::size_t rk = static_cast<std::size_t>(sparse::kB) * static_cast<std::size_t>(k);
  GEOFEM_CHECK(k >= 1 && k <= simd::kMaxMultiRhs, "block diagonal apply_multi: bad column count");
  GEOFEM_CHECK(r.size() == n * rk && z.size() == n * rk,
               "block diagonal apply_multi size mismatch");
  const int team = par::threads();
  const bool avx2 = simd::active() == simd::Isa::kAvx2;
  (void)avx2;
  const std::ptrdiff_t pn = static_cast<std::ptrdiff_t>(n);
  if (precision_ == Precision::kSingle) {
#if GEOFEM_SIMD_HAS_AVX2
    if (avx2) {
#pragma omp parallel for schedule(static) num_threads(team) if (team > 1)
      for (std::ptrdiff_t i = 0; i < pn; ++i)
        simd::b3k_apply<float, true>(inv32_.data() + static_cast<std::size_t>(i) * sparse::kBB,
                                     r.data() + static_cast<std::size_t>(i) * rk,
                                     z.data() + static_cast<std::size_t>(i) * rk, k);
    } else
#endif
    {
#pragma omp parallel for schedule(static) num_threads(team) if (team > 1)
      for (std::ptrdiff_t i = 0; i < pn; ++i)
        simd::b3k_apply<float, false>(inv32_.data() + static_cast<std::size_t>(i) * sparse::kBB,
                                      r.data() + static_cast<std::size_t>(i) * rk,
                                      z.data() + static_cast<std::size_t>(i) * rk, k);
    }
  } else {
#if GEOFEM_SIMD_HAS_AVX2
    if (avx2) {
#pragma omp parallel for schedule(static) num_threads(team) if (team > 1)
      for (std::ptrdiff_t i = 0; i < pn; ++i)
        simd::b3k_apply<double, true>(inv_d_.data() + static_cast<std::size_t>(i) * sparse::kBB,
                                      r.data() + static_cast<std::size_t>(i) * rk,
                                      z.data() + static_cast<std::size_t>(i) * rk, k);
    } else
#endif
    {
#pragma omp parallel for schedule(static) num_threads(team) if (team > 1)
      for (std::ptrdiff_t i = 0; i < pn; ++i)
        simd::b3k_apply<double, false>(inv_d_.data() + static_cast<std::size_t>(i) * sparse::kBB,
                                       r.data() + static_cast<std::size_t>(i) * rk,
                                       z.data() + static_cast<std::size_t>(i) * rk, k);
    }
  }
  if (flops) flops->precond += 2ULL * sparse::kBB * n * static_cast<std::uint64_t>(k);
  if (loops) loops->record(static_cast<std::int64_t>(n));
}

}  // namespace geofem::precond
