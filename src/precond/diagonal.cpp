#include "precond/diagonal.hpp"

#include "core/status.hpp"
#include "obs/span.hpp"
#include "sparse/dense.hpp"
#include "util/check.hpp"

namespace geofem::precond {

DiagonalScaling::DiagonalScaling(const sparse::BlockCSR& a) {
  obs::ScopedSpan span("precond.factor.Diagonal");
  inv_diag_.resize(a.ndof());
  for (int i = 0; i < a.n; ++i) {
    const double* d = a.block(a.diag_entry(i));
    for (int c = 0; c < sparse::kB; ++c) {
      const double v = d[sparse::kB * c + c];
      if (v == 0.0)
        throw Error(StatusCode::kFactorizationFailed, "zero diagonal in DiagonalScaling");
      inv_diag_[static_cast<std::size_t>(i) * sparse::kB + static_cast<std::size_t>(c)] = 1.0 / v;
    }
  }
}

void DiagonalScaling::apply(std::span<const double> r, std::span<double> z,
                            util::FlopCounter* flops, util::LoopStats* loops) const {
  GEOFEM_CHECK(r.size() == inv_diag_.size() && z.size() == inv_diag_.size(),
               "diagonal apply size mismatch");
  for (std::size_t d = 0; d < r.size(); ++d) z[d] = r[d] * inv_diag_[d];
  if (flops) flops->precond += r.size();
  if (loops) loops->record(static_cast<std::int64_t>(r.size()));
}

BlockDiagonal::BlockDiagonal(const sparse::BlockCSR& a) {
  obs::ScopedSpan span("precond.factor.BlockDiagonal");
  inv_d_.assign(static_cast<std::size_t>(a.n) * sparse::kBB, 0.0);
  for (int i = 0; i < a.n; ++i) {
    const double* d = a.block(a.diag_entry(i));
    double* inv = inv_d_.data() + static_cast<std::size_t>(i) * sparse::kBB;
    if (sparse::b3_inverse(d, inv)) continue;
    for (int t = 0; t < sparse::kBB; ++t) inv[t] = 0.0;
    for (int c = 0; c < sparse::kB; ++c) {
      const double v = d[sparse::kB * c + c];
      inv[sparse::kB * c + c] = v != 0.0 ? 1.0 / v : 1.0;
    }
  }
#if GEOFEM_SIMD_HAS_AVX2
  simd::pack_blocks(inv_d_.data(), a.n, packed_);
#endif
}

void BlockDiagonal::apply(std::span<const double> r, std::span<double> z,
                          util::FlopCounter* flops, util::LoopStats* loops) const {
  const std::size_t n = inv_d_.size() / sparse::kBB;
  GEOFEM_CHECK(r.size() == n * sparse::kB && z.size() == n * sparse::kB,
               "block diagonal apply size mismatch");
#if GEOFEM_SIMD_HAS_AVX2
  if (simd::active() == simd::Isa::kAvx2) {
    simd::sweep_avx2<simd::Mode::kAssign>(packed_, r.data(), z.data());
  } else
#endif
  {
    for (std::size_t i = 0; i < n; ++i)
      sparse::b3_apply(inv_d_.data() + i * sparse::kBB, r.data() + i * sparse::kB,
                       z.data() + i * sparse::kB);
  }
  if (flops) flops->precond += 2ULL * sparse::kBB * n;
  if (loops) loops->record(static_cast<std::int64_t>(n));
}

}  // namespace geofem::precond
