#include "part/local_system.hpp"

#include <algorithm>
#include <map>

#include "util/check.hpp"

namespace geofem::part {

sparse::BlockCSR LocalSystem::internal_matrix() const {
  sparse::BlockCSRBuilder builder(num_internal);
  for (int i = 0; i < num_internal; ++i)
    for (int e = a.rowptr[i]; e < a.rowptr[i + 1]; ++e)
      if (a.colind[e] < num_internal) builder.add_pattern(i, a.colind[e]);
  builder.finalize_pattern();
  for (int i = 0; i < num_internal; ++i)
    for (int e = a.rowptr[i]; e < a.rowptr[i + 1]; ++e)
      if (a.colind[e] < num_internal) builder.add_block(i, a.colind[e], a.block(e));
  return builder.take();
}

std::vector<std::vector<int>> LocalSystem::local_contact_groups(
    const std::vector<std::vector<int>>& global_groups) const {
  std::map<int, int> local_of_global;
  for (int l = 0; l < num_internal; ++l) local_of_global[global_of_local[static_cast<std::size_t>(l)]] = l;
  std::vector<std::vector<int>> out;
  for (const auto& g : global_groups) {
    std::vector<int> local;
    for (int v : g) {
      auto it = local_of_global.find(v);
      if (it != local_of_global.end()) local.push_back(it->second);
    }
    if (local.size() >= 2) out.push_back(std::move(local));
  }
  return out;
}

LocalSystem::RowSplit LocalSystem::row_split() const {
  RowSplit split;
  for (int i = 0; i < num_internal; ++i) {
    bool external = false;
    for (int e = a.rowptr[i]; e < a.rowptr[i + 1]; ++e) {
      if (a.colind[e] >= num_internal) {
        external = true;
        break;
      }
    }
    (external ? split.boundary : split.interior).push_back(i);
  }
  return split;
}

std::vector<LocalSystem> distribute(const sparse::BlockCSR& a, const std::vector<double>& b,
                                    const Partition& p) {
  GEOFEM_CHECK(static_cast<int>(p.domain_of.size()) == a.n, "partition size mismatch");
  GEOFEM_CHECK(b.size() == a.ndof(), "rhs size mismatch");
  const int ndom = p.num_domains;
  std::vector<LocalSystem> out(static_cast<std::size_t>(ndom));

  // internal node lists (ascending global id -> deterministic local order)
  for (int v = 0; v < a.n; ++v)
    out[static_cast<std::size_t>(p.domain_of[static_cast<std::size_t>(v)])].global_of_local.push_back(v);
  for (int d = 0; d < ndom; ++d) {
    out[static_cast<std::size_t>(d)].domain = d;
    out[static_cast<std::size_t>(d)].num_internal =
        static_cast<int>(out[static_cast<std::size_t>(d)].global_of_local.size());
    GEOFEM_CHECK(out[static_cast<std::size_t>(d)].num_internal > 0, "empty domain");
  }

  for (int d = 0; d < ndom; ++d) {
    LocalSystem& ls = out[static_cast<std::size_t>(d)];
    std::map<int, int> local_of_global;
    for (int l = 0; l < ls.num_internal; ++l)
      local_of_global[ls.global_of_local[static_cast<std::size_t>(l)]] = l;

    // discover external nodes (sorted by (owner domain, global id) so that
    // send/recv tables on both sides enumerate identically)
    std::map<std::pair<int, int>, int> externals;  // (owner, global) -> marker
    for (int l = 0; l < ls.num_internal; ++l) {
      const int gi = ls.global_of_local[static_cast<std::size_t>(l)];
      for (int e = a.rowptr[gi]; e < a.rowptr[gi + 1]; ++e) {
        const int gj = a.colind[e];
        const int dj = p.domain_of[static_cast<std::size_t>(gj)];
        if (dj != d) externals[{dj, gj}] = 0;
      }
    }
    for (auto& [key, local] : externals) {
      local = ls.num_local();
      ls.global_of_local.push_back(key.second);
      local_of_global[key.second] = local;
    }

    // local matrix: internal rows with all local columns
    sparse::BlockCSRBuilder builder(ls.num_local());
    for (int l = 0; l < ls.num_internal; ++l) {
      const int gi = ls.global_of_local[static_cast<std::size_t>(l)];
      for (int e = a.rowptr[gi]; e < a.rowptr[gi + 1]; ++e)
        builder.add_pattern(l, local_of_global.at(a.colind[e]));
    }
    builder.finalize_pattern();
    for (int l = 0; l < ls.num_internal; ++l) {
      const int gi = ls.global_of_local[static_cast<std::size_t>(l)];
      for (int e = a.rowptr[gi]; e < a.rowptr[gi + 1]; ++e)
        builder.add_block(l, local_of_global.at(a.colind[e]), a.block(e));
    }
    ls.a = builder.take();

    ls.b.resize(static_cast<std::size_t>(ls.num_internal) * 3);
    for (int l = 0; l < ls.num_internal; ++l) {
      const int gi = ls.global_of_local[static_cast<std::size_t>(l)];
      for (int c = 0; c < 3; ++c)
        ls.b[static_cast<std::size_t>(l) * 3 + static_cast<std::size_t>(c)] =
            b[static_cast<std::size_t>(gi) * 3 + static_cast<std::size_t>(c)];
    }

    // recv tables grouped by owner (externals map is already (owner, global)
    // ascending)
    for (const auto& [key, local] : externals) {
      if (ls.links.empty() || ls.links.back().domain != key.first) {
        ls.links.push_back({key.first, {}, {}});
      }
      ls.links.back().recv_local.push_back(local);
    }
  }

  // send tables: mirror the recv tables of the neighbours (same (owner,
  // global id) order on both sides)
  for (int d = 0; d < ndom; ++d) {
    LocalSystem& ls = out[static_cast<std::size_t>(d)];
    for (auto& link : ls.links) {
      LocalSystem& nb = out[static_cast<std::size_t>(link.domain)];
      // globals this domain receives from `link.domain`
      for (int recv_local : link.recv_local) {
        const int g = ls.global_of_local[static_cast<std::size_t>(recv_local)];
        // the neighbour sends its internal local id of g
        auto it = std::lower_bound(nb.global_of_local.begin(),
                                   nb.global_of_local.begin() + nb.num_internal, g);
        GEOFEM_CHECK(it != nb.global_of_local.begin() + nb.num_internal && *it == g,
                     "external node not internal at owner");
        // find-or-create the reverse link on the neighbour
        auto rit = std::find_if(nb.links.begin(), nb.links.end(),
                                [d](const LocalSystem::NeighborLink& l) { return l.domain == d; });
        if (rit == nb.links.end()) {
          nb.links.push_back({d, {}, {}});
          rit = nb.links.end() - 1;
        }
        rit->send_local.push_back(static_cast<int>(it - nb.global_of_local.begin()));
      }
    }
  }
  return out;
}

}  // namespace geofem::part
