#include "part/io.hpp"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>

#include "core/status.hpp"

namespace geofem::part {

namespace {

/// Parse / file failures are typed geofem::Error(kIoError) so callers can
/// dispatch on code() instead of matching message strings.
void io_check(bool ok, const std::string& what) {
  if (!ok) throw Error(StatusCode::kIoError, what);
}

}  // namespace

void write_local_system(std::ostream& os, const LocalSystem& ls) {
  os << "geofem-local 1\n";
  os << "domain " << ls.domain << " internal " << ls.num_internal << " local " << ls.num_local()
     << "\n";
  os << "globals";
  for (int g : ls.global_of_local) os << ' ' << g;
  os << "\nmatrix " << ls.a.n << ' ' << ls.a.nnz_blocks() << "\n";
  for (int v : ls.a.rowptr) os << v << ' ';
  os << "\n";
  for (int v : ls.a.colind) os << v << ' ';
  os << "\n" << std::setprecision(17);
  for (double v : ls.a.val) os << v << ' ';
  os << "\nrhs " << ls.b.size() << "\n";
  for (double v : ls.b) os << v << ' ';
  os << "\nlinks " << ls.links.size() << "\n";
  for (const auto& link : ls.links) {
    os << link.domain << ' ' << link.send_local.size();
    for (int v : link.send_local) os << ' ' << v;
    os << ' ' << link.recv_local.size();
    for (int v : link.recv_local) os << ' ' << v;
    os << '\n';
  }
  io_check(os.good(), "local system write failed");
}

LocalSystem read_local_system(std::istream& is) {
  std::string magic, key;
  int version = 0;
  is >> magic >> version;
  io_check(magic == "geofem-local" && version == 1, "not a geofem-local v1 stream");

  LocalSystem ls;
  int nl = 0;
  is >> key >> ls.domain;
  io_check(key == "domain", "bad domain header");
  is >> key >> ls.num_internal;
  io_check(key == "internal" && ls.num_internal >= 0, "bad internal header");
  is >> key >> nl;
  io_check(key == "local" && nl >= ls.num_internal, "bad local header");

  is >> key;
  io_check(key == "globals", "bad globals header");
  ls.global_of_local.resize(static_cast<std::size_t>(nl));
  for (int& g : ls.global_of_local) is >> g;

  int rows = 0, nnz = 0;
  is >> key >> rows >> nnz;
  io_check(key == "matrix" && rows == nl && nnz >= 0, "bad matrix header");
  ls.a.n = rows;
  ls.a.rowptr.resize(static_cast<std::size_t>(rows) + 1);
  for (int& v : ls.a.rowptr) is >> v;
  ls.a.colind.resize(static_cast<std::size_t>(nnz));
  for (int& v : ls.a.colind) is >> v;
  ls.a.val.resize(static_cast<std::size_t>(nnz) * sparse::kBB);
  for (double& v : ls.a.val) is >> v;

  std::size_t rhs = 0;
  is >> key >> rhs;
  io_check(key == "rhs" && rhs == static_cast<std::size_t>(ls.num_internal) * 3,
               "bad rhs header");
  ls.b.resize(rhs);
  for (double& v : ls.b) is >> v;

  std::size_t nlinks = 0;
  is >> key >> nlinks;
  io_check(key == "links", "bad links header");
  ls.links.resize(nlinks);
  for (auto& link : ls.links) {
    std::size_t ns = 0, nr = 0;
    is >> link.domain >> ns;
    link.send_local.resize(ns);
    for (int& v : link.send_local) is >> v;
    is >> nr;
    link.recv_local.resize(nr);
    for (int& v : link.recv_local) is >> v;
  }
  io_check(!is.fail(), "local system read failed");
  return ls;
}

void save_distributed(const std::string& prefix, const std::vector<LocalSystem>& systems) {
  for (const auto& ls : systems) {
    std::ofstream os(prefix + "." + std::to_string(ls.domain) + ".dist");
    io_check(os.is_open(), "cannot open local-data file for writing");
    write_local_system(os, ls);
  }
}

std::vector<LocalSystem> load_distributed(const std::string& prefix, int ndom) {
  std::vector<LocalSystem> out;
  out.reserve(static_cast<std::size_t>(ndom));
  for (int d = 0; d < ndom; ++d) {
    std::ifstream is(prefix + "." + std::to_string(d) + ".dist");
    io_check(is.is_open(), "cannot open local-data file " + std::to_string(d));
    out.push_back(read_local_system(is));
    io_check(out.back().domain == d, "local-data file has wrong domain id");
  }
  return out;
}

}  // namespace geofem::part
