#pragma once

#include <iosfwd>
#include <string>

#include "part/local_system.hpp"

namespace geofem::part {

/// Text serialization of GeoFEM distributed local data (§2.1: the partitioner
/// runs once on a single PE and writes one local-data file per domain; the
/// parallel solver then reads only its own file). Layout:
///
///   geofem-local 1
///   domain <d> internal <ni> local <nl>
///   globals <nl ids>
///   matrix <block rows> <nnz blocks>
///   <rowptr>, <colind>, <9 values per block>
///   rhs <3*ni values>
///   links <L>
///   <neighbor  ns send-ids  nr recv-ids> * L
void write_local_system(std::ostream& os, const LocalSystem& ls);
LocalSystem read_local_system(std::istream& is);

/// Write one file per domain: <prefix>.<rank>.dist
void save_distributed(const std::string& prefix, const std::vector<LocalSystem>& systems);
std::vector<LocalSystem> load_distributed(const std::string& prefix, int ndom);

}  // namespace geofem::part
