#include "part/partition.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace geofem::part {

std::vector<int> Partition::domain_sizes() const {
  std::vector<int> sizes(static_cast<std::size_t>(num_domains), 0);
  for (int d : domain_of) ++sizes[static_cast<std::size_t>(d)];
  return sizes;
}

double Partition::imbalance_percent() const {
  const auto sizes = domain_sizes();
  const auto [mn, mx] = std::minmax_element(sizes.begin(), sizes.end());
  const double avg = static_cast<double>(domain_of.size()) / num_domains;
  return avg == 0.0 ? 0.0 : 100.0 * static_cast<double>(*mx - *mn) / avg;
}

Partition by_node_blocks(int num_nodes, int ndom) {
  GEOFEM_CHECK(ndom >= 1 && num_nodes >= ndom, "bad partition request");
  Partition p;
  p.num_domains = ndom;
  p.domain_of.resize(static_cast<std::size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i)
    p.domain_of[static_cast<std::size_t>(i)] =
        std::min(ndom - 1, static_cast<int>((static_cast<long long>(i) * ndom) / num_nodes));
  return p;
}

namespace {

/// Recursive weighted coordinate bisection of `ids` into `ndom` parts,
/// writing results into out. Splits ndom into floor/ceil halves so any domain
/// count works, with the weighted median placed proportionally.
void rcb_recurse(const std::vector<std::array<double, 3>>& coords, const std::vector<int>& weights,
                 std::vector<int>& ids, int id_begin, int id_end, int dom_begin, int ndom,
                 std::vector<int>& out) {
  if (ndom == 1) {
    for (int t = id_begin; t < id_end; ++t)
      out[static_cast<std::size_t>(ids[static_cast<std::size_t>(t)])] = dom_begin;
    return;
  }
  // widest axis of this subset
  double lo[3], hi[3];
  for (int d = 0; d < 3; ++d) {
    lo[d] = 1e300;
    hi[d] = -1e300;
  }
  for (int t = id_begin; t < id_end; ++t) {
    const auto& c = coords[static_cast<std::size_t>(ids[static_cast<std::size_t>(t)])];
    for (int d = 0; d < 3; ++d) {
      lo[d] = std::min(lo[d], c[d]);
      hi[d] = std::max(hi[d], c[d]);
    }
  }
  int axis = 0;
  for (int d = 1; d < 3; ++d)
    if (hi[d] - lo[d] > hi[axis] - lo[axis]) axis = d;

  std::sort(ids.begin() + id_begin, ids.begin() + id_end, [&](int a, int b) {
    const double ca = coords[static_cast<std::size_t>(a)][axis];
    const double cb = coords[static_cast<std::size_t>(b)][axis];
    return ca != cb ? ca < cb : a < b;
  });

  const int ndom_left = ndom / 2;
  long long total = 0;
  for (int t = id_begin; t < id_end; ++t)
    total += weights[static_cast<std::size_t>(ids[static_cast<std::size_t>(t)])];
  const long long want_left = total * ndom_left / ndom;

  int split = id_begin;
  long long acc = 0;
  while (split < id_end - 1 && acc < want_left) {
    acc += weights[static_cast<std::size_t>(ids[static_cast<std::size_t>(split)])];
    ++split;
  }
  if (split == id_begin) split = id_begin + 1;  // never create an empty side

  rcb_recurse(coords, weights, ids, id_begin, split, dom_begin, ndom_left, out);
  rcb_recurse(coords, weights, ids, split, id_end, dom_begin + ndom_left, ndom - ndom_left, out);
}

}  // namespace

Partition rcb(const std::vector<std::array<double, 3>>& coords, int ndom,
              const std::vector<int>* weights) {
  const int n = static_cast<int>(coords.size());
  GEOFEM_CHECK(ndom >= 1 && n >= ndom, "bad partition request");
  std::vector<int> w;
  if (weights) {
    GEOFEM_CHECK(static_cast<int>(weights->size()) == n, "weights size mismatch");
    w = *weights;
  } else {
    w.assign(static_cast<std::size_t>(n), 1);
  }
  std::vector<int> ids(static_cast<std::size_t>(n));
  std::iota(ids.begin(), ids.end(), 0);
  Partition p;
  p.num_domains = ndom;
  p.domain_of.assign(static_cast<std::size_t>(n), 0);
  rcb_recurse(coords, w, ids, 0, n, 0, ndom, p.domain_of);
  return p;
}

Partition rcb_contact_aware(const mesh::HexMesh& m, int ndom) {
  const int nn = m.num_nodes();
  // units: contact groups first, then remaining nodes
  std::vector<int> unit_of(static_cast<std::size_t>(nn), -1);
  std::vector<std::array<double, 3>> centroids;
  std::vector<int> weights;
  for (const auto& g : m.contact_groups) {
    const int u = static_cast<int>(centroids.size());
    std::array<double, 3> c{0, 0, 0};
    for (int v : g) {
      unit_of[static_cast<std::size_t>(v)] = u;
      for (int d = 0; d < 3; ++d) c[static_cast<std::size_t>(d)] += m.coords[static_cast<std::size_t>(v)][static_cast<std::size_t>(d)];
    }
    for (int d = 0; d < 3; ++d) c[static_cast<std::size_t>(d)] /= static_cast<double>(g.size());
    centroids.push_back(c);
    weights.push_back(static_cast<int>(g.size()));
  }
  for (int v = 0; v < nn; ++v) {
    if (unit_of[static_cast<std::size_t>(v)] != -1) continue;
    unit_of[static_cast<std::size_t>(v)] = static_cast<int>(centroids.size());
    centroids.push_back(m.coords[static_cast<std::size_t>(v)]);
    weights.push_back(1);
  }

  const Partition up = rcb(centroids, ndom, &weights);
  Partition p;
  p.num_domains = ndom;
  p.domain_of.resize(static_cast<std::size_t>(nn));
  for (int v = 0; v < nn; ++v)
    p.domain_of[static_cast<std::size_t>(v)] =
        up.domain_of[static_cast<std::size_t>(unit_of[static_cast<std::size_t>(v)])];
  return p;
}

int split_contact_groups(const mesh::HexMesh& m, const Partition& p) {
  int split = 0;
  for (const auto& g : m.contact_groups) {
    const int d0 = p.domain_of[static_cast<std::size_t>(g[0])];
    for (int v : g) {
      if (p.domain_of[static_cast<std::size_t>(v)] != d0) {
        ++split;
        break;
      }
    }
  }
  return split;
}

}  // namespace geofem::part
