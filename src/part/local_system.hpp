#pragma once

#include <vector>

#include "part/partition.hpp"
#include "sparse/block_csr.hpp"

namespace geofem::part {

/// GeoFEM per-domain local data (paper §2.1, Figs 3-4): internal nodes
/// (owned), external nodes (copies of neighbours' internal nodes referenced
/// by local matrix rows), and send/recv communication tables per neighbour.
/// Local node numbering: internal nodes first [0, num_internal), then
/// external nodes.
struct LocalSystem {
  int domain = 0;
  int num_internal = 0;
  std::vector<int> global_of_local;  ///< local id -> global node id
  sparse::BlockCSR a;                ///< rows 0..num_internal-1 hold matrix rows; external
                                     ///< rows are empty (diag identity placeholder)
  std::vector<double> b;             ///< size num_internal * 3

  struct NeighborLink {
    int domain;
    std::vector<int> send_local;  ///< internal local ids whose values we send
    std::vector<int> recv_local;  ///< external local ids we receive into
  };
  std::vector<NeighborLink> links;

  [[nodiscard]] int num_local() const { return static_cast<int>(global_of_local.size()); }

  /// Internal-by-internal submatrix with external couplings zeroed out — the
  /// operand of localized preconditioning (§2.2: "zeroing out components
  /// located outside the processor domain").
  [[nodiscard]] sparse::BlockCSR internal_matrix() const;

  /// Restrict global contact groups to this domain's *internal* nodes (local
  /// ids). Groups with fewer than 2 local members vanish — exactly what
  /// happens when a contact group is cut by the partition.
  [[nodiscard]] std::vector<std::vector<int>> local_contact_groups(
      const std::vector<std::vector<int>>& global_groups) const;

  /// Internal rows split by whether the row references external columns.
  /// Interior rows depend only on internal values, so their SpMV can run
  /// while the halo exchange is in flight; boundary rows wait for it.
  /// Both lists are ascending; together they cover [0, num_internal) once.
  struct RowSplit {
    std::vector<int> interior;
    std::vector<int> boundary;
  };
  [[nodiscard]] RowSplit row_split() const;
};

/// Split a globally assembled system into GeoFEM local systems. External
/// nodes are discovered from the matrix pattern (for FEM matrices this equals
/// the overlapping-element rule; penalty couplings ride along identically).
std::vector<LocalSystem> distribute(const sparse::BlockCSR& a, const std::vector<double>& b,
                                    const Partition& p);

}  // namespace geofem::part
