#pragma once

#include <array>
#include <vector>

#include "mesh/hex_mesh.hpp"

namespace geofem::part {

/// Node-based domain assignment (paper §2.1: GeoFEM partitions the FEM nodes;
/// elements overlap).
struct Partition {
  int num_domains = 1;
  std::vector<int> domain_of;  ///< per node

  [[nodiscard]] std::vector<int> domain_sizes() const;
  /// 100 * (max - min) / avg of nodes per domain.
  [[nodiscard]] double imbalance_percent() const;
};

/// Contiguous node-id blocks ("ORIGINAL partitioning" of Table 3: the raw
/// mesh-file order, oblivious to contact groups — guaranteed to cut through
/// the contact surfaces of multi-zone meshes, whose zones occupy disjoint id
/// ranges).
Partition by_node_blocks(int num_nodes, int ndom);

/// Recursive coordinate bisection over node coordinates with optional integer
/// weights; splits the widest axis at the weighted median.
Partition rcb(const std::vector<std::array<double, 3>>& coords, int ndom,
              const std::vector<int>* weights = nullptr);

/// The paper's IMPROVED partitioning (Fig 8): contact groups are collapsed to
/// single weighted units (so all nodes of a group land in one domain), RCB
/// runs on the units at the weighted median (load balancing), and the result
/// is expanded back to nodes.
Partition rcb_contact_aware(const mesh::HexMesh& m, int ndom);

/// Number of contact groups whose nodes span more than one domain (the
/// edge-cut pathology of Table 3).
int split_contact_groups(const mesh::HexMesh& m, const Partition& p);

}  // namespace geofem::part
