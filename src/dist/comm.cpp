#include "dist/comm.hpp"

#include <chrono>
#include <exception>
#include <thread>

#include "core/status.hpp"
#include "obs/registry.hpp"
#include "util/check.hpp"

namespace geofem::dist {

void export_traffic(const TrafficStats& t, obs::Registry& reg) {
  reg.counter("comm.messages_sent")->add(t.messages_sent);
  reg.counter("comm.bytes_sent")->add(t.bytes_sent);
  reg.counter("comm.allreduces")->add(t.allreduces);
  reg.counter("comm.barriers")->add(t.barriers);
  reg.counter("comm.messages_dropped")->add(t.messages_dropped);
}

void Comm::send(int to, int tag, std::span<const double> data) {
  GEOFEM_CHECK(to >= 0 && to < size_, "send: bad destination rank");
  // Match injected faults first (counters live under the mailbox mutex).
  double delay = 0.0;
  bool drop = false;
  if (!rt_->faults_.empty()) {
    std::lock_guard<std::mutex> lock(rt_->mtx_);
    for (std::size_t f = 0; f < rt_->faults_.size(); ++f) {
      const Fault& ft = rt_->faults_[f];
      if ((ft.from != Fault::kAny && ft.from != rank_) ||
          (ft.to != Fault::kAny && ft.to != to) || (ft.tag != Fault::kAny && ft.tag != tag))
        continue;
      const int seen = rt_->fault_hits_[f]++;
      if (seen < ft.after_messages) continue;
      if (ft.delay_seconds > 0.0) {
        delay = std::max(delay, ft.delay_seconds);
      } else {
        drop = true;
      }
    }
  }
  if (drop) {
    ++traffic_.messages_dropped;
    return;
  }
  // A delayed link stalls the sender — delivery and everything the sender
  // does afterwards slip together, like a congested eager-protocol send.
  if (delay > 0.0) std::this_thread::sleep_for(std::chrono::duration<double>(delay));
  {
    std::lock_guard<std::mutex> lock(rt_->mtx_);
    rt_->mailbox_[static_cast<std::size_t>(to)][{rank_, tag}].queue.emplace_back(data.begin(),
                                                                                 data.end());
  }
  rt_->cv_.notify_all();
  ++traffic_.messages_sent;
  traffic_.bytes_sent += data.size() * sizeof(double);
}

std::vector<double> Comm::recv(int from, int tag) {
  GEOFEM_CHECK(from >= 0 && from < size_, "recv: bad source rank");
  std::unique_lock<std::mutex> lock(rt_->mtx_);
  auto& box = rt_->mailbox_[static_cast<std::size_t>(rank_)];
  const auto ready = [&] {
    auto it = box.find({from, tag});
    return it != box.end() && !it->second.queue.empty();
  };
  if (timeout_seconds_ <= 0.0) {
    rt_->cv_.wait(lock, ready);
  } else if (!rt_->cv_.wait_for(lock, std::chrono::duration<double>(timeout_seconds_), ready)) {
    throw Error(StatusCode::kCommTimeout, "recv on rank " + std::to_string(rank_) +
                                              " from rank " + std::to_string(from) +
                                              " tag " + std::to_string(tag) + " timed out");
  }
  auto& ch = box[{from, tag}];
  std::vector<double> msg = std::move(ch.queue.front());
  ch.queue.pop_front();
  return msg;
}

double Runtime::reduce(int rank, double value, bool is_max, double timeout_seconds) {
  std::unique_lock<std::mutex> lock(red_mtx_);
  const std::uint64_t my_gen = red_generation_;
  red_values_[static_cast<std::size_t>(rank)] = value;
  ++red_arrived_;
  if (red_arrived_ == size_) {
    // last arriver combines in deterministic rank order and releases
    double acc = red_values_[0];
    for (int r = 1; r < size_; ++r)
      acc = is_max ? std::max(acc, red_values_[static_cast<std::size_t>(r)])
                   : acc + red_values_[static_cast<std::size_t>(r)];
    red_result_ = acc;
    red_arrived_ = 0;
    ++red_generation_;
    red_cv_.notify_all();
    return acc;
  }
  const auto released = [&] { return red_generation_ != my_gen; };
  if (timeout_seconds <= 0.0) {
    red_cv_.wait(lock, released);
  } else if (!red_cv_.wait_for(lock, std::chrono::duration<double>(timeout_seconds), released)) {
    // Withdraw the contribution so a straggler arriving later cannot complete
    // a reduction this rank has already abandoned.
    --red_arrived_;
    throw Error(StatusCode::kCommTimeout,
                "allreduce on rank " + std::to_string(rank) + " timed out");
  }
  return red_result_;
}

double Comm::allreduce_sum(double value) {
  ++traffic_.allreduces;
  return rt_->reduce(rank_, value, false, timeout_seconds_);
}

std::vector<double> Comm::allreduce_sum(std::span<const double> data) {
  ++traffic_.allreduces;
  const std::size_t n = data.size();
  std::vector<double> all = gather(0, data);
  std::vector<double> sum;
  if (rank_ == 0) {
    GEOFEM_CHECK(all.size() == n * static_cast<std::size_t>(size_),
                 "allreduce_sum: ranks disagree on the vector length");
    sum.assign(n, 0.0);
    // Rank-ascending accumulation: the same order every run, every rank count
    // pairing, so the replicated result is deterministic down to the bits.
    for (int r = 0; r < size_; ++r) {
      const double* part = all.data() + static_cast<std::size_t>(r) * n;
      for (std::size_t i = 0; i < n; ++i) sum[i] += part[i];
    }
  }
  return broadcast(0, sum);
}

double Comm::allreduce_max(double value) {
  ++traffic_.allreduces;
  return rt_->reduce(rank_, value, true, timeout_seconds_);
}

PendingReduce Comm::iallreduce_sum(std::span<const double> data) {
  PendingReduce op;
  op.seq = next_ired_seq_++;  // lockstep: every rank posts in the same order
  op.len = data.size();
  op.posted = true;
  ++traffic_.allreduces;

  // Fault matching mirrors send(): a collective contribution is a message
  // from this rank with tag kIallreduceTag and no single destination, so only
  // faults with to == kAny can fire on it.
  double delay = 0.0;
  bool drop = false;
  if (!rt_->faults_.empty()) {
    std::lock_guard<std::mutex> lock(rt_->mtx_);
    for (std::size_t f = 0; f < rt_->faults_.size(); ++f) {
      const Fault& ft = rt_->faults_[f];
      if ((ft.from != Fault::kAny && ft.from != rank_) || ft.to != Fault::kAny ||
          (ft.tag != Fault::kAny && ft.tag != kIallreduceTag))
        continue;
      const int seen = rt_->fault_hits_[f]++;
      if (seen < ft.after_messages) continue;
      if (ft.delay_seconds > 0.0) {
        delay = std::max(delay, ft.delay_seconds);
      } else {
        drop = true;
      }
    }
  }
  if (drop) {
    // The contribution is lost: the reduction can never complete, on any
    // rank. The poster keeps its (live) handle — its own wait() times out
    // right alongside its peers', which is the no-hang contract the solver
    // relies on.
    ++traffic_.messages_dropped;
    return op;
  }
  if (delay > 0.0) std::this_thread::sleep_for(std::chrono::duration<double>(delay));

  {
    std::lock_guard<std::mutex> lock(rt_->ired_mtx_);
    Runtime::IRed& e = rt_->ireds_[op.seq];
    if (e.parts.empty()) e.parts.resize(static_cast<std::size_t>(size_));
    e.parts[static_cast<std::size_t>(rank_)].assign(data.begin(), data.end());
    if (++e.arrived == size_) {
      // Last arriver combines on the fixed-shape rank-ascending chain — the
      // exact shape of the blocking vector allreduce — so the replicated
      // result is bit-identical everywhere and to the blocking path.
      GEOFEM_CHECK(e.parts[0].size() == op.len,
                   "iallreduce_sum: ranks disagree on the vector length");
      e.result = e.parts[0];
      for (int r = 1; r < size_; ++r) {
        const auto& part = e.parts[static_cast<std::size_t>(r)];
        GEOFEM_CHECK(part.size() == op.len,
                     "iallreduce_sum: ranks disagree on the vector length");
        for (std::size_t i = 0; i < op.len; ++i) e.result[i] += part[i];
      }
      e.complete = true;
      rt_->ired_cv_.notify_all();
    }
  }
  return op;
}

void Comm::ired_retrieve(PendingReduce& op) {
  auto it = rt_->ireds_.find(op.seq);
  GEOFEM_CHECK(it != rt_->ireds_.end(), "iallreduce: handle retrieved twice");
  op.result = it->second.result;
  op.done = true;
  if (++it->second.retrieved == size_) rt_->ireds_.erase(it);
}

bool Comm::test(PendingReduce& op) {
  GEOFEM_CHECK(op.posted, "test on an unposted reduction handle");
  if (op.done) return true;
  std::lock_guard<std::mutex> lock(rt_->ired_mtx_);
  const auto it = rt_->ireds_.find(op.seq);
  if (it == rt_->ireds_.end() || !it->second.complete) return false;
  ired_retrieve(op);
  return true;
}

std::vector<double> Comm::wait(PendingReduce& op) {
  GEOFEM_CHECK(op.posted, "wait on an unposted reduction handle");
  if (op.done) return op.result;
  std::unique_lock<std::mutex> lock(rt_->ired_mtx_);
  const auto completed = [&] {
    const auto it = rt_->ireds_.find(op.seq);
    return it != rt_->ireds_.end() && it->second.complete;
  };
  if (timeout_seconds_ <= 0.0) {
    rt_->ired_cv_.wait(lock, completed);
  } else if (!rt_->ired_cv_.wait_for(lock, std::chrono::duration<double>(timeout_seconds_),
                                     completed)) {
    // No withdrawal (unlike the blocking rendezvous): this rank already
    // contributed, and a peer that has not timed out yet may still complete
    // and retrieve the reduction.
    throw Error(StatusCode::kCommTimeout,
                "iallreduce wait on rank " + std::to_string(rank_) + " timed out");
  }
  ired_retrieve(op);
  return op.result;
}

void Comm::barrier() {
  ++traffic_.barriers;
  rt_->reduce(rank_, 0.0, false, timeout_seconds_);
}

namespace {
constexpr int kBcastTag = -101;
constexpr int kGatherTag = -102;
}  // namespace

std::vector<double> Comm::broadcast(int root, std::span<const double> data) {
  GEOFEM_CHECK(root >= 0 && root < size_, "broadcast: bad root");
  if (rank_ == root) {
    for (int r = 0; r < size_; ++r)
      if (r != root) send(r, kBcastTag, data);
    return std::vector<double>(data.begin(), data.end());
  }
  return recv(root, kBcastTag);
}

std::vector<double> Comm::gather(int root, std::span<const double> data) {
  GEOFEM_CHECK(root >= 0 && root < size_, "gather: bad root");
  if (rank_ != root) {
    send(root, kGatherTag, data);
    return {};
  }
  std::vector<double> out;
  for (int r = 0; r < size_; ++r) {
    if (r == root) {
      out.insert(out.end(), data.begin(), data.end());
    } else {
      const auto part = recv(r, kGatherTag);
      out.insert(out.end(), part.begin(), part.end());
    }
  }
  return out;
}

std::vector<TrafficStats> Runtime::run(int nranks, const std::function<void(Comm&)>& body) {
  return run(nranks, FaultPlan{}, body);
}

std::vector<TrafficStats> Runtime::run(int nranks, const FaultPlan& faults,
                                       const std::function<void(Comm&)>& body) {
  GEOFEM_CHECK(nranks >= 1, "need >= 1 rank");
  Runtime rt;
  rt.size_ = nranks;
  rt.mailbox_.resize(static_cast<std::size_t>(nranks));
  rt.red_values_.assign(static_cast<std::size_t>(nranks), 0.0);
  rt.faults_ = faults.faults;
  rt.fault_hits_.assign(rt.faults_.size(), 0);

  std::vector<TrafficStats> stats(static_cast<std::size_t>(nranks));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(&rt, r, nranks);
      comm.set_timeout(faults.timeout_seconds);
      try {
        body(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
      stats[static_cast<std::size_t>(r)] = comm.traffic();
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors)
    if (e) std::rethrow_exception(e);
  return stats;
}

}  // namespace geofem::dist
