#pragma once

#include <functional>

#include "coarse/coarse.hpp"
#include "core/options.hpp"
#include "core/resilience.hpp"
#include "core/status.hpp"
#include "dist/comm.hpp"
#include "obs/registry.hpp"
#include "part/local_system.hpp"
#include "plan/cache.hpp"
#include "precond/preconditioner.hpp"
#include "solver/cg.hpp"

namespace geofem::dist {

/// Builds the localized preconditioner of one domain at the requested stored
/// precision. Receives the local system and its internal-by-internal
/// submatrix (external couplings zeroed — the "localized" part); closes over
/// whatever else it needs (e.g. global contact groups for SB-BIC(0)). The
/// precision argument is how the solver re-requests an fp64 build after an
/// fp32 attempt stagnates or breaks down — factories that only support fp64
/// may ignore it.
using PrecondFactory = std::function<precond::PreconditionerPtr(
    const part::LocalSystem&, const sparse::BlockCSR&, precond::Precision)>;

/// Shared solver knobs (cg, threads, overlap, plan_cache, resilience, coarse,
/// precision) come from core::SolveOptionsBase — the same base
/// core::SolveConfig embeds — so the serial and distributed entry points
/// cannot drift apart. Distributed-specific notes on the inherited fields:
///   * resilience — rungs are tried in order: `fallback_factory` (when set),
///     then the built-in localized block diagonal, up to
///     resilience.max_fallbacks rebuilds, CG restarting warm after each.
///     resilience.chain (a PrecondKind list) is not consulted: this solver
///     builds preconditioners through factories, not kinds. All fallback
///     decisions derive from allreduced quantities (lockstep).
///   * cg.variant — communication-hiding CG variant. kClassic keeps the three
///     blocking allreduces per iteration; kGropp/kPipelined post split-phase
///     reductions (Comm::iallreduce_sum) that complete behind the
///     preconditioner application and SpMV. Breakdown/stagnation in a
///     non-classic variant retries with kClassic on the same preconditioner
///     (warm restart, lockstep) before any precision/preconditioner fallback.
///   * plan_cache — only snapshotted into DistResult::plan_cache; pass the
///     cache given to make_plan_factory (one plan per rank).
///   * precision — forwarded to the PrecondFactory; an fp32 attempt that
///     stagnates/breaks down is rebuilt at fp64 on every rank together
///     (allreduced decision), restarting cold so the recovery's residual
///     history is bit-identical to a direct fp64 run.
struct DistOptions : core::SolveOptionsBase {
  /// Collect per-rank telemetry registries and gather them to rank 0
  /// (DistResult::obs_per_rank / obs_merged). Coarse-grained — spans wrap
  /// set-up and the whole solve, not individual iterations.
  bool telemetry = true;
  PrecondFactory fallback_factory;
  /// Injected communication faults plus the blocking-operation deadline that
  /// turns a lost message into geofem::Error(kCommTimeout) — surfaced as
  /// SolveStatus::kCommTimeout on every rank — instead of a hang.
  FaultPlan faults;
  /// Contact groups in GLOBAL node ids, consulted when
  /// coarse.aggregates == kPerContactGroup (groups of >= 2 nodes each get
  /// their own aggregate on top of the per-domain base).
  std::vector<std::vector<int>> coarse_groups;
};

struct DistResult {
  /// Outcome of the run: rank 0's status, except that any rank timing out
  /// makes the whole result kCommTimeout. On kCommTimeout, `iterations`,
  /// `relative_residual` and `residual_history` reflect rank 0's progress up
  /// to the deadline (relative_residual is NaN when the timeout struck before
  /// the first residual norm).
  SolveStatus status = SolveStatus::kMaxIterations;
  std::vector<SolveStatus> status_per_rank;
  /// CG iterations burnt in failed attempts before the fallback rebuild
  /// (zero for a direct solve).
  int fallback_iterations = 0;
  /// fp32 attempts re-set-up at fp64 after stagnation/breakdown (0 or 1;
  /// identical on every rank — the decision is allreduced).
  int precision_fallbacks = 0;
  /// Gropp/pipelined attempts that broke down or stagnated and were retried
  /// with the classic loop on the same preconditioner (warm restart; identical
  /// on every rank — the decision derives from allreduced scalars). This rung
  /// sits BEFORE the precision and preconditioner fallbacks: a delicate
  /// reordered-arithmetic variant must not trigger an expensive rebuild when
  /// the reference arithmetic would have converged.
  int variant_fallbacks = 0;
  int iterations = 0;
  double relative_residual = 0.0;
  /// Relative residual per iteration across all attempts (identical on every
  /// rank — recorded when DistOptions::cg.record_residuals).
  std::vector<double> residual_history;
  double solve_seconds = 0.0;       ///< wall clock of the whole parallel solve
  double setup_seconds_max = 0.0;   ///< slowest rank's preconditioner set-up
  std::vector<util::FlopCounter> flops_per_rank;
  std::vector<util::LoopStats> loops_per_rank;
  std::vector<TrafficStats> traffic_per_rank;
  std::vector<std::size_t> precond_bytes_per_rank;
  /// Telemetry (empty when DistOptions::telemetry is off): every rank's
  /// registry snapshot, serialized through Comm::gather to rank 0, and the
  /// min/max/mean merge — the paper's per-PE load-imbalance view (Fig 29).
  std::vector<obs::Snapshot> obs_per_rank;
  obs::MergedReport obs_merged;
  /// Snapshot of DistOptions::plan_cache after the run (zero when unset).
  plan::CacheStats plan_cache;
  /// Two-level coarse correction outcome (kOff unless DistOptions::coarse
  /// .enabled; identical on every rank — the degrade decision is allreduced).
  coarse::SetupStatus coarse_status = coarse::SetupStatus::kOff;
  int coarse_dim = 0;  ///< coarse DOFs (3 per aggregate) when active

  [[nodiscard]] bool converged() const { return ok(status); }

  [[nodiscard]] util::FlopCounter total_flops() const {
    util::FlopCounter t;
    for (const auto& f : flops_per_rank) t += f;
    return t;
  }
};

/// Parallel preconditioned CG over GeoFEM local systems: halo exchange on the
/// communication tables before each matvec, purely local preconditioning,
/// allreduce dot products (paper §2).  One simulated-MPI rank per domain.
/// If `x_global` is non-null it receives the assembled solution (size = total
/// DOF) on exit.
DistResult solve_distributed(const std::vector<part::LocalSystem>& systems,
                             const PrecondFactory& factory, const DistOptions& opt = {},
                             std::vector<double>* x_global = nullptr);

/// Batched distributed entry (DESIGN.md §5k): k right-hand-side columns on
/// one partition, one DistResult per column. `rhs[c][r]` replaces
/// systems[r].b for column c (same size, num_internal * 3); the systems'
/// own b vectors are restored before returning. If `x_global` is non-null it
/// receives one assembled global solution per column.
///
/// Column 0 runs exactly as solve_distributed on the same inputs —
/// batch-of-1 is bit-identical by construction. k > 1 currently solves the
/// columns sequentially through the single-RHS driver (each column keeps the
/// full resilience/variant/precision ladder); a multi-vector halo exchange
/// that shares one communication round across columns is the natural
/// follow-up behind this same API.
std::vector<DistResult> solve_distributed_batched(
    std::vector<part::LocalSystem>& systems, const PrecondFactory& factory,
    const std::vector<std::vector<std::vector<double>>>& rhs, const DistOptions& opt = {},
    std::vector<std::vector<double>>* x_global = nullptr);

/// Plan-cached localized preconditioner factory: restricts `global_groups` to
/// the rank's internal nodes, fetches the rank's plan from `cache` (distinct
/// local graphs hash to distinct keys, so ranks never share a plan), and
/// refactors numerically. Repeated solve_distributed() calls on the same
/// partition hit the cache on every rank. Natural ordering only.
[[nodiscard]] PrecondFactory make_plan_factory(plan::PlanCache& cache, plan::PlanConfig cfg,
                                               std::vector<std::vector<int>> global_groups);

}  // namespace geofem::dist
