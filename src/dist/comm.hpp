#pragma once

#include <climits>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <span>
#include <vector>

namespace geofem::obs {
class Registry;
}  // namespace geofem::obs

namespace geofem::dist {

/// Per-rank traffic accounting, consumed by the Earth Simulator performance
/// model (message latency vs bandwidth decomposition, Fig 20).
struct TrafficStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t allreduces = 0;
  std::uint64_t barriers = 0;
  std::uint64_t messages_dropped = 0;  ///< swallowed by an injected fault
};

/// One injected communication fault, matched against sends. Wildcards use
/// kAny (INT_MIN — collective tags are negative, so -1 would be ambiguous).
/// A matching message beyond `after_messages` is dropped (delay_seconds == 0)
/// or its sender is stalled for delay_seconds before delivery (a congested
/// link). Counting is per fault entry, across all matching (from, to) pairs.
struct Fault {
  static constexpr int kAny = INT_MIN;
  int from = kAny;            ///< sender rank
  int to = kAny;              ///< receiver rank
  int tag = kAny;             ///< message tag (halo, broadcast, gather, ...)
  int after_messages = 0;     ///< matching messages delivered before it fires
  double delay_seconds = 0.0; ///< 0 = drop; > 0 = delay delivery
};

/// Faults plus the deadline that turns them into errors instead of hangs:
/// with timeout_seconds > 0 every blocking operation (recv, allreduce,
/// barrier, broadcast, gather) throws geofem::Error(kCommTimeout) once it has
/// waited that long. 0 waits forever (the default, faithful to MPI).
struct FaultPlan {
  std::vector<Fault> faults;
  double timeout_seconds = 0.0;
};

/// Feed the traffic counters into a telemetry registry as
/// comm.{messages_sent,bytes_sent,allreduces,barriers}.
void export_traffic(const TrafficStats& t, obs::Registry& reg);

class Runtime;

/// Rank-local handle of the in-process message-passing runtime. Provides the
/// MPI-shaped operations the GeoFEM solvers need: tagged point-to-point
/// send/recv (FIFO per (source, tag) channel), allreduce and barrier.
///
/// This substitutes for MPI on machines without it: the code path (halo
/// exchange over communication tables, local preconditioning, global
/// reductions) is identical; only the transport is process-local.
class Comm {
 public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return size_; }

  /// Asynchronous send (buffered, never blocks).
  void send(int to, int tag, std::span<const double> data);

  /// Blocking receive of the next message on channel (from, tag).
  std::vector<double> recv(int from, int tag);

  /// Global sum; all ranks must call; result identical on all ranks
  /// (deterministic rank-ascending summation order).
  double allreduce_sum(double value);

  /// Element-wise global sum of a vector (all ranks pass the same length).
  /// Implemented as gather(0) + rank-ascending summation + broadcast(0), so
  /// the result is bit-identical on every rank and independent of thread
  /// scheduling — the coarse Galerkin operator relies on this.
  std::vector<double> allreduce_sum(std::span<const double> data);

  /// Global max (same contract).
  double allreduce_max(double value);

  void barrier();

  /// Root's vector is returned on every rank (all ranks must call with the
  /// same root).
  std::vector<double> broadcast(int root, std::span<const double> data);

  /// Rank `root` receives the concatenation of all ranks' vectors in rank
  /// order; other ranks receive an empty vector.
  std::vector<double> gather(int root, std::span<const double> data);

  [[nodiscard]] const TrafficStats& traffic() const { return traffic_; }

  /// Rank-local deadline for blocking operations; overrides the FaultPlan
  /// default. 0 waits forever.
  void set_timeout(double seconds) { timeout_seconds_ = seconds; }
  [[nodiscard]] double timeout() const { return timeout_seconds_; }

 private:
  friend class Runtime;
  Comm(Runtime* rt, int rank, int size) : rt_(rt), rank_(rank), size_(size) {}

  Runtime* rt_;
  int rank_;
  int size_;
  TrafficStats traffic_;
  double timeout_seconds_ = 0.0;
};

/// Spawns one std::thread per rank, runs `body`, joins. Exceptions thrown by
/// any rank are captured and rethrown (first rank wins). Collects the final
/// traffic statistics of every rank.
class Runtime {
 public:
  static std::vector<TrafficStats> run(int nranks, const std::function<void(Comm&)>& body);

  /// As above, with fault injection: every rank starts with the plan's
  /// timeout, and sends are matched against the plan's faults.
  static std::vector<TrafficStats> run(int nranks, const FaultPlan& faults,
                                       const std::function<void(Comm&)>& body);

 private:
  friend class Comm;

  struct Channel {
    std::deque<std::vector<double>> queue;
  };

  std::mutex mtx_;
  std::condition_variable cv_;
  // mailbox[to] keyed by (from, tag)
  std::vector<std::map<std::pair<int, int>, Channel>> mailbox_;

  // fault injection (read-only after run() starts; hit counters under mtx_)
  std::vector<Fault> faults_;
  std::vector<int> fault_hits_;

  // reduction state (generation-counted so back-to-back reductions work)
  std::mutex red_mtx_;
  std::condition_variable red_cv_;
  int red_arrived_ = 0;
  std::uint64_t red_generation_ = 0;
  std::vector<double> red_values_;
  double red_result_ = 0.0;

  int size_ = 0;

  double reduce(int rank, double value, bool is_max, double timeout_seconds);
};

}  // namespace geofem::dist
