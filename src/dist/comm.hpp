#pragma once

#include <climits>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <span>
#include <vector>

namespace geofem::obs {
class Registry;
}  // namespace geofem::obs

namespace geofem::dist {

/// Per-rank traffic accounting, consumed by the Earth Simulator performance
/// model (message latency vs bandwidth decomposition, Fig 20).
struct TrafficStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t allreduces = 0;
  std::uint64_t barriers = 0;
  std::uint64_t messages_dropped = 0;  ///< swallowed by an injected fault
};

/// One injected communication fault, matched against sends. Wildcards use
/// kAny (INT_MIN — collective tags are negative, so -1 would be ambiguous).
/// A matching message beyond `after_messages` is dropped (delay_seconds == 0)
/// or its sender is stalled for delay_seconds before delivery (a congested
/// link). Counting is per fault entry, across all matching (from, to) pairs.
struct Fault {
  static constexpr int kAny = INT_MIN;
  int from = kAny;            ///< sender rank
  int to = kAny;              ///< receiver rank
  int tag = kAny;             ///< message tag (halo, broadcast, gather, ...)
  int after_messages = 0;     ///< matching messages delivered before it fires
  double delay_seconds = 0.0; ///< 0 = drop; > 0 = delay delivery
};

/// Faults plus the deadline that turns them into errors instead of hangs:
/// with timeout_seconds > 0 every blocking operation (recv, allreduce,
/// barrier, broadcast, gather) throws geofem::Error(kCommTimeout) once it has
/// waited that long. 0 waits forever (the default, faithful to MPI).
struct FaultPlan {
  std::vector<Fault> faults;
  double timeout_seconds = 0.0;
};

/// Feed the traffic counters into a telemetry registry as
/// comm.{messages_sent,bytes_sent,allreduces,barriers}.
void export_traffic(const TrafficStats& t, obs::Registry& reg);

class Runtime;

/// Handle of one split-phase (nonblocking) allreduce: returned by
/// Comm::iallreduce_sum, polled with Comm::test, finished with Comm::wait.
/// The communication-hiding CG variants post the dot-product reduction, run
/// the SpMV / preconditioner application the reduction would otherwise
/// serialize against, and only then wait. Handles are rank-local; the
/// matching across ranks is by collective sequence number, so every rank must
/// post its split-phase reductions in the same order (the usual MPI
/// nonblocking-collective contract).
struct PendingReduce {
  std::uint64_t seq = 0;       ///< collective sequence number (lockstep)
  std::size_t len = 0;         ///< payload length (all ranks must agree)
  bool posted = false;         ///< live handle (consumed by wait / test)
  bool done = false;           ///< result retrieved and cached below
  std::vector<double> result;  ///< valid once done
};

/// Rank-local handle of the in-process message-passing runtime. Provides the
/// MPI-shaped operations the GeoFEM solvers need: tagged point-to-point
/// send/recv (FIFO per (source, tag) channel), allreduce and barrier.
///
/// This substitutes for MPI on machines without it: the code path (halo
/// exchange over communication tables, local preconditioning, global
/// reductions) is identical; only the transport is process-local.
class Comm {
 public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return size_; }

  /// Asynchronous send (buffered, never blocks).
  void send(int to, int tag, std::span<const double> data);

  /// Blocking receive of the next message on channel (from, tag).
  std::vector<double> recv(int from, int tag);

  /// Global sum; all ranks must call; result identical on all ranks
  /// (deterministic rank-ascending summation order).
  double allreduce_sum(double value);

  /// Element-wise global sum of a vector (all ranks pass the same length).
  /// Implemented as gather(0) + rank-ascending summation + broadcast(0), so
  /// the result is bit-identical on every rank and independent of thread
  /// scheduling — the coarse Galerkin operator relies on this.
  std::vector<double> allreduce_sum(std::span<const double> data);

  /// Global max (same contract).
  double allreduce_max(double value);

  /// Collective tag of split-phase reductions: fault injection matches a
  /// rank's iallreduce contribution against Fault entries whose `tag` is this
  /// value (or kAny) and whose `to` is kAny — a collective has no single
  /// destination, so destination-targeted faults never fire on it. A dropped
  /// contribution starves the reduction on every rank: with a timeout set the
  /// whole team surfaces kCommTimeout instead of hanging.
  static constexpr int kIallreduceTag = -103;

  /// Post a split-phase element-wise global sum (all ranks pass the same
  /// length, in the same collective order). Never blocks; a delay fault
  /// stalls the poster like a congested send. The eventual result is combined
  /// on the same fixed-shape rank-ascending chain as the blocking
  /// allreduce_sum, so for identical inputs the two are bit-identical on
  /// every rank — which is what keeps the pipelined CG variants deterministic
  /// across team sizes and overlap settings.
  [[nodiscard]] PendingReduce iallreduce_sum(std::span<const double> data);

  /// Nonblocking progress poll: true once the reduction completed (op.result
  /// filled). Safe to call repeatedly; after completion it keeps returning
  /// true from the cached result.
  bool test(PendingReduce& op);

  /// Block until the reduction completes and return its result (also cached
  /// in op.result). Honors the rank's blocking-operation deadline: throws
  /// geofem::Error(kCommTimeout) once it has waited timeout() seconds.
  std::vector<double> wait(PendingReduce& op);

  void barrier();

  /// Root's vector is returned on every rank (all ranks must call with the
  /// same root).
  std::vector<double> broadcast(int root, std::span<const double> data);

  /// Rank `root` receives the concatenation of all ranks' vectors in rank
  /// order; other ranks receive an empty vector.
  std::vector<double> gather(int root, std::span<const double> data);

  [[nodiscard]] const TrafficStats& traffic() const { return traffic_; }

  /// Rank-local deadline for blocking operations; overrides the FaultPlan
  /// default. 0 waits forever.
  void set_timeout(double seconds) { timeout_seconds_ = seconds; }
  [[nodiscard]] double timeout() const { return timeout_seconds_; }

 private:
  friend class Runtime;
  Comm(Runtime* rt, int rank, int size) : rt_(rt), rank_(rank), size_(size) {}

  /// Retrieve a completed split-phase result into `op` (caller holds the
  /// reduction mutex); erases the shared entry once every rank retrieved.
  void ired_retrieve(PendingReduce& op);

  Runtime* rt_;
  int rank_;
  int size_;
  TrafficStats traffic_;
  double timeout_seconds_ = 0.0;
  std::uint64_t next_ired_seq_ = 0;  ///< split-phase collective sequence
};

/// Spawns one std::thread per rank, runs `body`, joins. Exceptions thrown by
/// any rank are captured and rethrown (first rank wins). Collects the final
/// traffic statistics of every rank.
class Runtime {
 public:
  static std::vector<TrafficStats> run(int nranks, const std::function<void(Comm&)>& body);

  /// As above, with fault injection: every rank starts with the plan's
  /// timeout, and sends are matched against the plan's faults.
  static std::vector<TrafficStats> run(int nranks, const FaultPlan& faults,
                                       const std::function<void(Comm&)>& body);

 private:
  friend class Comm;

  struct Channel {
    std::deque<std::vector<double>> queue;
  };

  std::mutex mtx_;
  std::condition_variable cv_;
  // mailbox[to] keyed by (from, tag)
  std::vector<std::map<std::pair<int, int>, Channel>> mailbox_;

  // fault injection (read-only after run() starts; hit counters under mtx_)
  std::vector<Fault> faults_;
  std::vector<int> fault_hits_;

  // reduction state (generation-counted so back-to-back reductions work)
  std::mutex red_mtx_;
  std::condition_variable red_cv_;
  int red_arrived_ = 0;
  std::uint64_t red_generation_ = 0;
  std::vector<double> red_values_;
  double red_result_ = 0.0;

  // split-phase reduction state: one entry per outstanding collective
  // sequence number, independent of the blocking rendezvous above so a
  // blocking collective (coarse-level allreduce, halo barrier) can run while
  // a split-phase reduction is still in flight.
  struct IRed {
    std::vector<std::vector<double>> parts;  ///< per-rank contributions
    int arrived = 0;
    int retrieved = 0;
    bool complete = false;
    std::vector<double> result;  ///< rank-ascending combination
  };
  std::mutex ired_mtx_;
  std::condition_variable ired_cv_;
  std::map<std::uint64_t, IRed> ireds_;

  int size_ = 0;

  double reduce(int rank, double value, bool is_max, double timeout_seconds);
};

}  // namespace geofem::dist
