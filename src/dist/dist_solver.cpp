#include "dist/dist_solver.hpp"

#include <atomic>
#include <cmath>

#include "obs/span.hpp"
#include "plan/plan.hpp"
#include "sparse/vector_ops.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace geofem::dist {

namespace {

constexpr int kHaloTag = 7;

/// Exchange boundary values of `v` (full local vector) into the external
/// slots of the neighbours, per the GeoFEM communication tables (Fig 4).
void halo_exchange(Comm& comm, const part::LocalSystem& ls, std::vector<double>& v,
                   std::vector<double>& sendbuf) {
  for (const auto& link : ls.links) {
    sendbuf.clear();
    for (int l : link.send_local)
      for (int c = 0; c < 3; ++c)
        sendbuf.push_back(v[static_cast<std::size_t>(l) * 3 + static_cast<std::size_t>(c)]);
    comm.send(link.domain, kHaloTag, sendbuf);
  }
  for (const auto& link : ls.links) {
    const std::vector<double> msg = comm.recv(link.domain, kHaloTag);
    GEOFEM_CHECK(msg.size() == link.recv_local.size() * 3, "halo message size mismatch");
    for (std::size_t t = 0; t < link.recv_local.size(); ++t)
      for (int c = 0; c < 3; ++c)
        v[static_cast<std::size_t>(link.recv_local[t]) * 3 + static_cast<std::size_t>(c)] =
            msg[t * 3 + static_cast<std::size_t>(c)];
  }
}

/// y (internal rows) = A_local * v (all local columns).
void local_spmv(const part::LocalSystem& ls, const std::vector<double>& v,
                std::vector<double>& y, util::FlopCounter* fc) {
  const auto& a = ls.a;
  std::uint64_t blocks = 0;
  for (int i = 0; i < ls.num_internal; ++i) {
    double acc[3] = {0, 0, 0};
    for (int e = a.rowptr[i]; e < a.rowptr[i + 1]; ++e) {
      sparse::b3_gemv(a.block(e), v.data() + static_cast<std::size_t>(a.colind[e]) * 3, acc);
      ++blocks;
    }
    y[static_cast<std::size_t>(i) * 3] = acc[0];
    y[static_cast<std::size_t>(i) * 3 + 1] = acc[1];
    y[static_cast<std::size_t>(i) * 3 + 2] = acc[2];
  }
  if (fc) fc->spmv += 2ULL * sparse::kBB * blocks;
}

}  // namespace

DistResult solve_distributed(const std::vector<part::LocalSystem>& systems,
                             const PrecondFactory& factory, const DistOptions& opt,
                             std::vector<double>* x_global) {
  const int ndom = static_cast<int>(systems.size());
  GEOFEM_CHECK(ndom >= 1, "no local systems");

  DistResult res;
  res.flops_per_rank.resize(static_cast<std::size_t>(ndom));
  res.loops_per_rank.resize(static_cast<std::size_t>(ndom));
  res.precond_bytes_per_rank.assign(static_cast<std::size_t>(ndom), 0);
  std::vector<double> setup_seconds(static_cast<std::size_t>(ndom), 0.0);
  std::vector<int> iters(static_cast<std::size_t>(ndom), 0);
  std::vector<double> relres(static_cast<std::size_t>(ndom), 0.0);

  if (x_global) {
    std::size_t total = 0;
    for (const auto& ls : systems) total += static_cast<std::size_t>(ls.num_internal) * 3;
    x_global->assign(total, 0.0);
  }

  util::Timer wall;
  res.traffic_per_rank = Runtime::run(ndom, [&](Comm& comm) {
    const part::LocalSystem& ls = systems[static_cast<std::size_t>(comm.rank())];
    auto* fc = &res.flops_per_rank[static_cast<std::size_t>(comm.rank())];
    auto* lp = &res.loops_per_rank[static_cast<std::size_t>(comm.rank())];
    const std::size_t ni = static_cast<std::size_t>(ls.num_internal) * 3;
    const std::size_t nl = static_cast<std::size_t>(ls.num_local()) * 3;

    // Per-rank telemetry: each rank owns a registry for the duration of the
    // solve; snapshots are gathered to rank 0 below. Attaching it also routes
    // the factory's preconditioner set-up spans here.
    obs::Registry rank_reg;
    obs::Attach attach(opt.telemetry ? &rank_reg : nullptr);
    if (opt.telemetry) {
      rank_reg.set_meta("rank", static_cast<double>(comm.rank()));
      rank_reg.set_meta("internal_dof", static_cast<double>(ni));
      rank_reg.set_meta("local_dof", static_cast<double>(nl));
    }

    // localized preconditioner on the internal submatrix (aii must outlive
    // prec: preconditioners keep a reference to their matrix)
    util::Timer setup;
    const sparse::BlockCSR aii = ls.internal_matrix();
    precond::PreconditionerPtr prec;
    {
      obs::ScopedSpan setup_span("dist.setup");
      prec = factory(ls, aii);
    }
    setup_seconds[static_cast<std::size_t>(comm.rank())] = setup.seconds();
    res.precond_bytes_per_rank[static_cast<std::size_t>(comm.rank())] = prec->memory_bytes();
    const std::size_t solve_span =
        opt.telemetry ? rank_reg.span_begin("dist.solve") : std::size_t{0};
    util::Timer solve_timer;

    std::vector<double> x(nl, 0.0), p(nl, 0.0), sendbuf;
    std::vector<double> r(ni), z(ni), q(ni);

    // r = b (zero initial guess)
    for (std::size_t i = 0; i < ni; ++i) r[i] = ls.b[i];
    const double bnorm =
        std::sqrt(comm.allreduce_sum(sparse::dot(std::span(ls.b), std::span(ls.b), fc)));
    GEOFEM_CHECK(bnorm > 0.0, "distributed pcg: zero rhs");
    double rnorm = bnorm;

    double rho_prev = 0.0;
    int it = 0;
    while (it < opt.max_iterations && rnorm / bnorm > opt.tolerance) {
      prec->apply(r, z, fc, lp);
      const double rho = comm.allreduce_sum(sparse::dot(std::span(r), std::span(z), fc));
      if (it == 0) {
        for (std::size_t i = 0; i < ni; ++i) p[i] = z[i];
      } else {
        const double beta = rho / rho_prev;
        for (std::size_t i = 0; i < ni; ++i) p[i] = z[i] + beta * p[i];
        fc->blas1 += 2 * ni;
      }
      rho_prev = rho;

      halo_exchange(comm, ls, p, sendbuf);
      local_spmv(ls, p, q, fc);
      const double pq = comm.allreduce_sum(
          sparse::dot(std::span(p).first(ni), std::span(q), fc));
      const double alpha = rho / pq;
      for (std::size_t i = 0; i < ni; ++i) {
        x[i] += alpha * p[i];
        r[i] -= alpha * q[i];
      }
      fc->blas1 += 4 * ni;
      rnorm = std::sqrt(comm.allreduce_sum(sparse::dot(std::span(r), std::span(r), fc)));
      ++it;
    }
    iters[static_cast<std::size_t>(comm.rank())] = it;
    relres[static_cast<std::size_t>(comm.rank())] = rnorm / bnorm;

    if (opt.telemetry) {
      rank_reg.span_end(solve_span);
      rank_reg.counter("dist.iterations")->add(static_cast<std::uint64_t>(it));
      rank_reg.gauge("dist.setup_seconds")
          ->set(setup_seconds[static_cast<std::size_t>(comm.rank())]);
      rank_reg.gauge("dist.solve_seconds")->set(solve_timer.seconds());
      rank_reg.gauge("dist.precond_bytes")->set(static_cast<double>(prec->memory_bytes()));
      rank_reg.absorb("dist", *fc);
      rank_reg.absorb("dist", *lp);
      // traffic up to this point; the telemetry gather itself is not counted
      export_traffic(comm.traffic(), rank_reg);
      const std::vector<double> blob = encode(rank_reg.snapshot());
      const std::vector<double> gathered = comm.gather(0, blob);
      if (comm.rank() == 0) {
        res.obs_per_rank = obs::decode_all(gathered);
        res.obs_merged = obs::aggregate(res.obs_per_rank);
      }
    }

    if (x_global) {
      for (int l = 0; l < ls.num_internal; ++l) {
        const int g = ls.global_of_local[static_cast<std::size_t>(l)];
        for (int c = 0; c < 3; ++c)
          (*x_global)[static_cast<std::size_t>(g) * 3 + static_cast<std::size_t>(c)] =
              x[static_cast<std::size_t>(l) * 3 + static_cast<std::size_t>(c)];
      }
    }
  });
  res.solve_seconds = wall.seconds();
  if (opt.plan_cache) res.plan_cache = opt.plan_cache->stats();

  res.iterations = iters[0];
  res.relative_residual = relres[0];
  res.converged = res.relative_residual <= opt.tolerance;
  for (double s : setup_seconds) res.setup_seconds_max = std::max(res.setup_seconds_max, s);
  return res;
}

PrecondFactory make_plan_factory(plan::PlanCache& cache, plan::PlanConfig cfg,
                                 std::vector<std::vector<int>> global_groups) {
  GEOFEM_CHECK(cfg.ordering == plan::OrderingKind::kNatural,
               "make_plan_factory supports the natural ordering only");
  return [&cache, cfg, groups = std::move(global_groups)](
             const part::LocalSystem& ls, const sparse::BlockCSR& aii) {
    const auto sn = contact::build_supernodes(aii.n, ls.local_contact_groups(groups));
    return std::make_unique<plan::PlannedPreconditioner>(cache.get(aii, sn, cfg), aii);
  };
}

}  // namespace geofem::dist
