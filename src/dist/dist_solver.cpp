#include "dist/dist_solver.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "obs/span.hpp"
#include "par/par.hpp"
#include "plan/plan.hpp"
#include "precond/diagonal.hpp"
#include "simd/block3.hpp"
#include "sparse/vector_ops.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace geofem::dist {

namespace {

constexpr int kHaloTag = 7;

/// First half of the halo exchange: post this rank's boundary values to every
/// neighbour. Sends complete on return (buffered), so computation can proceed
/// while the messages are delivered.
void halo_post_sends(Comm& comm, const part::LocalSystem& ls, const std::vector<double>& v,
                     std::vector<double>& sendbuf) {
  for (const auto& link : ls.links) {
    sendbuf.clear();
    for (int l : link.send_local)
      for (int c = 0; c < 3; ++c)
        sendbuf.push_back(v[static_cast<std::size_t>(l) * 3 + static_cast<std::size_t>(c)]);
    comm.send(link.domain, kHaloTag, sendbuf);
  }
}

/// Second half: receive every neighbour's boundary values into the external
/// slots of `v` (paper Fig 4 communication tables).
void halo_complete(Comm& comm, const part::LocalSystem& ls, std::vector<double>& v) {
  for (const auto& link : ls.links) {
    const std::vector<double> msg = comm.recv(link.domain, kHaloTag);
    GEOFEM_CHECK(msg.size() == link.recv_local.size() * 3, "halo message size mismatch");
    for (std::size_t t = 0; t < link.recv_local.size(); ++t)
      for (int c = 0; c < 3; ++c)
        v[static_cast<std::size_t>(link.recv_local[t]) * 3 + static_cast<std::size_t>(c)] =
            msg[t * 3 + static_cast<std::size_t>(c)];
  }
}

/// Blocking halo exchange (the non-overlapped matvec path). The per-link
/// message sequence is identical to the overlapped path: send all, recv all.
void halo_exchange(Comm& comm, const part::LocalSystem& ls, std::vector<double>& v,
                   std::vector<double>& sendbuf) {
  halo_post_sends(comm, ls, v, sendbuf);
  halo_complete(comm, ls, v);
}

/// y[rows] = A_local[rows] * v with accumulator kernel `Acc`. Rows write
/// disjoint y blocks and keep the serial per-row accumulation order
/// (bit-identical for any team size). Using the same micro-kernel family as
/// BlockCSR::spmv keeps the per-row arithmetic identical to the serial
/// solver's, so the 1-domain distributed run stays bit-identical to it in
/// every SIMD configuration.
template <class Acc>
void spmv_rows_impl(const part::LocalSystem& ls, const std::vector<int>& rows,
                    const std::vector<double>& v, std::vector<double>& y) {
  const auto& a = ls.a;
  const int team = par::threads();
  const std::ptrdiff_t m = static_cast<std::ptrdiff_t>(rows.size());
#pragma omp parallel for schedule(static) num_threads(team) if (team > 1)
  for (std::ptrdiff_t t = 0; t < m; ++t) {
    const int i = rows[static_cast<std::size_t>(t)];
    Acc acc;
    acc.init_zero();
    for (int e = a.rowptr[i]; e < a.rowptr[i + 1]; ++e)
      acc.madd(a.block(e), v.data() + static_cast<std::size_t>(a.colind[e]) * 3);
    acc.reduce(&y[static_cast<std::size_t>(i) * 3]);
  }
}

void spmv_rows(const part::LocalSystem& ls, const std::vector<int>& rows,
               const std::vector<double>& v, std::vector<double>& y) {
#if GEOFEM_SIMD_HAS_AVX2
  if (simd::active() == simd::Isa::kAvx2) {
    spmv_rows_impl<simd::AvxAcc3>(ls, rows, v, y);
    return;
  }
#endif
  spmv_rows_impl<simd::ScalarAcc3>(ls, rows, v, y);
}

/// y (internal rows) = A_local * v (all local columns).
template <class Acc>
void local_spmv_impl(const part::LocalSystem& ls, const std::vector<double>& v,
                     std::vector<double>& y) {
  const auto& a = ls.a;
  const int team = par::threads();
#pragma omp parallel for schedule(static) num_threads(team) if (team > 1)
  for (int i = 0; i < ls.num_internal; ++i) {
    Acc acc;
    acc.init_zero();
    for (int e = a.rowptr[i]; e < a.rowptr[i + 1]; ++e)
      acc.madd(a.block(e), v.data() + static_cast<std::size_t>(a.colind[e]) * 3);
    acc.reduce(&y[static_cast<std::size_t>(i) * 3]);
  }
}

void local_spmv(const part::LocalSystem& ls, const std::vector<double>& v,
                std::vector<double>& y, util::FlopCounter* fc) {
#if GEOFEM_SIMD_HAS_AVX2
  if (simd::active() == simd::Isa::kAvx2) {
    local_spmv_impl<simd::AvxAcc3>(ls, v, y);
  } else
#endif
  {
    local_spmv_impl<simd::ScalarAcc3>(ls, v, y);
  }
  // Internal rows are 0..num_internal-1, so the block count is structural.
  if (fc) fc->spmv += 2ULL * sparse::kBB * static_cast<std::uint64_t>(ls.a.rowptr[ls.num_internal]);
}

}  // namespace

DistResult solve_distributed(const std::vector<part::LocalSystem>& systems,
                             const PrecondFactory& factory, const DistOptions& opt,
                             std::vector<double>* x_global) {
  const int ndom = static_cast<int>(systems.size());
  GEOFEM_CHECK(ndom >= 1, "no local systems");

  DistResult res;
  res.flops_per_rank.resize(static_cast<std::size_t>(ndom));
  res.loops_per_rank.resize(static_cast<std::size_t>(ndom));
  res.precond_bytes_per_rank.assign(static_cast<std::size_t>(ndom), 0);
  std::vector<double> setup_seconds(static_cast<std::size_t>(ndom), 0.0);
  std::vector<int> iters(static_cast<std::size_t>(ndom), 0);
  std::vector<int> burnt_iters(static_cast<std::size_t>(ndom), 0);
  std::vector<double> relres(static_cast<std::size_t>(ndom), 0.0);
  std::vector<SolveStatus> statuses(static_cast<std::size_t>(ndom), SolveStatus::kMaxIterations);
  std::vector<int> pfell(static_cast<std::size_t>(ndom), 0);
  std::vector<int> vfell(static_cast<std::size_t>(ndom), 0);
  std::vector<coarse::SetupStatus> cstats(static_cast<std::size_t>(ndom),
                                          coarse::SetupStatus::kOff);
  std::vector<int> cdims(static_cast<std::size_t>(ndom), 0);

  // Two-level set-up, structural half: the aggregate map is global (one
  // aggregate per domain = the owner of each global node, optionally refined
  // per contact group), built once here and restricted to each rank's local
  // numbering — halo columns then resolve to the neighbour's aggregate.
  std::vector<coarse::AggregateMap> rank_agg;
  if (opt.coarse.enabled) {
    int gnodes = 0;
    for (const auto& ls : systems)
      for (int g : ls.global_of_local) gnodes = std::max(gnodes, g + 1);
    coarse::AggregateMap global_agg;
    global_agg.count = ndom;
    global_agg.node_to_agg.assign(static_cast<std::size_t>(gnodes), -1);
    for (int d = 0; d < ndom; ++d) {
      const auto& ls = systems[static_cast<std::size_t>(d)];
      for (int l = 0; l < ls.num_internal; ++l)
        global_agg.node_to_agg[static_cast<std::size_t>(
            ls.global_of_local[static_cast<std::size_t>(l)])] = d;
    }
    for (int g : global_agg.node_to_agg)
      GEOFEM_CHECK(g >= 0, "coarse set-up: global node internal to no domain");
    if (opt.coarse.aggregates == coarse::Aggregates::kPerContactGroup)
      global_agg = coarse::refine_by_groups(std::move(global_agg), opt.coarse_groups);
    rank_agg.reserve(static_cast<std::size_t>(ndom));
    for (int d = 0; d < ndom; ++d)
      rank_agg.push_back(coarse::from_global(
          global_agg, systems[static_cast<std::size_t>(d)].global_of_local));
  }

  if (x_global) {
    std::size_t total = 0;
    for (const auto& ls : systems) total += static_cast<std::size_t>(ls.num_internal) * 3;
    x_global->assign(total, 0.0);
  }

  util::Timer wall;
  res.traffic_per_rank = Runtime::run(ndom, opt.faults, [&](Comm& comm) {
    const std::size_t rank = static_cast<std::size_t>(comm.rank());
    const part::LocalSystem& ls = systems[rank];
    auto* fc = &res.flops_per_rank[rank];
    auto* lp = &res.loops_per_rank[rank];
    const std::size_t ni = static_cast<std::size_t>(ls.num_internal) * 3;
    const std::size_t nl = static_cast<std::size_t>(ls.num_local()) * 3;

    // Hybrid execution: every kernel this rank thread calls (SpMV, BLAS-1,
    // preconditioner sweeps) runs on a team of opt.threads OpenMP threads.
    par::TeamScope team_scope(opt.threads);
    const part::LocalSystem::RowSplit split =
        opt.overlap ? ls.row_split() : part::LocalSystem::RowSplit{};

    // Per-rank telemetry: each rank owns a registry for the duration of the
    // solve; snapshots are gathered to rank 0 below. Attaching it also routes
    // the factory's preconditioner set-up spans here.
    obs::Registry rank_reg;
    obs::Attach attach(opt.telemetry ? &rank_reg : nullptr);
    if (opt.telemetry) {
      rank_reg.set_meta("rank", static_cast<double>(comm.rank()));
      rank_reg.set_meta("internal_dof", static_cast<double>(ni));
      rank_reg.set_meta("local_dof", static_cast<double>(nl));
      rank_reg.set_meta("threads", static_cast<double>(par::threads()));
      rank_reg.set_meta("overlap", opt.overlap ? 1.0 : 0.0);
      rank_reg.set_meta("simd.isa", simd::active_isa());
      rank_reg.gauge("dist.variant")->set(static_cast<double>(opt.cg.variant));
      if (opt.overlap)
        rank_reg.gauge("dist.boundary_rows")->set(static_cast<double>(split.boundary.size()));
    }

    // Progress state, hoisted above the try so a timeout can still report how
    // far the rank got (iterations, last residual, recorded history).
    int total_iters = 0;
    double bnorm = 0.0;
    double rnorm = 0.0;
    std::vector<double> history;

    // Everything that communicates runs under this try: once a blocking
    // operation times out (injected fault, dead neighbour), the rank records
    // kCommTimeout and stops communicating — which in turn times out every
    // peer still waiting on it, so the whole run terminates within a few
    // deadlines instead of hanging.
    try {
      // CG controls; resilience supplies a stagnation window if the caller
      // left detection off, so a stalled attempt fails fast enough to leave
      // budget for the fallback rung. The fp32 safety net arms one too
      // (independent of resilience.enabled): an fp32-preconditioned CG that
      // stalls must fail fast so the fp64 re-setup gets the budget — the
      // user's window is restored for the fp64 retry.
      solver::CGOptions cgopt = opt.cg;
      if (cgopt.stagnation_window == 0 && opt.resilience.enabled)
        cgopt.stagnation_window = opt.resilience.stagnation_window;
      const int user_window = cgopt.stagnation_window;
      const bool fp32 = opt.precision == precond::Precision::kSingle;
      if (fp32 && cgopt.stagnation_window == 0)
        cgopt.stagnation_window = opt.resilience.stagnation_window;

      // localized preconditioner on the internal submatrix (aii must outlive
      // prec: preconditioners keep a reference to their matrix)
      util::Timer setup;
      const sparse::BlockCSR aii = ls.internal_matrix();
      precond::PreconditionerPtr prec;
      bool build_failed = false;
      {
        obs::ScopedSpan setup_span("dist.setup");
        if (opt.resilience.enabled || fp32) {
          // fp32 narrowing overflow surfaces as kFactorizationFailed and is
          // caught here even with resilience off — the fp64 re-setup below is
          // always armed under kSingle.
          try {
            prec = factory(ls, aii, opt.precision);
          } catch (const Error& e) {
            if (e.code() != StatusCode::kFactorizationFailed) throw;
            build_failed = true;
          }
        } else {
          prec = factory(ls, aii, opt.precision);
        }
      }
      // A rank-local factorization failure must become a global decision —
      // every rank takes the fallback branch together.
      bool build_failed_global = false;
      if (opt.resilience.enabled || fp32)
        build_failed_global = comm.allreduce_max(build_failed ? 1.0 : 0.0) > 0.0;

      // Two-level set-up, numeric half: each rank assembles its Galerkin
      // contribution from ls.a (internal rows, ALL local columns — that is
      // exactly the coupling the localized preconditioner drops), the dense
      // contributions are summed in rank order, and every rank factors the
      // identical replicated A_c. Degrading on a singular A_c is a global
      // decision (allreduced), so lockstep collectives stay aligned.
      std::shared_ptr<const coarse::CoarseOperator> cop;
      if (opt.coarse.enabled) {
        obs::ScopedSpan coarse_span("dist.coarse.setup");
        util::Timer coarse_timer;
        std::shared_ptr<const coarse::CoarseSymbolic> csym;
        std::shared_ptr<const std::vector<double>> contrib;
        const contact::Supernodes no_sn;
        if (opt.plan_cache) {
          // Keyed on the full local matrix ls.a (not aii: its graph drops the
          // halo columns the assembly needs). kDiagonal+natural carries no
          // symbolic state, so the plan is purely the coarse schedule + the
          // value-hash memo that makes warm λ-cycles skip the assembly.
          plan::PlanConfig ccfg;
          ccfg.precond = plan::PrecondKind::kDiagonal;
          ccfg.coarse = true;
          auto cplan = opt.plan_cache->get(ls.a, no_sn, ccfg, nullptr, &rank_agg[rank],
                                           ls.num_internal);
          csym = cplan->coarse_symbolic();
          contrib = cplan->coarse_contribution(ls.a);
        } else {
          csym = std::make_shared<coarse::CoarseSymbolic>(rank_agg[rank], ls.num_internal);
          contrib =
              std::make_shared<const std::vector<double>>(coarse::accumulate(ls.a, *csym));
        }
        const std::vector<double> ac = comm.allreduce_sum(std::span<const double>(*contrib));
        bool coarse_failed = false;
        try {
          cop = std::make_shared<const coarse::CoarseOperator>(std::move(csym), ac);
        } catch (const Error& e) {
          if (e.code() != StatusCode::kFactorizationFailed) throw;
          coarse_failed = true;
        }
        if (comm.allreduce_max(coarse_failed ? 1.0 : 0.0) > 0.0) {
          cop.reset();
          cstats[rank] = coarse::SetupStatus::kDegraded;
          if (opt.telemetry) rank_reg.counter("coarse.degraded")->add(1);
        } else {
          cstats[rank] = coarse::SetupStatus::kActive;
          cdims[rank] = cop->dim();
          if (opt.telemetry) rank_reg.gauge("dist.coarse.dim")->set(cop->dim());
        }
        if (opt.telemetry)
          rank_reg.gauge("dist.coarse.setup_seconds")->set(coarse_timer.seconds());
      }
      setup_seconds[rank] = setup.seconds();
      if (prec) res.precond_bytes_per_rank[rank] = prec->memory_bytes();
      const std::size_t solve_span =
          opt.telemetry ? rank_reg.span_begin("dist.solve") : std::size_t{0};
      util::Timer solve_timer;

      std::vector<double> x(nl, 0.0), p(nl, 0.0), sendbuf;
      std::vector<double> r(ni), z(ni), q(ni);

      // One matvec: q/out = A_local * v, with the halo exchange either
      // blocking (overlap off) or hidden behind the interior-row SpMV.
      // Interior rows read only internal columns, which the receives never
      // touch, so overlapping them with message delivery is legal; per-row
      // arithmetic and the per-link message sequence are identical either
      // way, hence bit-identical residual histories.
      auto matvec = [&](std::vector<double>& v, std::vector<double>& out) {
        if (!opt.overlap) {
          halo_exchange(comm, ls, v, sendbuf);
          local_spmv(ls, v, out, fc);
          return;
        }
        halo_post_sends(comm, ls, v, sendbuf);
        spmv_rows(ls, split.interior, v, out);
        halo_complete(comm, ls, v);
        spmv_rows(ls, split.boundary, v, out);
        fc->spmv +=
            2ULL * sparse::kBB * static_cast<std::uint64_t>(ls.a.rowptr[ls.num_internal]);
      };

      // Coarse-aware preconditioner application. The coarse residual is a
      // global quantity: each rank restricts its internal rows, the coarse
      // vectors are allreduced (rank-ascending, bit-identical everywhere) and
      // the replicated A_c is solved redundantly. Every rank runs the same
      // collective sequence per apply, so CG's lockstep is preserved.
      std::vector<double> cyc, cq, cv, ct, cz1, cmz;
      if (cop) {
        cyc.resize(static_cast<std::size_t>(cop->dim()));
        if (opt.coarse.mode == coarse::Mode::kDeflated) {
          cq.assign(nl, 0.0);
          cv.resize(ni);
          ct.resize(ni);
          cz1.resize(ni);
          cmz.assign(nl, 0.0);
        }
      }
      auto coarse_solve_global = [&](std::span<const double> fine) {
        cop->restrict_residual(fine, cyc, fc);
        const std::vector<double> gy = comm.allreduce_sum(std::span<const double>(cyc));
        std::copy(gy.begin(), gy.end(), cyc.begin());
        cop->solve(cyc, fc);
      };
      auto apply_precond = [&](const precond::Preconditioner& m, std::vector<double>& rr,
                               std::vector<double>& zz) {
        if (!cop) {
          m.apply(rr, zz, fc, lp);
          return;
        }
        coarse_solve_global(rr);  // cyc = A_c^-1 R r
        if (opt.coarse.mode == coarse::Mode::kAdditive) {
          m.apply(rr, zz, fc, lp);
          cop->prolongate_add(cyc, zz, fc);
          return;
        }
        // Deflated (BNN): z = q + (I - QA) M^-1 (r - A q), q = Q r.
        std::fill(cq.begin(), cq.end(), 0.0);
        cop->prolongate_add(cyc, cq, fc);  // q = P yc (internal part)
        matvec(cq, cv);                    // cv = A q
        for (std::size_t i = 0; i < ni; ++i) ct[i] = rr[i] - cv[i];
        m.apply(ct, cz1, fc, lp);          // cz1 = M^-1 (r - A q)
        std::copy(cz1.begin(), cz1.end(), cmz.begin());
        matvec(cmz, cv);                   // cv = A cz1
        coarse_solve_global(cv);           // cyc = A_c^-1 R A cz1
        for (std::size_t i = 0; i < ni; ++i) zz[i] = cq[i] + cz1[i];
        for (double& v : cyc) v = -v;
        cop->prolongate_add(cyc, zz, fc);  // z -= P A_c^-1 R A cz1
        fc->blas1 += 3 * ni;
      };

      // r = b (zero initial guess)
      for (std::size_t i = 0; i < ni; ++i) r[i] = ls.b[i];
      bnorm = std::sqrt(comm.allreduce_sum(sparse::dot(std::span(ls.b), std::span(ls.b), fc)));
      GEOFEM_CHECK(bnorm > 0.0, "distributed pcg: zero rhs");
      rnorm = bnorm;
      if (cgopt.record_residuals) history.push_back(rnorm / bnorm);

      // One CG attempt against `m`, continuing from the current x/r/rnorm and
      // drawing on the shared iteration budget. Every exit decision derives
      // from allreduced scalars, so all ranks leave with the same status.
      auto cg_loop = [&](const precond::Preconditioner& m) -> SolveStatus {
        const int window = cgopt.stagnation_window;
        std::vector<double> ring(window > 0 ? static_cast<std::size_t>(window) : 0);
        double rho_prev = 0.0;
        int it = 0;
        SolveStatus s = SolveStatus::kMaxIterations;
        while (total_iters < cgopt.max_iterations && rnorm / bnorm > cgopt.tolerance) {
          apply_precond(m, r, z);
          const double rho = comm.allreduce_sum(sparse::dot(std::span(r), std::span(z), fc));
          if (!(rho > 0.0)) {
            s = SolveStatus::kBreakdown;
            break;
          }
          if (it == 0) {
            for (std::size_t i = 0; i < ni; ++i) p[i] = z[i];
          } else {
            const double beta = rho / rho_prev;
            for (std::size_t i = 0; i < ni; ++i) p[i] = z[i] + beta * p[i];
            fc->blas1 += 2 * ni;
          }
          rho_prev = rho;

          matvec(p, q);
          const double pq =
              comm.allreduce_sum(sparse::dot(std::span(p).first(ni), std::span(q), fc));
          if (!(pq > 0.0)) {
            s = SolveStatus::kBreakdown;
            break;
          }
          const double alpha = rho / pq;
          for (std::size_t i = 0; i < ni; ++i) {
            x[i] += alpha * p[i];
            r[i] -= alpha * q[i];
          }
          fc->blas1 += 4 * ni;
          rnorm = std::sqrt(comm.allreduce_sum(sparse::dot(std::span(r), std::span(r), fc)));
          ++total_iters;
          if (cgopt.record_residuals) history.push_back(rnorm / bnorm);
          if (!std::isfinite(rnorm)) {
            s = SolveStatus::kBreakdown;
            break;
          }
          // Slot it % W holds the relative residual from W iterations ago by
          // the time iteration `it` reads it: slots 0..W-1 are all written
          // before the first comparison at it == W (mirrors the serial pcg).
          if (window > 0) {
            const double rel = rnorm / bnorm;
            const auto slot = static_cast<std::size_t>(it % window);
            if (it >= window && rel > 0.99 * ring[slot]) {
              s = SolveStatus::kStagnated;
              break;
            }
            ring[slot] = rel;
          }
          ++it;
        }
        if (rnorm / bnorm <= cgopt.tolerance) s = SolveStatus::kConverged;
        return s;
      };

      // Gropp's two-overlap CG: two split-phase reductions per iteration,
      // δ = (p,s) completing behind q = M⁻¹s and the fused {γ' = (r,u),
      // ||r||²} completing behind w = Au. Every exit decision derives from
      // the reduced (rank-identical) values, so lockstep is preserved; the
      // reduction chain is the same fixed-shape rank-ascending combine as the
      // blocking allreduce, so the trajectory is bit-identical across team
      // sizes and overlap settings.
      auto cg_loop_gropp = [&](const precond::Preconditioner& m) -> SolveStatus {
        const int window = cgopt.stagnation_window;
        std::vector<double> ring(window > 0 ? static_cast<std::size_t>(window) : 0);
        std::vector<double> u(ni), s_(ni), w(ni), mq(ni), vnl(nl, 0.0);
        SolveStatus s = SolveStatus::kMaxIterations;

        apply_precond(m, r, u);  // u = M^-1 r
        for (std::size_t i = 0; i < ni; ++i) p[i] = u[i];
        matvec(p, s_);  // s = A p
        double gamma = comm.allreduce_sum(sparse::dot(std::span(r), std::span(u), fc));

        int it = 0;
        while (total_iters < cgopt.max_iterations && rnorm / bnorm > cgopt.tolerance) {
          if (!(gamma > 0.0)) {
            s = SolveStatus::kBreakdown;
            break;
          }
          // Reduction 1 in flight while the preconditioner runs.
          const double dpart = sparse::dot(std::span(p).first(ni), std::span(s_), fc);
          PendingReduce h1 = comm.iallreduce_sum(std::span<const double>(&dpart, 1));
          {
            obs::ScopedSpan ov("pcg.overlap");
            apply_precond(m, s_, mq);  // q = M^-1 s
          }
          const double delta = comm.wait(h1)[0];
          if (!(delta > 0.0)) {
            s = SolveStatus::kBreakdown;
            break;
          }
          const double alpha = gamma / delta;
          for (std::size_t i = 0; i < ni; ++i) {
            x[i] += alpha * p[i];
            r[i] -= alpha * s_[i];
            u[i] -= alpha * mq[i];
          }
          fc->blas1 += 6 * ni;
          // Reduction 2 (fused γ', ||r||²) in flight while the SpMV runs.
          const double fused[2] = {sparse::dot(std::span(r), std::span(u), fc),
                                   sparse::dot(std::span(r), std::span(r), fc)};
          PendingReduce h2 = comm.iallreduce_sum(std::span<const double>(fused, 2));
          {
            obs::ScopedSpan ov("pcg.overlap");
            std::copy(u.begin(), u.end(), vnl.begin());
            matvec(vnl, w);  // w = A u
          }
          const std::vector<double> g = comm.wait(h2);
          const double beta = g[0] / gamma;
          for (std::size_t i = 0; i < ni; ++i) {
            p[i] = u[i] + beta * p[i];
            s_[i] = w[i] + beta * s_[i];
          }
          fc->blas1 += 4 * ni;
          gamma = g[0];
          rnorm = std::sqrt(g[1]);
          ++total_iters;
          if (cgopt.record_residuals) history.push_back(rnorm / bnorm);
          if (!std::isfinite(rnorm)) {
            s = SolveStatus::kBreakdown;
            break;
          }
          if (window > 0) {
            const double rel = rnorm / bnorm;
            const auto slot = static_cast<std::size_t>(it % window);
            if (it >= window && rel > 0.99 * ring[slot]) {
              s = SolveStatus::kStagnated;
              break;
            }
            ring[slot] = rel;
          }
          ++it;
        }
        if (rnorm / bnorm <= cgopt.tolerance) s = SolveStatus::kConverged;
        return s;
      };

      // Ghysels–Vanroose pipelined CG: ONE fused split-phase reduction per
      // iteration {γ = (r,u), δ = (w,u), ||r||²}, completing behind BOTH the
      // preconditioner application and the SpMV of the same iteration. The
      // residual norm of iteration `it` arrives with iteration it+1's
      // reduction, so history/stagnation probes lag one slot (mirrors the
      // serial attempt). Four extra recurrence vectors.
      auto cg_loop_pipelined = [&](const precond::Preconditioner& m) -> SolveStatus {
        const int window = cgopt.stagnation_window;
        std::vector<double> ring(window > 0 ? static_cast<std::size_t>(window) : 0);
        std::vector<double> u(ni), w(ni), mv(ni), nv(ni), zv(ni), qv(ni), sv(ni), pv(ni);
        std::vector<double> vnl(nl, 0.0);
        SolveStatus s = SolveStatus::kMaxIterations;

        apply_precond(m, r, u);  // u = M^-1 r
        std::copy(u.begin(), u.end(), vnl.begin());
        matvec(vnl, w);  // w = A u

        double gamma_prev = 0.0, alpha_prev = 0.0;
        for (int it = 0;; ++it) {
          const double fused[3] = {sparse::dot(std::span(r), std::span(u), fc),
                                   sparse::dot(std::span(w), std::span(u), fc),
                                   sparse::dot(std::span(r), std::span(r), fc)};
          PendingReduce h = comm.iallreduce_sum(std::span<const double>(fused, 3));
          {
            obs::ScopedSpan ov("pcg.overlap");
            apply_precond(m, w, mv);  // m = M^-1 w
            std::copy(mv.begin(), mv.end(), vnl.begin());
            matvec(vnl, nv);  // n = A m
          }
          const std::vector<double> g = comm.wait(h);
          const double gamma = g[0];
          const double delta = g[1];
          rnorm = std::sqrt(g[2]);
          const double rel = rnorm / bnorm;
          if (it > 0) {
            if (cgopt.record_residuals) history.push_back(rel);
            if (!std::isfinite(rnorm)) {
              s = SolveStatus::kBreakdown;
              break;
            }
            if (window > 0) {
              const auto slot = static_cast<std::size_t>((it - 1) % window);
              if (it - 1 >= window && rel > 0.99 * ring[slot]) {
                s = SolveStatus::kStagnated;
                break;
              }
              ring[slot] = rel;
            }
          }
          if (rel <= cgopt.tolerance) {
            s = SolveStatus::kConverged;
            break;
          }
          if (total_iters >= cgopt.max_iterations) break;
          if (!(gamma > 0.0)) {
            s = SolveStatus::kBreakdown;
            break;
          }
          double alpha = 0.0, beta = 0.0;
          if (it == 0) {
            if (!(delta > 0.0)) {
              s = SolveStatus::kBreakdown;
              break;
            }
            alpha = gamma / delta;
          } else {
            beta = gamma / gamma_prev;
            const double denom = delta - beta * gamma / alpha_prev;
            if (!(denom > 0.0) || !std::isfinite(denom)) {
              s = SolveStatus::kBreakdown;
              break;
            }
            alpha = gamma / denom;
          }
          if (it == 0) {
            std::copy(nv.begin(), nv.end(), zv.begin());
            std::copy(mv.begin(), mv.end(), qv.begin());
            std::copy(w.begin(), w.end(), sv.begin());
            std::copy(u.begin(), u.end(), pv.begin());
          } else {
            for (std::size_t i = 0; i < ni; ++i) {
              zv[i] = nv[i] + beta * zv[i];
              qv[i] = mv[i] + beta * qv[i];
              sv[i] = w[i] + beta * sv[i];
              pv[i] = u[i] + beta * pv[i];
            }
            fc->blas1 += 8 * ni;
          }
          for (std::size_t i = 0; i < ni; ++i) {
            x[i] += alpha * pv[i];
            r[i] -= alpha * sv[i];
            u[i] -= alpha * qv[i];
            w[i] -= alpha * zv[i];
          }
          fc->blas1 += 8 * ni;
          gamma_prev = gamma;
          alpha_prev = alpha;
          ++total_iters;

          // Periodic residual replacement (mirrors the serial attempt): every
          // rank rebuilds its recurrence vectors at the same iteration — halo
          // exchanges and any coarse collectives inside apply_precond run in
          // the same order everywhere, so lockstep is preserved. No global
          // reductions are added.
          const int replace = cgopt.pipeline_replace_interval;
          if (replace > 0 && (it + 1) % replace == 0) {
            matvec(x, mv);
            for (std::size_t i = 0; i < ni; ++i) r[i] = ls.b[i] - mv[i];
            fc->blas1 += ni;
            apply_precond(m, r, u);
            std::copy(u.begin(), u.end(), vnl.begin());
            matvec(vnl, w);
            std::copy(pv.begin(), pv.end(), vnl.begin());
            matvec(vnl, sv);
            apply_precond(m, sv, qv);
            std::copy(qv.begin(), qv.end(), vnl.begin());
            matvec(vnl, zv);
          }
        }
        if (rnorm / bnorm <= cgopt.tolerance) s = SolveStatus::kConverged;
        return s;
      };

      // One CG attempt with the configured variant. A non-classic attempt
      // that breaks down or stagnates retries with the classic loop on the
      // SAME preconditioner — warm restart from the recomputed true residual
      // r = b - A x, shared budget — before any caller-level fallback sees
      // the failure. The retry decision comes from the attempt's status,
      // itself derived from allreduced scalars, so every rank branches
      // together.
      auto run_cg = [&](const precond::Preconditioner& m) -> SolveStatus {
        SolveStatus s;
        switch (cgopt.variant) {
          case solver::CGVariant::kGropp: s = cg_loop_gropp(m); break;
          case solver::CGVariant::kPipelined: s = cg_loop_pipelined(m); break;
          default: return cg_loop(m);
        }
        if (s == SolveStatus::kBreakdown || s == SolveStatus::kStagnated) {
          vfell[rank] = 1;
          if (opt.telemetry) rank_reg.counter("dist.fallback.variant")->add(1);
          matvec(x, q);
          for (std::size_t i = 0; i < ni; ++i) r[i] = ls.b[i] - q[i];
          rnorm = std::sqrt(comm.allreduce_sum(sparse::dot(std::span(r), std::span(r), fc)));
          if (cgopt.record_residuals) history.push_back(rnorm / bnorm);
          const SolveStatus retried = cg_loop(m);
          s = ok(retried) ? SolveStatus::kFellBack : retried;
        }
        return s;
      };

      SolveStatus st =
          build_failed_global ? SolveStatus::kFactorizationFailed : run_cg(*prec);

      if (fp32 && !ok(st)) {
        // fp32-induced stagnation/breakdown (or narrowing overflow at
        // set-up): re-set-up the fp64 plan on every rank together — the
        // decision above derives from allreduced scalars, so all ranks
        // rebuild in lockstep — and restart COLD. The cold restart is what
        // makes the recovery's residual history bit-identical to a direct
        // fp64 solve of the same system.
        burnt_iters[rank] = total_iters;
        // The re-set-up itself is the counted event (like the serial path):
        // it happened on every rank together whether or not the fp64 retry
        // then converges.
        pfell[rank] = 1;
        if (opt.telemetry) rank_reg.counter("dist.fallback.precision")->add(1);
        precond::PreconditionerPtr fb64;
        bool fb_failed = false;
        try {
          fb64 = factory(ls, aii, precond::Precision::kDouble);
        } catch (const Error& e) {
          if (e.code() != StatusCode::kFactorizationFailed) throw;
          fb_failed = true;
        }
        if (comm.allreduce_max(fb_failed ? 1.0 : 0.0) > 0.0) {
          st = SolveStatus::kFactorizationFailed;
        } else {
          res.precond_bytes_per_rank[rank] = fb64->memory_bytes();
          cgopt.stagnation_window = user_window;
          std::fill(x.begin(), x.end(), 0.0);
          for (std::size_t i = 0; i < ni; ++i) r[i] = ls.b[i];
          rnorm = bnorm;
          if (cgopt.record_residuals) history.push_back(rnorm / bnorm);
          const SolveStatus retried = run_cg(*fb64);
          st = ok(retried) ? SolveStatus::kFellBack : retried;
          prec = std::move(fb64);
        }
      }

      if (opt.resilience.enabled && !ok(st)) {
        // Fallback rungs, tried in order while attempts keep failing: the
        // caller's fallback factory (when set), then the localized block
        // diagonal, which always builds — capped at resilience.max_fallbacks
        // rebuilds. Every decision below derives from allreduced scalars, so
        // all ranks walk the same rungs in lockstep; CG restarts warm from
        // the partial iterate each time.
        std::vector<const PrecondFactory*> rungs;
        const PrecondFactory block_diag = [](const part::LocalSystem&,
                                             const sparse::BlockCSR& m, precond::Precision) {
          return std::make_unique<precond::BlockDiagonal>(m);
        };
        if (opt.fallback_factory) rungs.push_back(&opt.fallback_factory);
        rungs.push_back(&block_diag);
        const auto nrungs = std::min(
            rungs.size(), static_cast<std::size_t>(std::max(opt.resilience.max_fallbacks, 0)));
        for (std::size_t rung = 0; rung < nrungs && !ok(st); ++rung) {
          burnt_iters[rank] = total_iters;
          precond::PreconditionerPtr fb;
          bool fb_failed = false;
          try {
            // Ordinary rungs always rebuild at fp64: a fallback exists to
            // restore convergence, not to preserve the precision experiment.
            fb = (*rungs[rung])(ls, aii, precond::Precision::kDouble);
          } catch (const Error& e) {
            if (e.code() != StatusCode::kFactorizationFailed) throw;
            fb_failed = true;
          }
          if (comm.allreduce_max(fb_failed ? 1.0 : 0.0) > 0.0) {
            st = SolveStatus::kFactorizationFailed;
            continue;
          }
          res.precond_bytes_per_rank[rank] = fb->memory_bytes();
          // r = b - A x for the warm start
          matvec(x, q);
          for (std::size_t i = 0; i < ni; ++i) r[i] = ls.b[i] - q[i];
          rnorm = std::sqrt(comm.allreduce_sum(sparse::dot(std::span(r), std::span(r), fc)));
          if (cgopt.record_residuals) history.push_back(rnorm / bnorm);
          const SolveStatus retried = run_cg(*fb);
          st = ok(retried) ? SolveStatus::kFellBack : retried;
          if (opt.telemetry && ok(retried)) rank_reg.counter("dist.fallback.recovered")->add(1);
        }
      }

      statuses[rank] = st;
      iters[rank] = total_iters;
      relres[rank] = rnorm / bnorm;
      if (comm.rank() == 0) res.residual_history = std::move(history);

      if (opt.telemetry) {
        rank_reg.span_end(solve_span);
        rank_reg.counter("dist.iterations")->add(static_cast<std::uint64_t>(total_iters));
        rank_reg.gauge("dist.setup_seconds")->set(setup_seconds[rank]);
        rank_reg.gauge("dist.solve_seconds")->set(solve_timer.seconds());
        rank_reg.gauge("dist.precond_bytes")
            ->set(static_cast<double>(res.precond_bytes_per_rank[rank]));
        rank_reg.absorb("dist", *fc);
        rank_reg.absorb("dist", *lp);
        // traffic up to this point; the telemetry gather itself is not counted
        export_traffic(comm.traffic(), rank_reg);
        const std::vector<double> blob = encode(rank_reg.snapshot());
        const std::vector<double> gathered = comm.gather(0, blob);
        if (comm.rank() == 0) {
          res.obs_per_rank = obs::decode_all(gathered);
          res.obs_merged = obs::aggregate(res.obs_per_rank);
        }
      }

      if (x_global) {
        for (int l = 0; l < ls.num_internal; ++l) {
          const int g = ls.global_of_local[static_cast<std::size_t>(l)];
          for (int c = 0; c < 3; ++c)
            (*x_global)[static_cast<std::size_t>(g) * 3 + static_cast<std::size_t>(c)] =
                x[static_cast<std::size_t>(l) * 3 + static_cast<std::size_t>(c)];
        }
      }
    } catch (const Error& e) {
      if (e.code() != StatusCode::kCommTimeout) throw;
      statuses[rank] = SolveStatus::kCommTimeout;
      // Keep whatever progress was made before the deadline hit so a timed-out
      // run is not misread as "zero iterations, residual 0.0": NaN marks a
      // timeout that struck before the first residual norm.
      iters[rank] = total_iters;
      relres[rank] = bnorm > 0.0 ? rnorm / bnorm : std::numeric_limits<double>::quiet_NaN();
      if (comm.rank() == 0) res.residual_history = std::move(history);
    }
  });
  res.solve_seconds = wall.seconds();
  if (opt.plan_cache) res.plan_cache = opt.plan_cache->stats();

  res.status_per_rank = statuses;
  res.status = statuses[0];
  for (SolveStatus s : statuses)
    if (s == SolveStatus::kCommTimeout) res.status = SolveStatus::kCommTimeout;
  res.iterations = iters[0];
  res.fallback_iterations = burnt_iters[0];
  res.precision_fallbacks = pfell[0];
  res.variant_fallbacks = vfell[0];
  res.relative_residual = relres[0];
  res.coarse_status = cstats[0];
  res.coarse_dim = cdims[0];
  for (double s : setup_seconds) res.setup_seconds_max = std::max(res.setup_seconds_max, s);
  return res;
}

std::vector<DistResult> solve_distributed_batched(
    std::vector<part::LocalSystem>& systems, const PrecondFactory& factory,
    const std::vector<std::vector<std::vector<double>>>& rhs, const DistOptions& opt,
    std::vector<std::vector<double>>* x_global) {
  GEOFEM_CHECK(!rhs.empty(), "solve_distributed_batched: no columns");
  for (const auto& col : rhs) {
    GEOFEM_CHECK(col.size() == systems.size(),
                 "solve_distributed_batched: column rank count mismatch");
    for (std::size_t r = 0; r < col.size(); ++r)
      GEOFEM_CHECK(col[r].size() == systems[r].b.size(),
                   "solve_distributed_batched: local RHS size mismatch");
  }
  if (x_global) x_global->assign(rhs.size(), {});

  // Swap each column's local RHS in, run the single-RHS driver, swap back —
  // every column sees exactly the state a standalone solve_distributed call
  // would (batch-of-1 bit-identity is by construction).
  std::vector<std::vector<double>> saved(systems.size());
  for (std::size_t r = 0; r < systems.size(); ++r) saved[r] = std::move(systems[r].b);
  std::vector<DistResult> out;
  out.reserve(rhs.size());
  try {
    for (std::size_t c = 0; c < rhs.size(); ++c) {
      for (std::size_t r = 0; r < systems.size(); ++r) systems[r].b = rhs[c][r];
      out.push_back(solve_distributed(systems, factory, opt,
                                      x_global ? &(*x_global)[c] : nullptr));
    }
  } catch (...) {
    for (std::size_t r = 0; r < systems.size(); ++r) systems[r].b = std::move(saved[r]);
    throw;
  }
  for (std::size_t r = 0; r < systems.size(); ++r) systems[r].b = std::move(saved[r]);
  return out;
}

PrecondFactory make_plan_factory(plan::PlanCache& cache, plan::PlanConfig cfg,
                                 std::vector<std::vector<int>> global_groups) {
  GEOFEM_CHECK(cfg.ordering == plan::OrderingKind::kNatural,
               "make_plan_factory supports the natural ordering only");
  return [&cache, cfg, groups = std::move(global_groups)](
             const part::LocalSystem& ls, const sparse::BlockCSR& aii,
             precond::Precision precision) {
    const auto sn = contact::build_supernodes(aii.n, ls.local_contact_groups(groups));
    // The requested precision perturbs the plan key (only when kSingle), so
    // an fp64 re-setup after an fp32 failure builds — and caches — a second,
    // full-precision plan instead of refilling the fp32 one.
    plan::PlanConfig c = cfg;
    c.precision = precision;
    return std::make_unique<plan::PlannedPreconditioner>(cache.get(aii, sn, c), aii);
  };
}

}  // namespace geofem::dist
