#include "core/resilience.hpp"

namespace geofem {

std::vector<plan::PrecondKind> default_fallback_chain(plan::PrecondKind primary) {
  using K = plan::PrecondKind;
  switch (primary) {
    case K::kScalarIC0:
    case K::kBIC0:
    case K::kBIC1:
    case K::kBIC2:
      return {K::kSBBIC0, K::kBlockDiagonal};
    case K::kSBBIC0:
      return {K::kBlockDiagonal};
    case K::kDiagonal:
    case K::kBlockDiagonal:
      return {};
  }
  return {};
}

}  // namespace geofem
