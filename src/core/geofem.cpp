#include "core/geofem.hpp"

#include "obs/span.hpp"
#include "par/par.hpp"
#include "plan/plan.hpp"
#include "simd/simd.hpp"
#include "precond/bic.hpp"
#include "precond/diagonal.hpp"
#include "precond/djds_bic.hpp"
#include "precond/sb_bic0.hpp"
#include "precond/scalar_ic0.hpp"
#include "precond/two_level.hpp"
#include "simd/multirhs.hpp"
#include "solver/batch.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace geofem::core {

std::string to_string(PrecondKind k) { return plan::to_string(k); }

precond::PreconditionerPtr make_preconditioner(PrecondKind kind, const sparse::BlockCSR& a,
                                               const contact::Supernodes& sn,
                                               precond::Precision precision) {
  switch (kind) {
    case PrecondKind::kDiagonal:
      return std::make_unique<precond::DiagonalScaling>(a, precision);
    case PrecondKind::kScalarIC0: return std::make_unique<precond::ScalarIC0>(a, precision);
    case PrecondKind::kBIC0: return std::make_unique<precond::BIC0>(a, precision);
    case PrecondKind::kBIC1: return std::make_unique<precond::BlockILUk>(a, 1, precision);
    case PrecondKind::kBIC2: return std::make_unique<precond::BlockILUk>(a, 2, precision);
    case PrecondKind::kSBBIC0:
      return std::make_unique<precond::SBBIC0>(a, sn, /*modified=*/false, precision);
    case PrecondKind::kBlockDiagonal:
      return std::make_unique<precond::BlockDiagonal>(a, precision);
  }
  GEOFEM_CHECK(false, "unknown preconditioner kind");
}

SolveReport solve(const mesh::HexMesh& m, const std::vector<fem::Material>& materials,
                  const fem::BoundaryConditions& bc, const SolveConfig& cfg) {
  fem::System sys = fem::assemble_elasticity(m, materials);
  contact::add_penalty(sys.a, m.contact_groups, cfg.penalty);
  fem::apply_boundary_conditions(sys, bc);
  return solve_system(sys, contact::build_supernodes(sys.a.n, m.contact_groups), cfg);
}

namespace {

/// Outcome of the structure + numeric set-up phase shared by the single-RHS
/// attempt loop and the batched entry: the (possibly cached) plan and the
/// ready preconditioner.
struct Setup {
  std::shared_ptr<const plan::SolvePlan> plan;
  precond::PreconditionerPtr prec;
};

/// Set-up phase of one solve: plan lookup (or build), numeric factorization,
/// optional coarse level — everything before the Krylov loop, with all the
/// associated SolveReport bookkeeping (bytes, plan reuse, timings, PDJDS
/// statistics) filled into `rep`. Throws Error(kFactorizationFailed) if the
/// factorization hits an unusable pivot. Factored out of attempt_solve so
/// solve_system_batched shares it verbatim (one set-up, k right-hand sides).
Setup setup_solve(const fem::System& sys, const contact::Supernodes& sn, const SolveConfig& cfg,
                  PrecondKind kind, precond::Precision precision, SolveReport& rep) {
  rep.matrix_bytes = sys.a.memory_bytes();
  obs::Registry* reg = obs::current();
  // setup span closed (span_end) where setup_seconds is read
  const std::size_t setup_idx = reg ? reg->span_begin("core.setup") : 0;
  util::Timer setup;

  // Plan: everything structure-dependent (symbolic pattern, coloring, DJDS
  // layout), cached across solves on the same graph; then the per-solve
  // numeric factorization.
  plan::PlanConfig pcfg;
  pcfg.precond = kind;
  pcfg.precision = precision;
  pcfg.ordering = cfg.ordering;
  pcfg.colors = cfg.colors;
  pcfg.npe = cfg.npe;
  pcfg.sort_supernodes = cfg.sort_supernodes;
  pcfg.coarse = cfg.coarse.enabled;
  coarse::AggregateMap agg;
  if (cfg.coarse.enabled) {
    GEOFEM_CHECK(cfg.ordering == OrderingKind::kNatural,
                 "coarse correction requires the natural ordering");
    agg = coarse::single_aggregate(sys.a.n);
    if (cfg.coarse.aggregates == coarse::Aggregates::kPerContactGroup)
      agg = coarse::refine_by_groups(std::move(agg), sn.members);
  }
  const coarse::AggregateMap* aggp = cfg.coarse.enabled ? &agg : nullptr;
  std::shared_ptr<const plan::SolvePlan> p;
  if (cfg.use_plan_cache) {
    plan::PlanCache& cache = cfg.plan_cache ? *cfg.plan_cache : plan::default_cache();
    // get() reports the hit directly: under concurrent sessions a stats()
    // delta would attribute other callers' hits to this solve.
    bool hit = false;
    p = cache.get(sys.a, sn, pcfg, &hit, aggp);
    rep.plan_cache = cache.stats();
    rep.plan_reused = hit;
  } else {
    p = std::make_shared<plan::SolvePlan>(sys.a, sn, pcfg, aggp);
  }
  rep.symbolic_seconds = p->symbolic_seconds();
  util::Timer numeric_timer;
  precond::PreconditionerPtr prec = p->numeric(sys.a);
  rep.numeric_seconds = numeric_timer.seconds();
  if (cfg.coarse.enabled) {
    // Second level: assemble (value-memoized in the plan) and factor A_c,
    // then wrap the one-level factorization. A singular A_c is a typed,
    // non-fatal outcome — the solve continues one-level.
    util::Timer coarse_timer;
    rep.coarse_status = coarse::SetupStatus::kActive;
    try {
      auto op = p->coarse_numeric(sys.a);
      rep.coarse_dim = op->dim();
      prec = std::make_unique<precond::TwoLevel>(std::move(prec), std::move(op), sys.a,
                                                 cfg.coarse.mode);
    } catch (const Error& e) {
      if (e.code() != StatusCode::kFactorizationFailed) throw;
      rep.coarse_status = coarse::SetupStatus::kDegraded;
      if (reg) reg->counter("coarse.degraded")->add(1);
    }
    rep.coarse_setup_seconds = coarse_timer.seconds();
    if (reg) reg->gauge("coarse.dim")->set(static_cast<double>(rep.coarse_dim));
  }
  rep.setup_seconds = setup.seconds();
  if (reg) reg->span_end(setup_idx);
  if (reg) reg->gauge("core.setup_seconds")->set(rep.setup_seconds);
  rep.precond_bytes = prec->memory_bytes();
  rep.precond = prec->desc();
  rep.precond_name = rep.precond.display_name();

  if (cfg.ordering != OrderingKind::kNatural) {
    const reorder::DJDSMatrix& dj = *p->djds();
    rep.avg_vector_length = dj.average_vector_length();
    rep.load_imbalance_percent = dj.load_imbalance_percent();
    rep.dummy_percent = dj.dummy_percent();
    rep.colors_used = dj.num_colors();
    if (reg) {
      reg->gauge("core.avg_vector_length")->set(rep.avg_vector_length);
      reg->gauge("core.load_imbalance_percent")->set(rep.load_imbalance_percent);
      reg->gauge("core.colors_used")->set(rep.colors_used);
    }
  }
  return Setup{std::move(p), std::move(prec)};
}

/// One set-up + CG attempt with preconditioner `kind`: the body of the
/// pre-resilience solve_system, parameterized so the fallback loop can rerun
/// it. `x0` (mesh ordering) warm-starts CG; null starts from zero. Throws
/// geofem::Error(kFactorizationFailed) if the factorization hits an unusable
/// pivot. Fills everything in the report except status / attempts /
/// fallback_* (owned by the caller).
SolveReport attempt_solve(const fem::System& sys, const contact::Supernodes& sn,
                          const SolveConfig& cfg, PrecondKind kind,
                          const solver::CGOptions& cgopt, const std::vector<double>* x0,
                          precond::Precision precision) {
  SolveReport rep;
  Setup s = setup_solve(sys, sn, cfg, kind, precision, rep);
  precond::PreconditionerPtr& prec = s.prec;

  if (cfg.ordering == OrderingKind::kNatural) {
    if (x0) {
      rep.solution = *x0;
    } else {
      rep.solution.assign(sys.a.ndof(), 0.0);
    }
    rep.cg = solver::pcg(sys.a, *prec, sys.b, rep.solution, cgopt);
    return rep;
  }

  // PDJDS/MC path: the plan owns the ordering; solve in the new ordering and
  // permute back.
  const reorder::DJDSMatrix& dj = *s.plan->djds();

  std::vector<double> pb(sys.a.ndof()), px(sys.a.ndof(), 0.0);
  for (int i = 0; i < sys.a.n; ++i)
    for (int c = 0; c < 3; ++c)
      pb[static_cast<std::size_t>(dj.perm()[static_cast<std::size_t>(i)]) * 3 +
         static_cast<std::size_t>(c)] =
          sys.b[static_cast<std::size_t>(i) * 3 + static_cast<std::size_t>(c)];
  if (x0)
    for (int i = 0; i < sys.a.n; ++i)
      for (int c = 0; c < 3; ++c)
        px[static_cast<std::size_t>(dj.perm()[static_cast<std::size_t>(i)]) * 3 +
           static_cast<std::size_t>(c)] =
            (*x0)[static_cast<std::size_t>(i) * 3 + static_cast<std::size_t>(c)];
  rep.cg = solver::pcg(
      [&dj](std::span<const double> in, std::span<double> out, util::FlopCounter* fc,
            util::LoopStats* ls) { dj.spmv(in, out, fc, ls); },
      *prec, pb, px, cgopt);
  rep.solution.assign(sys.a.ndof(), 0.0);
  for (int i = 0; i < sys.a.n; ++i)
    for (int c = 0; c < 3; ++c)
      rep.solution[static_cast<std::size_t>(i) * 3 + static_cast<std::size_t>(c)] =
          px[static_cast<std::size_t>(dj.perm()[static_cast<std::size_t>(i)]) * 3 +
             static_cast<std::size_t>(c)];
  return rep;
}

}  // namespace

SolveReport solve_system(const fem::System& sys, const contact::Supernodes& sn,
                         const SolveConfig& cfg) {
  // Re-entrant session entry: attach the caller-provided registry for the
  // duration of this call only (restored on return), so concurrent service
  // workers record into their service's registry without global state.
  std::optional<obs::Attach> session_attach;
  if (cfg.registry) session_attach.emplace(cfg.registry);
  // Hybrid execution: every kernel below (SpMV, BLAS-1, substitution sweeps)
  // runs on a team of cfg.threads OpenMP threads.
  par::TeamScope team_scope(cfg.threads);
  if (obs::Registry* r0 = obs::current()) {
    r0->gauge("core.threads")->set(static_cast<double>(par::threads()));
    r0->gauge("core.simd_lane_width")->set(static_cast<double>(simd::lane_width()));
    r0->set_meta("simd.isa", simd::active_isa());
  }
  obs::Registry* reg0 = obs::current();

  // fp32 rung: when cfg.precision is kSingle the first set-up stores fp32
  // factors; stagnation or an fp32-induced breakdown triggers exactly one
  // fp64 re-set-up with a COLD restart (x = 0, the caller's own CG options),
  // so the recovery's residual history is bit-identical to a direct fp64
  // solve. Armed independently of cfg.resilience.enabled.
  int precision_burnt_iters = 0;
  double precision_burnt_setup = 0.0;
  bool precision_fell = false;
  if (cfg.precision == precond::Precision::kSingle) {
    // Give the fp32 attempt a stagnation window (unless the caller set one)
    // so a stalled inexact-M attempt fails fast instead of burning maxiter.
    solver::CGOptions cgopt32 = cfg.cg;
    if (cgopt32.stagnation_window == 0)
      cgopt32.stagnation_window = cfg.resilience.stagnation_window;
    bool built = false;
    SolveReport r;
    try {
      r = attempt_solve(sys, sn, cfg, cfg.precond, cgopt32, nullptr,
                        precond::Precision::kSingle);
      built = true;
    } catch (const Error& e) {
      if (e.code() != StatusCode::kFactorizationFailed) throw;
    }
    if (built && ok(r.cg.status)) {
      r.status = r.cg.status;
      r.attempts = {cfg.precond};
      return r;
    }
    precision_burnt_iters = built ? r.cg.iterations : 0;
    precision_burnt_setup = built ? r.setup_seconds : 0.0;
    precision_fell = true;
    if (reg0) reg0->counter("core.fallback.precision")->add(1);
  }

  // Merge the fp32 bookkeeping into whatever the fp64 path below produced.
  const auto finish = [&](SolveReport rep) {
    if (precision_fell) {
      rep.precision_fallbacks = 1;
      rep.fallback_iterations += precision_burnt_iters;
      rep.fallback_setup_seconds += precision_burnt_setup;
      if (rep.status == SolveStatus::kConverged) rep.status = SolveStatus::kFellBack;
    }
    return rep;
  };

  if (!cfg.resilience.enabled) {
    SolveReport rep =
        attempt_solve(sys, sn, cfg, cfg.precond, cfg.cg, nullptr, precond::Precision::kDouble);
    rep.status = rep.cg.status;
    rep.attempts = {cfg.precond};
    return finish(std::move(rep));
  }

  // Resilient path. Give the inner CG a stagnation window (unless the caller
  // set one) so a stalled attempt fails fast enough to leave budget for the
  // fallback rungs.
  solver::CGOptions cgopt = cfg.cg;
  if (cgopt.stagnation_window == 0) cgopt.stagnation_window = cfg.resilience.stagnation_window;

  std::vector<PrecondKind> kinds{cfg.precond};
  {
    const auto chain = cfg.resilience.chain.empty() ? default_fallback_chain(cfg.precond)
                                                    : cfg.resilience.chain;
    for (PrecondKind k : chain) {
      if (k == cfg.precond) continue;
      if (static_cast<int>(kinds.size()) - 1 >= cfg.resilience.max_fallbacks) break;
      kinds.push_back(k);
    }
  }

  obs::Registry* reg = obs::current();
  SolveReport out;
  std::vector<PrecondKind> attempted;
  std::vector<double> warm;  // best iterate so far, mesh ordering
  bool have_warm = false;
  int burnt_iterations = 0;
  double burnt_setup = 0.0;
  SolveStatus last_status = SolveStatus::kFactorizationFailed;

  for (std::size_t t = 0; t < kinds.size(); ++t) {
    attempted.push_back(kinds[t]);
    // The PDJDS orderings only vectorize the no-fill kinds; any other rung
    // (notably the last-resort block diagonal, which needs no reordering)
    // runs in the natural ordering instead of tripping the plan's check.
    SolveConfig acfg = cfg;
    if (!plan::ordering_supports(acfg.ordering, kinds[t]))
      acfg.ordering = OrderingKind::kNatural;
    SolveReport r;
    try {
      r = attempt_solve(sys, sn, acfg, kinds[t], cgopt, have_warm ? &warm : nullptr,
                        precond::Precision::kDouble);
    } catch (const Error& e) {
      if (e.code() != StatusCode::kFactorizationFailed) throw;
      last_status = SolveStatus::kFactorizationFailed;
      if (reg) reg->counter("core.fallback.factorization_failed")->add(1);
      continue;
    }
    if (ok(r.cg.status)) {
      out = std::move(r);
      out.status = t == 0 ? SolveStatus::kConverged : SolveStatus::kFellBack;
      out.attempts = std::move(attempted);
      out.fallback_iterations = burnt_iterations;
      out.fallback_setup_seconds = burnt_setup;
      if (t > 0 && reg) reg->counter("core.fallback.recovered")->add(1);
      return finish(std::move(out));
    }
    last_status = r.cg.status;
    burnt_iterations += r.cg.iterations;
    burnt_setup += r.setup_seconds;
    warm = r.solution;  // warm-start the next rung from the partial iterate
    have_warm = true;
    out = std::move(r);
    if (reg) reg->counter("core.fallback.attempts")->add(1);
  }

  // Every rung failed: report the last completed attempt (or an empty report
  // if every factorization threw), with the chain-wide bookkeeping.
  out.status = last_status;
  out.fallback_iterations = burnt_iterations - out.cg.iterations;
  out.fallback_setup_seconds = burnt_setup - out.setup_seconds;
  out.attempts = std::move(attempted);
  if (reg) reg->counter("core.fallback.exhausted")->add(1);
  return finish(std::move(out));
}

std::vector<SolveReport> solve_system_batched(const fem::System& sys,
                                              const contact::Supernodes& sn,
                                              const SolveConfig& cfg,
                                              const std::vector<std::vector<double>>& rhs,
                                              const std::vector<double>& tolerances,
                                              double compact_threshold) {
  const int k = static_cast<int>(rhs.size());
  GEOFEM_CHECK(k >= 1 && k <= simd::kMaxMultiRhs, "solve_system_batched: bad column count");
  GEOFEM_CHECK(tolerances.empty() || tolerances.size() == rhs.size(),
               "solve_system_batched: tolerances must be empty or one per column");
  const std::size_t nd = sys.a.ndof();
  for (const auto& col : rhs)
    GEOFEM_CHECK(col.size() == nd, "solve_system_batched: rhs column size mismatch");

  // Batch-of-1 is the single-RHS pipeline, verbatim: same resilience chain,
  // same precision rung, bit-identical report.
  if (k == 1) {
    fem::System one;
    one.a = sys.a;
    one.b = rhs[0];
    SolveConfig c1 = cfg;
    if (!tolerances.empty()) c1.cg.tolerance = tolerances[0];
    std::vector<SolveReport> out;
    out.push_back(solve_system(one, sn, c1));
    return out;
  }

  GEOFEM_CHECK(cfg.cg.variant == solver::CGVariant::kClassic,
               "solve_system_batched: k > 1 supports CGVariant::kClassic only");
  GEOFEM_CHECK(!cfg.resilience.enabled,
               "solve_system_batched: k > 1 is a direct solve (no resilience chain)");

  std::optional<obs::Attach> session_attach;
  if (cfg.registry) session_attach.emplace(cfg.registry);
  par::TeamScope team_scope(cfg.threads);
  if (obs::Registry* r0 = obs::current()) {
    r0->gauge("core.threads")->set(static_cast<double>(par::threads()));
    r0->gauge("core.simd_lane_width")->set(static_cast<double>(simd::lane_width()));
    r0->set_meta("simd.isa", simd::active_isa());
  }

  SolveReport base;
  Setup s = setup_solve(sys, sn, cfg, cfg.precond, cfg.precision, base);
  base.attempts = {cfg.precond};

  solver::BatchedCGOptions bopt;
  bopt.cg = cfg.cg;
  bopt.tolerances = tolerances;
  bopt.compact_threshold = compact_threshold;

  const auto kk = static_cast<std::size_t>(k);
  std::vector<double> bi(nd * kk), xi(nd * kk, 0.0);
  solver::BatchedCGResult bres;
  const bool natural = cfg.ordering == OrderingKind::kNatural;
  if (natural) {
    for (std::size_t c = 0; c < kk; ++c)
      for (std::size_t d = 0; d < nd; ++d) bi[d * kk + c] = rhs[c][d];
    bres = solver::pcg_batched(sys.a, *s.prec, bi, xi, k, bopt);
  } else {
    // PDJDS/MC path: permute every column into the plan's ordering, solve,
    // permute back below.
    const reorder::DJDSMatrix& dj = *s.plan->djds();
    for (std::size_t c = 0; c < kk; ++c)
      for (int i = 0; i < sys.a.n; ++i)
        for (int d = 0; d < 3; ++d)
          bi[(static_cast<std::size_t>(dj.perm()[static_cast<std::size_t>(i)]) * 3 +
              static_cast<std::size_t>(d)) *
                 kk +
             c] = rhs[c][static_cast<std::size_t>(i) * 3 + static_cast<std::size_t>(d)];
    bres = solver::pcg_batched(
        [&dj](std::span<const double> in, std::span<double> out, util::FlopCounter* fc,
              util::LoopStats* ls) { dj.spmv(in, out, fc, ls); },
        [&dj](std::span<const double> in, std::span<double> out, int kb, util::FlopCounter* fc,
              util::LoopStats* ls) { dj.spmm(in, out, kb, fc, ls); },
        *s.prec, bi, xi, k, bopt);
  }

  std::vector<SolveReport> out;
  out.reserve(kk);
  for (std::size_t c = 0; c < kk; ++c) {
    SolveReport rep = base;
    rep.cg = bres.columns[c];
    rep.cg.solve_seconds = bres.solve_seconds;
    if (c == 0) {
      rep.cg.flops = bres.flops;
      rep.cg.loops = bres.loops;
    }
    rep.status = rep.cg.status;
    rep.solution.assign(nd, 0.0);
    if (natural) {
      for (std::size_t d = 0; d < nd; ++d) rep.solution[d] = xi[d * kk + c];
    } else {
      const reorder::DJDSMatrix& dj = *s.plan->djds();
      for (int i = 0; i < sys.a.n; ++i)
        for (int d = 0; d < 3; ++d)
          rep.solution[static_cast<std::size_t>(i) * 3 + static_cast<std::size_t>(d)] =
              xi[(static_cast<std::size_t>(dj.perm()[static_cast<std::size_t>(i)]) * 3 +
                  static_cast<std::size_t>(d)) *
                     kk +
                 c];
    }
    out.push_back(std::move(rep));
  }
  return out;
}

}  // namespace geofem::core
