#include "core/geofem.hpp"

#include "obs/span.hpp"
#include "plan/plan.hpp"
#include "precond/bic.hpp"
#include "precond/diagonal.hpp"
#include "precond/djds_bic.hpp"
#include "precond/sb_bic0.hpp"
#include "precond/scalar_ic0.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace geofem::core {

std::string to_string(PrecondKind k) { return plan::to_string(k); }

precond::PreconditionerPtr make_preconditioner(PrecondKind kind, const sparse::BlockCSR& a,
                                               const contact::Supernodes& sn) {
  switch (kind) {
    case PrecondKind::kDiagonal: return std::make_unique<precond::DiagonalScaling>(a);
    case PrecondKind::kScalarIC0: return std::make_unique<precond::ScalarIC0>(a);
    case PrecondKind::kBIC0: return std::make_unique<precond::BIC0>(a);
    case PrecondKind::kBIC1: return std::make_unique<precond::BlockILUk>(a, 1);
    case PrecondKind::kBIC2: return std::make_unique<precond::BlockILUk>(a, 2);
    case PrecondKind::kSBBIC0: return std::make_unique<precond::SBBIC0>(a, sn);
  }
  GEOFEM_CHECK(false, "unknown preconditioner kind");
}

SolveReport solve(const mesh::HexMesh& m, const std::vector<fem::Material>& materials,
                  const fem::BoundaryConditions& bc, const SolveConfig& cfg) {
  fem::System sys = fem::assemble_elasticity(m, materials);
  contact::add_penalty(sys.a, m.contact_groups, cfg.penalty);
  fem::apply_boundary_conditions(sys, bc);
  return solve_system(sys, m.contact_groups, cfg);
}

SolveReport solve_system(const fem::System& sys, const std::vector<std::vector<int>>& groups,
                         const SolveConfig& cfg) {
  SolveReport rep;
  rep.matrix_bytes = sys.a.memory_bytes();
  obs::Registry* reg = obs::current();
  // setup span closed (span_end) where setup_seconds is read, in each branch
  const std::size_t setup_idx = reg ? reg->span_begin("core.setup") : 0;
  const auto sn = contact::build_supernodes(sys.a.n, groups);
  util::Timer setup;

  // Plan: everything structure-dependent (symbolic pattern, coloring, DJDS
  // layout), cached across solves on the same graph; then the per-solve
  // numeric factorization.
  plan::PlanConfig pcfg;
  pcfg.precond = cfg.precond;
  pcfg.ordering = cfg.ordering;
  pcfg.colors = cfg.colors;
  pcfg.npe = cfg.npe;
  pcfg.sort_supernodes = cfg.sort_supernodes;
  std::shared_ptr<const plan::SolvePlan> p;
  if (cfg.use_plan_cache) {
    plan::PlanCache& cache = cfg.plan_cache ? *cfg.plan_cache : plan::default_cache();
    const std::uint64_t hits_before = cache.stats().hits;
    p = cache.get(sys.a, sn, pcfg);
    rep.plan_cache = cache.stats();
    rep.plan_reused = rep.plan_cache.hits > hits_before;
  } else {
    p = std::make_shared<plan::SolvePlan>(sys.a, sn, pcfg);
  }
  rep.symbolic_seconds = p->symbolic_seconds();
  util::Timer numeric_timer;
  auto prec = p->numeric(sys.a);
  rep.numeric_seconds = numeric_timer.seconds();
  rep.setup_seconds = setup.seconds();
  if (reg) reg->span_end(setup_idx);
  if (reg) reg->gauge("core.setup_seconds")->set(rep.setup_seconds);
  rep.precond_bytes = prec->memory_bytes();
  rep.precond_name = prec->name();

  if (cfg.ordering == OrderingKind::kNatural) {
    rep.solution.assign(sys.a.ndof(), 0.0);
    rep.cg = solver::pcg(sys.a, *prec, sys.b, rep.solution, cfg.cg);
    return rep;
  }

  // PDJDS/MC path: the plan owns the ordering; solve in the new ordering and
  // permute back.
  const reorder::DJDSMatrix& dj = *p->djds();
  rep.avg_vector_length = dj.average_vector_length();
  rep.load_imbalance_percent = dj.load_imbalance_percent();
  rep.dummy_percent = dj.dummy_percent();
  rep.colors_used = dj.num_colors();
  if (reg) {
    reg->gauge("core.avg_vector_length")->set(rep.avg_vector_length);
    reg->gauge("core.load_imbalance_percent")->set(rep.load_imbalance_percent);
    reg->gauge("core.colors_used")->set(rep.colors_used);
  }

  std::vector<double> pb(sys.a.ndof()), px(sys.a.ndof(), 0.0);
  for (int i = 0; i < sys.a.n; ++i)
    for (int c = 0; c < 3; ++c)
      pb[static_cast<std::size_t>(dj.perm()[static_cast<std::size_t>(i)]) * 3 +
         static_cast<std::size_t>(c)] =
          sys.b[static_cast<std::size_t>(i) * 3 + static_cast<std::size_t>(c)];
  rep.cg = solver::pcg(
      [&dj](std::span<const double> in, std::span<double> out, util::FlopCounter* fc,
            util::LoopStats* ls) { dj.spmv(in, out, fc, ls); },
      *prec, pb, px, cfg.cg);
  rep.solution.assign(sys.a.ndof(), 0.0);
  for (int i = 0; i < sys.a.n; ++i)
    for (int c = 0; c < 3; ++c)
      rep.solution[static_cast<std::size_t>(i) * 3 + static_cast<std::size_t>(c)] =
          px[static_cast<std::size_t>(dj.perm()[static_cast<std::size_t>(i)]) * 3 +
             static_cast<std::size_t>(c)];
  return rep;
}

}  // namespace geofem::core
