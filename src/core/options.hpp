#pragma once

#include "coarse/coarse.hpp"
#include "core/resilience.hpp"
#include "precond/desc.hpp"
#include "solver/cg.hpp"

namespace geofem::plan {
class PlanCache;
}

namespace geofem::core {

/// Knobs shared verbatim by the serial (core::SolveConfig) and distributed
/// (dist::DistOptions) solver entry points. Both embed this base by
/// inheritance, so callers keep the flat spelling (cfg.threads, opt.coarse)
/// while the two option structs can no longer drift apart field by field —
/// the duplication that had crept in between PR 3 and PR 7.
struct SolveOptionsBase {
  /// Inner CG controls (tolerance, max_iterations, record_residuals,
  /// stagnation_window) — one vocabulary for both solvers.
  solver::CGOptions cg;

  /// OpenMP team size of the hybrid kernels (SpMV, BLAS-1, substitution
  /// sweeps); 0 = all hardware threads — the paper's "PEs per SMP node".
  /// Residual histories are bit-identical for any value (DESIGN.md §5e).
  int threads = 0;

  /// Overlap each matvec's interior-row SpMV with halo message delivery.
  /// Distributed solver only — the serial path has no halo exchange, so the
  /// flag is accepted and ignored there. Bit-identical on or off.
  bool overlap = true;

  /// Cache consulted for the structure-dependent set-up (coloring, DJDS
  /// layout, symbolic factorization). Semantics differ slightly per solver:
  /// the serial path substitutes plan::default_cache() when null (see
  /// SolveConfig::use_plan_cache), the distributed path only snapshots the
  /// stats of the cache passed to make_plan_factory.
  plan::PlanCache* plan_cache = nullptr;

  /// Automatic preconditioner fallback on stagnation / breakdown /
  /// factorization failure. Off by default: residual histories with the
  /// default options are bit-identical to a build without the resilience
  /// layer. All distributed fallback decisions are allreduced (lockstep).
  geofem::ResilienceOptions resilience;

  /// Two-level coarse-space correction (DESIGN.md §5h) wrapped around the
  /// preconditioner. A singular coarse operator degrades the solve to one
  /// level (coarse_status == kDegraded) — on every rank together — rather
  /// than failing it.
  coarse::Options coarse;

  /// Stored precision of the preconditioner factors (DESIGN.md §5i). CG
  /// always iterates in fp64; kSingle stores/applies the factors in fp32 —
  /// halving factor bandwidth and doubling AVX2 lane width — and arms an
  /// automatic fp64 re-setup: an fp32 attempt that stagnates or breaks down
  /// is rebuilt at full precision (cold restart, so the recovery's residual
  /// history is bit-identical to a direct fp64 solve) and reported as
  /// SolveStatus::kFellBack. The fp64 safety net is always on under kSingle,
  /// independent of resilience.enabled.
  precond::Precision precision = precond::Precision::kDouble;
};

}  // namespace geofem::core
