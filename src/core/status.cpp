#include "core/status.hpp"

namespace geofem {

std::string to_string(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid argument";
    case StatusCode::kIoError: return "io error";
    case StatusCode::kStalePlan: return "stale plan";
    case StatusCode::kFactorizationFailed: return "factorization failed";
    case StatusCode::kCommTimeout: return "comm timeout";
  }
  return "?";
}

std::string to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::kConverged: return "converged";
    case SolveStatus::kFellBack: return "fell back";
    case SolveStatus::kMaxIterations: return "max iterations";
    case SolveStatus::kStagnated: return "stagnated";
    case SolveStatus::kBreakdown: return "breakdown";
    case SolveStatus::kFactorizationFailed: return "factorization failed";
    case SolveStatus::kCommTimeout: return "comm timeout";
    case SolveStatus::kRejected: return "rejected";
  }
  return "?";
}

}  // namespace geofem
