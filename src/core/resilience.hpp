#pragma once

#include <vector>

#include "plan/fingerprint.hpp"

namespace geofem {

/// Automatic preconditioner fallback with a retry budget (DESIGN.md §5d).
///
/// Off by default: with enabled = false a solve behaves exactly as before the
/// resilience layer existed — bit-identical residual histories, failures
/// surface as their raw SolveStatus. With enabled = true, a failed attempt
/// (stagnation, breakdown, exhausted iterations, factorization failure)
/// rebuilds the preconditioner with the next kind in the chain — through the
/// plan cache, so a fallback to a kind whose plan is already resident pays
/// only the numeric phase — and restarts CG warm from the best iterate so
/// far. A solve that converges this way reports SolveStatus::kFellBack.
struct ResilienceOptions {
  bool enabled = false;

  /// Maximum preconditioner rebuilds after the primary attempt.
  int max_fallbacks = 2;

  /// Stagnation window handed to the inner CG when the caller's CGOptions
  /// leave stagnation detection off (stagnation_window == 0). Without a
  /// window a stalled BIC(0) at high lambda burns the whole iteration budget
  /// before the chain can react. Healthy contact CG can plateau — even rise —
  /// for ~100 iterations before recovering, so the default window is well
  /// above that; a genuinely stagnant solve (Table 2's "did not converge"
  /// regime) makes no progress over any window.
  int stagnation_window = 200;

  /// Preconditioners tried in order after the primary kind fails. Empty
  /// selects default_fallback_chain(primary). Entries equal to the primary
  /// kind are skipped.
  std::vector<plan::PrecondKind> chain;
};

/// Default chain for a failing primary kind, ordered strongest-first:
/// everything falls back to SB-BIC(0) (robust for any penalty number, the
/// paper's Table 2), then to the unconditionally-applicable block diagonal;
/// SB-BIC(0) itself falls back straight to the block diagonal; the diagonal
/// kinds have nowhere further to go.
[[nodiscard]] std::vector<plan::PrecondKind> default_fallback_chain(plan::PrecondKind primary);

}  // namespace geofem
