#pragma once

#include <optional>
#include <string>

#include "contact/penalty.hpp"
#include "fem/assembly.hpp"
#include "mesh/hex_mesh.hpp"
#include "precond/preconditioner.hpp"
#include "reorder/djds.hpp"
#include "solver/cg.hpp"

/// Public one-call API of the library: assemble a contact problem, pick a
/// preconditioner and (optionally) the PDJDS/MC vector ordering, solve, and
/// get the paper-style instrumentation back (iterations, timings, FLOPs,
/// memory, vector-length/imbalance statistics).
namespace geofem::core {

enum class PrecondKind {
  kDiagonal,   ///< point diagonal scaling
  kScalarIC0,  ///< point-wise IC(0)
  kBIC0,       ///< 3x3-block IC(0)
  kBIC1,       ///< block ILU(1)
  kBIC2,       ///< block ILU(2)
  kSBBIC0,     ///< selective blocking (the paper's contribution)
};

[[nodiscard]] std::string to_string(PrecondKind k);

enum class OrderingKind {
  kNatural,     ///< CSR path, mesh order
  kPDJDSMC,     ///< multicolor + descending jagged diagonals + cyclic PE split
  kPDJDSCMRCM,  ///< cyclic-multicolored reverse Cuthill-McKee levels (paper
                ///< §4.6: preferred for simple geometries — fewer iterations
                ///< than MC at the same color count)
};

struct SolveConfig {
  PrecondKind precond = PrecondKind::kSBBIC0;
  double penalty = 1e6;        ///< lambda applied to the mesh contact groups
  OrderingKind ordering = OrderingKind::kNatural;
  int colors = 20;             ///< MC target color count (PDJDS path)
  int npe = 8;                 ///< PEs per SMP node (PDJDS path)
  bool sort_supernodes = true; ///< Fig 22 switch
  solver::CGOptions cg;
};

struct SolveReport {
  solver::CGResult cg;
  std::vector<double> solution;    ///< mesh ordering, 3 DOF per node
  std::string precond_name;
  double setup_seconds = 0.0;      ///< reorder + factorization
  std::size_t matrix_bytes = 0;
  std::size_t precond_bytes = 0;
  // PDJDS statistics (zero on the CSR path)
  double avg_vector_length = 0.0;
  double load_imbalance_percent = 0.0;
  double dummy_percent = 0.0;
  int colors_used = 0;
};

/// Build the requested preconditioner on an assembled matrix. `sn` is only
/// used by kSBBIC0 (copied).
precond::PreconditionerPtr make_preconditioner(PrecondKind kind, const sparse::BlockCSR& a,
                                               const contact::Supernodes& sn);

/// Assemble (elasticity + penalty + boundary conditions) and solve.
SolveReport solve(const mesh::HexMesh& m, const std::vector<fem::Material>& materials,
                  const fem::BoundaryConditions& bc, const SolveConfig& cfg);

/// Solve a prepared system (penalty and BCs already applied). `groups` are
/// the contact groups of the matrix (for selective blocking).
SolveReport solve_system(const fem::System& sys, const std::vector<std::vector<int>>& groups,
                         const SolveConfig& cfg);

}  // namespace geofem::core
