#pragma once

#include <optional>
#include <string>

#include "coarse/coarse.hpp"
#include "contact/penalty.hpp"
#include "core/options.hpp"
#include "core/resilience.hpp"
#include "core/status.hpp"
#include "fem/assembly.hpp"
#include "mesh/hex_mesh.hpp"
#include "plan/cache.hpp"
#include "plan/fingerprint.hpp"
#include "precond/preconditioner.hpp"
#include "reorder/djds.hpp"
#include "solver/cg.hpp"

namespace geofem::obs {
class Registry;
}

/// Public one-call API of the library: assemble a contact problem, pick a
/// preconditioner and (optionally) the PDJDS/MC vector ordering, solve, and
/// get the paper-style instrumentation back (iterations, timings, FLOPs,
/// memory, vector-length/imbalance statistics).
namespace geofem::core {

// The structure-relevant vocabulary lives with the plan subsystem (it keys
// the plan cache); aliased here so core callers keep spelling
// core::PrecondKind::kSBBIC0 etc.
using PrecondKind = plan::PrecondKind;
using OrderingKind = plan::OrderingKind;

[[nodiscard]] std::string to_string(PrecondKind k);

/// Shared solver knobs (cg, threads, overlap, plan_cache, resilience, coarse,
/// precision) live in core::SolveOptionsBase — one header embedded by this
/// struct and dist::DistOptions alike — so the two entry points cannot drift.
struct SolveConfig : SolveOptionsBase {
  PrecondKind precond = PrecondKind::kSBBIC0;
  double penalty = 1e6;        ///< lambda applied to the mesh contact groups
  OrderingKind ordering = OrderingKind::kNatural;
  int colors = 20;             ///< MC target color count (PDJDS path)
  int npe = 8;                 ///< PEs per SMP node (PDJDS path)
  bool sort_supernodes = true; ///< Fig 22 switch
  /// Consult the plan cache (SolveOptionsBase::plan_cache, or the
  /// process-wide plan::default_cache() when that is null) for the
  /// structure-dependent set-up; false always rebuilds.
  bool use_plan_cache = true;
  /// Re-entrant session entry (svc::SolverService): when set, this registry
  /// is obs::Attach-ed to the calling thread for the duration of the solve,
  /// so concurrent sessions in one process record telemetry independently
  /// without the caller managing attachment around every call. Null keeps
  /// whatever registry the thread already has attached.
  obs::Registry* registry = nullptr;
};

struct SolveReport {
  /// Outcome of the whole pipeline. Equal to cg.status for a direct solve;
  /// kFellBack when a fallback rebuild recovered convergence;
  /// kFactorizationFailed when every attempted factorization threw.
  SolveStatus status = SolveStatus::kMaxIterations;
  /// Preconditioner kinds tried in order; the last one produced `cg`.
  std::vector<PrecondKind> attempts;
  /// CG iterations / set-up seconds burnt in earlier failed attempts (zero
  /// for a direct solve).
  int fallback_iterations = 0;
  double fallback_setup_seconds = 0.0;
  solver::CGResult cg;
  std::vector<double> solution;    ///< mesh ordering, 3 DOF per node
  /// Structured identity of the preconditioner that produced `cg` (kind,
  /// precision, PDJDS, coarse mode/dim). `precond_name` is its rendering
  /// (Desc::display_name()), kept for table/report compatibility.
  precond::Desc precond;
  std::string precond_name;
  /// fp32 attempts re-set-up at fp64 after stagnation/breakdown (0 or 1).
  int precision_fallbacks = 0;
  double setup_seconds = 0.0;      ///< reorder + factorization
  std::size_t matrix_bytes = 0;
  std::size_t precond_bytes = 0;
  // PDJDS statistics (zero on the CSR path)
  double avg_vector_length = 0.0;
  double load_imbalance_percent = 0.0;
  double dummy_percent = 0.0;
  int colors_used = 0;
  // plan reuse
  bool plan_reused = false;        ///< set-up came from a cached plan
  double symbolic_seconds = 0.0;   ///< structure phase when the plan was built
  double numeric_seconds = 0.0;    ///< value phase of this solve
  plan::CacheStats plan_cache;     ///< stats of the cache consulted
  // two-level coarse correction (kOff unless SolveConfig::coarse.enabled)
  coarse::SetupStatus coarse_status = coarse::SetupStatus::kOff;
  int coarse_dim = 0;              ///< coarse DOFs (3 per aggregate) when active
  double coarse_setup_seconds = 0.0;  ///< Galerkin assembly + dense factorization

  [[nodiscard]] bool converged() const { return ok(status); }
};

/// Build the requested preconditioner on an assembled matrix. `sn` is only
/// used by kSBBIC0 (copied). `precision` selects the stored factor scalar
/// (kSingle = fp32 mirrors; throws Error(kFactorizationFailed) on narrowing
/// overflow).
precond::PreconditionerPtr make_preconditioner(
    PrecondKind kind, const sparse::BlockCSR& a, const contact::Supernodes& sn,
    precond::Precision precision = precond::Precision::kDouble);

/// Assemble (elasticity + penalty + boundary conditions) and solve.
SolveReport solve(const mesh::HexMesh& m, const std::vector<fem::Material>& materials,
                  const fem::BoundaryConditions& bc, const SolveConfig& cfg);

/// Solve a prepared system (penalty and BCs already applied). `sn` is the
/// supernode map built from the matrix's contact groups (selective blocking),
/// so callers can't hand in a group list inconsistent with the matrix they
/// assembled it from.
SolveReport solve_system(const fem::System& sys, const contact::Supernodes& sn,
                         const SolveConfig& cfg);

/// Batched multi-RHS entry (DESIGN.md §5k): solve A x_c = b_c for the k
/// right-hand sides in `rhs` (each ndof long; sys.b is ignored) sharing ONE
/// set-up (plan lookup + numeric factorization) and one batched CG in which
/// every iteration does a single SpMM and a single multi-column
/// preconditioner application for all live columns. Returns one SolveReport
/// per column, in order: per-column status / iterations / residuals /
/// solution; the shared set-up bookkeeping (plan reuse, timings, bytes) is
/// replicated into every report, the shared CG flops/loops are carried by
/// column 0 only (summing across columns would double-count shared work),
/// and every column's cg.solve_seconds is the batch wall time.
///
/// `tolerances` is empty (every column uses cfg.cg.tolerance) or one entry
/// per column. `compact_threshold` forwards to
/// solver::BatchedCGOptions::compact_threshold.
///
/// Contract: rhs.size() == 1 delegates wholesale to solve_system (with the
/// tolerance override applied) — bit-identical report. k > 1 is the direct
/// solve path only: CGVariant::kClassic is required and
/// cfg.resilience.enabled must be false (checked) — a column that breaks
/// down or stalls just reports its own status, it never triggers a chain
/// rebuild. cfg.precision == kSingle is honored (fp32-stored factors) but
/// without the single-RHS path's automatic fp64 re-set-up.
std::vector<SolveReport> solve_system_batched(const fem::System& sys,
                                              const contact::Supernodes& sn,
                                              const SolveConfig& cfg,
                                              const std::vector<std::vector<double>>& rhs,
                                              const std::vector<double>& tolerances = {},
                                              double compact_threshold = 0.5);

}  // namespace geofem::core
