#pragma once

#include <stdexcept>
#include <string>

/// geofem — shared failure vocabulary (DESIGN.md §5d).
///
/// Two complementary types cover every way a solve pipeline can go wrong:
///
///  * geofem::Error (with a StatusCode) is *thrown* by set-up and I/O paths —
///    a stale plan, an unusable pivot, a malformed mesh stream, an expired
///    communication deadline. It replaces the previous ad-hoc
///    std::runtime_error / std::logic_error strings so callers can dispatch
///    on code() instead of parsing what().
///
///  * geofem::SolveStatus is *returned* by solver results (CGResult,
///    core::SolveReport, dist::DistResult, nonlin::ALMResult). It replaces
///    the former `bool converged`: ok(status) is the old `converged`, and the
///    failure states say *why* a solve did not converge — the paper's Table 2
///    "did not converge" cells, typed.
namespace geofem {

/// Error category carried by geofem::Error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,      ///< API contract violation (sizes, index ranges)
  kIoError,              ///< mesh / local-data stream parse or file failure
  kStalePlan,            ///< plan::SolvePlan::numeric on a mismatched graph
  kFactorizationFailed,  ///< zero / non-finite pivot beyond the reset remedy
  kCommTimeout,          ///< a blocking dist::Comm op exceeded its deadline
};

[[nodiscard]] std::string to_string(StatusCode c);

/// Exception with a machine-readable category. what() is prefixed with the
/// code name, so existing string-matching diagnostics keep working.
class Error : public std::runtime_error {
 public:
  Error(StatusCode code, const std::string& what)
      : std::runtime_error(to_string(code) + ": " + what), code_(code) {}

  [[nodiscard]] StatusCode code() const { return code_; }

 private:
  StatusCode code_;
};

/// Outcome of one linear (or outer nonlinear) solve.
enum class SolveStatus {
  kConverged = 0,        ///< tolerance reached with the requested preconditioner
  kFellBack,             ///< tolerance reached, but only after >=1 fallback rebuild
  kMaxIterations,        ///< iteration budget exhausted without breakdown
  kStagnated,            ///< no residual progress over the stagnation window
  kBreakdown,            ///< CG breakdown: rho <= 0, p.Ap <= 0 or non-finite
  kFactorizationFailed,  ///< preconditioner set-up hit an unusable pivot
  kCommTimeout,          ///< distributed only: a communication deadline expired
  kRejected,             ///< service admission control: queue full, never solved
};

[[nodiscard]] std::string to_string(SolveStatus s);

/// The two success states. ok(status) is the old `bool converged`.
[[nodiscard]] constexpr bool ok(SolveStatus s) {
  return s == SolveStatus::kConverged || s == SolveStatus::kFellBack;
}

}  // namespace geofem
