#include "plan/plan.hpp"

#include "core/status.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "precond/diagonal.hpp"
#include "precond/djds_bic.hpp"
#include "precond/two_level.hpp"
#include "reorder/coloring.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace geofem::plan {

using sparse::kB;

SolvePlan::SolvePlan(const sparse::BlockCSR& a, const contact::Supernodes& sn,
                     const PlanConfig& cfg, const coarse::AggregateMap* agg, int restrict_nodes)
    : cfg_(cfg), sn_(sn) {
  obs::ScopedSpan span("plan.symbolic");
  util::Timer timer;
  graph_hash_ = graph_fingerprint(a);
  key_ = make_key(a, sn, cfg, agg, restrict_nodes);
  if (cfg.coarse) {
    GEOFEM_CHECK(agg != nullptr, "SolvePlan: coarse-enabled config needs an aggregate map");
    coarse_ = std::make_shared<coarse::CoarseSymbolic>(
        *agg, restrict_nodes < 0 ? a.n : restrict_nodes);
  }

  if (cfg.ordering == OrderingKind::kNatural) {
    switch (cfg.precond) {
      case PrecondKind::kDiagonal:
      case PrecondKind::kBlockDiagonal:
      case PrecondKind::kBIC0:
        break;  // no symbolic state beyond the matrix graph itself
      case PrecondKind::kScalarIC0:
        ic0_ = precond::scalar_ic0_symbolic(a);
        break;
      case PrecondKind::kBIC1:
        iluk_ = precond::iluk_symbolic(a, 1);
        break;
      case PrecondKind::kBIC2:
        iluk_ = precond::iluk_symbolic(a, 2);
        break;
      case PrecondKind::kSBBIC0:
        sb_ = precond::sb_symbolic(a, sn_);
        break;
    }
  } else {
    // PDJDS/MC path: only the no-fill preconditioners have a vectorized form.
    GEOFEM_CHECK(ordering_supports(cfg.ordering, cfg.precond),
                 "PDJDS path supports BIC(0) and SB-BIC(0)");
    const bool selective = cfg.precond == PrecondKind::kSBBIC0;
    const auto g = sparse::graph_of(a);
    const bool cmrcm = cfg.ordering == OrderingKind::kPDJDSCMRCM;
    auto color_graph = [&](const sparse::Graph& gr) {
      return cmrcm ? reorder::cm_rcm(gr, cfg.colors) : reorder::multicolor(gr, cfg.colors);
    };
    reorder::Coloring coloring;
    if (selective) {
      const auto q = reorder::quotient_graph(g, sn_.node_to_super, sn_.count());
      coloring = reorder::lift_coloring(color_graph(q), sn_.node_to_super, a.n);
    } else {
      coloring = color_graph(g);
    }
    reorder::DJDSOptions opt;
    opt.npe = cfg.npe;
    opt.sort_supernodes_by_size = cfg.sort_supernodes;
    dj_ = std::make_unique<reorder::DJDSMatrix>(a, coloring, selective ? &sn_ : nullptr, opt);
  }
  symbolic_seconds_ = timer.seconds();
}

std::size_t SolvePlan::memory_bytes() const {
  std::size_t bytes = sn_.node_to_super.size() * sizeof(int);
  for (const auto& mem : sn_.members) bytes += mem.size() * sizeof(int);
  if (iluk_) bytes += iluk_->memory_bytes();
  if (ic0_) bytes += ic0_->memory_bytes();
  if (sb_) bytes += sb_->memory_bytes();
  if (dj_) bytes += dj_->memory_bytes();
  return bytes;
}

precond::PreconditionerPtr SolvePlan::numeric(const sparse::BlockCSR& a) const {
  if (a.n != key_.n || a.nnz_blocks() != key_.nnz_blocks || graph_fingerprint(a) != graph_hash_)
    throw Error(StatusCode::kStalePlan,
                "SolvePlan::numeric: matrix graph does not match the plan");
  obs::ScopedSpan span("plan.numeric");
  if (dj_) {
    std::lock_guard lock(numeric_mtx_);
    dj_->refill(a);
    return std::make_unique<precond::DJDSBIC>(a, *dj_, cfg_.precision);
  }
  switch (cfg_.precond) {
    case PrecondKind::kDiagonal:
      return std::make_unique<precond::DiagonalScaling>(a, cfg_.precision);
    case PrecondKind::kBlockDiagonal:
      return std::make_unique<precond::BlockDiagonal>(a, cfg_.precision);
    case PrecondKind::kScalarIC0:
      return std::make_unique<precond::ScalarIC0>(a, ic0_, cfg_.precision);
    case PrecondKind::kBIC0: return std::make_unique<precond::BIC0>(a, cfg_.precision);
    case PrecondKind::kBIC1:
    case PrecondKind::kBIC2:
      return std::make_unique<precond::BlockILUk>(a, iluk_, cfg_.precision);
    case PrecondKind::kSBBIC0:
      return std::make_unique<precond::SBBIC0>(a, sn_, sb_, cfg_.precision);
  }
  throw Error(StatusCode::kInvalidArgument, "unknown preconditioner kind");
}

std::shared_ptr<const std::vector<double>> SolvePlan::coarse_contribution(
    const sparse::BlockCSR& a) const {
  GEOFEM_CHECK(coarse_ != nullptr, "coarse_contribution: plan has no coarse space");
  if (a.n != key_.n || a.nnz_blocks() != key_.nnz_blocks || graph_fingerprint(a) != graph_hash_)
    throw Error(StatusCode::kStalePlan,
                "SolvePlan::coarse_contribution: matrix graph does not match the plan");
  Fnv1a vh;
  vh.doubles(std::span<const double>(a.val.data(), a.val.size()));
  const std::uint64_t h = vh.digest();
  std::lock_guard lock(numeric_mtx_);
  if (!coarse_contrib_ || coarse_val_hash_ != h) {
    obs::ScopedSpan span("plan.coarse.assemble");
    coarse_contrib_ =
        std::make_shared<const std::vector<double>>(coarse::accumulate(a, *coarse_));
    coarse_op_.reset();  // the factored operator memo is for these values only
    coarse_val_hash_ = h;
  }
  return coarse_contrib_;
}

std::shared_ptr<const coarse::CoarseOperator> SolvePlan::coarse_numeric(
    const sparse::BlockCSR& a) const {
  auto contrib = coarse_contribution(a);  // refreshes the value hash
  std::lock_guard lock(numeric_mtx_);
  if (!coarse_op_) {
    obs::ScopedSpan span("plan.coarse.factor");
    coarse_op_ = std::make_shared<const coarse::CoarseOperator>(coarse_, *contrib);
  }
  return coarse_op_;
}

PlannedPreconditioner::PlannedPreconditioner(std::shared_ptr<const SolvePlan> plan,
                                             const sparse::BlockCSR& a)
    : plan_(std::move(plan)) {
  GEOFEM_CHECK(plan_ != nullptr, "PlannedPreconditioner: null plan");
  inner_ = plan_->numeric(a);
  if (plan_->vectorized()) {
    pr_.resize(static_cast<std::size_t>(plan_->key().n) * kB);
    pz_.resize(pr_.size());
  }
}

void PlannedPreconditioner::apply(std::span<const double> r, std::span<double> z,
                                  util::FlopCounter* flops, util::LoopStats* loops) const {
  if (!plan_->vectorized()) {
    inner_->apply(r, z, flops, loops);
    return;
  }
  const auto& perm = plan_->djds()->perm();
  const int n = plan_->key().n;
  for (int i = 0; i < n; ++i)
    for (int c = 0; c < kB; ++c)
      pr_[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)]) * kB +
          static_cast<std::size_t>(c)] = r[static_cast<std::size_t>(i) * kB + static_cast<std::size_t>(c)];
  inner_->apply(pr_, pz_, flops, loops);
  for (int i = 0; i < n; ++i)
    for (int c = 0; c < kB; ++c)
      z[static_cast<std::size_t>(i) * kB + static_cast<std::size_t>(c)] =
          pz_[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)]) * kB +
              static_cast<std::size_t>(c)];
}

std::function<precond::PreconditionerPtr(const sparse::BlockCSR&)> cached_builder(
    PlanCache& cache, PlanConfig cfg, std::vector<std::vector<int>> groups) {
  // The supernode map is a pure function of (n, groups), so detect it once
  // per matrix size instead of on every refactorization of a Newton loop.
  auto memo = std::make_shared<std::pair<int, contact::Supernodes>>(-1, contact::Supernodes{});
  return [&cache, cfg, groups = std::move(groups),
          memo](const sparse::BlockCSR& a) -> precond::PreconditionerPtr {
    if (memo->first != a.n) *memo = {a.n, contact::build_supernodes(a.n, groups)};
    return std::make_unique<PlannedPreconditioner>(cache.get(a, memo->second, cfg), a);
  };
}

std::function<precond::PreconditionerPtr(const sparse::BlockCSR&)> cached_builder(
    PlanCache& cache, PlanConfig cfg, std::vector<std::vector<int>> groups, coarse::Options copt,
    coarse::SetupStatus* status) {
  if (!copt.enabled) {
    if (status) *status = coarse::SetupStatus::kOff;
    return cached_builder(cache, cfg, std::move(groups));
  }
  cfg.coarse = true;
  struct Memo {
    int n = -1;
    contact::Supernodes sn;
    coarse::AggregateMap agg;
  };
  auto memo = std::make_shared<Memo>();
  return [&cache, cfg, copt, status, groups = std::move(groups),
          memo](const sparse::BlockCSR& a) -> precond::PreconditionerPtr {
    if (memo->n != a.n) {
      memo->n = a.n;
      memo->sn = contact::build_supernodes(a.n, groups);
      memo->agg = coarse::single_aggregate(a.n);
      if (copt.aggregates == coarse::Aggregates::kPerContactGroup)
        memo->agg = coarse::refine_by_groups(std::move(memo->agg), groups);
    }
    auto plan = cache.get(a, memo->sn, cfg, nullptr, &memo->agg);
    auto fine = std::make_unique<PlannedPreconditioner>(plan, a);
    try {
      // Factor the coarse level before handing `fine` to the wrapper, so a
      // singular A_c leaves a valid one-level preconditioner to fall back on.
      auto op = plan->coarse_numeric(a);
      if (status) *status = coarse::SetupStatus::kActive;
      return std::make_unique<precond::TwoLevel>(std::move(fine), std::move(op), a, copt.mode);
    } catch (const Error& e) {
      if (e.code() != StatusCode::kFactorizationFailed) throw;
      if (obs::Registry* reg = obs::current()) reg->counter("coarse.degraded")->add(1);
      if (status) *status = coarse::SetupStatus::kDegraded;
      return fine;
    }
  };
}

}  // namespace geofem::plan
