#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>

#include "contact/penalty.hpp"
#include "precond/desc.hpp"
#include "sparse/block_csr.hpp"

namespace geofem::coarse {
struct AggregateMap;
}

/// geofem::plan — the solve-plan subsystem (DESIGN.md §5c).
///
/// A SolvePlan captures everything *structure-dependent* about one linear
/// system: matrix graph, supernode map, coloring, DJDS layout, symbolic
/// factorization patterns. Plans are keyed by a deterministic fingerprint of
/// the graph plus the structure-relevant solver configuration, so repeated
/// solves on structurally identical systems (Newton/ALM cycles, penalty
/// sweeps) pay the symbolic cost once and only refresh numeric values.
namespace geofem::plan {

/// Which preconditioner a plan prepares. The enum itself lives with the
/// structured identity (precond::Desc, precond/desc.hpp); it is aliased here
/// (and as core::PrecondKind) because the kind is structure-relevant — it
/// selects the symbolic phase and keys the plan cache.
using PrecondKind = precond::PrecondKind;

[[nodiscard]] inline std::string to_string(PrecondKind k) { return precond::to_string(k); }

enum class OrderingKind {
  kNatural,     ///< CSR path, mesh order
  kPDJDSMC,     ///< multicolor + descending jagged diagonals + cyclic PE split
  kPDJDSCMRCM,  ///< cyclic-multicolored reverse Cuthill-McKee levels (paper
                ///< §4.6: preferred for simple geometries — fewer iterations
                ///< than MC at the same color count)
};

/// Whether a plan can be built for (ordering, kind): the PDJDS orderings only
/// have vectorized forms of the no-fill kinds (plan.cpp enforces this); every
/// kind is available in the natural ordering.
[[nodiscard]] constexpr bool ordering_supports(OrderingKind o, PrecondKind p) {
  return o == OrderingKind::kNatural || p == PrecondKind::kBIC0 || p == PrecondKind::kSBBIC0;
}

/// The structure-relevant subset of the solver configuration: everything that
/// changes a plan's symbolic phase. Numeric-only knobs (penalty value, CG
/// tolerance) deliberately stay out so a lambda sweep reuses one plan.
struct PlanConfig {
  PrecondKind precond = PrecondKind::kSBBIC0;
  OrderingKind ordering = OrderingKind::kNatural;
  int colors = 20;              ///< MC target color count (PDJDS path)
  int npe = 8;                  ///< PEs per SMP node (PDJDS path)
  bool sort_supernodes = true;  ///< Fig 22 switch (PDJDS path)
  /// Stored precision of the factors the numeric phase produces. Strictly a
  /// value-layout choice, but it is keyed (kSingle perturbs the hash; kDouble
  /// leaves historical keys unchanged) so warm reuse never hands an fp32
  /// factorization to an fp64 solve or vice versa.
  precond::Precision precision = precond::Precision::kDouble;
  /// Plan additionally carries the two-level coarse schedule (aggregate
  /// member lists + Galerkin assembly memo). Coarse-enabled keys hash the
  /// aggregate map, so the same graph with and without a coarse space — or
  /// with different aggregations — are distinct plans.
  bool coarse = false;
};

/// Incremental FNV-1a 64-bit hash. Byte-order sensitive by construction, so
/// permuting index arrays changes the digest.
class Fnv1a {
 public:
  Fnv1a& bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= p[i];
      h_ *= 1099511628211ULL;
    }
    return *this;
  }
  template <class T>
  Fnv1a& pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    return bytes(&v, sizeof v);
  }
  /// Index arrays are the bulk of a fingerprint, so fold them 8 bytes per
  /// multiply instead of byte-at-a-time (~8x faster on rowptr/colind). The
  /// coarser diffusion is fine for cache keying: PlanKey carries (n, nnz) as
  /// a second factor, and permuted indices still land in different words.
  Fnv1a& ints(std::span<const int> v) {
    std::size_t i = 0;
    for (; i + 2 <= v.size(); i += 2) {
      std::uint64_t w;
      std::memcpy(&w, v.data() + i, sizeof w);
      h_ ^= w;
      h_ *= 1099511628211ULL;
    }
    if (i < v.size()) pod(v[i]);
    return *this;
  }
  /// Value arrays (matrix entries): one fold per double. Used by the coarse
  /// assembly memo to detect unchanged numeric values cheaply.
  Fnv1a& doubles(std::span<const double> v) {
    for (double d : v) {
      std::uint64_t w;
      std::memcpy(&w, &d, sizeof w);
      h_ ^= w;
      h_ *= 1099511628211ULL;
    }
    return *this;
  }

  [[nodiscard]] std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = 14695981039346656037ULL;
};

/// Identity of a plan: the FNV-1a digest plus the raw dimensions as a cheap
/// second factor against hash collisions.
struct PlanKey {
  std::uint64_t hash = 0;
  int n = 0;           ///< block rows
  int nnz_blocks = 0;  ///< stored blocks

  [[nodiscard]] bool operator==(const PlanKey& o) const {
    return hash == o.hash && n == o.n && nnz_blocks == o.nnz_blocks;
  }
};

/// Fingerprint of the matrix graph alone: n, row pointers, column indices.
[[nodiscard]] std::uint64_t graph_fingerprint(const sparse::BlockCSR& a);

/// Full plan key: graph + supernode map + the structure-relevant config
/// fields. PDJDS-only knobs (colors, npe, supernode sort) are hashed only on
/// the PDJDS orderings, so natural-ordering plans are shared across them.
/// Coarse-enabled configs (cfg.coarse) additionally hash the aggregate map
/// and the restricted-node count (`restrict_nodes`; -1 means all of a.n —
/// distributed local systems restrict over their internal nodes only).
[[nodiscard]] PlanKey make_key(const sparse::BlockCSR& a, const contact::Supernodes& sn,
                               const PlanConfig& cfg,
                               const coarse::AggregateMap* agg = nullptr,
                               int restrict_nodes = -1);

}  // namespace geofem::plan
