#include "plan/cache.hpp"

#include <string>

#include "obs/registry.hpp"
#include "plan/plan.hpp"

namespace geofem::plan {

namespace {

void bump(const char* name) {
  if (obs::Registry* reg = obs::current()) reg->counter(name)->add(1);
}

}  // namespace

PlanCache::PlanCache(std::size_t capacity, std::size_t shards) {
  if (shards == 0) shards = 1;
  if (capacity == 0) capacity = 1;
  shard_capacity_ = (capacity + shards - 1) / shards;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) shards_.push_back(std::make_unique<Shard>());
}

PlanCache::~PlanCache() = default;

std::shared_ptr<const SolvePlan> PlanCache::get(const sparse::BlockCSR& a,
                                                const contact::Supernodes& sn,
                                                const PlanConfig& cfg, bool* hit,
                                                const coarse::AggregateMap* agg,
                                                int restrict_nodes) {
  const PlanKey key = make_key(a, sn, cfg, agg, restrict_nodes);
  Shard& sh = shard_for(key);
  {
    std::lock_guard lock(sh.mtx);
    if (auto it = sh.map.find(key); it != sh.map.end()) {
      sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
      ++sh.stats.hits;
      bump("plan.cache.hit");
      if (hit) *hit = true;
      return *it->second;
    }
    // Count the miss at lookup time, not after the build: a concurrent
    // stats() reader then always sees hits + misses == completed lookups.
    ++sh.stats.misses;
    bump("plan.cache.miss");
  }
  if (hit) *hit = false;
  // Build outside the lock: concurrent sessions building distinct plans do
  // not serialize, and symbolic set-up can be expensive.
  auto plan = std::make_shared<const SolvePlan>(a, sn, cfg, agg, restrict_nodes);
  std::lock_guard lock(sh.mtx);
  if (auto it = sh.map.find(key); it != sh.map.end()) {
    // Lost a race with another thread building the same plan; keep theirs
    // (the lookup was already counted as a miss — this get() did build).
    sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
    return *it->second;
  }
  sh.lru.push_front(plan);
  sh.map.emplace(key, sh.lru.begin());
  while (sh.lru.size() > shard_capacity_) {
    sh.map.erase(sh.lru.back()->key());
    sh.lru.pop_back();
    ++sh.stats.evictions;
    bump("plan.cache.evict");
  }
  return plan;
}

CacheStats PlanCache::stats() const {
  CacheStats total;
  for (const auto& sh : shards_) {
    std::lock_guard lock(sh->mtx);
    CacheStats s = sh->stats;
    s.entries = sh->lru.size();
    total += s;
  }
  return total;
}

std::vector<CacheStats> PlanCache::shard_stats() const {
  std::vector<CacheStats> out;
  out.reserve(shards_.size());
  for (const auto& sh : shards_) {
    std::lock_guard lock(sh->mtx);
    CacheStats s = sh->stats;
    s.entries = sh->lru.size();
    out.push_back(s);
  }
  return out;
}

void PlanCache::clear() {
  for (const auto& sh : shards_) {
    std::lock_guard lock(sh->mtx);
    sh->lru.clear();
    sh->map.clear();
    sh->stats = CacheStats{};
  }
}

void PlanCache::publish(obs::Registry& reg, std::string_view prefix) const {
  const std::string p(prefix);
  const std::vector<CacheStats> per_shard = shard_stats();
  CacheStats total;
  for (const CacheStats& s : per_shard) total += s;
  reg.gauge(p + ".hits")->set(static_cast<double>(total.hits));
  reg.gauge(p + ".misses")->set(static_cast<double>(total.misses));
  reg.gauge(p + ".evictions")->set(static_cast<double>(total.evictions));
  reg.gauge(p + ".entries")->set(static_cast<double>(total.entries));
  reg.gauge(p + ".capacity")->set(static_cast<double>(capacity()));
  reg.gauge(p + ".shards")->set(static_cast<double>(shard_count()));
  for (std::size_t i = 0; i < per_shard.size(); ++i)
    reg.gauge(p + ".shard." + std::to_string(i) + ".entries")
        ->set(static_cast<double>(per_shard[i].entries));
}

PlanCache& default_cache() {
  // Four shards: concurrent core::solve() callers that share the process-wide
  // cache stop contending on one mutex; single-threaded behavior is unchanged.
  static PlanCache cache(8, 4);
  return cache;
}

}  // namespace geofem::plan
