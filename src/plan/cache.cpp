#include "plan/cache.hpp"

#include "obs/registry.hpp"
#include "plan/plan.hpp"

namespace geofem::plan {

namespace {

void bump(const char* name) {
  if (obs::Registry* reg = obs::current()) reg->counter(name)->add(1);
}

}  // namespace

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

PlanCache::~PlanCache() = default;

std::shared_ptr<const SolvePlan> PlanCache::get(const sparse::BlockCSR& a,
                                                const contact::Supernodes& sn,
                                                const PlanConfig& cfg) {
  const PlanKey key = make_key(a, sn, cfg);
  {
    std::lock_guard lock(mtx_);
    if (auto it = map_.find(key); it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++stats_.hits;
      bump("plan.cache.hit");
      return *it->second;
    }
  }
  // Build outside the lock: concurrent ranks building distinct plans do not
  // serialize, and symbolic set-up can be expensive.
  auto plan = std::make_shared<const SolvePlan>(a, sn, cfg);
  std::lock_guard lock(mtx_);
  ++stats_.misses;
  bump("plan.cache.miss");
  if (auto it = map_.find(key); it != map_.end()) {
    // Lost a race with another thread building the same plan; keep theirs.
    lru_.splice(lru_.begin(), lru_, it->second);
    return *it->second;
  }
  lru_.push_front(plan);
  map_.emplace(key, lru_.begin());
  while (lru_.size() > capacity_) {
    map_.erase(lru_.back()->key());
    lru_.pop_back();
    ++stats_.evictions;
    bump("plan.cache.evict");
  }
  return plan;
}

CacheStats PlanCache::stats() const {
  std::lock_guard lock(mtx_);
  CacheStats s = stats_;
  s.entries = lru_.size();
  return s;
}

void PlanCache::clear() {
  std::lock_guard lock(mtx_);
  lru_.clear();
  map_.clear();
  stats_ = CacheStats{};
}

PlanCache& default_cache() {
  static PlanCache cache;
  return cache;
}

}  // namespace geofem::plan
