#include "plan/fingerprint.hpp"

namespace geofem::plan {

std::string to_string(PrecondKind k) {
  switch (k) {
    case PrecondKind::kDiagonal: return "Diagonal";
    case PrecondKind::kScalarIC0: return "IC(0) scalar";
    case PrecondKind::kBIC0: return "BIC(0)";
    case PrecondKind::kBIC1: return "BIC(1)";
    case PrecondKind::kBIC2: return "BIC(2)";
    case PrecondKind::kSBBIC0: return "SB-BIC(0)";
    case PrecondKind::kBlockDiagonal: return "BlockDiagonal";
  }
  return "?";
}

std::uint64_t graph_fingerprint(const sparse::BlockCSR& a) {
  Fnv1a h;
  h.pod(a.n);
  h.ints(a.rowptr);
  h.ints(a.colind);
  return h.digest();
}

PlanKey make_key(const sparse::BlockCSR& a, const contact::Supernodes& sn,
                 const PlanConfig& cfg) {
  Fnv1a h;
  h.pod(a.n);
  h.ints(a.rowptr);
  h.ints(a.colind);
  h.ints(sn.node_to_super);
  h.pod(static_cast<int>(cfg.precond));
  h.pod(static_cast<int>(cfg.ordering));
  if (cfg.ordering != OrderingKind::kNatural) {
    h.pod(cfg.colors);
    h.pod(cfg.npe);
    h.pod(static_cast<int>(cfg.sort_supernodes));
  }
  return PlanKey{h.digest(), a.n, a.nnz_blocks()};
}

}  // namespace geofem::plan
