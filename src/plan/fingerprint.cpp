#include "plan/fingerprint.hpp"

#include "coarse/aggregates.hpp"
#include "util/check.hpp"

namespace geofem::plan {

std::uint64_t graph_fingerprint(const sparse::BlockCSR& a) {
  Fnv1a h;
  h.pod(a.n);
  h.ints(a.rowptr);
  h.ints(a.colind);
  return h.digest();
}

PlanKey make_key(const sparse::BlockCSR& a, const contact::Supernodes& sn,
                 const PlanConfig& cfg, const coarse::AggregateMap* agg,
                 int restrict_nodes) {
  Fnv1a h;
  h.pod(a.n);
  h.ints(a.rowptr);
  h.ints(a.colind);
  h.ints(sn.node_to_super);
  h.pod(static_cast<int>(cfg.precond));
  h.pod(static_cast<int>(cfg.ordering));
  // Precision perturbs the key only when it deviates from the default, so
  // every pre-existing fp64 key (and any serialized digest) is unchanged.
  if (cfg.precision != precond::Precision::kDouble)
    h.pod(static_cast<int>(cfg.precision));
  if (cfg.ordering != OrderingKind::kNatural) {
    h.pod(cfg.colors);
    h.pod(cfg.npe);
    h.pod(static_cast<int>(cfg.sort_supernodes));
  }
  if (cfg.coarse) {
    GEOFEM_CHECK(agg != nullptr, "make_key: coarse-enabled config needs an aggregate map");
    // Marker first so a coarse key can never alias the plain key of a stream
    // that happens to continue the same way.
    h.pod(static_cast<int>(1));
    h.pod(agg->count);
    h.ints(agg->node_to_agg);
    h.pod(restrict_nodes < 0 ? a.n : restrict_nodes);
  }
  return PlanKey{h.digest(), a.n, a.nnz_blocks()};
}

}  // namespace geofem::plan
