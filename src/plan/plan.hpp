#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "coarse/coarse.hpp"
#include "contact/penalty.hpp"
#include "plan/cache.hpp"
#include "plan/fingerprint.hpp"
#include "precond/bic.hpp"
#include "precond/preconditioner.hpp"
#include "precond/sb_bic0.hpp"
#include "precond/scalar_ic0.hpp"
#include "reorder/djds.hpp"
#include "sparse/block_csr.hpp"

namespace geofem::plan {

/// Everything structure-dependent about one linear system, built once and
/// reused across numeric refactorizations: the graph fingerprint, the owned
/// supernode map, the preconditioner's symbolic pattern (level-of-fill,
/// selective-block schedule, scalar expansion) and — on the PDJDS orderings —
/// the coloring plus the jagged-diagonal layout.
///
/// numeric() revalues the plan against a matrix with the *same graph* and
/// returns a freshly factored preconditioner. The natural-ordering kinds only
/// read plan state, so concurrent numeric() calls are safe; the PDJDS path
/// mutates the plan-owned DJDSMatrix values and is serialized by an internal
/// mutex (concurrent *solves* sharing one vectorized plan are not supported —
/// give each rank its own plan, which distinct local graphs do naturally).
class SolvePlan {
 public:
  /// Coarse-enabled configs (cfg.coarse) additionally take the aggregate map
  /// and the restricted-node count (-1 = all of a.n); the plan then owns the
  /// CoarseSymbolic and memoizes the Galerkin assembly across numeric phases.
  SolvePlan(const sparse::BlockCSR& a, const contact::Supernodes& sn, const PlanConfig& cfg,
            const coarse::AggregateMap* agg = nullptr, int restrict_nodes = -1);

  [[nodiscard]] const PlanKey& key() const { return key_; }
  [[nodiscard]] const PlanConfig& config() const { return cfg_; }
  [[nodiscard]] const contact::Supernodes& supernodes() const { return sn_; }

  /// True on the PDJDS orderings (plan owns a DJDSMatrix).
  [[nodiscard]] bool vectorized() const { return dj_ != nullptr; }
  [[nodiscard]] const reorder::DJDSMatrix* djds() const { return dj_.get(); }

  /// Wall-clock seconds the symbolic phase took when the plan was built.
  [[nodiscard]] double symbolic_seconds() const { return symbolic_seconds_; }
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Whether this plan was built for exactly (a's graph, sn, cfg[, agg]).
  [[nodiscard]] bool matches(const sparse::BlockCSR& a, const contact::Supernodes& sn,
                             const PlanConfig& cfg, const coarse::AggregateMap* agg = nullptr,
                             int restrict_nodes = -1) const {
    return make_key(a, sn, cfg, agg, restrict_nodes) == key_;
  }

  /// Numeric phase: factor `a` on the precomputed structure. Throws
  /// geofem::Error(kStalePlan) if `a`'s graph differs from the plan's.
  /// The result references `a` (and, when vectorized, this plan) — both must
  /// outlive it; PlannedPreconditioner pins the plan automatically.
  [[nodiscard]] precond::PreconditionerPtr numeric(const sparse::BlockCSR& a) const;

  /// True when the plan was built with cfg.coarse and an aggregate map.
  [[nodiscard]] bool has_coarse() const { return coarse_ != nullptr; }
  [[nodiscard]] std::shared_ptr<const coarse::CoarseSymbolic> coarse_symbolic() const {
    return coarse_;
  }

  /// This rank's Galerkin contribution R_loc A_loc P_loc as a dense
  /// (dim x dim) column block, memoized on a hash of a.val so the second and
  /// later λ-cycles on unchanged values skip the assembly pass entirely.
  /// Throws kStalePlan on a graph mismatch, GEOFEM_CHECKs has_coarse().
  [[nodiscard]] std::shared_ptr<const std::vector<double>> coarse_contribution(
      const sparse::BlockCSR& a) const;

  /// Single-address-space convenience: assemble (memoized) and factor the
  /// coarse operator for `a`. Throws Error(kFactorizationFailed) when the
  /// Galerkin operator is singular — callers degrade to one level.
  [[nodiscard]] std::shared_ptr<const coarse::CoarseOperator> coarse_numeric(
      const sparse::BlockCSR& a) const;

 private:
  PlanKey key_;
  std::uint64_t graph_hash_ = 0;
  PlanConfig cfg_;
  contact::Supernodes sn_;
  double symbolic_seconds_ = 0.0;
  // symbolic state, one non-null per kind (none for Diagonal / BIC(0))
  std::shared_ptr<const precond::ILUkSymbolic> iluk_;
  std::shared_ptr<const precond::ScalarIC0Symbolic> ic0_;
  std::shared_ptr<const precond::SBSymbolic> sb_;
  // PDJDS orderings: plan-owned layout, revalued in place by numeric()
  std::unique_ptr<reorder::DJDSMatrix> dj_;
  // two-level schedule (cfg.coarse): symbolic built once, numeric memoized on
  // a value hash so warm λ-cycles skip the Galerkin assembly (and, in the
  // single-address-space path, the factorization too)
  std::shared_ptr<const coarse::CoarseSymbolic> coarse_;
  mutable std::uint64_t coarse_val_hash_ = 0;
  mutable std::shared_ptr<const std::vector<double>> coarse_contrib_;
  mutable std::shared_ptr<const coarse::CoarseOperator> coarse_op_;
  mutable std::mutex numeric_mtx_;
};

/// A numeric factorization bundled with the plan that produced it, presenting
/// the ORIGINAL row ordering at its interface (the PDJDS factor is permuted
/// internally, like OwnedDJDSBIC). Keeps the plan alive past cache eviction.
class PlannedPreconditioner final : public precond::Preconditioner {
 public:
  PlannedPreconditioner(std::shared_ptr<const SolvePlan> plan, const sparse::BlockCSR& a);

  void apply(std::span<const double> r, std::span<double> z, util::FlopCounter* flops,
             util::LoopStats* loops) const override;

  [[nodiscard]] std::size_t memory_bytes() const override { return inner_->memory_bytes(); }
  [[nodiscard]] std::string name() const override { return inner_->name(); }
  [[nodiscard]] precond::Desc desc() const override { return inner_->desc(); }

  [[nodiscard]] const SolvePlan& plan() const { return *plan_; }

 private:
  std::shared_ptr<const SolvePlan> plan_;
  precond::PreconditionerPtr inner_;
  mutable std::vector<double> pr_, pz_;  ///< permutation buffers (PDJDS only)
};

/// Preconditioner builder for repeated solves on one structure (nonlin::alm):
/// builds the supernode map from `groups`, fetches the plan from `cache`, and
/// returns a numeric factorization that pins its plan.
[[nodiscard]] std::function<precond::PreconditionerPtr(const sparse::BlockCSR&)> cached_builder(
    PlanCache& cache, PlanConfig cfg, std::vector<std::vector<int>> groups);

/// Two-level variant: wraps the planned one-level factorization in a
/// precond::TwoLevel when `copt.enabled`. Aggregation is one aggregate for
/// the whole matrix (kPerDomain — a single address space is one domain) or
/// one per contact group of ≥2 nodes (kPerContactGroup). A singular coarse
/// operator degrades to the one-level preconditioner instead of failing the
/// solve; `status` (when non-null) receives kActive or kDegraded on every
/// build so callers can report it.
[[nodiscard]] std::function<precond::PreconditionerPtr(const sparse::BlockCSR&)> cached_builder(
    PlanCache& cache, PlanConfig cfg, std::vector<std::vector<int>> groups, coarse::Options copt,
    coarse::SetupStatus* status = nullptr);

}  // namespace geofem::plan
