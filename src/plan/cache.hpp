#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "plan/fingerprint.hpp"

namespace geofem::obs {
class Registry;
}

namespace geofem::plan {

class SolvePlan;

/// Counters of one PlanCache (or one of its shards), also exported through
/// geofem::obs as plan.cache.{hit,miss,evict} on every get(). Totals are
/// consistent under concurrency: every completed get() is counted exactly
/// once — as a hit or a miss — inside the shard critical section of its
/// lookup, so hits + misses equals the number of lookups a concurrent reader
/// has observed (a miss is counted when the lookup fails, not after the
/// out-of-lock plan build finishes).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;  ///< plans currently resident

  CacheStats& operator+=(const CacheStats& o) {
    hits += o.hits;
    misses += o.misses;
    evictions += o.evictions;
    entries += o.entries;
    return *this;
  }
};

/// Thread-safe LRU cache of SolvePlans keyed by the graph+config fingerprint,
/// split into independent shards so concurrent solve sessions do not contend
/// on one mutex. A key's shard is chosen by its fingerprint hash; each shard
/// owns its own mutex, LRU list and stats, so the only cross-shard state is
/// the immutable shard array itself. Plans are handed out as
/// shared_ptr<const SolvePlan>, so an evicted plan stays alive while any
/// preconditioner still references it. A miss builds the plan outside the
/// lock (concurrent sessions build distinct plans without serializing); if
/// two threads race on the same key, one build is discarded.
class PlanCache {
 public:
  /// `capacity` is the total resident-plan budget, split evenly across
  /// `shards` (each shard holds at least one plan, so the effective total is
  /// max(capacity, shards), rounded up to a multiple of the shard count).
  explicit PlanCache(std::size_t capacity = 8, std::size_t shards = 1);
  ~PlanCache();

  /// Look up (building on miss) the plan for `a`'s graph under `sn` and
  /// `cfg`. `hit` (optional) reports whether THIS call was served from the
  /// cache — under concurrent sessions that is not derivable from stats()
  /// deltas, which interleave with other callers. Coarse-enabled configs
  /// (cfg.coarse) pass the aggregate map and the restricted-node count, which
  /// join the key (see make_key) and seed the plan's CoarseSymbolic.
  std::shared_ptr<const SolvePlan> get(const sparse::BlockCSR& a, const contact::Supernodes& sn,
                                       const PlanConfig& cfg, bool* hit = nullptr,
                                       const coarse::AggregateMap* agg = nullptr,
                                       int restrict_nodes = -1);

  /// Totals across shards. Each shard is read under its own lock, so every
  /// completed lookup is counted exactly once; shards are sampled in
  /// sequence, which is the usual sharded-counter contract.
  [[nodiscard]] CacheStats stats() const;
  /// Per-shard stats (occupancy view for the obs gauges).
  [[nodiscard]] std::vector<CacheStats> shard_stats() const;

  [[nodiscard]] std::size_t capacity() const { return shards_.size() * shard_capacity_; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  void clear();

  /// Export hit/miss/eviction totals, total occupancy and per-shard occupancy
  /// as gauges `<prefix>.{hits,misses,evictions,entries,capacity,shards}` and
  /// `<prefix>.shard.<i>.entries`.
  void publish(obs::Registry& reg, std::string_view prefix = "plan.cache") const;

 private:
  using List = std::list<std::shared_ptr<const SolvePlan>>;
  struct KeyHash {
    std::size_t operator()(const PlanKey& k) const { return static_cast<std::size_t>(k.hash); }
  };
  struct Shard {
    mutable std::mutex mtx;
    List lru;  ///< front = most recently used
    std::unordered_map<PlanKey, List::iterator, KeyHash> map;
    CacheStats stats;
  };

  Shard& shard_for(const PlanKey& key) {
    // mix the high bits in so shard choice is independent of the map's
    // bucket choice (unordered_map uses the low bits of the same hash)
    return *shards_[static_cast<std::size_t>((key.hash >> 32) ^ key.hash) % shards_.size()];
  }

  std::size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Process-wide cache used by core::solve() when SolveConfig::plan_cache is
/// null — repeated solve() calls on an unchanged Problem hit it.
PlanCache& default_cache();

}  // namespace geofem::plan
