#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "plan/fingerprint.hpp"

namespace geofem::plan {

class SolvePlan;

/// Counters of one PlanCache, also exported through geofem::obs as
/// plan.cache.{hit,miss,evict} on every get().
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;  ///< plans currently resident
};

/// Thread-safe LRU cache of SolvePlans keyed by the graph+config fingerprint.
/// Plans are handed out as shared_ptr<const SolvePlan>, so an evicted plan
/// stays alive while any preconditioner still references it. A miss builds
/// the plan outside the lock (concurrent ranks build distinct plans without
/// serializing); if two threads race on the same key, one build is discarded.
class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity = 8);
  ~PlanCache();

  /// Look up (building on miss) the plan for `a`'s graph under `sn` and `cfg`.
  std::shared_ptr<const SolvePlan> get(const sparse::BlockCSR& a, const contact::Supernodes& sn,
                                       const PlanConfig& cfg);

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  void clear();

 private:
  using List = std::list<std::shared_ptr<const SolvePlan>>;
  struct KeyHash {
    std::size_t operator()(const PlanKey& k) const { return static_cast<std::size_t>(k.hash); }
  };

  std::size_t capacity_;
  mutable std::mutex mtx_;
  List lru_;  ///< front = most recently used
  std::unordered_map<PlanKey, List::iterator, KeyHash> map_;
  CacheStats stats_;
};

/// Process-wide cache used by core::solve() when SolveConfig::plan_cache is
/// null — repeated solve() calls on an unchanged Problem hit it.
PlanCache& default_cache();

}  // namespace geofem::plan
