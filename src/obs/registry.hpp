#pragma once

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/flops.hpp"
#include "util/loop_stats.hpp"

/// geofem::obs — the telemetry subsystem (see DESIGN.md "Telemetry").
///
/// A Registry owns all measurements of one execution context (the process in
/// serial runs, one simulated-MPI rank in distributed runs): named counters
/// and gauges, problem metadata, and hierarchical trace spans. Hot loops
/// resolve a Counter*/Gauge* handle once and then pay a single pointer chase
/// per update — no string lookup on the fast path. Telemetry is off by
/// default: library code only records into the registry attached to the
/// current thread (obs::Attach), so unattached runs skip everything behind
/// one thread-local null check.
namespace geofem::obs {

/// Monotonic counter (FLOPs, iterations, messages, ...). Handles returned by
/// Registry::counter() are stable for the registry's lifetime. Relaxed
/// atomic so registries shared by concurrent sessions (svc::SolverService
/// workers all bumping plan.cache.hit) stay race-free; hot loops still
/// accumulate into plain util::FlopCounter and absorb() once.
struct Counter {
  std::atomic<std::uint64_t> value{0};
  void add(std::uint64_t d) { value.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t get() const { return value.load(std::memory_order_relaxed); }
};

/// Last-write-wins scalar (seconds, vector lengths, memory, ...). Relaxed
/// atomic for the same multi-session reason as Counter.
struct Gauge {
  std::atomic<double> value{0.0};
  void set(double v) { value.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double get() const { return value.load(std::memory_order_relaxed); }
};

/// Bin layout shared by the live Histogram and its snapshot image: fixed
/// log-spaced bins, kBinsPerOctave per power of two over [2^kMinExp,
/// 2^kMaxExp). The geometry is compile-time fixed (not per-histogram) so
/// histograms merge bin-for-bin across threads, ranks and processes without
/// negotiation — the same reason the paper fixes its timing buckets.
struct HistogramBins {
  static constexpr int kBinsPerOctave = 4;  ///< ~19% relative resolution
  static constexpr int kMinExp = -24;       ///< 2^-24 ~ 60 ns
  static constexpr int kMaxExp = 8;         ///< 2^8 = 256 (s, bytes, ...)
  static constexpr int kBins = (kMaxExp - kMinExp) * kBinsPerOctave;

  /// Bin receiving value `v`; out-of-range values clamp to the edge bins.
  static int index(double v) {
    if (!(v > 0.0)) return 0;
    const double pos = (std::log2(v) - kMinExp) * kBinsPerOctave;
    if (pos <= 0.0) return 0;
    if (pos >= kBins - 1) return kBins - 1;
    return static_cast<int>(pos);
  }
  /// Lower edge of bin `i`.
  static double lower_edge(int i) {
    return std::exp2(static_cast<double>(kMinExp) + static_cast<double>(i) / kBinsPerOctave);
  }
};

/// Plain-data image of one histogram (what snapshots/exporters consume).
/// Mergeable: bins share the fixed HistogramBins geometry.
struct HistogramData {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< exact observed extrema (0 when count == 0)
  double max = 0.0;
  std::vector<std::uint64_t> bins;  ///< size HistogramBins::kBins (or empty)

  void merge(const HistogramData& o);
  [[nodiscard]] double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
  /// Quantile estimate (q in [0,1]): geometric interpolation inside the
  /// containing log-spaced bin, clamped to the exact [min, max] envelope.
  [[nodiscard]] double quantile(double q) const;
};

/// Multi-writer distribution metric (request latencies, queue waits, solve
/// times). record() is lock-free — relaxed atomics on fixed log-spaced bins —
/// so every service worker thread shares one handle with no contention
/// beyond cache-line traffic. Handles from Registry::histogram() are stable.
struct Histogram {
  std::atomic<std::uint64_t> bins[HistogramBins::kBins] = {};
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> sum{0.0};
  /// Extrema start at +/-inf so the CAS loops need no "first value" case;
  /// data() maps the empty-histogram infinities back to 0.
  std::atomic<double> min{std::numeric_limits<double>::infinity()};
  std::atomic<double> max{-std::numeric_limits<double>::infinity()};

  void record(double v) {
    bins[HistogramBins::index(v)].fetch_add(1, std::memory_order_relaxed);
    count.fetch_add(1, std::memory_order_relaxed);
    double cur = sum.load(std::memory_order_relaxed);
    while (!sum.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
    }
    cur = min.load(std::memory_order_relaxed);
    while (v < cur && !min.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    cur = max.load(std::memory_order_relaxed);
    while (v > cur && !max.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] HistogramData data() const;
};

/// One closed (or still open, dur_us < 0) trace span. Timestamps are
/// steady-clock microseconds relative to the owning registry's epoch.
struct SpanRecord {
  std::string name;
  int tid = 0;              ///< dense per-registry thread index
  int depth = 0;            ///< nesting depth at begin (0 = root)
  std::int64_t parent = -1; ///< index of the enclosing span, -1 for roots
  double start_us = 0.0;
  double dur_us = -1.0;
};

/// Plain-data image of a Registry: what gets serialized across ranks and what
/// the exporters consume. Snapshot is copyable/movable (Registry itself is
/// pinned by its mutex and handle stability).
struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramData>> histograms;
  std::vector<std::pair<std::string, double>> meta_numbers;
  std::vector<std::pair<std::string, std::string>> meta_strings;
  std::vector<SpanRecord> spans;

  [[nodiscard]] const std::uint64_t* counter(std::string_view name) const;
  [[nodiscard]] const double* gauge(std::string_view name) const;
  [[nodiscard]] const HistogramData* histogram(std::string_view name) const;
};

class Registry {
 public:
  Registry() : epoch_(std::chrono::steady_clock::now()) {}
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Create-or-get. Thread-safe; the returned handle is stable and may be
  /// updated without further synchronization by the thread(s) that own the
  /// measurement (per-rank registries are single-writer by construction).
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  /// Unlike Counter/Gauge handles, a Histogram handle is safe for concurrent
  /// writers: record() is lock-free, so service worker threads share one.
  Histogram* histogram(std::string_view name);

  void set_meta(std::string_view key, std::string_view value);
  void set_meta(std::string_view key, double value);

  /// Begin a span on the calling thread; returns its record index. Nesting is
  /// tracked per thread, so concurrent ranks/threads interleave safely.
  std::size_t span_begin(std::string_view name);
  void span_end(std::size_t index);

  /// Spans recorded after the cap is hit are counted in `spans_dropped` but
  /// not stored (backstop against multi-hour traces).
  void set_span_capacity(std::size_t cap) { span_capacity_ = cap; }
  [[nodiscard]] std::uint64_t spans_dropped() const { return spans_dropped_; }

  /// Thread-index slots in use. Bounded by kMaxTrackedThreads: when an OpenMP
  /// runtime (or a caller) keeps spawning short-lived workers, slots of
  /// threads with no open span are recycled instead of growing the map — a
  /// long-running attached registry stays O(1) in the number of threads that
  /// ever touched it.
  [[nodiscard]] int tracked_threads() const;
  static constexpr int kMaxTrackedThreads = 256;

  /// Fold the legacy accumulation structs into registry metrics:
  ///   <prefix>.flops.{spmv,precond,blas1,factor} counters, and
  ///   <prefix>.loops.{count,total_length} counters plus the derived
  ///   <prefix>.avg_vector_length gauge (recomputed from the accumulated
  ///   totals so repeated absorbs stay consistent).
  void absorb(std::string_view prefix, const util::FlopCounter& fc);
  void absorb(std::string_view prefix, const util::LoopStats& ls);

  /// Consistent copy of everything recorded so far.
  [[nodiscard]] Snapshot snapshot() const;

 private:
  double now_us() const {
    return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - epoch_)
        .count();
  }
  int thread_index_locked();

  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mtx_;
  std::deque<Counter> counters_;  // deque: stable addresses for handles
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;  // deque also avoids moving the atomics
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> histogram_names_;
  std::unordered_map<std::string, std::size_t> counter_index_;
  std::unordered_map<std::string, std::size_t> gauge_index_;
  std::unordered_map<std::string, std::size_t> histogram_index_;
  std::vector<std::pair<std::string, double>> meta_numbers_;
  std::vector<std::pair<std::string, std::string>> meta_strings_;
  std::vector<SpanRecord> spans_;
  std::size_t span_capacity_ = 1u << 20;
  std::uint64_t spans_dropped_ = 0;
  std::map<std::thread::id, int> thread_ids_;
  /// Per-thread stack of open span indices. An entry exists only while its
  /// thread has a span open (span_end erases emptied entries), which is what
  /// marks a thread_ids_ slot as recyclable.
  std::map<std::thread::id, std::vector<std::int64_t>> open_stacks_;
};

/// Registry attached to the current thread (nullptr when telemetry is off).
[[nodiscard]] Registry* current();

/// RAII attachment of a registry to the calling thread. Nests (the previous
/// attachment is restored on destruction). Library code — pcg, preconditioner
/// set-up, ALM, the distributed solver — records into current() only.
class Attach {
 public:
  explicit Attach(Registry* r);
  ~Attach();
  Attach(const Attach&) = delete;
  Attach& operator=(const Attach&) = delete;

 private:
  Registry* prev_;
};

// ---------------------------------------------------------------------------
// Cross-rank transport: a Snapshot round-trips through a std::vector<double>
// blob so per-rank registries ride the existing dist::Comm::gather path
// (which moves doubles only). Blobs are self-delimiting, so rank 0 can split
// the gathered concatenation back into one snapshot per rank.
// ---------------------------------------------------------------------------

std::vector<double> encode(const Snapshot& s);
Snapshot decode(std::span<const double> blob, std::size_t& pos);
std::vector<Snapshot> decode_all(std::span<const double> blob);

/// Per-metric spread across ranks — the paper's load-imbalance view (Fig 29).
struct MetricStat {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double sum = 0.0;
  int ranks = 0;  ///< how many ranks reported this metric
};

struct MergedReport {
  int ranks = 0;
  std::map<std::string, MetricStat> counters;
  std::map<std::string, MetricStat> gauges;
  /// Bin-wise merged across ranks (same fixed geometry on every rank).
  std::map<std::string, HistogramData> histograms;
};

MergedReport aggregate(std::span<const Snapshot> per_rank);

}  // namespace geofem::obs
