#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "obs/json.hpp"
#include "obs/registry.hpp"

/// Exporters of the telemetry subsystem. Schemas are documented in DESIGN.md
/// ("Telemetry"); kMetricsSchemaVersion is bumped on any incompatible change
/// so downstream tooling can dispatch.
namespace geofem::obs {

/// v2: added the "histograms" section (count/sum/mean/min/max + p50/p95/p99
/// quantile estimates per histogram metric).
inline constexpr int kMetricsSchemaVersion = 2;

/// Chrome trace_event document (complete "X" events), loadable in
/// chrome://tracing and https://ui.perfetto.dev. `pid` distinguishes ranks
/// when concatenating several snapshots into one timeline.
json::Value chrome_trace_json(const Snapshot& s, int pid = 0);

/// One trace with all ranks side by side (pid = rank index).
json::Value chrome_trace_json(std::span<const Snapshot> per_rank);

/// Flat metrics report: schema version, metadata, counters, gauges, and
/// per-span-name aggregates (count / total seconds).
json::Value metrics_json(const Snapshot& s);

/// Multi-rank report: rank count, per-metric min/max/mean/sum (the paper's
/// load-imbalance view), plus the full per-rank metric values.
json::Value metrics_json(std::span<const Snapshot> per_rank, const MergedReport& merged);

/// Human-readable span tree: spans grouped by name under their parent chain,
/// with call counts and inclusive seconds, sorted by time within each level.
void write_span_tree(const Snapshot& s, std::ostream& os);

/// dump(indent=2) + trailing newline to `path`; throws std::runtime_error on
/// I/O failure.
void write_file(const json::Value& doc, const std::string& path);

}  // namespace geofem::obs
