#pragma once

/// Umbrella header of the geofem::obs telemetry subsystem:
///   registry.hpp — Registry, Counter/Gauge handles, Attach, rank aggregation
///   span.hpp     — ScopedSpan (RAII hierarchical trace spans)
///   export.hpp   — Chrome-trace / metrics JSON / span-tree text exporters
///   json.hpp     — the minimal JSON model the exporters emit (and tests parse)

#include "obs/export.hpp"   // IWYU pragma: export
#include "obs/json.hpp"     // IWYU pragma: export
#include "obs/registry.hpp" // IWYU pragma: export
#include "obs/span.hpp"     // IWYU pragma: export
