#include "obs/registry.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace geofem::obs {

const std::uint64_t* Snapshot::counter(std::string_view name) const {
  for (const auto& [k, v] : counters)
    if (k == name) return &v;
  return nullptr;
}

const double* Snapshot::gauge(std::string_view name) const {
  for (const auto& [k, v] : gauges)
    if (k == name) return &v;
  return nullptr;
}

const HistogramData* Snapshot::histogram(std::string_view name) const {
  for (const auto& [k, v] : histograms)
    if (k == name) return &v;
  return nullptr;
}

HistogramData Histogram::data() const {
  HistogramData d;
  d.count = count.load(std::memory_order_relaxed);
  d.sum = sum.load(std::memory_order_relaxed);
  d.min = d.count ? min.load(std::memory_order_relaxed) : 0.0;
  d.max = d.count ? max.load(std::memory_order_relaxed) : 0.0;
  d.bins.resize(HistogramBins::kBins);
  for (int i = 0; i < HistogramBins::kBins; ++i)
    d.bins[static_cast<std::size_t>(i)] = bins[i].load(std::memory_order_relaxed);
  return d;
}

void HistogramData::merge(const HistogramData& o) {
  if (o.count == 0) return;
  min = count ? std::min(min, o.min) : o.min;
  max = count ? std::max(max, o.max) : o.max;
  count += o.count;
  sum += o.sum;
  if (bins.empty()) bins.resize(HistogramBins::kBins);
  GEOFEM_CHECK(o.bins.size() == bins.size(), "histogram merge: bin geometry mismatch");
  for (std::size_t i = 0; i < bins.size(); ++i) bins[i] += o.bins[i];
}

double HistogramData::quantile(double q) const {
  if (count == 0 || bins.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // rank of the target observation, 1-based; walk the cumulative bin counts
  const double target = q * static_cast<double>(count);
  double cum = 0.0;
  for (int i = 0; i < static_cast<int>(bins.size()); ++i) {
    const double c = static_cast<double>(bins[static_cast<std::size_t>(i)]);
    if (c == 0.0) continue;
    if (cum + c >= target) {
      // geometric interpolation inside the log-spaced bin
      const double frac = c > 0.0 ? std::clamp((target - cum) / c, 0.0, 1.0) : 0.0;
      const double lo = HistogramBins::lower_edge(i);
      const double hi = HistogramBins::lower_edge(i + 1);
      return std::clamp(lo * std::pow(hi / lo, frac), min, max);
    }
    cum += c;
  }
  return max;
}

Counter* Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mtx_);
  auto it = counter_index_.find(std::string(name));
  if (it != counter_index_.end()) return &counters_[it->second];
  counters_.emplace_back();
  counter_names_.emplace_back(name);
  counter_index_.emplace(std::string(name), counters_.size() - 1);
  return &counters_.back();
}

Gauge* Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mtx_);
  auto it = gauge_index_.find(std::string(name));
  if (it != gauge_index_.end()) return &gauges_[it->second];
  gauges_.emplace_back();
  gauge_names_.emplace_back(name);
  gauge_index_.emplace(std::string(name), gauges_.size() - 1);
  return &gauges_.back();
}

Histogram* Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mtx_);
  auto it = histogram_index_.find(std::string(name));
  if (it != histogram_index_.end()) return &histograms_[it->second];
  histograms_.emplace_back();
  histogram_names_.emplace_back(name);
  histogram_index_.emplace(std::string(name), histograms_.size() - 1);
  return &histograms_.back();
}

void Registry::set_meta(std::string_view key, std::string_view value) {
  std::lock_guard<std::mutex> lock(mtx_);
  for (auto& [k, v] : meta_strings_)
    if (k == key) {
      v = value;
      return;
    }
  meta_strings_.emplace_back(key, value);
}

void Registry::set_meta(std::string_view key, double value) {
  std::lock_guard<std::mutex> lock(mtx_);
  for (auto& [k, v] : meta_numbers_)
    if (k == key) {
      v = value;
      return;
    }
  meta_numbers_.emplace_back(key, value);
}

int Registry::tracked_threads() const {
  std::lock_guard<std::mutex> lock(mtx_);
  return static_cast<int>(thread_ids_.size());
}

int Registry::thread_index_locked() {
  const auto id = std::this_thread::get_id();
  auto it = thread_ids_.find(id);
  if (it != thread_ids_.end()) return it->second;
  if (static_cast<int>(thread_ids_.size()) >= kMaxTrackedThreads) {
    // Recycle the slot of a thread with no open span (an OpenMP worker that
    // was retired between parallel regions). The calling thread is never the
    // victim: span_begin registers it in open_stacks_ before coming here.
    for (auto vit = thread_ids_.begin(); vit != thread_ids_.end(); ++vit) {
      if (open_stacks_.find(vit->first) == open_stacks_.end()) {
        const int tid = vit->second;
        thread_ids_.erase(vit);
        thread_ids_.emplace(id, tid);
        return tid;
      }
    }
    // More than kMaxTrackedThreads threads hold open spans at once: share the
    // last slot rather than grow without bound.
    return kMaxTrackedThreads - 1;
  }
  const int idx = static_cast<int>(thread_ids_.size());
  thread_ids_.emplace(id, idx);
  return idx;
}

std::size_t Registry::span_begin(std::string_view name) {
  const double t = now_us();
  std::lock_guard<std::mutex> lock(mtx_);
  if (spans_.size() >= span_capacity_) {
    ++spans_dropped_;
    return static_cast<std::size_t>(-1);
  }
  auto& stack = open_stacks_[std::this_thread::get_id()];
  SpanRecord rec;
  rec.name = std::string(name);
  rec.tid = thread_index_locked();
  rec.depth = static_cast<int>(stack.size());
  rec.parent = stack.empty() ? -1 : stack.back();
  rec.start_us = t;
  spans_.push_back(std::move(rec));
  const std::size_t idx = spans_.size() - 1;
  stack.push_back(static_cast<std::int64_t>(idx));
  return idx;
}

void Registry::span_end(std::size_t index) {
  const double t = now_us();
  std::lock_guard<std::mutex> lock(mtx_);
  if (index == static_cast<std::size_t>(-1)) return;  // was dropped at begin
  GEOFEM_CHECK(index < spans_.size(), "span_end: bad span index");
  SpanRecord& rec = spans_[index];
  rec.dur_us = t - rec.start_us;
  auto sit = open_stacks_.find(std::this_thread::get_id());
  if (sit == open_stacks_.end()) return;
  auto& stack = sit->second;
  // RAII guarantees LIFO per thread; tolerate out-of-order ends defensively.
  auto it = std::find(stack.rbegin(), stack.rend(), static_cast<std::int64_t>(index));
  if (it != stack.rend()) stack.erase(std::next(it).base(), stack.end());
  // Dropping the emptied entry is what lets thread_index_locked recycle this
  // thread's slot once it stops showing up.
  if (stack.empty()) open_stacks_.erase(sit);
}

void Registry::absorb(std::string_view prefix, const util::FlopCounter& fc) {
  const std::string p(prefix);
  counter(p + ".flops.spmv")->add(fc.spmv);
  counter(p + ".flops.precond")->add(fc.precond);
  counter(p + ".flops.blas1")->add(fc.blas1);
  counter(p + ".flops.factor")->add(fc.factor);
  counter(p + ".flops.total")->add(fc.total());
}

void Registry::absorb(std::string_view prefix, const util::LoopStats& ls) {
  const std::string p(prefix);
  Counter* cnt = counter(p + ".loops.count");
  Counter* tot = counter(p + ".loops.total_length");
  cnt->add(static_cast<std::uint64_t>(ls.count()));
  tot->add(static_cast<std::uint64_t>(ls.total_length()));
  // derived from the accumulated totals, so absorbing several solves keeps
  // the gauge equal to the overall average vector length
  gauge(p + ".avg_vector_length")
      ->set(cnt->get() ? static_cast<double>(tot->get()) / static_cast<double>(cnt->get()) : 0.0);
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mtx_);
  Snapshot s;
  s.counters.reserve(counters_.size());
  for (std::size_t i = 0; i < counters_.size(); ++i)
    s.counters.emplace_back(counter_names_[i], counters_[i].get());
  s.gauges.reserve(gauges_.size());
  for (std::size_t i = 0; i < gauges_.size(); ++i)
    s.gauges.emplace_back(gauge_names_[i], gauges_[i].get());
  s.histograms.reserve(histograms_.size());
  for (std::size_t i = 0; i < histograms_.size(); ++i)
    s.histograms.emplace_back(histogram_names_[i], histograms_[i].data());
  s.meta_numbers = meta_numbers_;
  s.meta_strings = meta_strings_;
  s.spans.assign(spans_.begin(), spans_.end());
  return s;
}

// ---------------------------------------------------------------------------
// thread-local attachment
// ---------------------------------------------------------------------------

namespace {
thread_local Registry* tl_current = nullptr;
}  // namespace

Registry* current() { return tl_current; }

Attach::Attach(Registry* r) : prev_(tl_current) { tl_current = r; }

Attach::~Attach() { tl_current = prev_; }

// ---------------------------------------------------------------------------
// double-blob codec (see registry.hpp). Layout, all entries doubles:
//   [magic, body_length,
//    n_counters, {name_len, chars..., value} * n_counters,
//    n_gauges,   {name_len, chars..., value} * n_gauges,
//    n_meta_num, {key_len, chars..., value} * n_meta_num,
//    n_meta_str, {key_len, chars..., val_len, chars...} * n_meta_str,
//    n_spans,    {name_len, chars..., tid, depth, parent, start_us, dur_us}]
// Characters ride one per double (exact below 2^53, which covers all bytes);
// counter values are exact up to 2^53 — far above any FLOP count we total.
// ---------------------------------------------------------------------------

namespace {

constexpr double kMagic = 6.02214076e23;  // registry blob sentinel

void put_string(std::vector<double>& out, std::string_view s) {
  out.push_back(static_cast<double>(s.size()));
  for (unsigned char c : s) out.push_back(static_cast<double>(c));
}

std::string get_string(std::span<const double> blob, std::size_t& pos) {
  GEOFEM_CHECK(pos < blob.size(), "obs decode: truncated blob (string length)");
  const auto len = static_cast<std::size_t>(blob[pos++]);
  GEOFEM_CHECK(pos + len <= blob.size(), "obs decode: truncated blob (string body)");
  std::string s(len, '\0');
  for (std::size_t i = 0; i < len; ++i) s[i] = static_cast<char>(blob[pos++]);
  return s;
}

double get_num(std::span<const double> blob, std::size_t& pos) {
  GEOFEM_CHECK(pos < blob.size(), "obs decode: truncated blob (number)");
  return blob[pos++];
}

}  // namespace

std::vector<double> encode(const Snapshot& s) {
  std::vector<double> out;
  out.push_back(kMagic);
  out.push_back(0.0);  // body length, patched below
  out.push_back(static_cast<double>(s.counters.size()));
  for (const auto& [name, value] : s.counters) {
    put_string(out, name);
    out.push_back(static_cast<double>(value));
  }
  out.push_back(static_cast<double>(s.gauges.size()));
  for (const auto& [name, value] : s.gauges) {
    put_string(out, name);
    out.push_back(value);
  }
  out.push_back(static_cast<double>(s.histograms.size()));
  for (const auto& [name, h] : s.histograms) {
    put_string(out, name);
    out.push_back(static_cast<double>(h.count));
    out.push_back(h.sum);
    out.push_back(h.min);
    out.push_back(h.max);
    // sparse bins: most of the fixed log-spaced range is empty
    std::size_t nonzero = 0;
    for (std::uint64_t c : h.bins) nonzero += c != 0;
    out.push_back(static_cast<double>(nonzero));
    for (std::size_t i = 0; i < h.bins.size(); ++i)
      if (h.bins[i] != 0) {
        out.push_back(static_cast<double>(i));
        out.push_back(static_cast<double>(h.bins[i]));
      }
  }
  out.push_back(static_cast<double>(s.meta_numbers.size()));
  for (const auto& [key, value] : s.meta_numbers) {
    put_string(out, key);
    out.push_back(value);
  }
  out.push_back(static_cast<double>(s.meta_strings.size()));
  for (const auto& [key, value] : s.meta_strings) {
    put_string(out, key);
    put_string(out, value);
  }
  out.push_back(static_cast<double>(s.spans.size()));
  for (const auto& sp : s.spans) {
    put_string(out, sp.name);
    out.push_back(static_cast<double>(sp.tid));
    out.push_back(static_cast<double>(sp.depth));
    out.push_back(static_cast<double>(sp.parent));
    out.push_back(sp.start_us);
    out.push_back(sp.dur_us);
  }
  out[1] = static_cast<double>(out.size() - 2);
  return out;
}

Snapshot decode(std::span<const double> blob, std::size_t& pos) {
  GEOFEM_CHECK(pos + 2 <= blob.size(), "obs decode: truncated blob (header)");
  GEOFEM_CHECK(blob[pos] == kMagic, "obs decode: bad magic");
  ++pos;
  const auto body = static_cast<std::size_t>(blob[pos++]);
  GEOFEM_CHECK(pos + body <= blob.size(), "obs decode: truncated blob (body)");
  const std::size_t end = pos + body;

  Snapshot s;
  auto n = static_cast<std::size_t>(get_num(blob, pos));
  s.counters.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::string name = get_string(blob, pos);
    s.counters.emplace_back(std::move(name), static_cast<std::uint64_t>(get_num(blob, pos)));
  }
  n = static_cast<std::size_t>(get_num(blob, pos));
  s.gauges.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::string name = get_string(blob, pos);
    s.gauges.emplace_back(std::move(name), get_num(blob, pos));
  }
  n = static_cast<std::size_t>(get_num(blob, pos));
  s.histograms.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::string name = get_string(blob, pos);
    HistogramData h;
    h.count = static_cast<std::uint64_t>(get_num(blob, pos));
    h.sum = get_num(blob, pos);
    h.min = get_num(blob, pos);
    h.max = get_num(blob, pos);
    h.bins.resize(HistogramBins::kBins);
    const auto nonzero = static_cast<std::size_t>(get_num(blob, pos));
    for (std::size_t b = 0; b < nonzero; ++b) {
      const auto idx = static_cast<std::size_t>(get_num(blob, pos));
      GEOFEM_CHECK(idx < h.bins.size(), "obs decode: histogram bin index out of range");
      h.bins[idx] = static_cast<std::uint64_t>(get_num(blob, pos));
    }
    s.histograms.emplace_back(std::move(name), std::move(h));
  }
  n = static_cast<std::size_t>(get_num(blob, pos));
  for (std::size_t i = 0; i < n; ++i) {
    std::string key = get_string(blob, pos);
    s.meta_numbers.emplace_back(std::move(key), get_num(blob, pos));
  }
  n = static_cast<std::size_t>(get_num(blob, pos));
  for (std::size_t i = 0; i < n; ++i) {
    std::string key = get_string(blob, pos);
    std::string value = get_string(blob, pos);
    s.meta_strings.emplace_back(std::move(key), std::move(value));
  }
  n = static_cast<std::size_t>(get_num(blob, pos));
  s.spans.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    SpanRecord sp;
    sp.name = get_string(blob, pos);
    sp.tid = static_cast<int>(get_num(blob, pos));
    sp.depth = static_cast<int>(get_num(blob, pos));
    sp.parent = static_cast<std::int64_t>(get_num(blob, pos));
    sp.start_us = get_num(blob, pos);
    sp.dur_us = get_num(blob, pos);
    s.spans.push_back(std::move(sp));
  }
  GEOFEM_CHECK(pos == end, "obs decode: blob length mismatch");
  return s;
}

std::vector<Snapshot> decode_all(std::span<const double> blob) {
  std::vector<Snapshot> out;
  std::size_t pos = 0;
  while (pos < blob.size()) out.push_back(decode(blob, pos));
  return out;
}

namespace {

void accumulate(std::map<std::string, MetricStat>& into, const std::string& name, double v) {
  auto [it, inserted] = into.emplace(name, MetricStat{v, v, v, v, 1});
  if (inserted) return;
  MetricStat& st = it->second;
  st.min = std::min(st.min, v);
  st.max = std::max(st.max, v);
  st.sum += v;
  ++st.ranks;
}

}  // namespace

MergedReport aggregate(std::span<const Snapshot> per_rank) {
  MergedReport rep;
  rep.ranks = static_cast<int>(per_rank.size());
  for (const Snapshot& s : per_rank) {
    for (const auto& [name, v] : s.counters)
      accumulate(rep.counters, name, static_cast<double>(v));
    for (const auto& [name, v] : s.gauges) accumulate(rep.gauges, name, v);
    for (const auto& [name, h] : s.histograms) rep.histograms[name].merge(h);
  }
  for (auto* metrics : {&rep.counters, &rep.gauges})
    for (auto& [name, st] : *metrics) st.mean = st.sum / st.ranks;
  return rep;
}

}  // namespace geofem::obs
