#pragma once

#include <string_view>

#include "obs/registry.hpp"

namespace geofem::obs {

/// RAII trace span. With telemetry off (no registry attached to the thread
/// and none passed explicitly) construction and destruction reduce to one
/// thread-local load and a null check — cheap enough to leave in hot-ish
/// control paths (per CG iteration, not per matrix entry).
class ScopedSpan {
 public:
  /// Records into the thread's attached registry (obs::current()), if any.
  explicit ScopedSpan(std::string_view name) : ScopedSpan(current(), name) {}

  /// Records into `reg`; a null registry makes the span a no-op.
  ScopedSpan(Registry* reg, std::string_view name) : reg_(reg) {
    if (reg_) index_ = reg_->span_begin(name);
  }

  ~ScopedSpan() {
    if (reg_) reg_->span_end(index_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Registry* reg_;
  std::size_t index_ = 0;
};

}  // namespace geofem::obs
