#pragma once

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// Minimal JSON document model used by the telemetry exporters and by the
/// tests that parse emitted reports back. Self-contained on purpose — the
/// toolchain image carries no JSON library, and the telemetry schema
/// (export.hpp) only needs objects, arrays, strings, numbers and booleans.
/// Object member order is preserved (insertion order), which keeps emitted
/// reports diffable across runs.
namespace geofem::obs::json {

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}                     // NOLINT(google-explicit-constructor)
  Value(double v) : kind_(Kind::kNumber), num_(v) {}                  // NOLINT(google-explicit-constructor)
  Value(int v) : Value(static_cast<double>(v)) {}                     // NOLINT(google-explicit-constructor)
  Value(std::int64_t v) : Value(static_cast<double>(v)) {}            // NOLINT(google-explicit-constructor)
  Value(std::uint64_t v) : Value(static_cast<double>(v)) {}           // NOLINT(google-explicit-constructor)
  Value(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}  // NOLINT(google-explicit-constructor)
  Value(std::string_view s) : Value(std::string(s)) {}                // NOLINT(google-explicit-constructor)
  Value(const char* s) : Value(std::string(s)) {}                     // NOLINT(google-explicit-constructor)

  static Value array() {
    Value v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static Value object() {
    Value v;
    v.kind_ = Kind::kObject;
    return v;
  }

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }

  [[nodiscard]] bool boolean() const {
    require(Kind::kBool);
    return bool_;
  }
  [[nodiscard]] double number() const {
    require(Kind::kNumber);
    return num_;
  }
  [[nodiscard]] const std::string& str() const {
    require(Kind::kString);
    return str_;
  }
  [[nodiscard]] const std::vector<Value>& items() const {
    require(Kind::kArray);
    return items_;
  }
  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& members() const {
    require(Kind::kObject);
    return members_;
  }
  [[nodiscard]] std::size_t size() const {
    return kind_ == Kind::kArray ? items_.size() : members().size();
  }

  void push(Value v) {
    require(Kind::kArray);
    items_.push_back(std::move(v));
  }

  /// Object member access; inserts a null member when the key is new.
  Value& operator[](std::string_view key) {
    require(Kind::kObject);
    for (auto& [k, v] : members_)
      if (k == key) return v;
    members_.emplace_back(std::string(key), Value());
    return members_.back().second;
  }

  /// Lookup without insertion; nullptr when absent.
  [[nodiscard]] const Value* find(std::string_view key) const {
    require(Kind::kObject);
    for (const auto& [k, v] : members_)
      if (k == key) return &v;
    return nullptr;
  }

  /// Member that must exist (throws std::runtime_error otherwise).
  [[nodiscard]] const Value& at(std::string_view key) const {
    const Value* v = find(key);
    if (!v) throw std::runtime_error("json: missing member '" + std::string(key) + "'");
    return *v;
  }

  [[nodiscard]] const Value& at(std::size_t i) const {
    require(Kind::kArray);
    if (i >= items_.size()) throw std::runtime_error("json: array index out of range");
    return items_[i];
  }

  /// Serialize. indent = 0 emits one line; indent > 0 pretty-prints.
  [[nodiscard]] std::string dump(int indent = 0) const {
    std::string out;
    write(out, indent, 0);
    return out;
  }

  /// Parse a complete document; trailing non-space input is an error.
  /// Throws std::runtime_error with a byte offset on malformed input.
  static Value parse(std::string_view text) {
    Parser p{text, 0};
    Value v = p.value();
    p.skip_ws();
    if (p.pos != text.size()) p.fail("trailing characters after document");
    return v;
  }

 private:
  void require(Kind k) const {
    if (kind_ != k) throw std::runtime_error("json: wrong value kind");
  }

  static void write_escaped(std::string& out, std::string_view s) {
    out += '"';
    for (unsigned char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        default:
          if (c < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out += static_cast<char>(c);
          }
      }
    }
    out += '"';
  }

  static void write_number(std::string& out, double v) {
    // shortest round-trippable representation; JSON has no inf/nan
    if (v != v) {
      out += "null";
      return;
    }
    if (v > 1.7976931348623157e308 || v < -1.7976931348623157e308) {
      out += (v > 0 ? "1e999" : "-1e999");  // clamped on parse; never emitted in practice
      return;
    }
    char buf[32];
    auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
    out.append(buf, p);
  }

  void write(std::string& out, int indent, int level) const {
    const auto newline = [&](int lvl) {
      if (indent <= 0) return;
      out += '\n';
      out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(lvl), ' ');
    };
    switch (kind_) {
      case Kind::kNull: out += "null"; break;
      case Kind::kBool: out += bool_ ? "true" : "false"; break;
      case Kind::kNumber: write_number(out, num_); break;
      case Kind::kString: write_escaped(out, str_); break;
      case Kind::kArray:
        out += '[';
        for (std::size_t i = 0; i < items_.size(); ++i) {
          if (i) out += ',';
          newline(level + 1);
          items_[i].write(out, indent, level + 1);
        }
        if (!items_.empty()) newline(level);
        out += ']';
        break;
      case Kind::kObject:
        out += '{';
        for (std::size_t i = 0; i < members_.size(); ++i) {
          if (i) out += ',';
          newline(level + 1);
          write_escaped(out, members_[i].first);
          out += indent > 0 ? ": " : ":";
          members_[i].second.write(out, indent, level + 1);
        }
        if (!members_.empty()) newline(level);
        out += '}';
        break;
    }
  }

  struct Parser {
    std::string_view text;
    std::size_t pos;

    [[noreturn]] void fail(const std::string& what) const {
      throw std::runtime_error("json parse error at byte " + std::to_string(pos) + ": " + what);
    }

    void skip_ws() {
      while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
                                   text[pos] == '\r'))
        ++pos;
    }

    char peek() {
      if (pos >= text.size()) fail("unexpected end of input");
      return text[pos];
    }

    void expect(char c) {
      if (peek() != c) fail(std::string("expected '") + c + "'");
      ++pos;
    }

    bool literal(std::string_view lit) {
      if (text.substr(pos, lit.size()) != lit) return false;
      pos += lit.size();
      return true;
    }

    Value value() {
      skip_ws();
      switch (peek()) {
        case '{': return object();
        case '[': return array();
        case '"': return Value(string());
        case 't':
          if (!literal("true")) fail("bad literal");
          return Value(true);
        case 'f':
          if (!literal("false")) fail("bad literal");
          return Value(false);
        case 'n':
          if (!literal("null")) fail("bad literal");
          return Value();
        default: return number();
      }
    }

    Value object() {
      expect('{');
      Value v = Value::object();
      skip_ws();
      if (peek() == '}') {
        ++pos;
        return v;
      }
      while (true) {
        skip_ws();
        std::string key = string();
        skip_ws();
        expect(':');
        v.members_.emplace_back(std::move(key), value());
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect('}');
        return v;
      }
    }

    Value array() {
      expect('[');
      Value v = Value::array();
      skip_ws();
      if (peek() == ']') {
        ++pos;
        return v;
      }
      while (true) {
        v.items_.push_back(value());
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect(']');
        return v;
      }
    }

    std::string string() {
      expect('"');
      std::string out;
      while (true) {
        if (pos >= text.size()) fail("unterminated string");
        const char c = text[pos++];
        if (c == '"') return out;
        if (c != '\\') {
          out += c;
          continue;
        }
        if (pos >= text.size()) fail("unterminated escape");
        const char e = text[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': out += unicode_escape(); break;
          default: fail("bad escape");
        }
      }
    }

    std::string unicode_escape() {
      if (pos + 4 > text.size()) fail("truncated \\u escape");
      unsigned cp = 0;
      for (int i = 0; i < 4; ++i) {
        const char c = text[pos++];
        cp <<= 4;
        if (c >= '0' && c <= '9') cp |= static_cast<unsigned>(c - '0');
        else if (c >= 'a' && c <= 'f') cp |= static_cast<unsigned>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F') cp |= static_cast<unsigned>(c - 'A' + 10);
        else fail("bad hex digit in \\u escape");
      }
      // encode the (BMP) code point as UTF-8; surrogate pairs are not needed
      // by our own reports but are decoded leniently as two separate units
      std::string out;
      if (cp < 0x80) {
        out += static_cast<char>(cp);
      } else if (cp < 0x800) {
        out += static_cast<char>(0xC0 | (cp >> 6));
        out += static_cast<char>(0x80 | (cp & 0x3F));
      } else {
        out += static_cast<char>(0xE0 | (cp >> 12));
        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (cp & 0x3F));
      }
      return out;
    }

    Value number() {
      const std::size_t start = pos;
      if (pos < text.size() && text[pos] == '-') ++pos;
      while (pos < text.size() &&
             ((text[pos] >= '0' && text[pos] <= '9') || text[pos] == '.' || text[pos] == 'e' ||
              text[pos] == 'E' || text[pos] == '+' || text[pos] == '-'))
        ++pos;
      if (pos == start) fail("expected a value");
      double v = 0.0;
      const auto [p, ec] = std::from_chars(text.data() + start, text.data() + pos, v);
      if (ec == std::errc::result_out_of_range) {
        // overflowed literals (e.g. the writer's clamped 1e999) parse as +-huge
        v = text[start] == '-' ? -1.7976931348623157e308 : 1.7976931348623157e308;
      } else if (ec != std::errc{} || p != text.data() + pos) {
        fail("malformed number");
      }
      return Value(v);
    }
  };

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Value> items_;
  std::vector<std::pair<std::string, Value>> members_;
};

}  // namespace geofem::obs::json
