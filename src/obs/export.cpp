#include "obs/export.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <stdexcept>
#include <vector>

namespace geofem::obs {

namespace {

void add_trace_events(json::Value& events, const Snapshot& s, int pid) {
  for (const auto& sp : s.spans) {
    json::Value ev = json::Value::object();
    ev["name"] = sp.name;
    ev["cat"] = "geofem";
    ev["ph"] = "X";
    ev["ts"] = sp.start_us;
    ev["dur"] = sp.dur_us < 0.0 ? 0.0 : sp.dur_us;  // still-open spans clamp to 0
    ev["pid"] = pid;
    ev["tid"] = sp.tid;
    events.push(std::move(ev));
  }
}

json::Value trace_document() {
  json::Value doc = json::Value::object();
  doc["displayTimeUnit"] = "ms";
  doc["traceEvents"] = json::Value::array();
  return doc;
}

json::Value meta_object(const Snapshot& s) {
  json::Value meta = json::Value::object();
  for (const auto& [k, v] : s.meta_strings) meta[k] = v;
  for (const auto& [k, v] : s.meta_numbers) meta[k] = v;
  return meta;
}

struct SpanAgg {
  std::uint64_t count = 0;
  double total_us = 0.0;
};

std::map<std::string, SpanAgg> aggregate_spans(const Snapshot& s) {
  std::map<std::string, SpanAgg> agg;
  for (const auto& sp : s.spans) {
    SpanAgg& a = agg[sp.name];
    ++a.count;
    if (sp.dur_us > 0.0) a.total_us += sp.dur_us;
  }
  return agg;
}

json::Value stat_object(const MetricStat& st) {
  json::Value v = json::Value::object();
  v["min"] = st.min;
  v["max"] = st.max;
  v["mean"] = st.mean;
  v["sum"] = st.sum;
  v["ranks"] = st.ranks;
  return v;
}

json::Value histogram_object(const HistogramData& h) {
  json::Value v = json::Value::object();
  v["count"] = h.count;
  v["sum"] = h.sum;
  v["mean"] = h.mean();
  v["min"] = h.min;
  v["max"] = h.max;
  v["p50"] = h.quantile(0.50);
  v["p95"] = h.quantile(0.95);
  v["p99"] = h.quantile(0.99);
  return v;
}

}  // namespace

json::Value chrome_trace_json(const Snapshot& s, int pid) {
  json::Value doc = trace_document();
  add_trace_events(doc["traceEvents"], s, pid);
  return doc;
}

json::Value chrome_trace_json(std::span<const Snapshot> per_rank) {
  json::Value doc = trace_document();
  for (std::size_t r = 0; r < per_rank.size(); ++r)
    add_trace_events(doc["traceEvents"], per_rank[r], static_cast<int>(r));
  return doc;
}

json::Value metrics_json(const Snapshot& s) {
  json::Value doc = json::Value::object();
  doc["schema_version"] = kMetricsSchemaVersion;
  doc["meta"] = meta_object(s);
  json::Value& counters = (doc["counters"] = json::Value::object());
  for (const auto& [name, v] : s.counters) counters[name] = v;
  json::Value& gauges = (doc["gauges"] = json::Value::object());
  for (const auto& [name, v] : s.gauges) gauges[name] = v;
  json::Value& hists = (doc["histograms"] = json::Value::object());
  for (const auto& [name, h] : s.histograms) hists[name] = histogram_object(h);
  json::Value& spans = (doc["spans"] = json::Value::object());
  for (const auto& [name, a] : aggregate_spans(s)) {
    json::Value& sp = (spans[name] = json::Value::object());
    sp["count"] = a.count;
    sp["total_seconds"] = a.total_us * 1e-6;
  }
  return doc;
}

json::Value metrics_json(std::span<const Snapshot> per_rank, const MergedReport& merged) {
  json::Value doc = json::Value::object();
  doc["schema_version"] = kMetricsSchemaVersion;
  doc["ranks"] = merged.ranks;
  if (!per_rank.empty()) doc["meta"] = meta_object(per_rank[0]);
  json::Value& counters = (doc["counters"] = json::Value::object());
  for (const auto& [name, st] : merged.counters) counters[name] = stat_object(st);
  json::Value& gauges = (doc["gauges"] = json::Value::object());
  for (const auto& [name, st] : merged.gauges) gauges[name] = stat_object(st);
  json::Value& hists = (doc["histograms"] = json::Value::object());
  for (const auto& [name, h] : merged.histograms) hists[name] = histogram_object(h);
  json::Value& ranks = (doc["per_rank"] = json::Value::array());
  for (const Snapshot& s : per_rank) {
    json::Value one = json::Value::object();
    json::Value& c = (one["counters"] = json::Value::object());
    for (const auto& [name, v] : s.counters) c[name] = v;
    json::Value& g = (one["gauges"] = json::Value::object());
    for (const auto& [name, v] : s.gauges) g[name] = v;
    ranks.push(std::move(one));
  }
  return doc;
}

void write_span_tree(const Snapshot& s, std::ostream& os) {
  // children lists per span (index -1 = virtual root)
  std::vector<std::vector<std::size_t>> children(s.spans.size() + 1);
  for (std::size_t i = 0; i < s.spans.size(); ++i) {
    const std::int64_t p = s.spans[i].parent;
    children[p < 0 ? s.spans.size() : static_cast<std::size_t>(p)].push_back(i);
  }

  struct Group {
    std::string name;
    std::uint64_t count = 0;
    double total_us = 0.0;
    std::vector<std::size_t> members;
  };

  // group a sibling list by span name, order by inclusive time
  auto group_siblings = [&](const std::vector<std::size_t>& sibs) {
    std::map<std::string, std::size_t> index;
    std::vector<Group> groups;
    for (std::size_t i : sibs) {
      auto [it, inserted] = index.emplace(s.spans[i].name, groups.size());
      if (inserted) groups.push_back({s.spans[i].name, 0, 0.0, {}});
      Group& g = groups[it->second];
      ++g.count;
      if (s.spans[i].dur_us > 0.0) g.total_us += s.spans[i].dur_us;
      g.members.push_back(i);
    }
    std::stable_sort(groups.begin(), groups.end(),
                     [](const Group& a, const Group& b) { return a.total_us > b.total_us; });
    return groups;
  };

  char buf[64];
  auto emit = [&](const auto& self, const std::vector<std::size_t>& sibs, int depth) -> void {
    for (const Group& g : group_siblings(sibs)) {
      std::snprintf(buf, sizeof buf, "%10.6f s  x%-6llu ", g.total_us * 1e-6,
                    static_cast<unsigned long long>(g.count));
      os << buf << std::string(static_cast<std::size_t>(depth) * 2, ' ') << g.name << '\n';
      std::vector<std::size_t> kids;
      for (std::size_t m : g.members)
        kids.insert(kids.end(), children[m].begin(), children[m].end());
      if (!kids.empty()) self(self, kids, depth + 1);
    }
  };
  os << "  time        calls   span\n";
  emit(emit, children[s.spans.size()], 0);
}

void write_file(const json::Value& doc, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("obs: cannot open '" + path + "' for writing");
  out << doc.dump(2) << '\n';
  if (!out) throw std::runtime_error("obs: failed writing '" + path + "'");
}

}  // namespace geofem::obs
