#pragma once

#include <cmath>
#include <cstring>
#include <vector>

#include "simd/simd.hpp"
#include "util/check.hpp"

namespace geofem::sparse {

/// Block dimension. GeoFEM solid-mechanics problems carry 3 DOF (ux,uy,uz)
/// per finite-element node, so every sparse matrix in this library is a
/// 3x3-blocked matrix.
inline constexpr int kB = 3;
/// Doubles per 3x3 block (row-major).
inline constexpr int kBB = kB * kB;

// ---------------------------------------------------------------------------
// 3x3 block kernels. All operate on row-major double[9].
// ---------------------------------------------------------------------------

/// y += A * x
inline void b3_gemv(const double* a, const double* x, double* y) {
  y[0] += a[0] * x[0] + a[1] * x[1] + a[2] * x[2];
  y[1] += a[3] * x[0] + a[4] * x[1] + a[5] * x[2];
  y[2] += a[6] * x[0] + a[7] * x[1] + a[8] * x[2];
}

/// y -= A * x
inline void b3_gemv_sub(const double* a, const double* x, double* y) {
  y[0] -= a[0] * x[0] + a[1] * x[1] + a[2] * x[2];
  y[1] -= a[3] * x[0] + a[4] * x[1] + a[5] * x[2];
  y[2] -= a[6] * x[0] + a[7] * x[1] + a[8] * x[2];
}

/// y += A^T * x
inline void b3_gemv_trans(const double* a, const double* x, double* y) {
  y[0] += a[0] * x[0] + a[3] * x[1] + a[6] * x[2];
  y[1] += a[1] * x[0] + a[4] * x[1] + a[7] * x[2];
  y[2] += a[2] * x[0] + a[5] * x[1] + a[8] * x[2];
}

/// C += A * B
inline void b3_gemm(const double* a, const double* b, double* c) {
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j)
      c[3 * i + j] += a[3 * i] * b[j] + a[3 * i + 1] * b[3 + j] + a[3 * i + 2] * b[6 + j];
}

/// C -= A * B
inline void b3_gemm_sub(const double* a, const double* b, double* c) {
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j)
      c[3 * i + j] -= a[3 * i] * b[j] + a[3 * i + 1] * b[3 + j] + a[3 * i + 2] * b[6 + j];
}

/// inv = A^-1 by cofactor expansion. Returns false if A is singular.
inline bool b3_inverse(const double* a, double* inv) {
  const double c00 = a[4] * a[8] - a[5] * a[7];
  const double c01 = a[5] * a[6] - a[3] * a[8];
  const double c02 = a[3] * a[7] - a[4] * a[6];
  const double det = a[0] * c00 + a[1] * c01 + a[2] * c02;
  if (det == 0.0 || !std::isfinite(det)) return false;
  const double id = 1.0 / det;
  inv[0] = c00 * id;
  inv[1] = (a[2] * a[7] - a[1] * a[8]) * id;
  inv[2] = (a[1] * a[5] - a[2] * a[4]) * id;
  inv[3] = c01 * id;
  inv[4] = (a[0] * a[8] - a[2] * a[6]) * id;
  inv[5] = (a[2] * a[3] - a[0] * a[5]) * id;
  inv[6] = c02 * id;
  inv[7] = (a[1] * a[6] - a[0] * a[7]) * id;
  inv[8] = (a[0] * a[4] - a[1] * a[3]) * id;
  return true;
}

/// y = A * x (overwrite)
inline void b3_apply(const double* a, const double* x, double* y) {
  y[0] = a[0] * x[0] + a[1] * x[1] + a[2] * x[2];
  y[1] = a[3] * x[0] + a[4] * x[1] + a[5] * x[2];
  y[2] = a[6] * x[0] + a[7] * x[1] + a[8] * x[2];
}

/// True iff the n x n row-major matrix is symmetric positive definite, by
/// attempted Cholesky factorization of a copy. Used by the incomplete
/// factorizations to detect when the modified-diagonal corrections have
/// over-subtracted (the block is then reset to its unmodified value — the
/// classic IC breakdown remedy; partial-pivoting LU alone cannot tell
/// indefiniteness from health).
inline bool is_spd(const double* a, int n) {
  std::vector<double> c(a, a + static_cast<std::size_t>(n) * n);
  for (int k = 0; k < n; ++k) {
    double d = c[static_cast<std::size_t>(k) * n + k];
    for (int m = 0; m < k; ++m) {
      const double l = c[static_cast<std::size_t>(k) * n + m];
      d -= l * l;
    }
    if (!(d > 0.0) || !std::isfinite(d)) return false;
    const double s = std::sqrt(d);
    c[static_cast<std::size_t>(k) * n + k] = s;
    for (int i = k + 1; i < n; ++i) {
      double v = c[static_cast<std::size_t>(i) * n + k];
      for (int m = 0; m < k; ++m)
        v -= c[static_cast<std::size_t>(i) * n + m] * c[static_cast<std::size_t>(k) * n + m];
      c[static_cast<std::size_t>(i) * n + k] = v / s;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Variable-size dense LU with partial pivoting. Used for the diagonal blocks
// of selective blocks (supernodes), whose size is 3*NB x 3*NB with NB the
// number of finite-element nodes in the contact group.
// ---------------------------------------------------------------------------
class DenseLU {
 public:
  DenseLU() = default;

  /// Factor the n x n row-major matrix `a` in place (copied internally).
  /// Returns false on singularity.
  bool factor(const double* a, int n) {
    n_ = n;
    lu_.assign(a, a + static_cast<std::size_t>(n) * n);
    piv_.resize(n);
    for (int k = 0; k < n; ++k) {
      int p = k;
      double best = std::fabs(lu_[idx(k, k)]);
      for (int i = k + 1; i < n; ++i) {
        const double v = std::fabs(lu_[idx(i, k)]);
        if (v > best) {
          best = v;
          p = i;
        }
      }
      if (best == 0.0 || !std::isfinite(best)) return false;
      piv_[k] = p;
      if (p != k) {
        for (int j = 0; j < n; ++j) std::swap(lu_[idx(k, j)], lu_[idx(p, j)]);
      }
      const double pivinv = 1.0 / lu_[idx(k, k)];
      for (int i = k + 1; i < n; ++i) {
        const double m = lu_[idx(i, k)] * pivinv;
        lu_[idx(i, k)] = m;
        if (m != 0.0) {
          double* ri = lu_.data() + idx(i, k + 1);
          const double* rk = lu_.data() + idx(k, k + 1);
          GEOFEM_PRAGMA_SIMD
          for (int j = 0; j < n - k - 1; ++j) ri[j] -= m * rk[j];
        }
      }
    }
    // Column-major mirror: solve() walks column k of the factor, which is
    // stride-n in lu_. Copying once here turns both substitution loops into
    // unit-stride axpy-style updates the lanes can stream.
    cm_.resize(lu_.size());
    for (int j = 0; j < n; ++j)
      for (int i = 0; i < n; ++i) cm_[static_cast<std::size_t>(j) * n + i] = lu_[idx(i, j)];
    return true;
  }

  /// x := A^-1 x. Unit-stride over cm_ columns; per-element arithmetic is
  /// unchanged from the row-major version, so off/omp builds reproduce the
  /// historical bits.
  void solve(double* x) const {
    const int n = n_;
    for (int k = 0; k < n; ++k) {
      if (piv_[k] != k) std::swap(x[k], x[piv_[k]]);
      const double* col = cm_.data() + static_cast<std::size_t>(k) * n;
      const double xk = x[k];
      GEOFEM_PRAGMA_SIMD
      for (int i = k + 1; i < n; ++i) x[i] -= col[i] * xk;
    }
    for (int k = n - 1; k >= 0; --k) {
      const double* col = cm_.data() + static_cast<std::size_t>(k) * n;
      const double xk = (x[k] /= col[k]);
      GEOFEM_PRAGMA_SIMD
      for (int i = 0; i < k; ++i) x[i] -= col[i] * xk;
    }
  }

  [[nodiscard]] int size() const { return n_; }

  /// Row-major factor of PA (L unit-lower below the diagonal, U on/above)
  /// and the pivot rows — exposed for the lane-batched 3x3 solve packs
  /// (simd/lu3.hpp), which replay this exact pivoted solve across lanes.
  [[nodiscard]] const double* factor() const { return lu_.data(); }
  [[nodiscard]] const std::vector<int>& pivots() const { return piv_; }

  /// Algorithmic FLOPs for one solve() call (2n^2).
  [[nodiscard]] std::uint64_t solve_flops() const {
    return 2ULL * static_cast<std::uint64_t>(n_) * static_cast<std::uint64_t>(n_);
  }

  /// Bytes held by the factorization (row-major factor + column mirror).
  [[nodiscard]] std::size_t memory_bytes() const {
    return (lu_.size() + cm_.size()) * sizeof(double) + piv_.size() * sizeof(int);
  }

 private:
  [[nodiscard]] std::size_t idx(int i, int j) const {
    return static_cast<std::size_t>(i) * n_ + j;
  }

  int n_ = 0;
  simd::aligned_vector<double> lu_;
  simd::aligned_vector<double> cm_;  ///< column-major mirror of lu_ for solve()
  std::vector<int> piv_;
};

}  // namespace geofem::sparse
