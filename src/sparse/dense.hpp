#pragma once

#include <cmath>
#include <cstring>
#include <vector>

#include "simd/simd.hpp"
#include "util/check.hpp"

namespace geofem::sparse {

/// Block dimension. GeoFEM solid-mechanics problems carry 3 DOF (ux,uy,uz)
/// per finite-element node, so every sparse matrix in this library is a
/// 3x3-blocked matrix.
inline constexpr int kB = 3;
/// Doubles per 3x3 block (row-major).
inline constexpr int kBB = kB * kB;

// ---------------------------------------------------------------------------
// 3x3 block kernels. The gemv/apply family is templated on the scalar (all
// three operands at the same precision — double everywhere except the fp32
// DJDS substitution staging); the factorization-side kernels (gemm, inverse)
// stay double-only because factorization always runs in fp64.
// ---------------------------------------------------------------------------

/// y += A * x
template <class T>
inline void b3_gemv(const T* a, const T* x, T* y) {
  y[0] += a[0] * x[0] + a[1] * x[1] + a[2] * x[2];
  y[1] += a[3] * x[0] + a[4] * x[1] + a[5] * x[2];
  y[2] += a[6] * x[0] + a[7] * x[1] + a[8] * x[2];
}

/// y -= A * x
template <class T>
inline void b3_gemv_sub(const T* a, const T* x, T* y) {
  y[0] -= a[0] * x[0] + a[1] * x[1] + a[2] * x[2];
  y[1] -= a[3] * x[0] + a[4] * x[1] + a[5] * x[2];
  y[2] -= a[6] * x[0] + a[7] * x[1] + a[8] * x[2];
}

/// y += A^T * x
template <class T>
inline void b3_gemv_trans(const T* a, const T* x, T* y) {
  y[0] += a[0] * x[0] + a[3] * x[1] + a[6] * x[2];
  y[1] += a[1] * x[0] + a[4] * x[1] + a[7] * x[2];
  y[2] += a[2] * x[0] + a[5] * x[1] + a[8] * x[2];
}

/// C += A * B
inline void b3_gemm(const double* a, const double* b, double* c) {
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j)
      c[3 * i + j] += a[3 * i] * b[j] + a[3 * i + 1] * b[3 + j] + a[3 * i + 2] * b[6 + j];
}

/// C -= A * B
inline void b3_gemm_sub(const double* a, const double* b, double* c) {
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j)
      c[3 * i + j] -= a[3 * i] * b[j] + a[3 * i + 1] * b[3 + j] + a[3 * i + 2] * b[6 + j];
}

/// inv = A^-1 by cofactor expansion. Returns false if A is singular.
inline bool b3_inverse(const double* a, double* inv) {
  const double c00 = a[4] * a[8] - a[5] * a[7];
  const double c01 = a[5] * a[6] - a[3] * a[8];
  const double c02 = a[3] * a[7] - a[4] * a[6];
  const double det = a[0] * c00 + a[1] * c01 + a[2] * c02;
  if (det == 0.0 || !std::isfinite(det)) return false;
  const double id = 1.0 / det;
  inv[0] = c00 * id;
  inv[1] = (a[2] * a[7] - a[1] * a[8]) * id;
  inv[2] = (a[1] * a[5] - a[2] * a[4]) * id;
  inv[3] = c01 * id;
  inv[4] = (a[0] * a[8] - a[2] * a[6]) * id;
  inv[5] = (a[2] * a[3] - a[0] * a[5]) * id;
  inv[6] = c02 * id;
  inv[7] = (a[1] * a[6] - a[0] * a[7]) * id;
  inv[8] = (a[0] * a[4] - a[1] * a[3]) * id;
  return true;
}

/// y = A * x (overwrite)
template <class T>
inline void b3_apply(const T* a, const T* x, T* y) {
  y[0] = a[0] * x[0] + a[1] * x[1] + a[2] * x[2];
  y[1] = a[3] * x[0] + a[4] * x[1] + a[5] * x[2];
  y[2] = a[6] * x[0] + a[7] * x[1] + a[8] * x[2];
}

/// True iff the n x n row-major matrix is symmetric positive definite, by
/// attempted Cholesky factorization of a copy. Used by the incomplete
/// factorizations to detect when the modified-diagonal corrections have
/// over-subtracted (the block is then reset to its unmodified value — the
/// classic IC breakdown remedy; partial-pivoting LU alone cannot tell
/// indefiniteness from health).
inline bool is_spd(const double* a, int n) {
  std::vector<double> c(a, a + static_cast<std::size_t>(n) * n);
  for (int k = 0; k < n; ++k) {
    double d = c[static_cast<std::size_t>(k) * n + k];
    for (int m = 0; m < k; ++m) {
      const double l = c[static_cast<std::size_t>(k) * n + m];
      d -= l * l;
    }
    if (!(d > 0.0) || !std::isfinite(d)) return false;
    const double s = std::sqrt(d);
    c[static_cast<std::size_t>(k) * n + k] = s;
    for (int i = k + 1; i < n; ++i) {
      double v = c[static_cast<std::size_t>(i) * n + k];
      for (int m = 0; m < k; ++m)
        v -= c[static_cast<std::size_t>(i) * n + m] * c[static_cast<std::size_t>(k) * n + m];
      c[static_cast<std::size_t>(i) * n + k] = v / s;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Variable-size dense LU with partial pivoting. Used for the diagonal blocks
// of selective blocks (supernodes), whose size is 3*NB x 3*NB with NB the
// number of finite-element nodes in the contact group.
// ---------------------------------------------------------------------------
class DenseLU {
 public:
  DenseLU() = default;

  /// Factor the n x n row-major matrix `a` in place (copied internally).
  /// Returns false on singularity.
  bool factor(const double* a, int n) {
    n_ = n;
    lu_.assign(a, a + static_cast<std::size_t>(n) * n);
    piv_.resize(n);
    for (int k = 0; k < n; ++k) {
      int p = k;
      double best = std::fabs(lu_[idx(k, k)]);
      for (int i = k + 1; i < n; ++i) {
        const double v = std::fabs(lu_[idx(i, k)]);
        if (v > best) {
          best = v;
          p = i;
        }
      }
      if (best == 0.0 || !std::isfinite(best)) return false;
      piv_[k] = p;
      if (p != k) {
        for (int j = 0; j < n; ++j) std::swap(lu_[idx(k, j)], lu_[idx(p, j)]);
      }
      const double pivinv = 1.0 / lu_[idx(k, k)];
      for (int i = k + 1; i < n; ++i) {
        const double m = lu_[idx(i, k)] * pivinv;
        lu_[idx(i, k)] = m;
        if (m != 0.0) {
          double* ri = lu_.data() + idx(i, k + 1);
          const double* rk = lu_.data() + idx(k, k + 1);
          GEOFEM_PRAGMA_SIMD
          for (int j = 0; j < n - k - 1; ++j) ri[j] -= m * rk[j];
        }
      }
    }
    // Column-major mirror: solve() walks column k of the factor, which is
    // stride-n in lu_. Copying once here turns both substitution loops into
    // unit-stride axpy-style updates the lanes can stream.
    cm_.resize(lu_.size());
    for (int j = 0; j < n; ++j)
      for (int i = 0; i < n; ++i) cm_[static_cast<std::size_t>(j) * n + i] = lu_[idx(i, j)];
    return true;
  }

  /// x := A^-1 x. Unit-stride over cm_ columns; per-element arithmetic is
  /// unchanged from the row-major version, so off/omp builds reproduce the
  /// historical bits.
  void solve(double* x) const {
    const int n = n_;
    for (int k = 0; k < n; ++k) {
      if (piv_[k] != k) std::swap(x[k], x[piv_[k]]);
      const double* col = cm_.data() + static_cast<std::size_t>(k) * n;
      const double xk = x[k];
      GEOFEM_PRAGMA_SIMD
      for (int i = k + 1; i < n; ++i) x[i] -= col[i] * xk;
    }
    for (int k = n - 1; k >= 0; --k) {
      const double* col = cm_.data() + static_cast<std::size_t>(k) * n;
      const double xk = (x[k] /= col[k]);
      GEOFEM_PRAGMA_SIMD
      for (int i = 0; i < k; ++i) x[i] -= col[i] * xk;
    }
  }

  [[nodiscard]] int size() const { return n_; }

  /// Row-major factor of PA (L unit-lower below the diagonal, U on/above)
  /// and the pivot rows — exposed for the lane-batched 3x3 solve packs
  /// (simd/lu3.hpp), which replay this exact pivoted solve across lanes.
  [[nodiscard]] const double* factor() const { return lu_.data(); }
  [[nodiscard]] const std::vector<int>& pivots() const { return piv_; }

  /// Algorithmic FLOPs for one solve() call (2n^2).
  [[nodiscard]] std::uint64_t solve_flops() const {
    return 2ULL * static_cast<std::uint64_t>(n_) * static_cast<std::uint64_t>(n_);
  }

  /// Bytes held by the factorization (row-major factor + column mirror).
  [[nodiscard]] std::size_t memory_bytes() const {
    return (lu_.size() + cm_.size()) * sizeof(double) + piv_.size() * sizeof(int);
  }

 private:
  [[nodiscard]] std::size_t idx(int i, int j) const {
    return static_cast<std::size_t>(i) * n_ + j;
  }

  int n_ = 0;
  simd::aligned_vector<double> lu_;
  simd::aligned_vector<double> cm_;  ///< column-major mirror of lu_ for solve()
  std::vector<int> piv_;
};

/// Read-only solve mirror of a DenseLU at stored precision T (DESIGN.md §5i).
/// Factorization always happens in fp64 (DenseLU); this narrows the
/// column-major factor once so repeated solves stream half the bytes when
/// T = float. solve() replays the exact pivoted substitution of
/// DenseLU::solve with the arithmetic carried in the staging scalar U —
/// float for the fp32 DJDS staging path, double when an fp32-stored factor
/// is applied against fp64 vectors on the CSR path.
///
/// Narrowing a factor whose magnitudes exceed the float range produces inf
/// coefficients; the constructor records that (`overflowed()`) instead of
/// throwing so callers in the precond layer can surface it as their own
/// kFactorizationFailed — the deterministic fp32 breakdown trigger.
template <class T>
class DenseSolveT {
 public:
  DenseSolveT() = default;

  explicit DenseSolveT(const DenseLU& lu) : n_(lu.size()) {
    const int n = n_;
    cm_.resize(static_cast<std::size_t>(n) * n);
    piv_ = lu.pivots();
    const double* f = lu.factor();
    for (int j = 0; j < n; ++j)
      for (int i = 0; i < n; ++i) {
        const double v = f[static_cast<std::size_t>(i) * n + j];
        const T t = static_cast<T>(v);
        if (!std::isfinite(static_cast<double>(t)) && std::isfinite(v)) overflowed_ = true;
        cm_[static_cast<std::size_t>(j) * n + i] = t;
      }
  }

  /// x := A^-1 x, substitution arithmetic in U.
  template <class U>
  void solve(U* x) const {
    const int n = n_;
    for (int k = 0; k < n; ++k) {
      if (piv_[k] != k) std::swap(x[k], x[piv_[k]]);
      const T* col = cm_.data() + static_cast<std::size_t>(k) * n;
      const U xk = x[k];
      GEOFEM_PRAGMA_SIMD
      for (int i = k + 1; i < n; ++i) x[i] -= col[i] * xk;
    }
    for (int k = n - 1; k >= 0; --k) {
      const T* col = cm_.data() + static_cast<std::size_t>(k) * n;
      const U xk = (x[k] /= col[k]);
      GEOFEM_PRAGMA_SIMD
      for (int i = 0; i < k; ++i) x[i] -= col[i] * xk;
    }
  }

  [[nodiscard]] int size() const { return n_; }
  [[nodiscard]] bool overflowed() const { return overflowed_; }
  [[nodiscard]] std::uint64_t solve_flops() const {
    return 2ULL * static_cast<std::uint64_t>(n_) * static_cast<std::uint64_t>(n_);
  }
  [[nodiscard]] std::size_t memory_bytes() const {
    return cm_.size() * sizeof(T) + piv_.size() * sizeof(int);
  }

 private:
  int n_ = 0;
  simd::aligned_vector<T> cm_;  ///< column-major narrowed factor
  std::vector<int> piv_;
  bool overflowed_ = false;
};

}  // namespace geofem::sparse
