#include "sparse/block_csr.hpp"

#include <algorithm>
#include <cmath>

#include "par/par.hpp"
#include "simd/block3.hpp"
#include "simd/multirhs.hpp"
#include "util/check.hpp"

namespace geofem::sparse {

namespace {

/// Row-parallel SpMV body, accumulator type chosen once per call. ScalarAcc3
/// reproduces the historical b3_gemv arithmetic bit-for-bit; AvxAcc3 keeps
/// three FMA accumulators per row with a fixed-tree reduce.
template <class Acc>
void spmv_impl(const BlockCSR& a, const double* x, double* y, int t) {
#pragma omp parallel for schedule(static) num_threads(t) if (t > 1)
  for (int i = 0; i < a.n; ++i) {
    Acc acc;
    acc.init_zero();
    for (int e = a.rowptr[i]; e < a.rowptr[i + 1]; ++e) {
      acc.madd(a.block(e), x + static_cast<std::size_t>(a.colind[e]) * kB);
    }
    acc.reduce(y + static_cast<std::size_t>(i) * kB);
  }
}

#if GEOFEM_SIMD_HAS_AVX2
/// k = 4*KV fast path: the whole 3*k accumulator lives in ymm registers for
/// the duration of a block row (simd::AvxAccK), so the only memory traffic
/// per block is the matrix stream plus the operand row. Bit-identical to
/// spmm_impl<true> — AvxAccK applies the same per-lane FMA sequence.
template <int KV>
void spmm_impl_avxk(const BlockCSR& a, const double* x, double* y, int t) {
  constexpr std::size_t rk = static_cast<std::size_t>(kB) * 4 * KV;
#pragma omp parallel for schedule(static) num_threads(t) if (t > 1)
  for (int i = 0; i < a.n; ++i) {
    simd::AvxAccK<double, KV> acc;
    acc.init_zero();
    for (int e = a.rowptr[i]; e < a.rowptr[i + 1]; ++e)
      acc.madd(a.block(e), x + static_cast<std::size_t>(a.colind[e]) * rk);
    acc.reduce(y + static_cast<std::size_t>(i) * rk);
  }
}
#endif  // GEOFEM_SIMD_HAS_AVX2

/// Row-parallel SpMM body: one 3*k stack accumulator per block row, the
/// matrix block stream identical to spmv_impl. Rows write disjoint Y slices
/// and each row's block order is the serial one, so the result is
/// bit-identical for any team size.
template <bool UseAvx>
void spmm_impl(const BlockCSR& a, const double* x, double* y, int k, int t) {
  const std::size_t rk = static_cast<std::size_t>(kB) * static_cast<std::size_t>(k);
#pragma omp parallel for schedule(static) num_threads(t) if (t > 1)
  for (int i = 0; i < a.n; ++i) {
    double acc[static_cast<std::size_t>(kB) * simd::kMaxMultiRhs];
    for (std::size_t c = 0; c < rk; ++c) acc[c] = 0.0;
    for (int e = a.rowptr[i]; e < a.rowptr[i + 1]; ++e)
      simd::b3k_madd<double, UseAvx>(a.block(e), x + static_cast<std::size_t>(a.colind[e]) * rk,
                                     acc, k);
    double* yi = y + static_cast<std::size_t>(i) * rk;
    for (std::size_t c = 0; c < rk; ++c) yi[c] = acc[c];
  }
}

}  // namespace

int BlockCSR::find(int i, int j) const {
  const int* first = colind.data() + rowptr[i];
  const int* last = colind.data() + rowptr[i + 1];
  const int* it = std::lower_bound(first, last, j);
  if (it == last || *it != j) return -1;
  return static_cast<int>(it - colind.data());
}

int BlockCSR::diag_entry(int i) const {
  const int e = find(i, i);
  GEOFEM_CHECK(e >= 0, "missing diagonal block");
  return e;
}

void BlockCSR::spmv(std::span<const double> x, std::span<double> y, util::FlopCounter* flops,
                    util::LoopStats* loops) const {
  GEOFEM_CHECK(x.size() == ndof() && y.size() == ndof(), "spmv size mismatch");
  // Rows write disjoint y blocks and each row's accumulation order is the
  // serial one (per accumulator type), so the result is bit-identical for
  // any team size.
  const int t = par::threads();
#if GEOFEM_SIMD_HAS_AVX2
  if (simd::active() == simd::Isa::kAvx2) {
    spmv_impl<simd::AvxAcc3>(*this, x.data(), y.data(), t);
  } else
#endif
  {
    spmv_impl<simd::ScalarAcc3>(*this, x.data(), y.data(), t);
  }
  // Stats are pattern-derived: record them serially so the loop-length stream
  // keeps the serial order regardless of the team size.
  if (loops)
    for (int i = 0; i < n; ++i) loops->record(rowptr[i + 1] - rowptr[i]);
  if (flops) flops->spmv += 2ULL * kBB * static_cast<std::uint64_t>(nnz_blocks());
}

void BlockCSR::spmm(std::span<const double> x, std::span<double> y, int k,
                    util::FlopCounter* flops, util::LoopStats* loops) const {
  GEOFEM_CHECK(k >= 1 && k <= simd::kMaxMultiRhs, "spmm: bad column count");
  GEOFEM_CHECK(x.size() == ndof() * static_cast<std::size_t>(k) &&
                   y.size() == ndof() * static_cast<std::size_t>(k),
               "spmm size mismatch");
  const int t = par::threads();
#if GEOFEM_SIMD_HAS_AVX2
  if (simd::active() == simd::Isa::kAvx2) {
    // Register-resident fast path for the common batch widths (dispatch
    // depends only on k, so results stay deterministic within a build).
    if (k == 4)
      spmm_impl_avxk<1>(*this, x.data(), y.data(), t);
    else if (k == 8)
      spmm_impl_avxk<2>(*this, x.data(), y.data(), t);
    else
      spmm_impl<true>(*this, x.data(), y.data(), k, t);
  } else
#endif
  {
    spmm_impl<false>(*this, x.data(), y.data(), k, t);
  }
  if (loops)
    for (int i = 0; i < n; ++i) loops->record(rowptr[i + 1] - rowptr[i]);
  if (flops)
    flops->spmv +=
        2ULL * kBB * static_cast<std::uint64_t>(nnz_blocks()) * static_cast<std::uint64_t>(k);
}

double BlockCSR::symmetry_error() const {
  double err = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int e = rowptr[i]; e < rowptr[i + 1]; ++e) {
      const int j = colind[e];
      if (j < i) continue;
      const int et = find(j, i);
      const double* a = block(e);
      if (et < 0) {
        for (int k = 0; k < kBB; ++k) err = std::max(err, std::fabs(a[k]));
        continue;
      }
      const double* b = block(et);
      for (int r = 0; r < kB; ++r)
        for (int c = 0; c < kB; ++c)
          err = std::max(err, std::fabs(a[kB * r + c] - b[kB * c + r]));
    }
  }
  return err;
}

BlockCSRBuilder::BlockCSRBuilder(int n) : n_(n), cols_(static_cast<std::size_t>(n)) {
  GEOFEM_CHECK(n >= 0, "negative matrix size");
  for (int i = 0; i < n; ++i) cols_[i].push_back(i);  // diagonal always present
}

void BlockCSRBuilder::add_pattern(int i, int j) {
  GEOFEM_CHECK(!finalized_, "pattern already finalized");
  GEOFEM_CHECK(i >= 0 && i < n_ && j >= 0 && j < n_, "pattern index out of range");
  cols_[i].push_back(j);
}

void BlockCSRBuilder::finalize_pattern() {
  GEOFEM_CHECK(!finalized_, "pattern already finalized");
  m_.n = n_;
  m_.rowptr.assign(static_cast<std::size_t>(n_) + 1, 0);
  std::size_t total = 0;
  for (int i = 0; i < n_; ++i) {
    auto& c = cols_[i];
    std::sort(c.begin(), c.end());
    c.erase(std::unique(c.begin(), c.end()), c.end());
    total += c.size();
    m_.rowptr[i + 1] = static_cast<int>(total);
  }
  m_.colind.reserve(total);
  for (int i = 0; i < n_; ++i) {
    m_.colind.insert(m_.colind.end(), cols_[i].begin(), cols_[i].end());
    cols_[i].clear();
    cols_[i].shrink_to_fit();
  }
  m_.val.assign(total * kBB, 0.0);
  finalized_ = true;
}

void BlockCSRBuilder::add_block(int i, int j, const double* b) {
  GEOFEM_CHECK(finalized_, "pattern not finalized");
  const int e = m_.find(i, j);
  GEOFEM_CHECK(e >= 0, "block not in pattern");
  double* dst = m_.block(e);
  for (int k = 0; k < kBB; ++k) dst[k] += b[k];
}

void BlockCSRBuilder::add_scalar(int i, int j, int r, int c, double v) {
  GEOFEM_CHECK(finalized_, "pattern not finalized");
  const int e = m_.find(i, j);
  GEOFEM_CHECK(e >= 0, "block not in pattern");
  m_.block(e)[kB * r + c] += v;
}

BlockCSR BlockCSRBuilder::take() {
  GEOFEM_CHECK(finalized_, "pattern not finalized");
  finalized_ = false;
  return std::move(m_);
}

Graph graph_of(const BlockCSR& a) {
  Graph g;
  g.n = a.n;
  g.xadj.assign(static_cast<std::size_t>(a.n) + 1, 0);
  for (int i = 0; i < a.n; ++i) {
    int deg = 0;
    for (int e = a.rowptr[i]; e < a.rowptr[i + 1]; ++e)
      if (a.colind[e] != i) ++deg;
    g.xadj[i + 1] = g.xadj[i] + deg;
  }
  g.adjncy.resize(static_cast<std::size_t>(g.xadj[a.n]));
  for (int i = 0, p = 0; i < a.n; ++i) {
    for (int e = a.rowptr[i]; e < a.rowptr[i + 1]; ++e)
      if (a.colind[e] != i) g.adjncy[p++] = a.colind[e];
  }
  return g;
}

BlockCSR permute(const BlockCSR& a, std::span<const int> perm) {
  GEOFEM_CHECK(static_cast<int>(perm.size()) == a.n, "perm size mismatch");
  BlockCSRBuilder b(a.n);
  for (int i = 0; i < a.n; ++i)
    for (int e = a.rowptr[i]; e < a.rowptr[i + 1]; ++e) b.add_pattern(perm[i], perm[a.colind[e]]);
  b.finalize_pattern();
  for (int i = 0; i < a.n; ++i)
    for (int e = a.rowptr[i]; e < a.rowptr[i + 1]; ++e)
      b.add_block(perm[i], perm[a.colind[e]], a.block(e));
  return b.take();
}

}  // namespace geofem::sparse
