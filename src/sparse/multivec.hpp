#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "par/par.hpp"
#include "simd/multirhs.hpp"
#include "simd/simd.hpp"
#include "util/check.hpp"
#include "util/flops.hpp"

/// Multi-vector BLAS-1 for the batched solve path (DESIGN.md §5k).
///
/// A multivector of k RHS columns over n scalar rows is stored interleaved
/// row-major: value(row i, column c) = X[i*k + c]. All kernels here take the
/// per-column coefficient arrays (alpha[c], beta[c]) plus an optional
/// per-column `active` mask: frozen (converged / broken-down) columns are
/// skipped with an explicit guard — never via alpha = 0, which could turn a
/// frozen column's -0.0 into +0.0 and break the freeze-is-frozen contract.
///
/// Determinism mirrors vector_ops.hpp: element-wise ops write disjoint
/// elements; `dot_multi` accumulates each column over the same fixed
/// par::kReduceChunk row grid as the single-RHS dot and combines each
/// column's partials with the same fixed-shape pairwise tree — so every
/// column's result is bit-identical for any team size. (A k>1 column is NOT
/// bit-identical to the same column solved alone: the per-chunk loop runs
/// row-major over columns, which fixes a different lane shape than the
/// single-RHS chunk kernel. The batch-of-1 solve path never reaches these
/// kernels — it delegates to the single-RHS solver wholesale.)
namespace geofem::sparse {

/// out[c] = sum_i X[i*k+c] * Y[i*k+c] for every column. `n` counts scalar
/// rows (DOFs), not array elements.
inline void dot_multi(const double* x, const double* y, std::size_t n, int k, double* out,
                      util::FlopCounter* flops = nullptr) {
  GEOFEM_CHECK(k >= 1 && k <= simd::kMaxMultiRhs, "dot_multi: bad column count");
  if (flops) flops->blas1 += 2 * n * static_cast<std::size_t>(k);
  const std::size_t nc = par::reduce_chunks(n);
  // Per-chunk partials laid out [chunk][column]; reused per calling thread —
  // dot_multi runs three times per batched CG iteration.
  static thread_local std::vector<double> partials;
  static thread_local std::vector<double> colbuf;
  if (partials.size() < nc * static_cast<std::size_t>(k))
    partials.resize(nc * static_cast<std::size_t>(k));
  if (colbuf.size() < nc) colbuf.resize(nc);
  double* parts = partials.data();
  const int t = par::threads();
#pragma omp parallel for schedule(static) num_threads(t) if (t > 1 && nc > 1)
  for (std::ptrdiff_t ci = 0; ci < static_cast<std::ptrdiff_t>(nc); ++ci) {
    const std::size_t b = static_cast<std::size_t>(ci) * par::kReduceChunk;
    const std::size_t e = b + par::kReduceChunk < n ? b + par::kReduceChunk : n;
    double* p = parts + static_cast<std::size_t>(ci) * static_cast<std::size_t>(k);
    for (int c = 0; c < k; ++c) p[c] = 0.0;
    for (std::size_t i = b; i < e; ++i) {
      const double* xi = x + i * static_cast<std::size_t>(k);
      const double* yi = y + i * static_cast<std::size_t>(k);
      GEOFEM_PRAGMA_SIMD
      for (int c = 0; c < k; ++c) p[c] += xi[c] * yi[c];
    }
  }
  // Combine per column with the single-RHS tree; the strided gather keeps the
  // tree's input order identical to a column-major partial layout.
  double* cb = colbuf.data();
  for (int c = 0; c < k; ++c) {
    for (std::size_t j = 0; j < nc; ++j)
      cb[j] = parts[j * static_cast<std::size_t>(k) + static_cast<std::size_t>(c)];
    out[c] = par::combine(cb, nc);
  }
}

inline void norm2_multi(const double* x, std::size_t n, int k, double* out,
                        util::FlopCounter* flops = nullptr) {
  dot_multi(x, x, n, k, out, flops);
  for (int c = 0; c < k; ++c) out[c] = std::sqrt(out[c]);
}

/// Y[i*k+c] += alpha[c] * X[i*k+c] for active columns (all columns when
/// `active` is null).
inline void axpy_multi(const double* alpha, const unsigned char* active, const double* x,
                       double* y, std::size_t n, int k, util::FlopCounter* flops = nullptr) {
  if (flops) flops->blas1 += 2 * n * static_cast<std::size_t>(k);
  const int t = par::threads();
  const std::ptrdiff_t pn = static_cast<std::ptrdiff_t>(n);
#pragma omp parallel for schedule(static) num_threads(t) if (t > 1 && n >= 2048)
  for (std::ptrdiff_t i = 0; i < pn; ++i) {
    const double* xi = x + static_cast<std::size_t>(i) * static_cast<std::size_t>(k);
    double* yi = y + static_cast<std::size_t>(i) * static_cast<std::size_t>(k);
    for (int c = 0; c < k; ++c)
      if (!active || active[c]) yi[c] += alpha[c] * xi[c];
  }
}

/// Y[i*k+c] = X[i*k+c] + beta[c] * Y[i*k+c] for active columns (the CG
/// direction update).
inline void xpby_multi(const double* beta, const unsigned char* active, const double* x,
                       double* y, std::size_t n, int k, util::FlopCounter* flops = nullptr) {
  if (flops) flops->blas1 += 2 * n * static_cast<std::size_t>(k);
  const int t = par::threads();
  const std::ptrdiff_t pn = static_cast<std::ptrdiff_t>(n);
#pragma omp parallel for schedule(static) num_threads(t) if (t > 1 && n >= 2048)
  for (std::ptrdiff_t i = 0; i < pn; ++i) {
    const double* xi = x + static_cast<std::size_t>(i) * static_cast<std::size_t>(k);
    double* yi = y + static_cast<std::size_t>(i) * static_cast<std::size_t>(k);
    for (int c = 0; c < k; ++c)
      if (!active || active[c]) yi[c] = xi[c] + beta[c] * yi[c];
  }
}

/// Copy column c of an interleaved multivector into a contiguous vector.
inline void gather_column(const double* x, std::size_t n, int k, int c, double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = x[i * static_cast<std::size_t>(k) + c];
}

/// Write a contiguous vector into column c of an interleaved multivector.
inline void scatter_column(const double* v, std::size_t n, int k, int c, double* x) {
  for (std::size_t i = 0; i < n; ++i) x[i * static_cast<std::size_t>(k) + c] = v[i];
}

/// Repack the columns listed in `keep` (indices into the old width k_old,
/// strictly ascending) into a fresh interleaved layout of width k_new — the
/// batch-compaction primitive. In-place safe: with ascending `keep`, every
/// write lands at or before the next element still to be read.
inline void compact_columns(double* x, std::size_t n, int k_old, const int* keep, int k_new) {
  GEOFEM_CHECK(k_new <= k_old, "compact_columns: growing width");
  for (int c = 0; c + 1 < k_new; ++c)
    GEOFEM_CHECK(keep[c] < keep[c + 1], "compact_columns: keep not ascending");
  for (std::size_t i = 0; i < n; ++i) {
    const double* src = x + i * static_cast<std::size_t>(k_old);
    double* dst = x + i * static_cast<std::size_t>(k_new);
    for (int c = 0; c < k_new; ++c) {
      const double v = src[keep[c]];
      dst[c] = v;
    }
  }
}

}  // namespace geofem::sparse
