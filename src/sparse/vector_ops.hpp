#pragma once

#include <cmath>
#include <span>

#include "util/check.hpp"
#include "util/flops.hpp"

namespace geofem::sparse {

/// BLAS-1 helpers used by the Krylov solvers. Each counts its algorithmic
/// FLOPs so the benchmark harness can report paper-style FLOP rates.

inline double dot(std::span<const double> x, std::span<const double> y,
                  util::FlopCounter* flops = nullptr) {
  GEOFEM_CHECK(x.size() == y.size(), "dot size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  if (flops) flops->blas1 += 2 * x.size();
  return s;
}

inline double norm2(std::span<const double> x, util::FlopCounter* flops = nullptr) {
  return std::sqrt(dot(x, x, flops));
}

/// y += alpha * x
inline void axpy(double alpha, std::span<const double> x, std::span<double> y,
                 util::FlopCounter* flops = nullptr) {
  GEOFEM_CHECK(x.size() == y.size(), "axpy size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
  if (flops) flops->blas1 += 2 * x.size();
}

/// y = x + beta * y  (xpby, the CG direction update)
inline void xpby(std::span<const double> x, double beta, std::span<double> y,
                 util::FlopCounter* flops = nullptr) {
  GEOFEM_CHECK(x.size() == y.size(), "xpby size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] + beta * y[i];
  if (flops) flops->blas1 += 2 * x.size();
}

inline void scale(double alpha, std::span<double> x, util::FlopCounter* flops = nullptr) {
  for (double& v : x) v *= alpha;
  if (flops) flops->blas1 += x.size();
}

inline void copy(std::span<const double> x, std::span<double> y) {
  GEOFEM_CHECK(x.size() == y.size(), "copy size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i];
}

inline void fill(std::span<double> x, double v) {
  for (double& e : x) e = v;
}

}  // namespace geofem::sparse
