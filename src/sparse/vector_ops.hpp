#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "par/par.hpp"
#include "simd/simd.hpp"
#include "util/check.hpp"
#include "util/flops.hpp"

namespace geofem::sparse {

namespace detail {

/// One reduce-chunk of the dot product, lane-vectorized. The chunk grid is
/// fixed by the vector length (par::kReduceChunk), so the result is identical
/// for every team size; within a chunk the compiler's lane tree is fixed per
/// build configuration.
inline double dot_chunk(const double* x, const double* y, std::size_t b, std::size_t e) {
  double acc = 0.0;
  GEOFEM_PRAGMA_SIMD_REDUCTION(+ : acc)
  for (std::size_t i = b; i < e; ++i) acc += x[i] * y[i];
  return acc;
}

/// De-vectorized twin — the honest scalar baseline bench_kernels times under
/// simd::IsaScope(kScalar).
GEOFEM_NOVEC_FN inline double dot_chunk_scalar(const double* x, const double* y, std::size_t b,
                                               std::size_t e) {
  double acc = 0.0;
  GEOFEM_PRAGMA_NOVEC
  for (std::size_t i = b; i < e; ++i) acc += x[i] * y[i];
  return acc;
}

}  // namespace detail

/// BLAS-1 helpers used by the Krylov solvers. Each counts its algorithmic
/// FLOPs so the benchmark harness can report paper-style FLOP rates.
///
/// All of these are hybrid kernels: they run on the calling thread's team
/// (par::threads(), set via par::TeamScope) and are bit-identical for every
/// team size. The element-wise ops write disjoint elements, so any schedule
/// gives the same result; `dot` sums fixed kReduceChunk-length chunks whose
/// grid depends only on the vector length and combines the partials with a
/// fixed-shape pairwise tree (par::combine) — the same arithmetic whether one
/// thread computes every chunk or the chunks are spread across a team.

/// Element-wise ops shorter than this stay serial — fork/join would dominate.
inline constexpr std::size_t kParGrain = 2048;

inline double dot(std::span<const double> x, std::span<const double> y,
                  util::FlopCounter* flops = nullptr) {
  GEOFEM_CHECK(x.size() == y.size(), "dot size mismatch");
  const std::size_t n = x.size();
  if (flops) flops->blas1 += 2 * n;
  const std::size_t nc = par::reduce_chunks(n);
  // Dispatch once per call, not per chunk: inside a SIMD build the scalar
  // path only runs when an IsaScope lowered the tier (bench baseline).
  auto* chunk =
      simd::active() == simd::Isa::kScalar ? detail::dot_chunk_scalar : detail::dot_chunk;
  if (nc <= 1) return chunk(x.data(), y.data(), 0, n);
  // Reused per-thread scratch: `dot` runs twice per CG iteration, and a heap
  // allocation per call showed up ahead of the actual reduction for small
  // problems (see the dot-scratch note in bench_kernels).
  static thread_local std::vector<double> partials;
  if (partials.size() < nc) partials.resize(nc);
  // The pointer is hoisted so the workers of the parallel region write the
  // *calling* thread's buffer — inside the region, `partials` would name each
  // worker's own (empty) thread-local vector.
  double* parts = partials.data();
  const int t = par::threads();
#pragma omp parallel for schedule(static) num_threads(t) if (t > 1)
  for (std::ptrdiff_t c = 0; c < static_cast<std::ptrdiff_t>(nc); ++c) {
    const std::size_t b = static_cast<std::size_t>(c) * par::kReduceChunk;
    const std::size_t e = std::min(b + par::kReduceChunk, n);
    parts[static_cast<std::size_t>(c)] = chunk(x.data(), y.data(), b, e);
  }
  return par::combine(parts, nc);
}

inline double norm2(std::span<const double> x, util::FlopCounter* flops = nullptr) {
  return std::sqrt(dot(x, x, flops));
}

/// y += alpha * x
inline void axpy(double alpha, std::span<const double> x, std::span<double> y,
                 util::FlopCounter* flops = nullptr) {
  GEOFEM_CHECK(x.size() == y.size(), "axpy size mismatch");
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  const int t = par::threads();
#pragma omp parallel for schedule(static) num_threads(t) if (t > 1 && x.size() >= kParGrain)
  for (std::ptrdiff_t i = 0; i < n; ++i) y[static_cast<std::size_t>(i)] +=
      alpha * x[static_cast<std::size_t>(i)];
  if (flops) flops->blas1 += 2 * x.size();
}

/// y = x + beta * y  (xpby, the CG direction update)
inline void xpby(std::span<const double> x, double beta, std::span<double> y,
                 util::FlopCounter* flops = nullptr) {
  GEOFEM_CHECK(x.size() == y.size(), "xpby size mismatch");
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  const int t = par::threads();
#pragma omp parallel for schedule(static) num_threads(t) if (t > 1 && x.size() >= kParGrain)
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const std::size_t u = static_cast<std::size_t>(i);
    y[u] = x[u] + beta * y[u];
  }
  if (flops) flops->blas1 += 2 * x.size();
}

inline void scale(double alpha, std::span<double> x, util::FlopCounter* flops = nullptr) {
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  const int t = par::threads();
#pragma omp parallel for schedule(static) num_threads(t) if (t > 1 && x.size() >= kParGrain)
  for (std::ptrdiff_t i = 0; i < n; ++i) x[static_cast<std::size_t>(i)] *= alpha;
  if (flops) flops->blas1 += x.size();
}

inline void copy(std::span<const double> x, std::span<double> y) {
  GEOFEM_CHECK(x.size() == y.size(), "copy size mismatch");
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  const int t = par::threads();
#pragma omp parallel for schedule(static) num_threads(t) if (t > 1 && x.size() >= kParGrain)
  for (std::ptrdiff_t i = 0; i < n; ++i) y[static_cast<std::size_t>(i)] =
      x[static_cast<std::size_t>(i)];
}

inline void fill(std::span<double> x, double v) {
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  const int t = par::threads();
#pragma omp parallel for schedule(static) num_threads(t) if (t > 1 && x.size() >= kParGrain)
  for (std::ptrdiff_t i = 0; i < n; ++i) x[static_cast<std::size_t>(i)] = v;
}

}  // namespace geofem::sparse
