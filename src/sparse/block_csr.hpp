#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "simd/simd.hpp"
#include "sparse/dense.hpp"
#include "util/flops.hpp"
#include "util/loop_stats.hpp"

namespace geofem::sparse {

/// Sparse matrix of 3x3 blocks in compressed-row-storage form ("CRS" in the
/// paper). One block row per finite-element node; the diagonal block is stored
/// in-line with the off-diagonals, column indices sorted ascending per row.
struct BlockCSR {
  int n = 0;                   ///< number of block rows (= FEM nodes)
  std::vector<int> rowptr;     ///< size n+1
  std::vector<int> colind;     ///< block column index per entry
  simd::aligned_vector<double> val;  ///< kBB doubles per entry (row-major 3x3)

  [[nodiscard]] int nnz_blocks() const { return static_cast<int>(colind.size()); }
  [[nodiscard]] std::size_t ndof() const { return static_cast<std::size_t>(n) * kB; }

  [[nodiscard]] double* block(int e) { return val.data() + static_cast<std::size_t>(e) * kBB; }
  [[nodiscard]] const double* block(int e) const {
    return val.data() + static_cast<std::size_t>(e) * kBB;
  }

  /// Entry index of block (i,j), or -1 if not present. Binary search on the
  /// sorted column indices of row i.
  [[nodiscard]] int find(int i, int j) const;

  /// Entry index of the diagonal block of row i (must exist).
  [[nodiscard]] int diag_entry(int i) const;

  /// y = A x. Counts FLOPs and (optionally) records the innermost loop length
  /// of each block row, which is what limits vector performance for plain CRS.
  void spmv(std::span<const double> x, std::span<double> y, util::FlopCounter* flops = nullptr,
            util::LoopStats* loops = nullptr) const;

  /// Y = A X for k interleaved RHS columns (value(dof i, col c) = X[i*k+c],
  /// DESIGN.md §5k): the matrix is streamed from memory once for all k
  /// columns, multiplying arithmetic per byte by k. Per column the scalar
  /// tier keeps the ScalarAcc3 block-row association; the avx2 tier puts the
  /// SIMD lanes over the column axis (simd::b3k_madd). Bit-identical across
  /// team sizes for any k; k = 1 matches spmv's scalar tier exactly.
  void spmm(std::span<const double> x, std::span<double> y, int k,
            util::FlopCounter* flops = nullptr, util::LoopStats* loops = nullptr) const;

  /// Max |A_ij - A_ji^T| over all stored blocks (0 for symmetric matrices).
  [[nodiscard]] double symmetry_error() const;

  /// Bytes of the value + index arrays.
  [[nodiscard]] std::size_t memory_bytes() const {
    return val.size() * sizeof(double) + colind.size() * sizeof(int) +
           rowptr.size() * sizeof(int);
  }
};

/// Incremental builder: declare the block sparsity pattern via add_entry /
/// element scatter, then assemble values. Duplicate (i,j) contributions sum.
class BlockCSRBuilder {
 public:
  explicit BlockCSRBuilder(int n);

  /// Declare that block (i,j) exists (values added later). Idempotent.
  void add_pattern(int i, int j);

  /// Finalize the pattern: sort/unique columns, allocate values to zero.
  /// After this call use add_block()/matrix().
  void finalize_pattern();

  /// A(i,j) += b (3x3 row-major). Pattern must contain (i,j).
  void add_block(int i, int j, const double* b);

  /// A(i,j)(r,c) += v
  void add_scalar(int i, int j, int r, int c, double v);

  /// Move the finished matrix out.
  BlockCSR take();

 private:
  int n_;
  bool finalized_ = false;
  std::vector<std::vector<int>> cols_;  // pre-finalize adjacency
  BlockCSR m_;
};

/// Node-adjacency graph of the matrix (excluding the diagonal), as CSR index
/// arrays. Used by the reordering and partitioning modules.
struct Graph {
  int n = 0;
  std::vector<int> xadj;   ///< size n+1
  std::vector<int> adjncy;
};

/// Extract the adjacency graph (off-diagonal pattern) of a BlockCSR.
Graph graph_of(const BlockCSR& a);

/// Apply a symmetric permutation: B = P A P^T where new index = perm[old].
BlockCSR permute(const BlockCSR& a, std::span<const int> perm);

}  // namespace geofem::sparse
