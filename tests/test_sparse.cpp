#include <gtest/gtest.h>

#include <vector>

#include "sparse/block_csr.hpp"
#include "sparse/dense.hpp"
#include "sparse/vector_ops.hpp"
#include "util/rng.hpp"

namespace gs = geofem::sparse;

namespace {

/// Random SPD-ish 3x3 block (diagonally dominant).
void random_block(geofem::util::Rng& rng, double* b, double scale = 1.0) {
  for (int i = 0; i < 9; ++i) b[i] = scale * rng.uniform(-1.0, 1.0);
}

gs::BlockCSR tridiag_matrix(int n, geofem::util::Rng& rng) {
  gs::BlockCSRBuilder builder(n);
  for (int i = 0; i + 1 < n; ++i) {
    builder.add_pattern(i, i + 1);
    builder.add_pattern(i + 1, i);
  }
  builder.finalize_pattern();
  double blk[9];
  for (int i = 0; i < n; ++i) {
    random_block(rng, blk);
    // symmetrize and make the diagonal dominant
    for (int r = 0; r < 3; ++r)
      for (int c = 0; c < r; ++c) blk[3 * r + c] = blk[3 * c + r];
    blk[0] += 10;
    blk[4] += 10;
    blk[8] += 10;
    builder.add_block(i, i, blk);
    if (i + 1 < n) {
      random_block(rng, blk, 0.5);
      builder.add_block(i, i + 1, blk);
      double blkt[9];
      for (int r = 0; r < 3; ++r)
        for (int c = 0; c < 3; ++c) blkt[3 * r + c] = blk[3 * c + r];
      builder.add_block(i + 1, i, blkt);
    }
  }
  return builder.take();
}

}  // namespace

TEST(Dense, B3InverseRoundTrip) {
  geofem::util::Rng rng(7);
  double a[9], inv[9];
  random_block(rng, a);
  a[0] += 5;
  a[4] += 5;
  a[8] += 5;
  ASSERT_TRUE(gs::b3_inverse(a, inv));
  double prod[9] = {};
  gs::b3_gemm(a, inv, prod);
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 3; ++c) EXPECT_NEAR(prod[3 * r + c], r == c ? 1.0 : 0.0, 1e-12);
}

TEST(Dense, B3InverseSingularFails) {
  double a[9] = {1, 2, 3, 2, 4, 6, 0, 0, 1};  // rank deficient
  double inv[9];
  EXPECT_FALSE(gs::b3_inverse(a, inv));
}

TEST(Dense, GemvMatchesManual) {
  double a[9] = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  double x[3] = {1, -1, 2};
  double y[3] = {0, 0, 0};
  gs::b3_gemv(a, x, y);
  EXPECT_DOUBLE_EQ(y[0], 1 - 2 + 6);
  EXPECT_DOUBLE_EQ(y[1], 4 - 5 + 12);
  EXPECT_DOUBLE_EQ(y[2], 7 - 8 + 18);
}

TEST(Dense, GemvTransMatchesTranspose) {
  geofem::util::Rng rng(3);
  double a[9], x[3] = {0.3, -0.7, 1.1};
  random_block(rng, a);
  double y1[3] = {}, y2[3] = {};
  gs::b3_gemv_trans(a, x, y1);
  double at[9];
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 3; ++c) at[3 * r + c] = a[3 * c + r];
  gs::b3_gemv(at, x, y2);
  for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(y1[i], y2[i]);
}

TEST(DenseLU, SolvesRandomSystem) {
  geofem::util::Rng rng(11);
  const int n = 17;
  std::vector<double> a(static_cast<std::size_t>(n) * n);
  for (auto& v : a) v = rng.uniform(-1.0, 1.0);
  for (int i = 0; i < n; ++i) a[static_cast<std::size_t>(i) * n + i] += n;  // dominance
  std::vector<double> xref(n), b(n, 0.0);
  for (int i = 0; i < n; ++i) xref[static_cast<std::size_t>(i)] = rng.uniform(-2.0, 2.0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      b[static_cast<std::size_t>(i)] +=
          a[static_cast<std::size_t>(i) * n + j] * xref[static_cast<std::size_t>(j)];

  gs::DenseLU lu;
  ASSERT_TRUE(lu.factor(a.data(), n));
  lu.solve(b.data());
  for (int i = 0; i < n; ++i) EXPECT_NEAR(b[static_cast<std::size_t>(i)],
                                          xref[static_cast<std::size_t>(i)], 1e-10);
}

TEST(DenseLU, PivotsZeroDiagonal) {
  // Requires row swaps: leading diagonal entry is zero.
  double a[4] = {0, 1, 1, 0};
  gs::DenseLU lu;
  ASSERT_TRUE(lu.factor(a, 2));
  double x[2] = {3, 5};  // solves [[0,1],[1,0]] x = (3,5) -> x = (5,3)
  lu.solve(x);
  EXPECT_NEAR(x[0], 5.0, 1e-14);
  EXPECT_NEAR(x[1], 3.0, 1e-14);
}

TEST(DenseLU, SingularReturnsFalse) {
  double a[4] = {1, 2, 2, 4};
  gs::DenseLU lu;
  EXPECT_FALSE(lu.factor(a, 2));
}

TEST(BlockCSR, BuilderSortsAndDedups) {
  gs::BlockCSRBuilder builder(3);
  builder.add_pattern(0, 2);
  builder.add_pattern(0, 1);
  builder.add_pattern(0, 2);  // duplicate
  builder.finalize_pattern();
  double one[9] = {1, 0, 0, 0, 1, 0, 0, 0, 1};
  builder.add_block(0, 2, one);
  builder.add_block(0, 2, one);  // accumulates
  auto m = builder.take();
  ASSERT_EQ(m.n, 3);
  EXPECT_EQ(m.rowptr[1] - m.rowptr[0], 3);  // diag + 2
  const int e = m.find(0, 2);
  ASSERT_GE(e, 0);
  EXPECT_DOUBLE_EQ(m.block(e)[0], 2.0);
  EXPECT_EQ(m.find(0, 0), 0);  // sorted: diagonal first in row 0
  EXPECT_EQ(m.find(2, 0), -1);
}

TEST(BlockCSR, SpmvMatchesDense) {
  geofem::util::Rng rng(23);
  const int n = 9;
  auto m = tridiag_matrix(n, rng);

  std::vector<double> x(m.ndof()), y(m.ndof());
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  m.spmv(x, y);

  // dense reference
  std::vector<double> dense(m.ndof() * m.ndof(), 0.0);
  for (int i = 0; i < n; ++i)
    for (int e = m.rowptr[i]; e < m.rowptr[i + 1]; ++e)
      for (int r = 0; r < 3; ++r)
        for (int c = 0; c < 3; ++c)
          dense[(static_cast<std::size_t>(3 * i + r)) * m.ndof() +
                static_cast<std::size_t>(3 * m.colind[e] + c)] = m.block(e)[3 * r + c];
  for (std::size_t r = 0; r < m.ndof(); ++r) {
    double acc = 0;
    for (std::size_t c = 0; c < m.ndof(); ++c) acc += dense[r * m.ndof() + c] * x[c];
    EXPECT_NEAR(acc, y[r], 1e-12);
  }
}

TEST(BlockCSR, SpmvCountsFlops) {
  geofem::util::Rng rng(5);
  auto m = tridiag_matrix(4, rng);
  std::vector<double> x(m.ndof(), 1.0), y(m.ndof());
  geofem::util::FlopCounter fc;
  m.spmv(x, y, &fc);
  EXPECT_EQ(fc.spmv, 18ULL * static_cast<std::uint64_t>(m.nnz_blocks()));
}

TEST(BlockCSR, SymmetryErrorDetectsAsymmetry) {
  geofem::util::Rng rng(31);
  auto m = tridiag_matrix(5, rng);
  EXPECT_NEAR(m.symmetry_error(), 0.0, 1e-15);
  // perturb one off-diagonal block
  const int e = m.find(1, 2);
  ASSERT_GE(e, 0);
  m.block(e)[1] += 0.25;
  EXPECT_NEAR(m.symmetry_error(), 0.25, 1e-12);
}

TEST(BlockCSR, PermuteRoundTrip) {
  geofem::util::Rng rng(13);
  const int n = 8;
  auto m = tridiag_matrix(n, rng);
  std::vector<int> perm(n);
  for (int i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = (i * 3) % n;  // bijection for n=8

  auto pm = gs::permute(m, perm);
  // spmv equivalence: (P A P^T) (P x) = P (A x)
  std::vector<double> x(m.ndof()), y(m.ndof()), px(m.ndof()), py(m.ndof());
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  for (int i = 0; i < n; ++i)
    for (int c = 0; c < 3; ++c)
      px[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)]) * 3 +
         static_cast<std::size_t>(c)] = x[static_cast<std::size_t>(i) * 3 + static_cast<std::size_t>(c)];
  m.spmv(x, y);
  pm.spmv(px, py);
  for (int i = 0; i < n; ++i)
    for (int c = 0; c < 3; ++c)
      EXPECT_NEAR(py[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)]) * 3 +
                     static_cast<std::size_t>(c)],
                  y[static_cast<std::size_t>(i) * 3 + static_cast<std::size_t>(c)], 1e-12);
}

TEST(BlockCSR, GraphExcludesDiagonal) {
  geofem::util::Rng rng(17);
  auto m = tridiag_matrix(6, rng);
  auto g = gs::graph_of(m);
  ASSERT_EQ(g.n, 6);
  EXPECT_EQ(g.xadj[1] - g.xadj[0], 1);  // end row: one neighbour
  EXPECT_EQ(g.xadj[2] - g.xadj[1], 2);  // interior: two
  for (int i = 0; i < g.n; ++i)
    for (int e = g.xadj[i]; e < g.xadj[i + 1]; ++e) EXPECT_NE(g.adjncy[static_cast<std::size_t>(e)], i);
}

TEST(VectorOps, DotAxpyNorm) {
  std::vector<double> x{1, 2, 3}, y{4, 5, 6};
  geofem::util::FlopCounter fc;
  EXPECT_DOUBLE_EQ(gs::dot(x, y, &fc), 32.0);
  EXPECT_EQ(fc.blas1, 6u);
  gs::axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[2], 12.0);
  gs::xpby(x, 0.5, y);
  EXPECT_DOUBLE_EQ(y[0], 1 + 0.5 * 6);
  EXPECT_DOUBLE_EQ(gs::norm2(std::vector<double>{3.0, 4.0}), 5.0);
}
