// Two-level coarse-space correction suite (DESIGN.md §5h): aggregation maps,
// exact Galerkin assembly, plan keying/memoization, serial and distributed
// solves (iteration reduction, bit-identical determinism across thread counts
// and warm/cold plans), and the typed lockstep degrade on a singular coarse
// operator. Own binary, ctest label `coarse`.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "coarse/aggregates.hpp"
#include "coarse/coarse.hpp"
#include "contact/penalty.hpp"
#include "core/geofem.hpp"
#include "dist/comm.hpp"
#include "dist/dist_solver.hpp"
#include "fem/assembly.hpp"
#include "mesh/simple_block.hpp"
#include "part/local_system.hpp"
#include "part/partition.hpp"
#include "plan/cache.hpp"
#include "plan/fingerprint.hpp"
#include "plan/plan.hpp"
#include "precond/two_level.hpp"

namespace gc = geofem::contact;
namespace gco = geofem::coarse;
namespace gcore = geofem::core;
namespace gd = geofem::dist;
namespace gf = geofem::fem;
namespace gm = geofem::mesh;
namespace gpart = geofem::part;
namespace gplan = geofem::plan;
namespace gs = geofem::sparse;

namespace {

struct Problem {
  gm::HexMesh mesh;
  gf::System sys;

  explicit Problem(double lambda = 1e6, gm::SimpleBlockParams bp = {3, 3, 2, 3, 3}) {
    mesh = gm::simple_block(bp);
    sys = gf::assemble_elasticity(mesh, {{1.0, 0.3}});
    gc::add_penalty(sys.a, mesh.contact_groups, lambda);
    gf::BoundaryConditions bc;
    bc.fix_nodes(mesh.nodes_where([](double, double, double z) { return z == 0.0; }), -1);
    const double zmax = mesh.bounding_box().hi[2];
    bc.surface_load(
        mesh, [&](double, double, double z) { return std::abs(z - zmax) < 1e-12; }, 2, -1.0);
    gf::apply_boundary_conditions(sys, bc);
  }
};

double true_relative_residual(const gs::BlockCSR& a, const std::vector<double>& b,
                              const std::vector<double>& x) {
  std::vector<double> ax(b.size(), 0.0);
  a.spmv(x, ax);
  double rr = 0.0, bb = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    const double d = b[i] - ax[i];
    rr += d * d;
    bb += b[i] * b[i];
  }
  return std::sqrt(rr / bb);
}

// 3x3 identity block scaled by s.
std::array<double, 9> scaled_identity(double s) {
  return {s, 0.0, 0.0, 0.0, s, 0.0, 0.0, 0.0, s};
}

// Block-diagonal matrix with the given scale per node: diag(s_0 I, s_1 I, ...).
gs::BlockCSR block_diag(const std::vector<double>& scales) {
  gs::BlockCSRBuilder bld(static_cast<int>(scales.size()));
  for (int i = 0; i < static_cast<int>(scales.size()); ++i) bld.add_pattern(i, i);
  bld.finalize_pattern();
  for (int i = 0; i < static_cast<int>(scales.size()); ++i)
    bld.add_block(i, i, scaled_identity(scales[static_cast<std::size_t>(i)]).data());
  return bld.take();
}

}  // namespace

// ---------------------------------------------------------------------------
// Aggregation maps
// ---------------------------------------------------------------------------

TEST(CoarseAggregates, SingleAggregateCoversEverything) {
  const auto m = gco::single_aggregate(7);
  EXPECT_EQ(m.count, 1);
  ASSERT_EQ(m.node_to_agg.size(), 7u);
  for (int a : m.node_to_agg) EXPECT_EQ(a, 0);
}

TEST(CoarseAggregates, RefineByGroupsSplitsOnlyRealGroups) {
  auto base = gco::single_aggregate(6);
  const std::uint64_t fp0 = base.fingerprint();
  const auto refined = gco::refine_by_groups(base, {{1, 2}, {4}});
  EXPECT_EQ(refined.count, 2);  // {1,2} gets aggregate 1; singleton {4} stays
  EXPECT_EQ(refined.node_to_agg[1], 1);
  EXPECT_EQ(refined.node_to_agg[2], 1);
  EXPECT_EQ(refined.node_to_agg[0], 0);
  EXPECT_EQ(refined.node_to_agg[4], 0);
  EXPECT_NE(refined.fingerprint(), fp0);
}

TEST(CoarseAggregates, FromGlobalKeepsGlobalCount) {
  gco::AggregateMap global;
  global.count = 3;
  global.node_to_agg = {0, 0, 1, 1, 2, 2};
  const auto local = gco::from_global(global, {4, 1, 3});
  EXPECT_EQ(local.count, 3);
  ASSERT_EQ(local.node_to_agg.size(), 3u);
  EXPECT_EQ(local.node_to_agg[0], 2);
  EXPECT_EQ(local.node_to_agg[1], 0);
  EXPECT_EQ(local.node_to_agg[2], 1);
}

TEST(CoarseAggregates, FingerprintIsOrderSensitive) {
  gco::AggregateMap a;
  a.count = 2;
  a.node_to_agg = {0, 1, 0, 1};
  gco::AggregateMap b = a;
  std::swap(b.node_to_agg[0], b.node_to_agg[1]);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

// ---------------------------------------------------------------------------
// Galerkin assembly
// ---------------------------------------------------------------------------

TEST(CoarseGalerkin, SingleAggregateIsExactBlockSum) {
  // With one aggregate, R A P collapses to the 3x3 sum of every stored block.
  Problem pb;
  const gs::BlockCSR& a = pb.sys.a;
  const gco::CoarseSymbolic sym(gco::single_aggregate(a.n), a.n);
  ASSERT_EQ(sym.dim(), 3);
  const auto ac = gco::accumulate(a, sym);
  ASSERT_EQ(ac.size(), 9u);

  double expect[9] = {0.0};
  for (int e = 0; e < a.nnz_blocks(); ++e) {
    const double* blk = a.block(e);
    for (int k = 0; k < 9; ++k) expect[k] += blk[k];
  }
  for (int k = 0; k < 9; ++k) EXPECT_NEAR(ac[static_cast<std::size_t>(k)], expect[k], 1e-9);
}

TEST(CoarseGalerkin, TwoAggregatesPartitionTheSum) {
  // Splitting nodes across two aggregates redistributes, never changes, the
  // total: the four 3x3 quadrant sums of A_c must add back to the block sum.
  Problem pb;
  const gs::BlockCSR& a = pb.sys.a;
  gco::AggregateMap map;
  map.count = 2;
  map.node_to_agg.assign(static_cast<std::size_t>(a.n), 0);
  for (int i = a.n / 2; i < a.n; ++i) map.node_to_agg[static_cast<std::size_t>(i)] = 1;
  const gco::CoarseSymbolic sym(map, a.n);
  ASSERT_EQ(sym.dim(), 6);
  const auto ac = gco::accumulate(a, sym);

  // Tolerance scales with the absolute mass summed: the ±λ penalty blocks
  // cancel in the total but land in different quadrants, so the comparison
  // carries their rounding (~|val|·eps), not the cancelled result's.
  double total[9] = {0.0}, mass = 0.0;
  for (int e = 0; e < a.nnz_blocks(); ++e)
    for (int k = 0; k < 9; ++k) {
      total[k] += a.block(e)[k];
      mass += std::abs(a.block(e)[k]);
    }
  const double tol = mass * 1e-12;
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 3; ++c) {
      double s = 0.0;
      for (int qi = 0; qi < 2; ++qi)
        for (int qj = 0; qj < 2; ++qj)
          s += ac[static_cast<std::size_t>((qi * 3 + r) * 6 + qj * 3 + c)];
      EXPECT_NEAR(s, total[r * 3 + c], tol);
    }
}

// ---------------------------------------------------------------------------
// Plan keying and memoization
// ---------------------------------------------------------------------------

TEST(CoarsePlanKey, CoarseFlagAndAggregationAreKeyed) {
  Problem pb;
  const auto sn = gc::build_supernodes(pb.sys.a.n, pb.mesh.contact_groups);
  gplan::PlanConfig plain;
  plain.precond = gplan::PrecondKind::kSBBIC0;
  auto coarse_cfg = plain;
  coarse_cfg.coarse = true;

  const auto agg = gco::single_aggregate(pb.sys.a.n);
  const auto refined = gco::refine_by_groups(agg, sn.members);
  const auto k_plain = gplan::make_key(pb.sys.a, sn, plain);
  const auto k_coarse = gplan::make_key(pb.sys.a, sn, coarse_cfg, &agg);
  const auto k_refined = gplan::make_key(pb.sys.a, sn, coarse_cfg, &refined);
  EXPECT_FALSE(k_plain == k_coarse);
  EXPECT_FALSE(k_coarse == k_refined);

  // The restricted-node count (distributed: internal nodes only) is keyed too.
  const auto k_restricted = gplan::make_key(pb.sys.a, sn, coarse_cfg, &agg, pb.sys.a.n - 1);
  EXPECT_FALSE(k_coarse == k_restricted);
  // -1 means "all rows": identical to passing a.n explicitly.
  EXPECT_TRUE(gplan::make_key(pb.sys.a, sn, coarse_cfg, &agg, pb.sys.a.n) == k_coarse);
}

TEST(CoarsePlan, GalerkinMemoizedOnValueHash) {
  Problem pb;
  const auto sn = gc::build_supernodes(pb.sys.a.n, {});
  gplan::PlanConfig cfg;
  cfg.precond = gplan::PrecondKind::kDiagonal;
  cfg.coarse = true;
  const auto agg = gco::single_aggregate(pb.sys.a.n);
  const gplan::SolvePlan plan(pb.sys.a, sn, cfg, &agg);
  ASSERT_TRUE(plan.has_coarse());

  // Unchanged values: assembly and factorization are served from the memo.
  const auto c1 = plan.coarse_contribution(pb.sys.a);
  const auto c2 = plan.coarse_contribution(pb.sys.a);
  EXPECT_EQ(c1.get(), c2.get());
  const auto op1 = plan.coarse_numeric(pb.sys.a);
  const auto op2 = plan.coarse_numeric(pb.sys.a);
  EXPECT_EQ(op1.get(), op2.get());

  // A value change (same graph — a λ update) must rebuild, not serve stale.
  gs::BlockCSR bumped = pb.sys.a;
  bumped.val[0] *= 2.0;
  const auto c3 = plan.coarse_contribution(bumped);
  EXPECT_NE(c1.get(), c3.get());
  EXPECT_NE((*c1)[0], (*c3)[0]);
}

// ---------------------------------------------------------------------------
// Serial two-level solves
// ---------------------------------------------------------------------------

TEST(CoarseSerial, DeflatedConvergesNoSlowerThanOneLevel) {
  Problem pb(1e6);
  const auto sn = gc::build_supernodes(pb.sys.a.n, pb.mesh.contact_groups);
  gcore::SolveConfig cfg;
  cfg.precond = gcore::PrecondKind::kSBBIC0;
  cfg.cg.tolerance = 1e-8;
  const auto one = gcore::solve_system(pb.sys, sn, cfg);
  ASSERT_TRUE(one.converged());
  EXPECT_EQ(one.coarse_status, gco::SetupStatus::kOff);

  auto ccfg = cfg;
  ccfg.coarse.enabled = true;  // kPerDomain + kDeflated defaults
  const auto two = gcore::solve_system(pb.sys, sn, ccfg);
  ASSERT_TRUE(two.converged());
  EXPECT_EQ(two.coarse_status, gco::SetupStatus::kActive);
  EXPECT_EQ(two.coarse_dim, 3);  // serial: one aggregate, 3 rigid translations
  EXPECT_LE(two.cg.iterations, one.cg.iterations);
  EXPECT_NE(two.precond_name.find("+coarse("), std::string::npos) << two.precond_name;
  EXPECT_LT(true_relative_residual(pb.sys.a, pb.sys.b, two.solution), 1e-6);
}

TEST(CoarseSerial, AdditiveModeConverges) {
  Problem pb(1e6);
  const auto sn = gc::build_supernodes(pb.sys.a.n, pb.mesh.contact_groups);
  gcore::SolveConfig cfg;
  cfg.precond = gcore::PrecondKind::kSBBIC0;
  cfg.cg.tolerance = 1e-8;
  cfg.coarse.enabled = true;
  cfg.coarse.mode = gco::Mode::kAdditive;
  const auto rep = gcore::solve_system(pb.sys, sn, cfg);
  ASSERT_TRUE(rep.converged());
  EXPECT_EQ(rep.coarse_status, gco::SetupStatus::kActive);
  EXPECT_NE(rep.precond_name.find("additive"), std::string::npos) << rep.precond_name;
  EXPECT_LT(true_relative_residual(pb.sys.a, pb.sys.b, rep.solution), 1e-6);
}

TEST(CoarseSerial, PerContactGroupRefinesTheCoarseSpace) {
  Problem pb(1e6);
  const auto sn = gc::build_supernodes(pb.sys.a.n, pb.mesh.contact_groups);
  int real_groups = 0;
  for (const auto& m : sn.members) real_groups += m.size() >= 2 ? 1 : 0;
  ASSERT_GT(real_groups, 0) << "fixture must have contact supernodes";

  gcore::SolveConfig cfg;
  cfg.precond = gcore::PrecondKind::kSBBIC0;
  cfg.cg.tolerance = 1e-8;
  cfg.coarse.enabled = true;
  cfg.coarse.aggregates = gco::Aggregates::kPerContactGroup;
  const auto rep = gcore::solve_system(pb.sys, sn, cfg);
  ASSERT_TRUE(rep.converged());
  EXPECT_EQ(rep.coarse_status, gco::SetupStatus::kActive);
  EXPECT_EQ(rep.coarse_dim, 3 * (1 + real_groups));
  EXPECT_LT(true_relative_residual(pb.sys.a, pb.sys.b, rep.solution), 1e-6);
}

TEST(CoarseSerial, ResidualHistoryBitIdenticalAcrossThreadCounts) {
  Problem pb(1e6);
  const auto sn = gc::build_supernodes(pb.sys.a.n, pb.mesh.contact_groups);
  gcore::SolveConfig cfg;
  cfg.precond = gcore::PrecondKind::kSBBIC0;
  cfg.cg.tolerance = 1e-8;
  cfg.cg.record_residuals = true;
  cfg.coarse.enabled = true;

  cfg.threads = 1;
  const auto base = gcore::solve_system(pb.sys, sn, cfg);
  ASSERT_TRUE(base.converged());
  ASSERT_EQ(base.coarse_status, gco::SetupStatus::kActive);
  for (int threads : {2, 4}) {
    cfg.threads = threads;
    const auto rep = gcore::solve_system(pb.sys, sn, cfg);
    EXPECT_EQ(rep.cg.iterations, base.cg.iterations) << threads << " threads";
    ASSERT_EQ(rep.cg.residual_history.size(), base.cg.residual_history.size());
    for (std::size_t k = 0; k < base.cg.residual_history.size(); ++k)
      ASSERT_EQ(rep.cg.residual_history[k], base.cg.residual_history[k])
          << "iteration " << k << " with " << threads << " threads";
    ASSERT_EQ(rep.solution.size(), base.solution.size());
    for (std::size_t i = 0; i < base.solution.size(); ++i)
      ASSERT_EQ(rep.solution[i], base.solution[i]);
  }
}

TEST(CoarseSerial, WarmPlanIsBitIdenticalAndReused) {
  Problem pb(1e6);
  const auto sn = gc::build_supernodes(pb.sys.a.n, pb.mesh.contact_groups);
  gplan::PlanCache cache(4);
  gcore::SolveConfig cfg;
  cfg.precond = gcore::PrecondKind::kSBBIC0;
  cfg.cg.tolerance = 1e-8;
  cfg.cg.record_residuals = true;
  cfg.coarse.enabled = true;
  cfg.plan_cache = &cache;

  const auto cold = gcore::solve_system(pb.sys, sn, cfg);
  const auto warm = gcore::solve_system(pb.sys, sn, cfg);
  ASSERT_TRUE(cold.converged());
  EXPECT_FALSE(cold.plan_reused);
  EXPECT_TRUE(warm.plan_reused);
  EXPECT_EQ(cold.coarse_status, gco::SetupStatus::kActive);
  EXPECT_EQ(warm.coarse_status, gco::SetupStatus::kActive);
  EXPECT_EQ(warm.cg.iterations, cold.cg.iterations);
  ASSERT_EQ(warm.cg.residual_history.size(), cold.cg.residual_history.size());
  for (std::size_t k = 0; k < cold.cg.residual_history.size(); ++k)
    ASSERT_EQ(warm.cg.residual_history[k], cold.cg.residual_history[k]);
  for (std::size_t i = 0; i < cold.solution.size(); ++i)
    ASSERT_EQ(warm.solution[i], cold.solution[i]);
}

TEST(CoarseSerial, SingularCoarseOperatorDegradesTyped) {
  // diag(+I, -I): every block sum cancels, so the single-aggregate Galerkin
  // operator is exactly zero — set-up must degrade to one level, not throw or
  // apply a garbage correction.
  gf::System sys;
  sys.a = block_diag({1.0, -1.0});
  sys.b.assign(sys.a.ndof(), 1.0);
  const auto sn = gc::build_supernodes(sys.a.n, {});
  gcore::SolveConfig cfg;
  cfg.precond = gcore::PrecondKind::kDiagonal;
  cfg.coarse.enabled = true;
  const auto rep = gcore::solve_system(sys, sn, cfg);
  EXPECT_EQ(rep.coarse_status, gco::SetupStatus::kDegraded);
  EXPECT_EQ(rep.coarse_dim, 0);
  EXPECT_EQ(rep.precond_name.find("+coarse("), std::string::npos) << rep.precond_name;
}

// ---------------------------------------------------------------------------
// Distributed two-level solves
// ---------------------------------------------------------------------------

namespace {

gd::PrecondFactory localized_sbbic0(const Problem& pb) {
  return [&pb](const gpart::LocalSystem& ls, const gs::BlockCSR& aii, geofem::precond::Precision) {
    const auto sn = gc::build_supernodes(aii.n, ls.local_contact_groups(pb.mesh.contact_groups));
    return gcore::make_preconditioner(gcore::PrecondKind::kSBBIC0, aii, sn);
  };
}

}  // namespace

TEST(CoarseDist, ActiveAndNoSlowerThanOneLevel) {
  Problem pb(1e6);
  const auto p = gpart::rcb_contact_aware(pb.mesh, 4);
  const auto systems = gpart::distribute(pb.sys.a, pb.sys.b, p);
  const auto factory = localized_sbbic0(pb);

  gd::DistOptions opt;
  opt.cg.tolerance = 1e-8;
  const auto one = gd::solve_distributed(systems, factory, opt);
  ASSERT_TRUE(one.converged());
  EXPECT_EQ(one.coarse_status, gco::SetupStatus::kOff);

  auto copt = opt;
  copt.coarse.enabled = true;
  std::vector<double> x;
  const auto two = gd::solve_distributed(systems, factory, copt, &x);
  ASSERT_TRUE(two.converged());
  EXPECT_EQ(two.coarse_status, gco::SetupStatus::kActive);
  EXPECT_EQ(two.coarse_dim, 12);  // 4 domains x 3 translations
  EXPECT_LE(two.iterations, one.iterations);
  EXPECT_LT(true_relative_residual(pb.sys.a, pb.sys.b, x), 1e-6);
}

TEST(CoarseDist, PerContactGroupAddsGlobalGroupAggregates) {
  Problem pb(1e6);
  int real_groups = 0;
  for (const auto& g : pb.mesh.contact_groups) real_groups += g.size() >= 2 ? 1 : 0;
  ASSERT_GT(real_groups, 0);

  const auto p = gpart::rcb_contact_aware(pb.mesh, 4);
  const auto systems = gpart::distribute(pb.sys.a, pb.sys.b, p);
  gd::DistOptions opt;
  opt.cg.tolerance = 1e-8;
  opt.coarse.enabled = true;
  opt.coarse.aggregates = gco::Aggregates::kPerContactGroup;
  opt.coarse_groups = pb.mesh.contact_groups;
  const auto res = gd::solve_distributed(systems, localized_sbbic0(pb), opt);
  ASSERT_TRUE(res.converged());
  EXPECT_EQ(res.coarse_status, gco::SetupStatus::kActive);
  EXPECT_EQ(res.coarse_dim, 3 * (4 + real_groups));
}

TEST(CoarseDist, BitIdenticalAcrossThreadCountsAndOverlap) {
  Problem pb(1e6);
  const auto p = gpart::rcb_contact_aware(pb.mesh, 4);
  const auto systems = gpart::distribute(pb.sys.a, pb.sys.b, p);
  const auto factory = localized_sbbic0(pb);

  gd::DistOptions opt;
  opt.cg.tolerance = 1e-8;
  opt.cg.record_residuals = true;
  opt.coarse.enabled = true;
  opt.threads = 1;
  std::vector<double> x_base;
  const auto base = gd::solve_distributed(systems, factory, opt, &x_base);
  ASSERT_TRUE(base.converged());
  ASSERT_EQ(base.coarse_status, gco::SetupStatus::kActive);

  for (const auto& [threads, overlap] : std::vector<std::pair<int, bool>>{{2, true}, {4, false}}) {
    auto o = opt;
    o.threads = threads;
    o.overlap = overlap;
    std::vector<double> x;
    const auto rep = gd::solve_distributed(systems, factory, o, &x);
    EXPECT_EQ(rep.iterations, base.iterations) << threads << " threads";
    ASSERT_EQ(rep.residual_history.size(), base.residual_history.size());
    for (std::size_t k = 0; k < base.residual_history.size(); ++k)
      ASSERT_EQ(rep.residual_history[k], base.residual_history[k])
          << "iteration " << k << " with " << threads << " threads, overlap " << overlap;
    ASSERT_EQ(x.size(), x_base.size());
    for (std::size_t i = 0; i < x.size(); ++i) ASSERT_EQ(x[i], x_base[i]);
  }
}

TEST(CoarseDist, WarmPlanCacheIsBitIdentical) {
  Problem pb(1e6);
  const auto p = gpart::rcb_contact_aware(pb.mesh, 4);
  const auto systems = gpart::distribute(pb.sys.a, pb.sys.b, p);

  gplan::PlanCache cache(16);
  gplan::PlanConfig pcfg;
  pcfg.precond = gplan::PrecondKind::kSBBIC0;
  const auto factory = gd::make_plan_factory(cache, pcfg, pb.mesh.contact_groups);
  gd::DistOptions opt;
  opt.cg.tolerance = 1e-8;
  opt.cg.record_residuals = true;
  opt.coarse.enabled = true;
  opt.plan_cache = &cache;

  std::vector<double> x_cold, x_warm;
  const auto cold = gd::solve_distributed(systems, factory, opt, &x_cold);
  ASSERT_TRUE(cold.converged());
  ASSERT_EQ(cold.coarse_status, gco::SetupStatus::kActive);
  // 4 fine plans + 4 coarse plans built cold...
  EXPECT_EQ(cold.plan_cache.misses, 8u);
  EXPECT_EQ(cold.plan_cache.hits, 0u);

  const auto warm = gd::solve_distributed(systems, factory, opt, &x_warm);
  ASSERT_TRUE(warm.converged());
  // ...and all 8 served warm on the second run.
  EXPECT_EQ(warm.plan_cache.misses, 8u);
  EXPECT_EQ(warm.plan_cache.hits, 8u);
  EXPECT_EQ(warm.iterations, cold.iterations);
  ASSERT_EQ(warm.residual_history.size(), cold.residual_history.size());
  for (std::size_t k = 0; k < cold.residual_history.size(); ++k)
    ASSERT_EQ(warm.residual_history[k], cold.residual_history[k]);
  ASSERT_EQ(x_warm.size(), x_cold.size());
  for (std::size_t i = 0; i < x_cold.size(); ++i) ASSERT_EQ(x_warm[i], x_cold[i]);
}

TEST(CoarseDist, SingularCoarseOperatorDegradesInLockstep) {
  // Domain 0 holds diag(+I, -I) (its Galerkin contribution cancels), domain 1
  // a regular block. The allreduced A_c has a zero row, so factorization
  // fails — on EVERY rank, by the allreduced degrade decision, and the run
  // finishes one-level instead of hanging or diverging across ranks.
  gpart::LocalSystem d0;
  d0.domain = 0;
  d0.num_internal = 2;
  d0.global_of_local = {0, 1};
  d0.a = block_diag({1.0, -1.0});
  d0.b = {1.0, 1.0, 1.0, -1.0, -1.0, -1.0};
  gpart::LocalSystem d1;
  d1.domain = 1;
  d1.num_internal = 1;
  d1.global_of_local = {2};
  d1.a = block_diag({2.0});
  d1.b = {2.0, 2.0, 2.0};

  gd::PrecondFactory diag = [](const gpart::LocalSystem&, const gs::BlockCSR& aii, geofem::precond::Precision) {
    return gcore::make_preconditioner(gcore::PrecondKind::kDiagonal, aii,
                                      gc::build_supernodes(aii.n, {}));
  };
  gd::DistOptions opt;
  opt.coarse.enabled = true;
  const auto res = gd::solve_distributed({d0, d1}, diag, opt);
  EXPECT_EQ(res.coarse_status, gco::SetupStatus::kDegraded);
  EXPECT_EQ(res.coarse_dim, 0);
  ASSERT_EQ(res.status_per_rank.size(), 2u);
  EXPECT_EQ(res.status_per_rank[0], res.status_per_rank[1]) << "ranks must agree after degrade";
}

TEST(CoarseDist, VectorAllreduceSumIsRankOrderedAndIdentical) {
  // The Galerkin allreduce contract: element-wise sum in ascending rank order,
  // bit-identical result on every rank.
  constexpr int kRanks = 3;
  std::vector<std::vector<double>> got(kRanks);
  gd::Runtime::run(kRanks, [&](gd::Comm& c) {
    std::vector<double> mine(4);
    for (int i = 0; i < 4; ++i)
      mine[static_cast<std::size_t>(i)] = std::pow(0.1, c.rank()) * (i + 1);
    got[static_cast<std::size_t>(c.rank())] = c.allreduce_sum(std::span<const double>(mine));
  });
  std::vector<double> expect(4, 0.0);
  for (int r = 0; r < kRanks; ++r)  // ascending rank order, like the implementation
    for (int i = 0; i < 4; ++i) expect[static_cast<std::size_t>(i)] += std::pow(0.1, r) * (i + 1);
  for (int r = 0; r < kRanks; ++r) {
    ASSERT_EQ(got[static_cast<std::size_t>(r)].size(), 4u);
    for (int i = 0; i < 4; ++i)
      EXPECT_EQ(got[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)],
                expect[static_cast<std::size_t>(i)])
          << "rank " << r << " element " << i;
  }
}

// ---------------------------------------------------------------------------
// cached_builder: the ALM-facing two-level factory
// ---------------------------------------------------------------------------

TEST(CoarseBuilder, WrapsAndReportsStatus) {
  Problem pb(1e6);
  gplan::PlanCache cache(4);
  gplan::PlanConfig cfg;
  cfg.precond = gplan::PrecondKind::kSBBIC0;
  gco::Options copt;
  copt.enabled = true;
  gco::SetupStatus status = gco::SetupStatus::kOff;
  const auto builder =
      gplan::cached_builder(cache, cfg, pb.mesh.contact_groups, copt, &status);
  const auto prec = builder(pb.sys.a);
  EXPECT_EQ(status, gco::SetupStatus::kActive);
  EXPECT_NE(prec->name().find("+coarse("), std::string::npos) << prec->name();
}

TEST(CoarseBuilder, DisabledDelegatesToOneLevel) {
  Problem pb(1e6);
  gplan::PlanCache cache(4);
  gplan::PlanConfig cfg;
  cfg.precond = gplan::PrecondKind::kSBBIC0;
  gco::SetupStatus status = gco::SetupStatus::kActive;  // must be overwritten
  const auto builder = gplan::cached_builder(cache, cfg, pb.mesh.contact_groups, {}, &status);
  const auto prec = builder(pb.sys.a);
  EXPECT_EQ(status, gco::SetupStatus::kOff);
  EXPECT_EQ(prec->name().find("+coarse("), std::string::npos) << prec->name();
}

TEST(CoarseBuilder, SingularCoarseFallsBackToFine) {
  const auto a = block_diag({1.0, -1.0});
  gplan::PlanCache cache(4);
  gplan::PlanConfig cfg;
  cfg.precond = gplan::PrecondKind::kDiagonal;
  gco::Options copt;
  copt.enabled = true;
  gco::SetupStatus status = gco::SetupStatus::kOff;
  const auto builder = gplan::cached_builder(cache, cfg, {}, copt, &status);
  const auto prec = builder(a);
  ASSERT_NE(prec, nullptr);
  EXPECT_EQ(status, gco::SetupStatus::kDegraded);
  EXPECT_EQ(prec->name().find("+coarse("), std::string::npos) << prec->name();
}
