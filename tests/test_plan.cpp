#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "contact/penalty.hpp"
#include "core/geofem.hpp"
#include "dist/dist_solver.hpp"
#include "fem/assembly.hpp"
#include "mesh/simple_block.hpp"
#include "part/local_system.hpp"
#include "part/partition.hpp"
#include "plan/cache.hpp"
#include "plan/fingerprint.hpp"
#include "plan/plan.hpp"
#include "solver/cg.hpp"

namespace gc = geofem::contact;
namespace gcore = geofem::core;
namespace gd = geofem::dist;
namespace gf = geofem::fem;
namespace gm = geofem::mesh;
namespace gpart = geofem::part;
namespace gplan = geofem::plan;
namespace gs = geofem::sparse;

namespace {

struct Problem {
  gm::HexMesh mesh;
  gf::System sys;

  explicit Problem(double lambda = 1e4, gm::SimpleBlockParams bp = {3, 3, 2, 3, 3}) {
    mesh = gm::simple_block(bp);
    sys = gf::assemble_elasticity(mesh, {{1.0, 0.3}});
    gc::add_penalty(sys.a, mesh.contact_groups, lambda);
    gf::BoundaryConditions bc;
    bc.fix_nodes(mesh.nodes_where([](double, double, double z) { return z == 0.0; }), -1);
    const double zmax = mesh.bounding_box().hi[2];
    bc.surface_load(
        mesh, [&](double, double, double z) { return std::abs(z - zmax) < 1e-12; }, 2, -1.0);
    gf::apply_boundary_conditions(sys, bc);
  }
};

gplan::PlanConfig config_for(gplan::PrecondKind kind) {
  gplan::PlanConfig cfg;
  cfg.precond = kind;
  return cfg;
}

}  // namespace

// ---------------------------------------------------------------------------
// Fingerprint
// ---------------------------------------------------------------------------

TEST(PlanFingerprint, OrderSensitive) {
  Problem pb;
  const std::uint64_t h0 = gplan::graph_fingerprint(pb.sys.a);
  // Swapping two column indices must change the digest even though the
  // multiset of indices is identical (FNV-1a is byte-order sensitive).
  gs::BlockCSR swapped = pb.sys.a;
  int row = -1;
  for (int i = 0; i < swapped.n && row < 0; ++i)
    if (swapped.rowptr[i + 1] - swapped.rowptr[i] >= 2) row = i;
  ASSERT_GE(row, 0);
  std::swap(swapped.colind[swapped.rowptr[row]], swapped.colind[swapped.rowptr[row] + 1]);
  EXPECT_NE(gplan::graph_fingerprint(swapped), h0);
}

TEST(PlanFingerprint, ValuesDoNotChangeGraphKey) {
  Problem a(1e4), b(1e8);  // same mesh, different penalty: same graph
  EXPECT_EQ(gplan::graph_fingerprint(a.sys.a), gplan::graph_fingerprint(b.sys.a));
}

TEST(PlanFingerprint, DistinctGraphsDistinctKeys) {
  Problem small(1e4, {3, 3, 2, 3, 3});
  Problem big(1e4, {4, 4, 3, 4, 4});
  const auto sn_s = gc::build_supernodes(small.sys.a.n, small.mesh.contact_groups);
  const auto sn_b = gc::build_supernodes(big.sys.a.n, big.mesh.contact_groups);
  const auto cfg = config_for(gplan::PrecondKind::kSBBIC0);
  EXPECT_FALSE(gplan::make_key(small.sys.a, sn_s, cfg) == gplan::make_key(big.sys.a, sn_b, cfg));
}

TEST(PlanFingerprint, ConfigFieldsKeyed) {
  Problem pb;
  const auto sn = gc::build_supernodes(pb.sys.a.n, pb.mesh.contact_groups);
  auto cfg = config_for(gplan::PrecondKind::kSBBIC0);
  const auto base = gplan::make_key(pb.sys.a, sn, cfg);

  auto other = cfg;
  other.precond = gplan::PrecondKind::kBIC1;
  EXPECT_FALSE(gplan::make_key(pb.sys.a, sn, other) == base);

  // PDJDS-only knobs are ignored on the natural ordering...
  other = cfg;
  other.colors = 5;
  EXPECT_TRUE(gplan::make_key(pb.sys.a, sn, other) == base);

  // ...but keyed on the PDJDS orderings.
  auto pd = cfg;
  pd.ordering = gplan::OrderingKind::kPDJDSMC;
  auto pd_colors = pd;
  pd_colors.colors = 5;
  EXPECT_FALSE(gplan::make_key(pb.sys.a, sn, pd) == base);
  EXPECT_FALSE(gplan::make_key(pb.sys.a, sn, pd_colors) == gplan::make_key(pb.sys.a, sn, pd));
}

TEST(PlanFingerprint, SupernodeMapKeyed) {
  Problem pb;
  const auto sn = gc::build_supernodes(pb.sys.a.n, pb.mesh.contact_groups);
  const auto sn_none = gc::build_supernodes(pb.sys.a.n, {});
  const auto cfg = config_for(gplan::PrecondKind::kSBBIC0);
  EXPECT_FALSE(gplan::make_key(pb.sys.a, sn, cfg) == gplan::make_key(pb.sys.a, sn_none, cfg));
}

// ---------------------------------------------------------------------------
// Cold/warm equivalence: bit-identical application, identical CG behaviour
// ---------------------------------------------------------------------------

class PlanEquivalence : public ::testing::TestWithParam<gplan::PrecondKind> {};

TEST_P(PlanEquivalence, WarmNumericIsBitIdentical) {
  Problem pb(1e6);
  const auto sn = gc::build_supernodes(pb.sys.a.n, pb.mesh.contact_groups);
  const auto cfg = config_for(GetParam());

  gplan::PlanCache cache(4);
  auto plan = cache.get(pb.sys.a, sn, cfg);
  EXPECT_EQ(cache.stats().misses, 1u);
  auto cold = gcore::make_preconditioner(cfg.precond, pb.sys.a, sn);

  // Second lookup must hit and produce the same plan object.
  auto plan2 = cache.get(pb.sys.a, sn, cfg);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(plan.get(), plan2.get());
  auto warm = plan2->numeric(pb.sys.a);

  // Bit-identical application on a deterministic input.
  std::vector<double> r(pb.sys.a.ndof());
  for (std::size_t i = 0; i < r.size(); ++i)
    r[i] = std::sin(static_cast<double>(i) * 0.73) + 0.01 * static_cast<double>(i % 7);
  std::vector<double> zc(r.size(), 0.0), zw(r.size(), 0.0);
  cold->apply(r, zc, nullptr, nullptr);
  warm->apply(r, zw, nullptr, nullptr);
  for (std::size_t i = 0; i < r.size(); ++i) {
    ASSERT_EQ(zc[i], zw[i]) << "component " << i << " differs between cold and warm factors";
  }

  // Identical CG iteration count and residual history.
  geofem::solver::CGOptions copt;
  copt.tolerance = 1e-8;
  copt.record_residuals = true;
  std::vector<double> xc(r.size(), 0.0), xw(r.size(), 0.0);
  const auto resc = geofem::solver::pcg(pb.sys.a, *cold, pb.sys.b, xc, copt);
  const auto resw = geofem::solver::pcg(pb.sys.a, *warm, pb.sys.b, xw, copt);
  EXPECT_TRUE(resc.converged());
  EXPECT_EQ(resc.iterations, resw.iterations);
  ASSERT_EQ(resc.residual_history.size(), resw.residual_history.size());
  for (std::size_t k = 0; k < resc.residual_history.size(); ++k)
    EXPECT_EQ(resc.residual_history[k], resw.residual_history[k]);
}

INSTANTIATE_TEST_SUITE_P(Kinds, PlanEquivalence,
                         ::testing::Values(gplan::PrecondKind::kBIC0, gplan::PrecondKind::kBIC1,
                                           gplan::PrecondKind::kBIC2,
                                           gplan::PrecondKind::kSBBIC0),
                         [](const auto& info) {
                           switch (info.param) {
                             case gplan::PrecondKind::kBIC0: return "BIC0";
                             case gplan::PrecondKind::kBIC1: return "BIC1";
                             case gplan::PrecondKind::kBIC2: return "BIC2";
                             case gplan::PrecondKind::kSBBIC0: return "SBBIC0";
                             default: return "other";
                           }
                         });

TEST(Plan, NumericRefactorizationTracksNewValues) {
  // One plan, two matrices with the same graph but different penalties: the
  // warm factors must equal the cold factors of EACH matrix, not stale values.
  Problem lo(1e4), hi(1e8);
  const auto sn = gc::build_supernodes(lo.sys.a.n, lo.mesh.contact_groups);
  const auto cfg = config_for(gplan::PrecondKind::kSBBIC0);
  gplan::PlanCache cache;
  auto plan = cache.get(lo.sys.a, sn, cfg);
  auto plan_hi = cache.get(hi.sys.a, sn, cfg);
  EXPECT_EQ(plan.get(), plan_hi.get()) << "penalty change must not invalidate the plan";
  EXPECT_EQ(cache.stats().hits, 1u);

  auto warm_hi = plan->numeric(hi.sys.a);
  auto cold_hi = gcore::make_preconditioner(cfg.precond, hi.sys.a, sn);
  std::vector<double> r(hi.sys.a.ndof(), 1.0), zw(r.size(), 0.0), zc(r.size(), 0.0);
  warm_hi->apply(r, zw, nullptr, nullptr);
  cold_hi->apply(r, zc, nullptr, nullptr);
  for (std::size_t i = 0; i < r.size(); ++i) ASSERT_EQ(zc[i], zw[i]);
}

TEST(Plan, VectorizedPDJDSWarmMatchesCold) {
  Problem pb(1e6);
  const auto sn = gc::build_supernodes(pb.sys.a.n, pb.mesh.contact_groups);
  auto cfg = config_for(gplan::PrecondKind::kSBBIC0);
  cfg.ordering = gplan::OrderingKind::kPDJDSMC;
  cfg.colors = 4;
  cfg.npe = 2;

  gcore::SolveConfig score;
  score.precond = cfg.precond;
  score.ordering = cfg.ordering;
  score.colors = cfg.colors;
  score.npe = cfg.npe;
  gplan::PlanCache cache;
  score.plan_cache = &cache;

  const auto sn_core = gc::build_supernodes(pb.sys.a.n, pb.mesh.contact_groups);
  const auto rep_cold = gcore::solve_system(pb.sys, sn_core, score);
  const auto rep_warm = gcore::solve_system(pb.sys, sn_core, score);
  EXPECT_TRUE(rep_cold.cg.converged());
  EXPECT_FALSE(rep_cold.plan_reused);
  EXPECT_TRUE(rep_warm.plan_reused);
  EXPECT_EQ(rep_cold.cg.iterations, rep_warm.cg.iterations);
  ASSERT_EQ(rep_cold.solution.size(), rep_warm.solution.size());
  for (std::size_t i = 0; i < rep_cold.solution.size(); ++i)
    EXPECT_EQ(rep_cold.solution[i], rep_warm.solution[i]);
}

TEST(Plan, CoreSolveReportsCacheCounters) {
  Problem pb;
  gcore::SolveConfig cfg;
  cfg.precond = gcore::PrecondKind::kBIC1;
  gplan::PlanCache cache;
  cfg.plan_cache = &cache;
  const auto sn_core = gc::build_supernodes(pb.sys.a.n, pb.mesh.contact_groups);
  const auto r1 = gcore::solve_system(pb.sys, sn_core, cfg);
  EXPECT_FALSE(r1.plan_reused);
  EXPECT_EQ(r1.plan_cache.misses, 1u);
  const auto r2 = gcore::solve_system(pb.sys, sn_core, cfg);
  EXPECT_TRUE(r2.plan_reused);
  EXPECT_EQ(r2.plan_cache.hits, 1u);
  EXPECT_EQ(r2.cg.iterations, r1.cg.iterations);
}

// ---------------------------------------------------------------------------
// Cache eviction and stale-plan rejection
// ---------------------------------------------------------------------------

TEST(PlanCache, LRUEviction) {
  Problem p1(1e4, {3, 3, 2, 3, 3});
  Problem p2(1e4, {4, 3, 2, 3, 3});
  Problem p3(1e4, {5, 3, 2, 3, 3});
  const auto cfg = config_for(gplan::PrecondKind::kBIC0);
  auto sn = [](const Problem& p) {
    return gc::build_supernodes(p.sys.a.n, p.mesh.contact_groups);
  };

  gplan::PlanCache cache(2);
  auto a1 = cache.get(p1.sys.a, sn(p1), cfg);
  auto a2 = cache.get(p2.sys.a, sn(p2), cfg);
  EXPECT_EQ(cache.stats().entries, 2u);
  auto a3 = cache.get(p3.sys.a, sn(p3), cfg);  // evicts p1 (LRU)
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);

  // p1 was evicted: re-getting it is a miss; p3 is resident: a hit.
  cache.get(p1.sys.a, sn(p1), cfg);
  EXPECT_EQ(cache.stats().misses, 4u);
  cache.get(p3.sys.a, sn(p3), cfg);
  EXPECT_EQ(cache.stats().hits, 1u);

  // The evicted plan stays usable while referenced.
  auto prec = a1->numeric(p1.sys.a);
  EXPECT_GT(prec->memory_bytes(), 0u);
}

TEST(PlanCache, RecentUseProtectsFromEviction) {
  Problem p1(1e4, {3, 3, 2, 3, 3});
  Problem p2(1e4, {4, 3, 2, 3, 3});
  Problem p3(1e4, {5, 3, 2, 3, 3});
  const auto cfg = config_for(gplan::PrecondKind::kBIC0);
  auto sn = [](const Problem& p) {
    return gc::build_supernodes(p.sys.a.n, p.mesh.contact_groups);
  };

  gplan::PlanCache cache(2);
  cache.get(p1.sys.a, sn(p1), cfg);
  cache.get(p2.sys.a, sn(p2), cfg);
  cache.get(p1.sys.a, sn(p1), cfg);  // touch p1: now p2 is LRU
  cache.get(p3.sys.a, sn(p3), cfg);  // evicts p2
  cache.get(p1.sys.a, sn(p1), cfg);
  EXPECT_EQ(cache.stats().hits, 2u);  // p1 touched twice after insert
}

TEST(PlanCache, ClearResets) {
  Problem pb;
  const auto sn = gc::build_supernodes(pb.sys.a.n, pb.mesh.contact_groups);
  gplan::PlanCache cache;
  cache.get(pb.sys.a, sn, config_for(gplan::PrecondKind::kBIC0));
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
  cache.get(pb.sys.a, sn, config_for(gplan::PrecondKind::kBIC0));
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Plan, StalePlanRejectsChangedGraph) {
  Problem small(1e4, {3, 3, 2, 3, 3});
  Problem big(1e4, {4, 4, 3, 4, 4});
  const auto sn_s = gc::build_supernodes(small.sys.a.n, small.mesh.contact_groups);
  const auto sn_b = gc::build_supernodes(big.sys.a.n, big.mesh.contact_groups);
  const auto cfg = config_for(gplan::PrecondKind::kSBBIC0);

  gplan::PlanCache cache;
  auto plan = cache.get(small.sys.a, sn_s, cfg);
  // A different graph is a different key — never a false hit...
  cache.get(big.sys.a, sn_b, cfg);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 2u);
  // ...and numeric() on the wrong matrix must throw, not corrupt memory.
  EXPECT_THROW((void)plan->numeric(big.sys.a), geofem::Error);
  EXPECT_FALSE(plan->matches(big.sys.a, sn_b, cfg));
  EXPECT_TRUE(plan->matches(small.sys.a, sn_s, cfg));
}

TEST(Plan, SameDimensionsDifferentGraphRejected) {
  // Same n and nnz, permuted column indices: the graph hash must catch it.
  Problem pb;
  gs::BlockCSR tampered = pb.sys.a;
  int row = -1;
  for (int i = 0; i < tampered.n && row < 0; ++i)
    if (tampered.rowptr[i + 1] - tampered.rowptr[i] >= 2) row = i;
  ASSERT_GE(row, 0);
  std::swap(tampered.colind[tampered.rowptr[row]], tampered.colind[tampered.rowptr[row] + 1]);

  const auto sn = gc::build_supernodes(pb.sys.a.n, pb.mesh.contact_groups);
  gplan::SolvePlan plan(pb.sys.a, sn, config_for(gplan::PrecondKind::kBIC0));
  EXPECT_THROW((void)plan.numeric(tampered), geofem::Error);
}

// ---------------------------------------------------------------------------
// Sharded cache: per-shard stats under concurrent eviction, hash collisions
// ---------------------------------------------------------------------------

TEST(PlanCacheShards, StatsConsistentUnderConcurrentEviction) {
  // 6 distinct graphs churning through a 2-shard cache of total capacity 4:
  // every completed get() must be counted exactly once (hits + misses ==
  // lookups), shard totals must add up to stats(), and no shard may exceed
  // its per-shard budget even while evicting concurrently.
  std::vector<Problem> problems;
  std::vector<gc::Supernodes> sns;
  for (int nx = 3; nx < 9; ++nx) {
    problems.emplace_back(1e4, gm::SimpleBlockParams{nx, 3, 2, 3, 3});
    sns.push_back(gc::build_supernodes(problems.back().sys.a.n,
                                       problems.back().mesh.contact_groups));
  }
  const auto cfg = config_for(gplan::PrecondKind::kDiagonal);

  gplan::PlanCache cache(4, 2);
  ASSERT_EQ(cache.shard_count(), 2u);
  constexpr int kThreads = 4, kRounds = 10;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round)
        for (std::size_t i = 0; i < problems.size(); ++i) {
          // rotate the start per thread so eviction interleaves
          const std::size_t j = (i + static_cast<std::size_t>(t)) % problems.size();
          (void)cache.get(problems[j].sys.a, sns[j], cfg);
        }
    });
  }
  for (auto& w : workers) w.join();

  const auto totals = cache.stats();
  EXPECT_EQ(totals.hits + totals.misses,
            static_cast<std::uint64_t>(kThreads) * kRounds * problems.size());
  EXPECT_LE(totals.entries, cache.capacity());

  const auto per_shard = cache.shard_stats();
  ASSERT_EQ(per_shard.size(), 2u);
  gplan::CacheStats summed;
  for (const auto& s : per_shard) {
    summed += s;
    EXPECT_LE(s.entries, cache.capacity() / cache.shard_count());
    // Every resident plan came from a miss that wasn't (or hasn't been)
    // evicted; racing builds on one key may discard an insert, never add one.
    EXPECT_LE(s.entries, s.misses - s.evictions);
  }
  EXPECT_EQ(summed.hits, totals.hits);
  EXPECT_EQ(summed.misses, totals.misses);
  EXPECT_EQ(summed.evictions, totals.evictions);
  EXPECT_EQ(summed.entries, totals.entries);
}

namespace {

// FNV-1a step h' = (h ^ w) * kPrime run backwards: invert the multiply with
// the modular inverse of the (odd) prime in Z/2^64, then undo the xor.
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv_prime_inverse() {
  std::uint64_t x = kFnvPrime;  // Newton: x_{k+1} = x_k (2 - p x_k) doubles precision
  for (int i = 0; i < 6; ++i) x *= 2 - kFnvPrime * x;
  return x;
}

std::uint64_t word_of(int a, int b) {
  const int pair[2] = {a, b};
  std::uint64_t w;
  std::memcpy(&w, pair, sizeof w);
  return w;
}

}  // namespace

TEST(PlanCacheShards, EqualHashDifferentDimensionsAreDistinctEntries) {
  // Force a full 64-bit fingerprint collision between two structurally
  // different matrices and check the lookup path tells them apart by the
  // PlanKey's (n, nnz) second factor — two resident entries, no false hit.
  //
  // Construction: diagonal-pattern matrices under kDiagonal/kNatural, whose
  // plans never dereference colind — so B's last two colind words are free
  // bytes we steer. Replaying make_key's hash stream (pod(n), ints(rowptr),
  // ints(colind), ints(node_to_super), pod(precond), pod(ordering) — all
  // invertible FNV-1a steps) backwards from A's digest yields the one
  // compensating colind word that makes the digests equal.
  const auto cfg = config_for(gplan::PrecondKind::kDiagonal);

  gs::BlockCSR a;
  a.n = 2;
  a.rowptr = {0, 1, 2};
  a.colind = {0, 1};
  a.val.assign(2 * 9, 1.0);
  const auto sn_a = gc::build_supernodes(2, {});
  const auto key_a = gplan::make_key(a, sn_a, cfg);

  gs::BlockCSR b;
  b.n = 4;
  b.rowptr = {0, 1, 2, 3, 4};
  b.colind = {0, 1, 0, 0};  // last word steered below
  b.val.assign(4 * 9, 1.0);
  const auto sn_b = gc::build_supernodes(4, {});

  // Forward state up to (excluding) the final colind word.
  gplan::Fnv1a pre;
  pre.pod(b.n);
  pre.ints(b.rowptr);
  pre.ints(std::span<const int>(b.colind).first(2));
  const std::uint64_t h_pre = pre.digest();

  // Backward from the target over the suffix: ints(node_to_super {0,1,2,3})
  // folds two words, then pod(precond=0) and pod(ordering=0) fold 8 zero
  // bytes (one multiply each, xor with 0).
  const std::uint64_t pinv = fnv_prime_inverse();
  ASSERT_EQ(kFnvPrime * pinv, 1ULL);
  std::uint64_t h = key_a.hash;
  for (int i = 0; i < 8; ++i) h *= pinv;               // undo the 8 config bytes
  h = h * pinv ^ word_of(2, 3);                        // undo node_to_super word 2
  h = h * pinv ^ word_of(0, 1);                        // undo node_to_super word 1
  const std::uint64_t w = h * pinv ^ h_pre;            // compensating colind word
  std::memcpy(b.colind.data() + 2, &w, sizeof w);

  const auto key_b = gplan::make_key(b, sn_b, cfg);
  ASSERT_EQ(key_b.hash, key_a.hash) << "collision construction must hold";
  EXPECT_FALSE(key_a == key_b);  // (n, nnz) still distinguish them

  gplan::PlanCache cache(8);
  auto plan_a = cache.get(a, sn_a, cfg);
  auto plan_b = cache.get(b, sn_b, cfg);
  EXPECT_EQ(cache.stats().misses, 2u) << "colliding keys must not alias";
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_NE(plan_a.get(), plan_b.get());

  // Re-lookups walk the same bucket past the colliding key and still resolve
  // to the right plan.
  EXPECT_EQ(cache.get(a, sn_a, cfg).get(), plan_a.get());
  EXPECT_EQ(cache.get(b, sn_b, cfg).get(), plan_b.get());
  EXPECT_EQ(cache.stats().hits, 2u);
}

// ---------------------------------------------------------------------------
// Distributed: one plan per rank, warm re-solve, identical iterations
// ---------------------------------------------------------------------------

TEST(PlanDist, FourRanksOnePlanEach) {
  Problem pb(1e6);
  auto p = gpart::rcb_contact_aware(pb.mesh, 4);
  auto systems = gpart::distribute(pb.sys.a, pb.sys.b, p);
  ASSERT_EQ(systems.size(), 4u);

  gplan::PlanCache cache(8);
  gd::DistOptions opt;
  opt.cg.tolerance = 1e-8;
  opt.plan_cache = &cache;
  const auto factory =
      gd::make_plan_factory(cache, config_for(gplan::PrecondKind::kSBBIC0),
                            pb.mesh.contact_groups);

  std::vector<double> x_cold, x_warm;
  const auto cold = gd::solve_distributed(systems, factory, opt, &x_cold);
  EXPECT_TRUE(cold.converged());
  EXPECT_EQ(cold.plan_cache.misses, 4u);  // one plan per rank
  EXPECT_EQ(cold.plan_cache.hits, 0u);
  EXPECT_EQ(cold.plan_cache.entries, 4u);

  const auto warm = gd::solve_distributed(systems, factory, opt, &x_warm);
  EXPECT_TRUE(warm.converged());
  EXPECT_EQ(warm.plan_cache.misses, 4u);  // no new builds
  EXPECT_EQ(warm.plan_cache.hits, 4u);
  EXPECT_EQ(warm.iterations, cold.iterations);
  ASSERT_EQ(x_cold.size(), x_warm.size());
  for (std::size_t i = 0; i < x_cold.size(); ++i) EXPECT_EQ(x_cold[i], x_warm[i]);
}

TEST(PlanDist, MatchesPlainFactory) {
  // The plan-cached factory must agree with the direct cold factory.
  Problem pb(1e6);
  auto p = gpart::rcb_contact_aware(pb.mesh, 4);
  auto systems = gpart::distribute(pb.sys.a, pb.sys.b, p);

  gd::PrecondFactory plain = [&](const gpart::LocalSystem& ls, const gs::BlockCSR& aii, geofem::precond::Precision) {
    const auto sn = gc::build_supernodes(aii.n, ls.local_contact_groups(pb.mesh.contact_groups));
    return gcore::make_preconditioner(gcore::PrecondKind::kSBBIC0, aii, sn);
  };
  gplan::PlanCache cache;
  const auto planned =
      gd::make_plan_factory(cache, config_for(gplan::PrecondKind::kSBBIC0),
                            pb.mesh.contact_groups);

  std::vector<double> x_plain, x_planned;
  const auto r_plain = gd::solve_distributed(systems, plain, {}, &x_plain);
  const auto r_planned = gd::solve_distributed(systems, planned, {}, &x_planned);
  EXPECT_EQ(r_plain.iterations, r_planned.iterations);
  ASSERT_EQ(x_plain.size(), x_planned.size());
  for (std::size_t i = 0; i < x_plain.size(); ++i) EXPECT_EQ(x_plain[i], x_planned[i]);
}
